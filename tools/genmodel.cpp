// genmodel: emit parameterized SMV model families (src/gen/modelgen.hpp)
// to stdout or a file.  The goldens under models/gen/ are produced by this
// tool and byte-compared against regeneration in the test suite.
//
//   genmodel ring 8                 # token ring, 8 stations, to stdout
//   genmodel afs2 3 -o afs2_3.smv   # AFS-2 server + 3 clients, to a file

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "gen/modelgen.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: genmodel <family> <n> [-o <file>]\n"
               "families:\n"
               "  ring <n>   token ring with n stations (n >= 2)\n"
               "  afs2 <n>   AFS-2 server + n clients (n >= 1)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string family;
  std::string out;
  long n = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      out = argv[++i];
    } else if (family.empty()) {
      family = arg;
    } else if (n < 0) {
      char* end = nullptr;
      n = std::strtol(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) return usage();
    } else {
      return usage();
    }
  }
  if (family.empty() || n < 0) return usage();

  std::string text;
  try {
    if (family == "ring") {
      text = cmc::gen::ringModel(static_cast<std::size_t>(n));
    } else if (family == "afs2") {
      text = cmc::gen::afs2Model(static_cast<std::size_t>(n));
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "genmodel: %s\n", e.what());
    return 1;
  }

  if (out.empty()) {
    std::cout << text;
    return 0;
  }
  std::ofstream f(out, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "genmodel: cannot write %s\n", out.c_str());
    return 1;
  }
  f << text;
  return 0;
}
