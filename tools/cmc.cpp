// cmc — the production command-line front end of the verification service.
//
//   cmc check [options] <model.smv> [more.smv ...]
//   cmc serve --socket /path [--tcp PORT] [options]
//   cmc coordinator --socket /path --topology shards.jsonl [options]
//   cmc submit --socket /path [options] <model.smv> [more.smv ...]
//   cmc cache compact --cache-dir DIR
//   cmc failpoints | version | help
//
// Each model file becomes one VerificationJob; all jobs run as one batch on
// the service's thread pool, so obligations of different models interleave.
//
// `cmc serve` keeps one VerificationService alive across many requests — a
// persistent daemon speaking newline-delimited JSON (src/net/protocol.hpp)
// over a Unix-domain socket, with admission control (bounded queue, BUSY
// backpressure), per-request CANCEL, live metrics (STATS), and SIGTERM =
// drain-and-exit-0.  `cmc submit` is the matching client.
// Every job writes a JSONL event trace and a summary JSON report (schema in
// README.md) next to its model — override the destinations with --trace and
// --report.  A crash-safe run journal records every outcome as it is
// decided; `cmc check --resume` replays it after a crash or interrupt.
//
//   cmc check --compose --deadline-ms 5000 --node-budget 2000000
//             --report out.json models/*.smv          (one command line)
//
// Exit codes follow the SMV-family convention: verdicts are data, not exit
// status.  0 = verification ran to completion (per-spec verdicts are in the
// output and the report); 2 = usage, I/O or elaboration error; 5 = some
// obligation ended in an Error verdict (exception despite quarantine);
// 128+N = interrupted by signal N after flushing partial results (130 =
// SIGINT, 143 = SIGTERM).  With --strict the verdict is additionally mapped
// onto the exit code for CI gating: 1 = some spec fails, 3 = budget
// exhausted (Timeout / MemoryOut), 4 = Inconclusive on both engines.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "agr/engine.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/topology.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/obligation_cache.hpp"
#include "service/scheduler.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

using namespace cmc;

namespace {

constexpr const char* kUsage = R"(usage: cmc <command> [options] <model.smv> [more.smv ...]

commands:
  check       parse, elaborate and verify every SPEC of the given models
  learn       like `check --compose --learn`: discharge composed specs by
              the assume-guarantee rule with an L*-learned assumption
              (see docs/THEORY.md "Learned assumptions")
  serve       run the persistent verification daemon (wire protocol over a
              Unix-domain socket; see README.md "Server mode")
  coordinator front a fleet of serve daemons as one: route each obligation
              to its shard by content fingerprint, merge the verdicts
              (see README.md "Cluster mode" and docs/OPERATIONS.md)
  submit      client for a serving daemon or coordinator: submit checks,
              query STATUS/STATS, CANCEL a request, or DRAIN the server
  cache       maintain an on-disk obligation cache: `cmc cache compact`
              deduplicates DIR/obligations.jsonl offline
  failpoints  list the fault-injection sites (see docs/OPERATIONS.md)
  version     print the version string
  help        print this help

cmc check options:
  --compose          also verify each spec on the composition of all modules
                     (compositional rules first, certificate in the report)
  --learn            discharge composed specs through assume-guarantee
                     learning where possible (implies --compose): a learned
                     assumption automaton replaces the product build; specs
                     that resist learning fall back to the direct composed
                     check, so verdicts never change.  The report carries
                     verdict_source "learned" plus the assumption size and
                     query counts per discharged spec
  --engine MODE      first-attempt verification engine:
                       auto         probe the monolithic product size per
                                    obligation, pick the cheaper symbolic
                                    engine (default)
                       partitioned  symbolic fixpoints, partitioned relation
                       monolithic   symbolic fixpoints, materialized product
                       bes          explicit-state Boolean Equation System
                                    solver (falls back to partitioned where
                                    it declines, e.g. composed obligations)
                       race         run bes and the symbolic engine
                                    concurrently per obligation; first sound
                                    verdict wins, the loser is cancelled
                                    (costs up to 2x CPU per obligation)
  --monolithic       deprecated alias for --engine monolithic
  --no-retry         disable the budget-exhaustion retry on the other engine
  --trace-force      re-check a cache/journal-replayed Fails that stored no
                     counterexample, so the report carries a trace
  --deadline-ms N    per-attempt wall-clock deadline in milliseconds
  --node-budget N    per-attempt budget of live BDD nodes
  --cluster N        partition clustering threshold in nodes (default 1024)
  --reorder          sift variables after elaboration, before checking
  --threads N        worker threads (default: hardware concurrency)
  --cache-dir DIR    persist decided verdicts to DIR/obligations.jsonl and
                     reload them on start-up, so a re-run of an unchanged
                     model serves its verdicts from the cache
  --no-cache         disable the content-addressed obligation cache
  --report PATH      write one combined summary JSON to PATH
                     (default: <model>.report.json next to each model)
  --trace PATH       write one combined JSONL event trace to PATH
                     (default: <model>.trace.jsonl next to each model)
  --journal PATH     crash-safe run journal: every outcome is appended (and
                     flushed) the moment it is decided (default: alongside
                     the report — <report>.journal.jsonl with --report, else
                     <first model>.journal.jsonl)
  --no-journal       disable the run journal
  --resume           load the journal and serve the obligations it already
                     decided (verdict_source "journal"); re-run the rest
  --failpoint S=A    arm fault-injection site S with action A (error, throw,
                     delay(ms), 1in(n)); repeatable; needs a build with
                     -DCMC_FAILPOINTS=ON (the CMC_FAILPOINTS env var takes
                     a comma-separated list of the same specs)
  --strict           map the aggregate verdict onto the exit code
                     (1 = some spec fails, 3 = budget exhausted,
                     4 = inconclusive); the default, as in the SMV family,
                     is to exit 0 whenever verification ran to completion
  --quiet            only print the final per-job verdicts

cmc serve options:
  --socket PATH      Unix-domain listener (required; unlinked on shutdown)
  --tcp PORT         also listen on 127.0.0.1:PORT (0 = pick an ephemeral
                     port, printed on start-up)
  --max-inflight N   CHECK requests executing at once (default: worker
                     threads)
  --queue-depth N    admitted CHECKs that may wait for a slot (default 16);
                     one more and the server answers BUSY
  --model-root DIR   resolve request "model" paths under DIR
  --metrics-interval-ms N
                     period of the "metrics" JSONL trace event (default
                     10000; 0 = off)
  plus, as in check: --threads --cache-dir --no-cache --journal --resume
  --trace --failpoint, and the job-option defaults (--compose --learn
  --engine --no-retry --trace-force --deadline-ms --node-budget --cluster
  --reorder), which
  requests overlay per CHECK.  SIGTERM/SIGINT (or a DRAIN command) drains:
  in-flight requests finish and respond, new CHECKs get DRAINING, then the
  server exits 0.

cmc coordinator options:
  --socket PATH      Unix-domain listener (required; unlinked on shutdown)
  --tcp PORT         also listen on 127.0.0.1:PORT (0 = ephemeral, printed)
  --topology FILE    shard roster, one JSON object per line (required):
                     {"name": "s1", "socket": "/run/s1.sock"} or
                     {"name": "s2", "tcp": 7401}; # comments allowed
  --max-inflight N   CHECK jobs at once (default 16); one more answers BUSY
  --forward-threads N
                     obligation-forwarding pool width (default: 2 per
                     shard, at least 4)
  --probe-interval-ms N
                     shard health-probe period (default 1000; the actual
                     sleep is jittered in [0.5, 1.5)x the period)
  --fail-threshold N consecutive probe failures that mark a shard down
                     (default 2)
  --probation-probes N
                     consecutive successful probes a recovered shard must
                     serve before re-entering the ring (default 1; doubles
                     per mark-down, so flapping shards are held out longer)
  --replication N    copies of every decided obligation across the fleet
                     (default 2: owner + its rendezvous successor; 1 = off)
  --hedge-ms N       re-send a straggling CHECK to the next rendezvous
                     candidate after N ms in flight; first sound verdict
                     wins, the loser is cancelled (default 0 = off)
  --model-root DIR   resolve request "model" paths under DIR
  --trace PATH       write the coordinator's JSONL event trace to PATH
  plus --failpoint and the job-option defaults as in serve.  All shards
  must run this exact cmc version and protocol revision; the coordinator
  refuses to start against a mixed-version fleet.  SIGTERM/SIGINT (or
  DRAIN) drains and exits 0; the shards keep running.  SIGHUP re-reads
  --topology FILE and diffs it against the live roster (add/remove shards
  without a restart); JOIN/LEAVE do the same over the wire.

cmc submit options:
  --socket PATH      connect to the daemon's Unix-domain socket
  --tcp PORT         connect to 127.0.0.1:PORT instead
  --status | --stats | --drain | --cancel ID
                     control commands (no model arguments); --stats prints
                     the Prometheus-style metrics text
  --topology         coordinator only: print the shard roster with per-shard
                     lifecycle state (up/suspect/down/probation), flap
                     counts and replica-put counters
  --join NAME --shard-socket PATH | --shard-tcp PORT
                     coordinator only: add shard NAME to the ring after a
                     version handshake (a previously removed or down shard
                     re-enters through probation)
  --leave NAME       coordinator only: decommission shard NAME (refused for
                     the last shard; in-flight forwards finish first)
  --id ID            request id (one model) or id prefix (several)
  --name NAME        job name for a single submitted model
  --report PATH      write the returned report JSON (unescaped) to PATH
  --max-retries N    retry a CHECK refused with BUSY/DRAINING, lost to a
                     transport failure, or whose initial dial is refused
                     (a daemon restarting) up to N times (default 0 = fail
                     fast with exit 6 / exit 2, as before)
  --retry-ms N       base of the jittered exponential backoff between
                     retries: attempt k sleeps uniform in [c/2, c],
                     c = N·2^k ms, capped at 30 s (default 200)
  plus the job options above, overriding the server's defaults per CHECK.
  Model text is read client-side and sent inline, so the daemon need not
  share a filesystem with the client.

cmc cache compact options:
  cmc cache compact --cache-dir DIR   (or a positional DIR)
  Rewrite DIR/obligations.jsonl keeping only the last write per
  fingerprint, dropping corrupt lines, under the store's lock with an
  atomic rename.  Offline only: a store locked by a live writer (a running
  serve or check) is refused rather than raced.

exit codes: 0 completed (all hold under --strict); 1 --strict and a spec
fails; 2 usage/I-O/model error; 3 --strict and Timeout/MemoryOut;
4 --strict and Inconclusive; 5 Error verdict; 6 submit refused
(BUSY/DRAINING); 130/143 interrupted (SIGINT/SIGTERM; journal, trace and
report hold the partial results)
)";

struct CliOptions {
  service::JobOptions job;
  unsigned threads = 0;
  std::string reportPath;
  std::string tracePath;
  std::string cacheDir;
  std::string journalPath;
  bool cacheEnabled = true;
  bool journalEnabled = true;
  bool resume = false;
  bool strict = false;
  bool quiet = false;
  std::vector<std::string> models;
  std::vector<std::string> failpoints;
};

/// Set by the SIGINT/SIGTERM handler; polled by the scheduler (via
/// ServiceOptions::cancelFlag) and by the checker's cancel hook, so a batch
/// winds down cooperatively: running attempts abort as Cancelled, queued
/// obligations drain, and everything decided so far is already journaled.
std::atomic<bool> gCancelRequested{false};
std::atomic<int> gSignal{0};

extern "C" void onSignal(int sig) {
  gCancelRequested.store(true, std::memory_order_relaxed);
  gSignal.store(sig, std::memory_order_relaxed);
  // A second signal falls through to the default action (immediate kill)
  // in case the wind-down itself wedges.
  std::signal(sig, SIG_DFL);
}

/// SIGHUP on `cmc coordinator` = re-read the topology file.  A dedicated
/// flag — NOT onSignal — because reload must not drain the coordinator;
/// the main loop polls it and runs the reload outside signal context.
std::atomic<bool> gReloadRequested{false};

extern "C" void onReload(int) {
  gReloadRequested.store(true, std::memory_order_relaxed);
}

std::string basenameStem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() > 4 && name.ends_with(".smv")) {
    name.resize(name.size() - 4);
  }
  return name;
}

std::string siblingPath(const std::string& modelPath, const char* suffix) {
  std::string base = modelPath;
  if (base.size() > 4 && base.ends_with(".smv")) {
    base.resize(base.size() - 4);
  }
  return base + suffix;
}

bool parseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

/// Parse an --engine value; prints the usage error itself.
bool parseEngineMode(const char* v, symbolic::EngineMode* out) {
  if (v != nullptr && symbolic::engineModeFromString(v, out)) return true;
  std::cerr
      << "cmc: --engine must be auto, partitioned, monolithic, bes, or "
         "race\n";
  return false;
}

void warnMonolithicDeprecated(const char* cmd) {
  std::cerr << cmd
            << ": --monolithic is deprecated; use --engine monolithic\n";
}

int parseArgs(int argc, char** argv, CliOptions* cli) {
  // The CLI resolves the engine adaptively by default; library embedders
  // keep JobOptions' reproducible Partitioned default.
  cli->job.engine = symbolic::EngineMode::Auto;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cmc: " << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--compose") {
      cli->job.compose = true;
    } else if (arg == "--learn") {
      // Learning only applies to composed obligations; asking for it is
      // asking for the composition.
      cli->job.learn = true;
      cli->job.compose = true;
    } else if (arg == "--engine") {
      if (!parseEngineMode(next(), &cli->job.engine)) return 2;
    } else if (arg == "--monolithic") {
      warnMonolithicDeprecated("cmc");
      cli->job.engine = symbolic::EngineMode::Monolithic;
    } else if (arg == "--no-retry") {
      cli->job.retryOtherEngine = false;
    } else if (arg == "--trace-force") {
      cli->job.traceForce = true;
    } else if (arg == "--reorder") {
      cli->job.reorderBeforeCheck = true;
    } else if (arg == "--strict") {
      cli->strict = true;
    } else if (arg == "--quiet") {
      cli->quiet = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      std::uint64_t ms = 0;
      if (v == nullptr || !parseUint(v, &ms)) return 2;
      cli->job.limits.deadlineSeconds = static_cast<double>(ms) / 1e3;
    } else if (arg == "--node-budget") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &cli->job.limits.nodeBudget)) return 2;
    } else if (arg == "--cluster") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &cli->job.clusterThreshold)) return 2;
    } else if (arg == "--threads") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parseUint(v, &n)) return 2;
      cli->threads = static_cast<unsigned>(n);
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->reportPath = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->tracePath = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->cacheDir = v;
    } else if (arg == "--no-cache") {
      cli->cacheEnabled = false;
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->journalPath = v;
    } else if (arg == "--no-journal") {
      cli->journalEnabled = false;
    } else if (arg == "--resume") {
      cli->resume = true;
    } else if (arg == "--failpoint") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->failpoints.push_back(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cmc: unknown option " << arg << "\n" << kUsage;
      return 2;
    } else {
      cli->models.push_back(arg);
    }
  }
  if (cli->models.empty()) {
    std::cerr << "cmc: no model files given\n" << kUsage;
    return 2;
  }
  if (cli->resume && !cli->journalEnabled) {
    std::cerr << "cmc: --resume needs the journal (drop --no-journal)\n";
    return 2;
  }
  return 0;
}

/// The journal lives alongside the report: next to the combined report
/// when --report is given, else next to the first model.
std::string defaultJournalPath(const CliOptions& cli) {
  if (!cli.reportPath.empty()) {
    std::string base = cli.reportPath;
    if (base.size() > 5 && base.ends_with(".json")) {
      base.resize(base.size() - 5);
    }
    return base + ".journal.jsonl";
  }
  return siblingPath(cli.models.front(), ".journal.jsonl");
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cmc: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

void printReport(const service::JobReport& report, bool quiet) {
  std::cout << "== job " << report.job << " ==\n";
  if (!quiet) {
    for (const service::ObligationOutcome& o : report.obligations) {
      std::string text = o.specText;
      if (text.size() > 56) text = text.substr(0, 53) + "...";
      std::cout << "-- [" << o.target << "] " << o.spec << "  " << text
                << "  : " << service::toString(o.verdict) << " (" << o.rule
                << (o.verdictSource != "checked" ? ", " + o.verdictSource
                                                 : "")
                << (o.retried ? ", retried" : "") << ", "
                << service::jsonNumber(o.seconds) << " s)\n";
      if (!o.error.empty()) std::cout << "--   error: " << o.error << "\n";
      if (!o.counterexample.empty()) {
        std::cout << "-- counterexample:\n" << o.counterexample;
      }
    }
  }
  std::cout << "-- verdict: " << service::toString(report.verdict) << " ("
            << report.obligations.size() << " obligations, "
            << service::jsonNumber(report.wallSeconds) << " s wall)\n\n";
}

int armFailpoints(const std::vector<std::string>& specs) {
  if (!util::Failpoint::compiledIn()) {
    // Refuse rather than silently ignore: an operator arming a failpoint
    // against an uninstrumented binary would otherwise believe the fault
    // paths were exercised when nothing fired.
    const char* env = std::getenv("CMC_FAILPOINTS");
    if (!specs.empty()) {
      std::cerr << "cmc: --failpoint needs a build with -DCMC_FAILPOINTS=ON "
                   "(run `cmc failpoints` to see the catalog)\n";
      return 2;
    }
    if (env != nullptr && *env != '\0') {
      std::cerr << "cmc: the CMC_FAILPOINTS env var is set but this build "
                   "has no failpoints; rebuild with -DCMC_FAILPOINTS=ON or "
                   "unset it\n";
      return 2;
    }
  }
  for (const std::string& spec : specs) {
    util::Failpoint::configure(spec);  // throws cmc::Error on a bad spec
  }
  util::Failpoint::configureFromEnv();
  return 0;
}

int runCheck(const CliOptions& cli) {
  if (const int rc = armFailpoints(cli.failpoints); rc != 0) return rc;

  std::vector<service::VerificationJob> jobs;
  for (const std::string& path : cli.models) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cmc: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    service::VerificationJob job;
    job.name = basenameStem(path);
    job.smvText = buffer.str();
    job.sourcePath = path;
    job.options = cli.job;
    jobs.push_back(std::move(job));
  }

  service::ServiceOptions svcOpts;
  svcOpts.threads = cli.threads;
  svcOpts.cacheEnabled = cli.cacheEnabled;
  svcOpts.cacheDir = cli.cacheDir;
  svcOpts.cancelFlag = &gCancelRequested;
  service::VerificationService svc(svcOpts);
  std::ofstream traceFile;
  if (!cli.tracePath.empty()) {
    traceFile.open(cli.tracePath);
    if (!traceFile) {
      std::cerr << "cmc: cannot write " << cli.tracePath << "\n";
      return 2;
    }
  }
  service::RunTrace trace(traceFile.is_open() ? &traceFile : nullptr);

  // Journal: load the prior run first (--resume), then open the same file
  // for append — replayed outcomes are not re-recorded, new ones extend it.
  const std::string journalPath =
      !cli.journalPath.empty() ? cli.journalPath : defaultJournalPath(cli);
  service::JournalReplay replay;
  if (cli.resume) {
    replay = service::loadJournal(journalPath);
    if (!replay.found) {
      std::cerr << "cmc: no journal at " << journalPath
                << "; nothing to resume, running everything\n";
    } else {
      std::cout << "== resume: " << replay.decided.size()
                << " decided obligation(s) in " << journalPath;
      if (replay.corrupt > 0) {
        std::cout << ", " << replay.corrupt << " corrupt line(s) skipped";
      }
      std::cout << " ==\n";
    }
  }
  service::RunJournal journal;
  if (cli.journalEnabled) {
    std::string jerr;
    if (!journal.open(journalPath, &jerr)) {
      std::cerr << "cmc: " << jerr << "; continuing without a journal\n";
    }
  }

  // From here on an interrupt must wind the batch down, not kill it: the
  // handler raises the cancel flag the scheduler and checker poll.
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::vector<service::JobReport> reports;
  if (cli.job.learn) {
    // Learned runs drive the service job by job: each spec spawns its own
    // query obligations through svc (cached and budgeted as usual), so the
    // batch pool interleaving buys nothing here.  The run journal does not
    // cover learned composed obligations — their outcomes are derived from
    // many query jobs, not one recordable attempt.
    reports.reserve(jobs.size());
    for (const service::VerificationJob& job : jobs) {
      reports.push_back(
          agr::runLearnedJob(svc, job, agr::LearnOptions{}, &trace));
    }
  } else {
    reports = svc.runBatch(jobs, &trace,
                           journal.isOpen() ? &journal : nullptr,
                           cli.resume ? &replay : nullptr);
  }

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  // Default trace destination: <model>.trace.jsonl next to each model
  // (events carry their job name, so the combined stream splits cleanly).
  if (cli.tracePath.empty()) {
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      const std::string needle = "\"job\": \"" + jobs[k].name + "\"";
      std::string lines;
      for (const std::string& line : trace.lines()) {
        if (line.find(needle) != std::string::npos) lines += line + "\n";
      }
      writeFile(siblingPath(cli.models[k], ".trace.jsonl"), lines);
    }
  }

  // Summary reports: one combined file with --report, else one per model.
  if (!cli.reportPath.empty()) {
    std::string combined;
    if (reports.size() == 1) {
      combined = reports.front().toJson() + "\n";
    } else {
      combined = "{\"reports\": [\n";
      for (std::size_t k = 0; k < reports.size(); ++k) {
        combined += reports[k].toJson();
        combined += k + 1 < reports.size() ? ",\n" : "\n";
      }
      combined += "]}\n";
    }
    if (!writeFile(cli.reportPath, combined)) return 2;
  } else {
    for (std::size_t k = 0; k < reports.size(); ++k) {
      writeFile(siblingPath(cli.models[k], ".report.json"),
                reports[k].toJson() + "\n");
    }
  }

  service::Verdict verdict = service::Verdict::Holds;
  for (const service::JobReport& report : reports) {
    printReport(report, cli.quiet);
    verdict = service::worseVerdict(verdict, report.verdict);
  }
  if (const service::ObligationCache* cache = svc.cache()) {
    const service::ObligationCacheStats stats = cache->stats();
    std::cout << "== cache: " << stats.hits << " hits, " << stats.misses
              << " misses, " << stats.inserts << " inserts";
    if (stats.loaded > 0) std::cout << ", " << stats.loaded << " loaded";
    if (stats.corruptLines > 0) {
      std::cout << ", " << stats.corruptLines << " corrupt lines skipped";
    }
    std::cout << " (" << cache->size() << " entries) ==\n";
  }
  if (journal.isOpen()) {
    std::uint64_t served = 0;
    for (const service::JobReport& report : reports) {
      served += report.journalHits;
    }
    std::cout << "== journal: " << journal.recorded()
              << " outcome(s) recorded";
    if (cli.resume) std::cout << ", " << served << " served from the journal";
    std::cout << " (" << journal.path() << ") ==\n";
  }

  if (const int sig = gSignal.load(std::memory_order_relaxed); sig != 0) {
    std::cerr << "cmc: interrupted by signal " << sig
              << "; partial results are in the journal, trace and report — "
                 "re-run with --resume to finish\n";
    return 128 + sig;
  }
  // An Error verdict (failed elaboration, or an exception that survived
  // quarantine) is an operational failure even in the default mode.
  if (verdict == service::Verdict::Error) return 5;
  if (!cli.strict) return 0;
  switch (verdict) {
    case service::Verdict::Holds: return 0;
    case service::Verdict::Fails: return 1;
    case service::Verdict::Inconclusive: return 4;
    default: return 3;  // Timeout / MemoryOut (Cancelled exits above)
  }
}

// ---------------------------------------------------------------------------
// cmc serve

struct ServeOptions {
  net::ServerOptions server;
  unsigned threads = 0;
  std::string cacheDir;
  std::string journalPath;
  std::string tracePath;
  bool cacheEnabled = true;
  bool resume = false;
  std::vector<std::string> failpoints;
};

int parseServeArgs(int argc, char** argv, ServeOptions* opts) {
  service::JobOptions& job = opts->server.defaults;
  job.engine = symbolic::EngineMode::Auto;  // CLI default, as in check
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cmc serve: " << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto nextUint = [&](std::uint64_t* out) {
      const char* v = next();
      return v != nullptr && parseUint(v, out);
    };
    std::uint64_t n = 0;
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->server.socketPath = v;
    } else if (arg == "--tcp") {
      if (!nextUint(&n) || n > 65535) return 2;
      opts->server.tcpPort = static_cast<int>(n);
    } else if (arg == "--max-inflight") {
      if (!nextUint(&n)) return 2;
      opts->server.maxInFlight = static_cast<unsigned>(n);
    } else if (arg == "--queue-depth") {
      if (!nextUint(&n)) return 2;
      opts->server.queueDepth = static_cast<std::size_t>(n);
    } else if (arg == "--model-root") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->server.modelRoot = v;
    } else if (arg == "--metrics-interval-ms") {
      if (!nextUint(&n)) return 2;
      opts->server.metricsIntervalSeconds = static_cast<double>(n) / 1e3;
    } else if (arg == "--threads") {
      if (!nextUint(&n)) return 2;
      opts->threads = static_cast<unsigned>(n);
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->cacheDir = v;
    } else if (arg == "--no-cache") {
      opts->cacheEnabled = false;
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->journalPath = v;
    } else if (arg == "--resume") {
      opts->resume = true;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->tracePath = v;
    } else if (arg == "--failpoint") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->failpoints.push_back(v);
    } else if (arg == "--compose") {
      job.compose = true;
    } else if (arg == "--engine") {
      if (!parseEngineMode(next(), &job.engine)) return 2;
    } else if (arg == "--monolithic") {
      warnMonolithicDeprecated("cmc serve");
      job.engine = symbolic::EngineMode::Monolithic;
    } else if (arg == "--no-retry") {
      job.retryOtherEngine = false;
    } else if (arg == "--trace-force") {
      job.traceForce = true;
    } else if (arg == "--reorder") {
      job.reorderBeforeCheck = true;
    } else if (arg == "--deadline-ms") {
      if (!nextUint(&n)) return 2;
      job.limits.deadlineSeconds = static_cast<double>(n) / 1e3;
    } else if (arg == "--node-budget") {
      if (!nextUint(&n)) return 2;
      job.limits.nodeBudget = n;
    } else if (arg == "--cluster") {
      if (!nextUint(&n)) return 2;
      job.clusterThreshold = n;
    } else {
      std::cerr << "cmc serve: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (opts->server.socketPath.empty()) {
    std::cerr << "cmc serve: --socket PATH is required\n";
    return 2;
  }
  if (opts->resume && opts->journalPath.empty()) {
    std::cerr << "cmc serve: --resume needs --journal PATH\n";
    return 2;
  }
  return 0;
}

int runServe(const ServeOptions& opts) {
  if (const int rc = armFailpoints(opts.failpoints); rc != 0) return rc;

  service::MetricsRegistry metrics;
  service::ServiceOptions svcOpts;
  svcOpts.threads = opts.threads;
  svcOpts.cacheEnabled = opts.cacheEnabled;
  svcOpts.cacheDir = opts.cacheDir;
  svcOpts.metrics = &metrics;
  // No service-wide cancel flag: a signal means *drain* (in-flight
  // requests complete and respond), not cancel.  Per-request cancellation
  // arrives through the protocol's CANCEL command instead.
  service::VerificationService svc(svcOpts);

  std::ofstream traceFile;
  if (!opts.tracePath.empty()) {
    traceFile.open(opts.tracePath);
    if (!traceFile) {
      std::cerr << "cmc serve: cannot write " << opts.tracePath << "\n";
      return 2;
    }
  }
  service::RunTrace trace(traceFile.is_open() ? &traceFile : nullptr);

  service::JournalReplay replay;
  if (opts.resume) {
    replay = service::loadJournal(opts.journalPath);
    if (replay.found) {
      std::cout << "cmc serve: resuming " << replay.decided.size()
                << " decided obligation(s) from " << opts.journalPath << "\n";
    }
  }
  service::RunJournal journal;
  if (!opts.journalPath.empty()) {
    std::string jerr;
    if (!journal.open(opts.journalPath, &jerr)) {
      std::cerr << "cmc serve: " << jerr << "; continuing without a journal\n";
    }
  }

  net::Server server(opts.server, svc, metrics, trace,
                     journal.isOpen() ? &journal : nullptr,
                     opts.resume && replay.found ? &replay : nullptr);
  std::string err;
  if (!server.start(&err)) {
    std::cerr << "cmc serve: " << err << "\n";
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::cout << "cmc serve: listening on " << opts.server.socketPath;
  if (server.boundTcpPort() >= 0) {
    std::cout << " and 127.0.0.1:" << server.boundTcpPort();
  }
  std::cout << " (" << svc.threads() << " workers)" << std::endl;

  // The handlers only set gSignal (async-signal-safe); the main loop turns
  // it into a drain.  A DRAIN protocol command also ends this loop.
  while (gSignal.load(std::memory_order_relaxed) == 0 &&
         !server.drainRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (const int sig = gSignal.load(std::memory_order_relaxed); sig != 0) {
    std::cout << "cmc serve: signal " << sig << "; draining" << std::endl;
  }
  server.requestDrain();
  server.shutdown();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  std::cout << "cmc serve: drained; "
            << metrics.counterValue("checks_completed")
            << " check(s) completed, "
            << metrics.counterValue("checks_rejected_busy") << " busy, "
            << metrics.counterValue("checks_rejected_draining")
            << " refused draining";
  if (journal.isOpen()) {
    std::cout << "; " << journal.recorded() << " outcome(s) journaled";
  }
  std::cout << std::endl;
  // Drain-and-exit is the *orderly* path, signal or not: exit 0.
  return 0;
}

// ---------------------------------------------------------------------------
// cmc coordinator

struct CoordinatorCliOptions {
  cluster::CoordinatorOptions coord;
  std::string topologyPath;
  std::string tracePath;
  std::vector<std::string> failpoints;
};

int parseCoordinatorArgs(int argc, char** argv, CoordinatorCliOptions* opts) {
  service::JobOptions& job = opts->coord.defaults;
  job.engine = symbolic::EngineMode::Auto;  // CLI default, as in check
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cmc coordinator: " << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto nextUint = [&](std::uint64_t* out) {
      const char* v = next();
      return v != nullptr && parseUint(v, out);
    };
    std::uint64_t n = 0;
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->coord.socketPath = v;
    } else if (arg == "--tcp") {
      if (!nextUint(&n) || n > 65535) return 2;
      opts->coord.tcpPort = static_cast<int>(n);
    } else if (arg == "--topology") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->topologyPath = v;
    } else if (arg == "--max-inflight") {
      if (!nextUint(&n)) return 2;
      opts->coord.maxInFlight = static_cast<unsigned>(n);
    } else if (arg == "--forward-threads") {
      if (!nextUint(&n)) return 2;
      opts->coord.forwardThreads = static_cast<unsigned>(n);
    } else if (arg == "--probe-interval-ms") {
      if (!nextUint(&n)) return 2;
      opts->coord.probeIntervalSeconds = static_cast<double>(n) / 1e3;
    } else if (arg == "--fail-threshold") {
      if (!nextUint(&n) || n == 0) return 2;
      opts->coord.failThreshold = static_cast<int>(n);
    } else if (arg == "--probation-probes") {
      if (!nextUint(&n) || n == 0) return 2;
      opts->coord.probationProbes = static_cast<int>(n);
    } else if (arg == "--replication") {
      if (!nextUint(&n) || n == 0) return 2;
      opts->coord.replicationFactor = static_cast<int>(n);
    } else if (arg == "--hedge-ms") {
      if (!nextUint(&n)) return 2;
      opts->coord.hedgeDelaySeconds = static_cast<double>(n) / 1e3;
    } else if (arg == "--model-root") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->coord.modelRoot = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->tracePath = v;
    } else if (arg == "--failpoint") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->failpoints.push_back(v);
    } else if (arg == "--compose") {
      job.compose = true;
    } else if (arg == "--engine") {
      if (!parseEngineMode(next(), &job.engine)) return 2;
    } else if (arg == "--monolithic") {
      warnMonolithicDeprecated("cmc coordinator");
      job.engine = symbolic::EngineMode::Monolithic;
    } else if (arg == "--no-retry") {
      job.retryOtherEngine = false;
    } else if (arg == "--trace-force") {
      job.traceForce = true;
    } else if (arg == "--reorder") {
      job.reorderBeforeCheck = true;
    } else if (arg == "--deadline-ms") {
      if (!nextUint(&n)) return 2;
      job.limits.deadlineSeconds = static_cast<double>(n) / 1e3;
    } else if (arg == "--node-budget") {
      if (!nextUint(&n)) return 2;
      job.limits.nodeBudget = n;
    } else if (arg == "--cluster") {
      if (!nextUint(&n)) return 2;
      job.clusterThreshold = n;
    } else {
      std::cerr << "cmc coordinator: unknown option " << arg << "\n";
      return 2;
    }
  }
  if (opts->coord.socketPath.empty() && opts->coord.tcpPort < 0) {
    std::cerr << "cmc coordinator: --socket PATH is required\n";
    return 2;
  }
  if (opts->topologyPath.empty()) {
    std::cerr << "cmc coordinator: --topology FILE is required\n";
    return 2;
  }
  return 0;
}

int runCoordinator(CoordinatorCliOptions& opts) {
  if (const int rc = armFailpoints(opts.failpoints); rc != 0) return rc;

  std::string err;
  if (!cluster::loadTopology(opts.topologyPath, &opts.coord.topology, &err)) {
    std::cerr << "cmc coordinator: " << err << "\n";
    return 2;
  }
  // Remember where the topology came from: SIGHUP re-reads this path.
  opts.coord.topologyPath = opts.topologyPath;

  service::MetricsRegistry metrics;
  std::ofstream traceFile;
  if (!opts.tracePath.empty()) {
    traceFile.open(opts.tracePath);
    if (!traceFile) {
      std::cerr << "cmc coordinator: cannot write " << opts.tracePath << "\n";
      return 2;
    }
  }
  service::RunTrace trace(traceFile.is_open() ? &traceFile : nullptr);

  cluster::Coordinator coordinator(opts.coord, metrics, trace);
  if (!coordinator.start(&err)) {
    std::cerr << "cmc coordinator: " << err << "\n";
    return 2;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGHUP, onReload);

  std::cout << "cmc coordinator: listening on " << opts.coord.socketPath;
  if (coordinator.boundTcpPort() >= 0) {
    std::cout << " and 127.0.0.1:" << coordinator.boundTcpPort();
  }
  std::cout << " fronting " << coordinator.shardsUp() << "/"
            << coordinator.shardsTotal() << " shard(s)" << std::endl;

  // As in serve: a signal means drain, turned into action by this loop.
  // SIGHUP instead means re-read the topology file and diff it against
  // the roster — the zero-downtime alternative to restart-on-edit.
  while (gSignal.load(std::memory_order_relaxed) == 0 &&
         !coordinator.drainRequested()) {
    if (gReloadRequested.exchange(false, std::memory_order_relaxed)) {
      std::string summary, reloadErr;
      if (coordinator.reloadTopology(&summary, &reloadErr)) {
        std::cout << "cmc coordinator: " << summary << std::endl;
      } else {
        std::cerr << "cmc coordinator: reload failed: " << reloadErr
                  << " (roster unchanged)" << std::endl;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (const int sig = gSignal.load(std::memory_order_relaxed); sig != 0) {
    std::cout << "cmc coordinator: signal " << sig << "; draining"
              << std::endl;
  }
  coordinator.requestDrain();
  coordinator.shutdown();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);

  std::cout << "cmc coordinator: drained; "
            << metrics.counterValue("checks_completed")
            << " check(s) completed, "
            << metrics.counterValue("cluster_obligations_forwarded")
            << " obligation(s) forwarded, "
            << metrics.counterValue("cluster_redispatches")
            << " re-dispatched" << std::endl;
  // The shards keep serving; draining the coordinator is orderly: exit 0.
  return 0;
}

// ---------------------------------------------------------------------------
// cmc cache

int runCacheCompact(int argc, char** argv) {
  std::string dir;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::cerr << "cmc cache compact: --cache-dir requires a value\n";
        return 2;
      }
      dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cmc cache compact: unknown option " << arg << "\n";
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::cerr << "cmc cache compact: one cache directory only\n";
      return 2;
    }
  }
  if (dir.empty()) {
    std::cerr << "cmc cache compact: need --cache-dir DIR (or a positional "
                 "directory)\n";
    return 2;
  }
  service::CompactionResult result;
  std::string err;
  if (!service::compactObligationStore(dir, &result, &err)) {
    std::cerr << "cmc cache compact: " << err << "\n";
    return 2;
  }
  std::cout << "== cache compact: " << result.entriesBefore << " -> "
            << result.entriesAfter << " entries, " << result.bytesBefore
            << " -> " << result.bytesAfter << " bytes (" << result.duplicates
            << " duplicate(s) dropped, " << result.corrupt
            << " corrupt line(s) dropped) ==\n";
  return 0;
}

// ---------------------------------------------------------------------------
// cmc submit

struct SubmitOptions {
  std::string socketPath;
  int tcpPort = -1;
  bool status = false;
  bool stats = false;
  bool drain = false;
  bool topology = false;   ///< TOPOLOGY: coordinator roster + lifecycle
  std::string joinName;    ///< JOIN: shard name to add/readmit
  std::string leaveName;   ///< LEAVE: shard name to decommission
  std::string shardSocket; ///< JOIN: the shard's Unix endpoint ...
  int shardTcp = -1;       ///< ... or its loopback TCP port
  std::string cancelId;
  std::string id;
  std::string name;
  std::string reportPath;
  bool strict = false;
  bool quiet = false;
  /// CHECK retry on BUSY/DRAINING or transport failure: off by default
  /// (maxRetries 0 keeps the historical fail-fast exit 6).
  int maxRetries = 0;
  int retryMs = 200;
  service::JobOptions job;
  // Only explicitly given options are sent; the server's defaults cover
  // the rest.
  bool setCompose = false, setEngine = false, setNoRetry = false;
  bool setDeadline = false, setNodeBudget = false, setCluster = false;
  bool setReorder = false, setTraceForce = false, setLearn = false;
  std::vector<std::string> models;
};

int parseSubmitArgs(int argc, char** argv, SubmitOptions* opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cmc submit: " << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    std::uint64_t n = 0;
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->socketPath = v;
    } else if (arg == "--tcp") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &n) || n > 65535) return 2;
      opts->tcpPort = static_cast<int>(n);
    } else if (arg == "--status") {
      opts->status = true;
    } else if (arg == "--stats") {
      opts->stats = true;
    } else if (arg == "--drain") {
      opts->drain = true;
    } else if (arg == "--topology") {
      opts->topology = true;
    } else if (arg == "--join") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->joinName = v;
    } else if (arg == "--leave") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->leaveName = v;
    } else if (arg == "--shard-socket") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->shardSocket = v;
    } else if (arg == "--shard-tcp") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &n) || n == 0 || n > 65535) return 2;
      opts->shardTcp = static_cast<int>(n);
    } else if (arg == "--cancel") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->cancelId = v;
    } else if (arg == "--id") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->id = v;
    } else if (arg == "--name") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->name = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts->reportPath = v;
    } else if (arg == "--strict") {
      opts->strict = true;
    } else if (arg == "--quiet") {
      opts->quiet = true;
    } else if (arg == "--max-retries") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &n)) return 2;
      opts->maxRetries = static_cast<int>(n);
    } else if (arg == "--retry-ms") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &n) || n == 0) return 2;
      opts->retryMs = static_cast<int>(n);
    } else if (arg == "--compose") {
      opts->job.compose = true;
      opts->setCompose = true;
    } else if (arg == "--learn") {
      opts->job.learn = true;
      opts->job.compose = true;
      opts->setLearn = true;
      opts->setCompose = true;
    } else if (arg == "--engine") {
      if (!parseEngineMode(next(), &opts->job.engine)) return 2;
      opts->setEngine = true;
    } else if (arg == "--monolithic") {
      warnMonolithicDeprecated("cmc submit");
      opts->job.engine = symbolic::EngineMode::Monolithic;
      opts->setEngine = true;
    } else if (arg == "--no-retry") {
      opts->job.retryOtherEngine = false;
      opts->setNoRetry = true;
    } else if (arg == "--trace-force") {
      opts->job.traceForce = true;
      opts->setTraceForce = true;
    } else if (arg == "--reorder") {
      opts->job.reorderBeforeCheck = true;
      opts->setReorder = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &n)) return 2;
      opts->job.limits.deadlineSeconds = static_cast<double>(n) / 1e3;
      opts->setDeadline = true;
    } else if (arg == "--node-budget") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &opts->job.limits.nodeBudget))
        return 2;
      opts->setNodeBudget = true;
    } else if (arg == "--cluster") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &opts->job.clusterThreshold))
        return 2;
      opts->setCluster = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cmc submit: unknown option " << arg << "\n";
      return 2;
    } else {
      opts->models.push_back(arg);
    }
  }
  if (opts->socketPath.empty() && opts->tcpPort < 0) {
    std::cerr << "cmc submit: need --socket PATH or --tcp PORT\n";
    return 2;
  }
  if (!opts->joinName.empty() &&
      opts->shardSocket.empty() == (opts->shardTcp < 0)) {
    std::cerr << "cmc submit: --join needs exactly one of --shard-socket "
                 "PATH or --shard-tcp PORT\n";
    return 2;
  }
  if (opts->joinName.empty() &&
      (!opts->shardSocket.empty() || opts->shardTcp >= 0)) {
    std::cerr << "cmc submit: --shard-socket/--shard-tcp only make sense "
                 "with --join NAME\n";
    return 2;
  }
  const bool control = opts->status || opts->stats || opts->drain ||
                       opts->topology || !opts->joinName.empty() ||
                       !opts->leaveName.empty() || !opts->cancelId.empty();
  if (control && !opts->models.empty()) {
    std::cerr << "cmc submit: control commands take no model arguments\n";
    return 2;
  }
  if (!control && opts->models.empty()) {
    std::cerr << "cmc submit: no model files given\n";
    return 2;
  }
  return 0;
}

std::string buildCheckRequest(const SubmitOptions& opts, const std::string& id,
                              const std::string& name,
                              const std::string& smv) {
  service::JsonObject req;
  req.put("cmd", "CHECK").put("id", id);
  if (!name.empty()) req.put("name", name);
  if (opts.setCompose) req.putBool("compose", opts.job.compose);
  if (opts.setLearn) req.putBool("learn", opts.job.learn);
  if (opts.setReorder) req.putBool("reorder", opts.job.reorderBeforeCheck);
  if (opts.setNoRetry) req.putBool("no_retry", !opts.job.retryOtherEngine);
  if (opts.setTraceForce) req.putBool("trace_force", opts.job.traceForce);
  if (opts.setEngine) {
    req.put("engine", symbolic::toString(opts.job.engine));
  }
  if (opts.setDeadline) {
    req.putUint("deadline_ms", static_cast<std::uint64_t>(
                                   opts.job.limits.deadlineSeconds * 1e3));
  }
  if (opts.setNodeBudget) req.putUint("node_budget", opts.job.limits.nodeBudget);
  if (opts.setCluster) req.putUint("cluster", opts.job.clusterThreshold);
  // Free text goes last: flat extraction of the typed fields above then
  // never scans across the (escaped) model text.
  req.put("smv", smv);
  return req.str();
}

/// Render one CHECK response; returns the submit exit code contribution
/// (0 ok, 2 bad request, 6 refused) and folds the verdict into *worst.
int renderCheckResponse(const std::string& resp, bool quiet,
                        service::Verdict* worst, std::string* reportOut) {
  bool ok = false;
  service::jsonExtractBool(resp, "ok", &ok);
  std::string id;
  service::jsonExtractString(resp, "id", &id);
  if (!ok) {
    std::string code, message;
    service::jsonExtractString(resp, "code", &code);
    service::jsonExtractString(resp, "error", &message);
    std::cerr << "cmc submit: " << (id.empty() ? "request" : id) << ": "
              << code << ": " << message << "\n";
    return code == net::kBusy || code == net::kDraining ? 6 : 2;
  }
  std::string job, verdictText;
  service::jsonExtractString(resp, "job", &job);
  service::jsonExtractString(resp, "verdict", &verdictText);
  std::uint64_t obligations = 0, holds = 0, fails = 0, cacheHits = 0;
  service::jsonExtractUint(resp, "obligations", &obligations);
  service::jsonExtractUint(resp, "holds", &holds);
  service::jsonExtractUint(resp, "fails", &fails);
  service::jsonExtractUint(resp, "cache_hits", &cacheHits);
  double wall = 0.0, wait = 0.0;
  service::jsonExtractDouble(resp, "wall_seconds", &wall);
  service::jsonExtractDouble(resp, "queue_wait_seconds", &wait);
  std::cout << "== job " << job << ": " << verdictText << " (" << obligations
            << " obligations, " << holds << " hold, " << fails << " fail, "
            << cacheHits << " cache hits, " << service::jsonNumber(wall)
            << " s wall, " << service::jsonNumber(wait) << " s queued) ==\n";
  if (!quiet) {
    bool queueCancelled = false;
    service::jsonExtractBool(resp, "cancelled_in_queue", &queueCancelled);
    if (queueCancelled) std::cout << "-- cancelled while queued --\n";
  }
  service::Verdict verdict = service::Verdict::Error;
  if (service::verdictFromString(verdictText, &verdict)) {
    *worst = service::worseVerdict(*worst, verdict);
  }
  if (reportOut != nullptr) {
    service::jsonExtractString(resp, "report", reportOut);
  }
  return 0;
}

/// Send one CHECK, retrying BUSY/DRAINING refusals and transport failures
/// with jittered exponential backoff when --max-retries is set.  True with
/// *resp filled on any server response (the caller maps refusal codes to
/// exit 6 as before); false with *err after the last transport failure.
bool sendCheckWithRetry(net::Client& client, const SubmitOptions& opts,
                        const std::string& reqLine, std::string* resp,
                        std::string* err) {
  return client.requestWithRetry(
      reqLine, opts.maxRetries, opts.retryMs, resp, err,
      [&opts](const std::string& why, int attempt, int delay) {
        std::cerr << "cmc submit: " << why << "; retry " << attempt << "/"
                  << opts.maxRetries << " in " << delay << " ms\n";
      });
}

int runSubmit(const SubmitOptions& opts) {
  net::Client client;
  std::string err;
  // The initial dial honors the retry budget too: a shard or coordinator
  // restarting (connection refused, socket not yet bound) looks exactly
  // like a mid-request transport failure from the caller's side.  The
  // final failure keeps the historical exit 2.
  const auto logRetry = [&opts](const std::string& why, int attempt,
                                int delay) {
    std::cerr << "cmc submit: " << why << "; retry " << attempt << "/"
              << opts.maxRetries << " in " << delay << " ms\n";
  };
  if (!client.connectRetrying(opts.socketPath, opts.tcpPort, opts.maxRetries,
                              opts.retryMs, &err, logRetry)) {
    std::cerr << "cmc submit: " << err << "\n";
    return 2;
  }

  // Control commands: one request, print, done.
  if (opts.status || opts.stats || opts.drain || opts.topology ||
      !opts.joinName.empty() || !opts.leaveName.empty() ||
      !opts.cancelId.empty()) {
    service::JsonObject req;
    if (opts.status) req.put("cmd", "STATUS");
    else if (opts.stats) req.put("cmd", "STATS");
    else if (opts.drain) req.put("cmd", "DRAIN");
    else if (opts.topology) req.put("cmd", "TOPOLOGY");
    else if (!opts.joinName.empty()) {
      req.put("cmd", "JOIN").put("shard", opts.joinName);
      if (opts.shardTcp >= 0) {
        req.putUint("tcp", static_cast<std::uint64_t>(opts.shardTcp));
      } else {
        req.put("socket", opts.shardSocket);
      }
    }
    else if (!opts.leaveName.empty())
      req.put("cmd", "LEAVE").put("shard", opts.leaveName);
    else req.put("cmd", "CANCEL").put("id", opts.cancelId);
    std::string resp;
    if (!client.request(req.str(), &resp, &err)) {
      std::cerr << "cmc submit: " << err << "\n";
      return 2;
    }
    bool ok = false;
    service::jsonExtractBool(resp, "ok", &ok);
    if (opts.stats && ok) {
      // The greppable rendering: one metric per line.
      std::string text;
      if (service::jsonExtractString(resp, "metrics_text", &text)) {
        std::cout << text;
      }
      double uptime = 0.0;
      std::uint64_t entries = 0;
      service::jsonExtractDouble(resp, "uptime_seconds", &uptime);
      if (service::jsonExtractUint(resp, "cache_entries", &entries)) {
        std::cout << "cache_entries " << entries << "\n";
      }
      std::cout << "uptime_seconds " << service::jsonNumber(uptime) << "\n";
    } else {
      std::cout << resp << "\n";
    }
    return ok ? 0 : 2;
  }

  // CHECK per model, sequentially on this connection (run several submit
  // processes for concurrency; the daemon interleaves them).
  int exitCode = 0;
  service::Verdict worst = service::Verdict::Holds;
  std::vector<std::string> reports;
  for (std::size_t k = 0; k < opts.models.size(); ++k) {
    const std::string& path = opts.models[k];
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cmc submit: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string id = opts.id;
    if (id.empty()) {
      id = "submit-" + std::to_string(::getpid()) + "-" + std::to_string(k);
    } else if (opts.models.size() > 1) {
      id += "-" + std::to_string(k);
    }
    const std::string name = !opts.name.empty() && opts.models.size() == 1
                                 ? opts.name
                                 : basenameStem(path);
    std::string resp;
    if (!sendCheckWithRetry(client, opts,
                            buildCheckRequest(opts, id, name, buffer.str()),
                            &resp, &err)) {
      std::cerr << "cmc submit: " << err << "\n";
      return 2;
    }
    std::string report;
    const int rc = renderCheckResponse(resp, opts.quiet, &worst,
                                       opts.reportPath.empty() ? nullptr
                                                               : &report);
    if (rc != 0) exitCode = rc;
    if (!report.empty()) reports.push_back(std::move(report));
  }

  if (!opts.reportPath.empty() && !reports.empty()) {
    std::string combined;
    if (reports.size() == 1) {
      combined = reports.front() + "\n";
    } else {
      combined = "{\"reports\": [\n";
      for (std::size_t k = 0; k < reports.size(); ++k) {
        combined += reports[k];
        combined += k + 1 < reports.size() ? ",\n" : "\n";
      }
      combined += "]}\n";
    }
    if (!writeFile(opts.reportPath, combined)) return 2;
  }

  if (exitCode != 0) return exitCode;
  if (worst == service::Verdict::Error) return 5;
  if (!opts.strict) return 0;
  switch (worst) {
    case service::Verdict::Holds: return 0;
    case service::Verdict::Fails: return 1;
    case service::Verdict::Inconclusive: return 4;
    default: return 3;
  }
}

int runFailpoints() {
  if (util::Failpoint::compiledIn()) {
    std::cout << "failpoint sites (compiled in; arm with --failpoint or the "
                 "CMC_FAILPOINTS env var):\n";
  } else {
    std::cout << "failpoint sites (NOT compiled into this build; configure "
                 "with -DCMC_FAILPOINTS=ON to arm them):\n";
  }
  for (const util::Failpoint::SiteInfo& s : util::Failpoint::sites()) {
    std::printf("  %-22s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::cout << "actions: error | throw | delay(ms) | 1in(n)   "
               "(see docs/OPERATIONS.md)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  if (command == "version" || command == "--version") {
    std::cout << "cmc " << util::versionString()
              << " (compositional model checker)\n";
    return 0;
  }
  if (command == "help" || command == "--help") {
    std::cout << kUsage;
    return 0;
  }
  if (command == "failpoints") {
    return runFailpoints();
  }
  try {
    if (command == "check" || command == "learn") {
      CliOptions cli;
      if (command == "learn") {
        cli.job.learn = true;
        cli.job.compose = true;
      }
      if (const int rc = parseArgs(argc, argv, &cli); rc != 0) return rc;
      return runCheck(cli);
    }
    if (command == "serve") {
      ServeOptions opts;
      if (const int rc = parseServeArgs(argc, argv, &opts); rc != 0)
        return rc;
      return runServe(opts);
    }
    if (command == "coordinator") {
      CoordinatorCliOptions opts;
      if (const int rc = parseCoordinatorArgs(argc, argv, &opts); rc != 0)
        return rc;
      return runCoordinator(opts);
    }
    if (command == "submit") {
      SubmitOptions opts;
      if (const int rc = parseSubmitArgs(argc, argv, &opts); rc != 0)
        return rc;
      return runSubmit(opts);
    }
    if (command == "cache") {
      if (argc < 3 || std::string(argv[2]) != "compact") {
        std::cerr << "cmc cache: the only subcommand is `compact`\n";
        return 2;
      }
      return runCacheCompact(argc, argv);
    }
  } catch (const Error& e) {
    std::cerr << "cmc: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "cmc: unknown command '" << command << "'\n" << kUsage;
  return 2;
}
