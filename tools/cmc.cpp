// cmc — the production command-line front end of the verification service.
//
//   cmc check [options] <model.smv> [more.smv ...]
//   cmc failpoints | version | help
//
// Each model file becomes one VerificationJob; all jobs run as one batch on
// the service's thread pool, so obligations of different models interleave.
// Every job writes a JSONL event trace and a summary JSON report (schema in
// README.md) next to its model — override the destinations with --trace and
// --report.  A crash-safe run journal records every outcome as it is
// decided; `cmc check --resume` replays it after a crash or interrupt.
//
//   cmc check --compose --deadline-ms 5000 --node-budget 2000000
//             --report out.json models/*.smv          (one command line)
//
// Exit codes follow the SMV-family convention: verdicts are data, not exit
// status.  0 = verification ran to completion (per-spec verdicts are in the
// output and the report); 2 = usage, I/O or elaboration error; 5 = some
// obligation ended in an Error verdict (exception despite quarantine);
// 128+N = interrupted by signal N after flushing partial results (130 =
// SIGINT, 143 = SIGTERM).  With --strict the verdict is additionally mapped
// onto the exit code for CI gating: 1 = some spec fails, 3 = budget
// exhausted (Timeout / MemoryOut), 4 = Inconclusive on both engines.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/scheduler.hpp"
#include "util/failpoint.hpp"

using namespace cmc;

namespace {

constexpr const char* kVersion = "cmc 0.2.0 (compositional model checker)";

constexpr const char* kUsage = R"(usage: cmc <command> [options] <model.smv> [more.smv ...]

commands:
  check       parse, elaborate and verify every SPEC of the given models
  failpoints  list the fault-injection sites (see docs/OPERATIONS.md)
  version     print the version string
  help        print this help

cmc check options:
  --compose          also verify each spec on the composition of all modules
                     (compositional rules first, certificate in the report)
  --monolithic       first-attempt engine: monolithic transition relation
                     (default: partitioned with early quantification)
  --no-retry         disable the budget-exhaustion retry on the other engine
  --deadline-ms N    per-attempt wall-clock deadline in milliseconds
  --node-budget N    per-attempt budget of live BDD nodes
  --cluster N        partition clustering threshold in nodes (default 1024)
  --reorder          sift variables after elaboration, before checking
  --threads N        worker threads (default: hardware concurrency)
  --cache-dir DIR    persist decided verdicts to DIR/obligations.jsonl and
                     reload them on start-up, so a re-run of an unchanged
                     model serves its verdicts from the cache
  --no-cache         disable the content-addressed obligation cache
  --report PATH      write one combined summary JSON to PATH
                     (default: <model>.report.json next to each model)
  --trace PATH       write one combined JSONL event trace to PATH
                     (default: <model>.trace.jsonl next to each model)
  --journal PATH     crash-safe run journal: every outcome is appended (and
                     flushed) the moment it is decided (default: alongside
                     the report — <report>.journal.jsonl with --report, else
                     <first model>.journal.jsonl)
  --no-journal       disable the run journal
  --resume           load the journal and serve the obligations it already
                     decided (verdict_source "journal"); re-run the rest
  --failpoint S=A    arm fault-injection site S with action A (error, throw,
                     delay(ms), 1in(n)); repeatable; needs a build with
                     -DCMC_FAILPOINTS=ON (the CMC_FAILPOINTS env var takes
                     a comma-separated list of the same specs)
  --strict           map the aggregate verdict onto the exit code
                     (1 = some spec fails, 3 = budget exhausted,
                     4 = inconclusive); the default, as in the SMV family,
                     is to exit 0 whenever verification ran to completion
  --quiet            only print the final per-job verdicts

exit codes: 0 completed (all hold under --strict); 1 --strict and a spec
fails; 2 usage/I-O/model error; 3 --strict and Timeout/MemoryOut;
4 --strict and Inconclusive; 5 Error verdict; 130/143 interrupted
(SIGINT/SIGTERM; journal, trace and report hold the partial results)
)";

struct CliOptions {
  service::JobOptions job;
  unsigned threads = 0;
  std::string reportPath;
  std::string tracePath;
  std::string cacheDir;
  std::string journalPath;
  bool cacheEnabled = true;
  bool journalEnabled = true;
  bool resume = false;
  bool strict = false;
  bool quiet = false;
  std::vector<std::string> models;
  std::vector<std::string> failpoints;
};

/// Set by the SIGINT/SIGTERM handler; polled by the scheduler (via
/// ServiceOptions::cancelFlag) and by the checker's cancel hook, so a batch
/// winds down cooperatively: running attempts abort as Cancelled, queued
/// obligations drain, and everything decided so far is already journaled.
std::atomic<bool> gCancelRequested{false};
std::atomic<int> gSignal{0};

extern "C" void onSignal(int sig) {
  gCancelRequested.store(true, std::memory_order_relaxed);
  gSignal.store(sig, std::memory_order_relaxed);
  // A second signal falls through to the default action (immediate kill)
  // in case the wind-down itself wedges.
  std::signal(sig, SIG_DFL);
}

std::string basenameStem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() > 4 && name.ends_with(".smv")) {
    name.resize(name.size() - 4);
  }
  return name;
}

std::string siblingPath(const std::string& modelPath, const char* suffix) {
  std::string base = modelPath;
  if (base.size() > 4 && base.ends_with(".smv")) {
    base.resize(base.size() - 4);
  }
  return base + suffix;
}

bool parseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

int parseArgs(int argc, char** argv, CliOptions* cli) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "cmc: " << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--compose") {
      cli->job.compose = true;
    } else if (arg == "--monolithic") {
      cli->job.usePartitionedTrans = false;
    } else if (arg == "--no-retry") {
      cli->job.retryOtherEngine = false;
    } else if (arg == "--reorder") {
      cli->job.reorderBeforeCheck = true;
    } else if (arg == "--strict") {
      cli->strict = true;
    } else if (arg == "--quiet") {
      cli->quiet = true;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      std::uint64_t ms = 0;
      if (v == nullptr || !parseUint(v, &ms)) return 2;
      cli->job.limits.deadlineSeconds = static_cast<double>(ms) / 1e3;
    } else if (arg == "--node-budget") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &cli->job.limits.nodeBudget)) return 2;
    } else if (arg == "--cluster") {
      const char* v = next();
      if (v == nullptr || !parseUint(v, &cli->job.clusterThreshold)) return 2;
    } else if (arg == "--threads") {
      const char* v = next();
      std::uint64_t n = 0;
      if (v == nullptr || !parseUint(v, &n)) return 2;
      cli->threads = static_cast<unsigned>(n);
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->reportPath = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->tracePath = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->cacheDir = v;
    } else if (arg == "--no-cache") {
      cli->cacheEnabled = false;
    } else if (arg == "--journal") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->journalPath = v;
    } else if (arg == "--no-journal") {
      cli->journalEnabled = false;
    } else if (arg == "--resume") {
      cli->resume = true;
    } else if (arg == "--failpoint") {
      const char* v = next();
      if (v == nullptr) return 2;
      cli->failpoints.push_back(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cmc: unknown option " << arg << "\n" << kUsage;
      return 2;
    } else {
      cli->models.push_back(arg);
    }
  }
  if (cli->models.empty()) {
    std::cerr << "cmc: no model files given\n" << kUsage;
    return 2;
  }
  if (cli->resume && !cli->journalEnabled) {
    std::cerr << "cmc: --resume needs the journal (drop --no-journal)\n";
    return 2;
  }
  return 0;
}

/// The journal lives alongside the report: next to the combined report
/// when --report is given, else next to the first model.
std::string defaultJournalPath(const CliOptions& cli) {
  if (!cli.reportPath.empty()) {
    std::string base = cli.reportPath;
    if (base.size() > 5 && base.ends_with(".json")) {
      base.resize(base.size() - 5);
    }
    return base + ".journal.jsonl";
  }
  return siblingPath(cli.models.front(), ".journal.jsonl");
}

bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cmc: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

void printReport(const service::JobReport& report, bool quiet) {
  std::cout << "== job " << report.job << " ==\n";
  if (!quiet) {
    for (const service::ObligationOutcome& o : report.obligations) {
      std::string text = o.specText;
      if (text.size() > 56) text = text.substr(0, 53) + "...";
      std::cout << "-- [" << o.target << "] " << o.spec << "  " << text
                << "  : " << service::toString(o.verdict) << " (" << o.rule
                << (o.verdictSource != "checked" ? ", " + o.verdictSource
                                                 : "")
                << (o.retried ? ", retried" : "") << ", "
                << service::jsonNumber(o.seconds) << " s)\n";
      if (!o.error.empty()) std::cout << "--   error: " << o.error << "\n";
      if (!o.counterexample.empty()) {
        std::cout << "-- counterexample:\n" << o.counterexample;
      }
    }
  }
  std::cout << "-- verdict: " << service::toString(report.verdict) << " ("
            << report.obligations.size() << " obligations, "
            << service::jsonNumber(report.wallSeconds) << " s wall)\n\n";
}

int runCheck(const CliOptions& cli) {
  if (!util::Failpoint::compiledIn()) {
    // Refuse rather than silently ignore: an operator arming a failpoint
    // against an uninstrumented binary would otherwise believe the fault
    // paths were exercised when nothing fired.
    const char* env = std::getenv("CMC_FAILPOINTS");
    if (!cli.failpoints.empty()) {
      std::cerr << "cmc: --failpoint needs a build with -DCMC_FAILPOINTS=ON "
                   "(run `cmc failpoints` to see the catalog)\n";
      return 2;
    }
    if (env != nullptr && *env != '\0') {
      std::cerr << "cmc: the CMC_FAILPOINTS env var is set but this build "
                   "has no failpoints; rebuild with -DCMC_FAILPOINTS=ON or "
                   "unset it\n";
      return 2;
    }
  }
  for (const std::string& spec : cli.failpoints) {
    util::Failpoint::configure(spec);  // throws cmc::Error on a bad spec
  }
  util::Failpoint::configureFromEnv();

  std::vector<service::VerificationJob> jobs;
  for (const std::string& path : cli.models) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cmc: cannot open " << path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    service::VerificationJob job;
    job.name = basenameStem(path);
    job.smvText = buffer.str();
    job.sourcePath = path;
    job.options = cli.job;
    jobs.push_back(std::move(job));
  }

  service::ServiceOptions svcOpts;
  svcOpts.threads = cli.threads;
  svcOpts.cacheEnabled = cli.cacheEnabled;
  svcOpts.cacheDir = cli.cacheDir;
  svcOpts.cancelFlag = &gCancelRequested;
  service::VerificationService svc(svcOpts);
  std::ofstream traceFile;
  if (!cli.tracePath.empty()) {
    traceFile.open(cli.tracePath);
    if (!traceFile) {
      std::cerr << "cmc: cannot write " << cli.tracePath << "\n";
      return 2;
    }
  }
  service::RunTrace trace(traceFile.is_open() ? &traceFile : nullptr);

  // Journal: load the prior run first (--resume), then open the same file
  // for append — replayed outcomes are not re-recorded, new ones extend it.
  const std::string journalPath =
      !cli.journalPath.empty() ? cli.journalPath : defaultJournalPath(cli);
  service::JournalReplay replay;
  if (cli.resume) {
    replay = service::loadJournal(journalPath);
    if (!replay.found) {
      std::cerr << "cmc: no journal at " << journalPath
                << "; nothing to resume, running everything\n";
    } else {
      std::cout << "== resume: " << replay.decided.size()
                << " decided obligation(s) in " << journalPath;
      if (replay.corrupt > 0) {
        std::cout << ", " << replay.corrupt << " corrupt line(s) skipped";
      }
      std::cout << " ==\n";
    }
  }
  service::RunJournal journal;
  if (cli.journalEnabled) {
    std::string jerr;
    if (!journal.open(journalPath, &jerr)) {
      std::cerr << "cmc: " << jerr << "; continuing without a journal\n";
    }
  }

  // From here on an interrupt must wind the batch down, not kill it: the
  // handler raises the cancel flag the scheduler and checker poll.
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  const std::vector<service::JobReport> reports = svc.runBatch(
      jobs, &trace, journal.isOpen() ? &journal : nullptr,
      cli.resume ? &replay : nullptr);

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  // Default trace destination: <model>.trace.jsonl next to each model
  // (events carry their job name, so the combined stream splits cleanly).
  if (cli.tracePath.empty()) {
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      const std::string needle = "\"job\": \"" + jobs[k].name + "\"";
      std::string lines;
      for (const std::string& line : trace.lines()) {
        if (line.find(needle) != std::string::npos) lines += line + "\n";
      }
      writeFile(siblingPath(cli.models[k], ".trace.jsonl"), lines);
    }
  }

  // Summary reports: one combined file with --report, else one per model.
  if (!cli.reportPath.empty()) {
    std::string combined;
    if (reports.size() == 1) {
      combined = reports.front().toJson() + "\n";
    } else {
      combined = "{\"reports\": [\n";
      for (std::size_t k = 0; k < reports.size(); ++k) {
        combined += reports[k].toJson();
        combined += k + 1 < reports.size() ? ",\n" : "\n";
      }
      combined += "]}\n";
    }
    if (!writeFile(cli.reportPath, combined)) return 2;
  } else {
    for (std::size_t k = 0; k < reports.size(); ++k) {
      writeFile(siblingPath(cli.models[k], ".report.json"),
                reports[k].toJson() + "\n");
    }
  }

  service::Verdict verdict = service::Verdict::Holds;
  for (const service::JobReport& report : reports) {
    printReport(report, cli.quiet);
    verdict = service::worseVerdict(verdict, report.verdict);
  }
  if (const service::ObligationCache* cache = svc.cache()) {
    const service::ObligationCacheStats stats = cache->stats();
    std::cout << "== cache: " << stats.hits << " hits, " << stats.misses
              << " misses, " << stats.inserts << " inserts";
    if (stats.loaded > 0) std::cout << ", " << stats.loaded << " loaded";
    if (stats.corruptLines > 0) {
      std::cout << ", " << stats.corruptLines << " corrupt lines skipped";
    }
    std::cout << " (" << cache->size() << " entries) ==\n";
  }
  if (journal.isOpen()) {
    std::uint64_t served = 0;
    for (const service::JobReport& report : reports) {
      served += report.journalHits;
    }
    std::cout << "== journal: " << journal.recorded()
              << " outcome(s) recorded";
    if (cli.resume) std::cout << ", " << served << " served from the journal";
    std::cout << " (" << journal.path() << ") ==\n";
  }

  if (const int sig = gSignal.load(std::memory_order_relaxed); sig != 0) {
    std::cerr << "cmc: interrupted by signal " << sig
              << "; partial results are in the journal, trace and report — "
                 "re-run with --resume to finish\n";
    return 128 + sig;
  }
  // An Error verdict (failed elaboration, or an exception that survived
  // quarantine) is an operational failure even in the default mode.
  if (verdict == service::Verdict::Error) return 5;
  if (!cli.strict) return 0;
  switch (verdict) {
    case service::Verdict::Holds: return 0;
    case service::Verdict::Fails: return 1;
    case service::Verdict::Inconclusive: return 4;
    default: return 3;  // Timeout / MemoryOut (Cancelled exits above)
  }
}

int runFailpoints() {
  if (util::Failpoint::compiledIn()) {
    std::cout << "failpoint sites (compiled in; arm with --failpoint or the "
                 "CMC_FAILPOINTS env var):\n";
  } else {
    std::cout << "failpoint sites (NOT compiled into this build; configure "
                 "with -DCMC_FAILPOINTS=ON to arm them):\n";
  }
  for (const util::Failpoint::SiteInfo& s : util::Failpoint::sites()) {
    std::printf("  %-22s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::cout << "actions: error | throw | delay(ms) | 1in(n)   "
               "(see docs/OPERATIONS.md)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  if (command == "version" || command == "--version") {
    std::cout << kVersion << "\n";
    return 0;
  }
  if (command == "help" || command == "--help") {
    std::cout << kUsage;
    return 0;
  }
  if (command == "failpoints") {
    return runFailpoints();
  }
  if (command != "check") {
    std::cerr << "cmc: unknown command '" << command << "'\n" << kUsage;
    return 2;
  }
  CliOptions cli;
  if (const int rc = parseArgs(argc, argv, &cli); rc != 0) return rc;
  try {
    return runCheck(cli);
  } catch (const Error& e) {
    std::cerr << "cmc: " << e.what() << "\n";
    return 2;
  }
}
