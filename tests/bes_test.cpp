// Tests for the BES solving backend: translation coverage of the
// alternation-free CTL fragment (Holds and Fails with a counterexample),
// the supports() gate the scheduler's fallback relies on, cooperative
// cancellation, cross-validation against the symbolic checker over every
// models/*.smv, and the engine-probe regression (gc threshold pinned and
// restored so a tight BudgetToken stays usable after a probe).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bes/bes_checker.hpp"
#include "service/budget.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/engine_choice.hpp"

namespace cmc::bes {
namespace {

namespace fs = std::filesystem;

const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
SPEC AG EF s = c
SPEC AF (s = c)
SPEC AG (s = a)
SPEC E [ s = a U s = b ]
SPEC A [ s = a U s = c ]
)";

TEST(BesChecker, DecidesCoreFragmentAndProducesCounterexample) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
  ASSERT_EQ(mod.specs.size(), 6u);

  BesChecker checker(mod.sys);
  // AG invariant, AG EF (reset property), and AF eventuality hold on the
  // a->b->c chain; AG (s = a) fails at the second state.  The until specs
  // fail under the paper's check-all-I-states semantics (state c is an
  // initial state too, and satisfies neither side).
  EXPECT_TRUE(checker.holds(mod.specs[0]).holds);
  EXPECT_TRUE(checker.holds(mod.specs[1]).holds);
  EXPECT_TRUE(checker.holds(mod.specs[2]).holds);
  const BesResult fails = checker.holds(mod.specs[3]);
  EXPECT_FALSE(fails.holds);
  EXPECT_FALSE(fails.counterexample.empty());
  EXPECT_FALSE(checker.holds(mod.specs[4]).holds);
  EXPECT_FALSE(checker.holds(mod.specs[5]).holds);

  // And every one of them matches the symbolic checker exactly.
  symbolic::Checker sym(mod.sys);
  for (const ctl::Spec& spec : mod.specs) {
    EXPECT_EQ(checker.holds(spec).holds, sym.holds(spec)) << spec.name;
  }
}

TEST(BesChecker, SupportsGateExplainsDeclinedSpecs) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);

  std::string whyNot;
  EXPECT_TRUE(BesChecker::supports(mod.sys, mod.specs[0], &whyNot)) << whyNot;

  // An atom outside the system's alphabet is declined with a reason, not
  // decided wrongly.
  ctl::Spec alien = mod.specs[0];
  alien.f = ctl::atom("no_such_var");
  whyNot.clear();
  EXPECT_FALSE(BesChecker::supports(mod.sys, alien, &whyNot));
  EXPECT_FALSE(whyNot.empty());

  // A non-propositional restriction init (temporal operator inside I) is
  // outside the enumerable-preimage fragment.
  ctl::Spec temporalInit = mod.specs[0];
  temporalInit.r.init = ctl::EX(ctl::eq("s", "a"));
  whyNot.clear();
  EXPECT_FALSE(BesChecker::supports(mod.sys, temporalInit, &whyNot));
  EXPECT_FALSE(whyNot.empty());
}

TEST(BesChecker, CancelHookAbortsTheSolve) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
  BesOptions opts;
  opts.cancelCheck = [] {
    throw symbolic::CancelledError(symbolic::CancelReason::External,
                                   "test cancel");
  };
  BesChecker checker(mod.sys, opts);
  EXPECT_THROW(checker.holds(mod.specs[0]), symbolic::CancelledError);
}

// ---------------------------------------------------------------------------
// Cross-validation: BES verdicts match the symbolic checker on every
// models/*.smv, including the nontrivial-fairness model (dense path).
// ---------------------------------------------------------------------------

std::string readFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BesChecker, MatchesSymbolicCheckerOnEveryModel) {
  std::size_t specsCompared = 0;
  std::size_t densePathSpecs = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(CMC_MODELS_DIR)) {
    if (entry.path().extension() != ".smv") continue;
    const std::string text = readFile(entry.path());
    symbolic::Context ctx(1 << 16);
    const std::vector<smv::ElaboratedModule> modules =
        smv::elaborateProgram(ctx, text);
    for (const smv::ElaboratedModule& mod : modules) {
      symbolic::Checker symbolicChecker(mod.sys);
      BesChecker besChecker(mod.sys);
      for (const ctl::Spec& spec : mod.specs) {
        std::string whyNot;
        ASSERT_TRUE(BesChecker::supports(mod.sys, spec, &whyNot))
            << entry.path().filename() << " " << mod.sys.name << "."
            << spec.name << ": " << whyNot;
        const BesResult bes = besChecker.holds(spec);
        EXPECT_EQ(bes.holds, symbolicChecker.holds(spec))
            << entry.path().filename() << " " << mod.sys.name << "."
            << spec.name;
        if (!bes.holds) EXPECT_FALSE(bes.counterexample.empty());
        if (bes.stats.densePath) ++densePathSpecs;
        ++specsCompared;
      }
    }
  }
  // The models directory must actually exercise both solver paths.
  EXPECT_GE(specsCompared, 20u);
  EXPECT_GE(densePathSpecs, 1u);  // figure2_strong_fairness.smv
}

// ---------------------------------------------------------------------------
// Engine-probe regression (satellite 1): chooseEngine's materialization
// probe must not leak its allocation burst into the caller's GC policy or
// live-node count — a tight BudgetToken checked right after a probe used
// to see the probe's dead intermediates and report a spurious MemoryOut.
// ---------------------------------------------------------------------------

TEST(EngineProbe, RestoresGcThresholdAndSweepsAbortedProbes) {
  // The composed AFS-2 system is the documented blow-up case: the probe
  // aborts at the cap, so every allocation it made is garbage.
  symbolic::Context ctx(1 << 16);
  const std::vector<smv::ElaboratedModule> modules = smv::elaborateProgram(
      ctx, readFile(fs::path(CMC_MODELS_DIR) / "afs2_composed.smv"));
  std::vector<symbolic::SymbolicSystem> parts;
  for (const smv::ElaboratedModule& mod : modules) {
    symbolic::SymbolicSystem sys = mod.sys;
    symbolic::addReflexive(sys);
    parts.push_back(std::move(sys));
  }
  const symbolic::SymbolicSystem composed = symbolic::composeAll(parts);

  ctx.mgr().setGcThreshold(256);
  ctx.mgr().collectGarbage();
  const std::uint64_t liveBefore = ctx.mgr().liveNodeCount();

  const symbolic::EngineChoice choice = symbolic::chooseEngine(composed);
  EXPECT_TRUE(choice.probed);
  EXPECT_TRUE(choice.probeAborted);
  EXPECT_TRUE(choice.usePartitioned);

  // The probe's auto-GC doubling is rolled back...
  EXPECT_EQ(ctx.mgr().gcThreshold(), 256u);
  // ...and its dead intermediates are swept before returning, so a
  // live-node budget recheck sees the pre-probe footprint.
  EXPECT_LE(ctx.mgr().liveNodeCount(), liveBefore);

  // A BudgetToken sized to the model (plus slack) stays usable: the probe
  // must not have consumed the budget.
  service::ObligationLimits limits;
  limits.nodeBudget = liveBefore + 4096;
  service::BudgetToken token(ctx.mgr(), limits);
  EXPECT_NO_THROW(token.check());
}

TEST(EngineProbe, CompletingProbeCachesTheProductAndRestoresThreshold) {
  symbolic::Context ctx(1 << 16);
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
  ctx.mgr().setGcThreshold(256);
  const symbolic::EngineChoice choice = symbolic::chooseEngine(mod.sys);
  EXPECT_TRUE(choice.probed);
  EXPECT_FALSE(choice.usePartitioned);
  EXPECT_EQ(ctx.mgr().gcThreshold(), 256u);
  // The probe's product is cached, so deciding again is probe-free.
  EXPECT_TRUE(mod.sys.transMaterialized());
  const symbolic::EngineChoice again = symbolic::chooseEngine(mod.sys);
  EXPECT_FALSE(again.probed);
  EXPECT_FALSE(again.usePartitioned);
}

}  // namespace
}  // namespace cmc::bes
