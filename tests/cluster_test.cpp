// Tests for the cluster layer: topology parsing, the rendezvous-hash
// routing invariants (determinism, balance, minimal re-keying on shard
// removal), the version-compatibility gate, the submit retry backoff
// bounds, single-obligation forwarding through a plain server ("only"),
// and the coordinator end-to-end — scatter/gather over in-process shard
// servers, fleet-wide warm-cache resubmission, and mark-down plus
// re-dispatch when a shard dies.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "cluster/topology.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/scheduler.hpp"
#include "service/snapshot.hpp"
#include "service/trace_log.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

namespace cmc::cluster {
namespace {

namespace fs = std::filesystem;

// Two modules, two specs each: with compose that is 6 obligations — enough
// for rendezvous routing to actually spread work over small rings.
const char* kPairSmv = R"(
MODULE ping
VAR p : boolean;
ASSIGN next(p) := !p;
SPEC AG (p | !p)
SPEC AG EF p
MODULE pong
VAR q : {lo, hi};
ASSIGN next(q) := case q = lo : hi; 1 : lo; esac;
SPEC AG (q = lo | q = hi)
)";

std::string freshSocketPath(const char* tag) {
  static std::atomic<int> counter{0};
  return (fs::temp_directory_path() /
          ("cmc_cluster_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" + std::to_string(++counter) +
           ".sock"))
      .string();
}

std::string checkRequest(const std::string& id, const std::string& smv,
                         const std::string& extraRawFields = "") {
  service::JsonObject req;
  req.put("cmd", "CHECK").put("id", id);
  std::string line = req.str();
  if (!extraRawFields.empty()) {
    line.pop_back();
    line += ", " + extraRawFields + "}";
  }
  line.pop_back();
  line += ", \"smv\": \"" + service::jsonEscape(smv) + "\"}";
  return line;
}

std::size_t countOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Topology parsing
// ---------------------------------------------------------------------------

TEST(ClusterTopology, ParsesMixedTransportsCommentsAndBlanks) {
  Topology topo;
  std::string err;
  ASSERT_TRUE(parseTopology("# the fleet\n"
                            "{\"name\": \"s1\", \"socket\": \"/run/a\"}\n"
                            "\n"
                            "{\"name\": \"s2\", \"tcp\": 7401}\n",
                            &topo, &err))
      << err;
  ASSERT_EQ(topo.shards.size(), 2u);
  EXPECT_EQ(topo.shards[0].name, "s1");
  EXPECT_EQ(topo.shards[0].socketPath, "/run/a");
  EXPECT_EQ(topo.shards[0].tcpPort, -1);
  EXPECT_EQ(topo.shards[1].name, "s2");
  EXPECT_EQ(topo.shards[1].tcpPort, 7401);
}

TEST(ClusterTopology, RejectsMalformedRosters) {
  Topology topo;
  std::string err;
  EXPECT_FALSE(parseTopology("", &topo, &err));  // empty fleet
  EXPECT_FALSE(parseTopology("{\"name\": \"a\", \"socket\": \"/x\"}\n"
                             "{\"name\": \"a\", \"tcp\": 7401}\n",
                             &topo, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
  // Exactly one transport per shard.
  EXPECT_FALSE(parseTopology("{\"name\": \"a\"}\n", &topo, &err));
  EXPECT_FALSE(parseTopology(
      "{\"name\": \"a\", \"socket\": \"/x\", \"tcp\": 7401}\n", &topo, &err));
  // Errors carry the line number.
  EXPECT_FALSE(parseTopology("{\"name\": \"a\", \"socket\": \"/x\"}\n"
                             "{\"socket\": \"/y\"}\n",
                             &topo, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_FALSE(
      parseTopology("{\"name\": \"a\", \"tcp\": 99999}\n", &topo, &err));
}

// ---------------------------------------------------------------------------
// Rendezvous routing invariants
// ---------------------------------------------------------------------------

std::vector<std::string> shardNames(int k) {
  std::vector<std::string> names;
  for (int i = 0; i < k; ++i) names.push_back("shard-" + std::to_string(i));
  return names;
}

std::vector<std::string> syntheticKeys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    // Shaped like real fingerprints (hex-ish, shared prefix) so balance is
    // demonstrated on adversarially similar keys, not random ones.
    keys.push_back("fp-000" + std::to_string(i * 2654435761u));
  }
  return keys;
}

TEST(ClusterRendezvous, OrderIsDeterministicAndCompleteAndScoreRanked) {
  const std::vector<std::string> names = shardNames(5);
  for (const std::string& key : syntheticKeys(50)) {
    const std::vector<std::size_t> order = rendezvousOrder(names, key);
    ASSERT_EQ(order, rendezvousOrder(names, key));  // pure function
    ASSERT_EQ(order.size(), names.size());          // a permutation...
    std::vector<bool> seen(names.size(), false);
    for (std::size_t i : order) seen[i] = true;
    for (bool s : seen) ASSERT_TRUE(s);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {  // ...by score
      ASSERT_GE(rendezvousScore(names[order[i]], key),
                rendezvousScore(names[order[i + 1]], key));
    }
  }
}

TEST(ClusterRendezvous, BalancesKeysAcrossRingSizes) {
  const std::vector<std::string> keys = syntheticKeys(4000);
  for (int k = 2; k <= 8; ++k) {
    const std::vector<std::string> names = shardNames(k);
    std::vector<std::size_t> owned(names.size(), 0);
    for (const std::string& key : keys) {
      ++owned[rendezvousOrder(names, key).front()];
    }
    const std::size_t fair = keys.size() / names.size();
    for (std::size_t i = 0; i < owned.size(); ++i) {
      EXPECT_GE(owned[i], fair / 2) << "ring " << k << " shard " << i;
      EXPECT_LE(owned[i], fair * 2) << "ring " << k << " shard " << i;
    }
  }
}

TEST(ClusterRendezvous, RemovingAShardReKeysExactlyItsOwnKeys) {
  const std::vector<std::string> all = shardNames(6);
  std::vector<std::string> survivors = all;
  survivors.erase(survivors.begin() + 2);  // drop shard-2
  for (const std::string& key : syntheticKeys(2000)) {
    const std::vector<std::size_t> before = rendezvousOrder(all, key);
    const std::size_t after = rendezvousOrder(survivors, key).front();
    if (all[before[0]] == "shard-2") {
      // An orphaned key falls to its former second choice...
      EXPECT_EQ(survivors[after], all[before[1]]);
    } else {
      // ...and every other key keeps its owner.
      EXPECT_EQ(survivors[after], all[before[0]]);
    }
  }
}

// ---------------------------------------------------------------------------
// Version gate and retry backoff
// ---------------------------------------------------------------------------

TEST(ClusterCompat, GatesOnVersionAndProtocolRevision) {
  const std::string version = util::versionString();
  std::string why;
  EXPECT_TRUE(shardCompatible(
      "{\"ok\": true, \"cmc_version\": \"" + version +
          "\", \"protocol_rev\": " + std::to_string(net::kProtocolRevision) +
          "}",
      &why))
      << why;
  EXPECT_FALSE(shardCompatible("{\"ok\": true, \"cmc_version\": \"" +
                                   version + "\", \"protocol_rev\": 1}",
                               &why));
  EXPECT_NE(why.find("mixed-version"), std::string::npos) << why;
  EXPECT_FALSE(shardCompatible(
      "{\"ok\": true, \"cmc_version\": \"0.0.0-other\", \"protocol_rev\": " +
          std::to_string(net::kProtocolRevision) + "}",
      &why));
  // No protocol_rev stamp at all = a pre-cluster build.
  EXPECT_FALSE(shardCompatible(
      "{\"ok\": true, \"cmc_version\": \"" + version + "\"}", &why));
}

TEST(ClusterBackoff, DelaysAreJitteredExponentialAndCapped) {
  for (int round = 0; round < 64; ++round) {
    const int first = net::Client::backoffMs(0, 100);
    EXPECT_GE(first, 50);
    EXPECT_LE(first, 100);
    const int fourth = net::Client::backoffMs(3, 100);
    EXPECT_GE(fourth, 400);
    EXPECT_LE(fourth, 800);
    const int capped = net::Client::backoffMs(20, 100000);
    EXPECT_GE(capped, 15000);
    EXPECT_LE(capped, 30000);
  }
  EXPECT_EQ(net::Client::backoffMs(5, 0), 0);
}

// ---------------------------------------------------------------------------
// In-process cluster harness
// ---------------------------------------------------------------------------

/// One in-process `cmc serve` shard on a fresh Unix socket.
struct ShardHarness {
  ShardHarness() {
    service::ServiceOptions so;
    so.threads = 1;
    so.metrics = &metrics;
    svc = std::make_unique<service::VerificationService>(so);
    sockPath = freshSocketPath("shard");
    net::ServerOptions opts;
    opts.socketPath = sockPath;
    server = std::make_unique<net::Server>(opts, *svc, metrics, trace,
                                           nullptr, nullptr);
    std::string err;
    started = server->start(&err);
    EXPECT_TRUE(started) << err;
  }

  ~ShardHarness() { server->shutdown(); }

  /// Rebind on the same socket path with the same service (so the
  /// in-memory cache survives) — the test seam for shard restarts: the
  /// coordinator sees the same endpoint come back to life.
  void restart() {
    server->shutdown();
    net::ServerOptions opts;
    opts.socketPath = sockPath;
    server = std::make_unique<net::Server>(opts, *svc, metrics, trace,
                                           nullptr, nullptr);
    std::string err;
    started = server->start(&err);
    EXPECT_TRUE(started) << err;
  }

  service::MetricsRegistry metrics;
  service::RunTrace trace;
  std::unique_ptr<service::VerificationService> svc;
  std::unique_ptr<net::Server> server;
  std::string sockPath;
  bool started = false;
};

/// A coordinator fronting `n` in-process shards.  The probe thread is
/// disabled; tests drive probeNow() for deterministic health transitions.
struct ClusterHarness {
  explicit ClusterHarness(
      int n, int failThreshold = 2,
      const std::function<void(CoordinatorOptions&)>& tweak = {}) {
    for (int i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<ShardHarness>());
    }
    CoordinatorOptions opts;
    opts.socketPath = freshSocketPath("coord");
    for (int i = 0; i < n; ++i) {
      ShardSpec spec;
      spec.name = "s" + std::to_string(i);
      spec.socketPath = shards[i]->sockPath;
      opts.topology.shards.push_back(spec);
    }
    opts.defaults.compose = true;
    opts.probeIntervalSeconds = 0.0;
    opts.failThreshold = failThreshold;
    opts.controlTimeoutSeconds = 2.0;
    if (tweak) tweak(opts);
    coordinator = std::make_unique<Coordinator>(opts, metrics, trace);
    sockPath = opts.socketPath;
    std::string err;
    started = coordinator->start(&err);
    EXPECT_TRUE(started) << err;
  }

  ~ClusterHarness() { coordinator->shutdown(); }

  net::Client connect() {
    net::Client c;
    std::string err;
    EXPECT_TRUE(c.connectUnix(sockPath, &err)) << err;
    return c;
  }

  std::vector<std::unique_ptr<ShardHarness>> shards;
  service::MetricsRegistry metrics;
  service::RunTrace trace;
  std::unique_ptr<Coordinator> coordinator;
  std::string sockPath;
  bool started = false;
};

// ---------------------------------------------------------------------------
// Single-obligation forwarding against a plain server
// ---------------------------------------------------------------------------

TEST(ClusterOnly, ServerChecksExactlyTheNamedObligation) {
  // The ids the coordinator would route: enumerate them the same way.
  service::VerificationJob job;
  job.name = "pair";
  job.smvText = kPairSmv;
  job.options.compose = true;
  const service::SnapshotResult snap = service::buildSnapshot(job, true);
  ASSERT_TRUE(snap.snapshot) << snap.error;
  const std::vector<service::ObligationRef> refs =
      service::enumerateObligations(*snap.snapshot, job.options);
  ASSERT_EQ(refs.size(), 6u);  // 3 component + 3 composed

  ShardHarness shard;
  net::Client client;
  std::string err, resp;
  ASSERT_TRUE(client.connectUnix(shard.sockPath, &err)) << err;
  ASSERT_TRUE(client.request(
      checkRequest("only-1", kPairSmv,
                   "\"compose\": true, \"only\": \"" + refs[1].id + "\""),
      &resp, &err))
      << err;
  // One obligation checked, and the flat fields describe it.
  std::uint64_t obligations = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "obligations", &obligations));
  EXPECT_EQ(obligations, 1u);
  std::string id, source, fingerprint;
  EXPECT_TRUE(service::jsonExtractString(resp, "obligation_id", &id));
  EXPECT_EQ(id, refs[1].id);
  EXPECT_TRUE(service::jsonExtractString(resp, "verdict_source", &source));
  EXPECT_EQ(source, "checked");
  EXPECT_TRUE(service::jsonExtractString(resp, "fingerprint", &fingerprint));
  EXPECT_EQ(fingerprint, refs[1].fingerprint);

  // A second CHECK of the same obligation is a shard-local cache hit.
  ASSERT_TRUE(client.request(
      checkRequest("only-2", kPairSmv,
                   "\"compose\": true, \"only\": \"" + refs[1].id + "\""),
      &resp, &err))
      << err;
  EXPECT_TRUE(service::jsonExtractString(resp, "verdict_source", &source));
  EXPECT_EQ(source, "cache");

  // Naming a nonexistent obligation is an elaboration-level Error, not a
  // silent empty report.
  ASSERT_TRUE(client.request(
      checkRequest("only-3", kPairSmv,
                   "\"compose\": true, \"only\": \"ping/no_such_spec\""),
      &resp, &err))
      << err;
  std::string verdict;
  EXPECT_TRUE(service::jsonExtractString(resp, "verdict", &verdict));
  EXPECT_EQ(verdict, "Error");
}

// ---------------------------------------------------------------------------
// Coordinator end-to-end
// ---------------------------------------------------------------------------

TEST(ClusterCoordinator, ScattersGathersAndServesWarmResubmitAllCache) {
  ClusterHarness cluster(3);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();

  std::string err, resp;
  ASSERT_TRUE(client.request(checkRequest("cold", kPairSmv), &resp, &err))
      << err;
  std::string verdict, report;
  ASSERT_TRUE(service::jsonExtractString(resp, "verdict", &verdict));
  EXPECT_EQ(verdict, "Holds");
  std::uint64_t obligations = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "obligations", &obligations));
  EXPECT_EQ(obligations, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  // Every outcome is attributed to a shard, and the fleet as a whole did
  // the work (the routing itself is pinned by the rendezvous tests).
  EXPECT_EQ(countOccurrences(report, "\"shard\": \"s"), 6u);
  EXPECT_EQ(countOccurrences(report, "\"verdict_source\": \"checked\""), 6u);

  // Warm resubmission: every obligation routes back to the shard that
  // decided it, so the whole job is served from shard caches.
  ASSERT_TRUE(client.request(checkRequest("warm", kPairSmv), &resp, &err))
      << err;
  ASSERT_TRUE(service::jsonExtractString(resp, "verdict", &verdict));
  EXPECT_EQ(verdict, "Holds");
  std::uint64_t cacheHits = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "cache_hits", &cacheHits));
  EXPECT_EQ(cacheHits, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(countOccurrences(report, "\"verdict_source\": \"cache\""), 6u);
  EXPECT_EQ(countOccurrences(report, "\"verdict_source\": \"checked\""), 0u);
}

TEST(ClusterCoordinator, StatusAggregatesTheFleet) {
  ClusterHarness cluster(2);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp;
  ASSERT_TRUE(client.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  std::string role, version;
  EXPECT_TRUE(service::jsonExtractString(resp, "role", &role));
  EXPECT_EQ(role, "coordinator");
  EXPECT_TRUE(service::jsonExtractString(resp, "cmc_version", &version));
  EXPECT_EQ(version, util::versionString());
  std::uint64_t rev = 0, total = 0, up = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "protocol_rev", &rev));
  EXPECT_EQ(rev, net::kProtocolRevision);
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_up", &up));
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(up, 2u);

  ASSERT_TRUE(client.request("{\"cmd\": \"STATS\"}", &resp, &err)) << err;
  bool ok = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok);
  EXPECT_NE(resp.find("\"shards_stats\""), std::string::npos);
}

TEST(ClusterCoordinator, MarksDeadShardDownAndRedispatchesItsWork) {
  ClusterHarness cluster(3, /*failThreshold=*/1);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();

  // Kill one shard outright, then let one probe round notice.
  cluster.shards[1]->server->shutdown();
  cluster.coordinator->probeNow();
  EXPECT_EQ(cluster.coordinator->shardsUp(), 2u);

  // The job still completes with every obligation decided: the dead
  // shard's keys fall to the next shard in their rendezvous order.
  std::string err, resp;
  ASSERT_TRUE(client.request(checkRequest("after-loss", kPairSmv), &resp,
                             &err))
      << err;
  std::string verdict, report;
  ASSERT_TRUE(service::jsonExtractString(resp, "verdict", &verdict));
  EXPECT_EQ(verdict, "Holds");
  std::uint64_t obligations = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "obligations", &obligations));
  EXPECT_EQ(obligations, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(countOccurrences(report, "\"shard\": \"s1\""), 0u);
  EXPECT_EQ(countOccurrences(report, "\"verdict\": \"Error\""), 0u);
  EXPECT_EQ(countOccurrences(report, "\"verdict\": \"Fails\""), 0u);

  std::uint64_t up = 0;
  ASSERT_TRUE(client.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_up", &up));
  EXPECT_EQ(up, 2u);
  EXPECT_NE(resp.find("\"state\": \"down\""), std::string::npos);
}

TEST(ClusterCoordinator, StatusAndStatsStayConsistentWithADownShard) {
  // Regression: STATUS/STATS used to read shard health field-by-field, so
  // a shard transitioning to marked-down mid-aggregation could make the
  // per-shard array and the derived shards_up count disagree — and STATS
  // still scattered to it, wedging the whole aggregate on its control
  // timeout.  Both now consume one roster snapshot per request.
  ClusterHarness cluster(3, /*failThreshold=*/1);
  ASSERT_TRUE(cluster.started);
  cluster.shards[2]->server->shutdown();
  cluster.coordinator->probeNow();
  ASSERT_EQ(cluster.coordinator->shardsUp(), 2u);

  net::Client client = cluster.connect();
  std::string err, resp;
  ASSERT_TRUE(client.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  std::uint64_t up = 0, total = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_up", &up));
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(up, 2u);
  // The derived count and the per-shard array come from the same snapshot,
  // and the down entry carries its mark-down reason.
  EXPECT_EQ(countOccurrences(resp, "\"state\": \"down\""), 1u);
  EXPECT_EQ(countOccurrences(resp, "\"state\": \"up\""), 2u);
  EXPECT_NE(resp.find("\"reason\": \""), std::string::npos);

  // STATS: the down shard is tagged and skipped (never scattered to, so
  // its timeout is never paid), and the fleet totals sum exactly the
  // responding shards.
  ASSERT_TRUE(client.request("{\"cmd\": \"STATS\"}", &resp, &err)) << err;
  bool ok = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_up", &up));
  std::uint64_t responding = 0;
  EXPECT_TRUE(
      service::jsonExtractUint(resp, "shards_responding", &responding));
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(up, 2u);
  EXPECT_EQ(responding, 2u);
  EXPECT_EQ(countOccurrences(resp, "\"state\": \"down\""), 1u);
  EXPECT_EQ(countOccurrences(resp, "\"responded\": true"), 2u);
  EXPECT_EQ(countOccurrences(resp, "\"responded\": false"), 1u);
}

TEST(ClusterCoordinator, RefusesToStartWithNoReachableShard) {
  CoordinatorOptions opts;
  opts.socketPath = freshSocketPath("lonely");
  ShardSpec spec;
  spec.name = "ghost";
  spec.socketPath = freshSocketPath("ghost-never-bound");
  opts.topology.shards.push_back(spec);
  opts.probeIntervalSeconds = 0.0;
  service::MetricsRegistry metrics;
  service::RunTrace trace;
  Coordinator coordinator(opts, metrics, trace);
  std::string err;
  EXPECT_FALSE(coordinator.start(&err));
  EXPECT_NE(err.find("STATUS"), std::string::npos) << err;
  coordinator.shutdown();
}

// ---------------------------------------------------------------------------
// Dynamic membership, shard lifecycle, replication, hedging
// ---------------------------------------------------------------------------

/// Per-obligation shard attribution parsed out of a job report: id → shard.
std::map<std::string, std::string> shardById(const std::string& report) {
  std::map<std::string, std::string> out;
  std::size_t at = report.find("\"id\": \"");
  while (at != std::string::npos) {
    const std::size_t idStart = at + 7;
    const std::size_t idEnd = report.find('"', idStart);
    const std::string id = report.substr(idStart, idEnd - idStart);
    const std::size_t next = report.find("\"id\": \"", idEnd);
    const std::size_t sh = report.find("\"shard\": \"", idEnd);
    if (sh != std::string::npos &&
        (next == std::string::npos || sh < next)) {
      const std::size_t shStart = sh + 10;
      const std::size_t shEnd = report.find('"', shStart);
      out[id] = report.substr(shStart, shEnd - shStart);
    }
    at = next;
  }
  return out;
}

/// The owner map the coordinator must produce for kPairSmv over `names`:
/// enumerate the obligations the same way and take each fingerprint's
/// rank-0 rendezvous shard.
std::map<std::string, std::string> expectedOwners(
    const std::vector<std::string>& names) {
  service::VerificationJob job;
  job.name = "pair";
  job.smvText = kPairSmv;
  job.options.compose = true;
  const service::SnapshotResult snap = service::buildSnapshot(job, true);
  EXPECT_TRUE(snap.snapshot) << snap.error;
  std::map<std::string, std::string> owners;
  for (const service::ObligationRef& ref :
       service::enumerateObligations(*snap.snapshot, job.options)) {
    owners[ref.id] = names[rendezvousOrder(names, ref.fingerprint).front()];
  }
  return owners;
}

std::string joinRequest(const std::string& name, const std::string& socket) {
  service::JsonObject req;
  req.put("cmd", "JOIN").put("shard", name).put("socket", socket);
  return req.str();
}

TEST(ClusterAdmin, TopologyListsLifecycleStateAndRefusesMisroutedCommands) {
  ClusterHarness cluster(2);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp;
  ASSERT_TRUE(client.request("{\"cmd\": \"TOPOLOGY\"}", &resp, &err)) << err;
  bool ok = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok);
  std::uint64_t total = 0, up = 0, rev = 0, replication = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_up", &up));
  EXPECT_TRUE(service::jsonExtractUint(resp, "protocol_rev", &rev));
  EXPECT_TRUE(service::jsonExtractUint(resp, "replication", &replication));
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(up, 2u);
  EXPECT_EQ(rev, net::kProtocolRevision);
  EXPECT_EQ(replication, 2u);
  EXPECT_EQ(countOccurrences(resp, "\"state\": \"up\""), 2u);
  EXPECT_NE(resp.find("\"probation_required\""), std::string::npos);
  EXPECT_NE(resp.find("\"downs\""), std::string::npos);

  // CACHE_PUT is shard-side only; the coordinator refuses it.
  ASSERT_TRUE(client.request("{\"cmd\": \"CACHE_PUT\", \"fingerprint\": "
                             "\"deadbeef\", \"verdict\": \"Holds\"}",
                             &resp, &err))
      << err;
  std::string code;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kBadRequest);

  // And the admin commands are coordinator-side only; a shard refuses.
  net::Client shardClient;
  ASSERT_TRUE(shardClient.connectUnix(cluster.shards[0]->sockPath, &err))
      << err;
  ASSERT_TRUE(shardClient.request("{\"cmd\": \"TOPOLOGY\"}", &resp, &err))
      << err;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kBadRequest);
  EXPECT_NE(resp.find("coordinator"), std::string::npos);
}

TEST(ClusterAdmin, JoinAddsShardAndRoutesByRendezvous) {
  ClusterHarness cluster(2);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp;

  auto extra = std::make_unique<ShardHarness>();
  ASSERT_TRUE(extra->started);
  ASSERT_TRUE(
      client.request(joinRequest("s2", extra->sockPath), &resp, &err))
      << err;
  bool ok = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok) << resp;
  std::string state;
  EXPECT_TRUE(service::jsonExtractString(resp, "state", &state));
  EXPECT_EQ(state, "up");  // the join handshake doubles as the first probe
  std::uint64_t total = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_EQ(total, 3u);

  // Joining a name that is already serving is refused...
  ASSERT_TRUE(
      client.request(joinRequest("s2", extra->sockPath), &resp, &err))
      << err;
  std::string code;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kBadRequest);
  EXPECT_NE(resp.find("already"), std::string::npos);

  // ...and a join whose endpoint never answers fails the handshake
  // without touching the roster.
  ASSERT_TRUE(client.request(
      joinRequest("ghost", freshSocketPath("ghost-join")), &resp, &err))
      << err;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kBadRequest);
  EXPECT_NE(resp.find("handshake"), std::string::npos);
  ASSERT_TRUE(client.request("{\"cmd\": \"TOPOLOGY\"}", &resp, &err)) << err;
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_EQ(total, 3u);

  // Work now routes over the three-shard ring exactly as rendezvous
  // hashing dictates.
  ASSERT_TRUE(client.request(checkRequest("joined", kPairSmv), &resp, &err))
      << err;
  std::string report;
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(shardById(report), expectedOwners({"s0", "s1", "s2"}));
}

TEST(ClusterAdmin, LeaveRefusesTheLastShardAndUnknownNames) {
  ClusterHarness cluster(1);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp, code;
  ASSERT_TRUE(client.request("{\"cmd\": \"LEAVE\", \"shard\": \"nobody\"}",
                             &resp, &err))
      << err;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kNotFound);
  ASSERT_TRUE(client.request("{\"cmd\": \"LEAVE\", \"shard\": \"s0\"}",
                             &resp, &err))
      << err;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kBadRequest);
  EXPECT_NE(resp.find("last shard"), std::string::npos);
}

TEST(ClusterAdmin, LeaveAndRejoinRestoreTheExactRouting) {
  ClusterHarness cluster(3);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp, report;

  ASSERT_TRUE(client.request(checkRequest("cold", kPairSmv), &resp, &err))
      << err;
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  const std::map<std::string, std::string> before = shardById(report);
  ASSERT_EQ(before.size(), 6u);
  // Replication ran: every decided obligation was written through to its
  // next rendezvous shard.
  EXPECT_EQ(cluster.metrics.counterValue("cluster_replica_puts"), 6u);

  ASSERT_TRUE(client.request("{\"cmd\": \"LEAVE\", \"shard\": \"s1\"}",
                             &resp, &err))
      << err;
  bool ok = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok) << resp;
  std::uint64_t total = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "shards_total", &total));
  EXPECT_EQ(total, 2u);

  // Minimal re-keying: only s1's keys move, and — thanks to the replica
  // tier — even those are served from the successor's cache, so the whole
  // warm job is cache hits.
  ASSERT_TRUE(client.request(checkRequest("warm", kPairSmv), &resp, &err))
      << err;
  std::uint64_t cacheHits = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "cache_hits", &cacheHits));
  EXPECT_EQ(cacheHits, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  const std::map<std::string, std::string> during = shardById(report);
  for (const auto& [id, shard] : before) {
    if (shard == "s1") {
      EXPECT_NE(during.at(id), "s1") << id;
    } else {
      EXPECT_EQ(during.at(id), shard) << id;
    }
  }

  // Rejoin: rendezvous hashing is pure in the shard name, so the original
  // owner map comes back exactly.
  ASSERT_TRUE(client.request(
      joinRequest("s1", cluster.shards[1]->sockPath), &resp, &err))
      << err;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok) << resp;
  ASSERT_TRUE(client.request(checkRequest("rejoined", kPairSmv), &resp,
                             &err))
      << err;
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(shardById(report), before);
}

TEST(ClusterLifecycle, FlappingShardServesProbationWithExponentialHoldDown) {
  ClusterHarness cluster(2, /*failThreshold=*/1);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp;

  // First flap: down, then one probation pass readmits.
  cluster.shards[1]->server->shutdown();
  cluster.coordinator->probeNow();
  EXPECT_EQ(cluster.coordinator->shardsUp(), 1u);
  ASSERT_TRUE(client.request("{\"cmd\": \"TOPOLOGY\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"state\": \"down\""), std::string::npos);
  EXPECT_NE(resp.find("\"downs\": 1"), std::string::npos);

  cluster.shards[1]->restart();
  cluster.coordinator->probeNow();  // down → probation
  EXPECT_EQ(cluster.coordinator->shardsUp(), 1u);
  ASSERT_TRUE(client.request("{\"cmd\": \"TOPOLOGY\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"state\": \"probation\""), std::string::npos);

  // A shard in probation takes no traffic, and its keys are dispatched
  // exactly once to the survivor — never to both.
  std::string report;
  ASSERT_TRUE(client.request(checkRequest("held", kPairSmv), &resp, &err))
      << err;
  std::uint64_t obligations = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "obligations", &obligations));
  EXPECT_EQ(obligations, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(countOccurrences(report, "\"shard\": \"s0\""), 6u);
  EXPECT_EQ(countOccurrences(report, "\"shard\": \"s1\""), 0u);
  EXPECT_EQ(countOccurrences(report, "\"id\": \""), 6u);

  cluster.coordinator->probeNow();  // probation pass 1 of 1 → up
  EXPECT_EQ(cluster.coordinator->shardsUp(), 2u);

  // Second flap: the hold-down doubles — two probation passes required.
  cluster.shards[1]->server->shutdown();
  cluster.coordinator->probeNow();
  ASSERT_TRUE(client.request("{\"cmd\": \"TOPOLOGY\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"downs\": 2"), std::string::npos);
  EXPECT_NE(resp.find("\"probation_required\": 2"), std::string::npos);

  cluster.shards[1]->restart();
  cluster.coordinator->probeNow();  // down → probation (0 passes)
  EXPECT_EQ(cluster.coordinator->shardsUp(), 1u);
  cluster.coordinator->probeNow();  // pass 1 of 2: still held out
  EXPECT_EQ(cluster.coordinator->shardsUp(), 1u);
  cluster.coordinator->probeNow();  // pass 2 of 2 → up
  EXPECT_EQ(cluster.coordinator->shardsUp(), 2u);
}

TEST(ClusterReplication, ReplicaServesADeadShardsVerdictsFromCache) {
  ClusterHarness cluster(3);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  std::string err, resp, report;

  ASSERT_TRUE(client.request(checkRequest("cold", kPairSmv), &resp, &err))
      << err;
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  const std::map<std::string, std::string> owners = shardById(report);
  ASSERT_EQ(owners.size(), 6u);
  // RF=2 with everyone up: exactly one replica write per decided
  // obligation, all successful.
  EXPECT_EQ(cluster.metrics.counterValue("cluster_replica_puts"), 6u);
  EXPECT_EQ(cluster.metrics.counterValue("cluster_replica_put_failures"),
            0u);

  // Kill the owner of the first obligation and let probes mark it down.
  const std::string victim = owners.begin()->second;
  const int victimIndex = victim[1] - '0';
  cluster.shards[victimIndex]->server->shutdown();
  cluster.coordinator->probeNow();
  cluster.coordinator->probeNow();  // failThreshold = 2
  EXPECT_EQ(cluster.coordinator->shardsUp(), 2u);

  // The warm job is still all cache hits: the victim's keys fall to their
  // rendezvous successor, which holds the replicated verdicts.
  ASSERT_TRUE(client.request(checkRequest("warm", kPairSmv), &resp, &err))
      << err;
  std::string verdict;
  ASSERT_TRUE(service::jsonExtractString(resp, "verdict", &verdict));
  EXPECT_EQ(verdict, "Holds");
  std::uint64_t cacheHits = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "cache_hits", &cacheHits));
  EXPECT_EQ(cacheHits, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(countOccurrences(report, "\"verdict_source\": \"checked\""), 0u);
  EXPECT_EQ(countOccurrences(report, "\"shard\": \"" + victim + "\""), 0u);
}

TEST(ClusterCachePut, ShardStoresReplicasAndServesThemAsCacheHits) {
  service::VerificationJob job;
  job.name = "pair";
  job.smvText = kPairSmv;
  job.options.compose = true;
  const service::SnapshotResult snap = service::buildSnapshot(job, true);
  ASSERT_TRUE(snap.snapshot) << snap.error;
  const std::vector<service::ObligationRef> refs =
      service::enumerateObligations(*snap.snapshot, job.options);
  ASSERT_FALSE(refs.empty());

  ShardHarness shard;
  ASSERT_TRUE(shard.started);
  net::Client client;
  std::string err, resp;
  ASSERT_TRUE(client.connectUnix(shard.sockPath, &err)) << err;

  service::JsonObject put;
  put.put("cmd", "CACHE_PUT")
      .put("fingerprint", refs[0].fingerprint)
      .put("verdict", "Holds")
      .put("engine", "partitioned");
  ASSERT_TRUE(client.request(put.str(), &resp, &err)) << err;
  bool ok = false, inserted = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok) << resp;
  EXPECT_TRUE(service::jsonExtractBool(resp, "inserted", &inserted));
  EXPECT_TRUE(inserted);

  // Idempotent: a duplicate put is acknowledged, not double-stored.
  ASSERT_TRUE(client.request(put.str(), &resp, &err)) << err;
  EXPECT_TRUE(service::jsonExtractBool(resp, "inserted", &inserted));
  EXPECT_FALSE(inserted);

  // The replicated verdict serves a later CHECK without re-checking.
  ASSERT_TRUE(client.request(
      checkRequest("replica-hit", kPairSmv,
                   "\"compose\": true, \"only\": \"" + refs[0].id + "\""),
      &resp, &err))
      << err;
  std::string source;
  EXPECT_TRUE(service::jsonExtractString(resp, "verdict_source", &source));
  EXPECT_EQ(source, "cache");

  // Only terminal verdicts replicate; Error is refused at the parse layer.
  ASSERT_TRUE(client.request("{\"cmd\": \"CACHE_PUT\", \"fingerprint\": "
                             "\"deadbeef\", \"verdict\": \"Error\"}",
                             &resp, &err))
      << err;
  std::string code;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kBadRequest);
}

TEST(ClusterHedge, HedgesAStragglerAndFirstSoundVerdictWins) {
  if (!util::Failpoint::compiledIn()) {
    GTEST_SKIP() << "needs -DCMC_FAILPOINTS=ON";
  }
  ClusterHarness cluster(3, /*failThreshold=*/2,
                         [](CoordinatorOptions& opts) {
                           opts.hedgeDelaySeconds = 0.05;
                         });
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  // Every dispatch stalls well past the hedge threshold, so every
  // obligation grows a second lane.
  util::Failpoint::configure("scheduler.dispatch=delay(300)");
  std::string err, resp;
  const bool sent =
      client.request(checkRequest("straggler", kPairSmv), &resp, &err);
  util::Failpoint::disarmAll();
  ASSERT_TRUE(sent) << err;

  std::string verdict, report;
  ASSERT_TRUE(service::jsonExtractString(resp, "verdict", &verdict));
  EXPECT_EQ(verdict, "Holds");
  std::uint64_t obligations = 0;
  ASSERT_TRUE(service::jsonExtractUint(resp, "obligations", &obligations));
  EXPECT_EQ(obligations, 6u);
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  // Exactly one outcome per obligation even with two lanes racing, and the
  // report says which ones were hedged.
  EXPECT_EQ(countOccurrences(report, "\"id\": \""), 6u);
  EXPECT_GE(countOccurrences(report, "\"hedged\": true"), 1u);
  EXPECT_GE(cluster.metrics.counterValue("cluster_hedges"), 1u);
  EXPECT_EQ(countOccurrences(report, "\"verdict\": \"Error\""), 0u);
}

TEST(ClusterAdmin, JoinMidBatchOnlyAffectsLaterJobs) {
  if (!util::Failpoint::compiledIn()) {
    GTEST_SKIP() << "needs -DCMC_FAILPOINTS=ON";
  }
  ClusterHarness cluster(2);
  ASSERT_TRUE(cluster.started);

  // Slow the batch down so the JOIN lands squarely in the middle of it.
  util::Failpoint::configure("scheduler.dispatch=delay(200)");
  std::string inflightResp, inflightErr;
  bool inflightOk = false;
  std::thread checker([&] {
    net::Client c = cluster.connect();
    inflightOk = c.request(checkRequest("inflight", kPairSmv),
                           &inflightResp, &inflightErr);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  auto late = std::make_unique<ShardHarness>();
  ASSERT_TRUE(late->started);
  net::Client admin = cluster.connect();
  std::string err, resp;
  ASSERT_TRUE(
      admin.request(joinRequest("late", late->sockPath), &resp, &err))
      << err;
  bool ok = false;
  EXPECT_TRUE(service::jsonExtractBool(resp, "ok", &ok));
  EXPECT_TRUE(ok) << resp;

  checker.join();
  util::Failpoint::disarmAll();
  ASSERT_TRUE(inflightOk) << inflightErr;

  // The in-flight job took its roster snapshot before the join, so none
  // of its obligations reached the new shard.
  std::string report;
  ASSERT_TRUE(
      service::jsonExtractString(inflightResp, "report", &report));
  EXPECT_EQ(countOccurrences(report, "\"id\": \""), 6u);
  EXPECT_EQ(countOccurrences(report, "\"shard\": \"late\""), 0u);

  // The next job routes over the widened ring.
  ASSERT_TRUE(
      admin.request(checkRequest("after", kPairSmv), &resp, &err))
      << err;
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  EXPECT_EQ(shardById(report), expectedOwners({"s0", "s1", "late"}));
}

TEST(ClusterCoordinator, DrainRefusesNewChecks) {
  ClusterHarness cluster(2);
  ASSERT_TRUE(cluster.started);
  net::Client client = cluster.connect();
  cluster.coordinator->requestDrain();
  std::string err, resp;
  ASSERT_TRUE(client.request(checkRequest("late", kPairSmv), &resp, &err))
      << err;
  std::string code;
  EXPECT_TRUE(service::jsonExtractString(resp, "code", &code));
  EXPECT_EQ(code, net::kDraining);
}

}  // namespace
}  // namespace cmc::cluster
