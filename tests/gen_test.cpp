// Tests for the parameterized model generator (gen layer): the committed
// goldens under models/gen/ must be byte-identical to regeneration (so a
// generator change cannot silently drift away from what is checked in),
// and every generated model must elaborate and verify component-wise.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "gen/modelgen.hpp"
#include "service/scheduler.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/encode.hpp"

namespace cmc::gen {
namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GenGoldens, RegenerationIsByteIdentical) {
  const fs::path dir = fs::path(CMC_MODELS_DIR) / "gen";
  for (const std::size_t n : {3u, 8u, 16u}) {
    EXPECT_EQ(readFile(dir / ("ring_" + std::to_string(n) + ".smv")),
              ringModel(n));
    EXPECT_EQ(readFile(dir / ("afs2_" + std::to_string(n) + ".smv")),
              afs2Model(n));
  }
}

TEST(GenModels, RejectDegenerateSizes) {
  EXPECT_THROW(ringModel(1), Error);
  EXPECT_THROW(afs2Model(0), Error);
}

TEST(GenModels, GeneratedFamiliesElaborateAndHoldComponentWise) {
  // Component obligations only (no --compose): every station/client/server
  // satisfies its own spec under the free environment, at every size.
  for (const std::size_t n : {2u, 3u, 5u}) {
    for (const std::string& text : {ringModel(n), afs2Model(n)}) {
      service::VerificationService svc(service::ServiceOptions{});
      service::VerificationJob job;
      job.name = "gen";
      job.smvText = text;
      const service::JobReport report = svc.run(job);
      EXPECT_EQ(report.verdict, service::Verdict::Holds) << "n=" << n;
      EXPECT_FALSE(report.obligations.empty());
    }
  }
}

TEST(GenModels, RingMatchesTheHandWrittenStructure) {
  const std::string text = ringModel(3);
  symbolic::Context ctx(1 << 16);
  const std::vector<smv::ElaboratedModule> mods =
      smv::elaborateProgram(ctx, text);
  ASSERT_EQ(mods.size(), 3u);
  for (const smv::ElaboratedModule& mod : mods) {
    EXPECT_EQ(mod.specs.size(), 1u);
  }
}

}  // namespace
}  // namespace cmc::gen
