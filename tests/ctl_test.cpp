// Tests for the CTL AST, parser, printer, desugaring, and restrictions.
#include <gtest/gtest.h>

#include "ctl/formula.hpp"
#include "ctl/parser.hpp"

namespace cmc::ctl {
namespace {

TEST(CtlAst, Constructors) {
  const FormulaPtr f = mkAnd(atom("p"), EX(atom("q")));
  EXPECT_EQ(f->op(), Op::And);
  EXPECT_EQ(f->lhs()->op(), Op::Atom);
  EXPECT_EQ(f->lhs()->atom(), "p");
  EXPECT_EQ(f->rhs()->op(), Op::EX);
}

TEST(CtlAst, EqAtomFormatting) {
  EXPECT_EQ(eq("belief", "valid")->atom(), "belief=valid");
  EXPECT_EQ(toString(neq("r", "val")), "!r=val");
}

TEST(CtlAst, ConjDisj) {
  EXPECT_EQ(conj({})->op(), Op::True);
  EXPECT_EQ(disj({})->op(), Op::False);
  EXPECT_EQ(toString(conj({atom("a"), atom("b"), atom("c")})), "a & b & c");
  EXPECT_EQ(toString(disj({atom("a"), atom("b")})), "a | b");
}

TEST(CtlAst, IsPropositional) {
  EXPECT_TRUE(isPropositional(mkAnd(atom("p"), mkNot(atom("q")))));
  EXPECT_TRUE(isPropositional(mkImplies(mkTrue(), mkFalse())));
  EXPECT_FALSE(isPropositional(EX(atom("p"))));
  EXPECT_FALSE(isPropositional(mkAnd(atom("p"), AG(atom("q")))));
}

TEST(CtlAst, StructuralEquality) {
  EXPECT_TRUE(equal(mkAnd(atom("p"), atom("q")), mkAnd(atom("p"), atom("q"))));
  EXPECT_FALSE(equal(mkAnd(atom("p"), atom("q")), mkAnd(atom("q"), atom("p"))));
  EXPECT_TRUE(equal(AU(atom("p"), atom("q")), AU(atom("p"), atom("q"))));
  EXPECT_FALSE(equal(EX(atom("p")), AX(atom("p"))));
}

TEST(CtlAst, CollectAtomsAndVariables) {
  const FormulaPtr f =
      mkAnd(eq("belief", "valid"), mkOr(atom("x"), EX(eq("r", "null"))));
  const std::set<std::string> atoms = collectAtoms(f);
  EXPECT_EQ(atoms, (std::set<std::string>{"belief=valid", "x", "r=null"}));
  const std::set<std::string> vars = collectVariables(f);
  EXPECT_EQ(vars, (std::set<std::string>{"belief", "x", "r"}));
}

TEST(CtlParser, AtomsAndComparisons) {
  EXPECT_TRUE(equal(parse("p"), atom("p")));
  EXPECT_TRUE(equal(parse("belief = valid"), eq("belief", "valid")));
  EXPECT_TRUE(equal(parse("r != val"), neq("r", "val")));
  EXPECT_TRUE(equal(parse("x = 1"), eq("x", "1")));
}

TEST(CtlParser, Precedence) {
  // & binds tighter than |, | tighter than ->, -> right-assoc.
  EXPECT_TRUE(equal(parse("a & b | c"), mkOr(mkAnd(atom("a"), atom("b")),
                                             atom("c"))));
  EXPECT_TRUE(equal(parse("a -> b -> c"),
                    mkImplies(atom("a"), mkImplies(atom("b"), atom("c")))));
  EXPECT_TRUE(equal(parse("!a & b"), mkAnd(mkNot(atom("a")), atom("b"))));
  EXPECT_TRUE(
      equal(parse("a <-> b | c"), mkIff(atom("a"), mkOr(atom("b"), atom("c")))));
}

TEST(CtlParser, TemporalOperators) {
  EXPECT_TRUE(equal(parse("AX p"), AX(atom("p"))));
  EXPECT_TRUE(equal(parse("EX p & q"), mkAnd(EX(atom("p")), atom("q"))));
  EXPECT_TRUE(equal(parse("AG (p -> AX p)"),
                    AG(mkImplies(atom("p"), AX(atom("p"))))));
  EXPECT_TRUE(equal(parse("E[p U q]"), EU(atom("p"), atom("q"))));
  EXPECT_TRUE(equal(parse("A[ p U q & r ]"),
                    AU(atom("p"), mkAnd(atom("q"), atom("r")))));
  EXPECT_TRUE(equal(parse("EF AG p"), EF(AG(atom("p")))));
}

TEST(CtlParser, Literals) {
  EXPECT_EQ(parse("TRUE")->op(), Op::True);
  EXPECT_EQ(parse("FALSE")->op(), Op::False);
  EXPECT_EQ(parse("1")->op(), Op::True);
  EXPECT_EQ(parse("0")->op(), Op::False);
}

TEST(CtlParser, KeywordPrefixesAreNotStolen) {
  // "AXel" is an atom, not AX applied to "el".
  EXPECT_TRUE(equal(parse("AXel"), atom("AXel")));
  EXPECT_TRUE(equal(parse("EFfort = high"), eq("EFfort", "high")));
}

TEST(CtlParser, DottedIdentifiers) {
  EXPECT_TRUE(equal(parse("Server.belief = valid"),
                    eq("Server.belief", "valid")));
}

TEST(CtlParser, ErrorsCarryPosition) {
  try {
    parse("p & (q");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.column(), 1);
  }
  EXPECT_THROW(parse("p q"), ParseError);
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("E[p U"), ParseError);
  EXPECT_THROW(parse("A p U q]"), ParseError);
}

TEST(CtlPrinter, RoundTrips) {
  const char* cases[] = {
      "p & q | r",
      "p -> q -> r",
      "AG (p -> AX (p | q))",
      "E[p U q & r]",
      "A[TRUE U p]",
      "!(p & q)",
      "belief=valid -> AX belief=valid",
      "(p <-> q) & r",
      "EF (p & EG q)",
  };
  for (const char* text : cases) {
    const FormulaPtr f = parse(text);
    const FormulaPtr reparsed = parse(toString(f));
    EXPECT_TRUE(equal(f, reparsed)) << text << "  ->  " << toString(f);
  }
}

TEST(CtlDesugar, DerivedOperatorsPerPaperRules) {
  // AFg = A(true U g)
  EXPECT_TRUE(equal(desugar(AF(atom("g"))), AU(mkTrue(), atom("g"))));
  // EFg = E(true U g)
  EXPECT_TRUE(equal(desugar(EF(atom("g"))), EU(mkTrue(), atom("g"))));
  // AGf = !E(true U !f)
  EXPECT_TRUE(equal(desugar(AG(atom("f"))),
                    mkNot(EU(mkTrue(), mkNot(atom("f"))))));
  // EGf = !A(true U !f)
  EXPECT_TRUE(equal(desugar(EG(atom("f"))),
                    mkNot(AU(mkTrue(), mkNot(atom("f"))))));
  // f | g = !(!f & !g)
  EXPECT_TRUE(equal(desugar(mkOr(atom("f"), atom("g"))),
                    mkNot(mkAnd(mkNot(atom("f")), mkNot(atom("g"))))));
}

TEST(CtlRestriction, TrivialAndExtensions) {
  const Restriction r = Restriction::trivial();
  EXPECT_TRUE(r.isTrivial());
  const Restriction r2 = r.withFairness(atom("p"));
  EXPECT_FALSE(r2.isTrivial());
  EXPECT_EQ(r2.fairness.size(), 2u);
  const Restriction r3 = r.withInit(atom("q"));
  EXPECT_FALSE(r3.isTrivial());
  EXPECT_NE(r3.toString().find("q"), std::string::npos);
}

}  // namespace
}  // namespace cmc::ctl
