// Tests for the assume-guarantee learning engine (agr layer): interface
// alphabets, the L* learner against a mock oracle, the assumption→SMV
// bridge (round-tripped through elaboration), the decomposition searcher,
// fingerprint provenance of assumption-backed query obligations, and — the
// load-bearing property — cross-validation that a learned run reports the
// same verdicts as a direct composed run on every shipped model.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "agr/alphabet.hpp"
#include "agr/assumption.hpp"
#include "agr/engine.hpp"
#include "agr/learner.hpp"
#include "agr/search.hpp"
#include "service/obligation_cache.hpp"
#include "service/scheduler.hpp"
#include "smv/elaborate.hpp"
#include "smv/fingerprint.hpp"
#include "smv/parser.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"

namespace cmc::agr {
namespace {

namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Two stations sharing a boolean token; used by the alphabet, bridge and
// search tests.
const char* kPairSmv = R"(
MODULE left
VAR st : {idle, cs};
VAR tok : boolean;
ASSIGN next(st) := case st = idle & tok : cs; 1 : idle; esac;
ASSIGN next(tok) := case st = cs : 0; 1 : tok; esac;
SPEC st = cs -> AX st = idle

MODULE right
VAR tok : boolean;
VAR busy : boolean;
ASSIGN next(tok) := case busy : 1; 1 : tok; esac;
ASSIGN next(busy) := !busy;
SPEC busy | !busy
)";

// ---------------------------------------------------------------------------
// Alphabets
// ---------------------------------------------------------------------------

TEST(AgrAlphabet, SharedDeclarationsFormTheInterface) {
  const std::vector<smv::Module> mods = smv::parseProgram(kPairSmv);
  ASSERT_EQ(mods.size(), 2u);
  std::string reason;
  const std::optional<Alphabet> alpha =
      buildAlphabet(mods, {0}, {1}, 64, &reason);
  ASSERT_TRUE(alpha.has_value()) << reason;
  ASSERT_EQ(alpha->vars.size(), 1u);  // `tok` is the only shared name
  EXPECT_EQ(alpha->vars[0].name, "tok");
  EXPECT_EQ(alpha->size(), 2u);
  EXPECT_EQ(alpha->varsText(), "tok");
  // Mixed-radix encode/decode round-trips every letter.
  for (std::size_t a = 0; a < alpha->size(); ++a) {
    EXPECT_EQ(alpha->encode(alpha->decode(a)), a);
  }
}

TEST(AgrAlphabet, CapAndDomainMismatchRefuse) {
  const std::vector<smv::Module> mods = smv::parseProgram(kPairSmv);
  std::string reason;
  EXPECT_FALSE(buildAlphabet(mods, {0}, {1}, 1, &reason).has_value());
  EXPECT_FALSE(reason.empty());

  const std::vector<smv::Module> clash = smv::parseProgram(R"(
MODULE a
VAR x : boolean;
MODULE b
VAR x : {p, q, r};
)");
  reason.clear();
  EXPECT_FALSE(buildAlphabet(clash, {0}, {1}, 64, &reason).has_value());
  EXPECT_FALSE(reason.empty());
}

// ---------------------------------------------------------------------------
// L* against a mock oracle
// ---------------------------------------------------------------------------

bool accepts(const Dfa& dfa, const Word& w) {
  std::size_t q = 0;
  for (std::size_t a : w) q = dfa.next(q, a);
  return dfa.accepting[q];
}

/// All words over {0, 1} up to `maxLen`, shortest first.
std::vector<Word> wordsUpTo(std::size_t maxLen) {
  std::vector<Word> out{{}};
  std::size_t begin = 0;
  for (std::size_t len = 1; len <= maxLen; ++len) {
    const std::size_t end = out.size();
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t a = 0; a < 2; ++a) {
        Word w = out[i];
        w.push_back(a);
        out.push_back(std::move(w));
      }
    }
    begin = end;
  }
  return out;
}

TEST(AgrLearner, ConvergesToTheNoAdjacentOnesLanguage) {
  // Target: words over {0, 1} with no "1 1" factor — the shape of every
  // step-pair safe language the teacher answers with, so this is the
  // learner exercised exactly as the engine uses it.
  const auto target = [](const Word& w) {
    for (std::size_t i = 0; i + 1 < w.size(); ++i) {
      if (w[i] == 1 && w[i + 1] == 1) return false;
    }
    return true;
  };

  LStar lstar(2, target);
  const std::vector<Word> probe = wordsUpTo(7);
  Dfa dfa;
  bool converged = false;
  for (int round = 0; round < 10 && !converged; ++round) {
    dfa = lstar.conjecture();
    converged = true;
    for (const Word& w : probe) {
      if (accepts(dfa, w) != target(w)) {
        lstar.addCounterexample(w);
        converged = false;
        break;
      }
    }
  }
  ASSERT_TRUE(converged);
  // The minimal DFA: start, "just read a 1", and a rejecting trap.
  EXPECT_EQ(dfa.states, 3u);
  for (const Word& w : wordsUpTo(9)) {
    EXPECT_EQ(accepts(dfa, w), target(w));
  }
  EXPECT_GT(lstar.queries(), 0u);
}

// ---------------------------------------------------------------------------
// Assumption → SMV bridge
// ---------------------------------------------------------------------------

Alphabet twoBooleanAlphabet() {
  const std::vector<smv::Module> mods = smv::parseProgram(R"(
MODULE a
VAR x : boolean;
VAR y : boolean;
MODULE b
VAR x : boolean;
VAR y : boolean;
)");
  std::string reason;
  const std::optional<Alphabet> alpha =
      buildAlphabet(mods, {0}, {1}, 64, &reason);
  EXPECT_TRUE(alpha.has_value()) << reason;
  return *alpha;
}

Assumption withRelation(const Alphabet& alpha, std::vector<bool> allowed) {
  Assumption a;
  a.alphabet = alpha;
  a.dfa.states = 1;
  a.dfa.accepting = {true};
  a.allowed = std::move(allowed);
  return a;
}

TEST(AgrBridge, ModuleTransitionRelationMatchesTheAssumption) {
  const Alphabet alpha = twoBooleanAlphabet();
  const std::size_t n = alpha.size();
  ASSERT_EQ(n, 4u);

  // A nontrivial relation: allow (a, b) iff a != b (all moves, no self
  // loops — the self loops come back through composition's Id).
  std::vector<bool> allowed(n * n, false);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) allowed[a * n + b] = true;
    }
  }
  const Assumption assume = withRelation(alpha, allowed);

  // Elaborate the synthetic module and every single-step module into one
  // shared context; the bridge is correct iff the assumption's transition
  // BDD is exactly the union of its allowed steps.
  symbolic::Context ctx;
  const smv::ElaboratedModule em =
      smv::elaborate(ctx, assume.toModule("agr_assume"));
  bdd::Bdd expected = ctx.mgr().bddFalse();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const smv::ElaboratedModule step =
          smv::elaborate(ctx, stepModule(alpha, a, b, "agr_step"));
      if (assume.allows(a, b)) expected = expected | step.sys.transBdd();
    }
  }
  EXPECT_TRUE(em.sys.transBdd() == expected);
}

TEST(AgrBridge, AllowsAllAndEmptyRelationsAreTheExtremes) {
  const Alphabet alpha = twoBooleanAlphabet();
  const std::size_t n = alpha.size();

  symbolic::Context ctx;
  const Assumption full = withRelation(alpha, std::vector<bool>(n * n, true));
  EXPECT_TRUE(full.allowsAll());
  const smv::ElaboratedModule fullMod =
      smv::elaborate(ctx, full.toModule("agr_full"));
  EXPECT_TRUE(fullMod.sys.transBdd() == ctx.mgr().bddTrue());

  const Assumption none = withRelation(alpha, std::vector<bool>(n * n, false));
  const smv::ElaboratedModule noneMod =
      smv::elaborate(ctx, none.toModule("agr_none"));
  EXPECT_TRUE(noneMod.sys.transBdd().isFalse());
}

TEST(AgrBridge, DfaUnrollingKeepsOnlyAcceptingSteps) {
  const Alphabet alpha = twoBooleanAlphabet();
  const std::size_t n = alpha.size();
  // DFA: letter 3 leads to a rejecting trap; everything else stays home.
  Dfa dfa;
  dfa.states = 2;
  dfa.stride = n;
  dfa.accepting = {true, false};
  dfa.delta = {0, 0, 0, 1,   // from state 0
               1, 1, 1, 1};  // trap
  const Assumption assume = assumptionFromDfa(alpha, dfa);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_EQ(assume.allows(a, b), a != 3 && b != 3) << a << "," << b;
    }
  }
  EXPECT_EQ(assume.relationSize(), (n - 1) * (n - 1));
}

// ---------------------------------------------------------------------------
// Decomposition search
// ---------------------------------------------------------------------------

TEST(AgrSearch, SplitsCoverTheSpecAndOrderByInterfaceCost) {
  const std::vector<smv::Module> mods = smv::parseProgram(R"(
MODULE a
VAR x : boolean;
VAR big : {v0, v1, v2, v3, v4, v5, v6, v7};
MODULE b
VAR x : boolean;
VAR big : {v0, v1, v2, v3, v4, v5, v6, v7};
MODULE c
VAR x : boolean;
)");
  // The spec needs only `x`, which every module declares.
  const std::set<std::string> needed{"x"};
  const std::vector<Split> splits = enumerateSplits(mods, needed, 64, 8);
  ASSERT_FALSE(splits.empty());
  for (const Split& s : splits) {
    EXPECT_FALSE(s.g1.empty());
    EXPECT_FALSE(s.g2.empty());
    EXPECT_EQ(s.g1.size() + s.g2.size(), mods.size());
    EXPECT_LE(s.cost, 64.0);
  }
  // Cheapest first: any split keeping a and b together has interface {x}
  // (2 letters); separating them costs 2 * 8 = 16.
  EXPECT_LE(splits.front().cost, splits.back().cost);
  EXPECT_EQ(splits.front().cost, 2.0);

  // An unsatisfiable coverage requirement yields no splits.
  EXPECT_TRUE(enumerateSplits(mods, {"nosuchvar"}, 64, 8).empty());
}

// ---------------------------------------------------------------------------
// Fingerprint provenance (satellite: the obligation-cache key must
// separate queries made under different assumptions)
// ---------------------------------------------------------------------------

TEST(AgrFingerprint, DifferentAssumptionsNeverCollide) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)");
  const std::vector<std::string> canon{smv::canonicalModule(ctx, mod)};
  const ctl::Spec& spec = mod.specs.front();

  const Alphabet alpha = twoBooleanAlphabet();
  const std::size_t n = alpha.size();
  std::vector<bool> r1(n * n, true);
  std::vector<bool> r2(n * n, true);
  r2[0] = false;  // one step removed: a semantically different assumption
  const Assumption a1 = withRelation(alpha, r1);
  const Assumption a2 = withRelation(alpha, r2);
  ASSERT_NE(a1.digest(), a2.digest());

  service::JobOptions plain;
  service::JobOptions under1;
  under1.assumptionDigest = a1.digest();
  service::JobOptions under2;
  under2.assumptionDigest = a2.digest();

  const std::string base =
      service::obligationFingerprint(canon, 0, false, spec, plain);
  const std::string f1 =
      service::obligationFingerprint(canon, 0, false, spec, under1);
  const std::string f2 =
      service::obligationFingerprint(canon, 0, false, spec, under2);
  // Same module, same spec, three distinct cache addresses: a verdict
  // proved under assumption 1 must never be served to a query under
  // assumption 2 (or to one with no assumption at all).
  EXPECT_NE(f1, base);
  EXPECT_NE(f2, base);
  EXPECT_NE(f1, f2);
  // And the address is stable for the same assumption.
  EXPECT_EQ(service::obligationFingerprint(canon, 0, false, spec, under1),
            f1);
}

// ---------------------------------------------------------------------------
// The engine, cross-validated against direct composed checks
// ---------------------------------------------------------------------------

service::ServiceOptions twoThreads() {
  service::ServiceOptions opts;
  opts.threads = 2;
  return opts;
}

std::map<std::string, service::Verdict> composedVerdicts(
    const service::JobReport& report) {
  std::map<std::string, service::Verdict> out;
  for (const service::ObligationOutcome& o : report.obligations) {
    if (o.target == "composed") out[o.id] = o.verdict;
  }
  return out;
}

TEST(AgrEngine, LearnedVerdictsMatchDirectOnEveryShippedModel) {
  service::VerificationService svc(twoThreads());
  std::size_t modelsCompared = 0;
  std::size_t learnedSpecs = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(CMC_MODELS_DIR)) {
    if (entry.path().extension() != ".smv") continue;
    const std::string text = readFile(entry.path());
    if (smv::parseProgram(text).size() < 2) continue;

    service::VerificationJob job;
    job.name = entry.path().stem().string();
    job.smvText = text;
    job.options.compose = true;

    service::VerificationJob direct = job;
    const service::JobReport directReport = svc.run(direct);

    job.options.learn = true;
    const service::JobReport learned =
        runLearnedJob(svc, job, LearnOptions{});

    const auto want = composedVerdicts(directReport);
    const auto got = composedVerdicts(learned);
    EXPECT_EQ(got, want) << entry.path().filename();
    for (const service::ObligationOutcome& o : learned.obligations) {
      if (o.verdictSource == "learned") {
        ++learnedSpecs;
        EXPECT_FALSE(o.learnedJson.empty());
      }
    }
    ++modelsCompared;
  }
  EXPECT_GE(modelsCompared, 3u);
  // The sweep must actually exercise the learner, not just fall back.
  EXPECT_GE(learnedSpecs, 3u);
}

TEST(AgrEngine, RealViolationIsDecidedWithAConcreteTrace) {
  // `keeper` preserves x and alone satisfies x -> AX x (its own move and
  // the stutter both keep x); `clearer` can clear it, so the composition
  // fails.  Counterexample analysis must recognise the violating
  // interface step as one the real environment takes — a real violation,
  // not a refinement — and report Fails with a trace.
  const char* text = R"(
MODULE keeper
VAR x : boolean;
VAR st : {a, b};
ASSIGN next(x) := x;
ASSIGN next(st) := case st = a : b; 1 : a; esac;
SPEC x -> AX x

MODULE clearer
VAR x : boolean;
ASSIGN next(x) := 0;
SPEC x | !x
)";
  service::VerificationService svc(twoThreads());
  service::VerificationJob job;
  job.name = "violation";
  job.smvText = text;
  job.options.compose = true;
  job.options.learn = true;
  const service::JobReport learned = runLearnedJob(svc, job, LearnOptions{});

  bool sawComposedFail = false;
  for (const service::ObligationOutcome& o : learned.obligations) {
    if (o.id != "composed/keeper.SPEC1") continue;
    sawComposedFail = true;
    EXPECT_EQ(o.verdict, service::Verdict::Fails);
    EXPECT_FALSE(o.counterexample.empty());
  }
  EXPECT_TRUE(sawComposedFail);

  service::VerificationJob direct = job;
  direct.options.learn = false;
  EXPECT_EQ(composedVerdicts(svc.run(direct)), composedVerdicts(learned));
}

TEST(AgrEngine, UnlearnableSpecsFallBackToTheDirectCheck) {
  // AG is outside the learnable fragment (not propositional, not
  // p => AX q): the engine must refuse to guess and serve the direct
  // composed verdict, flagged as a fallback.
  const char* text = R"(
MODULE ping
VAR x : boolean;
ASSIGN next(x) := !x;
SPEC AG (x | !x)

MODULE pong
VAR x : boolean;
ASSIGN next(x) := x;
SPEC x | !x
)";
  service::VerificationService svc(twoThreads());
  service::VerificationJob job;
  job.name = "fallback";
  job.smvText = text;
  job.options.compose = true;
  job.options.learn = true;
  const service::JobReport learned = runLearnedJob(svc, job, LearnOptions{});

  bool sawFallback = false;
  for (const service::ObligationOutcome& o : learned.obligations) {
    if (o.id != "composed/ping.SPEC1") continue;
    sawFallback = true;
    EXPECT_EQ(o.verdict, service::Verdict::Holds);
    EXPECT_NE(o.verdictSource, "learned");
    EXPECT_NE(o.learnedJson.find("fallback_reason"), std::string::npos);
  }
  EXPECT_TRUE(sawFallback);
}

TEST(AgrEngine, WarmRerunServesEveryQueryFromTheCache) {
  const fs::path model = fs::path(CMC_MODELS_DIR) / "afs2_composed.smv";
  service::VerificationService svc(twoThreads());
  service::VerificationJob job;
  job.name = "afs2";
  job.smvText = readFile(model);
  job.options.compose = true;
  job.options.learn = true;

  const service::JobReport cold = runLearnedJob(svc, job, LearnOptions{});
  EXPECT_GT(cold.cacheMisses, 0u);
  const service::JobReport warm = runLearnedJob(svc, job, LearnOptions{});
  EXPECT_EQ(warm.cacheMisses, 0u);
  EXPECT_GT(warm.cacheHits, 0u);
  EXPECT_EQ(composedVerdicts(warm), composedVerdicts(cold));
}

}  // namespace
}  // namespace cmc::agr
