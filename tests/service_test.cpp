// Tests for the verification service layer: job expansion, resource
// budgets (deadline and node budget), the engine degradation/retry policy,
// and the structured run trace / report.
#include <gtest/gtest.h>

#include "afs/smv_sources.hpp"
#include "service/scheduler.hpp"

namespace cmc::service {
namespace {

/// Three-phase protocol with one trivially true safety spec.
const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)";

/// Two modules sharing x, both keeping it constant: the universal spec is
/// discharged on the composition by Rule 2 (every expansion satisfies it).
const char* kTwoModuleSmv = R"(
MODULE mA
VAR x : {on, off};
ASSIGN next(x) := x;
SPEC (x = on) -> AX (x = on)
MODULE mB
VAR
  x : {on, off};
  y : {p, q};
ASSIGN
  next(x) := x;
  next(y) := case y = p : q; 1 : p; esac;
SPEC (x = on) -> AX (x = on)
)";

VerificationJob chainJob() {
  VerificationJob job;
  job.name = "chain";
  job.smvText = kChainSmv;
  return job;
}

ServiceOptions withThreads(unsigned n) {
  ServiceOptions opts;
  opts.threads = n;
  return opts;
}

TEST(Service, VerdictAggregationIsWorstOf) {
  EXPECT_EQ(worseVerdict(Verdict::Holds, Verdict::Timeout), Verdict::Timeout);
  EXPECT_EQ(worseVerdict(Verdict::Timeout, Verdict::MemoryOut),
            Verdict::MemoryOut);
  EXPECT_EQ(worseVerdict(Verdict::Inconclusive, Verdict::Fails),
            Verdict::Fails);
  EXPECT_EQ(worseVerdict(Verdict::Fails, Verdict::Error), Verdict::Fails);
  EXPECT_STREQ(toString(Verdict::MemoryOut), "MemoryOut");
}

TEST(Service, HoldingJobProducesReportAndTrace) {
  VerificationService svc(withThreads(2));
  RunTrace trace;
  const JobReport report = svc.run(chainJob(), &trace);

  EXPECT_TRUE(report.allHold());
  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  EXPECT_EQ(o.verdict, Verdict::Holds);
  EXPECT_EQ(o.rule, "direct");
  EXPECT_EQ(o.target, "chain");
  EXPECT_FALSE(o.retried);
  ASSERT_EQ(o.attempts.size(), 1u);
  EXPECT_EQ(o.attempts.front().engine, "partitioned");

  EXPECT_EQ(trace.countContaining("\"event\": \"job_start\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"obligation_start\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"obligation_end\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 0u);
  EXPECT_EQ(trace.countContaining("\"event\": \"job_end\""), 1u);

  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"verdict\": \"Holds\""), std::string::npos);
  EXPECT_NE(json.find("\"obligation_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"engine\": \"partitioned\""), std::string::npos);
}

TEST(Service, DeadlineExpiryYieldsTimeoutThenInconclusive) {
  VerificationJob job = chainJob();
  job.options.limits.deadlineSeconds = 1e-9;

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  // Both engines ran out of time, so the obligation is Inconclusive and
  // the report records one attempt per engine.
  EXPECT_EQ(o.verdict, Verdict::Inconclusive);
  EXPECT_TRUE(o.retried);
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_EQ(o.attempts[0].engine, "partitioned");
  EXPECT_EQ(o.attempts[0].verdict, Verdict::Timeout);
  EXPECT_EQ(o.attempts[1].engine, "monolithic");
  EXPECT_EQ(o.attempts[1].verdict, Verdict::Timeout);

  EXPECT_GE(trace.countContaining("\"verdict\": \"Timeout\""), 2u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 1u);
  EXPECT_EQ(trace.countContaining("\"reason\": \"Timeout\""), 1u);
}

TEST(Service, TinyNodeBudgetOnAfs2YieldsMemoryOutNotAHang) {
  // The ISSUE's acceptance scenario: a deliberately impossible node budget
  // on an AFS-2 model must surface as MemoryOut attempts plus a retry
  // event in the trace — never a crash or hang.
  VerificationJob job;
  job.name = "afs2";
  job.factory = [](symbolic::Context& ctx) {
    return std::vector<smv::ElaboratedModule>{
        smv::elaborateText(ctx, afs::afs2ServerSmv(2))};
  };
  job.options.limits.nodeBudget = 1;

  VerificationService svc(withThreads(2));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  EXPECT_EQ(report.verdict, Verdict::Inconclusive);
  ASSERT_FALSE(report.obligations.empty());
  for (const ObligationOutcome& o : report.obligations) {
    EXPECT_EQ(o.verdict, Verdict::Inconclusive) << o.id;
    EXPECT_TRUE(o.retried) << o.id;
    ASSERT_EQ(o.attempts.size(), 2u) << o.id;
    EXPECT_EQ(o.attempts[0].verdict, Verdict::MemoryOut) << o.id;
    EXPECT_EQ(o.attempts[1].verdict, Verdict::MemoryOut) << o.id;
  }
  EXPECT_GE(trace.countContaining("\"verdict\": \"MemoryOut\""), 2u);
  EXPECT_GE(trace.countContaining("\"event\": \"retry\""), 1u);
  EXPECT_GE(trace.countContaining("\"reason\": \"MemoryOut\""), 1u);
  // The degradation policy goes partitioned -> monolithic by default.
  EXPECT_GE(trace.countContaining("\"from_engine\": \"partitioned\""), 1u);
  EXPECT_GE(trace.countContaining("\"to_engine\": \"monolithic\""), 1u);
}

TEST(Service, RetryDegradesMonolithicToPartitionedToo) {
  VerificationJob job = chainJob();
  job.options.usePartitionedTrans = false;
  job.options.limits.nodeBudget = 1;

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  EXPECT_EQ(o.verdict, Verdict::Inconclusive);
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_EQ(o.attempts[0].engine, "monolithic");
  EXPECT_EQ(o.attempts[1].engine, "partitioned");
  EXPECT_GE(trace.countContaining("\"from_engine\": \"monolithic\""), 1u);
  EXPECT_GE(trace.countContaining("\"to_engine\": \"partitioned\""), 1u);
}

TEST(Service, NoRetryKeepsTheSingleAttemptVerdict) {
  VerificationJob job = chainJob();
  job.options.limits.deadlineSeconds = 1e-9;
  job.options.retryOtherEngine = false;

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  // Without the degradation retry the budget verdict itself stands.
  EXPECT_EQ(o.verdict, Verdict::Timeout);
  EXPECT_FALSE(o.retried);
  EXPECT_EQ(o.attempts.size(), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 0u);
}

TEST(Service, ComposedObligationsCarryRuleAndCertificate) {
  VerificationJob job;
  job.name = "twomod";
  job.smvText = kTwoModuleSmv;
  job.options.compose = true;

  VerificationService svc(withThreads(2));
  const JobReport report = svc.run(job);

  EXPECT_TRUE(report.allHold());
  // 2 component obligations + 2 composed ones.
  ASSERT_EQ(report.obligations.size(), 4u);
  std::size_t composed = 0;
  for (const ObligationOutcome& o : report.obligations) {
    EXPECT_EQ(o.verdict, Verdict::Holds) << o.id;
    if (o.target == "composed") {
      ++composed;
      EXPECT_NE(o.rule.find("Rule 2"), std::string::npos) << o.rule;
      EXPECT_FALSE(o.proofJson.empty()) << o.id;
    } else {
      EXPECT_EQ(o.rule, "direct");
      EXPECT_TRUE(o.proofJson.empty());
    }
  }
  EXPECT_EQ(composed, 2u);
  EXPECT_NE(report.toJson().find("\"proof\": ["), std::string::npos);
}

TEST(Service, ElaborationFailureIsAnErrorOutcomeNotACrash) {
  VerificationJob job;
  job.name = "broken";
  job.smvText = "MODULE nonsense\nVAR !!!";

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  EXPECT_EQ(report.verdict, Verdict::Error);
  ASSERT_EQ(report.obligations.size(), 1u);
  EXPECT_NE(report.obligations.front().id.find("<elaboration>"),
            std::string::npos);
  EXPECT_FALSE(report.obligations.front().error.empty());
}

TEST(Service, BatchInterleavesJobsAndReportsInOrder) {
  VerificationJob a = chainJob();
  a.name = "first";
  VerificationJob b = chainJob();
  b.name = "second";

  VerificationService svc(withThreads(2));
  RunTrace trace;
  const std::vector<JobReport> reports = svc.runBatch({a, b}, &trace);

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].job, "first");
  EXPECT_EQ(reports[1].job, "second");
  EXPECT_TRUE(reports[0].allHold());
  EXPECT_TRUE(reports[1].allHold());
  EXPECT_EQ(trace.countContaining("\"event\": \"job_end\""), 2u);
}

TEST(Service, JsonEscapingHandlesControlCharacters) {
  EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  const std::string obj =
      JsonObject().put("k", "v\t").putUint("n", 3).str();
  EXPECT_EQ(obj, "{\"k\": \"v\\t\", \"n\": 3}");
}

}  // namespace
}  // namespace cmc::service
