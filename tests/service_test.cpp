// Tests for the verification service layer: job expansion, resource
// budgets (deadline and node budget), the engine degradation/retry policy,
// worker quarantine, cooperative cancellation, journal integration, and
// the structured run trace / report.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "afs/smv_sources.hpp"
#include "service/budget.hpp"
#include "service/scheduler.hpp"

namespace cmc::service {
namespace {

/// Three-phase protocol with one trivially true safety spec.
const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)";

/// Two modules sharing x, both keeping it constant: the universal spec is
/// discharged on the composition by Rule 2 (every expansion satisfies it).
const char* kTwoModuleSmv = R"(
MODULE mA
VAR x : {on, off};
ASSIGN next(x) := x;
SPEC (x = on) -> AX (x = on)
MODULE mB
VAR
  x : {on, off};
  y : {p, q};
ASSIGN
  next(x) := x;
  next(y) := case y = p : q; 1 : p; esac;
SPEC (x = on) -> AX (x = on)
)";

VerificationJob chainJob() {
  VerificationJob job;
  job.name = "chain";
  job.smvText = kChainSmv;
  return job;
}

ServiceOptions withThreads(unsigned n) {
  ServiceOptions opts;
  opts.threads = n;
  return opts;
}

TEST(Service, VerdictAggregationIsWorstOf) {
  EXPECT_EQ(worseVerdict(Verdict::Holds, Verdict::Timeout), Verdict::Timeout);
  EXPECT_EQ(worseVerdict(Verdict::Timeout, Verdict::MemoryOut),
            Verdict::MemoryOut);
  EXPECT_EQ(worseVerdict(Verdict::Inconclusive, Verdict::Fails),
            Verdict::Fails);
  EXPECT_EQ(worseVerdict(Verdict::Fails, Verdict::Error), Verdict::Fails);
  EXPECT_STREQ(toString(Verdict::MemoryOut), "MemoryOut");
}

TEST(Service, HoldingJobProducesReportAndTrace) {
  VerificationService svc(withThreads(2));
  RunTrace trace;
  const JobReport report = svc.run(chainJob(), &trace);

  EXPECT_TRUE(report.allHold());
  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  EXPECT_EQ(o.verdict, Verdict::Holds);
  EXPECT_EQ(o.rule, "direct");
  EXPECT_EQ(o.target, "chain");
  EXPECT_FALSE(o.retried);
  ASSERT_EQ(o.attempts.size(), 1u);
  EXPECT_EQ(o.attempts.front().engine, "partitioned");

  EXPECT_EQ(trace.countContaining("\"event\": \"job_start\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"obligation_start\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"obligation_end\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 0u);
  EXPECT_EQ(trace.countContaining("\"event\": \"job_end\""), 1u);

  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"verdict\": \"Holds\""), std::string::npos);
  EXPECT_NE(json.find("\"obligation_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"engine\": \"partitioned\""), std::string::npos);
}

TEST(Service, DeadlineExpiryYieldsTimeoutThenInconclusive) {
  VerificationJob job = chainJob();
  job.options.limits.deadlineSeconds = 1e-9;

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  // Both engines ran out of time, so the obligation is Inconclusive and
  // the report records one attempt per engine.
  EXPECT_EQ(o.verdict, Verdict::Inconclusive);
  EXPECT_TRUE(o.retried);
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_EQ(o.attempts[0].engine, "partitioned");
  EXPECT_EQ(o.attempts[0].verdict, Verdict::Timeout);
  EXPECT_EQ(o.attempts[1].engine, "monolithic");
  EXPECT_EQ(o.attempts[1].verdict, Verdict::Timeout);

  EXPECT_GE(trace.countContaining("\"verdict\": \"Timeout\""), 2u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 1u);
  EXPECT_EQ(trace.countContaining("\"reason\": \"Timeout\""), 1u);
}

TEST(Service, TinyNodeBudgetOnAfs2YieldsMemoryOutNotAHang) {
  // The ISSUE's acceptance scenario: a deliberately impossible node budget
  // on an AFS-2 model must surface as MemoryOut attempts plus a retry
  // event in the trace — never a crash or hang.
  VerificationJob job;
  job.name = "afs2";
  job.factory = [](symbolic::Context& ctx) {
    return std::vector<smv::ElaboratedModule>{
        smv::elaborateText(ctx, afs::afs2ServerSmv(2))};
  };
  job.options.limits.nodeBudget = 1;

  VerificationService svc(withThreads(2));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  EXPECT_EQ(report.verdict, Verdict::Inconclusive);
  ASSERT_FALSE(report.obligations.empty());
  for (const ObligationOutcome& o : report.obligations) {
    EXPECT_EQ(o.verdict, Verdict::Inconclusive) << o.id;
    EXPECT_TRUE(o.retried) << o.id;
    ASSERT_EQ(o.attempts.size(), 2u) << o.id;
    EXPECT_EQ(o.attempts[0].verdict, Verdict::MemoryOut) << o.id;
    EXPECT_EQ(o.attempts[1].verdict, Verdict::MemoryOut) << o.id;
  }
  EXPECT_GE(trace.countContaining("\"verdict\": \"MemoryOut\""), 2u);
  EXPECT_GE(trace.countContaining("\"event\": \"retry\""), 1u);
  EXPECT_GE(trace.countContaining("\"reason\": \"MemoryOut\""), 1u);
  // The degradation policy goes partitioned -> monolithic by default.
  EXPECT_GE(trace.countContaining("\"from_engine\": \"partitioned\""), 1u);
  EXPECT_GE(trace.countContaining("\"to_engine\": \"monolithic\""), 1u);
}

TEST(Service, RetryDegradesMonolithicToPartitionedToo) {
  VerificationJob job = chainJob();
  job.options.engine = symbolic::EngineMode::Monolithic;
  job.options.limits.nodeBudget = 1;

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  EXPECT_EQ(o.verdict, Verdict::Inconclusive);
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_EQ(o.attempts[0].engine, "monolithic");
  EXPECT_EQ(o.attempts[1].engine, "partitioned");
  EXPECT_GE(trace.countContaining("\"from_engine\": \"monolithic\""), 1u);
  EXPECT_GE(trace.countContaining("\"to_engine\": \"partitioned\""), 1u);
}

TEST(Service, NoRetryKeepsTheSingleAttemptVerdict) {
  VerificationJob job = chainJob();
  job.options.limits.deadlineSeconds = 1e-9;
  job.options.retryOtherEngine = false;

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  // Without the degradation retry the budget verdict itself stands.
  EXPECT_EQ(o.verdict, Verdict::Timeout);
  EXPECT_FALSE(o.retried);
  EXPECT_EQ(o.attempts.size(), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 0u);
}

TEST(Service, ComposedObligationsCarryRuleAndCertificate) {
  VerificationJob job;
  job.name = "twomod";
  job.smvText = kTwoModuleSmv;
  job.options.compose = true;

  VerificationService svc(withThreads(2));
  const JobReport report = svc.run(job);

  EXPECT_TRUE(report.allHold());
  // 2 component obligations + 2 composed ones.
  ASSERT_EQ(report.obligations.size(), 4u);
  std::size_t composed = 0;
  for (const ObligationOutcome& o : report.obligations) {
    EXPECT_EQ(o.verdict, Verdict::Holds) << o.id;
    if (o.target == "composed") {
      ++composed;
      EXPECT_NE(o.rule.find("Rule 2"), std::string::npos) << o.rule;
      EXPECT_FALSE(o.proofJson.empty()) << o.id;
    } else {
      EXPECT_EQ(o.rule, "direct");
      EXPECT_TRUE(o.proofJson.empty());
    }
  }
  EXPECT_EQ(composed, 2u);
  EXPECT_NE(report.toJson().find("\"proof\": ["), std::string::npos);
}

TEST(Service, ElaborationFailureIsAnErrorOutcomeNotACrash) {
  VerificationJob job;
  job.name = "broken";
  job.smvText = "MODULE nonsense\nVAR !!!";

  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);

  EXPECT_EQ(report.verdict, Verdict::Error);
  ASSERT_EQ(report.obligations.size(), 1u);
  EXPECT_NE(report.obligations.front().id.find("<elaboration>"),
            std::string::npos);
  EXPECT_FALSE(report.obligations.front().error.empty());
}

TEST(Service, BatchInterleavesJobsAndReportsInOrder) {
  VerificationJob a = chainJob();
  a.name = "first";
  VerificationJob b = chainJob();
  b.name = "second";

  VerificationService svc(withThreads(2));
  RunTrace trace;
  const std::vector<JobReport> reports = svc.runBatch({a, b}, &trace);

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].job, "first");
  EXPECT_EQ(reports[1].job, "second");
  EXPECT_TRUE(reports[0].allHold());
  EXPECT_TRUE(reports[1].allHold());
  EXPECT_EQ(trace.countContaining("\"event\": \"job_end\""), 2u);
}

TEST(Service, JsonEscapingHandlesControlCharacters) {
  EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  const std::string obj =
      JsonObject().put("k", "v\t").putUint("n", 3).str();
  EXPECT_EQ(obj, "{\"k\": \"v\\t\", \"n\": 3}");
}

// ---------------------------------------------------------------------------
// Worker quarantine
// ---------------------------------------------------------------------------

/// A job whose factory throws a foreign exception on selected calls.  The
/// scout phase makes the first call; each worker attempt makes one more.
VerificationJob flakyJob(std::shared_ptr<std::atomic<int>> calls,
                         int failFrom, int failTo) {
  VerificationJob job;
  job.name = "flaky";
  job.factory = [calls, failFrom, failTo](symbolic::Context& ctx) {
    const int n = calls->fetch_add(1) + 1;
    if (n >= failFrom && n <= failTo) {
      throw std::runtime_error("simulated transient fault (call " +
                               std::to_string(n) + ")");
    }
    return smv::elaborateProgram(ctx, R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)");
  };
  return job;
}

TEST(ServiceQuarantine, TransientThrowIsRetriedOnAFreshContext) {
  // Call 1 = scout, call 2 = first attempt (throws), call 3 = quarantine
  // retry (succeeds): the obligation must come back Holds.
  auto calls = std::make_shared<std::atomic<int>>(0);
  VerificationService svc(withThreads(1));
  RunTrace trace;
  const JobReport report = svc.run(flakyJob(calls, 2, 2), &trace);

  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  EXPECT_EQ(o.verdict, Verdict::Holds);
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_EQ(o.attempts[0].verdict, Verdict::Error);
  EXPECT_EQ(o.attempts[1].verdict, Verdict::Holds);
  EXPECT_EQ(trace.countContaining("\"event\": \"quarantine\""), 1u);
  EXPECT_EQ(trace.countContaining("simulated transient fault"), 1u);
}

TEST(ServiceQuarantine, PersistentThrowBecomesErrorWithoutLosingSiblings) {
  // One poisoned obligation (factory throws on every worker call) next to
  // a healthy job in the same batch: the healthy job must be unaffected
  // and the poisoned one must surface as Error with the exception text.
  auto calls = std::make_shared<std::atomic<int>>(0);
  VerificationService svc(withThreads(2));
  RunTrace trace;
  const std::vector<JobReport> reports =
      svc.runBatch({flakyJob(calls, 2, 1000), chainJob()}, &trace);

  ASSERT_EQ(reports.size(), 2u);
  ASSERT_EQ(reports[0].obligations.size(), 1u);
  const ObligationOutcome& bad = reports[0].obligations.front();
  EXPECT_EQ(bad.verdict, Verdict::Error);
  EXPECT_NE(bad.error.find("simulated transient fault"), std::string::npos);
  // One original attempt plus exactly one quarantine retry — no loops.
  EXPECT_EQ(bad.attempts.size(), 2u);
  EXPECT_EQ(reports[0].verdict, Verdict::Error);

  EXPECT_TRUE(reports[1].allHold());
  EXPECT_EQ(trace.countContaining("\"event\": \"quarantine\""), 1u);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

TEST(ServiceCancel, RaisedFlagDrainsQueuedObligationsAsCancelled) {
  std::atomic<bool> cancel{true};  // raised before the batch even starts
  ServiceOptions opts = withThreads(2);
  opts.cancelFlag = &cancel;
  VerificationService svc(opts);
  EXPECT_TRUE(svc.cancelRequested());

  RunTrace trace;
  const JobReport report = svc.run(chainJob(), &trace);
  ASSERT_EQ(report.obligations.size(), 1u);
  EXPECT_EQ(report.obligations.front().verdict, Verdict::Cancelled);
  EXPECT_TRUE(report.obligations.front().attempts.empty());
  EXPECT_EQ(report.verdict, Verdict::Cancelled);
  EXPECT_EQ(trace.countContaining("\"verdict\": \"Cancelled\""), 2u);
}

TEST(ServiceCancel, CancelledRanksBelowErrorAndFails) {
  EXPECT_EQ(worseVerdict(Verdict::Cancelled, Verdict::Error), Verdict::Error);
  EXPECT_EQ(worseVerdict(Verdict::Cancelled, Verdict::Fails), Verdict::Fails);
  EXPECT_EQ(worseVerdict(Verdict::Inconclusive, Verdict::Cancelled),
            Verdict::Cancelled);
  EXPECT_STREQ(toString(Verdict::Cancelled), "Cancelled");
}

// ---------------------------------------------------------------------------
// Journal integration
// ---------------------------------------------------------------------------

TEST(ServiceJournal, OutcomesAreJournaledAndServedOnResume) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "cmc_service_journal.jsonl";
  fs::remove(path);

  VerificationJob job;
  job.name = "twomod";
  job.smvText = kTwoModuleSmv;
  job.options.compose = true;

  {
    VerificationService svc(withThreads(2));
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    const JobReport report = svc.run(job, nullptr, &journal);
    EXPECT_TRUE(report.allHold());
    EXPECT_EQ(journal.recorded(), report.obligations.size());
    EXPECT_EQ(report.journalHits, 0u);
  }

  const JournalReplay replay = loadJournal(path.string());
  ASSERT_TRUE(replay.found);
  // 4 outcomes, 3 distinct content fingerprints: mA and mB state the same
  // spec, so their two composed obligations share one address (and one
  // journal key) — exactly as in the obligation cache.
  EXPECT_EQ(replay.lines, 4u);
  EXPECT_EQ(replay.decided.size(), 3u);

  // The resumed service (fresh process: cold cache) serves every
  // obligation from the journal without a single checker attempt.
  ServiceOptions opts = withThreads(2);
  opts.cacheEnabled = false;
  VerificationService svc(opts);
  RunTrace trace;
  const JobReport resumed = svc.run(job, &trace, nullptr, &replay);
  EXPECT_TRUE(resumed.allHold());
  EXPECT_EQ(resumed.journalHits, resumed.obligations.size());
  for (const ObligationOutcome& o : resumed.obligations) {
    EXPECT_EQ(o.verdictSource, "journal") << o.id;
    EXPECT_TRUE(o.attempts.empty()) << o.id;
    if (o.target == "composed") {
      EXPECT_FALSE(o.proofJson.empty()) << o.id;
    }
  }
  EXPECT_EQ(trace.countContaining("\"event\": \"journal_hit\""), 4u);
  EXPECT_EQ(trace.countContaining("\"event\": \"attempt\""), 0u);
  EXPECT_NE(resumed.toJson().find("\"journal_hits\": 4"), std::string::npos);
  fs::remove(path);
}

TEST(ServiceJournal, UndecidedJournalEntriesAreReRun) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "cmc_service_rerun.jsonl";
  fs::remove(path);
  {
    // A journal holding only a non-replayable verdict for the obligation.
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    JournalEntry e;
    e.job = "chain";
    e.id = "chain/chain.SPEC1";
    e.specText = "AG (s = a | s = b | s = c)";
    e.verdict = Verdict::Cancelled;
    journal.record(e);
  }
  const JournalReplay replay = loadJournal(path.string());
  EXPECT_EQ(replay.decided.size(), 0u);

  ServiceOptions opts = withThreads(1);
  opts.cacheEnabled = false;
  VerificationService svc(opts);
  const JobReport report = svc.run(chainJob(), nullptr, nullptr, &replay);
  EXPECT_TRUE(report.allHold());
  EXPECT_EQ(report.journalHits, 0u);
  ASSERT_EQ(report.obligations.size(), 1u);
  EXPECT_EQ(report.obligations.front().verdictSource, "checked");
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Budget: the forced-GC recheck
// ---------------------------------------------------------------------------

/// Dead parity-chain prefixes: xor chains over 16 vars allocate hundreds
/// of distinct nodes, all garbage once the scope closes (the manager's
/// auto-GC threshold of 4096 never fires at this scale).
void makeGarbage(bdd::Manager& mgr) {
  bdd::Bdd f = mgr.bddVar(0);
  for (std::uint32_t i = 1; i < 16; ++i) f ^= mgr.bddVar(i);
}

TEST(ServiceBudget, GcRecoveryAvoidsASpuriousMemoryOut) {
  // Dead intermediates push the live count over budget; the token must
  // force a collection and, with the reachable set back under budget,
  // NOT declare MemoryOut.
  bdd::Manager mgr(64);
  const bdd::Bdd keep = mgr.bddVar(0) & mgr.bddVar(1);
  mgr.collectGarbage();
  const std::uint64_t baseline = mgr.liveNodeCount();
  makeGarbage(mgr);

  ObligationLimits limits;
  limits.nodeBudget = baseline + 20;
  ASSERT_GT(mgr.liveNodeCount(), limits.nodeBudget)
      << "test setup: garbage did not exceed the budget";

  BudgetToken token(mgr, limits);
  const std::uint64_t gcBefore = mgr.stats().gcRuns;
  EXPECT_NO_THROW(token.check());
  EXPECT_GT(mgr.stats().gcRuns, gcBefore);  // the recheck collected
  EXPECT_LE(mgr.liveNodeCount(), limits.nodeBudget);
  // Still under budget on the next poll, and the kept function survived.
  EXPECT_NO_THROW(token.check());
  EXPECT_TRUE(mgr.eval(keep, {true, true, false, false, false, false, false,
                              false, false, false, false, false, false,
                              false, false, false}));
}

TEST(ServiceBudget, GenuineExhaustionStillThrowsAfterGc) {
  // Everything stays referenced, so collection cannot help: the recheck
  // must throw CancelledError with the NodeBudget reason.
  bdd::Manager mgr(64);
  std::vector<bdd::Bdd> pinned;
  bdd::Bdd f = mgr.bddVar(0);
  for (std::uint32_t i = 1; i < 16; ++i) {
    f ^= mgr.bddVar(i);
    pinned.push_back(f);
  }
  ObligationLimits limits;
  limits.nodeBudget = 8;
  ASSERT_GT(mgr.liveNodeCount(), limits.nodeBudget);

  BudgetToken token(mgr, limits);
  const std::uint64_t gcBefore = mgr.stats().gcRuns;
  try {
    token.check();
    FAIL() << "exhausted node budget did not throw";
  } catch (const symbolic::CancelledError& e) {
    EXPECT_EQ(e.reason(), symbolic::CancelReason::NodeBudget);
    EXPECT_NE(std::string(e.what()).find("node budget"), std::string::npos);
  }
  // The throw came from the post-collection recheck, not the raw count.
  EXPECT_GT(mgr.stats().gcRuns, gcBefore);
}

}  // namespace
}  // namespace cmc::service
