// Tests for the library-level lemma validators (comp/lemmas.hpp): they must
// confirm the lemmas on well-formed systems AND report violations when fed
// systems breaking the paper's standing assumptions.
#include <gtest/gtest.h>

#include "comp/lemmas.hpp"

namespace cmc::comp {
namespace {

using kripke::ExplicitSystem;

ExplicitSystem smallSystem(unsigned seed, std::vector<std::string> atoms) {
  std::mt19937 rng(seed);
  ExplicitSystem sys(std::move(atoms));
  std::uniform_int_distribution<std::uint64_t> state(0, sys.stateCount() - 1);
  for (kripke::State s = 0; s < sys.stateCount(); ++s) {
    sys.addTransition(s, static_cast<kripke::State>(state(rng)));
  }
  sys.makeReflexive();
  return sys;
}

TEST(LemmaApi, AllLemmasHoldOnManySeeds) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    for (const LemmaResult& result : checkAllLemmas(seed)) {
      EXPECT_TRUE(result.holds)
          << result.lemma << " (seed " << seed << "): " << result.detail;
    }
  }
}

TEST(LemmaApi, Lemma2RejectsDifferentAlphabets) {
  const ExplicitSystem a = smallSystem(1, {"a", "b"});
  const ExplicitSystem b = smallSystem(2, {"b", "c"});
  const LemmaResult result = checkLemma2(a, b);
  EXPECT_FALSE(result.holds);
  EXPECT_NE(result.detail.find("alphabet"), std::string::npos);
}

TEST(LemmaApi, Lemma3FlagsNonReflexiveSystems) {
  // A system violating the standing reflexivity assumption.
  ExplicitSystem loopless({"a"});
  loopless.addTransition(0, 1);
  loopless.addTransition(1, 0);
  const LemmaResult result = checkLemma3(loopless);
  EXPECT_FALSE(result.holds);
  EXPECT_NE(result.detail.find("reflexive"), std::string::npos);
}

TEST(LemmaApi, Lemma10RequiresAlphabetExtension) {
  const ExplicitSystem small = smallSystem(3, {"a", "b"});
  const ExplicitSystem wrong = smallSystem(4, {"x", "y", "z"});
  std::mt19937 rng(5);
  const LemmaResult result = checkLemma10(small, wrong, rng);
  EXPECT_FALSE(result.holds);
}

TEST(LemmaApi, IndividualLemmasOnHandBuiltSystems) {
  std::mt19937 rng(7);
  const ExplicitSystem a = smallSystem(11, {"a", "b"});
  const ExplicitSystem b = smallSystem(12, {"b", "c"});
  const ExplicitSystem c = smallSystem(13, {"c"});
  EXPECT_TRUE(checkLemma1(a, b, c).holds);
  EXPECT_TRUE(checkLemma4(a, b).holds);
  EXPECT_TRUE(checkLemma5(a, {"z"}, rng).holds);
  EXPECT_TRUE(checkLemma6(a, rng).holds);
  EXPECT_TRUE(checkLemma7(a, rng).holds);
  EXPECT_TRUE(checkLemma8(a, {"u"}, rng).holds);
  EXPECT_TRUE(checkLemma9(a, {"u"}, rng).holds);
  EXPECT_TRUE(checkLemma11(a, rng).holds);
}

}  // namespace
}  // namespace cmc::comp
