// Tests for the symbolic substrate: variable encodings (paper §3.4,
// Fig. 3), symbolic systems/composition, and — most importantly — agreement
// between the symbolic and explicit checkers on random models and formulas.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "abp/abp.hpp"
#include "afs/afs1.hpp"
#include "afs/afs2.hpp"
#include "ctl/parser.hpp"
#include "ring/token_ring.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"
#include "symbolic/partition.hpp"
#include "symbolic/prop.hpp"
#include "test_util.hpp"

namespace cmc::symbolic {
namespace {

using ctl::parse;

TEST(VarTable, BooleanEncoding) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  EXPECT_TRUE(ctx.variable(x).isBool);
  EXPECT_EQ(ctx.variable(x).bits.size(), 1u);
  EXPECT_EQ(ctx.bitCount(), 1u);
  EXPECT_EQ(ctx.varEq(x, "1"), ctx.mgr().bddVar(0));
  EXPECT_EQ(ctx.varEq(x, "0"), ctx.mgr().bddNVar(0));
  EXPECT_EQ(ctx.varEq(x, "TRUE"), ctx.mgr().bddVar(0));
  EXPECT_TRUE(ctx.domain(x).isTrue());
}

TEST(VarTable, EnumEncodingMatchesFigure3) {
  // Figure 3: x ∈ {0,1,2,3} maps to two booleans x0, x1.
  Context ctx;
  const VarId x = ctx.addEnumVar("x", {"0", "1", "2", "3"});
  EXPECT_EQ(ctx.variable(x).bits.size(), 2u);
  // Value 2 = binary 10: bit0 = 0, bit1 = 1.
  const bdd::Bdd enc = ctx.varEq(x, "2");
  EXPECT_EQ(enc, ctx.mgr().bddNVar(0) & ctx.mgr().bddVar(2));
  // Power-of-two domain needs no constraint.
  EXPECT_TRUE(ctx.domain(x).isTrue());
  // The propositional formula (x < 2) of §3.4 maps to !x1.
  const bdd::Bdd lessThan2 = ctx.varEq(x, "0") | ctx.varEq(x, "1");
  EXPECT_EQ(lessThan2, !ctx.mgr().bddVar(2));
}

TEST(VarTable, NonPowerOfTwoDomainConstraint) {
  Context ctx;
  const VarId b = ctx.addEnumVar("belief", {"none", "invalid", "valid"});
  EXPECT_EQ(ctx.variable(b).bits.size(), 2u);
  const bdd::Bdd dom = ctx.domain(b);
  EXPECT_FALSE(dom.isTrue());
  // Exactly three of the four encodings are valid.
  EXPECT_DOUBLE_EQ(ctx.mgr().satCount(dom, 4), 3.0 * 4);  // 2 free next bits
}

TEST(VarTable, ErrorsAndLookups) {
  Context ctx;
  ctx.addBoolVar("x");
  EXPECT_THROW(ctx.addBoolVar("x"), ModelError);
  EXPECT_THROW(ctx.varId("nope"), ModelError);
  EXPECT_THROW(ctx.addEnumVar("e", {}), ModelError);
  const VarId e = ctx.addEnumVar("e", {"a", "b"});
  EXPECT_THROW(ctx.varEq(e, "zzz"), ModelError);
  EXPECT_THROW(ctx.atomBdd("e"), ModelError);  // bare non-boolean atom
  EXPECT_NO_THROW(ctx.atomBdd("e=a"));
  EXPECT_NO_THROW(ctx.atomBdd("x"));
}

TEST(VarTable, FrameAndCubes) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  const VarId y = ctx.addEnumVar("y", {"a", "b", "c"});
  const bdd::Bdd frame = ctx.frameAll({x, y});
  // frame keeps each bit equal: evaluate a few assignments.
  // Bits: x:bit0 (vars 0,1), y:bits1,2 (vars 2,3,4,5).
  bdd::Manager& mgr = ctx.mgr();
  std::vector<bool> a(6, false);
  EXPECT_TRUE(mgr.eval(frame, a));
  a[0] = true;  // x=1 now, x'=0
  EXPECT_FALSE(mgr.eval(frame, a));
  a[1] = true;  // x'=1 too
  EXPECT_TRUE(mgr.eval(frame, a));
  const bdd::Bdd cc = ctx.currentCube({x, y});
  EXPECT_EQ(mgr.support(cc), (std::vector<std::uint32_t>{0, 2, 4}));
  const bdd::Bdd nc = ctx.nextCube({x, y});
  EXPECT_EQ(mgr.support(nc), (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(SymbolicSystem, MakeSystemValidatesSupport) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  const VarId y = ctx.addBoolVar("y");
  const bdd::Bdd mentionsY = ctx.varEq(y, "1");
  EXPECT_THROW(makeSystem(ctx, "bad", {x}, mentionsY), ModelError);
  EXPECT_NO_THROW(makeSystem(ctx, "ok", {x, y}, mentionsY));
}

TEST(SymbolicSystem, IdentityAndReflexivity) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  SymbolicSystem id = identitySystem(ctx, {x});
  EXPECT_TRUE(id.isReflexive());
  EXPECT_TRUE(id.isTotal());
  // A system that can only flip x is not reflexive until closed.
  const bdd::Bdd flip =
      ctx.varEq(x, "1").iff(!ctx.varEq(x, "1", /*next=*/true));
  SymbolicSystem flipper = makeSystem(ctx, "flip", {x}, flip);
  EXPECT_FALSE(flipper.isReflexive());
  EXPECT_TRUE(flipper.isTotal());
  addReflexive(flipper);
  EXPECT_TRUE(flipper.isReflexive());
}

TEST(SymbolicComposition, MatchesExplicitComposition) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
    kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
    kripke::ExplicitSystem eb({"b", "c"});
    ebRaw.forEachTransition(
        [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });

    Context ctx;
    SymbolicSystem sa = symbolicFromExplicit(ctx, ea, "A");
    SymbolicSystem sb = symbolicFromExplicit(ctx, eb, "B");
    const SymbolicSystem sc = compose(sa, sb);
    const kripke::ExplicitSystem expected = kripke::compose(ea, eb);
    const ExplicitImage image = explicitFromSymbolic(sc);
    EXPECT_TRUE(image.sys.sameBehavior(expected)) << "trial " << trial;
  }
}

TEST(SymbolicComposition, LemmasHoldSymbolically) {
  std::mt19937 rng(5);
  Context ctx;
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb({"b", "c"});
  ebRaw.forEachTransition(
      [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });
  SymbolicSystem a = symbolicFromExplicit(ctx, ea, "A");
  SymbolicSystem b = symbolicFromExplicit(ctx, eb, "B");

  // Lemma 1 (canonical BDDs make this pure equality).
  EXPECT_TRUE(sameBehavior(compose(a, b), compose(b, a)));
  // Lemma 3.
  EXPECT_TRUE(sameBehavior(compose(a, identitySystem(ctx, a.vars)), a));
  // Lemma 4.
  EXPECT_TRUE(sameBehavior(
      compose(a, b),
      compose(expand(a, b.vars), expand(b, a.vars))));
}

TEST(SymbolicChecker, SimpleTemporalProperties) {
  // Two-variable handshake: req flips on, then ack follows.
  Context ctx;
  const VarId req = ctx.addBoolVar("req");
  const VarId ack = ctx.addBoolVar("ack");
  bdd::Manager& mgr = ctx.mgr();
  const bdd::Bdd reqNow = ctx.varEq(req, "1");
  const bdd::Bdd reqNext = ctx.varEq(req, "1", true);
  const bdd::Bdd ackNow = ctx.varEq(ack, "1");
  const bdd::Bdd ackNext = ctx.varEq(ack, "1", true);

  // Transitions: idle->req, req->req+ack, req+ack->idle, plus stutter.
  const bdd::Bdd t1 = (!reqNow) & (!ackNow) & reqNext & (!ackNext);
  const bdd::Bdd t2 = reqNow & (!ackNow) & reqNext & ackNext;
  const bdd::Bdd t3 = reqNow & ackNow & (!reqNext) & (!ackNext);
  SymbolicSystem sys =
      makeSystem(ctx, "handshake", {req, ack}, t1 | t2 | t3);
  addReflexive(sys);
  Checker checker(sys);

  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            parse("req & ack -> EX (!req & !ack)")));
  // The paper's ⊨ quantifies over *all* states, so the unreachable state
  // (!req & ack) falsifies this even though every run avoids it.
  EXPECT_FALSE(checker.holds(ctl::Restriction::trivial(),
                             parse("ack -> req")));
  EXPECT_FALSE(checker.holds(ctl::Restriction::trivial(),
                             parse("req -> AX ack")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(), parse("EF ack")));
  // Fairness forces progress out of stuttering.
  ctl::Restriction r;
  r.init = parse("!req & !ack");
  r.fairness = {parse("ack | !req & !ack")};
  // Under that fairness alone the run may cycle; EF ack still holds.
  EXPECT_TRUE(checker.holds(r, parse("EF ack")));
  (void)mgr;
}

TEST(SymbolicChecker, WitnessForViolation) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  SymbolicSystem sys = identitySystem(ctx, {x});
  Checker checker(sys);
  const auto witness =
      checker.violationWitness(ctl::Restriction::trivial(), parse("x"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->find("x=0"), std::string::npos);
  EXPECT_FALSE(checker
                   .violationWitness(ctl::Restriction::trivial(),
                                     parse("x | !x"))
                   .has_value());
}

TEST(SymbolicChecker, CheckResultCounters) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  SymbolicSystem sys = identitySystem(ctx, {x});
  Checker checker(sys);
  const CheckResult result = checker.check(
      ctl::Spec{"t", ctl::Restriction::trivial(), parse("x -> AX x")});
  EXPECT_TRUE(result.holds);
  EXPECT_GT(result.bddNodesAllocated, 0u);
  EXPECT_GT(result.transNodes, 0u);
  EXPECT_EQ(result.specName, "t");
}

TEST(Prop, ValidityOverDomains) {
  Context ctx;
  ctx.addEnumVar("belief", {"none", "invalid", "valid"});
  const VarId b = ctx.varId("belief");
  // belief takes one of its three values — valid over the domain.
  EXPECT_TRUE(propositionallyValid(
      ctx, {b},
      parse("belief=none | belief=invalid | belief=valid")));
  EXPECT_FALSE(propositionallyValid(ctx, {b}, parse("belief=none")));
  EXPECT_THROW(propositionalBdd(ctx, parse("AX belief=none")), ModelError);
}

// ---- Partitioned transition relations --------------------------------------

TEST(Partition, ClusterGreedyPreservesProductAndRespectsThreshold) {
  Context ctx;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(ctx.addEnumVar("v" + std::to_string(i),
                                  {"a", "b", "c"}));
  }
  PartitionedRelation track;
  for (VarId v : vars) track.append(frameConjunct(ctx, v));
  const bdd::Bdd product = track.product(ctx.mgr());
  ASSERT_EQ(track.size(), 4u);

  PartitionedRelation merged = track;
  merged.clusterGreedy(/*nodeThreshold=*/0);  // collapse to one cluster
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.product(ctx.mgr()), product);

  std::uint64_t maxOriginal = 0;
  for (const Conjunct& c : track.conjuncts()) {
    maxOriginal = std::max(maxOriginal, ctx.mgr().dagSize(c.rel));
  }
  PartitionedRelation capped = track;
  capped.clusterGreedy(/*nodeThreshold=*/8);
  EXPECT_GE(capped.size(), 1u);
  EXPECT_LE(capped.size(), track.size());
  EXPECT_EQ(capped.product(ctx.mgr()), product);
  // A cluster is either an original conjunct or a merge that fit under the
  // threshold — it never exceeds both bounds at once.
  for (const Conjunct& c : capped.conjuncts()) {
    EXPECT_LE(ctx.mgr().dagSize(c.rel), std::max<std::uint64_t>(8, maxOriginal));
  }

  PartitionedRelation roomy = track;
  roomy.clusterGreedy(/*nodeThreshold=*/1 << 20);
  EXPECT_EQ(roomy.size(), 1u);  // everything fits in one cluster
  EXPECT_EQ(roomy.product(ctx.mgr()), product);
}

TEST(Partition, ScheduleMatchesAndExists) {
  // exists(next bits, track ∧ target') computed by the schedule must be the
  // same BDD as the single-pass andExists against the product.
  std::mt19937 rng(11);
  Context ctx;
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb({"b", "c"});
  ebRaw.forEachTransition(
      [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });
  SymbolicSystem a = symbolicFromExplicit(ctx, ea, "A");
  SymbolicSystem b = symbolicFromExplicit(ctx, eb, "B");
  const SymbolicSystem c = compose(a, b);

  bdd::Manager& mgr = ctx.mgr();
  std::vector<std::uint32_t> quantVars;
  for (VarId v : c.vars) {
    for (std::uint32_t bit : ctx.variable(v).bits) {
      quantVars.push_back(Context::bddVarOf(bit, true));
    }
  }
  const bdd::Bdd nextCube = ctx.nextCube(c.vars);
  for (const PartitionedRelation& track : c.partition.tracks) {
    const PreimageSchedule schedule(mgr, track, quantVars);
    const bdd::Bdd product = track.product(mgr);
    // A handful of targets, including constants.
    const bdd::Bdd targets[] = {
        mgr.bddTrue(), mgr.bddFalse(),
        mgr.permute(ctx.atomBdd("a"), ctx.swapPermutation()),
        mgr.permute(ctx.atomBdd("a") | !ctx.atomBdd("c"),
                    ctx.swapPermutation())};
    for (const bdd::Bdd& target : targets) {
      EXPECT_EQ(schedule.relProduct(target),
                mgr.andExists(product, target, nextCube));
    }
  }
}

TEST(Partition, ComposeKeepsConjunctsAndMonolithicAgrees) {
  Context ctx;
  abp::AbpComponents comps = abp::buildAbp(ctx);
  const SymbolicSystem whole =
      composeAll({comps.sender.sys, comps.msgChannel.sys,
                  comps.receiver.sys, comps.ackChannel.sys});
  // 4 component tracks + the stutter track; composition did not conjoin.
  EXPECT_EQ(whole.partition.tracks.size(), 5u);
  EXPECT_TRUE(whole.partition.hasStutterTrack());
  EXPECT_FALSE(whole.transMaterialized());
  // Every component track carries per-variable frame conjuncts.
  for (const PartitionedRelation& t : whole.partition.tracks) {
    if (!t.frameOnly()) {
      EXPECT_GT(t.size(), 1u);
    }
  }
  // The lazily materialized monolithic relation equals the eager formula.
  const bdd::Bdd lazily = whole.transBdd();
  EXPECT_TRUE(whole.transMaterialized());
  EXPECT_EQ(lazily, whole.partition.monolithic(ctx.mgr()));
}

/// Cross-validation: partitioned and monolithic checking must produce
/// *identical BDDs* (canonicity makes semantic equality node equality) on
/// every shipped model/spec pair.
void expectPartitionedMatchesMonolithic(
    Context& ctx, const SymbolicSystem& sys,
    const std::vector<ctl::Spec>& specs) {
  CheckerOptions mono;
  mono.usePartitionedTrans = false;
  Checker monolithic(sys, mono);
  ASSERT_FALSE(monolithic.usesPartition());

  for (const std::uint64_t threshold : {std::uint64_t{0},
                                        std::uint64_t{64},
                                        std::uint64_t{1024}}) {
    CheckerOptions part;
    part.clusterThreshold = threshold;
    Checker partitioned(sys, part);
    ASSERT_TRUE(partitioned.usesPartition());

    // preE agreement on a few non-trivial targets.
    const bdd::Bdd someTarget = sys.stateDomain();
    EXPECT_EQ(partitioned.preE(someTarget), monolithic.preE(someTarget));
    EXPECT_EQ(partitioned.preE(ctx.mgr().bddFalse()),
              monolithic.preE(ctx.mgr().bddFalse()));

    for (const ctl::Spec& spec : specs) {
      // sat() agreement (drives untilE/fairEG through both preE paths) for
      // the spec's own fairness set.
      EXPECT_EQ(partitioned.sat(spec.f, spec.r.fairness),
                monolithic.sat(spec.f, spec.r.fairness))
          << sys.name << " |= " << ctl::toString(spec.f) << " (threshold "
          << threshold << ")";
      EXPECT_EQ(partitioned.holds(spec), monolithic.holds(spec));
      EXPECT_EQ(partitioned.preE(partitioned.sat(spec.f, spec.r.fairness)),
                monolithic.preE(monolithic.sat(spec.f, spec.r.fairness)));
    }
  }
}

TEST(PartitionCrossValidation, Abp) {
  Context ctx(1 << 16);
  abp::AbpComponents comps = abp::buildAbp(ctx);
  const SymbolicSystem whole =
      composeAll({comps.sender.sys, comps.msgChannel.sys,
                  comps.receiver.sys, comps.ackChannel.sys});
  std::vector<ctl::Spec> specs;
  ctl::Spec safety;
  safety.name = "abp.safety";
  safety.r = ctl::Restriction{abp::abpInit(), {ctl::mkTrue()}};
  safety.f = ctl::AG(abp::abpTarget());
  specs.push_back(safety);
  // A fair spec exercises fairEG through both paths (the liveness setup of
  // verifyAbp: no perpetual loss, no perpetual starvation).
  ctl::Spec live;
  live.name = "abp.live";
  live.r = ctl::Restriction{
      abp::abpInit(),
      {ctl::mkOr(ctl::eq("delivered", "d0"), ctl::eq("msg", "m0")),
       ctl::mkOr(ctl::eq("delivered", "d0"), ctl::eq("ack", "a0"))}};
  live.f = ctl::AF(ctl::eq("delivered", "d0"));
  specs.push_back(live);
  expectPartitionedMatchesMonolithic(ctx, whole, specs);
}

TEST(PartitionCrossValidation, Afs1) {
  Context ctx(1 << 16);
  afs::Afs1Components comps = afs::buildAfs1(ctx);
  const SymbolicSystem whole = compose(comps.server.sys, comps.client.sys);
  std::vector<ctl::Spec> specs{afs::afs1SafetySpec()};
  // Include the shipped per-component specs (they mention only component
  // variables but are well-formed over the composition's context).
  for (const ctl::Spec& s : comps.server.specs) specs.push_back(s);
  for (const ctl::Spec& s : comps.client.specs) specs.push_back(s);
  expectPartitionedMatchesMonolithic(ctx, whole, specs);
}

TEST(PartitionCrossValidation, TokenRing3) {
  Context ctx(1 << 16);
  ring::RingComponents comps = ring::buildRing(ctx, 3);
  std::vector<SymbolicSystem> systems;
  for (const smv::ElaboratedModule& mod : comps.stations) {
    systems.push_back(mod.sys);
  }
  const SymbolicSystem whole = composeAll(systems);
  std::vector<ctl::Spec> specs;
  ctl::Spec mutex;
  mutex.name = "ring3.mutex";
  mutex.r = ctl::Restriction{ring::ringInit(3), {ctl::mkTrue()}};
  mutex.f = ctl::AG(ring::mutualExclusion(3));
  specs.push_back(mutex);
  ctl::Spec live;
  live.name = "ring3.live";
  live.r = ctl::Restriction{ring::ringInit(3), {ring::tokenExactlyAt(0, 3)}};
  live.f = ctl::EF(ctl::eq("st0", "cs"));
  specs.push_back(live);
  for (const smv::ElaboratedModule& mod : comps.stations) {
    for (const ctl::Spec& s : mod.specs) specs.push_back(s);
  }
  expectPartitionedMatchesMonolithic(ctx, whole, specs);
}

TEST(PartitionCrossValidation, RandomComposedSystems) {
  std::mt19937 rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    Context ctx;
    kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
    kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
    kripke::ExplicitSystem eb({"b", "c"});
    ebRaw.forEachTransition(
        [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });
    SymbolicSystem a = symbolicFromExplicit(ctx, ea, "A");
    SymbolicSystem b = symbolicFromExplicit(ctx, eb, "B");
    const SymbolicSystem c = compose(a, b);
    std::vector<ctl::Spec> specs;
    for (int i = 0; i < 4; ++i) {
      ctl::Spec s;
      s.name = "rand" + std::to_string(i);
      s.r = ctl::Restriction::trivial();
      if (i % 2 == 1) {
        s.r.fairness = {test::randomPropositional(rng, {"a", "b", "c"}, 2)};
      }
      s.f = test::randomFormula(rng, {"a", "b", "c"}, 3);
      specs.push_back(std::move(s));
    }
    expectPartitionedMatchesMonolithic(ctx, c, specs);
  }
}

TEST(PartitionCrossValidation, ReorderThenCheckAgreesOnAllShippedModels) {
  // For every model under models/: elaborate, sift the variable order
  // (Manager::reorderSift), then cross-validate partitioned preimages
  // against the monolithic relation at several cluster thresholds.  Sifting
  // permutes levels in place, so the PreimageSchedule built afterwards must
  // quantify by *level*, not by variable id — this sweep pins that down on
  // every shipped model, per module and on the composition.
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(CMC_MODELS_DIR)) {
    if (entry.path().extension() == ".smv") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_FALSE(paths.empty()) << "no models in " << CMC_MODELS_DIR;

  for (const fs::path& path : paths) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();

    Context ctx(1 << 16);
    const std::vector<smv::ElaboratedModule> modules =
        smv::elaborateProgram(ctx, buffer.str());
    ASSERT_FALSE(modules.empty());
    ctx.mgr().reorderSift();

    for (const smv::ElaboratedModule& mod : modules) {
      if (mod.specs.empty()) continue;
      expectPartitionedMatchesMonolithic(ctx, mod.sys, mod.specs);
    }
    if (modules.size() > 1) {
      std::vector<SymbolicSystem> systems;
      for (const smv::ElaboratedModule& mod : modules) {
        systems.push_back(mod.sys);
      }
      const SymbolicSystem whole = composeAll(systems);
      std::vector<ctl::Spec> specs;
      for (const smv::ElaboratedModule& mod : modules) {
        for (const ctl::Spec& s : mod.specs) specs.push_back(s);
      }
      expectPartitionedMatchesMonolithic(ctx, whole, specs);
    }
  }
}

TEST(PartitionCrossValidation, CheckResultAccounting) {
  Context ctx(1 << 16);
  ring::RingComponents comps = ring::buildRing(ctx, 3);
  std::vector<SymbolicSystem> systems;
  for (const smv::ElaboratedModule& mod : comps.stations) {
    systems.push_back(mod.sys);
  }
  const SymbolicSystem whole = composeAll(systems);
  ctl::Spec mutex;
  mutex.name = "ring3.mutex";
  mutex.r = ctl::Restriction{ring::ringInit(3), {ctl::mkTrue()}};
  mutex.f = ctl::AG(ring::mutualExclusion(3));

  Checker partitioned(whole);
  const CheckResult result = partitioned.check(mutex);
  EXPECT_TRUE(result.holds);
  EXPECT_TRUE(result.usedPartition);
  EXPECT_GT(result.peakLiveNodes, 0u);
  EXPECT_GT(result.cacheHitRate, 0.0);
  EXPECT_LE(result.cacheHitRate, 1.0);
  EXPECT_GT(result.transNodes, 0u);
  // The partitioned check never materialized the monolithic relation.
  EXPECT_FALSE(whole.transMaterialized());
}

// ---- The oracle test: symbolic vs explicit on random models ----------------

class CheckerAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CheckerAgreement, RandomSystemsAndFormulas) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919 + 13);
  kripke::ExplicitSystem es = test::randomSystem(rng, 3);
  kripke::ExplicitChecker explicitChecker(es);

  Context ctx;
  SymbolicSystem ss = symbolicFromExplicit(ctx, es, "random");
  Checker symbolicChecker(ss);

  for (int i = 0; i < 6; ++i) {
    const ctl::FormulaPtr f = test::randomFormula(rng, es.atoms(), 3);
    // Random fairness: none, or one constraint.
    std::vector<ctl::FormulaPtr> fairness;
    if (i % 2 == 1) {
      fairness.push_back(test::randomPropositional(rng, es.atoms(), 2));
    }
    const kripke::StateSet expected = explicitChecker.sat(f, fairness);
    const bdd::Bdd actual = symbolicChecker.sat(f, fairness);
    for (kripke::State s = 0; s < es.stateCount(); ++s) {
      EXPECT_EQ(test::symbolicSetHolds(ss, actual, es, s), expected[s])
          << "state " << es.stateToString(s) << " formula "
          << ctl::toString(f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAgreement, ::testing::Range(0, 30));

}  // namespace
}  // namespace cmc::symbolic
