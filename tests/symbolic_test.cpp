// Tests for the symbolic substrate: variable encodings (paper §3.4,
// Fig. 3), symbolic systems/composition, and — most importantly — agreement
// between the symbolic and explicit checkers on random models and formulas.
#include <gtest/gtest.h>

#include "ctl/parser.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"
#include "symbolic/prop.hpp"
#include "test_util.hpp"

namespace cmc::symbolic {
namespace {

using ctl::parse;

TEST(VarTable, BooleanEncoding) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  EXPECT_TRUE(ctx.variable(x).isBool);
  EXPECT_EQ(ctx.variable(x).bits.size(), 1u);
  EXPECT_EQ(ctx.bitCount(), 1u);
  EXPECT_EQ(ctx.varEq(x, "1"), ctx.mgr().bddVar(0));
  EXPECT_EQ(ctx.varEq(x, "0"), ctx.mgr().bddNVar(0));
  EXPECT_EQ(ctx.varEq(x, "TRUE"), ctx.mgr().bddVar(0));
  EXPECT_TRUE(ctx.domain(x).isTrue());
}

TEST(VarTable, EnumEncodingMatchesFigure3) {
  // Figure 3: x ∈ {0,1,2,3} maps to two booleans x0, x1.
  Context ctx;
  const VarId x = ctx.addEnumVar("x", {"0", "1", "2", "3"});
  EXPECT_EQ(ctx.variable(x).bits.size(), 2u);
  // Value 2 = binary 10: bit0 = 0, bit1 = 1.
  const bdd::Bdd enc = ctx.varEq(x, "2");
  EXPECT_EQ(enc, ctx.mgr().bddNVar(0) & ctx.mgr().bddVar(2));
  // Power-of-two domain needs no constraint.
  EXPECT_TRUE(ctx.domain(x).isTrue());
  // The propositional formula (x < 2) of §3.4 maps to !x1.
  const bdd::Bdd lessThan2 = ctx.varEq(x, "0") | ctx.varEq(x, "1");
  EXPECT_EQ(lessThan2, !ctx.mgr().bddVar(2));
}

TEST(VarTable, NonPowerOfTwoDomainConstraint) {
  Context ctx;
  const VarId b = ctx.addEnumVar("belief", {"none", "invalid", "valid"});
  EXPECT_EQ(ctx.variable(b).bits.size(), 2u);
  const bdd::Bdd dom = ctx.domain(b);
  EXPECT_FALSE(dom.isTrue());
  // Exactly three of the four encodings are valid.
  EXPECT_DOUBLE_EQ(ctx.mgr().satCount(dom, 4), 3.0 * 4);  // 2 free next bits
}

TEST(VarTable, ErrorsAndLookups) {
  Context ctx;
  ctx.addBoolVar("x");
  EXPECT_THROW(ctx.addBoolVar("x"), ModelError);
  EXPECT_THROW(ctx.varId("nope"), ModelError);
  EXPECT_THROW(ctx.addEnumVar("e", {}), ModelError);
  const VarId e = ctx.addEnumVar("e", {"a", "b"});
  EXPECT_THROW(ctx.varEq(e, "zzz"), ModelError);
  EXPECT_THROW(ctx.atomBdd("e"), ModelError);  // bare non-boolean atom
  EXPECT_NO_THROW(ctx.atomBdd("e=a"));
  EXPECT_NO_THROW(ctx.atomBdd("x"));
}

TEST(VarTable, FrameAndCubes) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  const VarId y = ctx.addEnumVar("y", {"a", "b", "c"});
  const bdd::Bdd frame = ctx.frameAll({x, y});
  // frame keeps each bit equal: evaluate a few assignments.
  // Bits: x:bit0 (vars 0,1), y:bits1,2 (vars 2,3,4,5).
  bdd::Manager& mgr = ctx.mgr();
  std::vector<bool> a(6, false);
  EXPECT_TRUE(mgr.eval(frame, a));
  a[0] = true;  // x=1 now, x'=0
  EXPECT_FALSE(mgr.eval(frame, a));
  a[1] = true;  // x'=1 too
  EXPECT_TRUE(mgr.eval(frame, a));
  const bdd::Bdd cc = ctx.currentCube({x, y});
  EXPECT_EQ(mgr.support(cc), (std::vector<std::uint32_t>{0, 2, 4}));
  const bdd::Bdd nc = ctx.nextCube({x, y});
  EXPECT_EQ(mgr.support(nc), (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(SymbolicSystem, MakeSystemValidatesSupport) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  const VarId y = ctx.addBoolVar("y");
  const bdd::Bdd mentionsY = ctx.varEq(y, "1");
  EXPECT_THROW(makeSystem(ctx, "bad", {x}, mentionsY), ModelError);
  EXPECT_NO_THROW(makeSystem(ctx, "ok", {x, y}, mentionsY));
}

TEST(SymbolicSystem, IdentityAndReflexivity) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  SymbolicSystem id = identitySystem(ctx, {x});
  EXPECT_TRUE(id.isReflexive());
  EXPECT_TRUE(id.isTotal());
  // A system that can only flip x is not reflexive until closed.
  const bdd::Bdd flip =
      ctx.varEq(x, "1").iff(!ctx.varEq(x, "1", /*next=*/true));
  SymbolicSystem flipper = makeSystem(ctx, "flip", {x}, flip);
  EXPECT_FALSE(flipper.isReflexive());
  EXPECT_TRUE(flipper.isTotal());
  addReflexive(flipper);
  EXPECT_TRUE(flipper.isReflexive());
}

TEST(SymbolicComposition, MatchesExplicitComposition) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
    kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
    kripke::ExplicitSystem eb({"b", "c"});
    ebRaw.forEachTransition(
        [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });

    Context ctx;
    SymbolicSystem sa = symbolicFromExplicit(ctx, ea, "A");
    SymbolicSystem sb = symbolicFromExplicit(ctx, eb, "B");
    const SymbolicSystem sc = compose(sa, sb);
    const kripke::ExplicitSystem expected = kripke::compose(ea, eb);
    const ExplicitImage image = explicitFromSymbolic(sc);
    EXPECT_TRUE(image.sys.sameBehavior(expected)) << "trial " << trial;
  }
}

TEST(SymbolicComposition, LemmasHoldSymbolically) {
  std::mt19937 rng(5);
  Context ctx;
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb({"b", "c"});
  ebRaw.forEachTransition(
      [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });
  SymbolicSystem a = symbolicFromExplicit(ctx, ea, "A");
  SymbolicSystem b = symbolicFromExplicit(ctx, eb, "B");

  // Lemma 1 (canonical BDDs make this pure equality).
  EXPECT_TRUE(sameBehavior(compose(a, b), compose(b, a)));
  // Lemma 3.
  EXPECT_TRUE(sameBehavior(compose(a, identitySystem(ctx, a.vars)), a));
  // Lemma 4.
  EXPECT_TRUE(sameBehavior(
      compose(a, b),
      compose(expand(a, b.vars), expand(b, a.vars))));
}

TEST(SymbolicChecker, SimpleTemporalProperties) {
  // Two-variable handshake: req flips on, then ack follows.
  Context ctx;
  const VarId req = ctx.addBoolVar("req");
  const VarId ack = ctx.addBoolVar("ack");
  bdd::Manager& mgr = ctx.mgr();
  const bdd::Bdd reqNow = ctx.varEq(req, "1");
  const bdd::Bdd reqNext = ctx.varEq(req, "1", true);
  const bdd::Bdd ackNow = ctx.varEq(ack, "1");
  const bdd::Bdd ackNext = ctx.varEq(ack, "1", true);

  // Transitions: idle->req, req->req+ack, req+ack->idle, plus stutter.
  const bdd::Bdd t1 = (!reqNow) & (!ackNow) & reqNext & (!ackNext);
  const bdd::Bdd t2 = reqNow & (!ackNow) & reqNext & ackNext;
  const bdd::Bdd t3 = reqNow & ackNow & (!reqNext) & (!ackNext);
  SymbolicSystem sys =
      makeSystem(ctx, "handshake", {req, ack}, t1 | t2 | t3);
  addReflexive(sys);
  Checker checker(sys);

  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            parse("req & ack -> EX (!req & !ack)")));
  // The paper's ⊨ quantifies over *all* states, so the unreachable state
  // (!req & ack) falsifies this even though every run avoids it.
  EXPECT_FALSE(checker.holds(ctl::Restriction::trivial(),
                             parse("ack -> req")));
  EXPECT_FALSE(checker.holds(ctl::Restriction::trivial(),
                             parse("req -> AX ack")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(), parse("EF ack")));
  // Fairness forces progress out of stuttering.
  ctl::Restriction r;
  r.init = parse("!req & !ack");
  r.fairness = {parse("ack | !req & !ack")};
  // Under that fairness alone the run may cycle; EF ack still holds.
  EXPECT_TRUE(checker.holds(r, parse("EF ack")));
  (void)mgr;
}

TEST(SymbolicChecker, WitnessForViolation) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  SymbolicSystem sys = identitySystem(ctx, {x});
  Checker checker(sys);
  const auto witness =
      checker.violationWitness(ctl::Restriction::trivial(), parse("x"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(witness->find("x=0"), std::string::npos);
  EXPECT_FALSE(checker
                   .violationWitness(ctl::Restriction::trivial(),
                                     parse("x | !x"))
                   .has_value());
}

TEST(SymbolicChecker, CheckResultCounters) {
  Context ctx;
  const VarId x = ctx.addBoolVar("x");
  SymbolicSystem sys = identitySystem(ctx, {x});
  Checker checker(sys);
  const CheckResult result = checker.check(
      ctl::Spec{"t", ctl::Restriction::trivial(), parse("x -> AX x")});
  EXPECT_TRUE(result.holds);
  EXPECT_GT(result.bddNodesAllocated, 0u);
  EXPECT_GT(result.transNodes, 0u);
  EXPECT_EQ(result.specName, "t");
}

TEST(Prop, ValidityOverDomains) {
  Context ctx;
  ctx.addEnumVar("belief", {"none", "invalid", "valid"});
  const VarId b = ctx.varId("belief");
  // belief takes one of its three values — valid over the domain.
  EXPECT_TRUE(propositionallyValid(
      ctx, {b},
      parse("belief=none | belief=invalid | belief=valid")));
  EXPECT_FALSE(propositionallyValid(ctx, {b}, parse("belief=none")));
  EXPECT_THROW(propositionalBdd(ctx, parse("AX belief=none")), ModelError);
}

// ---- The oracle test: symbolic vs explicit on random models ----------------

class CheckerAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CheckerAgreement, RandomSystemsAndFormulas) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919 + 13);
  kripke::ExplicitSystem es = test::randomSystem(rng, 3);
  kripke::ExplicitChecker explicitChecker(es);

  Context ctx;
  SymbolicSystem ss = symbolicFromExplicit(ctx, es, "random");
  Checker symbolicChecker(ss);

  for (int i = 0; i < 6; ++i) {
    const ctl::FormulaPtr f = test::randomFormula(rng, es.atoms(), 3);
    // Random fairness: none, or one constraint.
    std::vector<ctl::FormulaPtr> fairness;
    if (i % 2 == 1) {
      fairness.push_back(test::randomPropositional(rng, es.atoms(), 2));
    }
    const kripke::StateSet expected = explicitChecker.sat(f, fairness);
    const bdd::Bdd actual = symbolicChecker.sat(f, fairness);
    for (kripke::State s = 0; s < es.stateCount(); ++s) {
      EXPECT_EQ(test::symbolicSetHolds(ss, actual, es, s), expected[s])
          << "state " << es.stateToString(s) << " formula "
          << ctl::toString(f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerAgreement, ::testing::Range(0, 30));

}  // namespace
}  // namespace cmc::symbolic
