// Tests for the AFS case studies: the figure-faithful component checks
// (Figures 5-10 and 12-17), the state graphs of Figures 4 and 11, the full
// mechanized deductions of §4.2.3 / §4.3.4, and mutation tests showing the
// machinery refuses broken models.
#include <gtest/gtest.h>

#include "afs/afs1.hpp"
#include "afs/afs2.hpp"
#include "afs/smv_sources.hpp"
#include "afs/verify_afs1.hpp"
#include "afs/verify_afs2.hpp"
#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"

namespace cmc::afs {
namespace {

// ---- Figure-faithful component checks (the paper's Figures 7 and 10) --------

TEST(Afs1Figures, ServerSpecsAllTrue) {
  symbolic::Context ctx;
  const smv::ElaboratedModule server =
      smv::elaborateText(ctx, afs1ServerSmv());
  EXPECT_EQ(server.specs.size(), 5u);  // Srv1-Srv5
  symbolic::Checker checker(server.sys);
  for (const ctl::Spec& spec : server.specs) {
    EXPECT_TRUE(checker.holds(spec)) << spec.name << ": "
                                     << ctl::toString(spec.f);
  }
}

TEST(Afs1Figures, ClientSpecsAllTrue) {
  symbolic::Context ctx;
  const smv::ElaboratedModule client =
      smv::elaborateText(ctx, afs1ClientSmv());
  EXPECT_EQ(client.specs.size(), 6u);  // Cli1, Cli2 (x2), Cli3, Cli4, Cli5
  symbolic::Checker checker(client.sys);
  for (const ctl::Spec& spec : client.specs) {
    EXPECT_TRUE(checker.holds(spec)) << spec.name << ": "
                                     << ctl::toString(spec.f);
  }
}

// ---- Figure 4: the AFS-1 state transition graphs ----------------------------

TEST(Afs1Figures, ClientGraphMatchesFigure4) {
  symbolic::Context ctx;
  const smv::ElaboratedModule client =
      smv::elaborateText(ctx, afs1ClientSmv());
  const symbolic::ExplicitImage image =
      symbolic::explicitFromSymbolic(client.sys);
  kripke::ExplicitChecker checker(image.sys, image.semantics);
  auto holds = [&](const char* text) {
    return checker.holds(ctl::Restriction::trivial(), ctl::parse(text));
  };
  // The protocol transitions of Figure 4 (client side), as AX facts on the
  // deterministic client model.
  EXPECT_TRUE(holds("belief=nofile & r=null -> AX (belief=nofile & r=fetch)"));
  EXPECT_TRUE(holds("belief=nofile & r=val -> AX (belief=valid & r=val)"));
  EXPECT_TRUE(
      holds("belief=suspect & r=null -> AX (belief=suspect & r=validate)"));
  EXPECT_TRUE(
      holds("belief=suspect & r=inval -> AX (belief=nofile & r=null)"));
  EXPECT_TRUE(holds("belief=suspect & r=val -> AX (belief=valid & r=val)"));
  // And the states the client leaves untouched (the server moves there).
  EXPECT_TRUE(holds("belief=nofile & r=fetch -> AX (belief=nofile & r=fetch)"));
  EXPECT_TRUE(
      holds("belief=suspect & r=validate -> AX (belief=suspect & r=validate)"));
}

TEST(Afs1Figures, ServerGraphMatchesFigure4) {
  symbolic::Context ctx;
  const smv::ElaboratedModule server =
      smv::elaborateText(ctx, afs1ServerSmv());
  const symbolic::ExplicitImage image =
      symbolic::explicitFromSymbolic(server.sys);
  kripke::ExplicitChecker checker(image.sys, image.semantics);
  auto holds = [&](const char* text) {
    return checker.holds(ctl::Restriction::trivial(), ctl::parse(text));
  };
  EXPECT_TRUE(holds("belief=none & r=fetch -> AX (belief=valid & r=val)"));
  EXPECT_TRUE(holds(
      "belief=none & r=validate & validFile=1 -> AX (belief=valid & r=val)"));
  EXPECT_TRUE(holds("belief=none & r=validate & validFile=0 -> "
                    "AX (belief=invalid & r=inval)"));
  EXPECT_TRUE(holds("belief=invalid & r=fetch -> AX (belief=valid & r=val)"));
  EXPECT_TRUE(holds("belief=valid & r=fetch -> AX (belief=valid & r=val)"));
  // The server never touches a state whose request is a response already.
  EXPECT_TRUE(holds("r=val -> AX r=val"));
  EXPECT_TRUE(holds("r=inval -> AX r=inval"));
}

// ---- AFS-2 component checks (Figures 15 and 17) ------------------------------

TEST(Afs2Figures, ServerSpecsAllTrue) {
  symbolic::Context ctx;
  const smv::ElaboratedModule server =
      smv::elaborateText(ctx, afs2ServerSmv(2));
  EXPECT_EQ(server.specs.size(), 4u);  // Srv1, Srv2 per client
  symbolic::Checker checker(server.sys);
  for (const ctl::Spec& spec : server.specs) {
    EXPECT_TRUE(checker.holds(spec)) << spec.name << ": "
                                     << ctl::toString(spec.f);
  }
}

TEST(Afs2Figures, ClientSpecsAllTrue) {
  symbolic::Context ctx;
  const smv::ElaboratedModule client =
      smv::elaborateText(ctx, afs2ClientSmv(1));
  EXPECT_EQ(client.specs.size(), 1u);  // Cli1
  symbolic::Checker checker(client.sys);
  EXPECT_TRUE(checker.holds(client.specs[0]));
}

TEST(Afs2Figures, BddSizeOrderingMatchesPaper) {
  // The paper reports AFS-2 transition relations much larger than AFS-1's
  // (1145+6 vs 43+7 for the server).  Absolute numbers differ; the ordering
  // must not.
  symbolic::Context ctx1;
  const smv::ElaboratedModule afs1Server =
      smv::elaborateText(ctx1, afs1ServerSmv());
  symbolic::Context ctx2;
  const smv::ElaboratedModule afs2Server =
      smv::elaborateText(ctx2, afs2ServerSmv(2));
  EXPECT_GT(afs2Server.sys.transNodeCount(),
            afs1Server.sys.transNodeCount());
}

// ---- Full deductions ---------------------------------------------------------

TEST(Afs1Verification, FullDeductionSucceeds) {
  const Afs1Report report = verifyAfs1(/*crossCheck=*/true);
  EXPECT_TRUE(report.safety);
  EXPECT_TRUE(report.liveness);
  EXPECT_TRUE(report.safetyCrossCheck);
  EXPECT_TRUE(report.livenessCrossCheck);
  EXPECT_TRUE(report.proof.valid());
  EXPECT_GE(report.componentChecks, 16u);  // 7 rules × 2-3 checks + safety
}

TEST(Afs2Verification, SafetyScalesLinearly) {
  std::size_t previousChecks = 0;
  for (int n = 1; n <= 3; ++n) {
    const Afs2Report report = verifyAfs2(n, /*crossCheck=*/n == 1);
    EXPECT_TRUE(report.safety) << "n=" << n;
    EXPECT_TRUE(report.proof.valid()) << "n=" << n;
    if (n == 1) {
      EXPECT_TRUE(report.safetyCrossCheck);
    }
    // Obligations grow by exactly one per added client (n components + 1
    // server, each checked once for the universal step property).
    if (previousChecks != 0) {
      EXPECT_EQ(report.componentChecks, previousChecks + 1) << "n=" << n;
    }
    previousChecks = report.componentChecks;
  }
}

// ---- Mutation tests: broken models must be refused ---------------------------

TEST(Afs1Mutation, ClientThatTrustsBlindlyBreaksTheInvariantStep) {
  // A client that switches to `valid` on inval responses violates the
  // invariant-step obligation on its expansion, so the compositional
  // safety proof must fail.
  symbolic::Context ctx;
  const smv::ElaboratedModule server =
      smv::elaborateText(ctx, afs1ServerQualifiedSmv());
  const std::string brokenClient = R"(
MODULE brokenclient
VAR
  r : {null, fetch, validate, val, inval};
  Client.belief : {valid, suspect, nofile};
ASSIGN
  next(Client.belief) :=
    case
      (Client.belief = nofile) & (r = val) : valid;
      (Client.belief = suspect) & (r = inval) : valid;  -- BUG
      1 : Client.belief;
    esac;
  next(r) :=
    case
      (Client.belief = nofile) & (r = null) : fetch;
      (Client.belief = suspect) & (r = null) : validate;
      1 : r;
    esac;
)";
  smv::ElaboratedModule client = smv::elaborateText(ctx, brokenClient);
  symbolic::SymbolicSystem serverSys = server.sys;
  symbolic::SymbolicSystem clientSys = client.sys;
  symbolic::addReflexive(serverSys);
  symbolic::addReflexive(clientSys);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(serverSys);
  verifier.addComponent(clientSys);
  comp::ProofTree proof;
  EXPECT_FALSE(verifier.verifyInvariance(afs1Init(), afs1Invariant(),
                                         afs1Target(), proof, "Afs1"));
  EXPECT_FALSE(proof.valid());
}

TEST(Afs1Mutation, ServerThatSkipsFetchBreaksTheLivenessPremise) {
  // Remove the server's fetch response: the Rule 4 premise
  // (nofile ∧ fetch) ⇒ EX (nofile ∧ val) fails on the server expansion.
  symbolic::Context ctx;
  const std::string lazyServer = R"(
MODULE lazyserver
VAR
  Server.belief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(Server.belief) := Server.belief;
  next(r) := r;  -- never answers
)";
  const smv::ElaboratedModule server = smv::elaborateText(ctx, lazyServer);
  const smv::ElaboratedModule client =
      smv::elaborateText(ctx, afs1ClientQualifiedSmv());
  symbolic::SymbolicSystem serverSys = server.sys;
  symbolic::addReflexive(serverSys);
  symbolic::SymbolicSystem serverExp =
      symbolic::expand(serverSys, client.sys.vars);
  symbolic::Checker checker(serverExp);
  comp::ProofTree proof;
  const auto g = comp::deriveRule4(
      checker,
      ctl::parse("Client.belief=nofile & r=fetch"),
      ctl::parse("Client.belief=nofile & r=val"), proof);
  EXPECT_FALSE(g.has_value());
  EXPECT_FALSE(proof.valid());
}

TEST(Afs2Mutation, ForgettingTheTimeStampBreaksSafety) {
  // A server that invalidates on update but forgets to reset time_i lets a
  // client believe a stale copy with time_i=1 — the expansion check must
  // catch it.  (This is exactly the transmission-delay subtlety §4.3
  // introduces time_i for.)
  symbolic::Context ctx;
  std::string broken = afs2ServerSmv(2);
  // Remove the update branch from next(time1) only.
  // The ": 0" form of the update guard occurs only in the time1 block
  // (belief1 uses ": nocall", response1 uses ": inval").
  const std::string needle =
      "(Server.belief1 = valid) & ((request2 = update)) : 0;";
  const std::size_t pos = broken.find(needle);
  ASSERT_NE(pos, std::string::npos);
  ASSERT_EQ(broken.find(needle, pos + 1), std::string::npos);
  broken.erase(pos, needle.size());

  const smv::ElaboratedModule server = smv::elaborateText(ctx, broken);
  smv::ElaboratedModule client1 = smv::elaborateText(ctx, afs2ClientSmv(1));
  smv::ElaboratedModule client2 = smv::elaborateText(ctx, afs2ClientSmv(2));
  symbolic::SymbolicSystem serverSys = server.sys;
  symbolic::addReflexive(serverSys);
  symbolic::SymbolicSystem c1 = client1.sys;
  symbolic::SymbolicSystem c2 = client2.sys;
  symbolic::addReflexive(c1);
  symbolic::addReflexive(c2);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(serverSys);
  verifier.addComponent(c1);
  verifier.addComponent(c2);
  comp::ProofTree proof;
  EXPECT_FALSE(verifier.verifyInvariance(afs2Init(2), afs2Invariant(2),
                                         afs2Target(2), proof, "Afs1'"));
}

// ---- Formula constructors ----------------------------------------------------

TEST(AfsFormulas, ShapesAndNames) {
  EXPECT_TRUE(ctl::isPropositional(afs1Init()));
  EXPECT_TRUE(ctl::isPropositional(afs1Invariant()));
  const ctl::Spec safety = afs1SafetySpec();
  EXPECT_EQ(safety.f->op(), ctl::Op::AG);
  EXPECT_EQ(safety.name, "Afs1");
  EXPECT_TRUE(ctl::isPropositional(afs2Init(3)));
  EXPECT_TRUE(ctl::isPropositional(afs2Invariant(3)));
  // Per-client formulas mention the right indices.
  const auto atoms = ctl::collectVariables(afs2InvariantFor(2));
  EXPECT_TRUE(atoms.count("Client2.belief") == 1);
  EXPECT_TRUE(atoms.count("Server.belief2") == 1);
  EXPECT_TRUE(atoms.count("time2") == 1);
}

TEST(AfsBuilders, RejectBadArguments) {
  symbolic::Context ctx;
  EXPECT_THROW(buildAfs2(ctx, 0), ModelError);
}

}  // namespace
}  // namespace cmc::afs

namespace cmc::afs {
namespace {

TEST(Afs1Oracle, ComposedSystemAgreesWithExplicitChecker) {
  // The composed AFS-1 system is small enough (10 bits = 1024 encoded
  // states) for the explicit oracle: every paper-relevant verdict must
  // agree between the two checkers on the full composition.
  symbolic::Context ctx;
  Afs1Components comps = buildAfs1(ctx, /*reflexive=*/true);
  const symbolic::SymbolicSystem whole =
      symbolic::compose(comps.server.sys, comps.client.sys);
  symbolic::Checker symbolicChecker(whole);
  const symbolic::ExplicitImage image = symbolic::explicitFromSymbolic(whole);
  kripke::ExplicitChecker explicitChecker(image.sys, image.semantics);

  ctl::Restriction r;
  r.init = afs1Init();
  r.fairness = {ctl::mkTrue()};
  const std::vector<ctl::FormulaPtr> formulas = {
      ctl::AG(afs1Target()),
      ctl::AG(afs1Invariant()),
      ctl::parse("EF Client.belief=valid"),
      ctl::parse("AF Client.belief=valid"),  // false without fairness
      ctl::parse("r=fetch -> AX (r=fetch | r=val)"),
      ctl::parse("E[r=null U r=fetch]"),
      ctl::parse("AG (r=val -> Server.belief=valid)"),
  };
  for (const ctl::FormulaPtr& f : formulas) {
    EXPECT_EQ(symbolicChecker.holds(r, f), explicitChecker.holds(r, f))
        << ctl::toString(f);
  }
  // And under the fairness set that makes the liveness true.
  ctl::Restriction fair = r;
  fair.fairness = {
      ctl::parse("!(Client.belief=nofile & r=null) | r=fetch"),
      ctl::parse("!(Client.belief=nofile & r=fetch) | r=val"),
      ctl::parse("!(Client.belief=nofile & r=val) | Client.belief=valid"),
      ctl::parse("!(Client.belief=suspect & r=null) | r=validate"),
      ctl::parse("!(Client.belief=suspect & Server.belief=none & r=validate)"
                 " | r=val | r=inval"),
      ctl::parse("!(Client.belief=suspect & r=val) | Client.belief=valid"),
      ctl::parse("!(Client.belief=suspect & r=inval) | r=null"),
  };
  const ctl::FormulaPtr liveness = ctl::parse("AF Client.belief=valid");
  EXPECT_EQ(symbolicChecker.holds(fair, liveness),
            explicitChecker.holds(fair, liveness));
}

}  // namespace
}  // namespace cmc::afs
