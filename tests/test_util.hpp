// Shared helpers for the test suite: seeded random systems and formulas,
// and conversion glue for cross-validating the two checkers.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "ctl/formula.hpp"
#include "kripke/composition.hpp"
#include "kripke/explicit_checker.hpp"
#include "kripke/explicit_system.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/encode.hpp"

namespace cmc::test {

/// Atom names a, b, c, ... (up to 26).
inline std::vector<std::string> atomNames(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::string(1, static_cast<char>('a' + i)));
  }
  return out;
}

/// Random explicit system over `atoms` atoms: every state gets one to three
/// random successors; reflexive closure optional (the paper's standing
/// assumption — most tests want it on).
inline kripke::ExplicitSystem randomSystem(std::mt19937& rng,
                                           std::size_t atoms,
                                           bool reflexive = true) {
  kripke::ExplicitSystem sys(atomNames(atoms));
  const std::uint64_t n = sys.stateCount();
  std::uniform_int_distribution<std::uint64_t> state(0, n - 1);
  std::uniform_int_distribution<int> fanout(1, 3);
  for (kripke::State s = 0; s < n; ++s) {
    const int k = fanout(rng);
    for (int i = 0; i < k; ++i) {
      sys.addTransition(s, static_cast<kripke::State>(state(rng)));
    }
  }
  if (reflexive) sys.makeReflexive();
  return sys;
}

/// Random CTL formula over the given atoms with bounded depth.
inline ctl::FormulaPtr randomFormula(std::mt19937& rng,
                                     const std::vector<std::string>& atoms,
                                     int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 2 : 13);
  std::uniform_int_distribution<std::size_t> atomPick(0, atoms.size() - 1);
  switch (pick(rng)) {
    case 0:
      return ctl::atom(atoms[atomPick(rng)]);
    case 1:
      return ctl::mkTrue();
    case 2:
      return ctl::mkNot(randomFormula(rng, atoms, depth - 1));
    case 3:
      return ctl::mkAnd(randomFormula(rng, atoms, depth - 1),
                        randomFormula(rng, atoms, depth - 1));
    case 4:
      return ctl::mkOr(randomFormula(rng, atoms, depth - 1),
                       randomFormula(rng, atoms, depth - 1));
    case 5:
      return ctl::mkImplies(randomFormula(rng, atoms, depth - 1),
                            randomFormula(rng, atoms, depth - 1));
    case 6:
      return ctl::EX(randomFormula(rng, atoms, depth - 1));
    case 7:
      return ctl::AX(randomFormula(rng, atoms, depth - 1));
    case 8:
      return ctl::EF(randomFormula(rng, atoms, depth - 1));
    case 9:
      return ctl::AF(randomFormula(rng, atoms, depth - 1));
    case 10:
      return ctl::EG(randomFormula(rng, atoms, depth - 1));
    case 11:
      return ctl::AG(randomFormula(rng, atoms, depth - 1));
    case 12:
      return ctl::EU(randomFormula(rng, atoms, depth - 1),
                     randomFormula(rng, atoms, depth - 1));
    default:
      return ctl::AU(randomFormula(rng, atoms, depth - 1),
                     randomFormula(rng, atoms, depth - 1));
  }
}

/// Random *propositional* formula over the atoms.
inline ctl::FormulaPtr randomPropositional(std::mt19937& rng,
                                           const std::vector<std::string>& atoms,
                                           int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 5);
  std::uniform_int_distribution<std::size_t> atomPick(0, atoms.size() - 1);
  switch (pick(rng)) {
    case 0:
    case 1:
      return ctl::atom(atoms[atomPick(rng)]);
    case 2:
      return ctl::mkNot(randomPropositional(rng, atoms, depth - 1));
    case 3:
      return ctl::mkAnd(randomPropositional(rng, atoms, depth - 1),
                        randomPropositional(rng, atoms, depth - 1));
    case 4:
      return ctl::mkOr(randomPropositional(rng, atoms, depth - 1),
                       randomPropositional(rng, atoms, depth - 1));
    default:
      return ctl::mkImplies(randomPropositional(rng, atoms, depth - 1),
                            randomPropositional(rng, atoms, depth - 1));
  }
}

/// Evaluate a symbolic state set (BDD over current bits of `sys`'s vars)
/// on the explicit state `s` of `es`, assuming the standard bit mapping
/// produced by symbolicFromExplicit (atom i of es == sys var i, one bit).
inline bool symbolicSetHolds(const symbolic::SymbolicSystem& sys,
                             const bdd::Bdd& set,
                             const kripke::ExplicitSystem& es,
                             kripke::State s) {
  const symbolic::Context& ctx = *sys.ctx;
  std::vector<bool> assignment(2 * ctx.bitCount(), false);
  for (std::size_t i = 0; i < es.atomCount(); ++i) {
    const symbolic::Variable& v = ctx.variable(sys.vars[i]);
    assignment[symbolic::Context::bddVarOf(v.bits[0], false)] =
        ((s >> i) & 1u) != 0;
  }
  return ctx.mgr().eval(set, assignment);
}

}  // namespace cmc::test
