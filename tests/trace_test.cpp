// Tests for trace/witness/counterexample generation and the simulator.
#include <gtest/gtest.h>

#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/prop.hpp"
#include "symbolic/trace.hpp"

namespace cmc::symbolic {
namespace {

/// Three-phase protocol: a -> b -> c -> c (self loop), no stutter elsewhere.
const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
)";

struct ChainFixture {
  Context ctx;
  smv::ElaboratedModule mod;
  TraceBuilder builder;

  ChainFixture()
      : mod(smv::elaborateText(ctx, kChainSmv)), builder(mod.sys) {}

  bdd::Bdd at(const char* value) {
    return ctx.varEq(ctx.varId("s"), value);
  }
};

TEST(TraceBuilder, PickStateDecodesValues) {
  ChainFixture fx;
  const TraceState state = fx.builder.pickState(fx.at("b"));
  EXPECT_EQ(state.values.at("s"), "b");
  EXPECT_THROW(fx.builder.pickState(fx.ctx.mgr().bddFalse()), ModelError);
}

TEST(TraceBuilder, StateBddRoundTrips) {
  ChainFixture fx;
  TraceState state;
  state.values["s"] = "c";
  EXPECT_EQ(fx.builder.stateBdd(state), fx.at("c"));
  TraceState missing;
  EXPECT_THROW(fx.builder.stateBdd(missing), ModelError);
}

TEST(TraceBuilder, ImageAndPreimage) {
  ChainFixture fx;
  EXPECT_EQ(fx.builder.image(fx.at("a")), fx.at("b"));
  EXPECT_EQ(fx.builder.image(fx.at("c")), fx.at("c"));
  EXPECT_EQ(fx.builder.preimage(fx.at("b")), fx.at("a"));
  EXPECT_EQ(fx.builder.preimage(fx.at("c")), fx.at("b") | fx.at("c"));
}

TEST(TraceBuilder, Reachable) {
  ChainFixture fx;
  EXPECT_EQ(fx.builder.reachable(fx.at("a")),
            fx.at("a") | fx.at("b") | fx.at("c"));
  EXPECT_EQ(fx.builder.reachable(fx.at("c")), fx.at("c"));
}

TEST(TraceBuilder, ShortestPath) {
  ChainFixture fx;
  const auto trace =
      fx.builder.path(fx.at("a"), fx.at("c"), fx.ctx.mgr().bddTrue());
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->states.size(), 3u);
  EXPECT_EQ(trace->states[0].values.at("s"), "a");
  EXPECT_EQ(trace->states[1].values.at("s"), "b");
  EXPECT_EQ(trace->states[2].values.at("s"), "c");
  // Already at the target: single-state trace.
  const auto atTarget =
      fx.builder.path(fx.at("c"), fx.at("c"), fx.ctx.mgr().bddTrue());
  ASSERT_TRUE(atTarget.has_value());
  EXPECT_EQ(atTarget->states.size(), 1u);
  // Unreachable target.
  EXPECT_FALSE(fx.builder
                   .path(fx.at("c"), fx.at("a"), fx.ctx.mgr().bddTrue())
                   .has_value());
}

TEST(TraceBuilder, PathRespectsWithinConstraint) {
  ChainFixture fx;
  // Disallow passing through b: c becomes unreachable from a.
  EXPECT_FALSE(fx.builder
                   .path(fx.at("a"), fx.at("c"), !fx.at("b"))
                   .has_value());
}

TEST(TraceBuilder, AgCounterexampleIsShortest) {
  ChainFixture fx;
  const auto trace = fx.builder.agCounterexample(fx.at("a"), !fx.at("c"));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->states.size(), 3u);  // a, b, then the violation c
  EXPECT_EQ(trace->states.back().values.at("s"), "c");
  // AG !b is violated one step earlier.
  const auto shorter = fx.builder.agCounterexample(fx.at("a"), !fx.at("b"));
  ASSERT_TRUE(shorter.has_value());
  EXPECT_EQ(shorter->states.size(), 2u);
  // AG (a|b|c) holds: no counterexample.
  EXPECT_FALSE(fx.builder
                   .agCounterexample(fx.at("a"), fx.ctx.mgr().bddTrue())
                   .has_value());
}

TEST(TraceBuilder, EuWitnessStaysInRegion) {
  ChainFixture fx;
  const auto witness =
      fx.builder.euWitness(fx.at("a"), fx.at("a") | fx.at("b"), fx.at("c"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->states.size(), 3u);
  for (std::size_t i = 0; i + 1 < witness->states.size(); ++i) {
    EXPECT_NE(witness->states[i].values.at("s"), "c");
  }
}

TEST(TraceBuilder, EgWitnessFindsLasso) {
  ChainFixture fx;
  // EG true from a: the lasso ends in the c self-loop.
  const auto lasso =
      fx.builder.egWitness(fx.at("a"), fx.ctx.mgr().bddTrue());
  ASSERT_TRUE(lasso.has_value());
  ASSERT_TRUE(lasso->loopIndex.has_value());
  EXPECT_EQ(lasso->states.back().values.at("s"), "c");
  // EG (a|b) fails: every infinite path is absorbed by c.
  EXPECT_FALSE(
      fx.builder.egWitness(fx.at("a"), fx.at("a") | fx.at("b")).has_value());
}

/// Pure cycle a -> b -> c -> a: every state lies on the single fair cycle.
const char* kCycleSmv = R"(
MODULE cycle
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : a; esac;
)";

TEST(TraceBuilder, FairLassoVisitsEveryFairSetAndCloses) {
  Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kCycleSmv);
  TraceBuilder builder(mod.sys);
  auto at = [&](const char* v) { return ctx.varEq(ctx.varId("s"), v); };
  const bdd::Bdd all = at("a") | at("b") | at("c");

  const auto lasso = builder.fairLasso(at("a"), all, {at("b"), at("c")});
  ASSERT_TRUE(lasso.has_value());
  ASSERT_TRUE(lasso->loopIndex.has_value());
  const std::size_t loop = *lasso->loopIndex;
  ASSERT_LT(loop, lasso->states.size());
  // The loop itself visits both fair sets...
  bool sawB = false;
  bool sawC = false;
  for (std::size_t i = loop; i < lasso->states.size(); ++i) {
    sawB = sawB || lasso->states[i].values.at("s") == "b";
    sawC = sawC || lasso->states[i].values.at("s") == "c";
  }
  EXPECT_TRUE(sawB);
  EXPECT_TRUE(sawC);
  // ...and closes: the last state has an edge back to states[loopIndex].
  const bdd::Bdd last = builder.stateBdd(lasso->states.back());
  const bdd::Bdd head = builder.stateBdd(lasso->states[loop]);
  EXPECT_NE(builder.image(last) & head, ctx.mgr().bddFalse());
  // Rendering marks where the repeating suffix begins.
  EXPECT_NE(lasso->toString().find("loop starts here"), std::string::npos);
}

TEST(CheckerTraces, FairCounterexampleIsAFairLasso) {
  // Under FAIRNESS s=c, AG !(s=b) fails from s=a; the counterexample must
  // be a lasso whose loop visits the fair set, not just a finite prefix.
  Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kCycleSmv);
  Checker checker(mod.sys);
  ctl::Restriction r;
  r.init = ctl::parse("s=a");
  r.fairness = {ctl::parse("s=c")};
  const ctl::FormulaPtr spec = ctl::parse("AG !(s=b)");
  EXPECT_FALSE(checker.holds(r, spec));

  const auto trace = checker.counterexampleTrace(r, spec);
  ASSERT_TRUE(trace.has_value());
  EXPECT_NE(trace->find("loop starts here"), std::string::npos);
  EXPECT_NE(trace->find("s = b"), std::string::npos);  // the violation
  EXPECT_NE(trace->find("s = c"), std::string::npos);  // the fair state
}

TEST(TraceBuilder, SimulateFollowsTransitions) {
  ChainFixture fx;
  const Trace run = fx.builder.simulate(fx.at("a"), 5, 7);
  ASSERT_GE(run.states.size(), 3u);
  EXPECT_EQ(run.states[0].values.at("s"), "a");
  EXPECT_EQ(run.states[1].values.at("s"), "b");
  EXPECT_EQ(run.states[2].values.at("s"), "c");
  for (std::size_t i = 3; i < run.states.size(); ++i) {
    EXPECT_EQ(run.states[i].values.at("s"), "c");
  }
}

TEST(TraceBuilder, TraceRendering) {
  Trace trace;
  TraceState s1;
  s1.values["x"] = "1";
  TraceState s2;
  s2.values["x"] = "0";
  trace.states = {s1, s2};
  trace.loopIndex = 1;
  const std::string text = trace.toString();
  EXPECT_NE(text.find("state 0: x = 1"), std::string::npos);
  EXPECT_NE(text.find("loop starts here"), std::string::npos);
}

TEST(CheckerTraces, CounterexampleForFailingAg) {
  Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
  Checker checker(mod.sys);
  ctl::Restriction r;
  r.init = ctl::parse("s=a");
  r.fairness = {ctl::mkTrue()};
  const auto trace = checker.counterexampleTrace(r, ctl::parse("AG !(s=c)"));
  ASSERT_TRUE(trace.has_value());
  EXPECT_NE(trace->find("s = c"), std::string::npos);
  // Holding spec: no counterexample; non-AG shape: nullopt.
  EXPECT_FALSE(
      checker.counterexampleTrace(r, ctl::parse("AG (s=a | s=b | s=c)"))
          .has_value());
  EXPECT_FALSE(
      checker.counterexampleTrace(r, ctl::parse("AF s=c")).has_value());
}

TEST(CheckerTraces, ReachableSemanticsDiffersFromPaperSemantics) {
  // From s=b, the state a is unreachable; "AG !(s=a)" holds under
  // reachable semantics but the paper's |= does not restrict to reachable
  // states when init is TRUE.
  Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
  Checker checker(mod.sys);
  ctl::Restriction r;
  r.init = ctl::parse("s=b");
  r.fairness = {ctl::mkTrue()};
  EXPECT_TRUE(checker.holdsReachable(r, ctl::parse("AG !(s=a)")));
  EXPECT_TRUE(checker.holds(r, ctl::parse("AG !(s=a)")));  // b -> c only
  // Distinguishing case: init TRUE quantifies over all states under the
  // paper's |=, but only over {b, c} under reachable semantics from s=b.
  ctl::Restriction all;
  all.init = ctl::parse("TRUE");
  all.fairness = {ctl::mkTrue()};
  EXPECT_FALSE(checker.holds(all, ctl::parse("EX TRUE & !(s=a)")));
  EXPECT_TRUE(checker.holdsReachable(r, ctl::parse("!(s=a)")));
  EXPECT_TRUE(checker.holdsReachable(r, ctl::parse("EF s=c")));
}

}  // namespace
}  // namespace cmc::symbolic
