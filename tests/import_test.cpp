// Tests for cross-manager BDD import (bdd::Importer), snapshot-backed
// system transfer (symbolic::importSystem), the adaptive engine chooser,
// and the service-level snapshot sharing they enable.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/io.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "service/snapshot.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/engine_choice.hpp"
#include "symbolic/system.hpp"

namespace cmc {
namespace {

namespace fs = std::filesystem;

/// A function with shared structure over the first six variables; built
/// identically in any manager that knows them, so cross-manager equality
/// reduces to handle equality (canonicity).
bdd::Bdd sampleFunction(bdd::Manager& m) {
  const bdd::Bdd x0 = m.bddVar(0), x1 = m.bddVar(1), x2 = m.bddVar(2);
  const bdd::Bdd x3 = m.bddVar(3), x4 = m.bddVar(4), x5 = m.bddVar(5);
  return ((x0 & x1) | (x2 ^ x3)) & (x4.implies(x5) | (x1 & x5));
}

TEST(Importer, SameOrderCopyIsStructurallyIdentical) {
  bdd::Manager src;
  src.ensureVars(6);
  const bdd::Bdd f = sampleFunction(src);

  bdd::Manager dst;
  bdd::Importer imp(dst, src);
  EXPECT_TRUE(imp.sameOrder());
  const bdd::Bdd g = imp.import(f);

  // Canonicity: the import must coincide with building the function
  // natively, node for node.
  EXPECT_EQ(g, sampleFunction(dst));
  EXPECT_EQ(dst.dagSize(g), src.dagSize(f));
  EXPECT_GT(imp.translatedCount(), 0u);
}

TEST(Importer, TerminalsAndSelfImportShortcut) {
  bdd::Manager src;
  src.ensureVars(2);
  bdd::Manager dst;
  bdd::Importer imp(dst, src);
  EXPECT_EQ(imp.import(src.bddTrue()), dst.bddTrue());
  EXPECT_EQ(imp.import(src.bddFalse()), dst.bddFalse());

  // Importing into the source manager itself is the identity.
  bdd::Importer self(src, src);
  const bdd::Bdd v = src.bddVar(1);
  EXPECT_EQ(self.import(v), v);
}

TEST(Importer, SharedSubgraphsStayShared) {
  bdd::Manager src;
  src.ensureVars(4);
  // The shared part must sit *below* the distinguishing variables to
  // survive canonicalization: both roots branch into the same (x2 & x3)
  // subgraph.
  const bdd::Bdd h = src.bddVar(2) & src.bddVar(3);
  const bdd::Bdd f = src.bddVar(0) | h;
  const bdd::Bdd g = src.bddVar(1) & h;

  bdd::Manager dst;
  bdd::Importer imp(dst, src);
  const bdd::Bdd fi = imp.import(f);
  const bdd::Bdd gi = imp.import(g);
  // The shared (x2 & x3) subgraph is translated once, not per root.
  EXPECT_LT(imp.translatedCount(), src.dagSize(f) + src.dagSize(g));

  // Re-importing a translated root is a map lookup returning the same
  // canonical handle.
  const std::size_t before = imp.translatedCount();
  EXPECT_EQ(imp.import(f), fi);
  EXPECT_EQ(imp.translatedCount(), before);
  EXPECT_EQ(gi, dst.bddVar(1) & dst.bddVar(2) & dst.bddVar(3));
}

TEST(Importer, PermutedDestinationOrderPreservesSemantics) {
  bdd::Manager src;
  src.ensureVars(6);
  const bdd::Bdd f = sampleFunction(src);

  // A destination whose level order genuinely differs from the source's.
  bdd::Manager dst;
  dst.ensureVars(6);
  dst.swapAdjacentLevels(0);
  dst.swapAdjacentLevels(2);
  dst.swapAdjacentLevels(1);

  bdd::Importer imp(dst, src);
  EXPECT_FALSE(imp.sameOrder());
  const bdd::Bdd g = imp.import(f);
  // Canonical in dst's order, so equality with the native build is both
  // structural and semantic.
  EXPECT_EQ(g, sampleFunction(dst));
}

TEST(Importer, SiftedSourcePreservesSemantics) {
  bdd::Manager src;
  src.ensureVars(6);
  const bdd::Bdd f = sampleFunction(src);
  src.reorderSift();  // permute the *source* order before exporting

  bdd::Manager dst;
  bdd::Importer imp(dst, src);
  const bdd::Bdd g = imp.import(f);
  EXPECT_EQ(g, sampleFunction(dst));
}

TEST(Importer, AdoptedContextVariablesLineUpWithImports) {
  symbolic::Context src;
  const symbolic::VarId s = src.addEnumVar("s", {"a", "b", "c"});
  const symbolic::VarId t = src.addBoolVar("t");

  symbolic::Context dst;
  dst.adoptVariablesFrom(src);
  ASSERT_EQ(dst.varCount(), src.varCount());
  EXPECT_EQ(dst.bitCount(), src.bitCount());
  EXPECT_EQ(dst.variable(s).bits, src.variable(s).bits);

  // Encodings built in the adopted context coincide with imports of the
  // source's encodings — the precondition snapshot workers rely on.
  bdd::Importer imp(dst.mgr(), src.mgr());
  EXPECT_TRUE(imp.sameOrder());
  EXPECT_EQ(imp.import(src.varEq(s, "b")), dst.varEq(s, "b"));
  EXPECT_EQ(imp.import(src.varEq(t, "1", /*next=*/true)),
            dst.varEq(t, "1", /*next=*/true));
}

const char* kTwoModuleSmv = R"(
MODULE left
VAR x : {on, off};
ASSIGN next(x) := case x = on : off; 1 : on; esac;
SPEC AG (x = on | x = off)
MODULE right
VAR y : {p, q, r};
ASSIGN next(y) := case y = p : q; y = q : r; 1 : p; esac;
SPEC AG (EF (y = r))
)";

TEST(ImportSystem, ImportedCompositionChecksIdentically) {
  symbolic::Context src;
  std::vector<smv::ElaboratedModule> mods =
      smv::elaborateProgram(src, kTwoModuleSmv);
  ASSERT_EQ(mods.size(), 2u);
  std::vector<symbolic::SymbolicSystem> parts;
  for (smv::ElaboratedModule& m : mods) {
    symbolic::addReflexive(m.sys);  // tags frame conjuncts on the tracks
    parts.push_back(m.sys);
  }
  const symbolic::SymbolicSystem composed = symbolic::composeAll(parts);

  symbolic::Context dst;
  dst.adoptVariablesFrom(src);
  bdd::Importer imp(dst.mgr(), src.mgr());
  const symbolic::SymbolicSystem copy =
      symbolic::importSystem(dst, imp, composed, /*wantMonolithic=*/false);

  EXPECT_EQ(copy.vars, composed.vars);
  EXPECT_EQ(copy.partition.conjunctCount(), composed.partition.conjunctCount());
  EXPECT_EQ(copy.transNodeCount(), composed.transNodeCount());

  // Both copies decide every spec identically, under either engine.
  for (const smv::ElaboratedModule& m : mods) {
    for (const ctl::Spec& spec : m.specs) {
      for (bool partitioned : {true, false}) {
        symbolic::CheckerOptions copts;
        copts.usePartitionedTrans = partitioned;
        symbolic::Checker orig(composed, copts);
        symbolic::Checker imported(copy, copts);
        EXPECT_EQ(orig.holds(spec), imported.holds(spec))
            << spec.name << " partitioned=" << partitioned;
      }
    }
  }
}

TEST(EngineChoice, ModeStringsRoundTrip) {
  using symbolic::EngineMode;
  EngineMode m = EngineMode::Auto;
  EXPECT_TRUE(symbolic::engineModeFromString("partitioned", &m));
  EXPECT_EQ(m, EngineMode::Partitioned);
  EXPECT_TRUE(symbolic::engineModeFromString("monolithic", &m));
  EXPECT_EQ(m, EngineMode::Monolithic);
  EXPECT_TRUE(symbolic::engineModeFromString("auto", &m));
  EXPECT_EQ(m, EngineMode::Auto);
  EXPECT_FALSE(symbolic::engineModeFromString("quantum", &m));
  EXPECT_STREQ(symbolic::toString(EngineMode::Auto), "auto");
}

TEST(EngineChoice, SmallProductCompletesProbeAndCaches) {
  symbolic::Context ctx;
  smv::ElaboratedModule mod = smv::elaborateText(ctx, R"(
MODULE tiny
VAR s : {a, b};
ASSIGN next(s) := case s = a : b; 1 : a; esac;
SPEC AG (s = a | s = b)
)");
  ASSERT_FALSE(mod.sys.transMaterialized());
  const symbolic::EngineChoice c = symbolic::chooseEngine(mod.sys);
  EXPECT_TRUE(c.probed);
  EXPECT_FALSE(c.probeAborted);
  EXPECT_FALSE(c.usePartitioned);  // a two-state product always fits
  EXPECT_GT(c.capNodes, 0u);
  EXPECT_GT(c.monolithicNodes, 0u);
  EXPECT_FALSE(c.reason.empty());
  // The probe's product is cached, not thrown away.
  EXPECT_TRUE(mod.sys.transMaterialized());
}

/// Sweep every shipped model: EngineMode::Auto must agree verdict-for-
/// verdict with both forced engines.  This is the chooser's correctness
/// contract — it may only ever change performance.
TEST(EngineChoice, AutoMatchesForcedEnginesOnAllModels) {
  const fs::path dir(CMC_MODELS_DIR);
  ASSERT_TRUE(fs::exists(dir));
  std::size_t models = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".smv") continue;
    ++models;
    std::ifstream in(entry.path());
    std::stringstream text;
    text << in.rdbuf();

    std::map<symbolic::EngineMode, std::map<std::string, service::Verdict>>
        verdicts;
    for (symbolic::EngineMode mode :
         {symbolic::EngineMode::Auto, symbolic::EngineMode::Partitioned,
          symbolic::EngineMode::Monolithic}) {
      service::ServiceOptions sopts;
      sopts.threads = 2;
      sopts.cacheEnabled = false;  // no cross-engine sharing of verdicts
      service::VerificationService svc(sopts);
      service::VerificationJob job;
      job.name = entry.path().stem().string();
      job.smvText = text.str();
      job.options.engine = mode;
      const service::JobReport report = svc.run(job);
      for (const service::ObligationOutcome& o : report.obligations) {
        verdicts[mode][o.id] = o.verdict;
        if (mode == symbolic::EngineMode::Auto) {
          // Every auto-resolved obligation records how it resolved.
          EXPECT_FALSE(o.engineChoiceJson.empty()) << job.name << " " << o.id;
        }
      }
    }
    EXPECT_EQ(verdicts[symbolic::EngineMode::Auto],
              verdicts[symbolic::EngineMode::Partitioned])
        << entry.path();
    EXPECT_EQ(verdicts[symbolic::EngineMode::Auto],
              verdicts[symbolic::EngineMode::Monolithic])
        << entry.path();
  }
  EXPECT_GT(models, 0u);
}

TEST(Snapshot, BuildOnceImportPerWorker) {
  service::VerificationJob job;
  job.name = "two";
  job.smvText = kTwoModuleSmv;
  const service::SnapshotResult r =
      service::buildSnapshot(job, /*wantCanon=*/true);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_NE(r.snapshot, nullptr);
  const service::ElaborationSnapshot& snap = *r.snapshot;
  ASSERT_EQ(snap.modules.size(), 2u);
  EXPECT_EQ(snap.canon.size(), 2u);
  EXPECT_GT(snap.liveNodes, 0u);

  // A worker-style consumer: adopted layout, pre-sized context, imported
  // module — must decide the module's specs like the snapshot's own copy.
  symbolic::Context worker(service::workerArenaCapacity(snap.liveNodes),
                           service::workerCacheCapacity(snap.liveNodes));
  worker.adoptVariablesFrom(*snap.ctx);
  bdd::Importer imp(worker.mgr(), snap.ctx->mgr());
  const smv::ElaboratedModule local = service::importModule(
      worker, imp, snap.modules.front(), /*wantMonolithic=*/false);
  ASSERT_FALSE(local.specs.empty());
  symbolic::Checker checker(local.sys);
  EXPECT_TRUE(checker.holds(local.specs.front()));
  // Arena pre-sizing: the import alone can never outgrow the arena.
  EXPECT_LE(worker.mgr().liveNodeCount(),
            service::workerArenaCapacity(snap.liveNodes));
}

TEST(Snapshot, ServiceMemoizesSnapshotsAcrossRuns) {
  service::MetricsRegistry metrics;
  service::ServiceOptions sopts;
  sopts.threads = 2;
  sopts.metrics = &metrics;
  service::VerificationService svc(sopts);

  service::VerificationJob job;
  job.name = "memo";
  job.smvText = kTwoModuleSmv;
  const service::JobReport first = svc.run(job);
  EXPECT_EQ(first.verdict, service::Verdict::Holds);
  EXPECT_EQ(metrics.counterValue("snapshot_builds"), 1u);

  // A warm resubmission of the same text reuses the memoized snapshot.
  const service::JobReport second = svc.run(job);
  EXPECT_EQ(second.verdict, service::Verdict::Holds);
  EXPECT_EQ(metrics.counterValue("snapshot_builds"), 1u);
  EXPECT_GE(metrics.counterValue("snapshot_reuses"), 1u);
}

TEST(Snapshot, PhaseTimersLandInReportAndTrace) {
  service::ServiceOptions sopts;
  sopts.threads = 2;
  service::VerificationService svc(sopts);
  service::VerificationJob job;
  job.name = "timers";
  job.smvText = kTwoModuleSmv;
  job.options.engine = symbolic::EngineMode::Auto;
  service::RunTrace trace;
  const service::JobReport report = svc.run(job, &trace);

  ASSERT_FALSE(report.obligations.empty());
  for (const service::ObligationOutcome& o : report.obligations) {
    ASSERT_FALSE(o.attempts.empty());
    // Snapshot-backed attempts import instead of re-elaborating.
    EXPECT_EQ(o.attempts.front().elaborateMs, 0.0);
    EXPECT_GE(o.attempts.front().importMs, 0.0);
    EXPECT_GE(o.attempts.front().fixpointMs, 0.0);
    EXPECT_FALSE(o.engineChoiceJson.empty());
  }
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"import_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"fixpoint_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_choice\""), std::string::npos);
  EXPECT_GE(trace.countContaining("\"event\": \"snapshot\""), 1u);
  EXPECT_GE(trace.countContaining("\"event\": \"engine_choice\""), 1u);
}

}  // namespace
}  // namespace cmc
