// Tests for the failpoint fault-injection registry: spec parsing, action
// semantics (error / throw / delay / 1in), determinism of the 1in counter,
// and catalog enumeration.  The registry itself is always compiled (only
// the CMC_FAILPOINT macro is gated), so these run in every build.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "util/failpoint.hpp"

namespace cmc::util {
namespace {

/// Every test leaves the global registry disarmed (it is process-wide).
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoint::disarmAll(); }
};

TEST_F(FailpointTest, CatalogSitesAreEnumerableBeforeFirstHit) {
  const std::vector<Failpoint::SiteInfo> sites = Failpoint::sites();
  const auto has = [&](const char* name) {
    for (const Failpoint::SiteInfo& s : sites) {
      if (s.name == name) return !s.description.empty();
    }
    return false;
  };
  EXPECT_TRUE(has("bdd.alloc_node"));
  EXPECT_TRUE(has("smv.elaborate"));
  EXPECT_TRUE(has("cache.disk_append"));
  EXPECT_TRUE(has("cache.disk_load"));
  EXPECT_TRUE(has("trace.write"));
  EXPECT_TRUE(has("scheduler.dispatch"));
  EXPECT_TRUE(has("scheduler.retry"));
  EXPECT_TRUE(has("journal.append"));
  EXPECT_TRUE(has("journal.load"));
}

TEST_F(FailpointTest, DisarmedSiteIsANoOp) {
  Failpoint& fp = Failpoint::site("test.noop");
  EXPECT_NO_THROW(fp.evaluate());
  EXPECT_EQ(fp.hits(), 0u);
}

TEST_F(FailpointTest, ErrorActionThrowsFailpointErrorEveryHit) {
  Failpoint::configure("test.err=error");
  Failpoint& fp = Failpoint::site("test.err");
  EXPECT_THROW(fp.evaluate(), FailpointError);
  EXPECT_THROW(fp.evaluate(), Error);  // FailpointError IS-A cmc::Error
  EXPECT_EQ(fp.hits(), 2u);
}

TEST_F(FailpointTest, ThrowActionIsNotACmcError) {
  // The quarantine path distinguishes expected (cmc::Error) failures from
  // foreign exceptions; `throw` must model the latter.
  Failpoint::configure("test.foreign=throw");
  Failpoint& fp = Failpoint::site("test.foreign");
  try {
    fp.evaluate();
    FAIL() << "armed site did not fire";
  } catch (const Error&) {
    FAIL() << "`throw` action must not produce a cmc::Error";
  } catch (const std::runtime_error&) {
    // expected
  }
}

TEST_F(FailpointTest, OneInFiresDeterministicallyOnEveryNthHit) {
  Failpoint::configure("test.oneIn=1in(3)");
  Failpoint& fp = Failpoint::site("test.oneIn");
  for (int round = 0; round < 3; ++round) {
    EXPECT_NO_THROW(fp.evaluate());
    EXPECT_NO_THROW(fp.evaluate());
    EXPECT_THROW(fp.evaluate(), FailpointError);
  }
  EXPECT_EQ(fp.hits(), 9u);
  // Re-arming resets the counter, so a configured workload replays
  // identically from any starting point.
  Failpoint::configure("test.oneIn=1in(3)");
  EXPECT_EQ(fp.hits(), 0u);
  EXPECT_NO_THROW(fp.evaluate());
}

TEST_F(FailpointTest, DelaySleepsWithoutThrowing) {
  Failpoint::configure("test.slow=delay(20)");
  Failpoint& fp = Failpoint::site("test.slow");
  const auto before = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(fp.evaluate());
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            10);
}

TEST_F(FailpointTest, OffActionDisarms) {
  Failpoint::configure("test.toggle=error");
  Failpoint& fp = Failpoint::site("test.toggle");
  EXPECT_THROW(fp.evaluate(), FailpointError);
  Failpoint::configure("test.toggle=off");
  EXPECT_NO_THROW(fp.evaluate());
}

TEST_F(FailpointTest, ConfigureListArmsEverySpec) {
  Failpoint::configureList("test.a=error,test.b=1in(2),,test.c=delay(0)");
  EXPECT_THROW(Failpoint::site("test.a").evaluate(), FailpointError);
  Failpoint& b = Failpoint::site("test.b");
  EXPECT_NO_THROW(b.evaluate());
  EXPECT_THROW(b.evaluate(), FailpointError);
  EXPECT_NO_THROW(Failpoint::site("test.c").evaluate());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_THROW(Failpoint::configure("noequals"), Error);
  EXPECT_THROW(Failpoint::configure("=error"), Error);
  EXPECT_THROW(Failpoint::configure("test.x="), Error);
  EXPECT_THROW(Failpoint::configure("test.x=bogus"), Error);
  EXPECT_THROW(Failpoint::configure("test.x=delay"), Error);
  EXPECT_THROW(Failpoint::configure("test.x=delay(abc)"), Error);
  EXPECT_THROW(Failpoint::configure("test.x=1in()"), Error);
  EXPECT_THROW(Failpoint::configure("test.x=1in(0)"), Error);
}

TEST_F(FailpointTest, DisarmAllResetsActionsAndCounters) {
  Failpoint::configure("test.reset=1in(2)");
  Failpoint& fp = Failpoint::site("test.reset");
  EXPECT_NO_THROW(fp.evaluate());
  Failpoint::disarmAll();
  EXPECT_EQ(fp.hits(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_NO_THROW(fp.evaluate());
}

TEST_F(FailpointTest, CompiledInMatchesTheBuildFlag) {
#if defined(CMC_FAILPOINTS_ENABLED)
  EXPECT_TRUE(Failpoint::compiledIn());
#else
  EXPECT_FALSE(Failpoint::compiledIn());
#endif
}

}  // namespace
}  // namespace cmc::util
