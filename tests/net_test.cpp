// Tests for the net layer: wire-protocol parsing (malformed JSON, typed
// option overlays), LineSocket framing (splits, CRLF, oversized lines,
// torn tails), and the server end-to-end — admission control with BUSY
// backpressure, queueing, per-request CANCEL (running and queued),
// client-disconnect detection, drain semantics, warm-cache resubmission,
// and the metrics consistency invariants.  All over real Unix-domain
// sockets against an in-process Server, so the tests can assert on the
// registry and trace directly.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/journal.hpp"
#include "service/scheduler.hpp"
#include "service/trace_log.hpp"
#include "util/timer.hpp"
#include "util/version.hpp"

namespace cmc::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)";

/// A model whose single obligation is genuinely slow to *check*: a
/// saturating k-bit ripple counter where AG (EF all-ones) holds but the
/// inner EF fixpoint needs 2^k backward iterations before converging.
/// Elaboration is shared across a job since snapshots landed, so the
/// slowness must live in the fixpoint, not in re-parsing; k is sized so
/// the check runs for roughly `ms` milliseconds with a ~2x margin for
/// faster machines — long enough for a cancel or a second connection to
/// land mid-run.
std::string slowSmv(int ms) {
  int bits = 14;
  while ((1 << bits) < ms * 2800 && bits < 24) ++bits;
  std::ostringstream out;
  out << "MODULE slow\nVAR\n";
  for (int i = 0; i < bits; ++i) out << "  b" << i << " : boolean;\n";
  out << "ASSIGN\n  next(b0) := case";
  std::string carry = "b0";
  for (int i = 1; i < bits; ++i) carry += " & b" + std::to_string(i);
  out << " " << carry << " : b0; 1 : !b0; esac;\n";
  for (int i = 1; i < bits; ++i) {
    std::string below = "b0";
    for (int k = 1; k < i; ++k) below += " & b" + std::to_string(k);
    out << "  next(b" << i << ") := case " << carry << " : b" << i << "; "
        << below << " : !b" << i << "; 1 : b" << i << "; esac;\n";
  }
  out << "SPEC AG (EF (" << carry << "))\n";
  return out.str();
}

std::string checkRequest(const std::string& id, const std::string& smv,
                         const std::string& extraRawFields = "") {
  service::JsonObject req;
  req.put("cmd", "CHECK").put("id", id);
  std::string line = req.str();
  if (!extraRawFields.empty()) {
    line.pop_back();
    line += ", " + extraRawFields + "}";
  }
  // Free text last, per the client convention.
  line.pop_back();
  line += ", \"smv\": \"" + service::jsonEscape(smv) + "\"}";
  return line;
}

bool waitFor(const std::function<bool()>& pred, double seconds = 30.0) {
  WallTimer t;
  while (t.seconds() < seconds) {
    if (pred()) return true;
    std::this_thread::sleep_for(20ms);
  }
  return pred();
}

/// An in-process server on a fresh socket, with direct access to the
/// registry and trace.
struct Harness {
  explicit Harness(unsigned maxInFlight = 0, std::size_t queueDepth = 16,
                   int tcpPort = -1, double metricsInterval = 0.0) {
    service::ServiceOptions so;
    so.threads = 1;
    so.metrics = &metrics;
    svc = std::make_unique<service::VerificationService>(so);
    static std::atomic<int> counter{0};
    sockPath = (fs::temp_directory_path() /
                ("cmc_net_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(++counter) + ".sock"))
                   .string();
    ServerOptions opts;
    opts.socketPath = sockPath;
    opts.tcpPort = tcpPort;
    opts.maxInFlight = maxInFlight;
    opts.queueDepth = queueDepth;
    opts.metricsIntervalSeconds = metricsInterval;
    server = std::make_unique<Server>(opts, *svc, metrics, trace, nullptr,
                                      nullptr);
    std::string err;
    started = server->start(&err);
    EXPECT_TRUE(started) << err;
  }

  ~Harness() {
    server->shutdown();
  }

  Client connect() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connectUnix(sockPath, &err)) << err;
    return c;
  }

  service::MetricsRegistry metrics;
  service::RunTrace trace;
  std::unique_ptr<service::VerificationService> svc;
  std::unique_ptr<Server> server;
  std::string sockPath;
  bool started = false;
};

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

TEST(NetProtocol, ParseRejectsMalformedRequests) {
  const service::JobOptions defaults;
  Request req;
  std::string err;
  EXPECT_FALSE(parseRequest("not json at all", defaults, &req, &err));
  EXPECT_NE(err.find("not a JSON object"), std::string::npos);
  EXPECT_FALSE(parseRequest("{\"id\": \"x\"}", defaults, &req, &err));
  EXPECT_NE(err.find("cmd"), std::string::npos);
  EXPECT_FALSE(parseRequest("{\"cmd\": \"NOPE\"}", defaults, &req, &err));
  EXPECT_NE(err.find("unknown command"), std::string::npos);
  // CHECK needs exactly one model source.
  EXPECT_FALSE(parseRequest("{\"cmd\": \"CHECK\"}", defaults, &req, &err));
  EXPECT_FALSE(parseRequest(
      "{\"cmd\": \"CHECK\", \"model\": \"m.smv\", \"smv\": \"MODULE m\"}",
      defaults, &req, &err));
  // CANCEL needs a target.
  EXPECT_FALSE(parseRequest("{\"cmd\": \"CANCEL\"}", defaults, &req, &err));
  // Typed overlays reject wrong types instead of silently defaulting.
  EXPECT_FALSE(parseRequest("{\"cmd\": \"CHECK\", \"model\": \"m.smv\", "
                            "\"deadline_ms\": \"soon\"}",
                            defaults, &req, &err));
  EXPECT_NE(err.find("deadline_ms"), std::string::npos);
  EXPECT_FALSE(parseRequest("{\"cmd\": \"CHECK\", \"model\": \"m.smv\", "
                            "\"engine\": \"quantum\"}",
                            defaults, &req, &err));
}

TEST(NetProtocol, ParseOverlaysDefaults) {
  service::JobOptions defaults;
  defaults.clusterThreshold = 512;
  Request req;
  std::string err;
  ASSERT_TRUE(parseRequest(
      "{\"cmd\": \"CHECK\", \"id\": \"r1\", \"model\": \"m.smv\", "
      "\"deadline_ms\": 1500, \"compose\": true, \"no_retry\": true, "
      "\"engine\": \"monolithic\"}",
      defaults, &req, &err))
      << err;
  EXPECT_EQ(req.cmd, Command::Check);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.model, "m.smv");
  EXPECT_DOUBLE_EQ(req.options.limits.deadlineSeconds, 1.5);
  EXPECT_TRUE(req.options.compose);
  EXPECT_FALSE(req.options.retryOtherEngine);
  EXPECT_EQ(req.options.engine, symbolic::EngineMode::Monolithic);
  EXPECT_EQ(req.options.clusterThreshold, 512u);  // untouched default

  // An inline-smv CHECK whose *model text* mentions option-like words must
  // not confuse the overlay (escaped quotes cannot form a key needle).
  ASSERT_TRUE(parseRequest(
      checkRequest("r2", "MODULE m -- \"deadline_ms\": 1, \"cmd\": \"DRAIN\""),
      defaults, &req, &err))
      << err;
  EXPECT_EQ(req.cmd, Command::Check);
  EXPECT_DOUBLE_EQ(req.options.limits.deadlineSeconds, 0.0);
}

TEST(NetProtocol, ParsesRev3ClusterAdminCommands) {
  // The admin commands arrived with protocol revision 3; the gate test in
  // cluster_test.cpp proves older revisions are refused outright.
  EXPECT_EQ(kProtocolRevision, 3u);
  const service::JobOptions defaults;
  Request req;
  std::string err;

  ASSERT_TRUE(parseRequest("{\"cmd\": \"TOPOLOGY\"}", defaults, &req, &err))
      << err;
  EXPECT_EQ(req.cmd, Command::Topology);

  ASSERT_TRUE(parseRequest(
      "{\"cmd\": \"JOIN\", \"shard\": \"s3\", \"socket\": \"/run/s3.sock\"}",
      defaults, &req, &err))
      << err;
  EXPECT_EQ(req.cmd, Command::Join);
  EXPECT_EQ(req.shard, "s3");
  EXPECT_EQ(req.shardSocket, "/run/s3.sock");
  EXPECT_EQ(req.shardTcp, -1);
  ASSERT_TRUE(parseRequest("{\"cmd\": \"JOIN\", \"shard\": \"s4\", "
                           "\"tcp\": 7402}",
                           defaults, &req, &err))
      << err;
  EXPECT_EQ(req.shardTcp, 7402);
  EXPECT_TRUE(req.shardSocket.empty());
  // JOIN needs a name and exactly one transport, in range.
  EXPECT_FALSE(parseRequest("{\"cmd\": \"JOIN\", \"socket\": \"/run/x\"}",
                            defaults, &req, &err));
  EXPECT_NE(err.find("shard"), std::string::npos) << err;
  EXPECT_FALSE(parseRequest("{\"cmd\": \"JOIN\", \"shard\": \"s3\"}",
                            defaults, &req, &err));
  EXPECT_FALSE(parseRequest(
      "{\"cmd\": \"JOIN\", \"shard\": \"s3\", \"socket\": \"/run/x\", "
      "\"tcp\": 7402}",
      defaults, &req, &err));
  EXPECT_FALSE(parseRequest("{\"cmd\": \"JOIN\", \"shard\": \"s3\", "
                            "\"tcp\": 99999}",
                            defaults, &req, &err));

  ASSERT_TRUE(parseRequest("{\"cmd\": \"LEAVE\", \"shard\": \"s3\"}",
                           defaults, &req, &err))
      << err;
  EXPECT_EQ(req.cmd, Command::Leave);
  EXPECT_EQ(req.shard, "s3");
  EXPECT_FALSE(parseRequest("{\"cmd\": \"LEAVE\"}", defaults, &req, &err));

  ASSERT_TRUE(parseRequest("{\"cmd\": \"CACHE_PUT\", \"fingerprint\": "
                           "\"ab12\", \"verdict\": \"Fails\"}",
                           defaults, &req, &err))
      << err;
  EXPECT_EQ(req.cmd, Command::CachePut);
  EXPECT_EQ(req.fingerprint, "ab12");
  // The write-through carries decided verdicts only: no fingerprint, or a
  // non-terminal verdict, is refused at the parse layer.
  EXPECT_FALSE(parseRequest("{\"cmd\": \"CACHE_PUT\", \"verdict\": "
                            "\"Holds\"}",
                            defaults, &req, &err));
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
  EXPECT_FALSE(parseRequest("{\"cmd\": \"CACHE_PUT\", \"fingerprint\": "
                            "\"ab12\", \"verdict\": \"Timeout\"}",
                            defaults, &req, &err));
}

// ---------------------------------------------------------------------------
// LineSocket framing
// ---------------------------------------------------------------------------

TEST(NetLineSocket, SplitsLinesAndStripsCrlf) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineSocket a(fds[0]);
  LineSocket b(fds[1]);
  ASSERT_TRUE(a.writeLine("first"));
  const std::string raw = "second\r\nthird\n";
  ASSERT_EQ(::send(fds[0], raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string line;
  EXPECT_EQ(b.readLine(&line), LineSocket::ReadResult::Line);
  EXPECT_EQ(line, "first");
  EXPECT_EQ(b.readLine(&line), LineSocket::ReadResult::Line);
  EXPECT_EQ(line, "second");
  EXPECT_EQ(b.readLine(&line), LineSocket::ReadResult::Line);
  EXPECT_EQ(line, "third");
}

TEST(NetLineSocket, TornTailIsEofNeverALine) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineSocket b(fds[1]);
  const std::string fragment = "{\"cmd\": \"CHE";
  ASSERT_EQ(::send(fds[0], fragment.data(), fragment.size(), 0),
            static_cast<ssize_t>(fragment.size()));
  ::close(fds[0]);
  std::string line;
  EXPECT_EQ(b.readLine(&line), LineSocket::ReadResult::Eof);
}

// ---------------------------------------------------------------------------
// Server: protocol-level failure handling
// ---------------------------------------------------------------------------

TEST(NetServer, MalformedRequestsGetBadRequestAndConnectionSurvives) {
  Harness h;
  Client c = h.connect();
  std::string resp, err;
  ASSERT_TRUE(c.request("this is not json", &resp, &err)) << err;
  EXPECT_NE(resp.find(kBadRequest), std::string::npos);
  ASSERT_TRUE(c.request("{\"cmd\": \"FROBNICATE\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("unknown command"), std::string::npos);
  // The connection is still usable for a well-formed request.
  ASSERT_TRUE(c.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(resp.find("\"state\": \"serving\""), std::string::npos);
  EXPECT_NE(resp.find(util::versionString()), std::string::npos);
  EXPECT_EQ(h.metrics.counterValue("protocol_errors"), 2u);
}

TEST(NetServer, OversizedLineIsRejectedAndConnectionClosed) {
  Harness h;
  Client c = h.connect();
  std::string big(kMaxLineBytes + 2, 'x');
  ASSERT_TRUE(c.send(big));
  std::string resp, err;
  ASSERT_TRUE(c.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find(kBadRequest), std::string::npos);
  EXPECT_NE(resp.find("exceeds"), std::string::npos);
  // The server closes after an unbounded line; the next read is EOF.
  EXPECT_FALSE(c.readResponse(&resp, &err));
}

TEST(NetServer, HalfClosedConnectionUnwindsCleanly) {
  Harness h;
  {
    Client c = h.connect();
    // A torn request then write-shutdown: the server must treat it as EOF,
    // answer nothing, and release the connection.
    ASSERT_TRUE(c.socket() != nullptr);
    const std::string fragment = "{\"cmd\": \"STAT";
    ::send(c.socket()->fd(), fragment.data(), fragment.size(), MSG_NOSIGNAL);
    ::shutdown(c.socket()->fd(), SHUT_WR);
    std::string resp, err;
    EXPECT_FALSE(c.readResponse(&resp, &err));
  }
  EXPECT_TRUE(waitFor([&] {
    return h.metrics.gaugeValue("connections_open") == 0;
  }));
  // And the server still serves.
  Client c2 = h.connect();
  std::string resp, err;
  ASSERT_TRUE(c2.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server: CHECK end-to-end
// ---------------------------------------------------------------------------

TEST(NetServer, ChecksInlineModelAndEmbedsReport) {
  Harness h;
  Client c = h.connect();
  std::string resp, err;
  ASSERT_TRUE(c.request(checkRequest("r1", kChainSmv), &resp, &err)) << err;
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
  std::uint64_t obligations = 0;
  EXPECT_TRUE(service::jsonExtractUint(resp, "obligations", &obligations));
  EXPECT_EQ(obligations, 1u);
  std::string report;
  ASSERT_TRUE(service::jsonExtractString(resp, "report", &report));
  // The embedded report is the full (unescaped) JobReport document,
  // version-stamped.
  EXPECT_NE(report.find("\"cmc_version\": \""), std::string::npos);
  EXPECT_NE(report.find("\"verdict\": \"Holds\""), std::string::npos);
}

TEST(NetServer, SecondIdenticalSubmissionIsAllCache) {
  Harness h;
  const std::string model = [] {
    std::ifstream in(fs::path(CMC_MODELS_DIR) / "afs2_composed.smv");
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }();
  ASSERT_FALSE(model.empty());
  Client c = h.connect();
  std::string cold, warm, err;
  ASSERT_TRUE(c.request(checkRequest("cold", model, "\"compose\": true"),
                        &cold, &err))
      << err;
  ASSERT_TRUE(c.request(checkRequest("warm", model, "\"compose\": true"),
                        &warm, &err))
      << err;
  std::uint64_t obligations = 0, coldHits = 0, warmHits = 0;
  ASSERT_TRUE(service::jsonExtractUint(warm, "obligations", &obligations));
  service::jsonExtractUint(cold, "cache_hits", &coldHits);
  service::jsonExtractUint(warm, "cache_hits", &warmHits);
  EXPECT_EQ(coldHits, 0u);
  EXPECT_EQ(warmHits, obligations);  // every obligation served from cache
  std::string report;
  ASSERT_TRUE(service::jsonExtractString(warm, "report", &report));
  EXPECT_NE(report.find("\"verdict_source\": \"cache\""), std::string::npos);
  EXPECT_EQ(report.find("\"verdict_source\": \"checked\""),
            std::string::npos);
  EXPECT_GE(h.metrics.counterValue("obligations_cache"), obligations);
}

TEST(NetServer, ConcurrentConnectionsAndBusyBackpressure) {
  Harness h(/*maxInFlight=*/1, /*queueDepth=*/0);
  Client slow = h.connect();
  ASSERT_TRUE(slow.send(checkRequest("slow", slowSmv(200))));
  ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));

  // The queue depth is 0: a concurrent CHECK is refused immediately with
  // BUSY — explicit backpressure, not unbounded queueing.
  Client busy = h.connect();
  std::string resp, err;
  ASSERT_TRUE(busy.request(checkRequest("busy", kChainSmv), &resp, &err))
      << err;
  EXPECT_NE(resp.find(kBusy), std::string::npos);
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos);
  EXPECT_EQ(h.metrics.counterValue("checks_rejected_busy"), 1u);
  // STATUS and STATS are not subject to admission control.
  ASSERT_TRUE(busy.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"in_flight\": 1"), std::string::npos);

  // The running request is unaffected and completes.
  ASSERT_TRUE(slow.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
}

TEST(NetServer, QueuedRequestWaitsForSlotAndCompletes) {
  Harness h(/*maxInFlight=*/1, /*queueDepth=*/1);
  Client slow = h.connect();
  ASSERT_TRUE(slow.send(checkRequest("slow", slowSmv(120))));
  ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));
  Client queued = h.connect();
  ASSERT_TRUE(queued.send(checkRequest("queued", kChainSmv)));
  ASSERT_TRUE(waitFor([&] { return h.server->queued() == 1; }));

  std::string resp, err;
  ASSERT_TRUE(slow.readResponse(&resp, &err)) << err;
  ASSERT_TRUE(queued.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
  double waited = 0.0;
  ASSERT_TRUE(service::jsonExtractDouble(resp, "queue_wait_seconds", &waited));
  EXPECT_GT(waited, 0.0);  // it really did wait for the slot
  EXPECT_EQ(h.metrics.counterValue("checks_admitted"), 2u);
  EXPECT_EQ(h.metrics.counterValue("checks_completed"), 2u);
}

TEST(NetServer, CancelStopsARunningRequest) {
  Harness h;
  Client slow = h.connect();
  ASSERT_TRUE(slow.send(checkRequest("victim", slowSmv(300))));
  ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));
  std::this_thread::sleep_for(200ms);

  Client control = h.connect();
  std::string resp, err;
  ASSERT_TRUE(control.request("{\"cmd\": \"CANCEL\", \"id\": \"victim\"}",
                              &resp, &err))
      << err;
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(resp.find("\"phase\": \"running\""), std::string::npos);

  // The victim still gets a response — verdict Cancelled, decided
  // obligations included — and the worker is free again.
  ASSERT_TRUE(slow.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Cancelled\""), std::string::npos);
  EXPECT_EQ(h.metrics.counterValue("checks_cancelled"), 1u);

  ASSERT_TRUE(control.request(checkRequest("after", kChainSmv), &resp, &err))
      << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);

  // Cancelling a finished request is NOT_FOUND, not an exception.
  ASSERT_TRUE(control.request("{\"cmd\": \"CANCEL\", \"id\": \"victim\"}",
                              &resp, &err))
      << err;
  EXPECT_NE(resp.find(kNotFound), std::string::npos);
}

TEST(NetServer, CancelReachesAQueuedRequestWithoutAWorker) {
  Harness h(/*maxInFlight=*/1, /*queueDepth=*/2);
  Client slow = h.connect();
  ASSERT_TRUE(slow.send(checkRequest("front", slowSmv(150))));
  ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));
  Client queued = h.connect();
  ASSERT_TRUE(queued.send(checkRequest("waiting", kChainSmv)));
  ASSERT_TRUE(waitFor([&] { return h.server->queued() == 1; }));

  Client control = h.connect();
  std::string resp, err;
  ASSERT_TRUE(control.request("{\"cmd\": \"CANCEL\", \"id\": \"waiting\"}",
                              &resp, &err))
      << err;
  EXPECT_NE(resp.find("\"phase\": \"queued\""), std::string::npos);

  // The queued request answers immediately — no worker ever ran it.
  ASSERT_TRUE(queued.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Cancelled\""), std::string::npos);
  EXPECT_NE(resp.find("\"cancelled_in_queue\": true"), std::string::npos);

  ASSERT_TRUE(slow.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
  // Admitted counts only worker-reaching requests: the cancelled-in-queue
  // one is not in it, so admitted == completed still holds.
  EXPECT_EQ(h.metrics.counterValue("checks_admitted"),
            h.metrics.counterValue("checks_completed"));
}

TEST(NetServer, VanishedClientCancelsItsRequest) {
  Harness h;
  {
    Client doomed = h.connect();
    ASSERT_TRUE(doomed.send(checkRequest("ghost", slowSmv(300))));
    ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));
    std::this_thread::sleep_for(150ms);
  }  // client closes without reading the response

  // The watcher notices the hangup, raises the cancel flag, and the worker
  // is released — never wedged on a dead connection.
  EXPECT_TRUE(waitFor([&] {
    return h.metrics.counterValue("checks_client_gone") == 1;
  }));
  EXPECT_TRUE(waitFor([&] {
    return h.metrics.counterValue("checks_completed") == 1;
  }));
  EXPECT_TRUE(waitFor([&] { return h.server->inFlight() == 0; }));
  EXPECT_GE(h.trace.countContaining("\"event\": \"client_gone\""), 1u);

  // The worker serves the next client promptly.
  Client next = h.connect();
  std::string resp, err;
  ASSERT_TRUE(next.request(checkRequest("alive", kChainSmv), &resp, &err))
      << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
}

TEST(NetServer, DuplicateRequestIdIsRejected) {
  Harness h;
  Client slow = h.connect();
  ASSERT_TRUE(slow.send(checkRequest("dup", slowSmv(120))));
  ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));
  Client other = h.connect();
  std::string resp, err;
  ASSERT_TRUE(other.request(checkRequest("dup", kChainSmv), &resp, &err))
      << err;
  EXPECT_NE(resp.find(kBadRequest), std::string::npos);
  EXPECT_NE(resp.find("already active"), std::string::npos);
  ASSERT_TRUE(slow.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server: drain, stats, TCP
// ---------------------------------------------------------------------------

TEST(NetServer, DrainRefusesNewChecksAndFinishesAdmittedOnes) {
  Harness h(/*maxInFlight=*/1, /*queueDepth=*/2);
  Client slow = h.connect();
  ASSERT_TRUE(slow.send(checkRequest("inflight", slowSmv(120))));
  ASSERT_TRUE(waitFor([&] { return h.server->inFlight() == 1; }));

  Client control = h.connect();
  std::string resp, err;
  ASSERT_TRUE(control.request("{\"cmd\": \"DRAIN\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"state\": \"draining\""), std::string::npos);
  EXPECT_TRUE(h.server->drainRequested());

  // New CHECKs are refused; STATUS still answers and says draining.
  ASSERT_TRUE(control.request(checkRequest("late", kChainSmv), &resp, &err))
      << err;
  EXPECT_NE(resp.find(kDraining), std::string::npos);
  ASSERT_TRUE(control.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"state\": \"draining\""), std::string::npos);

  // The in-flight request completes and gets its verdict.
  ASSERT_TRUE(slow.readResponse(&resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
  EXPECT_EQ(h.metrics.counterValue("checks_rejected_draining"), 1u);
  h.server->shutdown();  // drains cleanly with nothing in flight
  EXPECT_FALSE(fs::exists(h.sockPath));  // listener socket unlinked
}

TEST(NetServer, StatsAreConsistentAfterABurst) {
  Harness h;
  Client c = h.connect();
  std::string resp, err;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(c.request(checkRequest("r" + std::to_string(i), kChainSmv),
                          &resp, &err))
        << err;
  }
  // Registry invariants the STATS command exposes.
  EXPECT_EQ(h.metrics.counterValue("checks_admitted"), 4u);
  EXPECT_EQ(h.metrics.counterValue("checks_completed"), 4u);
  EXPECT_EQ(h.metrics.gaugeValue("requests_in_flight"), 0);
  EXPECT_EQ(h.metrics.gaugeValue("requests_queued"), 0);
  const service::LatencyHistogram::Snapshot lat =
      h.metrics.histogram("request_seconds").snapshot();
  EXPECT_EQ(lat.count, 4u);
  std::uint64_t buckets = 0;
  for (std::uint64_t b : lat.counts) buckets += b;
  EXPECT_EQ(buckets, lat.count);
  EXPECT_EQ(h.metrics.counterValue("obligations_dispatched"),
            h.metrics.counterValue("obligations_completed"));

  // And through the wire: the STATS response carries both renderings.
  ASSERT_TRUE(c.request("{\"cmd\": \"STATS\"}", &resp, &err)) << err;
  std::string text;
  ASSERT_TRUE(service::jsonExtractString(resp, "metrics_text", &text));
  EXPECT_NE(text.find("checks_completed 4\n"), std::string::npos);
  EXPECT_NE(text.find("request_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  std::string json;
  ASSERT_TRUE(service::jsonExtractString(resp, "metrics", &json));
  EXPECT_NE(json.find("\"checks_completed\": 4"), std::string::npos);
}

TEST(NetServer, PeriodicMetricsEventsLandInTheTrace) {
  Harness h(/*maxInFlight=*/0, /*queueDepth=*/16, /*tcpPort=*/-1,
            /*metricsInterval=*/0.05);
  EXPECT_TRUE(waitFor([&] {
    return h.trace.countContaining("\"event\": \"metrics\"") >= 2;
  }));
  h.server->shutdown();
  // Shutdown emits one final snapshot, reason "shutdown".
  EXPECT_GE(h.trace.countContaining("\"reason\": \"shutdown\""), 1u);
}

TEST(NetServer, LoopbackTcpListenerServes) {
  Harness h(/*maxInFlight=*/0, /*queueDepth=*/16, /*tcpPort=*/0);
  ASSERT_GT(h.server->boundTcpPort(), 0);
  Client c;
  std::string err;
  ASSERT_TRUE(c.connectTcp(h.server->boundTcpPort(), &err)) << err;
  std::string resp;
  ASSERT_TRUE(c.request(checkRequest("tcp", kChainSmv), &resp, &err)) << err;
  EXPECT_NE(resp.find("\"verdict\": \"Holds\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Client retry loops: transient transport failures, including the
// initial dial
// ---------------------------------------------------------------------------

TEST(NetClient, ConnectRetryingWaitsForALateServer) {
  // The daemon comes up well after the client starts dialing: the
  // retrying dial keeps at it instead of failing the submit outright.
  service::MetricsRegistry metrics;
  service::RunTrace trace;
  service::ServiceOptions so;
  so.threads = 1;
  so.metrics = &metrics;
  service::VerificationService svc(so);
  static std::atomic<int> counter{0};
  const std::string path =
      (fs::temp_directory_path() /
       ("cmc_net_late_" + std::to_string(::getpid()) + "_" +
        std::to_string(++counter) + ".sock"))
          .string();
  ServerOptions opts;
  opts.socketPath = path;
  std::unique_ptr<Server> server;
  std::thread starter([&] {
    std::this_thread::sleep_for(200ms);
    server = std::make_unique<Server>(opts, svc, metrics, trace, nullptr,
                                      nullptr);
    std::string err;
    EXPECT_TRUE(server->start(&err)) << err;
  });
  Client c;
  std::string err;
  std::atomic<int> attempts{0};
  EXPECT_TRUE(c.connectRetrying(path, /*tcpPort=*/-1, /*maxRetries=*/50,
                                /*baseMs=*/20, &err,
                                [&](const std::string&, int, int) {
                                  ++attempts;
                                }))
      << err;
  starter.join();
  EXPECT_GE(attempts.load(), 1);
  std::string resp;
  ASSERT_TRUE(c.request("{\"cmd\": \"STATUS\"}", &resp, &err)) << err;
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
  server->shutdown();
}

TEST(NetClient, ConnectRetryingReportsFailureWhenTheBudgetRunsOut) {
  Client c;
  std::string err;
  EXPECT_FALSE(c.connectRetrying(
      (fs::temp_directory_path() / "cmc_net_never_bound.sock").string(),
      /*tcpPort=*/-1, /*maxRetries=*/2, /*baseMs=*/1, &err));
  EXPECT_NE(err.find("connect"), std::string::npos) << err;
}

TEST(NetClient, RequestWithRetrySurvivesAServerRestartOnTheSameSocket) {
  service::MetricsRegistry metrics;
  service::RunTrace trace;
  service::ServiceOptions so;
  so.threads = 1;
  so.metrics = &metrics;
  service::VerificationService svc(so);
  static std::atomic<int> counter{0};
  const std::string path =
      (fs::temp_directory_path() /
       ("cmc_net_restart_" + std::to_string(::getpid()) + "_" +
        std::to_string(++counter) + ".sock"))
          .string();
  ServerOptions opts;
  opts.socketPath = path;
  auto server = std::make_unique<Server>(opts, svc, metrics, trace, nullptr,
                                         nullptr);
  std::string err;
  ASSERT_TRUE(server->start(&err)) << err;
  Client c;
  ASSERT_TRUE(c.connectUnix(path, &err)) << err;

  // Kill the daemon under the connected client, then bring a new one up
  // on the same socket a beat later.
  server->shutdown();
  std::thread restarter([&] {
    std::this_thread::sleep_for(150ms);
    server = std::make_unique<Server>(opts, svc, metrics, trace, nullptr,
                                      nullptr);
    std::string startErr;
    EXPECT_TRUE(server->start(&startErr)) << startErr;
  });

  // The in-flight request rides out the restart: transport failure →
  // backoff → re-dial → success, invisibly to the caller.
  std::string resp;
  std::atomic<int> attempts{0};
  ASSERT_TRUE(c.requestWithRetry("{\"cmd\": \"STATUS\"}", /*maxRetries=*/10,
                                 /*baseMs=*/50, &resp, &err,
                                 [&](const std::string&, int, int) {
                                   ++attempts;
                                 }))
      << err;
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
  EXPECT_GE(attempts.load(), 1);
  restarter.join();
  server->shutdown();
}

}  // namespace
}  // namespace cmc::net
