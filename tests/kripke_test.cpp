// Tests for explicit systems, composition (including the paper's Figure 1
// example), and the explicit fair-CTL checker.
#include <gtest/gtest.h>

#include "ctl/parser.hpp"
#include "kripke/composition.hpp"
#include "kripke/explicit_checker.hpp"
#include "kripke/explicit_system.hpp"

namespace cmc::kripke {
namespace {

using ctl::parse;

TEST(ExplicitSystem, BasicConstruction) {
  ExplicitSystem sys({"a", "b"});
  EXPECT_EQ(sys.atomCount(), 2u);
  EXPECT_EQ(sys.stateCount(), 4u);
  EXPECT_EQ(sys.atomIndex("b"), 1u);
  EXPECT_TRUE(sys.hasAtom("a"));
  EXPECT_FALSE(sys.hasAtom("c"));
  EXPECT_THROW(sys.atomIndex("zzz"), ModelError);
  EXPECT_THROW(ExplicitSystem({"a", "a"}), ModelError);
}

TEST(ExplicitSystem, StateHelpers) {
  ExplicitSystem sys({"a", "b", "c"});
  const State s = sys.stateOf({"a", "c"});
  EXPECT_EQ(s, 0b101u);
  EXPECT_EQ(sys.stateToString(s), "{a, c}");
  EXPECT_EQ(sys.stateToString(0), "{}");
}

TEST(ExplicitSystem, TransitionsAndReflexivity) {
  ExplicitSystem sys({"a"});
  sys.addTransition(0, 1);
  EXPECT_TRUE(sys.hasTransition(0, 1));
  EXPECT_FALSE(sys.hasTransition(1, 0));
  EXPECT_FALSE(sys.isReflexive());
  EXPECT_FALSE(sys.isTotal());  // state 1 has no successor
  sys.makeReflexive();
  EXPECT_TRUE(sys.isReflexive());
  EXPECT_TRUE(sys.isTotal());
  EXPECT_EQ(sys.successors(0), (std::vector<State>{0, 1}));
}

TEST(ExplicitSystem, SameBehaviorIsOrderIndependent) {
  ExplicitSystem a({"x", "y"});
  a.addTransition(a.stateOf({"x"}), a.stateOf({"x", "y"}));
  a.makeReflexive();
  ExplicitSystem b({"y", "x"});
  b.addTransition(b.stateOf({"x"}), b.stateOf({"x", "y"}));
  b.makeReflexive();
  EXPECT_TRUE(a.sameBehavior(b));
  b.addTransition(b.stateOf({"y"}), b.stateOf({}));
  EXPECT_FALSE(a.sameBehavior(b));
}

// ---- The paper's Figure 1 composition example -------------------------------
//
// M  = ({x}, {(∅,{x}), ({x},∅), ({x},{x}), (∅,∅)})
// M' = ({y}, {(∅,{y}), ({y},∅), ({y},{y}), (∅,∅)})
// M∘M' over {x,y} has the 16 transitions listed in the paper.

ExplicitSystem figure1M() {
  ExplicitSystem m({"x"});
  m.addTransition(0, 1);
  m.addTransition(1, 0);
  m.addTransition(1, 1);
  m.addTransition(0, 0);
  return m;
}

ExplicitSystem figure1Mp() {
  ExplicitSystem mp({"y"});
  mp.addTransition(0, 1);
  mp.addTransition(1, 0);
  mp.addTransition(1, 1);
  mp.addTransition(0, 0);
  return mp;
}

TEST(Composition, Figure1Example) {
  const ExplicitSystem whole = compose(figure1M(), figure1Mp());
  EXPECT_EQ(whole.atomCount(), 2u);
  const State none = whole.stateOf({});
  const State x = whole.stateOf({"x"});
  const State y = whole.stateOf({"y"});
  const State xy = whole.stateOf({"x", "y"});
  // The paper's R* (Figure 1), transcribing each pair.
  const std::vector<std::pair<State, State>> expected = {
      {none, x}, {x, none}, {y, xy},   {xy, y},   {none, y}, {y, none},
      {x, xy},   {xy, x},   {none, none}, {x, x}, {y, y},    {xy, xy},
  };
  for (const auto& [from, to] : expected) {
    EXPECT_TRUE(whole.hasTransition(from, to))
        << whole.stateToString(from) << " -> " << whole.stateToString(to);
  }
  EXPECT_EQ(whole.transitionCount(), expected.size());
  // No diagonal moves (both atoms flipping at once): interleaving.
  EXPECT_FALSE(whole.hasTransition(none, xy));
  EXPECT_FALSE(whole.hasTransition(xy, none));
  EXPECT_FALSE(whole.hasTransition(x, y));
  EXPECT_FALSE(whole.hasTransition(y, x));
}

TEST(Composition, AlphabetGuard) {
  std::vector<std::string> many;
  for (int i = 0; i < 15; ++i) many.push_back("p" + std::to_string(i));
  ExplicitSystem big(many);
  ExplicitSystem other({"q0", "q1", "q2", "q3", "q4", "q5", "q6"});
  EXPECT_THROW(compose(big, other), ModelError);
}

TEST(Composition, ExpansionNeverModifiesForeignAtoms) {
  ExplicitSystem m({"a"});
  m.addTransition(0, 1);
  m.makeReflexive();
  const ExplicitSystem exp = expand(m, {"b"});
  EXPECT_EQ(exp.atomCount(), 2u);
  exp.forEachTransition([&](State from, State to) {
    const std::size_t bBit = exp.atomIndex("b");
    EXPECT_EQ((from >> bBit) & 1u, (to >> bBit) & 1u)
        << "expansion changed a foreign atom";
  });
}

// ---- Explicit checker -------------------------------------------------------

/// Three-state chain over atoms {p, q}: s0={p} -> s1={} -> s2={q}, with
/// reflexive closure; useful for simple temporal checks.
ExplicitSystem chainSystem() {
  ExplicitSystem sys({"p", "q"});
  const State s0 = sys.stateOf({"p"});
  const State s1 = sys.stateOf({});
  const State s2 = sys.stateOf({"q"});
  sys.addTransition(s0, s1);
  sys.addTransition(s1, s2);
  sys.addTransition(s2, s2);
  sys.makeReflexive();
  return sys;
}

TEST(ExplicitChecker, PropositionalAndBooleanOps) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  const StateSet satP = checker.sat(parse("p"), {});
  EXPECT_TRUE(satP[sys.stateOf({"p"})]);
  EXPECT_FALSE(satP[sys.stateOf({})]);
  const StateSet satNot = checker.sat(parse("!p & !q"), {});
  EXPECT_TRUE(satNot[sys.stateOf({})]);
  EXPECT_FALSE(satNot[sys.stateOf({"p"})]);
  EXPECT_EQ(setCount(checker.sat(parse("TRUE"), {})), sys.stateCount());
  EXPECT_TRUE(setEmpty(checker.sat(parse("FALSE"), {})));
}

TEST(ExplicitChecker, ExistsNext) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  const StateSet satEXq = checker.sat(parse("EX q"), {});
  EXPECT_TRUE(satEXq[sys.stateOf({})]);      // s1 -> s2
  EXPECT_TRUE(satEXq[sys.stateOf({"q"})]);   // self loop
  EXPECT_FALSE(satEXq[sys.stateOf({"p"})]);  // s0 -> s1 or s0
}

TEST(ExplicitChecker, UntilAndEventually) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  const StateSet satEF = checker.sat(parse("EF q"), {});
  EXPECT_TRUE(satEF[sys.stateOf({"p"})]);
  EXPECT_TRUE(satEF[sys.stateOf({})]);
  // AF q fails everywhere reachable can stutter forever (reflexive), so
  // only q-states satisfy it without fairness.
  const StateSet satAF = checker.sat(parse("AF q"), {});
  EXPECT_TRUE(satAF[sys.stateOf({"q"})]);
  EXPECT_FALSE(satAF[sys.stateOf({"p"})]);
}

TEST(ExplicitChecker, FairnessDiscardsStuttering) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  // Fairness: infinitely often (q | !p&!q-progress) — here, simply "q".
  // Under fairness {q}, every fair path eventually reaches and revisits q.
  const StateSet satAF = checker.sat(parse("AF q"), {parse("q")});
  EXPECT_TRUE(satAF[sys.stateOf({"p"})]);
  EXPECT_TRUE(satAF[sys.stateOf({})]);
  EXPECT_TRUE(satAF[sys.stateOf({"q"})]);
}

TEST(ExplicitChecker, GloballyOperators) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  const StateSet satAGq = checker.sat(parse("AG q"), {});
  EXPECT_TRUE(satAGq[sys.stateOf({"q"})]);  // q-state only loops to itself
  EXPECT_FALSE(satAGq[sys.stateOf({"p"})]);
  const StateSet satEG = checker.sat(parse("EG !q"), {});
  EXPECT_TRUE(satEG[sys.stateOf({"p"})]);  // stutter at s0 forever
  EXPECT_FALSE(satEG[sys.stateOf({"q"})]);
}

TEST(ExplicitChecker, RestrictionHolds) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  ctl::Restriction r;
  r.init = parse("p");
  r.fairness = {parse("q")};
  EXPECT_TRUE(checker.holds(r, parse("AF q")));
  r.fairness = {parse("TRUE")};
  EXPECT_FALSE(checker.holds(r, parse("AF q")));
  EXPECT_TRUE(checker.findViolation(r, parse("AF q")).has_value());
}

TEST(ExplicitChecker, AtomSemanticsHook) {
  ExplicitSystem sys = chainSystem();
  AtomSemantics hook = [&](const std::string& text)
      -> std::optional<StateSet> {
    if (text == "special") {
      StateSet out(sys.stateCount(), false);
      out[sys.stateOf({"q"})] = true;
      return out;
    }
    return std::nullopt;
  };
  ExplicitChecker checker(sys, hook);
  const StateSet sat = checker.sat(parse("EF special"), {});
  EXPECT_TRUE(sat[sys.stateOf({"p"})]);
  // Fallback still resolves plain atoms.
  EXPECT_TRUE(checker.sat(parse("p"), {})[sys.stateOf({"p"})]);
  // Unknown comparisons error out.
  EXPECT_THROW(checker.sat(parse("p = banana"), {}), ModelError);
}

TEST(ExplicitChecker, BooleanComparisonAtoms) {
  ExplicitSystem sys = chainSystem();
  ExplicitChecker checker(sys);
  EXPECT_TRUE(checker.sat(parse("p = 1"), {})[sys.stateOf({"p"})]);
  EXPECT_TRUE(checker.sat(parse("p = 0"), {})[sys.stateOf({})]);
  EXPECT_TRUE(checker.sat(parse("q = TRUE"), {})[sys.stateOf({"q"})]);
}

}  // namespace
}  // namespace cmc::kripke

namespace cmc::kripke {
namespace {

using ctl::parse;

TEST(ExplicitTraces, FindPathIsShortest) {
  ExplicitSystem sys({"p", "q"});
  const State s0 = sys.stateOf({"p"});
  const State s1 = sys.stateOf({});
  const State s2 = sys.stateOf({"q"});
  const State s3 = sys.stateOf({"p", "q"});
  sys.addTransition(s0, s1);
  sys.addTransition(s1, s2);
  sys.addTransition(s0, s3);
  sys.addTransition(s3, s2);  // alternative route, same length
  sys.makeReflexive();
  ExplicitChecker checker(sys);

  StateSet from(sys.stateCount(), false);
  from[s0] = true;
  StateSet target(sys.stateCount(), false);
  target[s2] = true;
  const auto path = checker.findPath(from, target);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->front(), s0);
  EXPECT_EQ(path->back(), s2);
  // Consecutive states are actual transitions.
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(sys.hasTransition((*path)[i], (*path)[i + 1]));
  }
  // Start inside the target: single-state path.
  StateSet self(sys.stateCount(), false);
  self[s2] = true;
  const auto trivial = checker.findPath(self, target);
  ASSERT_TRUE(trivial.has_value());
  EXPECT_EQ(trivial->size(), 1u);
  // Unreachable target.
  StateSet nowhere(sys.stateCount(), false);
  EXPECT_FALSE(checker.findPath(from, nowhere).has_value());
}

TEST(ExplicitTraces, AgCounterexamplePath) {
  ExplicitSystem sys({"p", "q"});
  const State s0 = sys.stateOf({"p"});
  const State s1 = sys.stateOf({});
  const State s2 = sys.stateOf({"q"});
  sys.addTransition(s0, s1);
  sys.addTransition(s1, s2);
  sys.makeReflexive();
  ExplicitChecker checker(sys);
  ctl::Restriction r;
  r.init = parse("p & !q");  // exactly s0 (the {p,q} state violates !q)
  r.fairness = {parse("TRUE")};
  const auto path = checker.agCounterexamplePath(r, parse("!q"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->back(), s2);
  // AG holds: no counterexample reachable from p-states.
  EXPECT_FALSE(
      checker.agCounterexamplePath(r, parse("p | !p")).has_value());
}

}  // namespace
}  // namespace cmc::kripke
