// Tests for --engine race and the replayed-verdict trace semantics: a
// deterministically delayed lane loses in both directions (winner recorded
// last, loser Cancelled, no quarantine), raced verdicts agree with the
// fixed engines on every model, cached raced obligations replay with the
// winning engine attributed, and a cache-served Fails without a stored
// counterexample is surfaced as trace_unavailable — or re-checked on
// demand under --trace-force.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/obligation_cache.hpp"
#include "service/scheduler.hpp"
#include "service/snapshot.hpp"
#include "util/failpoint.hpp"

namespace cmc::service {
namespace {

namespace fs = std::filesystem;

const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)";

const char* kFailingSmv = R"(
MODULE stuck
VAR s : {a, b};
ASSIGN next(s) := b;
SPEC AG (s = a)
)";

VerificationJob raceJob(const char* smv) {
  VerificationJob job;
  job.name = "race";
  job.smvText = smv;
  job.options.engine = symbolic::EngineMode::Race;
  return job;
}

ServiceOptions withThreads(unsigned n) {
  ServiceOptions opts;
  opts.threads = n;
  return opts;
}

/// A scratch directory under the system temp dir, wiped on entry.
fs::path scratchDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

class RaceTest : public ::testing::Test {
 protected:
  void TearDown() override { util::Failpoint::disarmAll(); }
};

/// Run a race with `delaySite` armed so the other lane deterministically
/// wins, and return the single obligation outcome.
ObligationOutcome runDelayedRace(const char* delaySite, const char* smv,
                                 RunTrace* trace) {
  util::Failpoint::site(delaySite).arm(util::Failpoint::Action::Delay, 400);
  VerificationService svc(withThreads(1));
  const JobReport report = svc.run(raceJob(smv), trace);
  util::Failpoint::disarmAll();
  EXPECT_EQ(report.obligations.size(), 1u);
  return report.obligations.front();
}

TEST_F(RaceTest, SymbolicWinsWhenBesLaneIsDelayed) {
  RunTrace trace;
  const ObligationOutcome o =
      runDelayedRace("race.bes_delay", kChainSmv, &trace);
  EXPECT_EQ(o.verdict, Verdict::Holds);

  // Both lanes are recorded, loser first and the winner last (so
  // attempts.back() names the deciding engine for journal and cache).
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_EQ(o.attempts[0].engine, "bes");
  EXPECT_EQ(o.attempts[0].verdict, Verdict::Cancelled);
  EXPECT_NE(o.attempts[1].engine, "bes");
  EXPECT_EQ(o.attempts[1].verdict, Verdict::Holds);

  // The engine-choice record attributes the raced decision.
  EXPECT_NE(o.engineChoiceJson.find("\"raced\": true"), std::string::npos)
      << o.engineChoiceJson;
  EXPECT_NE(o.engineChoiceJson.find("\"winner\": \"" + o.attempts[1].engine),
            std::string::npos)
      << o.engineChoiceJson;
  EXPECT_NE(o.engineChoiceJson.find("\"loser\": \"bes\""), std::string::npos);

  // A cancelled loser is a cancelled loser — never a quarantined worker.
  EXPECT_EQ(trace.countContaining("\"event\": \"race_decided\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"quarantine\""), 0u);
  EXPECT_EQ(trace.countContaining("\"event\": \"retry\""), 0u);
}

TEST_F(RaceTest, BesWinsWhenSymbolicLaneIsDelayed) {
  RunTrace trace;
  const ObligationOutcome o =
      runDelayedRace("race.symbolic_delay", kChainSmv, &trace);
  EXPECT_EQ(o.verdict, Verdict::Holds);

  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_NE(o.attempts[0].engine, "bes");
  EXPECT_EQ(o.attempts[0].verdict, Verdict::Cancelled);
  EXPECT_EQ(o.attempts[1].engine, "bes");
  EXPECT_EQ(o.attempts[1].verdict, Verdict::Holds);

  EXPECT_NE(o.engineChoiceJson.find("\"winner\": \"bes\""),
            std::string::npos)
      << o.engineChoiceJson;
  EXPECT_EQ(trace.countContaining("\"event\": \"race_decided\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"quarantine\""), 0u);
}

TEST_F(RaceTest, RacedFailsCarriesTheCounterexample) {
  RunTrace trace;
  const ObligationOutcome o =
      runDelayedRace("race.bes_delay", kFailingSmv, &trace);
  EXPECT_EQ(o.verdict, Verdict::Fails);
  EXPECT_FALSE(o.counterexample.empty());
}

TEST_F(RaceTest, RacedVerdictsAgreeWithFixedEnginesOnEveryModel) {
  for (const fs::directory_entry& entry :
       fs::directory_iterator(CMC_MODELS_DIR)) {
    if (entry.path().extension() != ".smv") continue;
    std::ifstream in(entry.path());
    std::ostringstream buf;
    buf << in.rdbuf();

    VerificationJob job;
    job.name = entry.path().stem().string();
    job.smvText = buf.str();

    job.options.engine = symbolic::EngineMode::Partitioned;
    VerificationService fixed(withThreads(2));
    const JobReport fixedReport = fixed.run(job, nullptr);

    job.options.engine = symbolic::EngineMode::Race;
    VerificationService raced(withThreads(2));
    const JobReport racedReport = raced.run(job, nullptr);

    ASSERT_EQ(racedReport.obligations.size(),
              fixedReport.obligations.size())
        << entry.path().filename();
    for (std::size_t i = 0; i < racedReport.obligations.size(); ++i) {
      EXPECT_EQ(racedReport.obligations[i].verdict,
                fixedReport.obligations[i].verdict)
          << entry.path().filename() << " "
          << racedReport.obligations[i].id;
    }
  }
}

TEST_F(RaceTest, CachedRacedObligationReplaysWithWinningEngine) {
  util::Failpoint::site("race.symbolic_delay")
      .arm(util::Failpoint::Action::Delay, 400);
  VerificationService svc(withThreads(1));
  const JobReport cold = svc.run(raceJob(kChainSmv), nullptr);
  util::Failpoint::disarmAll();
  ASSERT_EQ(cold.obligations.size(), 1u);
  EXPECT_EQ(cold.obligations.front().verdictSource, "checked");
  ASSERT_EQ(cold.obligations.front().attempts.size(), 2u);
  const std::string winner = cold.obligations.front().attempts.back().engine;
  EXPECT_EQ(winner, "bes");

  // The cache entry is the race winner's verdict; a replay names it.
  const JobReport warm = svc.run(raceJob(kChainSmv), nullptr);
  ASSERT_EQ(warm.obligations.size(), 1u);
  const ObligationOutcome& o = warm.obligations.front();
  EXPECT_EQ(o.verdictSource, "cache");
  EXPECT_TRUE(o.attempts.empty());
  EXPECT_NE(o.engineChoiceJson.find("\"engine\": \"" + winner + "\""),
            std::string::npos)
      << o.engineChoiceJson;
  EXPECT_NE(o.engineChoiceJson.find("cache replay"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replayed Fails without a stored counterexample (satellite bugfix): the
// trace must say so instead of silently presenting a Fails that looks
// uninvestigable, and --trace-force re-checks to regenerate the trace.
// ---------------------------------------------------------------------------

/// Seed `dir` with a decided Fails for kFailingSmv's one obligation whose
/// counterexample was not stored (an old-format or trimmed cache entry).
std::string seedCounterexampleFreeFails(const fs::path& dir,
                                        const JobOptions& options) {
  VerificationJob job;
  job.name = "race";
  job.smvText = kFailingSmv;
  job.options = options;
  const SnapshotResult snap = buildSnapshot(job, /*wantCanon=*/true);
  EXPECT_TRUE(snap.snapshot) << snap.error;
  const std::vector<ObligationRef> refs =
      enumerateObligations(*snap.snapshot, job.options);
  EXPECT_EQ(refs.size(), 1u);
  EXPECT_FALSE(refs.front().fingerprint.empty());

  ObligationCache::Options copts;
  copts.dir = dir.string();
  ObligationCache cache(copts);
  CachedVerdict v;
  v.verdict = Verdict::Fails;
  v.rule = "direct";
  v.engine = "partitioned";
  EXPECT_TRUE(cache.insert(refs.front().fingerprint, v));
  return refs.front().fingerprint;
}

TEST_F(RaceTest, CacheServedFailsWithoutCounterexampleIsAnnounced) {
  const fs::path dir = scratchDir("cmc_trace_unavailable");
  VerificationJob job;
  job.name = "race";
  job.smvText = kFailingSmv;
  seedCounterexampleFreeFails(dir, job.options);

  ServiceOptions so = withThreads(1);
  so.cacheDir = dir.string();
  VerificationService svc(so);
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);
  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  // The verdict is served as stored — but the trace says the
  // counterexample is not reconstructible from the replay.
  EXPECT_EQ(o.verdict, Verdict::Fails);
  EXPECT_EQ(o.verdictSource, "cache");
  EXPECT_TRUE(o.counterexample.empty());
  EXPECT_EQ(trace.countContaining("\"event\": \"trace_unavailable\""), 1u);
  EXPECT_EQ(trace.countContaining("\"event\": \"trace_forced_recheck\""), 0u);
  fs::remove_all(dir);
}

TEST_F(RaceTest, TraceForceRechecksACounterexampleFreeReplay) {
  const fs::path dir = scratchDir("cmc_trace_force");
  VerificationJob job;
  job.name = "race";
  job.smvText = kFailingSmv;
  // traceForce must not change the fingerprint — the seeded entry is
  // written without it and must still be the one the forced run hits.
  seedCounterexampleFreeFails(dir, job.options);
  job.options.traceForce = true;

  ServiceOptions so = withThreads(1);
  so.cacheDir = dir.string();
  VerificationService svc(so);
  RunTrace trace;
  const JobReport report = svc.run(job, &trace);
  ASSERT_EQ(report.obligations.size(), 1u);
  const ObligationOutcome& o = report.obligations.front();
  // Re-checked on demand: same verdict, fresh counterexample.
  EXPECT_EQ(o.verdict, Verdict::Fails);
  EXPECT_EQ(o.verdictSource, "checked");
  EXPECT_FALSE(o.counterexample.empty());
  EXPECT_FALSE(o.attempts.empty());
  EXPECT_EQ(trace.countContaining("\"event\": \"trace_forced_recheck\""), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cmc::service
