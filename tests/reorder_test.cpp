// Tests for dynamic variable reordering (adjacent swaps and sifting):
// swaps must preserve every externally referenced function, and sifting
// must find known-better orders.
#include <gtest/gtest.h>

#include <random>

#include "bdd/manager.hpp"

namespace cmc::bdd {
namespace {

/// Evaluate f on every assignment of `nvars` variables.
std::vector<bool> truthTable(const Manager& mgr, const Bdd& f,
                             std::uint32_t nvars) {
  std::vector<bool> table;
  for (std::uint32_t bits = 0; bits < (1u << nvars); ++bits) {
    std::vector<bool> assignment(nvars);
    for (std::uint32_t v = 0; v < nvars; ++v) {
      assignment[v] = ((bits >> v) & 1u) != 0;
    }
    table.push_back(mgr.eval(f, assignment));
  }
  return table;
}

TEST(Reorder, SwapPreservesFunctions) {
  Manager mgr;
  const std::uint32_t n = 4;
  const Bdd f = (mgr.bddVar(0) & mgr.bddVar(1)) | (mgr.bddVar(2) ^ mgr.bddVar(3));
  const Bdd g = mgr.bddVar(1).iff(mgr.bddVar(2));
  const auto tableF = truthTable(mgr, f, n);
  const auto tableG = truthTable(mgr, g, n);

  for (std::uint32_t level = 0; level + 1 < n; ++level) {
    mgr.swapAdjacentLevels(level);
    EXPECT_EQ(truthTable(mgr, f, n), tableF) << "after swap at " << level;
    EXPECT_EQ(truthTable(mgr, g, n), tableG);
  }
  // Swapping back restores the original order.
  for (std::uint32_t level = n - 1; level-- > 0;) {
    mgr.swapAdjacentLevels(level);
  }
  EXPECT_EQ(truthTable(mgr, f, n), tableF);
  EXPECT_GE(mgr.stats().levelSwaps, 6u);
}

TEST(Reorder, SwapUpdatesLevelMaps) {
  Manager mgr;
  mgr.ensureVars(3);
  EXPECT_EQ(mgr.levelOfVar(0), 0u);
  mgr.swapAdjacentLevels(0);
  EXPECT_EQ(mgr.levelOfVar(0), 1u);
  EXPECT_EQ(mgr.levelOfVar(1), 0u);
  EXPECT_EQ(mgr.varAtLevel(0), 1u);
  EXPECT_EQ(mgr.varAtLevel(1), 0u);
  EXPECT_EQ(mgr.currentOrder(), (std::vector<std::uint32_t>{1, 0, 2}));
}

TEST(Reorder, CanonicityHoldsAfterSwaps) {
  // Rebuilding the same functions after a swap must hit the same nodes.
  Manager mgr;
  const Bdd f = (mgr.bddVar(0) & mgr.bddVar(1)) | mgr.bddVar(2);
  mgr.swapAdjacentLevels(0);
  const Bdd f2 =
      (mgr.bddVar(0) & mgr.bddVar(1)) | mgr.bddVar(2);
  EXPECT_EQ(f, f2);
  // Operations still behave after the swap.
  EXPECT_EQ(f & !f, mgr.bddFalse());
  EXPECT_EQ(mgr.exists(f, mgr.cube({0, 1, 2})), mgr.bddTrue());
}

TEST(Reorder, SiftingFindsTheGoodOrderForAdderFunction) {
  // The classic example: x0&x1 | x2&x3 | x4&x5 is linear under the
  // interleaved order and exponential under the split order
  // x0,x2,x4,x1,x3,x5.  Build it under the BAD order and sift.
  Manager mgr;
  mgr.ensureVars(6);
  // Impose the bad order by renaming: pairs are (0,3), (1,4), (2,5).
  const Bdd bad = (mgr.bddVar(0) & mgr.bddVar(3)) |
                  (mgr.bddVar(1) & mgr.bddVar(4)) |
                  (mgr.bddVar(2) & mgr.bddVar(5));
  const auto table = truthTable(mgr, bad, 6);
  const std::uint64_t before = mgr.dagSize(bad);
  const std::uint64_t after = mgr.reorderSift();
  EXPECT_LT(mgr.dagSize(bad), before);
  EXPECT_EQ(mgr.dagSize(bad), 6u);  // optimal: one node per variable
  EXPECT_EQ(truthTable(mgr, bad, 6), table);
  EXPECT_GE(mgr.stats().reorderings, 1u);
  EXPECT_GT(after, 0u);
}

TEST(Reorder, SiftVariablePreservesRandomFunctions) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> coin(0, 2);
  Manager mgr;
  const std::uint32_t n = 6;
  mgr.ensureVars(n);
  std::vector<Bdd> functions;
  for (int k = 0; k < 4; ++k) {
    Bdd f = mgr.bddFalse();
    for (int c = 0; c < 4; ++c) {
      Bdd term = mgr.bddTrue();
      for (std::uint32_t v = 0; v < n; ++v) {
        const int choice = coin(rng);
        if (choice == 0) term &= mgr.bddVar(v);
        if (choice == 1) term &= mgr.bddNVar(v);
      }
      f |= term;
    }
    functions.push_back(f);
  }
  std::vector<std::vector<bool>> tables;
  for (const Bdd& f : functions) tables.push_back(truthTable(mgr, f, n));

  for (std::uint32_t v = 0; v < n; ++v) {
    mgr.siftVariable(v);
    for (std::size_t k = 0; k < functions.size(); ++k) {
      EXPECT_EQ(truthTable(mgr, functions[k], n), tables[k])
          << "after sifting variable " << v;
    }
  }
}

TEST(Reorder, SwapAfterGcSkipsFreeNodesByPoisonedLabel) {
  // Swaps identify free-list nodes by their poisoned label alone (no
  // per-swap free bitmap).  Create garbage first, collect it so the arena
  // holds poisoned nodes, then swap every level: the poisoned nodes must
  // be ignored and every surviving function preserved.
  Manager mgr;
  const std::uint32_t n = 5;
  mgr.ensureVars(n);
  const Bdd keep = (mgr.bddVar(0) & mgr.bddVar(2)) |
                   (mgr.bddVar(1) ^ mgr.bddVar(4)) | mgr.bddVar(3);
  {
    // Scoped garbage touching every level.
    const Bdd dead1 = mgr.bddVar(0).iff(mgr.bddVar(3)) & mgr.bddVar(1);
    const Bdd dead2 = (mgr.bddVar(2) | mgr.bddVar(4)) ^ mgr.bddVar(0);
  }
  mgr.collectGarbage();
  const auto table = truthTable(mgr, keep, n);

  for (std::uint32_t level = 0; level + 1 < n; ++level) {
    mgr.swapAdjacentLevels(level);
    EXPECT_EQ(truthTable(mgr, keep, n), table) << "after swap at " << level;
  }
  // The manager stays consistent for new allocations (free nodes reused
  // through mk get fresh labels) and further collections.
  const Bdd fresh = keep & mgr.bddVar(2);
  EXPECT_EQ(mgr.eval(fresh, {false, false, true, true, false}), true);
  mgr.collectGarbage();
  EXPECT_EQ(truthTable(mgr, keep, n), table);
}

TEST(Reorder, SiftingIsDeterministicAcrossIdenticalManagers) {
  // Regression for the free-list handling in swapAdjacentLevels: two
  // managers holding the same functions must sift through the same number
  // of swaps to the same final order and node count.
  const auto build = [](Manager& mgr) {
    mgr.ensureVars(6);
    Bdd f = (mgr.bddVar(0) & mgr.bddVar(3)) |
            (mgr.bddVar(1) & mgr.bddVar(4)) |
            (mgr.bddVar(2) & mgr.bddVar(5));
    {
      // Garbage, so sifting runs over an arena with a populated free list.
      const Bdd dead = f ^ mgr.bddVar(1);
    }
    mgr.collectGarbage();
    return f;
  };
  Manager a, b;
  const Bdd fa = build(a);
  const Bdd fb = build(b);

  const std::uint64_t liveA = a.reorderSift();
  const std::uint64_t liveB = b.reorderSift();
  EXPECT_EQ(liveA, liveB);
  EXPECT_EQ(a.stats().levelSwaps, b.stats().levelSwaps);
  EXPECT_EQ(a.currentOrder(), b.currentOrder());
  EXPECT_EQ(a.dagSize(fa), b.dagSize(fb));
  EXPECT_EQ(a.dagSize(fa), 6u);  // the interleaved optimum
}

TEST(Reorder, QuantificationRespectsNewOrder) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  const Bdd z = mgr.bddVar(2);
  const Bdd f = (x & y) | ((!x) & z);
  mgr.swapAdjacentLevels(0);
  mgr.swapAdjacentLevels(1);
  // Semantics of quantification are order-independent.
  EXPECT_EQ(mgr.exists(f, mgr.cube({0})), y | z);
  EXPECT_EQ(mgr.forall(f, mgr.cube({0})), y & z);
  EXPECT_EQ(mgr.andExists(f, x, mgr.cube({0})), y);
}

}  // namespace
}  // namespace cmc::bdd
