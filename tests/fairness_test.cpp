// Fairness semantics tests, including the paper's Figure 2: a system that
// needs *strong* fairness (Rule 5) — weak fairness (Rule 4) is not enough
// because the helpful transition is not continuously enabled.
#include <gtest/gtest.h>

#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"

namespace cmc::afs {
namespace {

using ctl::parse;

// Figure 2 (abstracted): a ring of regions p1..p6 with q reachable only
// from p1; the system cycles through the regions, so the p1 ⇒ EX q
// transition is enabled only intermittently.  We model it as a counter:
//   s ∈ {p1..p6, q};  pi -> p(i+1 mod 6);  additionally p1 -> q; q -> q.
const char* kFigure2Smv = R"(
MODULE figure2
VAR s : {p1, p2, p3, p4, p5, p6, q};
ASSIGN
  next(s) :=
    case
      s = p1 : {p2, q};
      s = p2 : p3;
      s = p3 : p4;
      s = p4 : p5;
      s = p5 : p6;
      s = p6 : p1;
      1 : s;
    esac;
)";

ctl::FormulaPtr pRegion() {
  return parse("s=p1 | s=p2 | s=p3 | s=p4 | s=p5 | s=p6");
}

TEST(Figure2, WeakFairnessIsNotEnough) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kFigure2Smv);
  symbolic::Checker checker(mod.sys);
  // Weak-fairness restriction r = (true, {¬p ∨ q}): the ring p2..p6 cycle
  // satisfies the constraint..? No: every ring state satisfies p, so
  // ¬p ∨ q is false throughout — the pure cycle is unfair under r, BUT the
  // paper's point is about rule applicability: Rule 4's lhs
  // p ⇒ AX(p ∨ q) holds, yet p ⇒ EX q fails (only p1 has the exit), so
  // Rule 4's premise is not satisfiable with p as a whole.
  comp::ProofTree proof;
  const auto g =
      comp::deriveRule4(checker, pRegion(), parse("s=q"), proof);
  EXPECT_FALSE(g.has_value());  // premise p ⇒ EX q fails (p2..p6)
}

TEST(Figure2, Rule5WithStrongFairnessSucceeds) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kFigure2Smv);
  symbolic::Checker checker(mod.sys);
  comp::ProofTree proof;
  const std::vector<ctl::FormulaPtr> ps = {
      parse("s=p1"), parse("s=p2"), parse("s=p3"),
      parse("s=p4"), parse("s=p5"), parse("s=p6")};
  const auto g = comp::deriveRule5(checker, ps, /*helpful=*/0,
                                   parse("s=q"), proof);
  ASSERT_TRUE(g.has_value());
  // Discharge the lhs on the (single-component) system: the AX step plus
  // every pj ⇒ EF p1 obligation.
  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(mod.sys);
  std::vector<ctl::Spec> conclusions;
  EXPECT_TRUE(verifier.discharge(*g, proof, &conclusions));
  ASSERT_EQ(conclusions.size(), 2u);
  // The conclusion holds under the strong-fairness restriction...
  symbolic::Checker composed(verifier.composed());
  EXPECT_TRUE(composed.holds(conclusions[0]));
  EXPECT_TRUE(composed.holds(conclusions[1]));
}

TEST(Figure2, ProgressFailsWithoutFairness) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kFigure2Smv);
  symbolic::Checker checker(mod.sys);
  const ctl::FormulaPtr prop =
      ctl::mkImplies(pRegion(), ctl::AU(pRegion(), parse("s=q")));
  EXPECT_FALSE(checker.holds(ctl::Restriction::trivial(), prop));
  // With the Rule 5 fairness constraint it holds.
  const ctl::Restriction r =
      comp::progressRestriction(pRegion(), parse("s=q"));
  EXPECT_TRUE(checker.holds(r, prop));
}

TEST(FairCtl, EmersonLeiMultipleConstraints) {
  // Two fairness constraints: infinitely often a, infinitely often b.
  // System: free boolean a, b (all transitions allowed).
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, R"(
MODULE free
VAR a : boolean;
    b : boolean;
)");
  symbolic::Checker checker(mod.sys);
  ctl::Restriction r;
  r.init = parse("TRUE");
  r.fairness = {parse("a"), parse("b")};
  // Along fair paths both a and b recur, so AF a and AF b hold everywhere.
  EXPECT_TRUE(checker.holds(r, parse("AF a")));
  EXPECT_TRUE(checker.holds(r, parse("AF b")));
  EXPECT_TRUE(checker.holds(r, parse("AF (a & AF b)")));
  // AG AF under fairness.
  EXPECT_TRUE(checker.holds(r, parse("AG AF a")));
  // But AF (a & b) can fail: a and b may never hold simultaneously.
  EXPECT_FALSE(checker.holds(r, parse("AF (a & b)")));
}

TEST(FairCtl, ContradictoryFairnessMakesAllPathsUnfair) {
  // Fairness {a, !a} is satisfiable (alternate), but fairness {FALSE} is
  // not: no fair paths exist, so AF FALSE holds vacuously and EX TRUE
  // fails everywhere.
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, R"(
MODULE free2
VAR a : boolean;
)");
  symbolic::Checker checker(mod.sys);
  ctl::Restriction contradictory;
  contradictory.init = parse("TRUE");
  contradictory.fairness = {parse("FALSE")};
  EXPECT_TRUE(checker.holds(contradictory, parse("AF FALSE")));
  EXPECT_FALSE(checker.holds(contradictory, parse("EX TRUE")));

  ctl::Restriction alternating;
  alternating.init = parse("TRUE");
  alternating.fairness = {parse("a"), parse("!a")};
  EXPECT_TRUE(checker.holds(alternating, parse("AF a & AF !a")));
}

}  // namespace
}  // namespace cmc::afs
