// Property-based validation of the paper's Lemmas 1-11 (§3.2) on random
// systems.  These are the foundations the compositional rules stand on, so
// each lemma is exercised exactly as stated.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace cmc::kripke {
namespace {

using cmc::test::atomNames;
using cmc::test::randomFormula;
using cmc::test::randomPropositional;
using cmc::test::randomSystem;

class LemmaProperty : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937 rng{static_cast<unsigned>(GetParam())};
};

// Lemma 1: ∘ is commutative and associative.
TEST_P(LemmaProperty, Lemma1CommutativeAssociative) {
  ExplicitSystem a = randomSystem(rng, 2);
  ExplicitSystem b = randomSystem(rng, 2);
  // Give b a partially overlapping alphabet.
  ExplicitSystem b2({"b", "c"});
  b.forEachTransition([&](State s, State t) { b2.addTransition(s, t); });
  ExplicitSystem c = randomSystem(rng, 1);

  EXPECT_TRUE(compose(a, b2).sameBehavior(compose(b2, a)));
  EXPECT_TRUE(compose(compose(a, b2), c).sameBehavior(
      compose(a, compose(b2, c))));
}

// Lemma 2: same-alphabet composition is the union of the relations.
TEST_P(LemmaProperty, Lemma2SameAlphabetUnion) {
  ExplicitSystem a = randomSystem(rng, 2);
  ExplicitSystem b = randomSystem(rng, 2);
  const ExplicitSystem composed = compose(a, b);
  // Union (both already reflexive, so reflexive closure adds nothing new).
  ExplicitSystem expected(atomNames(2));
  a.forEachTransition([&](State s, State t) { expected.addTransition(s, t); });
  b.forEachTransition([&](State s, State t) { expected.addTransition(s, t); });
  EXPECT_TRUE(composed.sameBehavior(expected));
}

// Lemma 3: (Σ, I) is the identity element.
TEST_P(LemmaProperty, Lemma3Identity) {
  ExplicitSystem a = randomSystem(rng, 3);  // reflexive by construction
  const ExplicitSystem composed = compose(a, identitySystem(a.atoms()));
  EXPECT_TRUE(composed.sameBehavior(a));
}

// Lemma 4: M ∘ M' equals the composition of the expansions over each
// other's alphabets.
TEST_P(LemmaProperty, Lemma4ExpansionComposition) {
  ExplicitSystem a = randomSystem(rng, 2);
  ExplicitSystem bRaw = randomSystem(rng, 2);
  ExplicitSystem b({"b", "c"});
  bRaw.forEachTransition([&](State s, State t) { b.addTransition(s, t); });

  const ExplicitSystem direct = compose(a, b);
  const ExplicitSystem viaExpansions =
      compose(expand(a, b.atoms()), expand(b, a.atoms()));
  EXPECT_TRUE(direct.sameBehavior(viaExpansions));
}

// Lemma 5: expansion preserves all CTL properties over the original
// alphabet: M ⊨ f  ⟺  M ∘ (Σ', I) ⊨ f for f ∈ C(Σ).
TEST_P(LemmaProperty, Lemma5ExpansionPreservesProperties) {
  ExplicitSystem m = randomSystem(rng, 2);
  const ExplicitSystem expanded = expand(m, {"z"});
  ExplicitChecker cm(m);
  ExplicitChecker ce(expanded);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  for (int i = 0; i < 8; ++i) {
    const ctl::FormulaPtr f = randomFormula(rng, m.atoms(), 3);
    EXPECT_EQ(cm.holds(trivial, f), ce.holds(trivial, f))
        << ctl::toString(f);
  }
}

// Lemma 6: M ⊨ (f ⇒ AXg)  ⟺  every transition from an f-state lands in a
// g-state (f, g propositional).
TEST_P(LemmaProperty, Lemma6AXCharacterization) {
  ExplicitSystem m = randomSystem(rng, 3);
  ExplicitChecker checker(m);
  for (int i = 0; i < 6; ++i) {
    const ctl::FormulaPtr f = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr g = randomPropositional(rng, m.atoms(), 2);
    const bool lhs = checker.holds(ctl::Restriction::trivial(),
                                   ctl::mkImplies(f, ctl::AX(g)));
    const StateSet satF = checker.sat(f, {});
    const StateSet satG = checker.sat(g, {});
    bool rhs = true;
    m.forEachTransition([&](State s, State t) {
      if (satF[s] && !satG[t]) rhs = false;
    });
    EXPECT_EQ(lhs, rhs) << ctl::toString(f) << " => AX " << ctl::toString(g);
  }
}

// Lemma 7: M ⊨ (f ⇒ EXg)  ⟺  every f-state has some g-successor.
TEST_P(LemmaProperty, Lemma7EXCharacterization) {
  ExplicitSystem m = randomSystem(rng, 3);
  ExplicitChecker checker(m);
  for (int i = 0; i < 6; ++i) {
    const ctl::FormulaPtr f = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr g = randomPropositional(rng, m.atoms(), 2);
    const bool lhs = checker.holds(ctl::Restriction::trivial(),
                                   ctl::mkImplies(f, ctl::EX(g)));
    const StateSet satF = checker.sat(f, {});
    const StateSet satG = checker.sat(g, {});
    bool rhs = true;
    for (State s = 0; s < m.stateCount(); ++s) {
      if (!satF[s]) continue;
      bool some = false;
      for (State t : m.successors(s)) some = some || satG[t];
      if (!some) rhs = false;
    }
    EXPECT_EQ(lhs, rhs) << ctl::toString(f) << " => EX " << ctl::toString(g);
  }
}

// Lemma 8: the expansion preserves p ⇒ AXq / p ⇒ EXq strengthened with a
// propositional p' over the new (nonlocal) atoms.
TEST_P(LemmaProperty, Lemma8ExpansionWithFrameFormula) {
  ExplicitSystem m = randomSystem(rng, 2);
  const std::vector<std::string> extra = {"u", "v"};
  const ExplicitSystem expanded = expand(m, extra);
  ExplicitChecker cm(m);
  ExplicitChecker ce(expanded);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  for (int i = 0; i < 5; ++i) {
    const ctl::FormulaPtr p = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr q = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr pp = randomPropositional(rng, extra, 2);
    if (cm.holds(trivial, ctl::mkImplies(p, ctl::AX(q)))) {
      EXPECT_TRUE(ce.holds(
          trivial, ctl::mkImplies(ctl::mkAnd(p, pp),
                                  ctl::AX(ctl::mkAnd(q, pp)))));
    }
    if (cm.holds(trivial, ctl::mkImplies(p, ctl::EX(q)))) {
      EXPECT_TRUE(ce.holds(
          trivial, ctl::mkImplies(ctl::mkAnd(p, pp),
                                  ctl::EX(ctl::mkAnd(q, pp)))));
    }
  }
}

// Lemma 9: same with disjunction: (p ∨ p') ⇒ AX(q ∨ p').
TEST_P(LemmaProperty, Lemma9ExpansionWithDisjunction) {
  ExplicitSystem m = randomSystem(rng, 2);
  const std::vector<std::string> extra = {"u"};
  const ExplicitSystem expanded = expand(m, extra);
  ExplicitChecker cm(m);
  ExplicitChecker ce(expanded);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  for (int i = 0; i < 5; ++i) {
    const ctl::FormulaPtr p = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr q = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr pp = randomPropositional(rng, extra, 1);
    if (cm.holds(trivial, ctl::mkImplies(p, ctl::AX(q)))) {
      EXPECT_TRUE(ce.holds(
          trivial, ctl::mkImplies(ctl::mkOr(p, pp),
                                  ctl::AX(ctl::mkOr(q, pp)))));
    }
  }
}

// Lemma 10: propositional formulas project between systems whose alphabets
// are related by inclusion: M,s ⊨ p ⟺ M',s' ⊨ p when s = s' ∩ Σ.
TEST_P(LemmaProperty, Lemma10Projection) {
  ExplicitSystem m = randomSystem(rng, 2);
  ExplicitSystem mp = randomSystem(rng, 3);  // Σ ⊂ Σ' ({a,b} ⊂ {a,b,c})
  ExplicitChecker cm(m);
  ExplicitChecker cp(mp);
  for (int i = 0; i < 6; ++i) {
    const ctl::FormulaPtr p = randomPropositional(rng, m.atoms(), 2);
    const StateSet satM = cm.sat(p, {});
    const StateSet satP = cp.sat(p, {});
    for (State sp = 0; sp < mp.stateCount(); ++sp) {
      const State s = sp & 0b11u;  // project onto {a, b}
      EXPECT_EQ(satM[s], satP[sp]) << ctl::toString(p);
    }
  }
}

// Lemma 11: strengthening fairness preserves f ⇒ AXg.
TEST_P(LemmaProperty, Lemma11FairnessStrengthening) {
  ExplicitSystem m = randomSystem(rng, 3);
  ExplicitChecker checker(m);
  for (int i = 0; i < 5; ++i) {
    const ctl::FormulaPtr f = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr g = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr fc = randomPropositional(rng, m.atoms(), 2);
    const ctl::FormulaPtr spec = ctl::mkImplies(f, ctl::AX(g));
    if (checker.holds(ctl::Restriction::trivial(), spec)) {
      ctl::Restriction r;
      r.init = ctl::mkTrue();
      r.fairness = {fc};
      EXPECT_TRUE(checker.holds(r, spec))
          << ctl::toString(spec) << " under fairness " << ctl::toString(fc);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace cmc::kripke
