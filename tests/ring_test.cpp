// Tests for the token-ring case study: model shape, compositional safety
// and liveness, scaling of obligations, and mutation tests.
#include <gtest/gtest.h>

#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "ring/token_ring.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"

namespace cmc::ring {
namespace {

TEST(TokenRing, StationModelShape) {
  const std::string smv = stationSmv(1, 3);
  EXPECT_NE(smv.find("st1"), std::string::npos);
  EXPECT_NE(smv.find("tok1"), std::string::npos);
  EXPECT_NE(smv.find("tok2"), std::string::npos);  // writes the successor's
  EXPECT_EQ(smv.find("tok0"), std::string::npos);  // not the predecessor's
  // The last station wraps around.
  EXPECT_NE(stationSmv(2, 3).find("tok0"), std::string::npos);
  symbolic::Context ctx;
  EXPECT_THROW(buildRing(ctx, 1), ModelError);
}

TEST(TokenRing, StationBehavior) {
  symbolic::Context ctx;
  RingComponents comps = buildRing(ctx, 2);
  symbolic::Checker checker(comps.stations[0].sys);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  // Holding the token while wanting leads into cs.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("st0=want & tok0 -> EX st0=cs")));
  // Idle with the token passes it on.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("st0=idle & tok0 -> EX (!tok0 & tok1)")));
  // Without the token a station cannot enter.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("st0=want & !tok0 -> AX !(st0=cs)")));
  // Leaving cs passes the token.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("st0=cs & tok0 -> AX (st0=idle | st0=cs)")));
}

TEST(TokenRing, FormulaConstructors) {
  EXPECT_TRUE(ctl::isPropositional(tokenExactlyAt(1, 3)));
  EXPECT_TRUE(ctl::isPropositional(ringInvariant(3)));
  EXPECT_TRUE(ctl::isPropositional(mutualExclusion(3)));
  EXPECT_TRUE(ctl::isPropositional(ringInit(3)));
  const auto vars = ctl::collectVariables(tokenExactlyAt(1, 3));
  EXPECT_EQ(vars, (std::set<std::string>{"tok0", "tok1", "tok2"}));
}

TEST(TokenRing, SafetyAndLivenessForTwoStations) {
  const RingReport report = verifyTokenRing(2, true, /*crossCheck=*/true);
  EXPECT_TRUE(report.safety);
  EXPECT_TRUE(report.liveness);
  EXPECT_TRUE(report.safetyCrossCheck);
  EXPECT_TRUE(report.livenessCrossCheck);
  EXPECT_TRUE(report.proof.valid());
}

TEST(TokenRing, ObligationsScaleQuadratically) {
  // 3(n-1)+1 guarantees, each discharged on n expansions, plus safety:
  // the obligation count is Θ(n²) while the monolithic state space is
  // exponential (12^n states).
  const RingReport r2 = verifyTokenRing(2, true, false);
  const RingReport r3 = verifyTokenRing(3, true, false);
  EXPECT_TRUE(r2.allOk());
  EXPECT_TRUE(r3.allOk());
  EXPECT_GT(r3.componentChecks, r2.componentChecks);
  EXPECT_LT(r3.componentChecks, 4 * r2.componentChecks);
}

TEST(TokenRing, SafetyOnly) {
  const RingReport report = verifyTokenRing(4, /*liveness=*/false, false);
  EXPECT_TRUE(report.safety);
  EXPECT_FALSE(report.liveness);  // not attempted
  EXPECT_TRUE(report.proof.valid());
  EXPECT_EQ(report.componentChecks, 4u);  // one step check per station
}

TEST(TokenRingMutation, StationThatEntersWithoutTokenBreaksSafety) {
  symbolic::Context ctx;
  // Station 0 ignores the token when entering.
  const std::string rogue = R"(
MODULE rogue0
VAR st0 : {idle, want, cs};
    tok0 : boolean;
    tok1 : boolean;
ASSIGN
  next(st0) :=
    case
      st0 = idle : {idle, want};
      st0 = want : cs;  -- BUG: no token check
      st0 = cs : idle;
      1 : st0;
    esac;
  next(tok0) := case st0 = idle & tok0 : 0; st0 = cs & tok0 : 0; 1 : tok0; esac;
  next(tok1) := case st0 = idle & tok0 : 1; st0 = cs & tok0 : 1; 1 : tok1; esac;
)";
  smv::ElaboratedModule station0 = smv::elaborateText(ctx, rogue);
  symbolic::addReflexive(station0.sys);
  smv::ElaboratedModule station1 =
      smv::elaborateText(ctx, stationSmv(1, 2));
  symbolic::addReflexive(station1.sys);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(station0.sys);
  verifier.addComponent(station1.sys);
  comp::ProofTree proof;
  EXPECT_FALSE(verifier.verifyInvariance(ringInit(2), ringInvariant(2),
                                         mutualExclusion(2), proof,
                                         "rogue"));
  EXPECT_FALSE(proof.valid());
  // And the violation is real, not an artifact of the proof strategy: the
  // composed system genuinely violates mutual exclusion.
  const symbolic::SymbolicSystem whole =
      symbolic::compose(station0.sys, station1.sys);
  symbolic::Checker composed(whole);
  ctl::Restriction r;
  r.init = ringInit(2);
  r.fairness = {ctl::mkTrue()};
  EXPECT_FALSE(composed.holds(r, ctl::AG(mutualExclusion(2))));
}

TEST(TokenRingMutation, TokenHoarderBreaksLiveness) {
  // Station 1 never passes the token: the Rule 4 premise for its exit hop
  // fails on the expansion.
  symbolic::Context ctx;
  const std::string hoarder = R"(
MODULE hoarder1
VAR st1 : {idle, want, cs};
    tok1 : boolean;
    tok0 : boolean;
ASSIGN
  next(st1) :=
    case
      st1 = idle : {idle, want};
      st1 = want & tok1 : cs;
      st1 = cs : idle;
      1 : st1;
    esac;
  next(tok1) := tok1;  -- BUG: keeps the token forever
  next(tok0) := tok0;
)";
  smv::ElaboratedModule station0 = smv::elaborateText(ctx, stationSmv(0, 2));
  symbolic::addReflexive(station0.sys);
  smv::ElaboratedModule station1 = smv::elaborateText(ctx, hoarder);
  symbolic::addReflexive(station1.sys);

  std::vector<symbolic::VarId> all = station0.sys.vars;
  all.insert(all.end(), station1.sys.vars.begin(), station1.sys.vars.end());
  symbolic::SymbolicSystem expanded = symbolic::expand(station1.sys, all);
  symbolic::Checker checker(expanded);
  comp::ProofTree proof;
  const auto g = comp::deriveRule4(
      checker,
      ctl::parse("!tok0 & tok1 & st1=idle & st0=want"),
      ctl::parse("tok0 & !tok1 & st0=want"), proof);
  EXPECT_FALSE(g.has_value());
}

}  // namespace
}  // namespace cmc::ring
