// Tests for the content-addressed obligation cache: fingerprint
// sensitivity (the restriction index r and the verdict-relevant options
// MUST be part of the key), LRU/tier mechanics, corruption-tolerant disk
// loading, and the service-level plumbing (hits served without checker
// attempts, only decided verdicts inserted, disk round-trips across
// service instances, shared cache under a concurrent batch).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/obligation_cache.hpp"
#include "service/scheduler.hpp"
#include "smv/fingerprint.hpp"
#include "util/failpoint.hpp"

namespace cmc::service {
namespace {

namespace fs = std::filesystem;

const char* kChainSmv = R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : b; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)";

VerificationJob chainJob() {
  VerificationJob job;
  job.name = "chain";
  job.smvText = kChainSmv;
  return job;
}

ServiceOptions withThreads(unsigned n) {
  ServiceOptions opts;
  opts.threads = n;
  return opts;
}

/// A scratch directory under the system temp dir, wiped on entry.
fs::path scratchDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(ObligationFingerprint, DeterministicAcrossFreshContexts) {
  // The property cache hits rely on: elaboration is deterministic, so the
  // same program text in a fresh context reproduces the same DAGs and the
  // same canonical string.  (Stability across *differently pre-populated*
  // contexts is deliberately not promised — a shifted bit order changes
  // ROBDD shapes and costs only a spurious miss, never a false hit.)
  symbolic::Context a;
  const smv::ElaboratedModule ma = smv::elaborateText(a, kChainSmv);
  const std::string canonA = smv::canonicalModule(a, ma);
  EXPECT_FALSE(canonA.empty());

  symbolic::Context b;
  const smv::ElaboratedModule mb = smv::elaborateText(b, kChainSmv);
  EXPECT_EQ(smv::canonicalModule(b, mb), canonA);

  // Serializing twice from the same context is stable too.
  EXPECT_EQ(smv::canonicalModule(a, ma), canonA);

  // A semantically different module (one transition rewired) must differ.
  symbolic::Context c;
  const smv::ElaboratedModule mc = smv::elaborateText(c, R"(
MODULE chain
VAR s : {a, b, c};
ASSIGN next(s) := case s = a : c; s = b : c; 1 : s; esac;
SPEC AG (s = a | s = b | s = c)
)");
  EXPECT_NE(smv::canonicalModule(c, mc), canonA);
}

TEST(ObligationFingerprint, RestrictionAndOptionsArePartOfTheKey) {
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
  const std::vector<std::string> canon{smv::canonicalModule(ctx, mod)};
  const ctl::Spec& spec = mod.specs.front();
  const JobOptions opts;

  const std::string base =
      obligationFingerprint(canon, 0, /*composed=*/false, spec, opts);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(obligationFingerprint(canon, 0, false, spec, opts), base);

  // ⊨_r verdicts are not transferable across restrictions: a different
  // initial condition or fairness set must change the address.
  ctl::Spec otherInit = spec;
  otherInit.r.init = ctl::eq("s", "b");
  EXPECT_NE(obligationFingerprint(canon, 0, false, otherInit, opts), base);
  ctl::Spec otherFair = spec;
  otherFair.r.fairness.push_back(ctl::eq("s", "a"));
  EXPECT_NE(obligationFingerprint(canon, 0, false, otherFair, opts), base);

  // Verdict-relevant options.
  JobOptions threshold = opts;
  threshold.clusterThreshold = 7;
  EXPECT_NE(obligationFingerprint(canon, 0, false, spec, threshold), base);
  JobOptions engine = opts;
  engine.engine = opts.engine == symbolic::EngineMode::Monolithic
                      ? symbolic::EngineMode::Partitioned
                      : symbolic::EngineMode::Monolithic;
  EXPECT_NE(obligationFingerprint(canon, 0, false, spec, engine), base);
  JobOptions reorder = opts;
  reorder.reorderBeforeCheck = !opts.reorderBeforeCheck;
  EXPECT_NE(obligationFingerprint(canon, 0, false, spec, reorder), base);

  // A composed obligation never aliases a component one.
  EXPECT_NE(obligationFingerprint(canon, 0, /*composed=*/true, spec, opts),
            base);
}

// ---------------------------------------------------------------------------
// Cache mechanics
// ---------------------------------------------------------------------------

TEST(ObligationCacheUnit, OnlyDecidedVerdictsAreCacheable) {
  EXPECT_TRUE(ObligationCache::cacheable(Verdict::Holds));
  EXPECT_TRUE(ObligationCache::cacheable(Verdict::Fails));
  EXPECT_FALSE(ObligationCache::cacheable(Verdict::Timeout));
  EXPECT_FALSE(ObligationCache::cacheable(Verdict::MemoryOut));
  EXPECT_FALSE(ObligationCache::cacheable(Verdict::Inconclusive));
  EXPECT_FALSE(ObligationCache::cacheable(Verdict::Error));

  ObligationCache cache;
  CachedVerdict v;
  v.verdict = Verdict::Inconclusive;
  EXPECT_FALSE(cache.insert("fp", v));
  v.verdict = Verdict::Holds;
  EXPECT_FALSE(cache.insert("", v));  // empty fingerprint = not addressable
  EXPECT_TRUE(cache.insert("fp", v));
  EXPECT_FALSE(cache.insert("fp", v));  // re-insert refreshes, not new
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ObligationCacheUnit, LruEvictsBeyondCapacity) {
  ObligationCache::Options opts;
  opts.capacity = 16;  // one entry per shard
  ObligationCache cache(opts);
  CachedVerdict v;
  v.verdict = Verdict::Holds;
  for (int i = 0; i < 256; ++i) {
    cache.insert("fingerprint-" + std::to_string(i), v);
  }
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().inserts, 256u);
}

TEST(ObligationCacheUnit, StoreLinesCarryTheJournalFraming) {
  // Satellite of the durability work: every appended store line is framed
  // with the journal's CRC helper (and flushed), so torn or bit-flipped
  // lines are rejected by checksum rather than half-parsed.
  const fs::path dir = scratchDir("cmc_obligation_cache_framing");
  {
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache cache(opts);
    CachedVerdict v;
    v.verdict = Verdict::Holds;
    v.rule = "direct";
    v.engine = "partitioned";
    v.seconds = 0.125;
    EXPECT_TRUE(cache.insert("aaaa", v));
    EXPECT_TRUE(cache.insert("bbbb", v));
  }
  std::vector<std::string> lines;
  {
    std::ifstream in(dir / "obligations.jsonl");
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  // Whichever process first appends to an empty store prepends the
  // versioned header; every line — header included — is CRC-framed.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("cmc-obligation-cache-v2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cmc_version\": \""), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"crc\": \""), std::string::npos);
    EXPECT_TRUE(unframeLine(line).has_value()) << line;
  }
  {
    // Flip one byte inside the first entry's payload: the checksum must
    // reject it on reload while the intact line still loads.
    std::string tampered = lines[1];
    tampered[10] ^= 1;
    std::ofstream out(dir / "obligations.jsonl");
    out << lines[0] << "\n" << tampered << "\n" << lines[2] << "\n";
  }
  ObligationCache::Options opts;
  opts.dir = dir.string();
  ObligationCache reloaded(opts);
  EXPECT_EQ(reloaded.stats().loaded, 1u);
  EXPECT_EQ(reloaded.stats().corruptLines, 1u);
  EXPECT_FALSE(reloaded.lookup("aaaa").has_value());
  EXPECT_TRUE(reloaded.lookup("bbbb").has_value());
  fs::remove_all(dir);
}

TEST(ObligationCacheUnit, LegacyUnframedStoreLinesStillLoad) {
  const fs::path dir = scratchDir("cmc_obligation_cache_legacy");
  fs::create_directories(dir);
  {
    // A store written before the CRC framing existed: bare JSONL.
    std::ofstream out(dir / "obligations.jsonl");
    out << "{\"fp\": \"old1\", \"verdict\": \"Holds\", \"rule\": \"direct\", "
           "\"engine\": \"partitioned\", \"seconds\": 0.5}\n";
  }
  ObligationCache::Options opts;
  opts.dir = dir.string();
  ObligationCache cache(opts);
  EXPECT_EQ(cache.stats().loaded, 1u);
  EXPECT_EQ(cache.stats().corruptLines, 0u);
  EXPECT_TRUE(cache.lookup("old1").has_value());
  fs::remove_all(dir);
}

TEST(ObligationCacheUnit, CorruptAndTruncatedDiskLinesAreSkipped) {
  const fs::path dir = scratchDir("cmc_obligation_cache_corrupt");
  {
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache cache(opts);
    CachedVerdict v;
    v.verdict = Verdict::Fails;
    v.rule = "direct";
    v.engine = "partitioned";
    v.seconds = 0.25;
    v.counterexample = "violating state: s=1 \"quoted\"\n";
    EXPECT_TRUE(cache.insert("aaaa", v));
    v.verdict = Verdict::Holds;
    v.counterexample.clear();
    EXPECT_TRUE(cache.insert("bbbb", v));
  }
  {
    // Sabotage the store: garbage, a truncated append, and a verdict that
    // must never be persisted.
    std::ofstream out(dir / "obligations.jsonl", std::ios::app);
    out << "not json at all\n";
    out << "{\"fp\": \"cccc\", \"verdict\": \"Holds\", \"rule\": \"dir";
    out << "\n";
    out << "{\"fp\": \"dddd\", \"verdict\": \"Timeout\", \"rule\": \"x\", "
           "\"engine\": \"y\", \"seconds\": 1}\n";
  }
  ObligationCache::Options opts;
  opts.dir = dir.string();
  ObligationCache reloaded(opts);
  EXPECT_EQ(reloaded.stats().loaded, 2u);
  EXPECT_EQ(reloaded.stats().corruptLines, 3u);
  const auto hit = reloaded.lookup("aaaa");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, Verdict::Fails);
  EXPECT_EQ(hit->rule, "direct");
  EXPECT_EQ(hit->engine, "partitioned");
  EXPECT_EQ(hit->counterexample, "violating state: s=1 \"quoted\"\n");
  EXPECT_TRUE(reloaded.lookup("bbbb").has_value());
  EXPECT_FALSE(reloaded.lookup("cccc").has_value());
  EXPECT_FALSE(reloaded.lookup("dddd").has_value());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Service integration
// ---------------------------------------------------------------------------

TEST(ObligationCacheService, IdenticalResubmissionIsServedFromCache) {
  VerificationService svc(withThreads(2));
  const JobReport cold = svc.run(chainJob());
  EXPECT_TRUE(cold.allHold());
  EXPECT_EQ(cold.cacheHits, 0u);
  EXPECT_EQ(cold.cacheMisses, 1u);
  EXPECT_EQ(cold.cacheInserts, 1u);
  ASSERT_EQ(cold.obligations.size(), 1u);
  EXPECT_EQ(cold.obligations.front().verdictSource, "checked");
  EXPECT_TRUE(cold.obligations.front().cacheInserted);
  EXPECT_FALSE(cold.obligations.front().fingerprint.empty());

  RunTrace trace;
  const JobReport warm = svc.run(chainJob(), &trace);
  EXPECT_TRUE(warm.allHold());
  EXPECT_EQ(warm.cacheHits, 1u);
  EXPECT_EQ(warm.cacheMisses, 0u);
  ASSERT_EQ(warm.obligations.size(), 1u);
  const ObligationOutcome& o = warm.obligations.front();
  EXPECT_EQ(o.verdictSource, "cache");
  EXPECT_EQ(o.verdict, cold.obligations.front().verdict);
  EXPECT_EQ(o.rule, cold.obligations.front().rule);
  EXPECT_TRUE(o.attempts.empty());  // zero checker invocations
  EXPECT_EQ(o.fingerprint, cold.obligations.front().fingerprint);
  EXPECT_EQ(trace.countContaining("\"event\": \"cache_hit\""), 1u);
  EXPECT_EQ(trace.countContaining("\"verdict_source\": \"cache\""), 1u);
  EXPECT_NE(warm.toJson().find("\"verdict_source\": \"cache\""),
            std::string::npos);
}

TEST(ObligationCacheService, RestrictionIndexIsPartOfTheKey) {
  // Same module, same formula — only r = (I, F) differs.  The cache must
  // miss: ⊨_r verdicts are not transferable across restrictions.
  VerificationService svc(withThreads(1));
  const auto jobWithInit = [](const std::string& value) {
    VerificationJob job;
    job.name = "chain-init-" + value;
    job.factory = [value](symbolic::Context& ctx) {
      smv::ElaboratedModule mod = smv::elaborateText(ctx, kChainSmv);
      for (ctl::Spec& spec : mod.specs) {
        spec.r.init = ctl::eq("s", value);
      }
      return std::vector<smv::ElaboratedModule>{std::move(mod)};
    };
    return job;
  };
  const JobReport first = svc.run(jobWithInit("a"));
  EXPECT_EQ(first.cacheMisses, 1u);
  const JobReport other = svc.run(jobWithInit("b"));
  EXPECT_EQ(other.cacheHits, 0u);
  EXPECT_EQ(other.cacheMisses, 1u);
  const JobReport again = svc.run(jobWithInit("a"));
  EXPECT_EQ(again.cacheHits, 1u);
  EXPECT_EQ(again.cacheMisses, 0u);
}

TEST(ObligationCacheService, ClusterThresholdIsPartOfTheKey) {
  VerificationService svc(withThreads(1));
  EXPECT_EQ(svc.run(chainJob()).cacheInserts, 1u);
  VerificationJob tuned = chainJob();
  tuned.options.clusterThreshold = 3;
  const JobReport report = svc.run(tuned);
  EXPECT_EQ(report.cacheHits, 0u);
  EXPECT_EQ(report.cacheMisses, 1u);
  EXPECT_EQ(report.cacheInserts, 1u);
  EXPECT_EQ(svc.cache()->size(), 2u);
}

TEST(ObligationCacheService, InconclusiveIsNeverCached) {
  VerificationService svc(withThreads(1));
  VerificationJob job = chainJob();
  job.options.limits.deadlineSeconds = 1e-9;
  const JobReport first = svc.run(job);
  ASSERT_EQ(first.obligations.size(), 1u);
  EXPECT_EQ(first.obligations.front().verdict, Verdict::Inconclusive);
  EXPECT_EQ(first.cacheInserts, 0u);
  EXPECT_EQ(svc.cache()->size(), 0u);
  // Resubmission must check again, not serve the non-verdict.
  const JobReport second = svc.run(job);
  EXPECT_EQ(second.cacheHits, 0u);
  ASSERT_EQ(second.obligations.size(), 1u);
  EXPECT_EQ(second.obligations.front().verdictSource, "checked");
}

TEST(ObligationCacheService, DisabledCacheReportsNothing) {
  ServiceOptions opts;
  opts.threads = 1;
  opts.cacheEnabled = false;
  VerificationService svc(opts);
  EXPECT_EQ(svc.cache(), nullptr);
  const JobReport report = svc.run(chainJob());
  EXPECT_TRUE(report.allHold());
  EXPECT_EQ(report.cacheHits + report.cacheMisses + report.cacheInserts, 0u);
  ASSERT_EQ(report.obligations.size(), 1u);
  EXPECT_EQ(report.obligations.front().verdictSource, "checked");
  EXPECT_TRUE(report.obligations.front().fingerprint.empty());
}

TEST(ObligationCacheService, DiskStoreRoundTripsAcrossServiceInstances) {
  const fs::path dir = scratchDir("cmc_obligation_cache_service");
  ServiceOptions opts;
  opts.threads = 2;
  opts.cacheDir = dir.string();
  {
    VerificationService svc(opts);
    const JobReport cold = svc.run(chainJob());
    EXPECT_EQ(cold.cacheInserts, 1u);
  }
  {
    VerificationService svc(opts);
    ASSERT_NE(svc.cache(), nullptr);
    EXPECT_EQ(svc.cache()->stats().loaded, 1u);
    const JobReport warm = svc.run(chainJob());
    EXPECT_EQ(warm.cacheHits, 1u);
    ASSERT_EQ(warm.obligations.size(), 1u);
    EXPECT_EQ(warm.obligations.front().verdictSource, "cache");
    EXPECT_TRUE(warm.obligations.front().attempts.empty());
  }
  fs::remove_all(dir);
}

TEST(ObligationCacheService, ConcurrentBatchSharesOneCache) {
  // 16 jobs with identical content race on one fingerprint across 8
  // workers: exactly one insert may win, every verdict must agree, and the
  // counters must balance.  (The sanitizer CI job runs this under TSan.)
  VerificationService svc(withThreads(8));
  std::vector<VerificationJob> jobs;
  for (int i = 0; i < 16; ++i) {
    VerificationJob job = chainJob();
    job.name = "chain-" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  const std::vector<JobReport> reports = svc.runBatch(jobs);
  ASSERT_EQ(reports.size(), jobs.size());
  std::uint64_t hits = 0, misses = 0, inserts = 0;
  for (const JobReport& report : reports) {
    EXPECT_TRUE(report.allHold()) << report.job;
    hits += report.cacheHits;
    misses += report.cacheMisses;
    inserts += report.cacheInserts;
  }
  EXPECT_EQ(hits + misses, jobs.size());
  EXPECT_EQ(inserts, 1u);  // one fingerprint, one winner
  EXPECT_EQ(svc.cache()->size(), 1u);
  const ObligationCacheStats stats = svc.cache()->stats();
  EXPECT_EQ(stats.hits, hits);
  EXPECT_EQ(stats.misses, misses);
  EXPECT_EQ(stats.inserts, inserts);
}

TEST(ObligationCacheService, TwoProcessesShareOneStoreWithoutTornLines) {
  // Multi-process safety satellite: a daemon and a one-shot `cmc check`
  // (or two daemons) pointed at the same --cache-dir append concurrently.
  // flock + single-write(2)-per-entry must keep every line whole: after
  // both processes finish, a fresh load sees every entry and zero corrupt
  // lines, and exactly one process won the header race.
  const fs::path dir = scratchDir("cmc_obligation_cache_two_process");
  constexpr int kPerProcess = 64;
  CachedVerdict v;
  v.verdict = Verdict::Holds;
  v.rule = "direct";
  v.engine = "partitioned";
  v.seconds = 0.01;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: its own cache instance on the shared dir; plain _exit so no
    // gtest teardown runs in the forked copy.
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache mine(opts);
    for (int i = 0; i < kPerProcess; ++i) {
      mine.insert("child-" + std::to_string(i), v);
    }
    ::_exit(0);
  }
  {
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache mine(opts);
    for (int i = 0; i < kPerProcess; ++i) {
      mine.insert("parent-" + std::to_string(i), v);
    }
  }
  int status = -1;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  ObligationCache::Options opts;
  opts.dir = dir.string();
  ObligationCache merged(opts);
  EXPECT_EQ(merged.stats().loaded,
            static_cast<std::uint64_t>(2 * kPerProcess));
  EXPECT_EQ(merged.stats().corruptLines, 0u);
  EXPECT_TRUE(merged.lookup("parent-0").has_value());
  EXPECT_TRUE(merged.lookup("child-" + std::to_string(kPerProcess - 1))
                  .has_value());

  // Exactly one header line despite the two-process creation race.
  std::size_t headers = 0;
  std::ifstream in(dir / "obligations.jsonl");
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("cmc-obligation-cache-v2") != std::string::npos) ++headers;
  }
  EXPECT_EQ(headers, 1u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Offline compaction (cmc cache compact)
// ---------------------------------------------------------------------------

TEST(ObligationCacheCompaction, LastWriteWinsAndCorruptLinesAreDropped) {
  const fs::path dir = scratchDir("cmc_obligation_cache_compact");
  {
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache cache(opts);
    CachedVerdict v;
    v.verdict = Verdict::Holds;
    v.rule = "direct";
    v.engine = "partitioned";
    v.seconds = 0.125;
    EXPECT_TRUE(cache.insert("aaaa", v));
    EXPECT_TRUE(cache.insert("bbbb", v));
    EXPECT_TRUE(cache.insert("cccc", v));
  }
  {
    // What a long-lived store accretes: a NEWER write for an existing
    // fingerprint (re-checked after an eviction), garbage from a torn
    // append, and a line from before the CRC framing existed.
    std::ofstream out(dir / "obligations.jsonl", std::ios::app);
    out << frameLine("{\"fp\": \"aaaa\", \"verdict\": \"Fails\", "
                     "\"rule\": \"rechecked\", \"engine\": \"monolithic\", "
                     "\"seconds\": 0.5}")
        << "\n";
    out << "{\"fp\": \"torn...\n";
    out << "{\"fp\": \"old1\", \"verdict\": \"Holds\", \"rule\": "
           "\"direct\", \"engine\": \"partitioned\", \"seconds\": 0.5}\n";
  }
  const std::uint64_t sizeBefore = fs::file_size(dir / "obligations.jsonl");

  CompactionResult result;
  std::string err;
  ASSERT_TRUE(compactObligationStore(dir.string(), &result, &err)) << err;
  EXPECT_EQ(result.entriesBefore, 5u);  // 3 + duplicate + legacy
  EXPECT_EQ(result.entriesAfter, 4u);
  EXPECT_EQ(result.duplicates, 1u);
  EXPECT_EQ(result.corrupt, 1u);
  EXPECT_EQ(result.bytesBefore, sizeBefore);
  EXPECT_LT(result.bytesAfter, result.bytesBefore);
  EXPECT_EQ(result.bytesAfter, fs::file_size(dir / "obligations.jsonl"));

  // The compacted store is fully framed (legacy line included) and loads
  // clean, with the duplicate resolved to the LAST write.
  {
    std::ifstream in(dir / "obligations.jsonl");
    std::string line;
    while (std::getline(in, line)) {
      EXPECT_TRUE(unframeLine(line).has_value()) << line;
    }
  }
  ObligationCache::Options opts;
  opts.dir = dir.string();
  ObligationCache reloaded(opts);
  EXPECT_EQ(reloaded.stats().loaded, 4u);
  EXPECT_EQ(reloaded.stats().corruptLines, 0u);
  const std::optional<CachedVerdict> winner = reloaded.lookup("aaaa");
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->verdict, Verdict::Fails);
  EXPECT_EQ(winner->rule, "rechecked");
  EXPECT_TRUE(reloaded.lookup("bbbb").has_value());
  EXPECT_TRUE(reloaded.lookup("cccc").has_value());
  EXPECT_TRUE(reloaded.lookup("old1").has_value());

  // Compaction is idempotent: a second pass finds nothing to drop.
  ASSERT_TRUE(compactObligationStore(dir.string(), &result, &err)) << err;
  EXPECT_EQ(result.duplicates, 0u);
  EXPECT_EQ(result.corrupt, 0u);
  EXPECT_EQ(result.entriesBefore, result.entriesAfter);
  fs::remove_all(dir);
}

TEST(ObligationCacheCompaction, RefusesMissingOrForeignStores) {
  CompactionResult result;
  std::string err;
  const fs::path missing = scratchDir("cmc_obligation_cache_compact_missing");
  EXPECT_FALSE(compactObligationStore(missing.string(), &result, &err));
  EXPECT_FALSE(err.empty());

  // A store of some other format must be left alone, not rewritten.
  const fs::path dir = scratchDir("cmc_obligation_cache_compact_foreign");
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "obligations.jsonl");
    out << frameLine("{\"format\": \"somebody-elses-v9\"}") << "\n";
    out << "{\"fp\": \"x\", \"verdict\": \"Holds\", \"rule\": \"direct\", "
           "\"engine\": \"partitioned\", \"seconds\": 0.5}\n";
  }
  const std::uint64_t sizeBefore = fs::file_size(dir / "obligations.jsonl");
  EXPECT_FALSE(compactObligationStore(dir.string(), &result, &err));
  EXPECT_NE(err.find("format"), std::string::npos) << err;
  EXPECT_EQ(fs::file_size(dir / "obligations.jsonl"), sizeBefore);
  fs::remove_all(dir);
}

TEST(ObligationCacheCompaction, RefusesAStoreFlockedByALiveWriter) {
  const fs::path dir = scratchDir("cmc_obligation_cache_compact_locked");
  {
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache cache(opts);
    CachedVerdict v;
    v.verdict = Verdict::Holds;
    v.rule = "direct";
    v.engine = "partitioned";
    v.seconds = 0.125;
    EXPECT_TRUE(cache.insert("aaaa", v));
  }
  const fs::path store = dir / "obligations.jsonl";
  const std::uint64_t sizeBefore = fs::file_size(store);

  // A "live writer": someone holds the store's exclusive flock, exactly
  // as an appending `cmc serve` would mid-append.
  const int writerFd = ::open(store.c_str(), O_RDWR);
  ASSERT_GE(writerFd, 0);
  ASSERT_EQ(::flock(writerFd, LOCK_EX), 0);

  CompactionResult result;
  std::string err;
  EXPECT_FALSE(compactObligationStore(dir.string(), &result, &err));
  EXPECT_NE(err.find("live writer"), std::string::npos) << err;
  EXPECT_EQ(fs::file_size(store), sizeBefore);

  // Once the writer lets go, the same compaction goes through.
  ASSERT_EQ(::flock(writerFd, LOCK_UN), 0);
  ::close(writerFd);
  EXPECT_TRUE(compactObligationStore(dir.string(), &result, &err)) << err;
  fs::remove_all(dir);
}

TEST(ObligationCacheCompaction, AbortBeforeRenameLeavesTheOriginalIntact) {
  if (!util::Failpoint::compiledIn()) {
    GTEST_SKIP() << "needs -DCMC_FAILPOINTS=ON";
  }
  const fs::path dir = scratchDir("cmc_obligation_cache_compact_crash");
  {
    ObligationCache::Options opts;
    opts.dir = dir.string();
    ObligationCache cache(opts);
    CachedVerdict v;
    v.verdict = Verdict::Holds;
    v.rule = "direct";
    v.engine = "partitioned";
    v.seconds = 0.125;
    EXPECT_TRUE(cache.insert("aaaa", v));
    EXPECT_TRUE(cache.insert("bbbb", v));
  }
  const fs::path store = dir / "obligations.jsonl";
  {
    // A duplicate, so a successful compaction would rewrite the store —
    // proving the aborted one really did leave it alone.
    std::ofstream out(store, std::ios::app);
    out << frameLine("{\"fp\": \"aaaa\", \"verdict\": \"Fails\", \"rule\": "
                     "\"rechecked\", \"engine\": \"monolithic\", "
                     "\"seconds\": 0.5}")
        << "\n";
  }
  std::string original;
  {
    std::ifstream in(store);
    std::stringstream buf;
    buf << in.rdbuf();
    original = buf.str();
  }

  util::Failpoint::configure("cache.compact=error");
  CompactionResult result;
  std::string err;
  EXPECT_FALSE(compactObligationStore(dir.string(), &result, &err));
  util::Failpoint::disarmAll();
  EXPECT_NE(err.find("compaction aborted"), std::string::npos) << err;

  // The crash window left no trace: original byte-identical, temp file
  // gone.
  {
    std::ifstream in(store);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), original);
  }
  EXPECT_FALSE(fs::exists(dir / "obligations.jsonl.compact.tmp"));

  // And the flock was released: an immediate retry succeeds and resolves
  // the duplicate.
  ASSERT_TRUE(compactObligationStore(dir.string(), &result, &err)) << err;
  EXPECT_EQ(result.duplicates, 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cmc::service
