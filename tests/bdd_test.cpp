// Unit and property tests for the ROBDD package.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bdd/io.hpp"
#include "bdd/manager.hpp"

namespace cmc::bdd {
namespace {

TEST(BddBasics, TerminalsAreDistinctAndFixed) {
  Manager mgr;
  EXPECT_TRUE(mgr.bddTrue().isTrue());
  EXPECT_TRUE(mgr.bddFalse().isFalse());
  EXPECT_NE(mgr.bddTrue(), mgr.bddFalse());
  EXPECT_EQ(mgr.bddTrue(), mgr.bddTrue());
}

TEST(BddBasics, VariablesAreCanonical) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  EXPECT_EQ(x, mgr.bddVar(0));
  EXPECT_NE(x, y);
  EXPECT_EQ(mgr.bddNVar(0), !x);
}

TEST(BddBasics, ReductionRuleEliminatesRedundantTests) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  // ite(x, y, y) == y
  const Bdd y = mgr.bddVar(1);
  EXPECT_EQ(mgr.ite(x, y, y), y);
}

TEST(BddBasics, BooleanAlgebraLaws) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  const Bdd z = mgr.bddVar(2);

  EXPECT_EQ(x & y, y & x);
  EXPECT_EQ(x | y, y | x);
  EXPECT_EQ((x & y) & z, x & (y & z));
  EXPECT_EQ(x & (y | z), (x & y) | (x & z));
  EXPECT_EQ(!(x & y), (!x) | (!y));
  EXPECT_EQ(!(x | y), (!x) & (!y));
  EXPECT_EQ(x ^ y, (x & !y) | ((!x) & y));
  EXPECT_EQ(x & !x, mgr.bddFalse());
  EXPECT_EQ(x | !x, mgr.bddTrue());
  EXPECT_EQ(!(!x), x);
  EXPECT_EQ(x.implies(y), (!x) | y);
  EXPECT_EQ(x.iff(y), !(x ^ y));
  EXPECT_EQ(x.diff(y), x & !y);
}

TEST(BddBasics, SubsetOf) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  EXPECT_TRUE((x & y).subsetOf(x));
  EXPECT_FALSE(x.subsetOf(x & y));
  EXPECT_TRUE(mgr.bddFalse().subsetOf(x));
  EXPECT_TRUE(x.subsetOf(mgr.bddTrue()));
}

TEST(BddQuantification, ExistsAndForall) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  const Bdd cubeX = mgr.cube({0});

  EXPECT_EQ(mgr.exists(x & y, cubeX), y);
  EXPECT_EQ(mgr.exists(x | y, cubeX), mgr.bddTrue());
  EXPECT_EQ(mgr.forall(x & y, cubeX), mgr.bddFalse());
  EXPECT_EQ(mgr.forall(x | y, cubeX), y);
  EXPECT_EQ(mgr.forall((!x) | y, mgr.cube({0, 1})), mgr.bddFalse());
}

TEST(BddQuantification, AndExistsMatchesComposition) {
  Manager mgr;
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    // Random functions over 5 variables.
    auto randomFn = [&]() {
      Bdd f = mgr.bddFalse();
      std::uniform_int_distribution<int> bit(0, 1);
      for (int cube = 0; cube < 4; ++cube) {
        Bdd term = mgr.bddTrue();
        for (std::uint32_t v = 0; v < 5; ++v) {
          if (bit(rng) != 0) {
            term &= bit(rng) != 0 ? mgr.bddVar(v) : mgr.bddNVar(v);
          }
        }
        f |= term;
      }
      return f;
    };
    const Bdd f = randomFn();
    const Bdd g = randomFn();
    const Bdd cube = mgr.cube({1, 3});
    EXPECT_EQ(mgr.andExists(f, g, cube), mgr.exists(f & g, cube));
  }
}

TEST(BddPermute, SwapsVariables) {
  Manager mgr;
  const Bdd x0 = mgr.bddVar(0);
  const Bdd x1 = mgr.bddVar(1);
  const Bdd x2 = mgr.bddVar(2);
  mgr.ensureVars(4);
  const std::uint32_t perm = mgr.registerPermutation({1, 0, 3, 2});
  EXPECT_EQ(mgr.permute(x0, perm), x1);
  EXPECT_EQ(mgr.permute(x0 & x2, perm), x1 & mgr.bddVar(3));
  EXPECT_EQ(mgr.permute(x0 | !x2, perm), x1 | !mgr.bddVar(3));
  // Involution.
  const Bdd f = (x0 & !x1) | x2;
  EXPECT_EQ(mgr.permute(mgr.permute(f, perm), perm), f);
}

TEST(BddCounting, SatCount) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  EXPECT_DOUBLE_EQ(mgr.satCount(mgr.bddTrue(), 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr.satCount(mgr.bddFalse(), 3), 0.0);
  EXPECT_DOUBLE_EQ(mgr.satCount(x, 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr.satCount(x & y, 3), 2.0);
  EXPECT_DOUBLE_EQ(mgr.satCount(x | y, 3), 6.0);
  EXPECT_DOUBLE_EQ(mgr.satCount(x ^ y, 2), 2.0);
}

TEST(BddCounting, DagSizeSharesNodes) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  const Bdd f = x & y;
  EXPECT_EQ(mgr.dagSize(f), 2u);
  EXPECT_EQ(mgr.dagSize(mgr.bddTrue()), 0u);
  // Shared subgraphs counted once.
  EXPECT_EQ(mgr.dagSize(std::vector<Bdd>{f, f}), 2u);
}

TEST(BddCounting, Support) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd z = mgr.bddVar(2);
  const std::vector<std::uint32_t> s = mgr.support(x & !z);
  EXPECT_EQ(s, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_TRUE(mgr.support(mgr.bddTrue()).empty());
}

TEST(BddWitness, PickCubeSatisfies) {
  Manager mgr;
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> bit(0, 1);
  for (int trial = 0; trial < 30; ++trial) {
    Bdd f = mgr.bddFalse();
    for (int c = 0; c < 3; ++c) {
      Bdd term = mgr.bddTrue();
      for (std::uint32_t v = 0; v < 4; ++v) {
        if (bit(rng) != 0) {
          term &= bit(rng) != 0 ? mgr.bddVar(v) : mgr.bddNVar(v);
        }
      }
      f |= term;
    }
    if (f.isFalse()) continue;
    const std::vector<std::int8_t> cube = mgr.pickCube(f);
    std::vector<bool> assignment(mgr.varCount(), false);
    for (std::size_t v = 0; v < cube.size(); ++v) {
      assignment[v] = cube[v] == 1;
    }
    EXPECT_TRUE(mgr.eval(f, assignment));
  }
}

TEST(BddEval, AgreesWithTruthTable) {
  Manager mgr;
  const Bdd x = mgr.bddVar(0);
  const Bdd y = mgr.bddVar(1);
  const Bdd z = mgr.bddVar(2);
  const Bdd f = (x & !y) | (z ^ x);
  for (int bits = 0; bits < 8; ++bits) {
    const bool vx = (bits & 1) != 0;
    const bool vy = (bits & 2) != 0;
    const bool vz = (bits & 4) != 0;
    const bool expected = (vx && !vy) || (vz != vx);
    EXPECT_EQ(mgr.eval(f, {vx, vy, vz}), expected) << "bits=" << bits;
  }
}

TEST(BddGc, CollectsDeadNodesAndKeepsLive) {
  Manager mgr(64);
  const Bdd keep = mgr.bddVar(0) & mgr.bddVar(1) & mgr.bddVar(2);
  const std::uint64_t liveBefore = mgr.liveNodeCount();
  {
    // Create garbage.
    for (int i = 0; i < 200; ++i) {
      Bdd junk = mgr.bddVar(i % 8) ^ mgr.bddVar((i + 3) % 8);
      junk &= mgr.bddVar((i + 1) % 8);
    }
  }
  mgr.collectGarbage();
  EXPECT_GE(mgr.stats().gcRuns, 1u);
  EXPECT_LE(mgr.liveNodeCount(), liveBefore + 40);
  // The kept function still evaluates correctly after GC.
  EXPECT_TRUE(mgr.eval(keep, {true, true, true, false, false, false, false,
                              false}));
  EXPECT_FALSE(mgr.eval(keep, {true, false, true, false, false, false, false,
                               false}));
}

TEST(BddGc, AllocatedCounterIsMonotonic) {
  Manager mgr(64);
  const std::uint64_t before = mgr.stats().nodesAllocatedTotal;
  { Bdd junk = mgr.bddVar(0) ^ mgr.bddVar(1); }
  mgr.collectGarbage();
  { Bdd junk2 = mgr.bddVar(2) ^ mgr.bddVar(3); }
  EXPECT_GT(mgr.stats().nodesAllocatedTotal, before);
}

TEST(BddStress, ManyOperationsStayCanonical) {
  Manager mgr(128);
  // Build a parity function incrementally two ways; they must agree.
  const std::uint32_t n = 12;
  Bdd parityA = mgr.bddFalse();
  for (std::uint32_t v = 0; v < n; ++v) parityA ^= mgr.bddVar(v);
  Bdd parityB = mgr.bddFalse();
  for (std::uint32_t v = n; v-- > 0;) parityB ^= mgr.bddVar(v);
  EXPECT_EQ(parityA, parityB);
  // Parity is linear-size: two nodes per level except the root level
  // (this package has no complement edges).
  EXPECT_EQ(mgr.dagSize(parityA), 2 * n - 1);
  EXPECT_DOUBLE_EQ(mgr.satCount(parityA, n), std::exp2(n) / 2);
}

TEST(BddIo, DotOutputMentionsAllNodes) {
  Manager mgr;
  const Bdd f = mgr.bddVar(0) & !mgr.bddVar(1);
  const std::string dot = toDot(mgr, f, {"x", "y"});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"x\""), std::string::npos);
  EXPECT_NE(dot.find("\"y\""), std::string::npos);
  EXPECT_NE(dot.find("t1"), std::string::npos);
}

TEST(BddIo, CubeToString) {
  std::vector<std::int8_t> cube{1, -1, 0};
  EXPECT_EQ(cubeToString(cube, {"x", "y", "z"}), "x=1 z=0");
  EXPECT_EQ(cubeToString(cube), "x0=1 x2=0");
}

TEST(BddIo, ResourceReportFormat) {
  Manager mgr;
  const std::string report = resourceReport(mgr, 43, 7, 0.5);
  EXPECT_NE(report.find("BDD nodes allocated:"), std::string::npos);
  EXPECT_NE(report.find("43 + 7"), std::string::npos);
}

// Property test: ITE agrees with the boolean definition on random inputs.
class BddIteProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddIteProperty, IteMatchesDefinition) {
  Manager mgr;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> bit(0, 1);
  auto randomFn = [&]() {
    Bdd f = mgr.bddFalse();
    for (int c = 0; c < 3; ++c) {
      Bdd term = mgr.bddTrue();
      for (std::uint32_t v = 0; v < 4; ++v) {
        if (bit(rng) != 0) {
          term &= bit(rng) != 0 ? mgr.bddVar(v) : mgr.bddNVar(v);
        }
      }
      f |= term;
    }
    return f;
  };
  const Bdd f = randomFn();
  const Bdd g = randomFn();
  const Bdd h = randomFn();
  EXPECT_EQ(mgr.ite(f, g, h), (f & g) | ((!f) & h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddIteProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace cmc::bdd
