// Tests for the utility layer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <unordered_map>

#include "util/common.hpp"
#include "util/hash.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cmc {
namespace {

TEST(StringUtil, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtil, TrimAndPrefix) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_TRUE(startsWith("hello", "he"));
  EXPECT_FALSE(startsWith("he", "hello"));
}

TEST(StringUtil, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Hash, Mix64IsInjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

TEST(Hash, PairHashUsableInMaps) {
  std::unordered_map<std::pair<int, int>, int, PairHash> map;
  map[{1, 2}] = 3;
  map[{2, 1}] = 4;
  EXPECT_EQ(map[std::make_pair(1, 2)], 3);
  EXPECT_EQ(map[std::make_pair(2, 1)], 4);
}

TEST(Common, AssertionThrows) {
  EXPECT_THROW(assertionFailure("x > 0", "f.cpp", 10), Error);
  try {
    assertionFailure("x > 0", "f.cpp", 10);
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("x > 0"), std::string::npos);
  }
}

TEST(Common, ParseErrorCarriesPosition) {
  const ParseError e("bad token", 3, 14);
  EXPECT_EQ(e.line(), 3);
  EXPECT_EQ(e.column(), 14);
  EXPECT_NE(std::string(e.what()).find("3:14"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
  const double a = timer.millis();
  const double b = timer.millis();
  EXPECT_LE(a, b);  // monotone, callable repeatedly
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> sum{0};
  std::vector<std::future<int>> futures;
  for (int i = 1; i <= 20; ++i) {
    futures.push_back(pool.submit([&sum, i] {
      sum += i;
      return i * i;
    }));
  }
  int squares = 0;
  for (auto& f : futures) squares += f.get();
  EXPECT_EQ(sum.load(), 210);
  EXPECT_EQ(squares, 2870);
}

TEST(ThreadPool, AcceptsMoveOnlyCallablesAndArguments) {
  ThreadPool pool(2);
  // Move-only callable: captures a unique_ptr (std::bind would reject it).
  auto owned = std::make_unique<int>(41);
  auto future =
      pool.submit([p = std::move(owned)] { return *p + 1; });
  EXPECT_EQ(future.get(), 42);

  // Move-only argument, forwarded into the invocation by std::apply.
  auto arg = std::make_unique<int>(7);
  auto future2 = pool.submit(
      [](std::unique_ptr<int> p) { return *p * 3; }, std::move(arg));
  EXPECT_EQ(future2.get(), 21);
  EXPECT_EQ(arg, nullptr);  // ownership moved into the pool

  // Plain function pointer with an argument still works.
  auto future3 = pool.submit(
      static_cast<int (*)(int)>([](int x) { return x + 1; }), 9);
  EXPECT_EQ(future3.get(), 10);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(future.get(), Error);
}

TEST(ThreadPool, ThrowingTaskLeavesPoolUsable) {
  // Regression: an exception must land in the task's own future (with its
  // message intact) and must not take the worker down — tasks submitted
  // after the throw still run to completion.
  ThreadPool pool(1);  // single worker: the same thread sees the throw
  auto bad = pool.submit([]() -> int { throw Error("task exploded"); });
  auto good = pool.submit([] { return 7; });
  try {
    bad.get();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "task exploded");
  }
  EXPECT_EQ(good.get(), 7);
  // Every one of a burst of throwing tasks reports independently.
  std::vector<std::future<void>> bursts;
  for (int i = 0; i < 8; ++i) {
    bursts.push_back(pool.submit([] { throw Error("again"); }));
  }
  for (auto& f : bursts) EXPECT_THROW(f.get(), Error);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, PendingTasksReportsQueueDepth) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Occupy the single worker, then pile up queued tasks behind it.
  auto blocker = pool.submit([gate] { gate.wait(); });
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 5; ++i) {
    queued.push_back(pool.submit([gate] { gate.wait(); }));
  }
  // The blocker may or may not have been dequeued yet; the 5 behind it
  // cannot have been.
  EXPECT_GE(pool.pendingTasks(), 5u);
  release.set_value();
  blocker.get();
  for (auto& f : queued) f.get();
  EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }
  EXPECT_EQ(ran.load(), 10);
}

}  // namespace
}  // namespace cmc
