// Tests for the compositional theory: classification (Rules 1-3), rule
// derivation (Rules 4-5), proof trees, the verifier, the leads-to ledger,
// and the parallel obligation runner.  Includes soundness property tests
// that validate the rules against brute-force composition, and mutation
// tests checking that broken premises are refused.
#include <gtest/gtest.h>

#include <atomic>

#include "comp/classify.hpp"
#include "comp/leadsto.hpp"
#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "symbolic/encode.hpp"
#include "test_util.hpp"

namespace cmc::comp {
namespace {

using ctl::parse;
using ctl::Restriction;

Restriction trivial() { return Restriction::trivial(); }

// ---- Classification ---------------------------------------------------------

TEST(Classify, Rule1PropositionalIsExistential) {
  EXPECT_EQ(classify(trivial(), parse("p -> q | r")),
            PropertyClass::Existential);
  Restriction withInit = trivial().withInit(parse("p"));
  EXPECT_EQ(classify(withInit, parse("!q")), PropertyClass::Existential);
  // Nontrivial fairness disables Rule 1.
  Restriction withFair = trivial().withFairness(parse("p"));
  EXPECT_EQ(classify(withFair, parse("p")), PropertyClass::Unknown);
}

TEST(Classify, Rule2AXIsUniversal) {
  EXPECT_EQ(classify(trivial(), parse("p -> AX (p | q)")),
            PropertyClass::Universal);
  EXPECT_EQ(classify(trivial(), parse("p & q -> AX !q")),
            PropertyClass::Universal);
  // Non-propositional operands disqualify.
  EXPECT_EQ(classify(trivial(), parse("EX p -> AX q")),
            PropertyClass::Unknown);
  EXPECT_EQ(classify(trivial(), parse("p -> AX AX q")),
            PropertyClass::Unknown);
  // An initial-condition restriction disables Rule 2.
  EXPECT_EQ(classify(trivial().withInit(parse("p")), parse("p -> AX q")),
            PropertyClass::Unknown);
}

TEST(Classify, Rule3EXIsExistential) {
  EXPECT_EQ(classify(trivial(), parse("p -> EX q")),
            PropertyClass::Existential);
  EXPECT_EQ(classify(trivial(), parse("p -> EX EX q")),
            PropertyClass::Unknown);
}

TEST(Classify, ConjunctionsTakeTheWeakestClass) {
  // existential & existential = existential.
  EXPECT_EQ(classify(trivial(), parse("(p -> EX q) & (q -> EX p)")),
            PropertyClass::Existential);
  // universal & existential = universal.
  EXPECT_EQ(classify(trivial(), parse("(p -> AX q) & (q -> EX p)")),
            PropertyClass::Universal);
  // anything with an unclassifiable conjunct is unknown.
  EXPECT_EQ(classify(trivial(), parse("(p -> AX q) & AG p")),
            PropertyClass::Unknown);
}

TEST(Classify, NestedConjunctionsClassifyLikeTheirFlattening) {
  // Grouping must not matter: conjuncts() flattens nested & chains, so
  // ((a & b) & c) and (a & (b & c)) take the same class.
  const char* flat = "(p -> AX q) & (q -> EX p) & (p | q)";
  const char* leftNested = "((p -> AX q) & (q -> EX p)) & (p | q)";
  const char* rightNested = "(p -> AX q) & ((q -> EX p) & (p | q))";
  const PropertyClass want = classify(trivial(), parse(flat));
  EXPECT_EQ(want, PropertyClass::Universal);
  EXPECT_EQ(classify(trivial(), parse(leftNested)), want);
  EXPECT_EQ(classify(trivial(), parse(rightNested)), want);
}

TEST(Classify, UnknownConjunctPoisonsEitherSide) {
  // Unknown ∧ universal = Unknown regardless of conjunct order: one
  // unclassifiable conjunct makes the whole conjunction undischargeable.
  EXPECT_EQ(classify(trivial(), parse("AG p & (p -> AX q)")),
            PropertyClass::Unknown);
  EXPECT_EQ(classify(trivial(), parse("(p -> AX q) & AG p")),
            PropertyClass::Unknown);
  // Even buried in a nested group.
  EXPECT_EQ(classify(trivial(), parse("(p -> AX q) & ((q -> EX p) & AG p)")),
            PropertyClass::Unknown);
}

TEST(Classify, DuplicateConjunctsDoNotChangeTheClass) {
  EXPECT_EQ(classify(trivial(), parse("(p -> AX q) & (p -> AX q)")),
            classify(trivial(), parse("p -> AX q")));
  EXPECT_EQ(classify(trivial(), parse("(p -> EX q) & (p -> EX q)")),
            PropertyClass::Existential);
  // Idempotence under an odd mix: duplicating a universal conjunct in a
  // universal & existential conjunction keeps the conjunction universal.
  EXPECT_EQ(
      classify(trivial(),
               parse("(p -> AX q) & (q -> EX p) & (p -> AX q)")),
      PropertyClass::Universal);
}

TEST(Classify, ShapeMatchers) {
  ctl::FormulaPtr p, q;
  EXPECT_TRUE(matchImpliesAX(parse("a & b -> AX (a | c)"), &p, &q));
  EXPECT_TRUE(ctl::equal(p, parse("a & b")));
  EXPECT_TRUE(ctl::equal(q, parse("a | c")));
  EXPECT_FALSE(matchImpliesAX(parse("a -> EX b"), nullptr, nullptr));
  EXPECT_TRUE(matchImpliesEX(parse("a -> EX b"), &p, &q));
  EXPECT_EQ(conjuncts(parse("a & b & c")).size(), 3u);
  EXPECT_EQ(conjuncts(parse("a | b")).size(), 1u);
}

// ---- Proof trees ------------------------------------------------------------

TEST(ProofTree, ValidityAndRendering) {
  ProofTree proof;
  const std::size_t a =
      proof.add(ProofNode::Kind::ModelCheck, "M |= f", true);
  const std::size_t b =
      proof.add(ProofNode::Kind::ModelCheck, "M' |= f", true);
  proof.add(ProofNode::Kind::Conclusion, "M o M' |= f", true, {a, b});
  EXPECT_TRUE(proof.valid());
  EXPECT_EQ(proof.modelCheckCount(), 2u);
  const std::string text = proof.render();
  EXPECT_NE(text.find("M o M' |= f"), std::string::npos);
  EXPECT_NE(text.find("[check]"), std::string::npos);

  proof.add(ProofNode::Kind::ModelCheck, "M |= g", false);
  EXPECT_FALSE(proof.valid());
  EXPECT_NE(proof.render().find("FAIL"), std::string::npos);
}

// ---- Rule derivation --------------------------------------------------------

/// One-variable "progress" component: p-states can always step to q.
/// Atoms: p (stage), q (done).  States: {p}, {q} (+junk combos).
symbolic::SymbolicSystem progressSystem(symbolic::Context& ctx) {
  const symbolic::VarId p = ctx.addBoolVar("p");
  const symbolic::VarId q = ctx.addBoolVar("q");
  // Transition: (p & !q) -> (!p & q), plus global stutter.
  const bdd::Bdd move = ctx.varEq(p, "1") & ctx.varEq(q, "0") &
                        ctx.varEq(p, "0", true) & ctx.varEq(q, "1", true);
  symbolic::SymbolicSystem sys =
      symbolic::makeSystem(ctx, "progress", {p, q}, move);
  symbolic::addReflexive(sys);
  return sys;
}

TEST(Rules, Rule4DerivesGuarantee) {
  symbolic::Context ctx;
  symbolic::SymbolicSystem sys = progressSystem(ctx);
  symbolic::Checker checker(sys);
  ProofTree proof;
  const auto g = deriveRule4(checker, parse("p & !q"), parse("q"), proof);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->derivedBy, "Rule 4");
  ASSERT_EQ(g->lhs.size(), 1u);
  ASSERT_EQ(g->rhs.size(), 2u);
  EXPECT_TRUE(ctl::equal(g->lhs[0].f,
                         parse("p & !q -> AX (p & !q | q)")));
  EXPECT_TRUE(ctl::equal(g->rhs[0].f, parse("p & !q -> A[p & !q U q]")));
  // The restriction carries the fairness constraint ¬p ∨ q.
  ASSERT_EQ(g->rhs[0].r.fairness.size(), 1u);
  EXPECT_TRUE(
      ctl::equal(g->rhs[0].r.fairness[0], parse("!(p & !q) | q")));
  EXPECT_TRUE(proof.valid());
}

TEST(Rules, Rule4RefusesBrokenPremise) {
  symbolic::Context ctx;
  // A system whose p-states CANNOT reach q: only stuttering.
  const symbolic::VarId p = ctx.addBoolVar("p");
  const symbolic::VarId q = ctx.addBoolVar("q");
  symbolic::SymbolicSystem sys = symbolic::identitySystem(ctx, {p, q});
  symbolic::Checker checker(sys);
  ProofTree proof;
  const auto g = deriveRule4(checker, parse("p & !q"), parse("q"), proof);
  EXPECT_FALSE(g.has_value());
  EXPECT_FALSE(proof.valid());  // the failed premise is recorded
}

TEST(Rules, Rule4RejectsNonPropositional) {
  symbolic::Context ctx;
  symbolic::SymbolicSystem sys = progressSystem(ctx);
  symbolic::Checker checker(sys);
  ProofTree proof;
  EXPECT_THROW(deriveRule4(checker, parse("EX p"), parse("q"), proof),
               ModelError);
}

TEST(Rules, Rule5NeedsOnlyOneHelpfulDisjunct) {
  symbolic::Context ctx;
  symbolic::SymbolicSystem sys = progressSystem(ctx);
  symbolic::Checker checker(sys);
  ProofTree proof;
  // p = p1 ∨ p2 with p1 = (p & !q) helpful, p2 = (!p & !q) not.
  const std::vector<ctl::FormulaPtr> ps = {parse("p & !q"),
                                           parse("!p & !q")};
  const auto g = deriveRule5(checker, ps, 0, parse("q"), proof);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->derivedBy, "Rule 5");
  // lhs: AX step plus one EF obligation per disjunct.
  EXPECT_EQ(g->lhs.size(), 1u + ps.size());
  // Bad helpful index: premise fails.
  ProofTree proof2;
  const auto g2 = deriveRule5(checker, ps, 1, parse("q"), proof2);
  EXPECT_FALSE(g2.has_value());
  EXPECT_THROW(deriveRule5(checker, {}, 0, parse("q"), proof),
               ModelError);
}

// ---- Verifier ---------------------------------------------------------------

/// Builds two tiny one-atom components in a shared context: `left` flips a,
/// `right` flips b; both reflexive.
struct TwoComponents {
  symbolic::Context ctx;
  symbolic::SymbolicSystem left;
  symbolic::SymbolicSystem right;

  TwoComponents() {
    const symbolic::VarId a = ctx.addBoolVar("a");
    const symbolic::VarId b = ctx.addBoolVar("b");
    // left: a:=1 when !a (latch), stutter otherwise.
    const bdd::Bdd setA = ctx.varEq(a, "0") & ctx.varEq(a, "1", true);
    left = symbolic::makeSystem(ctx, "left", {a}, setA);
    symbolic::addReflexive(left);
    const bdd::Bdd setB = ctx.varEq(b, "0") & ctx.varEq(b, "1", true);
    right = symbolic::makeSystem(ctx, "right", {b}, setB);
    symbolic::addReflexive(right);
  }
};

TEST(Verifier, UniversalSpecCheckedOnEveryComponent) {
  TwoComponents tc;
  CompositionalVerifier verifier(tc.ctx);
  verifier.addComponent(tc.left);
  verifier.addComponent(tc.right);
  ProofTree proof;
  // A latch never unsets: a -> AX a holds in both expansions.
  EXPECT_TRUE(verifier.verify(
      ctl::Spec{"latchA", trivial(), parse("a -> AX a")}, proof));
  EXPECT_EQ(proof.modelCheckCount(), 2u);  // one per component
  // b -> AX b also universal; a&b -> AX (a&b) follows on the composition.
  EXPECT_TRUE(verifier.verify(
      ctl::Spec{"latchAB", trivial(), parse("a & b -> AX (a & b)")}, proof));
  EXPECT_TRUE(proof.valid());
}

TEST(Verifier, ExistentialSpecNeedsOneComponent) {
  TwoComponents tc;
  CompositionalVerifier verifier(tc.ctx);
  verifier.addComponent(tc.left);
  verifier.addComponent(tc.right);
  ProofTree proof;
  // Only `left` provides !a -> EX a; the conclusion still lifts.
  EXPECT_TRUE(verifier.verify(
      ctl::Spec{"canSetA", trivial(), parse("!a -> EX a")}, proof));
  EXPECT_TRUE(proof.valid());
}

TEST(Verifier, UnknownFallsBackToGlobalCheckOnlyIfAllowed) {
  TwoComponents tc;
  CompositionalVerifier verifier(tc.ctx);
  verifier.addComponent(tc.left);
  verifier.addComponent(tc.right);
  ProofTree proof;
  const ctl::Spec spec{"eventually", trivial(), parse("EF (a & b)")};
  EXPECT_TRUE(verifier.verify(spec, proof, /*allowGlobalFallback=*/true));
  ProofTree proof2;
  EXPECT_FALSE(verifier.verify(spec, proof2, /*allowGlobalFallback=*/false));
  EXPECT_FALSE(proof2.valid());
}

TEST(Verifier, FailingUniversalSpecIsReported) {
  TwoComponents tc;
  CompositionalVerifier verifier(tc.ctx);
  verifier.addComponent(tc.left);
  verifier.addComponent(tc.right);
  ProofTree proof;
  // a -> AX !a is false in the left component (the latch holds a).
  EXPECT_FALSE(verifier.verify(
      ctl::Spec{"bogus", trivial(), parse("a -> AX !a")}, proof));
  EXPECT_FALSE(proof.valid());
}

TEST(Verifier, InvarianceRule) {
  TwoComponents tc;
  CompositionalVerifier verifier(tc.ctx);
  verifier.addComponent(tc.left);
  verifier.addComponent(tc.right);
  ProofTree proof;
  // Invariant: a | !a (trivial) proves AG(true-ish target a -> a).
  EXPECT_TRUE(verifier.verifyInvariance(parse("a"), parse("a"),
                                        parse("a | b"), proof, "inv"));
  // Broken base case: init !a does not imply inv a.
  ProofTree proof2;
  EXPECT_FALSE(verifier.verifyInvariance(parse("!a"), parse("a"),
                                         parse("a"), proof2, "inv2"));
}

TEST(Verifier, DischargeGuarantee) {
  symbolic::Context ctx;
  symbolic::SymbolicSystem sys = progressSystem(ctx);
  CompositionalVerifier verifier(ctx);
  verifier.addComponent(sys);
  symbolic::Checker checker(sys);
  ProofTree proof;
  const auto g = deriveRule4(checker, parse("p & !q"), parse("q"), proof);
  ASSERT_TRUE(g.has_value());
  std::vector<ctl::Spec> conclusions;
  EXPECT_TRUE(verifier.discharge(*g, proof, &conclusions));
  ASSERT_EQ(conclusions.size(), 2u);
  // The concluded A-until actually holds on the (single-component)
  // composition.
  symbolic::Checker composed(verifier.composed());
  EXPECT_TRUE(composed.holds(conclusions[0]));
  EXPECT_TRUE(composed.holds(conclusions[1]));
}

// ---- Rule soundness against brute force -------------------------------------

class RuleSoundness : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937 rng{static_cast<unsigned>(GetParam()) * 31337 + 7};
};

TEST_P(RuleSoundness, Rule2UniversalHolds) {
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb({"b", "c"});
  ebRaw.forEachTransition(
      [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });
  const std::vector<std::string> unionAtoms = {"a", "b", "c"};
  const kripke::ExplicitSystem expA = kripke::expand(ea, {"c"});
  const kripke::ExplicitSystem expB = kripke::expand(eb, {"a"});
  const kripke::ExplicitSystem whole = kripke::compose(ea, eb);
  kripke::ExplicitChecker ca(expA);
  kripke::ExplicitChecker cb(expB);
  kripke::ExplicitChecker cw(whole);
  for (int i = 0; i < 4; ++i) {
    const ctl::FormulaPtr p = test::randomPropositional(rng, unionAtoms, 2);
    const ctl::FormulaPtr q = test::randomPropositional(rng, unionAtoms, 2);
    const ctl::FormulaPtr spec = ctl::mkImplies(p, ctl::AX(q));
    if (ca.holds(trivial(), spec) && cb.holds(trivial(), spec)) {
      EXPECT_TRUE(cw.holds(trivial(), spec)) << ctl::toString(spec);
    }
  }
}

TEST_P(RuleSoundness, Rule3ExistentialHolds) {
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb({"b", "c"});
  ebRaw.forEachTransition(
      [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });
  const std::vector<std::string> unionAtoms = {"a", "b", "c"};
  const kripke::ExplicitSystem expA = kripke::expand(ea, {"c"});
  const kripke::ExplicitSystem whole = kripke::compose(ea, eb);
  kripke::ExplicitChecker ca(expA);
  kripke::ExplicitChecker cw(whole);
  for (int i = 0; i < 4; ++i) {
    const ctl::FormulaPtr p = test::randomPropositional(rng, unionAtoms, 2);
    const ctl::FormulaPtr q = test::randomPropositional(rng, unionAtoms, 2);
    const ctl::FormulaPtr spec = ctl::mkImplies(p, ctl::EX(q));
    if (ca.holds(trivial(), spec)) {
      EXPECT_TRUE(cw.holds(trivial(), spec)) << ctl::toString(spec);
    }
  }
}

TEST_P(RuleSoundness, Rule1PropositionalLifts) {
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb = test::randomSystem(rng, 2);
  const kripke::ExplicitSystem whole = kripke::compose(ea, eb);
  kripke::ExplicitChecker ca(ea);
  kripke::ExplicitChecker cw(whole);
  for (int i = 0; i < 4; ++i) {
    const ctl::FormulaPtr inner =
        test::randomPropositional(rng, ea.atoms(), 2);
    const ctl::FormulaPtr init = test::randomPropositional(rng, ea.atoms(), 2);
    Restriction r;
    r.init = init;
    r.fairness = {ctl::mkTrue()};
    if (ca.holds(r, inner)) {
      EXPECT_TRUE(cw.holds(r, inner))
          << ctl::toString(init) << " : " << ctl::toString(inner);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleSoundness, ::testing::Range(0, 15));

// ---- Leads-to ledger --------------------------------------------------------

TEST(LeadsTo, ChainAndCaseSplit) {
  symbolic::Context ctx;
  ctx.addEnumVar("s", {"s0", "s1", "s2"});
  ProofTree proof;
  LeadsToLedger ledger(ctx, {ctx.varId("s")}, proof);

  ctl::Spec step1{"step1",
                  trivial().withFairness(parse("!(s=s0) | s=s1")),
                  parse("s=s0 -> A[s=s0 U s=s1]")};
  ctl::Spec step2{"step2",
                  trivial().withFairness(parse("!(s=s1) | s=s2")),
                  parse("s=s1 -> A[s=s1 U s=s2]")};
  const auto f1 = ledger.fromAU(step1);
  const auto f2 = ledger.fromAU(step2);
  const auto chained = ledger.chain(f1, f2);
  EXPECT_TRUE(ctl::equal(ledger.from(chained), parse("s=s0")));
  EXPECT_TRUE(ctl::equal(ledger.to(chained), parse("s=s2")));
  EXPECT_EQ(ledger.fairness(chained).size(), 3u);  // TRUE + two constraints
  EXPECT_TRUE(ledger.valid());

  const auto split = ledger.caseSplit(parse("s=s0 | s=s1"), parse("s=s2"),
                                      {chained, f2});
  EXPECT_TRUE(ledger.valid());
  const ctl::Spec conclusion =
      ledger.concludeAF(split, parse("s=s0"), "goal");
  EXPECT_TRUE(ctl::equal(conclusion.f, parse("AF s=s2")));
  EXPECT_TRUE(ledger.valid());
}

TEST(LeadsTo, InvalidSideConditionsAreCaught) {
  symbolic::Context ctx;
  ctx.addBoolVar("x");
  ctx.addBoolVar("y");
  ProofTree proof;
  LeadsToLedger ledger(ctx, {ctx.varId("x"), ctx.varId("y")}, proof);
  const auto f1 = ledger.fromAU(ctl::Spec{
      "s", trivial(), parse("x -> A[x U y]")});
  // Chain whose link does not hold: y does not imply !x.
  const auto f2 = ledger.fromAU(ctl::Spec{
      "t", trivial(), parse("!x -> A[!x U x & y]")});
  ledger.chain(f1, f2);
  EXPECT_FALSE(ledger.valid());
  EXPECT_FALSE(proof.valid());
}

TEST(LeadsTo, RejectsWrongShape) {
  symbolic::Context ctx;
  ctx.addBoolVar("x");
  ProofTree proof;
  LeadsToLedger ledger(ctx, {ctx.varId("x")}, proof);
  EXPECT_THROW(
      ledger.fromAU(ctl::Spec{"bad", trivial(), parse("x -> AF x")}),
      ModelError);
  EXPECT_THROW(
      ledger.fromAU(ctl::Spec{"bad2", trivial(), parse("x -> A[!x U x]")}),
      ModelError);
}

// ---- Parallel obligation runner ---------------------------------------------

TEST(ParallelVerifier, RunsAllObligations) {
  std::atomic<int> ran{0};
  std::vector<Obligation> obligations;
  for (int i = 0; i < 8; ++i) {
    obligations.push_back(Obligation{
        "ob" + std::to_string(i), [&ran, i] {
          ++ran;
          // Each obligation owns its manager — the supported pattern.
          symbolic::Context ctx;
          const symbolic::VarId x = ctx.addBoolVar("x");
          symbolic::SymbolicSystem sys = symbolic::identitySystem(ctx, {x});
          symbolic::Checker checker(sys);
          return checker.holds(Restriction::trivial(),
                               parse(i % 2 == 0 ? "x -> AX x" : "x | !x"));
        }});
  }
  const ParallelReport report = runObligations(std::move(obligations), 4);
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(report.allOk);
  EXPECT_EQ(report.results.size(), 8u);
  EXPECT_NE(report.summary().find("ALL OK"), std::string::npos);
}

TEST(ParallelVerifier, CapturesFailuresAndExceptions) {
  std::vector<Obligation> obligations;
  obligations.push_back(Obligation{"fails", [] { return false; }});
  obligations.push_back(Obligation{"throws", []() -> bool {
    throw ModelError("boom");
  }});
  obligations.push_back(Obligation{"passes", [] { return true; }});
  const ParallelReport report = runObligations(std::move(obligations), 2);
  EXPECT_FALSE(report.allOk);
  EXPECT_EQ(report.results[1].error, "boom");
  EXPECT_TRUE(report.results[2].ok);
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace cmc::comp

namespace cmc::comp {
namespace {

TEST(ProofExport, DotAndJson) {
  ProofTree proof;
  const std::size_t a =
      proof.add(ProofNode::Kind::ModelCheck, "M |= \"f\"", true);
  proof.add(ProofNode::Kind::Conclusion, "conclusion", false, {a});
  const std::string dot = proof.toDot();
  EXPECT_NE(dot.find("digraph proof"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("\\\"f\\\""), std::string::npos);  // escaped quotes
  const std::string json = proof.toJson();
  EXPECT_NE(json.find("\"kind\": \"model-check\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"children\": [0]"), std::string::npos);
}

}  // namespace
}  // namespace cmc::comp

namespace cmc::comp {
namespace {

// Rule 4 end-to-end soundness on random systems: derive the guarantee on a
// random component, discharge its left side on a random composition, and
// confirm the concluded A-until property on the composed system by direct
// model checking.  This exercises the whole pipeline the AFS/ring case
// studies rely on, with no hand-picked regions.
class Rule4Soundness : public ::testing::TestWithParam<int> {};

TEST_P(Rule4Soundness, DischargedGuaranteesHoldOnTheComposition) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 65537 + 11);
  // Two random reflexive components over overlapping alphabets.
  kripke::ExplicitSystem ea = test::randomSystem(rng, 2);
  kripke::ExplicitSystem ebRaw = test::randomSystem(rng, 2);
  kripke::ExplicitSystem eb({"b", "c"});
  ebRaw.forEachTransition(
      [&](kripke::State s, kripke::State t) { eb.addTransition(s, t); });

  symbolic::Context ctx;
  symbolic::SymbolicSystem sa = symbolic::symbolicFromExplicit(ctx, ea, "A");
  symbolic::SymbolicSystem sb = symbolic::symbolicFromExplicit(ctx, eb, "B");

  CompositionalVerifier verifier(ctx);
  verifier.addComponent(sa);
  verifier.addComponent(sb);
  symbolic::Checker composedChecker(verifier.composed());

  const std::vector<std::string> unionAtoms = {"a", "b", "c"};
  const symbolic::SymbolicSystem expA = symbolic::expand(sa, sb.vars);
  symbolic::Checker expChecker(expA);

  int derived = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const ctl::FormulaPtr p = test::randomPropositional(rng, unionAtoms, 2);
    const ctl::FormulaPtr q = test::randomPropositional(rng, unionAtoms, 2);
    ProofTree proof;
    const auto g = deriveRule4(expChecker, p, q, proof);
    if (!g.has_value()) continue;  // premise fails; nothing to check
    std::vector<ctl::Spec> conclusions;
    if (!verifier.discharge(*g, proof, &conclusions,
                            /*allowGlobalFallback=*/false)) {
      continue;  // lhs not universal-dischargeable for this p, q
    }
    ++derived;
    for (const ctl::Spec& spec : conclusions) {
      EXPECT_TRUE(composedChecker.holds(spec))
          << "rule 4 conclusion violated: " << ctl::toString(spec.f)
          << " under " << spec.r.toString();
    }
  }
  // Most seeds derive at least one guarantee (p := anything with q ⊇ p
  // often works since components are reflexive); tolerate barren seeds.
  SUCCEED() << derived << " guarantees checked";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rule4Soundness, ::testing::Range(0, 12));

}  // namespace
}  // namespace cmc::comp
