// End-to-end integration tests across the whole stack:
//  - random SMV programs elaborated both symbolically and explicitly, with
//    the two checkers agreeing on every spec;
//  - derived-operator semantics: f and desugar(f) agree everywhere;
//  - composition of SMV-defined components vs explicit composition;
//  - a miniature compositional workflow (parse → classify → discharge).
#include <gtest/gtest.h>

#include <sstream>

#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"
#include "test_util.hpp"

namespace cmc {
namespace {

/// A small random SMV program over one enum and two booleans.
std::string randomSmvProgram(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> val(0, 2);
  const char* values[] = {"red", "green", "blue"};
  std::ostringstream out;
  out << "MODULE main\n";
  out << "VAR s : {red, green, blue};\n";
  out << "    x : boolean;\n";
  out << "    y : boolean;\n";
  out << "ASSIGN\n";
  out << "  next(s) :=\n    case\n";
  for (int v = 0; v < 3; ++v) {
    out << "      s = " << values[v] << " & x : ";
    if (coin(rng) != 0) {
      out << values[val(rng)] << ";\n";
    } else {
      out << "{" << values[val(rng)] << ", " << values[val(rng)] << "};\n";
    }
  }
  out << "      1 : s;\n    esac;\n";
  out << "  next(x) := " << (coin(rng) != 0 ? "!x" : "x | y") << ";\n";
  if (coin(rng) != 0) {
    out << "  next(y) := case s = green : 0; 1 : y; esac;\n";
  }
  return out.str();
}

class SmvAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SmvAgreement, SymbolicAndExplicitAgreeOnRandomPrograms) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729 + 3);
  const std::string program = randomSmvProgram(rng);

  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, program);
  symbolic::Checker symbolicChecker(mod.sys);
  const symbolic::ExplicitImage image = symbolic::explicitFromSymbolic(mod.sys);
  kripke::ExplicitChecker explicitChecker(image.sys, image.semantics);

  // Bit layout of the image: s (2 bits), x, y — used to evaluate the
  // symbolic sat set on explicit states.
  const std::vector<std::string> atomPool = {
      "s=red", "s=green", "s=blue", "x", "y"};
  for (int i = 0; i < 6; ++i) {
    // Random formulas over comparison atoms.
    std::vector<std::string> names = atomPool;
    const ctl::FormulaPtr f = test::randomFormula(rng, names, 3);
    std::vector<ctl::FormulaPtr> fairness;
    if (i % 2 == 0) fairness.push_back(ctl::parse("x | s=red"));
    const kripke::StateSet expected = explicitChecker.sat(f, fairness);
    const bdd::Bdd actual = symbolicChecker.sat(f, fairness);
    for (kripke::State s = 0; s < image.sys.stateCount(); ++s) {
      if (!image.valid[s]) continue;  // invalid encodings excluded
      // Build the BDD assignment from the image's bit layout.
      std::vector<bool> assignment(2 * ctx.bitCount(), false);
      std::size_t cursor = 0;
      for (symbolic::VarId v : mod.sys.vars) {
        const symbolic::Variable& var = ctx.variable(v);
        for (std::size_t b = 0; b < var.bits.size(); ++b) {
          assignment[symbolic::Context::bddVarOf(var.bits[b], false)] =
              ((s >> (cursor + b)) & 1u) != 0;
        }
        cursor += var.bits.size();
      }
      EXPECT_EQ(ctx.mgr().eval(actual, assignment), expected[s])
          << program << "\nformula: " << ctl::toString(f) << "\nstate " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmvAgreement, ::testing::Range(0, 15));

class DesugarAgreement : public ::testing::TestWithParam<int> {};

TEST_P(DesugarAgreement, DerivedOperatorsMatchDefinitions) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7 + 1);
  kripke::ExplicitSystem es = test::randomSystem(rng, 3);
  kripke::ExplicitChecker checker(es);
  for (int i = 0; i < 8; ++i) {
    const ctl::FormulaPtr f = test::randomFormula(rng, es.atoms(), 3);
    const ctl::FormulaPtr base = ctl::desugar(f);
    const kripke::StateSet a = checker.sat(f, {});
    const kripke::StateSet b = checker.sat(base, {});
    EXPECT_EQ(a, b) << ctl::toString(f) << " vs " << ctl::toString(base);
    // And under fairness.
    const std::vector<ctl::FormulaPtr> fair = {
        test::randomPropositional(rng, es.atoms(), 2)};
    EXPECT_EQ(checker.sat(f, fair), checker.sat(base, fair))
        << ctl::toString(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesugarAgreement, ::testing::Range(0, 10));

TEST(SmvComposition, TwoModulesComposeLikeTheirExplicitImages) {
  symbolic::Context ctx;
  const smv::ElaboratedModule producer = smv::elaborateText(ctx, R"(
MODULE producer
VAR item : boolean;
    turn : {mine, yours};
ASSIGN
  next(item) := case turn = mine & !item : 1; 1 : item; esac;
  next(turn) := case turn = mine & item : yours; 1 : turn; esac;
)");
  const smv::ElaboratedModule consumer = smv::elaborateText(ctx, R"(
MODULE consumer
VAR item : boolean;
    turn : {mine, yours};
    consumed : boolean;
ASSIGN
  next(item) := case turn = yours & item : 0; 1 : item; esac;
  next(consumed) := case turn = yours & item : 1; 1 : consumed; esac;
  next(turn) := case turn = yours & item : mine; 1 : turn; esac;
)");
  symbolic::SymbolicSystem a = producer.sys;
  symbolic::SymbolicSystem b = consumer.sys;
  symbolic::addReflexive(a);
  symbolic::addReflexive(b);
  const symbolic::SymbolicSystem whole = symbolic::compose(a, b);

  // Explicit path: image both components, compose explicitly, compare.
  const symbolic::ExplicitImage ia = symbolic::explicitFromSymbolic(a);
  const symbolic::ExplicitImage ib = symbolic::explicitFromSymbolic(b);
  const kripke::ExplicitSystem ewhole = kripke::compose(ia.sys, ib.sys);
  const symbolic::ExplicitImage iwhole = symbolic::explicitFromSymbolic(whole);
  EXPECT_TRUE(iwhole.sys.sameBehavior(ewhole));

  // The composed system makes progress: item eventually gets consumed under
  // fairness that forbids infinite stuttering in the handoff states.
  symbolic::Checker checker(whole);
  ctl::Restriction r;
  r.init = ctl::parse("turn=mine & !item & !consumed");
  r.fairness = {ctl::parse("consumed | !(turn=mine & item) & !(turn=yours & item)"),
                ctl::parse("consumed | !(turn=mine & !item)")};
  EXPECT_TRUE(checker.holds(r, ctl::parse("AF consumed")));
}

TEST(CompositionalWorkflow, ParseClassifyDischarge) {
  // The full user workflow in one test: two SMV components sharing a
  // variable, a universal spec checked per component, and a guarantee.
  symbolic::Context ctx;
  const smv::ElaboratedModule ping = smv::elaborateText(ctx, R"(
MODULE ping
VAR ball : {here, there};
ASSIGN next(ball) := case ball = here : there; 1 : ball; esac;
)");
  const smv::ElaboratedModule pong = smv::elaborateText(ctx, R"(
MODULE pong
VAR ball : {here, there};
    hits : boolean;
ASSIGN
  next(ball) := case ball = there : here; 1 : ball; esac;
  next(hits) := case ball = there : 1; 1 : hits; esac;
)");
  symbolic::SymbolicSystem a = ping.sys;
  symbolic::SymbolicSystem b = pong.sys;
  symbolic::addReflexive(a);
  symbolic::addReflexive(b);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(a);
  verifier.addComponent(b);

  comp::ProofTree proof;
  // Universal: once hits latches it stays (pong never clears, ping cannot
  // touch it).
  EXPECT_TRUE(verifier.verify(
      ctl::Spec{"latch", ctl::Restriction::trivial(),
                ctl::parse("hits -> AX hits")},
      proof));
  // Existential: ping can always serve.
  EXPECT_TRUE(verifier.verify(
      ctl::Spec{"serve", ctl::Restriction::trivial(),
                ctl::parse("ball=here -> EX ball=there")},
      proof));
  EXPECT_TRUE(proof.valid());
  EXPECT_EQ(proof.modelCheckCount(), 3u);  // 2 universal + 1 existential
}

TEST(ResourceReporting, CheckResultsComposeIntoFigureRows) {
  // Shape of the Fig. 7/10 reproduction: every spec checks true and the
  // counters are populated.
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, R"(
MODULE tiny
VAR x : boolean;
ASSIGN next(x) := !x;
SPEC x -> AX !x
SPEC !x -> EX x
)");
  symbolic::Checker checker(mod.sys);
  for (const ctl::Spec& spec : mod.specs) {
    const symbolic::CheckResult result = checker.check(spec);
    EXPECT_TRUE(result.holds);
    EXPECT_GT(result.bddNodesAllocated, 0u);
    EXPECT_GE(result.seconds, 0.0);
    EXPECT_FALSE(result.specText.empty());
  }
}

}  // namespace
}  // namespace cmc

namespace cmc {
namespace {

TEST(ReorderIntegration, CheckerVerdictsSurviveSifting) {
  // Verdicts must be order-independent: check, sift, re-check.
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, R"(
MODULE counter
VAR n : 0..7;
    flag : boolean;
ASSIGN
  next(n) := case n = 0 : 1; n = 1 : 2; n = 2 : 3; n = 3 : 4;
                  n = 4 : 5; n = 5 : 6; n = 6 : 7; 1 : n; esac;
  next(flag) := case n = 6 : 1; 1 : flag; esac;
)");
  symbolic::Checker checker(mod.sys);
  const std::vector<const char*> specs = {
      "n=0 -> EF n=7",
      "n=7 -> AX n=7",
      "flag -> AX flag",
      "n=0 & !flag -> EX (n=1 & !flag)",
      "AG (n=7 -> AX n=7)",
  };
  std::vector<bool> before;
  for (const char* text : specs) {
    before.push_back(
        checker.holds(ctl::Restriction::trivial(), ctl::parse(text)));
  }
  const std::uint64_t nodesAfter = ctx.mgr().reorderSift();
  EXPECT_GT(nodesAfter, 0u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse(specs[i])),
              before[i])
        << specs[i] << " changed verdict after reordering";
  }
  // A fresh checker over the same (reordered) system agrees too.
  symbolic::Checker fresh(mod.sys);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(fresh.holds(ctl::Restriction::trivial(),
                          ctl::parse(specs[i])),
              before[i]);
  }
}

TEST(ParserRobustness, GarbageNeverCrashes) {
  // Mutate a valid model at random positions; the front end must either
  // parse or throw cmc::Error — never crash or loop.
  const std::string base = R"(
MODULE main
VAR s : {a, b, c};
    x : boolean;
ASSIGN
  init(s) := a;
  next(s) := case s = a & x : b; s = b : c; 1 : s; esac;
SPEC s=a -> EX s=b
FAIRNESS x
)";
  std::mt19937 rng(99);
  const std::string charset = "{}();:=!&|<>-.partmodule0129 \n";
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<std::size_t> pick(0, charset.size() - 1);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int edits = 1 + trial % 4;
    for (int e = 0; e < edits; ++e) {
      mutated[pos(rng)] = charset[pick(rng)];
    }
    try {
      symbolic::Context ctx;
      const smv::ElaboratedModule mod = smv::elaborateText(ctx, mutated);
      symbolic::Checker checker(mod.sys);
      for (const ctl::Spec& spec : mod.specs) {
        checker.holds(spec);
      }
    } catch (const Error&) {
      // Expected for most mutations.
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, CtlGarbageNeverCrashes) {
  std::mt19937 rng(7);
  const std::string charset = "ABEFGUX[]()&|!->=pq01 ";
  std::uniform_int_distribution<std::size_t> len(1, 30);
  std::uniform_int_distribution<std::size_t> pick(0, charset.size() - 1);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const std::size_t n = len(rng);
    for (std::size_t i = 0; i < n; ++i) text.push_back(charset[pick(rng)]);
    try {
      ctl::parse(text);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace cmc
