// Tests for the SMV front end: lexer, parser, and elaboration semantics.
#include <gtest/gtest.h>

#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"
#include "smv/lexer.hpp"
#include "smv/parser.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/encode.hpp"
#include "symbolic/prop.hpp"

namespace cmc::smv {
namespace {

TEST(SmvLexer, TokensAndComments) {
  const auto tokens = tokenize("next(x) := {a, b}; -- comment\n0..3 != <->");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::Ident, TokenKind::LParen, TokenKind::Ident,
                TokenKind::RParen, TokenKind::Assign, TokenKind::LBrace,
                TokenKind::Ident, TokenKind::Comma, TokenKind::Ident,
                TokenKind::RBrace, TokenKind::Semicolon, TokenKind::Number,
                TokenKind::DotDot, TokenKind::Number, TokenKind::Neq,
                TokenKind::Iff, TokenKind::End}));
}

TEST(SmvLexer, PositionsAndErrors) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
  EXPECT_THROW(tokenize("a $ b"), ParseError);
}

TEST(SmvLexer, DottedIdentifiers) {
  const auto tokens = tokenize("Server.belief 0..3");
  EXPECT_EQ(tokens[0].text, "Server.belief");
  EXPECT_EQ(tokens[1].kind, TokenKind::Number);
  EXPECT_EQ(tokens[2].kind, TokenKind::DotDot);
}

TEST(SmvParser, VarSection) {
  const Module mod = parseModule(R"(
MODULE main
VAR
  x : boolean;
  s : {a, b, c};
  n : 0..3;
)");
  ASSERT_EQ(mod.vars.size(), 3u);
  EXPECT_EQ(mod.vars[0].type.kind, TypeDecl::Kind::Bool);
  EXPECT_EQ(mod.vars[1].type.expandedValues(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(mod.vars[2].type.expandedValues(),
            (std::vector<std::string>{"0", "1", "2", "3"}));
}

TEST(SmvParser, AssignAndCase) {
  const Module mod = parseModule(R"(
MODULE main
VAR x : {a, b};
ASSIGN
  init(x) := a;
  next(x) :=
    case
      x = a : b;
      1 : x;
    esac;
)");
  ASSERT_EQ(mod.assigns.size(), 2u);
  EXPECT_EQ(mod.assigns[0].kind, Assign::Kind::Init);
  EXPECT_EQ(mod.assigns[1].kind, Assign::Kind::Next);
  EXPECT_EQ(mod.assigns[1].expr->kind, ExprKind::Case);
  EXPECT_EQ(mod.assigns[1].expr->branches.size(), 2u);
}

TEST(SmvParser, SpecAndFairnessDelegateToCtl) {
  const Module mod = parseModule(R"(
MODULE main
VAR x : boolean;
SPEC x -> AX x
FAIRNESS !x
SPEC AG (x -> EX x)
)");
  ASSERT_EQ(mod.specs.size(), 2u);
  ASSERT_EQ(mod.fairness.size(), 1u);
  EXPECT_TRUE(ctl::equal(mod.specs[0],
                         ctl::mkImplies(ctl::atom("x"), ctl::AX(ctl::atom("x")))));
  EXPECT_TRUE(ctl::equal(mod.fairness[0], ctl::mkNot(ctl::atom("x"))));
}

TEST(SmvParser, Errors) {
  EXPECT_THROW(parseModule("VAR x : boolean;"), ParseError);  // no MODULE
  EXPECT_THROW(parseModule("MODULE main VAR x boolean;"), ParseError);
  EXPECT_THROW(parseModule("MODULE main ASSIGN foo(x) := 1;"), ParseError);
  EXPECT_THROW(parseModule("MODULE main VAR x : 3..1;"), ParseError);
  EXPECT_THROW(parseModule("MODULE main VAR x : boolean; ASSIGN next(x) := "
                           "case esac;"),
               ParseError);
}

TEST(SmvParser, ExprPrecedence) {
  const ExprPtr e = parseExpr("a = x & b = y -> c");
  EXPECT_EQ(e->kind, ExprKind::Implies);
  EXPECT_EQ(e->args[0]->kind, ExprKind::And);
  EXPECT_EQ(e->args[0]->args[0]->kind, ExprKind::Eq);
}

// ---- Elaboration ------------------------------------------------------------

TEST(SmvElaborate, DeterministicNext) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR x : boolean;
ASSIGN next(x) := !x;
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("x -> AX !x")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("!x -> AX x")));
}

TEST(SmvElaborate, SetLiteralIsNondeterministic) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR s : {a, b, c};
ASSIGN next(s) := {a, b};
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("EX s=a & EX s=b")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("AX (s=a | s=b)")));
  EXPECT_FALSE(checker.holds(ctl::Restriction::trivial(),
                             ctl::parse("EX s=c")));
}

TEST(SmvElaborate, CaseFirstMatchWins) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR s : {a, b, c};
ASSIGN next(s) :=
  case
    s = a : b;
    s = a : c;  -- dead branch: first match wins
    s = b : c;
    1 : s;
  esac;
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("s=a -> AX s=b")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("s=b -> AX s=c")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("s=c -> AX s=c")));
}

TEST(SmvElaborate, NonExhaustiveCaseLeavesFree) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR s : {a, b};
ASSIGN next(s) :=
  case
    s = a : b;
  esac;
)");
  symbolic::Checker checker(mod.sys);
  // From b the case falls through: any next value.
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("s=b -> EX s=a & EX s=b")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("s=a -> AX s=b")));
}

TEST(SmvElaborate, UnassignedVariableIsFree) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR x : boolean;
    y : boolean;
ASSIGN next(x) := x;
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("EX y & EX !y")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("x -> AX x")));
}

TEST(SmvElaborate, CopyAssignmentAndBooleanExpr) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR x : boolean;
    y : boolean;
ASSIGN
  next(x) := y;
  next(y) := x & !y;
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("y -> AX x")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("x & !y -> AX y")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("y -> AX !y")));
}

TEST(SmvElaborate, DefinesExpandAndRejectRecursion) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR s : {a, b};
DEFINE isA := s = a;
ASSIGN next(s) := case isA : b; 1 : a; esac;
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("s=a -> AX s=b")));

  symbolic::Context ctx2;
  EXPECT_THROW(elaborateText(ctx2, R"(
MODULE main
VAR x : boolean;
DEFINE loop := loop & x;
ASSIGN next(x) := loop;
)"),
               ModelError);
}

TEST(SmvElaborate, InitFormulaFromAssignsAndInitSections) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR s : {a, b, c};
    x : boolean;
ASSIGN init(s) := {a, b};
INIT !x
)");
  // initFormula should be (s=a | s=b) & !x.
  EXPECT_TRUE(symbolic::propositionallyValid(
      ctx, mod.sys.vars,
      ctl::mkIff(mod.initFormula,
                 ctl::mkAnd(ctl::mkOr(ctl::eq("s", "a"), ctl::eq("s", "b")),
                            ctl::mkNot(ctl::atom("x"))))));
}

TEST(SmvElaborate, TransConstraintWithNext) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR x : boolean;
TRANS !x | next(x) = 0
)");
  symbolic::Checker checker(mod.sys);
  // From x, every transition goes to !x; from !x anything goes.
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("x -> AX !x")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("!x -> EX x")));
}

TEST(SmvElaborate, SharedVariablesReuseDeclaration) {
  symbolic::Context ctx;
  const ElaboratedModule a = elaborateText(ctx, R"(
MODULE a
VAR r : {null, go};
    x : boolean;
ASSIGN next(r) := case x : go; 1 : r; esac;
)");
  const ElaboratedModule b = elaborateText(ctx, R"(
MODULE b
VAR r : {null, go};
    y : boolean;
ASSIGN next(y) := case r = go : 1; 1 : y; esac;
)");
  EXPECT_EQ(ctx.varId("r"), a.sys.vars[0]);
  EXPECT_NE(a.sys.vars, b.sys.vars);
  // Redeclaration with a different domain fails.
  EXPECT_THROW(elaborateText(ctx, R"(
MODULE c
VAR r : {null, go, stop};
)"),
               ModelError);
}

TEST(SmvElaborate, SemanticErrors) {
  symbolic::Context ctx;
  EXPECT_THROW(elaborateText(ctx, R"(
MODULE main
VAR s : {a, b};
ASSIGN next(s) := zz;
)"),
               ModelError);
  symbolic::Context ctx2;
  EXPECT_THROW(elaborateText(ctx2, R"(
MODULE main
VAR x : boolean;
ASSIGN next(y) := 1;
)"),
               ModelError);
  symbolic::Context ctx3;
  EXPECT_THROW(elaborateText(ctx3, R"(
MODULE main
VAR x : boolean;
ASSIGN next(x) := 1; next(x) := 0;
)"),
               ModelError);
  symbolic::Context ctx4;
  // next() outside TRANS is rejected.
  EXPECT_THROW(elaborateText(ctx4, R"(
MODULE main
VAR x : boolean;
ASSIGN next(x) := next(x);
)"),
               ModelError);
}

TEST(SmvElaborate, SpecsCarryModuleRestriction) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR x : boolean;
ASSIGN
  init(x) := 0;
  next(x) := 1;
FAIRNESS x
SPEC AF x
)");
  ASSERT_EQ(mod.specs.size(), 1u);
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(mod.specs[0]));
  // Without the restriction (trivial r) it would still hold here since
  // next(x):=1 forces progress; weaken the model to see the restriction
  // matter.
  symbolic::Context ctx2;
  const ElaboratedModule lazy = elaborateText(ctx2, R"(
MODULE main
VAR x : boolean;
ASSIGN
  init(x) := 0;
  next(x) := {0, 1};
FAIRNESS x
SPEC AF x
)");
  symbolic::Checker lazyChecker(lazy.sys);
  EXPECT_TRUE(lazyChecker.holds(lazy.specs[0]));  // fair paths must hit x
  EXPECT_FALSE(lazyChecker.holds(ctl::Restriction::trivial(),
                                 ctl::parse("AF x")));
}

TEST(SmvElaborate, RangeTypesCompare) {
  symbolic::Context ctx;
  const ElaboratedModule mod = elaborateText(ctx, R"(
MODULE main
VAR n : 0..3;
ASSIGN next(n) := case n = 0 : 1; n = 1 : 2; n = 2 : 3; 1 : n; esac;
)");
  symbolic::Checker checker(mod.sys);
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("n=0 -> AX n=1")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("n=3 -> AX n=3")));
  EXPECT_TRUE(checker.holds(ctl::Restriction::trivial(),
                            ctl::parse("n=0 -> EF n=3")));
}

}  // namespace
}  // namespace cmc::smv

namespace cmc::smv {
namespace {

TEST(SmvProgram, MultiModuleFilesParseAndShareVariables) {
  const std::vector<Module> modules = parseProgram(R"(
MODULE writer
VAR ch : {empty, full};
    data : boolean;
ASSIGN next(ch) := case ch = empty : full; 1 : ch; esac;
SPEC ch = empty -> EX ch = full

MODULE reader
VAR ch : {empty, full};
    got : boolean;
ASSIGN
  next(ch) := case ch = full : empty; 1 : ch; esac;
  next(got) := case ch = full : 1; 1 : got; esac;
)");
  ASSERT_EQ(modules.size(), 2u);
  EXPECT_EQ(modules[0].name, "writer");
  EXPECT_EQ(modules[1].name, "reader");
  EXPECT_EQ(modules[0].specs.size(), 1u);

  symbolic::Context ctx;
  const std::vector<ElaboratedModule> elaborated = elaborateProgram(ctx, R"(
MODULE writer
VAR ch : {empty, full};
ASSIGN next(ch) := case ch = empty : full; 1 : ch; esac;

MODULE reader
VAR ch : {empty, full};
    got : boolean;
ASSIGN
  next(ch) := case ch = full : empty; 1 : ch; esac;
  next(got) := case ch = full : 1; 1 : got; esac;
)");
  ASSERT_EQ(elaborated.size(), 2u);
  // Shared variable: same id in both components' alphabets.
  EXPECT_EQ(elaborated[0].sys.vars[0], ctx.varId("ch"));
  EXPECT_NE(elaborated[0].sys.vars, elaborated[1].sys.vars);
}

TEST(SmvProgram, EmptyProgramIsRejected) {
  EXPECT_THROW(parseProgram("  -- only a comment\n"), ParseError);
}

}  // namespace
}  // namespace cmc::smv
