// Tests for the alternating-bit-protocol case study.
#include <gtest/gtest.h>

#include "abp/abp.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "symbolic/checker.hpp"

namespace cmc::abp {
namespace {

TEST(Abp, ComponentShapes) {
  symbolic::Context ctx;
  AbpComponents comps = buildAbp(ctx);
  // Alphabets: the channels own just their slot; sender/receiver share it.
  EXPECT_EQ(comps.msgChannel.sys.vars.size(), 1u);
  EXPECT_EQ(comps.ackChannel.sys.vars.size(), 1u);
  EXPECT_EQ(comps.sender.sys.vars.size(), 3u);   // sbit, msg, ack
  EXPECT_EQ(comps.receiver.sys.vars.size(), 4u);  // rbit, msg, ack, delivered
  EXPECT_TRUE(comps.sender.sys.isReflexive());
  EXPECT_TRUE(comps.receiver.sys.isTotal());
}

TEST(Abp, SenderBehavior) {
  symbolic::Context ctx;
  AbpComponents comps = buildAbp(ctx);
  symbolic::Checker checker(comps.sender.sys);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  // Retransmission fills an empty slot with the current bit.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("msg=none & !sbit -> EX msg=m0")));
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("msg=none & sbit -> EX msg=m1")));
  // The matching ack flips the bit; a stale ack does not.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("ack=a0 & !sbit -> EX (sbit & ack=none)")));
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("ack=a1 & !sbit -> AX !sbit")));
  // The sender never invents acknowledgements.
  EXPECT_TRUE(checker.holds(
      trivial, ctl::parse("ack=none -> AX ack=none")));
}

TEST(Abp, ReceiverBehavior) {
  symbolic::Context ctx;
  AbpComponents comps = buildAbp(ctx);
  symbolic::Checker checker(comps.receiver.sys);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  // Expected bit: deliver, flip, acknowledge, consume — in one step.
  EXPECT_TRUE(checker.holds(
      trivial,
      ctl::parse("msg=m0 & !rbit -> "
                 "EX (rbit & delivered=d0 & ack=a0 & msg=none)")));
  // Duplicate: re-acknowledge without delivering.
  EXPECT_TRUE(checker.holds(
      trivial,
      ctl::parse("msg=m0 & rbit & delivered=d0 -> "
                 "AX (delivered=d0 & (msg=m0 | ack=a0 & msg=none))")));
}

TEST(Abp, LossyChannelsOnlyLose) {
  symbolic::Context ctx;
  AbpComponents comps = buildAbp(ctx);
  symbolic::Checker msgChecker(comps.msgChannel.sys);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  EXPECT_TRUE(msgChecker.holds(
      trivial, ctl::parse("msg=m0 -> AX (msg=m0 | msg=none)")));
  EXPECT_TRUE(msgChecker.holds(trivial, ctl::parse("msg=m0 -> EX msg=none")));
  EXPECT_TRUE(msgChecker.holds(
      trivial, ctl::parse("msg=none -> AX msg=none")));
}

TEST(Abp, CompositionalSafetyAndLiveness) {
  const AbpReport report = verifyAbp(/*liveness=*/true, /*crossCheck=*/true);
  EXPECT_TRUE(report.safety);
  EXPECT_TRUE(report.safetyCrossCheck);
  EXPECT_TRUE(report.liveness);
  EXPECT_TRUE(report.proof.valid());
  EXPECT_EQ(report.componentChecks, 4u);  // one step check per component
}

TEST(AbpMutation, SenderFlippingOnAnyAckBreaksSafety) {
  // A sender that flips on *any* acknowledgement outruns the receiver:
  // the phase invariant step must fail on its expansion.
  symbolic::Context ctx;
  const std::string eager = R"(
MODULE eagersender
VAR sbit : boolean;
    msg : {none, m0, m1};
    ack : {none, a0, a1};
ASSIGN
  next(msg) :=
    case
      msg = none & !sbit : m0;
      msg = none & sbit : m1;
      1 : msg;
    esac;
  next(sbit) :=
    case
      ack = a0 | ack = a1 : !sbit;  -- BUG: stale acks flip too
      1 : sbit;
    esac;
  next(ack) := case ack = a0 | ack = a1 : none; 1 : ack; esac;
)";
  smv::ElaboratedModule sender = smv::elaborateText(ctx, eager);
  symbolic::addReflexive(sender.sys);
  smv::ElaboratedModule receiver = smv::elaborateText(ctx, receiverSmv());
  symbolic::addReflexive(receiver.sys);
  smv::ElaboratedModule msgCh = smv::elaborateText(ctx, msgChannelSmv());
  symbolic::addReflexive(msgCh.sys);
  smv::ElaboratedModule ackCh = smv::elaborateText(ctx, ackChannelSmv());
  symbolic::addReflexive(ackCh.sys);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(sender.sys);
  verifier.addComponent(receiver.sys);
  verifier.addComponent(msgCh.sys);
  verifier.addComponent(ackCh.sys);
  comp::ProofTree proof;
  EXPECT_FALSE(verifier.verifyInvariance(abpInit(), abpInvariant(),
                                         abpTarget(), proof, "eager"));
  EXPECT_FALSE(proof.valid());
}

TEST(AbpMutation, CorruptingChannelBreaksTheInvariant) {
  // A channel that can *corrupt* (flip m0 to m1) makes the receiver
  // deliver a phantom message the sender never sent.  Deliveries still
  // happen to alternate (the phantom d1 slots into the pattern), so the
  // alternation target survives — but the phase invariant is genuinely
  // violated on the composed system, and the compositional proof fails.
  symbolic::Context ctx;
  const std::string corrupting = R"(
MODULE corruptingchannel
VAR msg : {none, m0, m1};
ASSIGN
  next(msg) :=
    case
      msg = m0 : {none, m0, m1};  -- BUG: corruption
      msg = m1 : {none, m1};
      1 : msg;
    esac;
)";
  smv::ElaboratedModule sender = smv::elaborateText(ctx, senderSmv());
  symbolic::addReflexive(sender.sys);
  smv::ElaboratedModule receiver = smv::elaborateText(ctx, receiverSmv());
  symbolic::addReflexive(receiver.sys);
  smv::ElaboratedModule msgCh = smv::elaborateText(ctx, corrupting);
  symbolic::addReflexive(msgCh.sys);
  smv::ElaboratedModule ackCh = smv::elaborateText(ctx, ackChannelSmv());
  symbolic::addReflexive(ackCh.sys);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(sender.sys);
  verifier.addComponent(receiver.sys);
  verifier.addComponent(msgCh.sys);
  verifier.addComponent(ackCh.sys);
  comp::ProofTree proof;
  EXPECT_FALSE(verifier.verifyInvariance(abpInit(), abpInvariant(),
                                         abpTarget(), proof, "corrupt"));
  // The invariant violation is real, not a proof-strategy artifact: a
  // corrupted message reaches a phase where only m0 may be in flight.
  symbolic::Checker composed(verifier.composed());
  ctl::Restriction r;
  r.init = abpInit();
  r.fairness = {ctl::mkTrue()};
  EXPECT_FALSE(composed.holds(r, ctl::AG(abpInvariant())));
  // The pure alternation target alone survives corruption (the phantom
  // delivery is in order) — which is exactly why the invariant is the
  // right specification.
  EXPECT_TRUE(composed.holds(r, ctl::AG(abpTarget())));
}

TEST(Abp, FormulaShapes) {
  EXPECT_TRUE(ctl::isPropositional(abpInit()));
  EXPECT_TRUE(ctl::isPropositional(abpInvariant()));
  EXPECT_TRUE(ctl::isPropositional(abpTarget()));
}

}  // namespace
}  // namespace cmc::abp
