// Tests for the live server metrics registry: instrument semantics
// (counters, gauges, histogram bucketing), reference stability, exactness
// under concurrent observers, and the two renderings with their
// consistency invariants (histogram count == sum of bucket counts; the
// cumulative +Inf text bucket == count) that the CI server smoke asserts
// from the outside.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/metrics.hpp"

namespace cmc::service {
namespace {

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry reg;
  reg.counter("reqs").inc();
  reg.counter("reqs").inc(4);
  EXPECT_EQ(reg.counterValue("reqs"), 5u);
  EXPECT_EQ(reg.counterValue("never_touched"), 0u);

  Gauge& depth = reg.gauge("queue_depth");
  depth.inc(3);
  depth.dec();
  EXPECT_EQ(reg.gaugeValue("queue_depth"), 2);
  depth.dec(5);  // gauges may go negative
  EXPECT_EQ(reg.gaugeValue("queue_depth"), -3);
  depth.set(7);
  EXPECT_EQ(reg.gaugeValue("queue_depth"), 7);
}

TEST(Metrics, ReferencesAreStableAcrossCreation) {
  // Call sites resolve once and update lock-free; a rebalanced registry
  // must never move an instrument.
  MetricsRegistry reg;
  Counter& first = reg.counter("anchor");
  for (int i = 0; i < 256; ++i) {
    reg.counter("filler_" + std::to_string(i));
    reg.histogram("hist_" + std::to_string(i));
  }
  EXPECT_EQ(&first, &reg.counter("anchor"));
  first.inc();
  EXPECT_EQ(reg.counterValue("anchor"), 1u);
}

TEST(Metrics, HistogramBucketsObservations) {
  LatencyHistogram h;
  h.observe(0.0004);  // le 0.001
  h.observe(0.004);   // le 0.005
  h.observe(0.7);     // le 1.0
  h.observe(120.0);   // +Inf overflow
  h.observe(-1.0);    // clamps to 0 -> le 0.001
  const LatencyHistogram::Snapshot s = h.snapshot();
  const std::vector<double>& bounds = LatencyHistogram::bucketBounds();
  ASSERT_EQ(s.counts.size(), bounds.size() + 1);  // finite + overflow
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.counts[0], 2u);             // 0.0004 and the clamped -1
  EXPECT_EQ(s.counts[2], 1u);             // 0.004 in (0.0025, 0.005]
  EXPECT_EQ(s.counts[9], 1u);             // 0.7 in (0.5, 1.0]
  EXPECT_EQ(s.counts.back(), 1u);         // 120 s overflows the ladder
  EXPECT_NEAR(s.sumSeconds, 0.0004 + 0.004 + 0.7 + 120.0, 1e-3);

  // The invariant every snapshot must satisfy: bucket counts partition the
  // observations.
  std::uint64_t total = 0;
  for (std::uint64_t c : s.counts) total += c;
  EXPECT_EQ(total, s.count);
}

TEST(Metrics, ConcurrentObserversLoseNothing) {
  // Counters and histograms are relaxed atomics: concurrent updates must
  // still be exact in the final tally (the sanitizer job runs this under
  // TSan).
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  LatencyHistogram& h = reg.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(t < 2 ? 0.002 : 2.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.counts[1], static_cast<std::uint64_t>(2 * kPerThread));
  EXPECT_EQ(s.counts[10], static_cast<std::uint64_t>(2 * kPerThread));
}

TEST(Metrics, JsonRenderingIsConsistent) {
  MetricsRegistry reg;
  reg.counter("checks_admitted").inc(3);
  reg.gauge("in_flight").set(-2);
  reg.histogram("request_seconds").observe(0.01);
  reg.histogram("request_seconds").observe(3.0);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"checks_admitted\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"request_seconds\": {\"count\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [0.001, "), std::string::npos);
}

TEST(Metrics, TextRenderingCumulativeBuckets) {
  MetricsRegistry reg;
  reg.counter("checks_admitted").inc(2);
  LatencyHistogram& h = reg.histogram("lat");
  h.observe(0.0005);
  h.observe(0.3);
  h.observe(999.0);
  const std::string text = reg.toText();
  EXPECT_NE(text.find("checks_admitted 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
  // Cumulative: every observation is <= +Inf, so the final bucket equals
  // the count — the invariant the server smoke greps for.
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"0.001\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"0.5\"} 2\n"), std::string::npos);
}

}  // namespace
}  // namespace cmc::service
