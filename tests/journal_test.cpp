// Tests for the crash-safe run journal: CRC-32 framing, torn/tampered-line
// rejection, replay keying and last-write-wins semantics, and the
// RunJournal append/flush writer round-tripping through loadJournal.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "service/journal.hpp"

namespace cmc::service {
namespace {

namespace fs = std::filesystem;

fs::path scratchFile(const char* name) {
  const fs::path path = fs::temp_directory_path() / name;
  fs::remove(path);
  return path;
}

JournalEntry entry(const std::string& id, Verdict verdict,
                   const std::string& fingerprint = "") {
  JournalEntry e;
  e.fingerprint = fingerprint;
  e.job = "job";
  e.id = id;
  e.target = "m";
  e.spec = id;
  e.specText = "AG p";
  e.verdict = verdict;
  e.rule = "direct";
  e.engine = "partitioned";
  e.seconds = 0.5;
  return e;
}

TEST(JournalFraming, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(JournalFraming, FrameUnframeRoundTrips) {
  const std::string payload = "{\"k\": \"v\", \"n\": 3}";
  const std::string framed = frameLine(payload);
  EXPECT_NE(framed.find("\"crc\": \""), std::string::npos);
  const std::optional<std::string> back = unframeLine(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(JournalFraming, TamperedTruncatedAndBareLinesAreRejected) {
  const std::string framed = frameLine("{\"k\": \"v\"}");
  std::string flipped = framed;
  flipped[7] ^= 1;  // one bit inside the payload
  EXPECT_FALSE(unframeLine(flipped).has_value());
  // A torn tail (the crash case: the line was cut mid-write).
  EXPECT_FALSE(unframeLine(framed.substr(0, framed.size() - 4)).has_value());
  // Lines with no framing at all.
  EXPECT_FALSE(unframeLine("{\"k\": \"v\"}").has_value());
  EXPECT_FALSE(unframeLine("").has_value());
  // A forged checksum.
  std::string forged = framed;
  forged.replace(forged.size() - 10, 8, "deadbeef");
  EXPECT_FALSE(unframeLine(forged).has_value());
}

TEST(JournalKeying, FingerprintWhenPresentIdentityOtherwise) {
  const JournalEntry withFp = entry("m/s1", Verdict::Holds, "abc123");
  EXPECT_EQ(journalKey(withFp), "fp:abc123");
  const JournalEntry bare = entry("m/s1", Verdict::Holds);
  EXPECT_EQ(journalKey(bare).substr(0, 3), "id:");
  // Different spec text must not collide under the identity fallback.
  JournalEntry other = bare;
  other.specText = "AG q";
  EXPECT_NE(journalKey(bare), journalKey(other));
}

TEST(JournalRoundTrip, RecordedOutcomesAreReplayable) {
  const fs::path path = scratchFile("cmc_journal_roundtrip.jsonl");
  {
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    EXPECT_TRUE(journal.isOpen());
    JournalEntry holds = entry("m/s1", Verdict::Holds, "fp1");
    holds.proofJson = "{\"proof\": []}";
    journal.record(holds);
    JournalEntry fails = entry("m/s2", Verdict::Fails, "fp2");
    fails.counterexample = "state: p=0\nstate: p=1\n";
    fails.error = "";
    journal.record(fails);
    journal.record(entry("m/s3", Verdict::Timeout, "fp3"));
    journal.record(entry("m/s4", Verdict::Cancelled, "fp4"));
    EXPECT_EQ(journal.recorded(), 4u);
  }
  const JournalReplay replay = loadJournal(path.string());
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.lines, 4u);
  EXPECT_EQ(replay.corrupt, 0u);
  // Only decided verdicts are served on resume.
  EXPECT_EQ(replay.undecided, 2u);
  EXPECT_EQ(replay.decided.size(), 2u);
  const JournalEntry* holds = replay.find("fp:fp1");
  ASSERT_NE(holds, nullptr);
  EXPECT_EQ(holds->verdict, Verdict::Holds);
  EXPECT_EQ(holds->proofJson, "{\"proof\": []}");
  const JournalEntry* fails = replay.find("fp:fp2");
  ASSERT_NE(fails, nullptr);
  EXPECT_EQ(fails->verdict, Verdict::Fails);
  EXPECT_EQ(fails->counterexample, "state: p=0\nstate: p=1\n");
  EXPECT_EQ(replay.find("fp:fp3"), nullptr);
  EXPECT_EQ(replay.find("fp:fp4"), nullptr);
  fs::remove(path);
}

TEST(JournalRoundTrip, TornFinalLineIsDroppedNotParsed) {
  const fs::path path = scratchFile("cmc_journal_torn.jsonl");
  {
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    journal.record(entry("m/s1", Verdict::Holds, "fp1"));
    journal.record(entry("m/s2", Verdict::Fails, "fp2"));
  }
  // Simulate a SIGKILL mid-append: cut the file mid-line, losing the
  // trailing newline.  The reopen must terminate the torn tail so the
  // resumed run's first entry starts a fresh line.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 15);
  RunJournal again;
  std::string err;
  ASSERT_TRUE(again.open(path.string(), &err)) << err;
  again.record(entry("m/s3", Verdict::Holds, "fp3"));

  const JournalReplay replay = loadJournal(path.string());
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.corrupt, 1u);  // the torn line, and only it
  EXPECT_NE(replay.find("fp:fp1"), nullptr);
  EXPECT_EQ(replay.find("fp:fp2"), nullptr);  // the torn victim
  EXPECT_NE(replay.find("fp:fp3"), nullptr);
  fs::remove(path);
}

TEST(JournalRoundTrip, LastWriteWinsForTheSameObligation) {
  const fs::path path = scratchFile("cmc_journal_lastwins.jsonl");
  {
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    journal.record(entry("m/s1", Verdict::Fails, "fp1"));
    journal.record(entry("m/s1", Verdict::Holds, "fp1"));
  }
  const JournalReplay replay = loadJournal(path.string());
  const JournalEntry* hit = replay.find("fp:fp1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->verdict, Verdict::Holds);
  fs::remove(path);
}

TEST(JournalRoundTrip, MissingJournalIsAFreshRunNotAnError) {
  const JournalReplay replay =
      loadJournal((fs::temp_directory_path() / "cmc_no_such.jsonl").string());
  EXPECT_FALSE(replay.found);
  EXPECT_TRUE(replay.decided.empty());
}

TEST(JournalRoundTrip, ForeignAndFutureFormatLinesCountAsCorrupt) {
  const fs::path path = scratchFile("cmc_journal_foreign.jsonl");
  {
    std::ofstream out(path);
    out << frameLine("{\"format\": \"cmc-journal-v1\"}") << "\n";
    out << "not json\n";
    // Checksummed but not an entry (no id/verdict): foreign, not torn.
    out << frameLine("{\"something\": \"else\"}") << "\n";
    // A future format header is not replayable.
    out << frameLine("{\"format\": \"cmc-journal-v99\"}") << "\n";
  }
  const JournalReplay replay = loadJournal(path.string());
  EXPECT_TRUE(replay.found);
  EXPECT_EQ(replay.lines, 0u);
  EXPECT_EQ(replay.corrupt, 3u);
  fs::remove(path);
}

TEST(JournalWriter, ReopenAppendsInsteadOfTruncating) {
  const fs::path path = scratchFile("cmc_journal_reopen.jsonl");
  {
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    journal.record(entry("m/s1", Verdict::Holds, "fp1"));
  }
  {
    RunJournal journal;
    std::string err;
    ASSERT_TRUE(journal.open(path.string(), &err)) << err;
    journal.record(entry("m/s2", Verdict::Holds, "fp2"));
  }
  const JournalReplay replay = loadJournal(path.string());
  EXPECT_EQ(replay.decided.size(), 2u);
  // Exactly one header line: the reopen saw a non-empty file.
  std::ifstream in(path);
  std::string line;
  std::size_t headers = 0;
  while (std::getline(in, line)) {
    if (line.find("\"format\":") != std::string::npos) ++headers;
  }
  EXPECT_EQ(headers, 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace cmc::service
