#!/usr/bin/env bash
# Perf gate for the parallel-service and engine-chooser work.
#
#   scripts/bench_smoke.sh [path/to/build-dir]
#
# Regenerates BENCH_service.json and BENCH_partition.json from the bench
# binaries (report mode only, --benchmark_filter=NONE) and fails if the
# headline wins regress:
#
#   1. service-pool must beat serial at afs1-batch-8 and afs1-batch-16,
#      within a generous tolerance (pool <= serial * SERVICE_TOL): CI
#      runners are noisy single-tenant VMs, so the gate bounds "parallel
#      must not lose", while the committed baselines in bench/results/
#      record the strict wins from a quiet machine.
#   2. The auto engine must stay within RING_TOL of the best of
#      {partitioned, monolithic} on every ring model — this bounds the
#      chooser's probe overhead on models where both engines are cheap.
#   3. auto must retain the afs2-2 peak-live-node win over monolithic.
#      Node counts are deterministic, so this gate is exact.
#   4. Racing must track the best fixed engine on every ring model:
#      race <= best(bes, partitioned) * RACE_TOL + RACE_ABS_SLACK.  The
#      ring jobs finish in well under a millisecond, where the race's
#      fixed per-obligation cost (one extra thread spawn + loser join)
#      dwarfs the solving itself, so a pure ratio gate would flag noise;
#      the absolute slack absorbs that floor while the ratio term still
#      catches a race that fails to cancel the loser or serializes the
#      lanes on models where solving dominates.
#
# A one-line summary is appended to bench/results/trend.csv so local runs
# accumulate a history of the headline ratios over time.
set -u

BUILD=${1:-build}
BENCH_DIR=$BUILD/bench
SERVICE_TOL=${SERVICE_TOL:-1.10}
RING_TOL=${RING_TOL:-1.25}
RACE_TOL=${RACE_TOL:-1.10}
RACE_ABS_SLACK=${RACE_ABS_SLACK:-0.005}
TREND=bench/results/trend.csv

fail() { echo "bench_smoke: FAIL: $*" >&2; exit 1; }
note() { echo "bench_smoke: $*"; }

[ -x "$BENCH_DIR/bench_service" ] || fail "no bench_service in $BENCH_DIR"
[ -x "$BENCH_DIR/bench_partition" ] || fail "no bench_partition in $BENCH_DIR"
[ -x "$BENCH_DIR/bench_bes" ] || fail "no bench_bes in $BENCH_DIR"

# The binaries write BENCH_<name>.json to the CWD; run them where the
# JSONs should land so a later `cp` into bench/results/ is deliberate.
( cd "$BENCH_DIR" && ./bench_service --benchmark_filter=NONE ) \
  || fail "bench_service exited $?"
( cd "$BENCH_DIR" && ./bench_partition --benchmark_filter=NONE ) \
  || fail "bench_partition exited $?"
( cd "$BENCH_DIR" && ./bench_bes --benchmark_filter=NONE ) \
  || fail "bench_bes exited $?"
[ -s "$BENCH_DIR/BENCH_service.json" ] || fail "no BENCH_service.json written"
[ -s "$BENCH_DIR/BENCH_partition.json" ] || fail "no BENCH_partition.json written"
[ -s "$BENCH_DIR/BENCH_bes.json" ] || fail "no BENCH_bes.json written"

python3 - "$BENCH_DIR" "$SERVICE_TOL" "$RING_TOL" "$TREND" \
          "$RACE_TOL" "$RACE_ABS_SLACK" <<'EOF'
import json, sys, time

bench_dir, service_tol, ring_tol, trend = (
    sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), sys.argv[4])
race_tol, race_slack = float(sys.argv[5]), float(sys.argv[6])
failures = []

# --- gate 1: service-pool vs serial at batch >= 8 -------------------------
with open(f"{bench_dir}/BENCH_service.json") as f:
    service = json.load(f)["results"]
by_model = {}
for r in service:
    by_model.setdefault(r["model"], {})[r["mode"]] = r
ratios = {}
for model in ("afs1-batch-8", "afs1-batch-16"):
    modes = by_model.get(model, {})
    if "serial" not in modes or "service-pool" not in modes:
        failures.append(f"{model}: missing serial/service-pool rows")
        continue
    ratio = modes["service-pool"]["seconds"] / modes["serial"]["seconds"]
    ratios[model] = ratio
    verdict = "ok" if ratio <= service_tol else "FAIL"
    print(f"bench_smoke: {model}: pool/serial = {ratio:.2f} "
          f"(tol {service_tol:.2f}) {verdict}")
    if ratio > service_tol:
        failures.append(f"{model}: service-pool/serial {ratio:.2f} "
                        f"> {service_tol:.2f}")

# --- gates 2+3: auto engine on rings, afs2-2 peak win ---------------------
with open(f"{bench_dir}/BENCH_partition.json") as f:
    partition = json.load(f)["results"]
by_model = {}
for r in partition:
    if r["spec"] == "ALL":
        by_model.setdefault(r["model"], {})[r["mode"]] = r
worst_ring = 0.0
for model, modes in sorted(by_model.items()):
    if not model.startswith("ring"):
        continue
    best = min(modes["partitioned"]["seconds"], modes["monolithic"]["seconds"])
    ratio = modes["auto"]["seconds"] / best
    worst_ring = max(worst_ring, ratio)
    verdict = "ok" if ratio <= ring_tol else "FAIL"
    print(f"bench_smoke: {model}: auto/best = {ratio:.2f} "
          f"(tol {ring_tol:.2f}) {verdict}")
    if ratio > ring_tol:
        failures.append(f"{model}: auto/best {ratio:.2f} > {ring_tol:.2f}")
afs2 = by_model.get("afs2-2", {})
if "auto" in afs2 and "monolithic" in afs2:
    auto_peak = afs2["auto"]["peak_live_nodes"]
    mono_peak = afs2["monolithic"]["peak_live_nodes"]
    print(f"bench_smoke: afs2-2: auto peak {auto_peak} vs "
          f"monolithic peak {mono_peak}")
    if auto_peak > mono_peak:
        failures.append(f"afs2-2: auto peak {auto_peak} > "
                        f"monolithic peak {mono_peak}")
else:
    failures.append("afs2-2: missing auto/monolithic rows")

# --- gate 4: racing vs best fixed engine on rings -------------------------
with open(f"{bench_dir}/BENCH_bes.json") as f:
    bes = json.load(f)["results"]
by_model = {}
for r in bes:
    if r["spec"] == "ALL":
        by_model.setdefault(r["model"], {})[r["mode"]] = r
saw_ring_race = False
for model, modes in sorted(by_model.items()):
    if not model.startswith("ring"):
        continue
    if not all(m in modes for m in ("bes", "partitioned", "race")):
        failures.append(f"{model}: missing bes/partitioned/race rows")
        continue
    for mode, row in modes.items():
        if not row["holds"]:
            failures.append(f"{model}: {mode} verdict flipped to NO")
    saw_ring_race = True
    best = min(modes["bes"]["seconds"], modes["partitioned"]["seconds"])
    race = modes["race"]["seconds"]
    bound = best * race_tol + race_slack
    verdict = "ok" if race <= bound else "FAIL"
    print(f"bench_smoke: {model}: race {race*1e3:.2f}ms vs best fixed "
          f"{best*1e3:.2f}ms (bound {bound*1e3:.2f}ms) {verdict}")
    if race > bound:
        failures.append(f"{model}: race {race:.4f}s > best {best:.4f}s "
                        f"* {race_tol:.2f} + {race_slack:.3f}s")
if not saw_ring_race:
    failures.append("BENCH_bes.json has no ring-* rows to gate")

# --- trend line -----------------------------------------------------------
stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
line = (f"{stamp},{ratios.get('afs1-batch-8', float('nan')):.3f},"
        f"{ratios.get('afs1-batch-16', float('nan')):.3f},"
        f"{worst_ring:.3f},{afs2.get('auto', {}).get('peak_live_nodes', 0)}")
try:
    with open(trend, "a") as f:
        if f.tell() == 0:
            f.write("utc,pool_serial_batch8,pool_serial_batch16,"
                    "worst_ring_auto_best,afs2_2_auto_peak\n")
        f.write(line + "\n")
    print(f"bench_smoke: trend: {line} >> {trend}")
except OSError as e:
    print(f"bench_smoke: trend append skipped ({e})")

if failures:
    for msg in failures:
        print(f"bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)
EOF
rc=$?
[ "$rc" -eq 0 ] || exit "$rc"
note "PASS"
