#!/usr/bin/env bash
# Cluster-mode smoke: a coordinator fronting three shard daemons, with
# fingerprint routing, a fleet-wide warm-cache resubmission, health
# accounting, offline cache compaction, the submit retry backoff, and a
# SIGTERM drain that leaves the shards serving.
#
#   scripts/cluster_smoke.sh [path/to/cmc]
#
# Sequence (all against a throwaway work dir):
#   1. Three `cmc serve` shards on Unix sockets, each with its own cache
#      dir; a topology file names them; `cmc coordinator` fronts them and
#      must report 3/3 shards up over STATUS (version + protocol_rev
#      stamped).
#   2. Submit composed AFS-2 through the coordinator: Holds, 12
#      obligations, every outcome attributed to a shard, and the work
#      actually spread over more than one shard.
#   3. Resubmit identically: rendezvous routing sends every obligation
#      back to the shard that decided it, so the whole job is served from
#      shard caches (verdict_source "cache", never "checked") — the
#      fleet-wide warm win the coordinator exists for.
#   4. `cmc cache compact` over a shard's store: idempotent, size
#      reported, and the store still loads afterwards (the warm resubmit
#      repeated after compaction stays all-cache).
#   5. Submit retry: against a coordinator with --max-inflight 0 (always
#      BUSY), `--max-retries 2` must retry with backoff and then exit 6;
#      without the flag it must fail fast with exit 6 and no retries.
#   6. SIGTERM drains the coordinator (exit 0, socket unlinked) while the
#      shards keep serving; then the shards drain cleanly too.
set -u

CMC=${1:-build/tools/cmc}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cmc-cluster-smoke.XXXXXX")
MODEL=models/afs2_composed.smv
PIDS=

cleanup() {
  for p in $PIDS; do kill -9 "$p" 2>/dev/null; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "cluster-smoke: $*"; }

[ -x "$CMC" ] || fail "no cmc binary at $CMC"

wait_ready() { # socket, logfile
  for _ in $(seq 100); do
    "$CMC" submit --socket "$1" --status > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "nothing answered on $1: $(cat "$2")"
}

# ---------------------------------------------------------------------------
# 1. Three shards + a coordinator
# ---------------------------------------------------------------------------
for i in 1 2 3; do
  "$CMC" serve --socket "$WORK/s$i.sock" --cache-dir "$WORK/cache$i" \
    > "$WORK/s$i.log" 2>&1 &
  PIDS="$PIDS $!"
  eval "S$i=$!"
done
for i in 1 2 3; do wait_ready "$WORK/s$i.sock" "$WORK/s$i.log"; done

cat > "$WORK/topology.jsonl" <<EOF
# the smoke fleet: three local shards
{"name": "s1", "socket": "$WORK/s1.sock"}
{"name": "s2", "socket": "$WORK/s2.sock"}
{"name": "s3", "socket": "$WORK/s3.sock"}
EOF

"$CMC" coordinator --socket "$WORK/coord.sock" \
  --topology "$WORK/topology.jsonl" > "$WORK/coord.log" 2>&1 &
COORD=$!
PIDS="$PIDS $COORD"
wait_ready "$WORK/coord.sock" "$WORK/coord.log"

"$CMC" submit --socket "$WORK/coord.sock" --status > "$WORK/status.json" 2>&1 \
  || fail "coordinator STATUS failed: $(cat "$WORK/status.json")"
grep -q '"role": "coordinator"' "$WORK/status.json" || fail "no coordinator role in STATUS"
grep -q '"shards_up": 3' "$WORK/status.json" || fail "expected 3 shards up: $(cat "$WORK/status.json")"
grep -q '"cmc_version": "' "$WORK/status.json" || fail "STATUS is not version-stamped"
grep -q '"protocol_rev": ' "$WORK/status.json" || fail "STATUS carries no protocol revision"
note "coordinator up, fronting 3/3 shards"

# ---------------------------------------------------------------------------
# 2. Cold submit through the coordinator
# ---------------------------------------------------------------------------
"$CMC" submit --socket "$WORK/coord.sock" --id cold --compose \
  --report "$WORK/cold.json" "$MODEL" > "$WORK/cold.log" 2>&1 \
  || fail "cold submission failed: $(cat "$WORK/cold.log")"
grep -q '"verdict": "Holds"' "$WORK/cold.json" || fail "cold run does not hold"
n=$(grep -c '"verdict_source": "checked"' "$WORK/cold.json")
[ "$n" -eq 12 ] || fail "expected 12 checked obligations, got $n"
shards=$(grep -o '"shard": "s[0-9]*"' "$WORK/cold.json" | sort -u | wc -l)
[ "$(grep -c '"shard": "s' "$WORK/cold.json")" -eq 12 ] \
  || fail "not every obligation is attributed to a shard"
[ "$shards" -ge 2 ] || fail "all obligations landed on one shard"
note "cold AFS-2: 12 obligations checked across $shards shards"

# ---------------------------------------------------------------------------
# 3. Warm resubmission must be served entirely from shard caches
# ---------------------------------------------------------------------------
warm_all_cache() { # id
  "$CMC" submit --socket "$WORK/coord.sock" --id "$1" --compose \
    --report "$WORK/$1.json" "$MODEL" > "$WORK/$1.log" 2>&1 \
    || fail "$1 submission failed: $(cat "$WORK/$1.log")"
  grep -q '"verdict": "Holds"' "$WORK/$1.json" || fail "$1 run does not hold"
  if grep -q '"verdict_source": "checked"' "$WORK/$1.json"; then
    fail "$1 run re-checked an obligation"
  fi
  hits=$(grep -c '"verdict_source": "cache"' "$WORK/$1.json")
  [ "$hits" -eq 12 ] || fail "$1: only $hits of 12 obligations from cache"
}
warm_all_cache warm
note "warm AFS-2: all 12 obligations from shard caches"

# ---------------------------------------------------------------------------
# 4. Offline compaction keeps the stores loadable (and warm)
# ---------------------------------------------------------------------------
for i in 1 2 3; do
  if [ -s "$WORK/cache$i/obligations.jsonl" ]; then
    "$CMC" cache compact --cache-dir "$WORK/cache$i" > "$WORK/compact$i.log" 2>&1 \
      || fail "compaction of cache$i failed: $(cat "$WORK/compact$i.log")"
    grep -q "cache compact: " "$WORK/compact$i.log" \
      || fail "no compaction summary for cache$i"
  fi
done
warm_all_cache warm2
note "compaction: stores rewritten, resubmission still all-cache"

# ---------------------------------------------------------------------------
# 5. Submit retry backoff against an always-BUSY coordinator
# ---------------------------------------------------------------------------
"$CMC" coordinator --socket "$WORK/busy.sock" --max-inflight 0 \
  --topology "$WORK/topology.jsonl" > "$WORK/busy-coord.log" 2>&1 &
BUSY=$!
PIDS="$PIDS $BUSY"
wait_ready "$WORK/busy.sock" "$WORK/busy-coord.log"

rc=0
"$CMC" submit --socket "$WORK/busy.sock" --id fast "$MODEL" \
  > "$WORK/fastfail.log" 2>&1 || rc=$?
[ "$rc" -eq 6 ] || fail "fail-fast BUSY submit exited $rc, want 6"
grep -Eq "retry [0-9]+/" "$WORK/fastfail.log" && fail "retried without --max-retries"

rc=0
"$CMC" submit --socket "$WORK/busy.sock" --id retried \
  --max-retries 2 --retry-ms 50 "$MODEL" > "$WORK/retry.log" 2>&1 || rc=$?
[ "$rc" -eq 6 ] || fail "retried BUSY submit exited $rc, want 6"
[ "$(grep -Ec "retry [0-9]+/" "$WORK/retry.log")" -eq 2 ] \
  || fail "expected 2 retry attempts: $(cat "$WORK/retry.log")"
kill -TERM "$BUSY" 2>/dev/null
wait "$BUSY" 2>/dev/null
note "submit retry: fail-fast without the flag, 2 backoff retries with it"

# ---------------------------------------------------------------------------
# 6. Drain the coordinator; the shards must survive it
# ---------------------------------------------------------------------------
kill -TERM "$COORD"
rc=0
wait "$COORD" || rc=$?
[ "$rc" -eq 0 ] || fail "coordinator exited $rc on SIGTERM: $(cat "$WORK/coord.log")"
grep -q "drained" "$WORK/coord.log" || fail "no drain summary in the coordinator log"
[ ! -S "$WORK/coord.sock" ] || fail "coordinator socket not unlinked"
for i in 1 2 3; do
  "$CMC" submit --socket "$WORK/s$i.sock" --status > /dev/null 2>&1 \
    || fail "shard s$i stopped serving when the coordinator drained"
done
note "coordinator drained (exit 0); all shards still serving"

for i in 1 2 3; do
  eval "pid=\$S$i"
  kill -TERM "$pid"
  rc=0
  wait "$pid" || rc=$?
  [ "$rc" -eq 0 ] || fail "shard s$i exited $rc on SIGTERM"
done
PIDS=
note "shards drained cleanly"

note "PASS"
