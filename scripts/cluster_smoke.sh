#!/usr/bin/env bash
# Cluster-mode smoke: a coordinator fronting three shard daemons, with
# fingerprint routing, a fleet-wide warm-cache resubmission, health
# accounting, offline cache compaction, the submit retry backoff, and a
# SIGTERM drain that leaves the shards serving.
#
#   scripts/cluster_smoke.sh [path/to/cmc]
#
# Sequence (all against a throwaway work dir):
#   1. Three `cmc serve` shards on Unix sockets, each with its own cache
#      dir; a topology file names them; `cmc coordinator` fronts them and
#      must report 3/3 shards up over STATUS (version + protocol_rev
#      stamped).
#   2. Submit composed AFS-2 through the coordinator: Holds, 12
#      obligations, every outcome attributed to a shard, and the work
#      actually spread over more than one shard.
#   3. Resubmit identically: rendezvous routing sends every obligation
#      back to the shard that decided it, so the whole job is served from
#      shard caches (verdict_source "cache", never "checked") — the
#      fleet-wide warm win the coordinator exists for.
#   4. `cmc cache compact` over a shard's store: idempotent, size
#      reported, and the store still loads afterwards (the warm resubmit
#      repeated after compaction stays all-cache).
#   5. Dynamic membership: TOPOLOGY lists the roster with lifecycle
#      state; JOIN admits a fourth shard without restarting the
#      coordinator (and rendezvous routing hands it keys); LEAVE
#      decommissions it again; SIGHUP re-reads the topology file.
#   6. Hedged dispatch: a second coordinator with --hedge-ms fronts the
#      same shards; with one shard SIGSTOPped, its obligations must be
#      hedged to the next rendezvous candidate ("hedged": true) and the
#      job still completes with no attribution to the stalled shard.
#   7. Replica tier: SIGKILL a shard that decided cold work; the warm
#      resubmit is still all-cache with nothing attributed to the dead
#      shard (its verdicts are served by the rendezvous successor's
#      replica); restart the same `cmc serve` and JOIN it back — the
#      fleet returns to 3/3 with no coordinator restart.
#   8. Submit retry: against a coordinator with --max-inflight 0 (always
#      BUSY), `--max-retries 2` must retry with backoff and then exit 6;
#      without the flag it must fail fast with exit 6 and no retries.
#   9. SIGTERM drains the coordinator (exit 0, socket unlinked) while the
#      shards keep serving; then the shards drain cleanly too.
set -u

CMC=${1:-build/tools/cmc}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cmc-cluster-smoke.XXXXXX")
MODEL=models/afs2_composed.smv
PIDS=

cleanup() {
  for p in $PIDS; do kill -9 "$p" 2>/dev/null; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "cluster-smoke: $*"; }

[ -x "$CMC" ] || fail "no cmc binary at $CMC"

wait_ready() { # socket, logfile
  for _ in $(seq 100); do
    "$CMC" submit --socket "$1" --status > /dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "nothing answered on $1: $(cat "$2")"
}

# ---------------------------------------------------------------------------
# 1. Three shards + a coordinator
# ---------------------------------------------------------------------------
for i in 1 2 3; do
  "$CMC" serve --socket "$WORK/s$i.sock" --cache-dir "$WORK/cache$i" \
    > "$WORK/s$i.log" 2>&1 &
  PIDS="$PIDS $!"
  eval "S$i=$!"
done
for i in 1 2 3; do wait_ready "$WORK/s$i.sock" "$WORK/s$i.log"; done

cat > "$WORK/topology.jsonl" <<EOF
# the smoke fleet: three local shards
{"name": "s1", "socket": "$WORK/s1.sock"}
{"name": "s2", "socket": "$WORK/s2.sock"}
{"name": "s3", "socket": "$WORK/s3.sock"}
EOF

"$CMC" coordinator --socket "$WORK/coord.sock" \
  --topology "$WORK/topology.jsonl" > "$WORK/coord.log" 2>&1 &
COORD=$!
PIDS="$PIDS $COORD"
wait_ready "$WORK/coord.sock" "$WORK/coord.log"

"$CMC" submit --socket "$WORK/coord.sock" --status > "$WORK/status.json" 2>&1 \
  || fail "coordinator STATUS failed: $(cat "$WORK/status.json")"
grep -q '"role": "coordinator"' "$WORK/status.json" || fail "no coordinator role in STATUS"
grep -q '"shards_up": 3' "$WORK/status.json" || fail "expected 3 shards up: $(cat "$WORK/status.json")"
grep -q '"cmc_version": "' "$WORK/status.json" || fail "STATUS is not version-stamped"
grep -q '"protocol_rev": ' "$WORK/status.json" || fail "STATUS carries no protocol revision"
note "coordinator up, fronting 3/3 shards"

# ---------------------------------------------------------------------------
# 2. Cold submit through the coordinator
# ---------------------------------------------------------------------------
"$CMC" submit --socket "$WORK/coord.sock" --id cold --compose \
  --report "$WORK/cold.json" "$MODEL" > "$WORK/cold.log" 2>&1 \
  || fail "cold submission failed: $(cat "$WORK/cold.log")"
grep -q '"verdict": "Holds"' "$WORK/cold.json" || fail "cold run does not hold"
n=$(grep -c '"verdict_source": "checked"' "$WORK/cold.json")
[ "$n" -eq 12 ] || fail "expected 12 checked obligations, got $n"
shards=$(grep -o '"shard": "s[0-9]*"' "$WORK/cold.json" | sort -u | wc -l)
[ "$(grep -c '"shard": "s' "$WORK/cold.json")" -eq 12 ] \
  || fail "not every obligation is attributed to a shard"
[ "$shards" -ge 2 ] || fail "all obligations landed on one shard"
note "cold AFS-2: 12 obligations checked across $shards shards"

# ---------------------------------------------------------------------------
# 3. Warm resubmission must be served entirely from shard caches
# ---------------------------------------------------------------------------
warm_all_cache() { # id
  "$CMC" submit --socket "$WORK/coord.sock" --id "$1" --compose \
    --report "$WORK/$1.json" "$MODEL" > "$WORK/$1.log" 2>&1 \
    || fail "$1 submission failed: $(cat "$WORK/$1.log")"
  grep -q '"verdict": "Holds"' "$WORK/$1.json" || fail "$1 run does not hold"
  if grep -q '"verdict_source": "checked"' "$WORK/$1.json"; then
    fail "$1 run re-checked an obligation"
  fi
  hits=$(grep -c '"verdict_source": "cache"' "$WORK/$1.json")
  [ "$hits" -eq 12 ] || fail "$1: only $hits of 12 obligations from cache"
}
warm_all_cache warm
note "warm AFS-2: all 12 obligations from shard caches"

# ---------------------------------------------------------------------------
# 4. Offline compaction keeps the stores loadable (and warm)
# ---------------------------------------------------------------------------
for i in 1 2 3; do
  if [ -s "$WORK/cache$i/obligations.jsonl" ]; then
    "$CMC" cache compact --cache-dir "$WORK/cache$i" > "$WORK/compact$i.log" 2>&1 \
      || fail "compaction of cache$i failed: $(cat "$WORK/compact$i.log")"
    grep -q "cache compact: " "$WORK/compact$i.log" \
      || fail "no compaction summary for cache$i"
  fi
done
warm_all_cache warm2
note "compaction: stores rewritten, resubmission still all-cache"

# ---------------------------------------------------------------------------
# 5. Dynamic membership: TOPOLOGY, JOIN, LEAVE, SIGHUP reload
# ---------------------------------------------------------------------------
"$CMC" submit --socket "$WORK/coord.sock" --topology > "$WORK/topo.json" 2>&1 \
  || fail "TOPOLOGY failed: $(cat "$WORK/topo.json")"
[ "$(grep -o '"state": "up"' "$WORK/topo.json" | wc -l)" -eq 3 ] \
  || fail "TOPOLOGY does not list 3 up shards: $(cat "$WORK/topo.json")"
grep -q '"protocol_rev": 3' "$WORK/topo.json" || fail "TOPOLOGY lacks protocol_rev 3"
grep -q '"replication": ' "$WORK/topo.json" || fail "TOPOLOGY lacks the replication factor"
grep -q '"probation_required": ' "$WORK/topo.json" || fail "TOPOLOGY lacks lifecycle detail"

# JOIN a fourth shard while the coordinator keeps serving.
"$CMC" serve --socket "$WORK/s4.sock" --cache-dir "$WORK/cache4" \
  > "$WORK/s4.log" 2>&1 &
S4=$!
PIDS="$PIDS $S4"
wait_ready "$WORK/s4.sock" "$WORK/s4.log"
"$CMC" submit --socket "$WORK/coord.sock" --join s4 \
  --shard-socket "$WORK/s4.sock" > "$WORK/join.json" 2>&1 \
  || fail "JOIN s4 failed: $(cat "$WORK/join.json")"
grep -q '"state": "up"' "$WORK/join.json" || fail "joined shard not up: $(cat "$WORK/join.json")"
"$CMC" submit --socket "$WORK/coord.sock" --topology > "$WORK/topo4.json" 2>&1
grep -q '"shards_total": 4' "$WORK/topo4.json" || fail "roster did not grow to 4"

# Rendezvous hashing must hand the newcomer keys.  The cluster threshold
# is part of the fingerprint, so each threshold re-keys the whole job;
# the chance that three independent keyings all miss one of four shards
# is (3/4)^36 — negligible.
found=
for t in 1025 1026 1027; do
  "$CMC" submit --socket "$WORK/coord.sock" --id "join-t$t" --compose \
    --cluster "$t" --report "$WORK/join-t$t.json" "$MODEL" \
    > "$WORK/join-t$t.log" 2>&1 \
    || fail "submission at threshold $t failed: $(cat "$WORK/join-t$t.log")"
  if grep -q '"shard": "s4"' "$WORK/join-t$t.json"; then found=$t; break; fi
done
[ -n "$found" ] || fail "no keying ever routed an obligation to the joined shard"
note "membership: s4 joined live and owns keys (threshold $found)"

# LEAVE decommissions it again, and SIGHUP re-reads the topology file
# (which still names the original three) as a no-op diff.
"$CMC" submit --socket "$WORK/coord.sock" --leave s4 > "$WORK/leave.json" 2>&1 \
  || fail "LEAVE s4 failed: $(cat "$WORK/leave.json")"
"$CMC" submit --socket "$WORK/coord.sock" --topology > "$WORK/topo3.json" 2>&1
grep -q '"shards_total": 3' "$WORK/topo3.json" || fail "roster did not shrink to 3"
kill -TERM "$S4" 2>/dev/null
wait "$S4" 2>/dev/null
kill -HUP "$COORD"
for _ in $(seq 50); do
  grep -q "topology reload" "$WORK/coord.log" && break
  sleep 0.1
done
grep -q "topology reload" "$WORK/coord.log" \
  || fail "SIGHUP produced no topology reload summary: $(cat "$WORK/coord.log")"
note "membership: s4 left, SIGHUP reload acknowledged"

# ---------------------------------------------------------------------------
# 6. Hedged dispatch around a stalled shard
# ---------------------------------------------------------------------------
victim=$(grep -o '"shard": "s[0-9]*"' "$WORK/cold.json" | head -1 \
  | sed 's/.*"\(s[0-9]*\)"/\1/')
[ -n "$victim" ] || fail "no shard attribution in the cold report"
eval "VPID=\$S${victim#s}"

# A dedicated coordinator with hedging on and probes effectively off, so
# the stalled shard stays nominally healthy and the hedge (not a
# mark-down) is what rescues its keys.
"$CMC" coordinator --socket "$WORK/hedge.sock" --topology "$WORK/topology.jsonl" \
  --hedge-ms 200 --probe-interval-ms 60000 > "$WORK/hedge-coord.log" 2>&1 &
HEDGE=$!
PIDS="$PIDS $HEDGE"
wait_ready "$WORK/hedge.sock" "$WORK/hedge-coord.log"

kill -STOP "$VPID"
"$CMC" submit --socket "$WORK/hedge.sock" --id hedged --compose \
  --report "$WORK/hedged.json" "$MODEL" > "$WORK/hedged.log" 2>&1 \
  || { kill -CONT "$VPID"; fail "hedged submission failed: $(cat "$WORK/hedged.log")"; }
kill -CONT "$VPID"
grep -q '"verdict": "Holds"' "$WORK/hedged.json" || fail "hedged run does not hold"
grep -q '"hedged": true' "$WORK/hedged.json" \
  || fail "no obligation was hedged around the stalled shard"
grep -q "\"shard\": \"$victim\"" "$WORK/hedged.json" \
  && fail "the stalled shard still won an obligation"
kill -TERM "$HEDGE"
wait "$HEDGE" 2>/dev/null
note "hedging: $victim stalled, its keys hedged to the next candidate"

# ---------------------------------------------------------------------------
# 7. Replica tier serves a dead shard's verdicts; the shard rejoins live
# ---------------------------------------------------------------------------
vnum=${victim#s}
kill -9 "$VPID"
"$CMC" submit --socket "$WORK/coord.sock" --id replica --compose \
  --report "$WORK/replica.json" "$MODEL" > "$WORK/replica.log" 2>&1 \
  || fail "post-kill submission failed: $(cat "$WORK/replica.log")"
hits=$(grep -c '"verdict_source": "cache"' "$WORK/replica.json")
[ "$hits" -eq 12 ] || fail "replica run: only $hits of 12 from cache"
grep -q '"verdict_source": "checked"' "$WORK/replica.json" \
  && fail "replica run re-checked an obligation"
grep -q "\"shard\": \"$victim\"" "$WORK/replica.json" \
  && fail "an obligation is still attributed to the dead shard"
note "replica tier: $victim dead, all 12 verdicts served from caches"

# The same `cmc serve` invocation comes back, and JOIN readmits it — the
# coordinator never restarts.  A rejoin lands in probation (or, if the
# background probe beat us to it, is already serving).
"$CMC" serve --socket "$WORK/s$vnum.sock" --cache-dir "$WORK/cache$vnum" \
  >> "$WORK/s$vnum.log" 2>&1 &
eval "S$vnum=$!"
PIDS="$PIDS $!"
wait_ready "$WORK/s$vnum.sock" "$WORK/s$vnum.log"
rc=0
"$CMC" submit --socket "$WORK/coord.sock" --join "$victim" \
  --shard-socket "$WORK/s$vnum.sock" > "$WORK/rejoin.json" 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
  grep -q '"state": "probation"' "$WORK/rejoin.json" \
    || fail "rejoin not in probation: $(cat "$WORK/rejoin.json")"
else
  grep -q "already" "$WORK/rejoin.json" \
    || fail "rejoin failed: $(cat "$WORK/rejoin.json")"
fi
for _ in $(seq 100); do
  "$CMC" submit --socket "$WORK/coord.sock" --status > "$WORK/rejoin-status.json" 2>/dev/null
  grep -q '"shards_up": 3' "$WORK/rejoin-status.json" && break
  sleep 0.2
done
grep -q '"shards_up": 3' "$WORK/rejoin-status.json" \
  || fail "$victim never served out probation: $(cat "$WORK/rejoin-status.json")"
warm_all_cache warm3
note "rejoin: $victim back through probation, fleet 3/3, still all-cache"

# ---------------------------------------------------------------------------
# 8. Submit retry backoff against an always-BUSY coordinator
# ---------------------------------------------------------------------------
"$CMC" coordinator --socket "$WORK/busy.sock" --max-inflight 0 \
  --topology "$WORK/topology.jsonl" > "$WORK/busy-coord.log" 2>&1 &
BUSY=$!
PIDS="$PIDS $BUSY"
wait_ready "$WORK/busy.sock" "$WORK/busy-coord.log"

rc=0
"$CMC" submit --socket "$WORK/busy.sock" --id fast "$MODEL" \
  > "$WORK/fastfail.log" 2>&1 || rc=$?
[ "$rc" -eq 6 ] || fail "fail-fast BUSY submit exited $rc, want 6"
grep -Eq "retry [0-9]+/" "$WORK/fastfail.log" && fail "retried without --max-retries"

rc=0
"$CMC" submit --socket "$WORK/busy.sock" --id retried \
  --max-retries 2 --retry-ms 50 "$MODEL" > "$WORK/retry.log" 2>&1 || rc=$?
[ "$rc" -eq 6 ] || fail "retried BUSY submit exited $rc, want 6"
[ "$(grep -Ec "retry [0-9]+/" "$WORK/retry.log")" -eq 2 ] \
  || fail "expected 2 retry attempts: $(cat "$WORK/retry.log")"
kill -TERM "$BUSY" 2>/dev/null
wait "$BUSY" 2>/dev/null
note "submit retry: fail-fast without the flag, 2 backoff retries with it"

# ---------------------------------------------------------------------------
# 9. Drain the coordinator; the shards must survive it
# ---------------------------------------------------------------------------
kill -TERM "$COORD"
rc=0
wait "$COORD" || rc=$?
[ "$rc" -eq 0 ] || fail "coordinator exited $rc on SIGTERM: $(cat "$WORK/coord.log")"
grep -q "drained" "$WORK/coord.log" || fail "no drain summary in the coordinator log"
[ ! -S "$WORK/coord.sock" ] || fail "coordinator socket not unlinked"
for i in 1 2 3; do
  "$CMC" submit --socket "$WORK/s$i.sock" --status > /dev/null 2>&1 \
    || fail "shard s$i stopped serving when the coordinator drained"
done
note "coordinator drained (exit 0); all shards still serving"

for i in 1 2 3; do
  eval "pid=\$S$i"
  kill -TERM "$pid"
  rc=0
  wait "$pid" || rc=$?
  [ "$rc" -eq 0 ] || fail "shard s$i exited $rc on SIGTERM"
done
PIDS=
note "shards drained cleanly"

note "PASS"
