#!/usr/bin/env bash
# Assume-guarantee learning smoke: `cmc learn` must derive exactly the
# verdicts of a direct composed check, actually learn (not just fall
# back), and serve a warm rerun entirely from the obligation cache.
#
#   scripts/learn_smoke.sh [path/to/cmc]
#
# Sequence (all against a throwaway work dir):
#   1. `cmc learn` on composed AFS-2 with a cold cache dir: Holds, every
#      composed obligation discharged with verdict_source "learned" and
#      assumption metadata (states, relation size, query counts) in the
#      report.
#   2. `cmc check --compose` on the same model: the per-obligation
#      verdicts of the learned and the direct run must be identical.
#   3. Rerun `cmc learn` against the warm cache dir: zero cache misses —
#      every membership/premise query is a pure cache hit — and the same
#      verdicts.
#   4. `genmodel` regenerates the committed goldens byte-identically, and
#      learn-vs-direct agreement holds on the generated ring_3 too
#      (where station 0 needs a genuinely refined 3-state assumption).
set -u

CMC=${1:-build/tools/cmc}
GENMODEL=$(dirname "$CMC")/genmodel
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cmc-learn-smoke.XXXXXX")
MODEL=models/afs2_composed.smv

cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

fail() { echo "learn-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "learn-smoke: $*"; }

[ -x "$CMC" ] || fail "no cmc binary at $CMC"
[ -x "$GENMODEL" ] || fail "no genmodel binary at $GENMODEL"
[ -f "$MODEL" ] || fail "run from the repo root ($MODEL not found)"

# Composed-obligation "id verdict" lines of a report, sorted.
composed_verdicts() { # report.json
  python3 - "$1" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
for o in sorted(report["obligations"], key=lambda o: o["id"]):
    if o["target"] == "composed":
        print(o["id"], o["verdict"])
EOF
}

# --- 1. cold learned run -----------------------------------------------------

"$CMC" learn "$MODEL" --cache-dir "$WORK/cache" --no-journal \
  --report "$WORK/learn.json" --quiet >"$WORK/learn.out" 2>&1 \
  || fail "cmc learn exited $? ($(cat "$WORK/learn.out"))"
grep -q '"verdict": "Holds"' "$WORK/learn.json" || fail "learned run not Holds"
grep -q '"verdict_source": "learned"' "$WORK/learn.json" \
  || fail "no obligation was actually learned"
grep -q '"assumption_states"' "$WORK/learn.json" \
  || fail "learned metadata missing from the report"
note "cold learn: Holds, learned obligations present"

# --- 2. direct cross-validation ---------------------------------------------

"$CMC" check --compose "$MODEL" --no-cache --no-journal \
  --report "$WORK/direct.json" --quiet >/dev/null 2>&1 \
  || fail "direct check exited $?"
composed_verdicts "$WORK/learn.json" >"$WORK/learn.verdicts"
composed_verdicts "$WORK/direct.json" >"$WORK/direct.verdicts"
[ -s "$WORK/learn.verdicts" ] || fail "learned report has no composed obligations"
diff -u "$WORK/direct.verdicts" "$WORK/learn.verdicts" >&2 \
  || fail "learned verdicts differ from the direct composed check"
note "learned verdicts match the direct check ($(wc -l <"$WORK/learn.verdicts") composed obligations)"

# --- 3. warm rerun: all cache -----------------------------------------------

"$CMC" learn "$MODEL" --cache-dir "$WORK/cache" --no-journal \
  --report "$WORK/warm.json" --quiet >/dev/null 2>&1 \
  || fail "warm learn exited $?"
grep -q '"misses": 0' "$WORK/warm.json" \
  || fail "warm rerun missed the cache: $(grep -o '"cache": {[^}]*}' "$WORK/warm.json")"
composed_verdicts "$WORK/warm.json" >"$WORK/warm.verdicts"
diff -u "$WORK/learn.verdicts" "$WORK/warm.verdicts" >&2 \
  || fail "warm rerun changed a verdict"
note "warm rerun: zero cache misses, verdicts stable"

# --- 4. generated models -----------------------------------------------------

for spec in ring_3 afs2_3; do
  family=${spec%_*}; n=${spec#*_}
  "$GENMODEL" "$family" "$n" -o "$WORK/$spec.smv" || fail "genmodel $family $n"
  cmp -s "models/gen/$spec.smv" "$WORK/$spec.smv" \
    || fail "models/gen/$spec.smv is not what genmodel $family $n produces"
done
note "goldens regenerate byte-identically"

"$CMC" learn "$WORK/ring_3.smv" --no-cache --no-journal \
  --report "$WORK/ring-learn.json" --quiet >/dev/null 2>&1 \
  || fail "learn on ring_3 exited $?"
"$CMC" check --compose "$WORK/ring_3.smv" --no-cache --no-journal \
  --report "$WORK/ring-direct.json" --quiet >/dev/null 2>&1 \
  || fail "direct check on ring_3 exited $?"
composed_verdicts "$WORK/ring-learn.json" >"$WORK/ring-learn.verdicts"
composed_verdicts "$WORK/ring-direct.json" >"$WORK/ring-direct.verdicts"
diff -u "$WORK/ring-direct.verdicts" "$WORK/ring-learn.verdicts" >&2 \
  || fail "ring_3 learned verdicts differ from direct"
grep -q '"assumption_states": 3' "$WORK/ring-learn.json" \
  || fail "ring_3 station 0 should need a refined 3-state assumption"
note "ring_3: learned == direct, refinement exercised"

note "PASS"
