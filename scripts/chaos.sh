#!/usr/bin/env bash
# Chaos harness for the failpoint framework and the crash-safe run journal.
#
#   scripts/chaos.sh [path/to/cmc]
#
# Needs a cmc built with -DCMC_FAILPOINTS=ON (default: build-chaos/tools/cmc).
# Two phases, both against models/afs2_composed.smv (12 obligations, all of
# which hold on a healthy run):
#
#  1. Sweep: every registered failpoint site is armed with `error` and with
#     `1in(3)`.  Each run must terminate, produce a report, and never flip
#     a verdict to Fails.  What else we can demand depends on the site:
#       - durability/telemetry sites (cache.*, trace.write, journal.*)
#         degrade: all 12 obligations still Hold and the run exits 0;
#       - scheduler sites fail per obligation: all 12 are reported, each
#         either Holds or the injected Error;
#       - deep sites (bdd.alloc_node, smv.elaborate) can take out the
#         scout's elaboration, collapsing the job to a single
#         <elaboration> Error obligation — so only the no-Fails and
#         termination guarantees apply.
#
#  2. Kill-and-resume: a run wedged at the scheduler.dispatch delay
#     failpoint is SIGKILLed mid-batch; the journal must already hold
#     decided verdicts, and `cmc check --resume` must serve them
#     (verdict_source "journal") and finish with a report identical,
#     verdict for verdict, to a clean run's.
#
#  3. Server kill-and-resume: the same crash, but of the daemon.  A
#     `cmc serve` slowed by the dispatch delay is SIGKILLed mid-CHECK
#     (the submitting client sees the connection drop); a fresh daemon on
#     the SAME socket path, journal, and cache dir must come up (stale
#     socket handling), and resubmitting the model must yield a report
#     identical, verdict for verdict, to the clean run's — with the
#     already-decided obligations served from the journal/cache, never
#     re-checked from scratch.  Then SIGTERM must drain it with exit 0.
#
#  4. Cluster shard loss: a coordinator fronts three dispatch-delayed
#     shards; one shard is SIGKILLed mid-batch while its obligations are
#     in flight.  The coordinator must mark it down, re-dispatch its
#     obligations along their rendezvous order, and still hand the client
#     a report identical, verdict for verdict, to the single-daemon clean
#     run — the client never sees the crash.
#
#  5. Shard death and rejoin with the replica tier (RF=2): a shard that
#     already decided part of a cold batch is SIGKILLed late in the
#     batch.  The client still succeeds; a warm resubmission while the
#     shard is down must be served entirely from caches — the dead
#     shard's decided keys by its rendezvous successor's replica, never
#     re-checked.  Then the same shard (same socket, same cache dir) is
#     restarted and JOINed back in — no coordinator restart — and after
#     probation the warm run matches the clean verdicts with work
#     attributed to the rejoined shard again.
set -u

CMC=${1:-build-chaos/tools/cmc}
MODEL=models/afs2_composed.smv
COMMON="--compose --quiet --threads 2"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cmc-chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "chaos: FAIL: $*" >&2; exit 1; }
note() { echo "chaos: $*"; }

[ -x "$CMC" ] || fail "no cmc binary at $CMC"
"$CMC" failpoints | grep -q "compiled in;" \
  || fail "$CMC was not built with -DCMC_FAILPOINTS=ON"

# "<id> <verdict>" per obligation, sorted — the report is one JSON line.
verdicts() {
  grep -o '"id": "[^"]*", "target": "[^"]*", "spec": "[^"]*", "spec_text": "[^"]*", "verdict": "[^"]*"' "$1" \
    | sed 's/.*"id": "\([^"]*\)".*"verdict": "\([^"]*\)"$/\1 \2/' | sort
}

run_cmc() { # name, cache args..., then extra cmc args
  local name=$1; shift
  timeout 180 "$CMC" check $COMMON \
    --journal "$WORK/$name.journal.jsonl" \
    --report "$WORK/$name.json" \
    --trace "$WORK/$name.trace.jsonl" \
    "$@" "$MODEL" > "$WORK/$name.log" 2>&1
}

# ---------------------------------------------------------------------------
# Baseline: clean run, cold cache (also warms $WORK/warm.cache for the
# cache.disk_load sweeps).
# ---------------------------------------------------------------------------
run_cmc clean --cache-dir "$WORK/warm.cache" \
  || fail "clean run exited $? (log: $(cat "$WORK/clean.log"))"
verdicts "$WORK/clean.json" > "$WORK/clean.verdicts"
TOTAL=$(wc -l < "$WORK/clean.verdicts")
[ "$TOTAL" -eq 12 ] || fail "expected 12 obligations in the clean run, got $TOTAL"
[ "$(awk '$2 != "Holds"' "$WORK/clean.verdicts" | wc -l)" -eq 0 ] \
  || fail "clean run is not all-Holds"
[ -s "$WORK/warm.cache/obligations.jsonl" ] || fail "baseline left no cache store"
note "baseline: $TOTAL obligations, all hold"

# ---------------------------------------------------------------------------
# Phase 1: sweep every site with `error` and `1in(3)`
# ---------------------------------------------------------------------------
SITES=$("$CMC" failpoints | sed -n 's/^  \([a-z_.]*\) .*/\1/p')
[ -n "$SITES" ] || fail "no failpoint sites listed"
echo "$SITES" | grep -q "scheduler.dispatch" || fail "site list looks wrong: $SITES"

for site in $SITES; do
  for action in error '1in(3)'; do
    name="sweep-$site-$action"
    case $site in
      cache.disk_load)
        # Needs a populated store to load; degradation must not corrupt it
        # for later iterations, but keep runs independent anyway.
        cp -r "$WORK/warm.cache" "$WORK/$name.cache"
        set -- --cache-dir "$WORK/$name.cache" ;;
      journal.load)
        # Only fires on --resume: replay a copy of the baseline journal.
        cp "$WORK/clean.journal.jsonl" "$WORK/$name.journal.jsonl"
        set -- --no-cache --resume ;;
      *)
        set -- --cache-dir "$WORK/$name.cache" ;;
    esac
    run_cmc "$name" "$@" --failpoint "$site=$action"
    rc=$?
    [ "$rc" -ne 124 ] || fail "$site=$action: run timed out (hang)"
    [ -s "$WORK/$name.json" ] || fail "$site=$action: no report written"
    verdicts "$WORK/$name.json" > "$WORK/$name.verdicts"
    n=$(wc -l < "$WORK/$name.verdicts")
    [ "$n" -ge 1 ] || fail "$site=$action: empty report"
    # Injection must never flip a verdict: the model holds, so anything
    # other than Holds must be the injected Error — never Fails, and never
    # a bogus budget verdict.
    bad=$(awk '$2 != "Holds" && $2 != "Error"' "$WORK/$name.verdicts")
    [ -z "$bad" ] || fail "$site=$action: unexpected verdicts: $bad"
    case $site in
      cache.*|trace.*|journal.*)
        # Durability/telemetry sites degrade; verdicts must be untouched.
        [ "$n" -eq "$TOTAL" ] \
          || fail "$site=$action: $n of $TOTAL obligations reported"
        errs=$(awk '$2 == "Error"' "$WORK/$name.verdicts" | wc -l)
        [ "$errs" -eq 0 ] \
          || fail "$site=$action: degradation site produced $errs Error verdict(s)"
        [ "$rc" -eq 0 ] || fail "$site=$action: degraded run exited $rc"
        ;;
      scheduler.*)
        # Fails per obligation: siblings must all still be reported.
        [ "$n" -eq "$TOTAL" ] \
          || fail "$site=$action: $n of $TOTAL obligations reported"
        ;;
    esac
    note "sweep $site=$action: ok (exit $rc, $(awk '$2 == "Holds"' "$WORK/$name.verdicts" | wc -l)/$n hold)"
  done
done

# ---------------------------------------------------------------------------
# Phase 2: SIGKILL mid-batch, then --resume
# ---------------------------------------------------------------------------
CMC_FAILPOINTS="scheduler.dispatch=delay(1000)" "$CMC" check $COMMON --no-cache \
  --journal "$WORK/kr.journal.jsonl" --report "$WORK/kr.json" \
  --trace "$WORK/kr.trace.jsonl" "$MODEL" > "$WORK/kr.log" 2>&1 &
pid=$!
sleep 3
kill -9 "$pid" 2>/dev/null || fail "run finished before the SIGKILL (delay too short)"
wait "$pid" 2>/dev/null
note "SIGKILLed pid $pid mid-batch"

[ -s "$WORK/kr.journal.jsonl" ] || fail "no journal survived the SIGKILL"
decided=$(grep -c '"verdict": "Holds"' "$WORK/kr.journal.jsonl" || true)
[ "$decided" -gt 0 ] || fail "journal holds no decided verdicts"
[ "$decided" -lt "$TOTAL" ] || fail "all obligations decided before the kill"
note "journal survived with $decided/$TOTAL decided verdicts"

run_cmc resume --no-cache --resume --journal "$WORK/kr.journal.jsonl" \
  || fail "resume run exited $? (log: $(cat "$WORK/resume.log"))"
served=$(grep -o '"verdict_source": "journal"' "$WORK/resume.json" | wc -l)
[ "$served" -gt 0 ] || fail "resume served nothing from the journal"
verdicts "$WORK/resume.json" > "$WORK/resume.verdicts"
diff -u "$WORK/clean.verdicts" "$WORK/resume.verdicts" \
  || fail "resumed report differs from the clean run"
note "resume served $served journaled verdicts; final report matches clean"

# ---------------------------------------------------------------------------
# Phase 3: SIGKILL the daemon mid-CHECK, restart on the same state, resubmit
# ---------------------------------------------------------------------------
SOCK=$WORK/chaos.sock
start_daemon() { # extra serve args...
  "$CMC" serve --socket "$SOCK" --compose --threads 2 \
    --journal "$WORK/srv.journal.jsonl" --cache-dir "$WORK/srv.cache" \
    --trace "$WORK/srv.trace.jsonl" "$@" >> "$WORK/srv.log" 2>&1 &
  SRV=$!
  # A stale socket file from a SIGKILLed predecessor still exists, so poll
  # with a real STATUS round-trip, not a file check.
  for _ in $(seq 100); do
    "$CMC" submit --socket "$SOCK" --status > /dev/null 2>&1 && return 0
    kill -0 "$SRV" 2>/dev/null || fail "daemon died on start: $(cat "$WORK/srv.log")"
    sleep 0.1
  done
  fail "daemon never answered on $SOCK: $(cat "$WORK/srv.log")"
}

start_daemon --failpoint "scheduler.dispatch=delay(1000)"
"$CMC" submit --socket "$SOCK" --id doomed --report "$WORK/srv-doomed.json" \
  "$MODEL" > "$WORK/srv-doomed.log" 2>&1 &
client=$!
sleep 3
kill -9 "$SRV" 2>/dev/null || fail "daemon finished before the SIGKILL"
wait "$SRV" 2>/dev/null
wait "$client" 2>/dev/null \
  && fail "client reported success although its daemon was SIGKILLed"
note "SIGKILLed daemon pid $SRV mid-CHECK"

[ -s "$WORK/srv.journal.jsonl" ] || fail "no server journal survived the SIGKILL"
decided=$(grep -c '"verdict": "Holds"' "$WORK/srv.journal.jsonl" || true)
[ "$decided" -gt 0 ] || fail "server journal holds no decided verdicts"
[ "$decided" -lt "$TOTAL" ] || fail "all obligations decided before the kill"
note "server journal survived with $decided/$TOTAL decided verdicts"

# Restart on the same socket (now stale), journal, and cache; no failpoint.
start_daemon --resume
"$CMC" submit --socket "$SOCK" --id retry --report "$WORK/srv-retry.json" \
  "$MODEL" > "$WORK/srv-retry.log" 2>&1 \
  || fail "resubmission failed: $(cat "$WORK/srv-retry.log")"
verdicts "$WORK/srv-retry.json" > "$WORK/srv-retry.verdicts"
diff -u "$WORK/clean.verdicts" "$WORK/srv-retry.verdicts" \
  || fail "post-restart report differs from the clean run"
replayed=$(grep -o '"verdict_source": "\(journal\|cache\)"' "$WORK/srv-retry.json" | wc -l)
[ "$replayed" -ge "$decided" ] \
  || fail "only $replayed of $decided decided obligations were replayed"
note "restarted daemon replayed $replayed verdicts; report matches clean"

kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM: $(cat "$WORK/srv.log")"
[ ! -S "$SOCK" ] || fail "socket not unlinked on drain"
note "daemon drained cleanly after the chaos (exit 0)"

# ---------------------------------------------------------------------------
# Phase 4: SIGKILL one shard of a cluster mid-batch
# ---------------------------------------------------------------------------
# Every obligation takes >= 1 s on a shard, so a kill 0.8 s into the batch
# is guaranteed to catch the victim's obligations either in flight (the
# transport error path) or still queued (the connect-failure path); both
# must end in a re-dispatch, never in a client-visible error.
for i in 1 2 3; do
  "$CMC" serve --socket "$WORK/cs$i.sock" --threads 2 \
    --failpoint "scheduler.dispatch=delay(1000)" \
    > "$WORK/cs$i.log" 2>&1 &
  eval "CS$i=$!"
done
for i in 1 2 3; do
  for _ in $(seq 100); do
    "$CMC" submit --socket "$WORK/cs$i.sock" --status > /dev/null 2>&1 && break
    sleep 0.1
  done
done
cat > "$WORK/topology.jsonl" <<EOF
{"name": "s1", "socket": "$WORK/cs1.sock"}
{"name": "s2", "socket": "$WORK/cs2.sock"}
{"name": "s3", "socket": "$WORK/cs3.sock"}
EOF
"$CMC" coordinator --socket "$WORK/coord.sock" \
  --topology "$WORK/topology.jsonl" \
  --probe-interval-ms 200 --fail-threshold 1 > "$WORK/coord.log" 2>&1 &
COORD=$!
for _ in $(seq 100); do
  "$CMC" submit --socket "$WORK/coord.sock" --status > /dev/null 2>&1 && break
  sleep 0.1
done

"$CMC" submit --socket "$WORK/coord.sock" --id doomed-shard --compose \
  --report "$WORK/cluster.json" "$MODEL" > "$WORK/cluster.log" 2>&1 &
client=$!
sleep 0.8
kill -9 "$CS2" 2>/dev/null || fail "shard s2 died before the SIGKILL"
wait "$CS2" 2>/dev/null
note "SIGKILLed shard s2 (pid $CS2) mid-batch"

wait "$client" \
  || fail "client failed although the ring survived: $(cat "$WORK/cluster.log")"
verdicts "$WORK/cluster.json" > "$WORK/cluster.verdicts"
diff -u "$WORK/clean.verdicts" "$WORK/cluster.verdicts" \
  || fail "cluster report differs from the single-daemon clean run"
grep -q '"shard": "s2"' "$WORK/cluster.json" \
  && fail "an outcome is attributed to the killed shard"

"$CMC" submit --socket "$WORK/coord.sock" --status > "$WORK/coord-status.json" 2>&1
grep -q '"shards_up": 2' "$WORK/coord-status.json" \
  || fail "killed shard not marked down: $(cat "$WORK/coord-status.json")"
"$CMC" submit --socket "$WORK/coord.sock" --stats > "$WORK/coord-stats.txt" 2>&1
redispatched=$(awk '$1 == "cluster_redispatches" { print $2 }' "$WORK/coord-stats.txt")
[ -n "$redispatched" ] && [ "$redispatched" -ge 1 ] \
  || fail "no re-dispatch recorded after the shard kill"
note "cluster survived the shard kill: verdicts match clean, $redispatched re-dispatched"

kill -TERM "$COORD"
rc=0
wait "$COORD" || rc=$?
[ "$rc" -eq 0 ] || fail "coordinator exited $rc on SIGTERM: $(cat "$WORK/coord.log")"
for pid in "$CS1" "$CS3"; do
  kill -TERM "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
done
note "cluster drained cleanly after the chaos"

# ---------------------------------------------------------------------------
# Phase 5: shard death mid-batch, replica-served warm run, live rejoin
# ---------------------------------------------------------------------------
# Fresh fleet, this time with per-shard cache dirs so the RF=2 replica
# tier has somewhere to land.  The kill comes at 1.5 s: with a 1 s
# dispatch delay and 2 threads per shard, the victim has decided its
# first wave (so there ARE replicas of its verdicts) but not its last.
for i in 1 2 3; do
  "$CMC" serve --socket "$WORK/r$i.sock" --threads 2 \
    --cache-dir "$WORK/rcache$i" \
    --failpoint "scheduler.dispatch=delay(1000)" \
    > "$WORK/r$i.log" 2>&1 &
  eval "RS$i=$!"
done
for i in 1 2 3; do
  for _ in $(seq 100); do
    "$CMC" submit --socket "$WORK/r$i.sock" --status > /dev/null 2>&1 && break
    sleep 0.1
  done
done
cat > "$WORK/rtopology.jsonl" <<EOF
{"name": "s1", "socket": "$WORK/r1.sock"}
{"name": "s2", "socket": "$WORK/r2.sock"}
{"name": "s3", "socket": "$WORK/r3.sock"}
EOF
"$CMC" coordinator --socket "$WORK/rcoord.sock" \
  --topology "$WORK/rtopology.jsonl" \
  --probe-interval-ms 200 --fail-threshold 1 > "$WORK/rcoord.log" 2>&1 &
RCOORD=$!
for _ in $(seq 100); do
  "$CMC" submit --socket "$WORK/rcoord.sock" --status > /dev/null 2>&1 && break
  sleep 0.1
done

"$CMC" submit --socket "$WORK/rcoord.sock" --id replica-cold --compose \
  --report "$WORK/rcold.json" "$MODEL" > "$WORK/rcold.log" 2>&1 &
client=$!
sleep 1.5
kill -9 "$RS3" 2>/dev/null || fail "shard s3 died before the SIGKILL"
wait "$RS3" 2>/dev/null
note "SIGKILLed shard s3 (pid $RS3) mid-batch, after its first wave"

wait "$client" \
  || fail "client failed although the ring survived: $(cat "$WORK/rcold.log")"
verdicts "$WORK/rcold.json" > "$WORK/rcold.verdicts"
diff -u "$WORK/clean.verdicts" "$WORK/rcold.verdicts" \
  || fail "cold report differs from the clean run"
vdecided=$(grep -o '"shard": "s3"' "$WORK/rcold.json" | wc -l)
[ "$vdecided" -ge 1 ] \
  || fail "the victim decided nothing before the kill (kill came too early)"

# Warm resubmission with the victim down: every verdict must come from a
# cache — the victim's own decided keys from its successor's replica.
"$CMC" submit --socket "$WORK/rcoord.sock" --id replica-warm --compose \
  --report "$WORK/rwarm.json" "$MODEL" > "$WORK/rwarm.log" 2>&1 \
  || fail "warm submission failed: $(cat "$WORK/rwarm.log")"
hits=$(grep -o '"verdict_source": "cache"' "$WORK/rwarm.json" | wc -l)
[ "$hits" -eq "$TOTAL" ] || fail "warm run: only $hits of $TOTAL from cache"
grep -q '"verdict_source": "checked"' "$WORK/rwarm.json" \
  && fail "warm run re-checked an obligation while the victim was down"
grep -q '"shard": "s3"' "$WORK/rwarm.json" \
  && fail "an outcome is attributed to the dead shard"
"$CMC" submit --socket "$WORK/rcoord.sock" --stats > "$WORK/rcoord-stats.txt" 2>&1
rputs=$(awk '$1 == "cluster_replica_puts" { print $2 }' "$WORK/rcoord-stats.txt")
[ -n "$rputs" ] && [ "$rputs" -ge 1 ] \
  || fail "no replica write-through recorded"
note "replica tier: victim's $vdecided decided verdicts survived it ($rputs replica puts)"

# Same shard, same socket, same cache dir — and JOIN readmits it without
# touching the coordinator.  A rejoin starts in probation (the 200 ms
# probe loop may readmit it before the JOIN lands; both are fine).
"$CMC" serve --socket "$WORK/r3.sock" --threads 2 \
  --cache-dir "$WORK/rcache3" >> "$WORK/r3.log" 2>&1 &
RS3=$!
for _ in $(seq 100); do
  "$CMC" submit --socket "$WORK/r3.sock" --status > /dev/null 2>&1 && break
  sleep 0.1
done
rc=0
"$CMC" submit --socket "$WORK/rcoord.sock" --join s3 \
  --shard-socket "$WORK/r3.sock" > "$WORK/rejoin.json" 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
  grep -q '"state": "probation"' "$WORK/rejoin.json" \
    || fail "rejoin not in probation: $(cat "$WORK/rejoin.json")"
else
  grep -q "already" "$WORK/rejoin.json" \
    || fail "rejoin failed: $(cat "$WORK/rejoin.json")"
fi
for _ in $(seq 100); do
  "$CMC" submit --socket "$WORK/rcoord.sock" --status > "$WORK/rstatus.json" 2>/dev/null
  grep -q '"shards_up": 3' "$WORK/rstatus.json" && break
  sleep 0.2
done
grep -q '"shards_up": 3' "$WORK/rstatus.json" \
  || fail "rejoined shard never served out probation: $(cat "$WORK/rstatus.json")"

# With the owner back, its keys route home again: verdicts still match
# the clean run, and s3 is doing (or serving) its share once more.
"$CMC" submit --socket "$WORK/rcoord.sock" --id replica-back --compose \
  --report "$WORK/rback.json" "$MODEL" > "$WORK/rback.log" 2>&1 \
  || fail "post-rejoin submission failed: $(cat "$WORK/rback.log")"
verdicts "$WORK/rback.json" > "$WORK/rback.verdicts"
diff -u "$WORK/clean.verdicts" "$WORK/rback.verdicts" \
  || fail "post-rejoin report differs from the clean run"
[ "$(grep -o '"shard": "s3"' "$WORK/rback.json" | wc -l)" -ge 1 ] \
  || fail "no work routed back to the rejoined shard"
note "rejoin: s3 back through probation, verdicts match clean"

kill -TERM "$RCOORD"
rc=0
wait "$RCOORD" || rc=$?
[ "$rc" -eq 0 ] || fail "coordinator exited $rc on SIGTERM: $(cat "$WORK/rcoord.log")"
for pid in "$RS1" "$RS2" "$RS3"; do
  kill -TERM "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
done
note "replica fleet drained cleanly"

note "PASS"
