#!/usr/bin/env bash
# Server-mode smoke: one daemon, concurrent submissions, a warm-cache
# resubmission, metrics consistency, and a SIGTERM drain.
#
#   scripts/server_smoke.sh [path/to/cmc]
#
# Sequence (all against a throwaway work dir):
#   1. `cmc serve` on a Unix-domain socket with a cache dir, journal, and
#      trace; wait for the socket to appear.
#   2. Submit AFS-1 and composed AFS-2 concurrently; both must report
#      Holds (AFS-1: 6 obligations, AFS-2: 12).
#   3. Resubmit the identical composed AFS-2: every obligation must be
#      served from the process-lifetime cache (verdict_source "cache",
#      never "checked") — the warm-win the daemon exists for.
#   4. STATS must be self-consistent: checks_admitted == checks_completed,
#      request_seconds_count matches, the cumulative +Inf latency bucket
#      equals the count, and nothing is left in flight.
#   5. SIGTERM must drain: the daemon exits 0, reports the drain on
#      stdout, and unlinks its socket.
set -u

CMC=${1:-build/tools/cmc}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cmc-server-smoke.XXXXXX")
SOCK=$WORK/cmc.sock
SRV=

cleanup() {
  [ -n "$SRV" ] && kill -9 "$SRV" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "server-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "server-smoke: $*"; }

[ -x "$CMC" ] || fail "no cmc binary at $CMC"

# A STATS metric line is "name value"; missing means 0.
metric() { awk -v n="$1" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }' "$WORK/stats.txt"; }

# ---------------------------------------------------------------------------
# 1. Start the daemon
# ---------------------------------------------------------------------------
"$CMC" serve --socket "$SOCK" --cache-dir "$WORK/cache" \
  --journal "$WORK/journal.jsonl" --trace "$WORK/trace.jsonl" \
  > "$WORK/serve.log" 2>&1 &
SRV=$!

for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SRV" 2>/dev/null || fail "daemon died on start: $(cat "$WORK/serve.log")"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon never bound $SOCK: $(cat "$WORK/serve.log")"
note "daemon up (pid $SRV) on $SOCK"

# ---------------------------------------------------------------------------
# 2. Concurrent submissions: AFS-1 and composed AFS-2
# ---------------------------------------------------------------------------
"$CMC" submit --socket "$SOCK" --id afs1 --report "$WORK/afs1.json" \
  models/afs1_composed.smv > "$WORK/afs1.log" 2>&1 &
A=$!
"$CMC" submit --socket "$SOCK" --id afs2-cold --compose \
  --report "$WORK/afs2-cold.json" \
  models/afs2_composed.smv > "$WORK/afs2-cold.log" 2>&1 &
B=$!
wait "$A" || fail "AFS-1 submission failed: $(cat "$WORK/afs1.log")"
wait "$B" || fail "AFS-2 submission failed: $(cat "$WORK/afs2-cold.log")"
for r in afs1 afs2-cold; do
  grep -q '"verdict": "Holds"' "$WORK/$r.json" || fail "$r does not hold"
done
grep -q '"cmc_version": "' "$WORK/afs1.json" \
  || fail "report is not version-stamped"
note "concurrent AFS-1 + AFS-2: both hold"

# ---------------------------------------------------------------------------
# 3. Identical resubmission must be served entirely from the cache
# ---------------------------------------------------------------------------
"$CMC" submit --socket "$SOCK" --id afs2-warm --compose \
  --report "$WORK/afs2-warm.json" \
  models/afs2_composed.smv > "$WORK/afs2-warm.log" 2>&1 \
  || fail "warm AFS-2 submission failed: $(cat "$WORK/afs2-warm.log")"
grep -q '"verdict": "Holds"' "$WORK/afs2-warm.json" || fail "warm AFS-2 does not hold"
grep -q '"verdict_source": "cache"' "$WORK/afs2-warm.json" \
  || fail "warm run served nothing from the cache"
if grep -q '"verdict_source": "checked"' "$WORK/afs2-warm.json"; then
  fail "warm run re-checked an obligation"
fi
hits=$(grep -c '"verdict_source": "cache"' "$WORK/afs2-warm.json")
note "warm AFS-2: all $hits obligations from cache"

# ---------------------------------------------------------------------------
# 4. STATS consistency
# ---------------------------------------------------------------------------
"$CMC" submit --socket "$SOCK" --stats > "$WORK/stats.txt" 2>&1 \
  || fail "STATS failed: $(cat "$WORK/stats.txt")"
admitted=$(metric checks_admitted)
completed=$(metric checks_completed)
[ "$admitted" -eq 3 ] || fail "expected 3 admitted checks, got $admitted"
[ "$completed" -eq "$admitted" ] \
  || fail "admitted ($admitted) != completed ($completed) with the server idle"
[ "$(metric request_seconds_count)" -eq "$admitted" ] \
  || fail "request_seconds_count disagrees with checks_admitted"
[ "$(metric 'request_seconds_bucket{le="+Inf"}')" -eq "$admitted" ] \
  || fail "+Inf latency bucket does not equal the request count"
[ "$(metric requests_in_flight)" -eq 0 ] || fail "requests still in flight"
[ "$(metric requests_queued)" -eq 0 ] || fail "requests still queued"
[ "$(metric checks_rejected_busy)" -eq 0 ] || fail "unexpected BUSY rejections"
note "STATS consistent: $admitted admitted == $completed completed"

# ---------------------------------------------------------------------------
# 5. SIGTERM drains and exits 0
# ---------------------------------------------------------------------------
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
SRV=
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM: $(cat "$WORK/serve.log")"
grep -q "drained" "$WORK/serve.log" || fail "no drain summary in the serve log"
[ ! -S "$SOCK" ] || fail "socket not unlinked on shutdown"
[ -s "$WORK/journal.jsonl" ] || fail "no journal written"
note "SIGTERM drained cleanly (exit 0)"

note "PASS"
