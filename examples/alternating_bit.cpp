// The alternating bit protocol verified compositionally: sender, receiver,
// and two lossy channels, communicating through shared variables.
//
//   $ ./alternating_bit [--proof]
//
// Safety (no duplicate delivery) is proved with four per-component checks
// via the invariance rule; a global cross-check and a fairness-based
// liveness check (every message eventually delivered unless the channel
// loses forever) round out the picture.  Also prints a simulated lossy run.
#include <cstring>
#include <iostream>

#include "abp/abp.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/prop.hpp"
#include "symbolic/trace.hpp"

using namespace cmc;

int main(int argc, char** argv) {
  bool showProof = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--proof") == 0) showProof = true;
  }

  std::cout << "== alternating bit protocol ==\n";
  std::cout << abp::senderSmv() << abp::receiverSmv() << abp::msgChannelSmv()
            << "\n";

  const abp::AbpReport report = abp::verifyAbp(true, true);
  if (showProof) std::cout << report.proof.render() << "\n";

  std::cout << "safety (AG no duplicate delivery): "
            << (report.safety ? "proved compositionally" : "FAILED") << " ("
            << report.componentChecks << " component checks)\n";
  std::cout << "global cross-check:                "
            << (report.safetyCrossCheck ? "confirmed" : "FAILED") << "\n";
  std::cout << "liveness under channel fairness:   "
            << (report.liveness ? "holds" : "FAILED")
            << " (direct check)\n\n";

  // Simulate a run of the composed protocol.
  symbolic::Context ctx(1 << 14);
  abp::AbpComponents comps = abp::buildAbp(ctx);
  const symbolic::SymbolicSystem whole = symbolic::composeAll(
      {comps.sender.sys, comps.receiver.sys, comps.msgChannel.sys,
       comps.ackChannel.sys});
  symbolic::TraceBuilder builder(whole);
  const bdd::Bdd init = symbolic::propositionalBdd(ctx, abp::abpInit());
  std::cout << "a simulated lossy run (12 steps):\n"
            << builder.simulate(init, 12, /*seed=*/3).toString();
  return report.allOk() ? 0 : 1;
}
