// The paper's §4.3 case study: AFS-2 with callbacks, updates, failures and
// transmission delay, verified compositionally for n clients.  Also
// demonstrates the parallel obligation runner: the per-component checks are
// independent, so they fan out across cores.
//
//   $ ./afs2_verification [numClients] [--cross-check]
#include <cstring>
#include <iostream>
#include <string>

#include "afs/afs2.hpp"
#include "afs/smv_sources.hpp"
#include "afs/verify_afs2.hpp"
#include "comp/verifier.hpp"
#include "symbolic/checker.hpp"

using namespace cmc;

namespace {

/// Build the per-component invariant-step obligations as self-contained
/// parallel tasks (each builds its own BDD manager).
std::vector<comp::Obligation> parallelObligations(int numClients) {
  std::vector<comp::Obligation> obligations;
  const ctl::FormulaPtr inv = afs::afs2Invariant(numClients);
  const ctl::FormulaPtr step = ctl::mkImplies(inv, ctl::AX(inv));

  auto makeCheck = [numClients, step](std::string name, int component) {
    return comp::Obligation{
        std::move(name), [numClients, step, component] {
          symbolic::Context ctx(1 << 14);
          afs::Afs2Components comps =
              afs::buildAfs2(ctx, numClients, /*reflexive=*/true);
          comp::CompositionalVerifier verifier(ctx);
          verifier.addComponent(comps.server.sys);
          for (const smv::ElaboratedModule& client : comps.clients) {
            verifier.addComponent(client.sys);
          }
          // Check the universal step obligation on this one component's
          // expansion by registering only it plus the alphabet carriers.
          comp::ProofTree proof;
          const ctl::Spec spec{"step", ctl::Restriction::trivial(), step};
          // verify() checks every component; emulate the single-component
          // obligation by checking the chosen expansion directly.
          symbolic::SymbolicSystem exp = verifier.component(component);
          std::vector<symbolic::VarId> extra;
          for (std::size_t i = 0; i < verifier.componentCount(); ++i) {
            for (symbolic::VarId v : verifier.component(i).vars) {
              extra.push_back(v);
            }
          }
          symbolic::SymbolicSystem expanded = symbolic::expand(exp, extra);
          symbolic::Checker checker(expanded);
          return checker.holds(spec.r, spec.f);
        }};
  };

  obligations.push_back(makeCheck("server: Inv => AX Inv", 0));
  for (int i = 1; i <= numClients; ++i) {
    obligations.push_back(
        makeCheck("client " + std::to_string(i) + ": Inv => AX Inv", i));
  }
  return obligations;
}

}  // namespace

int main(int argc, char** argv) {
  int numClients = 2;
  bool crossCheck = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cross-check") == 0) {
      crossCheck = true;
    } else {
      numClients = std::stoi(argv[i]);
    }
  }

  std::cout << "== AFS-2 with " << numClients << " client(s) ==\n\n";
  std::cout << "generated server model:\n"
            << afs::afs2ServerSmv(std::min(numClients, 1)) << "\n";

  const afs::Afs2Report report = afs::verifyAfs2(numClients, crossCheck);
  std::cout << report.proof.render() << "\n";
  std::cout << "  (Afs1') safety, compositional: "
            << (report.safety ? "proved" : "FAILED") << "\n";
  if (crossCheck) {
    std::cout << "  (Afs1') direct global check:   "
              << (report.safetyCrossCheck ? "confirmed" : "FAILED") << "\n";
  }
  std::cout << "  per-component model checks:    " << report.componentChecks
            << " (linear in the number of clients)\n\n";

  std::cout << "== parallel discharge of the same obligations ==\n";
  const comp::ParallelReport parallel =
      comp::runObligations(parallelObligations(numClients));
  std::cout << parallel.summary();
  return report.allOk() && parallel.allOk ? 0 : 1;
}
