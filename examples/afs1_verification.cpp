// The paper's §4.2 case study end to end: verify the AFS-1 cache-coherence
// protocol compositionally and print the machine-checked proof tree.
//
//   $ ./afs1_verification [--no-cross-check]
//
// Safety (Afs1) is derived with the invariance rule; liveness (Afs2) with
// seven Rule-4 guarantees chained through the leads-to ledger — exactly the
// argument of §4.2.3, but with every step checked by the tool.
#include <cstring>
#include <iostream>

#include "afs/verify_afs1.hpp"

int main(int argc, char** argv) {
  bool crossCheck = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-cross-check") == 0) crossCheck = false;
  }

  const cmc::afs::Afs1Report report = cmc::afs::verifyAfs1(crossCheck);

  std::cout << report.proof.render() << "\n";
  std::cout << "== AFS-1 verification summary ==\n";
  std::cout << "  (Afs1) safety, compositional:  "
            << (report.safety ? "proved" : "FAILED") << "\n";
  std::cout << "  (Afs2) liveness, compositional: "
            << (report.liveness ? "proved" : "FAILED") << "\n";
  if (crossCheck) {
    std::cout << "  (Afs1) direct global check:     "
              << (report.safetyCrossCheck ? "confirmed" : "FAILED") << "\n";
    std::cout << "  (Afs2) direct global check:     "
              << (report.livenessCrossCheck ? "confirmed" : "FAILED") << "\n";
  }
  std::cout << "  per-component model checks:     " << report.componentChecks
            << "\n";
  return report.allOk() ? 0 : 1;
}
