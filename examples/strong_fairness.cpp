// The paper's Figure 2: a system that needs *strong* fairness.  The ring
// p1 → p2 → … → p6 → p1 has a single exit p1 → q, so the exit transition
// is enabled only intermittently: Rule 4's premise p ⇒ EX q fails, while
// Rule 5 with helpful disjunct p1 derives the progress property
//   r ⊨ (p ⇒ A(p U q))  with  r = (true, {¬p ∨ q}).
//
//   $ ./strong_fairness
#include <iostream>

#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"

using namespace cmc;

int main() {
  const char* model = R"(
MODULE figure2
VAR s : {p1, p2, p3, p4, p5, p6, q};
ASSIGN
  next(s) :=
    case
      s = p1 : {p2, q};
      s = p2 : p3;
      s = p3 : p4;
      s = p4 : p5;
      s = p5 : p6;
      s = p6 : p1;
      1 : s;
    esac;
)";
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, model);
  symbolic::Checker checker(mod.sys);
  std::cout << "Figure 2 system:" << model << "\n";

  const ctl::FormulaPtr p =
      ctl::parse("s=p1 | s=p2 | s=p3 | s=p4 | s=p5 | s=p6");
  const ctl::FormulaPtr q = ctl::parse("s=q");

  // Rule 4 fails: p ⇒ EX q does not hold (only p1 can exit).
  comp::ProofTree proof;
  const auto rule4 = comp::deriveRule4(checker, p, q, proof);
  std::cout << "Rule 4 premise p => EX q: "
            << (rule4.has_value() ? "holds (unexpected!)" : "fails, as the paper explains")
            << "\n";

  // Rule 5 succeeds with helpful disjunct p1.
  const std::vector<ctl::FormulaPtr> ps = {
      ctl::parse("s=p1"), ctl::parse("s=p2"), ctl::parse("s=p3"),
      ctl::parse("s=p4"), ctl::parse("s=p5"), ctl::parse("s=p6")};
  const auto rule5 = comp::deriveRule5(checker, ps, 0, q, proof);
  if (!rule5.has_value()) {
    std::cout << "Rule 5 failed unexpectedly\n";
    return 1;
  }
  std::cout << "Rule 5 derived:\n" << rule5->toString() << "\n";

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(mod.sys);
  std::vector<ctl::Spec> conclusions;
  const bool discharged = verifier.discharge(*rule5, proof, &conclusions);
  std::cout << "left side discharged: " << (discharged ? "yes" : "NO")
            << "\n\n";

  // Show that the conclusion really needs the fairness constraint.
  const ctl::FormulaPtr progress = ctl::mkImplies(p, ctl::AU(p, q));
  const bool withoutFairness =
      checker.holds(ctl::Restriction::trivial(), progress);
  const bool withFairness = checker.holds(comp::progressRestriction(p, q),
                                          progress);
  std::cout << "p => A[p U q] without fairness: "
            << (withoutFairness ? "true" : "false (the ring can cycle forever)")
            << "\n";
  std::cout << "p => A[p U q] under (true, {!p | q}): "
            << (withFairness ? "true" : "false") << "\n\n"
            << proof.render();
  return (!rule4.has_value() && discharged && !withoutFairness &&
          withFairness)
             ? 0
             : 1;
}
