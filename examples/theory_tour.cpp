// A guided tour of the paper's theory on randomly generated systems:
// validates Lemmas 1-11 (§3.2), then demonstrates counterexample traces and
// witnesses on a small broken protocol.
//
//   $ ./theory_tour [seed]
#include <iostream>
#include <string>

#include "comp/lemmas.hpp"
#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/prop.hpp"
#include "symbolic/trace.hpp"

using namespace cmc;

int main(int argc, char** argv) {
  const unsigned seed = argc > 1 ? std::stoul(argv[1]) : 2002;

  std::cout << "== Lemmas 1-11 on random systems (seed " << seed << ") ==\n";
  bool allLemmas = true;
  for (const comp::LemmaResult& result : comp::checkAllLemmas(seed)) {
    allLemmas = allLemmas && result.holds;
    std::cout << "  " << (result.holds ? "ok  " : "FAIL") << " "
              << result.lemma << ": " << result.detail << "\n";
  }

  // A deliberately broken mutual-exclusion "protocol": two processes that
  // both enter when the flag is down.
  std::cout << "\n== counterexample traces on a broken protocol ==\n";
  const char* broken = R"(
MODULE broken
VAR p1 : {out, in};
    p2 : {out, in};
    flag : boolean;
ASSIGN
  next(p1) := case p1 = out & !flag : {out, in}; p1 = in : out; 1 : p1; esac;
  next(p2) := case p2 = out & !flag : {out, in}; p2 = in : out; 1 : p2; esac;
  -- BUG: the flag is never raised.
  next(flag) := flag;
)";
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, broken);
  symbolic::Checker checker(mod.sys);

  ctl::Restriction r;
  r.init = ctl::parse("p1=out & p2=out & !flag");
  r.fairness = {ctl::mkTrue()};
  const ctl::FormulaPtr mutex = ctl::parse("!(p1=in & p2=in)");
  const bool holds = checker.holds(r, ctl::AG(mutex));
  std::cout << "AG !(p1=in & p2=in): " << (holds ? "true" : "false") << "\n";
  if (const auto trace = checker.counterexampleTrace(r, ctl::AG(mutex))) {
    std::cout << "shortest counterexample:\n" << *trace;
  }

  // Witness for the matching existential property.
  symbolic::TraceBuilder builder(mod.sys);
  const bdd::Bdd init = symbolic::propositionalBdd(ctx, r.init);
  const bdd::Bdd bad =
      symbolic::propositionalBdd(ctx, ctl::parse("p1=in & p2=in"));
  if (const auto witness =
          builder.euWitness(init, ctx.mgr().bddTrue(), bad)) {
    std::cout << "E[TRUE U both-in] witness:\n" << witness->toString();
  }
  // And a lasso showing the system can avoid the collision forever.
  if (const auto lasso = builder.egWitness(
          init, symbolic::propositionalBdd(ctx, mutex))) {
    std::cout << "EG mutex lasso (collision is avoidable):\n"
              << lasso->toString();
  }
  return allLemmas && !holds ? 0 : 1;
}
