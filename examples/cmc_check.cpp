// cmc_check: a miniature SMV-style command-line model checker.
//
//   $ ./cmc_check model.smv             # check every module's SPECs
//   $ ./cmc_check --compose model.smv   # also check them on the composition
//   $ ./cmc_check --reorder model.smv   # sift variables before checking
//
// Historically this example carried its own elaborate-and-check loop; it is
// now a thin wrapper over the verification service layer so there is one
// driver code path.  The service rebuilds the model per obligation, runs
// obligations on a thread pool, and aggregates verdicts — this wrapper just
// loads the file and renders the JobReport in the familiar per-spec format.
// For budgets, retries, traces and JSON reports use the full CLI in
// tools/cmc.cpp.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "service/scheduler.hpp"

using namespace cmc;

int main(int argc, char** argv) {
  service::VerificationJob job;
  job.name = "cmc_check";
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compose") == 0) {
      job.options.compose = true;
    } else if (std::strcmp(argv[i], "--reorder") == 0) {
      job.options.reorderBeforeCheck = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::cerr << "usage: cmc_check [--compose] [--reorder] <model.smv>\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cmc_check: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  job.smvText = buffer.str();
  job.sourcePath = path;

  try {
    service::VerificationService svc;
    const service::JobReport report = svc.run(job);

    std::string target;
    bool allTrue = true;
    for (const service::ObligationOutcome& o : report.obligations) {
      if (o.target != target) {
        target = o.target;
        std::cout << "== " << (target == "composed" ? "composed system"
                                                    : "module " + target)
                  << " ==\n";
      }
      std::string text = o.specText;
      if (text.size() > 60) text = text.substr(0, 57) + "...";
      const bool holds = o.verdict == service::Verdict::Holds;
      allTrue = allTrue && holds;
      std::cout << "-- spec. " << text << " is "
                << (holds ? "true" : "false");
      if (!holds && o.verdict != service::Verdict::Fails) {
        std::cout << " (" << service::toString(o.verdict) << ")";
      }
      std::cout << "\n";
      if (!o.error.empty()) std::cout << "--   error: " << o.error << "\n";
      if (!o.counterexample.empty()) {
        std::cout << "-- counterexample:\n" << o.counterexample;
      }
    }
    std::cout << "\n-- verdict: " << service::toString(report.verdict)
              << " (" << report.obligations.size() << " obligations, "
              << service::jsonNumber(report.wallSeconds) << " s wall)\n";
    if (report.verdict == service::Verdict::Error) return 2;
    return allTrue ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "cmc_check: " << e.what() << "\n";
    return 2;
  }
}
