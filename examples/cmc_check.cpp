// cmc_check: a miniature SMV-style command-line model checker.
//
//   $ ./cmc_check model.smv             # check every module's SPECs
//   $ ./cmc_check --compose model.smv   # also check them on the composition
//   $ ./cmc_check --reorder model.smv   # sift variables first, report delta
//
// A file may contain several MODULEs (components sharing variables by
// name).  Each module's SPECs are checked on that component under its own
// INIT/FAIRNESS restriction; with --compose the components are closed
// under stuttering, composed with the interleaving operator, and every
// SPEC is re-checked on the composed system.
//
// Output follows the reports the paper reproduces in Figures 7/10/15/17:
// per-spec verdicts, then the resource summary (user time, BDD nodes
// allocated, transition-relation nodes).  Failing AG specs come with a
// shortest counterexample trace.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bdd/io.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

bool checkSpecs(symbolic::Checker& checker,
                const std::vector<ctl::Spec>& specs) {
  bool allTrue = true;
  for (const ctl::Spec& spec : specs) {
    const bool holds = checker.holds(spec);
    allTrue = allTrue && holds;
    std::string text = ctl::toString(spec.f);
    if (text.size() > 60) text = text.substr(0, 57) + "...";
    std::cout << "-- spec. " << text << " is " << (holds ? "true" : "false")
              << "\n";
    if (!holds) {
      if (const auto trace = checker.counterexampleTrace(spec.r, spec.f)) {
        std::cout << "-- counterexample:\n" << *trace;
      } else if (const auto witness =
                     checker.violationWitness(spec.r, spec.f)) {
        std::cout << "--   violating state: " << *witness << "\n";
      }
    }
  }
  return allTrue;
}

}  // namespace

int main(int argc, char** argv) {
  bool compose = false;
  bool reorder = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compose") == 0) {
      compose = true;
    } else if (std::strcmp(argv[i], "--reorder") == 0) {
      reorder = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::cerr << "usage: cmc_check [--compose] [--reorder] <model.smv>\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cmc_check: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    WallTimer timer;
    symbolic::Context ctx(1 << 14);
    const std::vector<smv::ElaboratedModule> modules =
        smv::elaborateProgram(ctx, buffer.str());

    if (reorder) {
      const std::uint64_t before = ctx.mgr().liveNodeCount();
      const std::uint64_t after = ctx.mgr().reorderSift();
      std::cout << "-- reordering (sifting): " << before << " -> " << after
                << " live BDD nodes, " << ctx.mgr().stats().levelSwaps
                << " level swaps\n\n";
    }

    bool allTrue = true;
    for (const smv::ElaboratedModule& mod : modules) {
      if (modules.size() > 1) {
        std::cout << "== module " << mod.sys.name << " ==\n";
      }
      symbolic::Checker checker(mod.sys);
      allTrue = checkSpecs(checker, mod.specs) && allTrue;
      std::cout << "\n"
                << bdd::resourceReport(ctx.mgr(), mod.sys.transNodeCount(),
                                       mod.sys.vars.size(), timer.seconds())
                << "\n";
    }

    if (compose && modules.size() > 1) {
      std::cout << "== composed system ==\n";
      std::vector<symbolic::SymbolicSystem> components;
      for (const smv::ElaboratedModule& mod : modules) {
        components.push_back(mod.sys);
        symbolic::addReflexive(components.back());
      }
      const symbolic::SymbolicSystem whole =
          symbolic::composeAll(components);
      symbolic::Checker checker(whole);
      for (const smv::ElaboratedModule& mod : modules) {
        allTrue = checkSpecs(checker, mod.specs) && allTrue;
      }
      std::cout << "\n"
                << bdd::resourceReport(ctx.mgr(), whole.transNodeCount(),
                                       whole.vars.size(), timer.seconds());
    }
    return allTrue ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "cmc_check: " << e.what() << "\n";
    return 2;
  }
}
