// Token-ring mutual exclusion, verified compositionally (second case
// study; the "network protocols" domain of the paper's §5 discussion).
//
//   $ ./token_ring [numStations] [--proof]
//
// Safety: AG "no two stations in cs" via the invariance rule.
// Liveness: want0 ⇒ AF cs0 via 3 Rule-4 guarantees per ring hop chained
// with the leads-to ledger — 3(n−1)+1 guarantees, every obligation a
// per-component model check.
#include <cstring>
#include <iostream>
#include <string>

#include "ring/token_ring.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/prop.hpp"
#include "symbolic/trace.hpp"

using namespace cmc;

int main(int argc, char** argv) {
  int n = 3;
  bool showProof = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--proof") == 0) {
      showProof = true;
    } else {
      n = std::stoi(argv[i]);
    }
  }

  std::cout << "== token ring with " << n << " stations ==\n\n";
  std::cout << "station 0 model:\n" << ring::stationSmv(0, n) << "\n";

  const ring::RingReport report =
      ring::verifyTokenRing(n, /*liveness=*/true, /*crossCheck=*/n <= 3);
  if (showProof) std::cout << report.proof.render() << "\n";

  std::cout << "safety  (AG mutex):        "
            << (report.safety ? "proved compositionally" : "FAILED") << "\n";
  std::cout << "liveness (want0 => AF cs0): "
            << (report.liveness ? "proved compositionally" : "FAILED")
            << "\n";
  if (n <= 3) {
    std::cout << "global cross-checks:       "
              << (report.safetyCrossCheck ? "safety ok" : "safety FAILED")
              << ", "
              << (report.livenessCrossCheck ? "liveness ok"
                                            : "liveness FAILED")
              << "\n";
  }
  std::cout << "per-component checks:      " << report.componentChecks
            << "\n\n";

  // Bonus: simulate a run of the composed ring from the initial state.
  symbolic::Context ctx(1 << 14);
  ring::RingComponents comps = ring::buildRing(ctx, n);
  std::vector<symbolic::SymbolicSystem> systems;
  for (const smv::ElaboratedModule& mod : comps.stations) {
    systems.push_back(mod.sys);
  }
  const symbolic::SymbolicSystem whole = symbolic::composeAll(systems);
  symbolic::TraceBuilder builder(whole);
  const bdd::Bdd init = symbolic::propositionalBdd(ctx, ring::ringInit(n));
  std::cout << "a simulated run (10 steps):\n"
            << builder.simulate(init, 10, /*seed=*/42).toString();
  return report.allOk() ? 0 : 1;
}
