// Quickstart: the paper's Figure 1 in code.
//
// Builds two one-atom systems M (over {x}) and M' (over {y}), composes
// them with the interleaving operator, and model checks a few CTL
// properties — first on the components, then compositionally on M ∘ M'.
//
//   $ ./quickstart
#include <iostream>

#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "kripke/composition.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"

using namespace cmc;

int main() {
  // ---- 1. Explicit systems, exactly as in Figure 1 -------------------------
  kripke::ExplicitSystem m({"x"});
  m.addTransition(0b0, 0b1);  // ∅   -> {x}
  m.addTransition(0b1, 0b0);  // {x} -> ∅
  m.addTransition(0b1, 0b1);  // {x} -> {x}
  m.addTransition(0b0, 0b0);  // ∅   -> ∅

  kripke::ExplicitSystem mp({"y"});
  mp.addTransition(0b0, 0b1);
  mp.addTransition(0b1, 0b0);
  mp.addTransition(0b1, 0b1);
  mp.addTransition(0b0, 0b0);

  const kripke::ExplicitSystem whole = kripke::compose(m, mp);
  std::cout << "M o M' has " << whole.stateCount() << " states and "
            << whole.transitionCount() << " transitions (paper lists 12):\n";
  whole.forEachTransition([&](kripke::State s, kripke::State t) {
    std::cout << "  " << whole.stateToString(s) << " -> "
              << whole.stateToString(t) << "\n";
  });

  // ---- 2. The same composition, symbolically --------------------------------
  symbolic::Context ctx;
  symbolic::SymbolicSystem sm = symbolic::symbolicFromExplicit(ctx, m, "M");
  symbolic::SymbolicSystem smp = symbolic::symbolicFromExplicit(ctx, mp, "M'");
  const symbolic::SymbolicSystem composed = symbolic::compose(sm, smp);
  std::cout << "\nsymbolic transition relation: "
            << composed.transNodeCount() << " BDD nodes\n";

  // ---- 3. Model check some properties ---------------------------------------
  symbolic::Checker checker(composed);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  struct Example {
    const char* text;
    const char* comment;
  };
  const Example props[] = {
      {"x -> EX !x", "M can always clear x"},
      {"EF (x & y)", "both atoms can become true"},
      {"x & y -> EX (x & !y) | EX (!x & y)", "interleaving: one at a time"},
      {"AG (x | !x)", "a tautology, globally"},
      {"x -> AX x", "false: x can be cleared"},
  };
  std::cout << "\nmodel checking M o M':\n";
  for (const Example& e : props) {
    const bool holds = checker.holds(trivial, ctl::parse(e.text));
    std::cout << "  " << (holds ? "true " : "false") << "  " << e.text
              << "   -- " << e.comment << "\n";
  }

  // ---- 4. Compositional verification ----------------------------------------
  // "x -> EX !x" is existential (Rule 3): checking it on M alone suffices.
  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(sm);
  verifier.addComponent(smp);
  comp::ProofTree proof;
  const bool ok = verifier.verify(
      ctl::Spec{"clearX", trivial, ctl::parse("x -> EX !x")}, proof);
  std::cout << "\ncompositional verification of x -> EX !x: "
            << (ok ? "ok" : "FAILED") << "\n\n"
            << proof.render();
  return ok ? 0 : 1;
}
