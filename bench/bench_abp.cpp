// Alternating-bit-protocol benchmarks: the compositional safety proof (4
// constant-size component checks regardless of channel behavior), the
// monolithic alternative, and the fairness-based liveness check.
#include "abp/abp.hpp"
#include "bench_common.hpp"
#include "comp/verifier.hpp"
#include "symbolic/composition.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

void report() {
  WallTimer timer;
  const abp::AbpReport rep = abp::verifyAbp(true, true);
  std::printf("== alternating bit protocol ==\n");
  std::printf("no-duplicate-delivery (compositional): %s, %zu component "
              "checks\n",
              rep.safety ? "proved" : "FAILED", rep.componentChecks);
  std::printf("global cross-check:                    %s\n",
              rep.safetyCrossCheck ? "confirmed" : "FAILED");
  std::printf("liveness under channel fairness:       %s\n",
              rep.liveness ? "holds" : "FAILED");
  std::printf("user time: %g s\n\n", timer.seconds());
}

void BM_AbpCompositionalSafety(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(abp::verifyAbp(false, false).safety);
  }
}
BENCHMARK(BM_AbpCompositionalSafety)->Unit(benchmark::kMillisecond);

void BM_AbpMonolithicSafety(benchmark::State& state) {
  for (auto _ : state) {
    symbolic::Context ctx(1 << 14);
    abp::AbpComponents comps = abp::buildAbp(ctx);
    const symbolic::SymbolicSystem whole = symbolic::composeAll(
        {comps.sender.sys, comps.receiver.sys, comps.msgChannel.sys,
         comps.ackChannel.sys});
    symbolic::Checker checker(whole);
    ctl::Restriction r;
    r.init = abp::abpInit();
    r.fairness = {ctl::mkTrue()};
    benchmark::DoNotOptimize(checker.holds(r, ctl::AG(abp::abpTarget())));
  }
}
BENCHMARK(BM_AbpMonolithicSafety)->Unit(benchmark::kMillisecond);

void BM_AbpLivenessUnderFairness(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(abp::verifyAbp(true, false).liveness);
  }
}
BENCHMARK(BM_AbpLivenessUnderFairness)->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("abp", report)
