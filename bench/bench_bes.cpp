// BES backend vs the symbolic engine vs per-obligation racing, through
// the verification service (so all three modes pay the same scout /
// snapshot / dispatch overhead and the race rows measure the *real*
// scheduler race, thread spawn and loser cancellation included).  The
// verdicts are identical across modes by construction — cross-validated
// by BesChecker.MatchesSymbolicCheckerOnEveryModel and
// RaceTest.RacedVerdictsAgreeWithFixedEnginesOnEveryModel; what changes
// is wall clock: the BES solver wins on small explicit state spaces
// (no BDD fixpoints to set up), the symbolic engine wins once the state
// count grows past what local solving wants to touch, and racing should
// track the better of the two per obligation at the cost of extra CPU.
// bench_smoke.sh gates race against the best fixed engine on the ring
// family.
#include <map>
#include <sstream>

#include "afs/smv_sources.hpp"
#include "bench_common.hpp"
#include "ring/token_ring.hpp"
#include "service/scheduler.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

struct ModelCase {
  std::string name;
  std::string smv;
};

/// n ring stations as separate modules, each with one component-local
/// spec (st<i> leaves cs in one step), so the job has n obligations the
/// BES backend can take whole.
std::string ringSmv(int n) {
  std::ostringstream out;
  for (int i = 0; i < n; ++i) {
    out << ring::stationSmv(i, n);
    out << "SPEC AG (st" << i << " = cs -> AX st" << i << " = idle)\n";
  }
  return out.str();
}

std::vector<ModelCase> cases() {
  return {
      // Server only: the client listing also names its module "main", so
      // the two cannot share one program text.
      {"afs1", afs::afs1ServerSmv()},
      {"afs2-2", afs::afs2ServerSmv(2)},
      {"ring-3", ringSmv(3)},
      {"ring-4", ringSmv(4)},
      {"ring-5", ringSmv(5)},
      {"ring-6", ringSmv(6)},
  };
}

enum class Mode { Bes, Partitioned, Race };

const char* modeName(Mode m) {
  switch (m) {
    case Mode::Bes: return "bes";
    case Mode::Partitioned: return "partitioned";
    case Mode::Race: return "race";
  }
  return "?";
}

symbolic::EngineMode engineFor(Mode m) {
  switch (m) {
    case Mode::Bes: return symbolic::EngineMode::Bes;
    case Mode::Partitioned: return symbolic::EngineMode::Partitioned;
    case Mode::Race: return symbolic::EngineMode::Race;
  }
  return symbolic::EngineMode::Partitioned;
}

struct ModeStats {
  bool allHold = true;
  double seconds = 0.0;
  std::size_t obligations = 0;
};

ModeStats runMode(const ModelCase& mc, Mode mode) {
  service::ServiceOptions sopts;
  sopts.threads = 2;
  sopts.cacheEnabled = false;  // measure the engines, not cache replay
  service::VerificationService svc(sopts);
  service::VerificationJob job;
  job.name = mc.name;
  job.smvText = mc.smv;
  job.options.engine = engineFor(mode);
  WallTimer timer;
  const service::JobReport report = svc.run(job);
  ModeStats s;
  s.seconds = timer.seconds();
  s.allHold = report.allHold();
  s.obligations = report.obligations.size();
  return s;
}

void report() {
  std::printf("== bes vs symbolic vs per-obligation race ==\n");
  std::printf("%-8s  %-12s  %5s  %12s  %10s\n", "model", "mode", "holds",
              "obligations", "time (s)");
  for (const ModelCase& mc : cases()) {
    // Best-of-3 wall time, round-robin across modes (see bench_partition
    // for why interleaving decorrelates scheduler noise).
    std::map<Mode, ModeStats> byMode;
    for (int round = 0; round < 3; ++round) {
      for (const Mode mode : {Mode::Bes, Mode::Partitioned, Mode::Race}) {
        const ModeStats s = runMode(mc, mode);
        auto [it, fresh] = byMode.try_emplace(mode, s);
        if (!fresh) {
          it->second.seconds = std::min(it->second.seconds, s.seconds);
        }
      }
    }
    for (const Mode mode : {Mode::Bes, Mode::Partitioned, Mode::Race}) {
      const ModeStats& s = byMode.at(mode);
      std::printf("%-8s  %-12s  %5s  %12zu  %10.4f\n", mc.name.c_str(),
                  modeName(mode), s.allHold ? "yes" : "NO", s.obligations,
                  s.seconds);
      bench::JsonEntry summary;
      summary.model = mc.name;
      summary.spec = "ALL";
      summary.holds = s.allHold;
      summary.seconds = s.seconds;
      summary.mode = modeName(mode);
      bench::recordResult(std::move(summary));
    }
  }
  std::printf("\n");
}

void BM_RingEngines(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Mode mode = static_cast<Mode>(state.range(1));
  const ModelCase mc{"ring", ringSmv(n)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runMode(mc, mode).allHold);
  }
  state.counters["stations"] = n;
  state.SetLabel(modeName(mode));
}
BENCHMARK(BM_RingEngines)
    ->Args({4, 0})->Args({4, 1})->Args({4, 2})
    ->Args({6, 0})->Args({6, 1})->Args({6, 2})
    ->Unit(benchmark::kMillisecond);

void BM_Afs2Engines(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  const ModelCase mc{"afs2-2", afs::afs2ServerSmv(2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runMode(mc, mode).allHold);
  }
  state.SetLabel(modeName(mode));
}
BENCHMARK(BM_Afs2Engines)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("bes", report)
