// The §5 scaling claim: "it is easy to see that this complexity is reduced
// since we have a linear behavior (as opposed to exponential) in terms of
// the number of components."
//
// Workload: AFS-2 with n clients, safety property (Afs1').
//  - compositional: n+1 per-component obligations (invariance rule);
//  - compositional-parallel: the same obligations fanned out on a thread
//    pool (one BDD manager per obligation);
//  - monolithic: compose all components and model check AG(Inv) on the
//    product directly (state space grows as ~168^n · 2).
//
// Expected shape: compositional time grows ~linearly in n; monolithic time
// grows superlinearly (exponential state space, BDD sizes compound), with
// the crossover at small n.  The report prints a per-n table; the
// google-benchmark section gives the precise timings.
#include "afs/afs2.hpp"
#include "afs/verify_afs2.hpp"
#include "bench_common.hpp"
#include "comp/verifier.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

bool monolithicCheck(int n, std::uint64_t* transNodes) {
  symbolic::Context ctx(1 << 16);
  afs::Afs2Components comps = afs::buildAfs2(ctx, n, /*reflexive=*/true);
  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(comps.server.sys);
  for (const smv::ElaboratedModule& client : comps.clients) {
    verifier.addComponent(client.sys);
  }
  const symbolic::SymbolicSystem& whole = verifier.composed();
  if (transNodes != nullptr) *transNodes = whole.transNodeCount();
  symbolic::Checker checker(whole);
  const ctl::Spec spec = afs::afs2SafetySpec(n);
  return checker.holds(spec);
}

std::vector<comp::Obligation> compositionalObligations(int n) {
  std::vector<comp::Obligation> obligations;
  for (int component = 0; component <= n; ++component) {
    obligations.push_back(comp::Obligation{
        "component " + std::to_string(component), [n, component] {
          symbolic::Context ctx(1 << 14);
          afs::Afs2Components comps =
              afs::buildAfs2(ctx, n, /*reflexive=*/true);
          std::vector<symbolic::SymbolicSystem> all;
          all.push_back(comps.server.sys);
          for (const smv::ElaboratedModule& c : comps.clients) {
            all.push_back(c.sys);
          }
          std::vector<symbolic::VarId> everything;
          for (const symbolic::SymbolicSystem& sys : all) {
            everything.insert(everything.end(), sys.vars.begin(),
                              sys.vars.end());
          }
          const symbolic::SymbolicSystem expanded =
              symbolic::expand(all[component], everything);
          symbolic::Checker checker(expanded);
          const ctl::FormulaPtr inv = afs::afs2Invariant(n);
          return checker.holds(ctl::Restriction::trivial(),
                               ctl::mkImplies(inv, ctl::AX(inv)));
        }});
  }
  return obligations;
}

void report() {
  std::printf(
      "== section 5: compositional (linear) vs monolithic (exponential) ==\n");
  std::printf(
      "%3s  %12s  %10s  %14s  %12s  %16s\n", "n", "states", "comp. (s)",
      "comp. par. (s)", "monol. (s)", "monol. T nodes");
  for (int n = 1; n <= 4; ++n) {
    // State count of the composed system.
    double states = 2.0;  // failure
    for (int i = 0; i < n; ++i) states *= 2 * 3 * 2 * 2 * 4 * 3;  // per client+server block
    WallTimer seq;
    const afs::Afs2Report rep = afs::verifyAfs2(n, false);
    const double seqSeconds = seq.seconds();

    WallTimer par;
    const comp::ParallelReport parRep =
        comp::runObligations(compositionalObligations(n));
    const double parSeconds = par.seconds();

    double monoSeconds = -1.0;
    std::uint64_t transNodes = 0;
    if (n <= 3) {  // the monolithic check becomes painful quickly
      WallTimer mono;
      const bool ok = monolithicCheck(n, &transNodes);
      monoSeconds = mono.seconds();
      if (!ok) std::printf("  !! monolithic check FAILED at n=%d\n", n);
    }
    if (!rep.safety || !parRep.allOk) {
      std::printf("  !! compositional check FAILED at n=%d\n", n);
    }
    std::printf("%3d  %12.3g  %10.4f  %14.4f  %12.4f  %16llu\n", n, states,
                seqSeconds, parSeconds, monoSeconds,
                static_cast<unsigned long long>(transNodes));
  }
  std::printf("(monol. -1 = skipped; states = |domain| of the product)\n\n");
}

void BM_Compositional(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const afs::Afs2Report rep = afs::verifyAfs2(n, false);
    benchmark::DoNotOptimize(rep.safety);
  }
  state.counters["clients"] = n;
}
BENCHMARK(BM_Compositional)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CompositionalParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const comp::ParallelReport rep =
        comp::runObligations(compositionalObligations(n));
    benchmark::DoNotOptimize(rep.allOk);
  }
  state.counters["clients"] = n;
}
BENCHMARK(BM_CompositionalParallel)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Monolithic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(monolithicCheck(n, nullptr));
  }
  state.counters["clients"] = n;
}
BENCHMARK(BM_Monolithic)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("scaling", report)
