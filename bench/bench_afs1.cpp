// Reproduction of the paper's AFS-1 evaluation (Figures 5-10):
//  - Figures 7 and 10: model checking the server and client components,
//    reporting verdicts, time, BDD nodes allocated, and transition-relation
//    node counts.  Paper reference values (their SMV on their hardware):
//      server: all true, 0.033 s user, 403 nodes allocated, trans 43 + 7
//      client: all true, 0.0  s user, 330 nodes allocated, trans 34 + 7
//    Absolute numbers differ (different BDD package, different machine);
//    the shape — everything true, hundreds of nodes, client smaller than
//    server — must match.
//  - google-benchmark timings for each component check and for the full
//    compositional (Afs1)/(Afs2) deduction.
#include "afs/afs1.hpp"
#include "afs/smv_sources.hpp"
#include "afs/verify_afs1.hpp"
#include "bench_common.hpp"
#include "comp/verifier.hpp"
#include "symbolic/composition.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

void report() {
  {
    WallTimer timer;
    symbolic::Context ctx;
    const smv::ElaboratedModule server =
        smv::elaborateText(ctx, afs::afs1ServerSmv());
    bench::printFigureReport(
        "Figure 7: model checking the AFS-1 server (Srv1-Srv5)", ctx,
        server.sys, server.specs, timer.seconds());
  }
  {
    WallTimer timer;
    symbolic::Context ctx;
    const smv::ElaboratedModule client =
        smv::elaborateText(ctx, afs::afs1ClientSmv());
    bench::printFigureReport(
        "Figure 10: model checking the AFS-1 client (Cli1-Cli5)", ctx,
        client.sys, client.specs, timer.seconds());
  }
  {
    WallTimer timer;
    const afs::Afs1Report report = afs::verifyAfs1(/*crossCheck=*/true);
    std::printf("== section 4.2.3: compositional deduction of (Afs1), (Afs2) ==\n");
    std::printf("safety (Afs1):   %s\n", report.safety ? "proved" : "FAILED");
    std::printf("liveness (Afs2): %s\n",
                report.liveness ? "proved" : "FAILED");
    std::printf("cross-checks:    %s / %s\n",
                report.safetyCrossCheck ? "confirmed" : "FAILED",
                report.livenessCrossCheck ? "confirmed" : "FAILED");
    std::printf("component-level model checks: %zu\n",
                report.componentChecks);
    std::printf("user time: %g s\n\n", timer.seconds());
  }
}

void checkAllSpecs(const std::string& smv, benchmark::State& state) {
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    symbolic::Context ctx;
    const smv::ElaboratedModule mod = smv::elaborateText(ctx, smv);
    symbolic::Checker checker(mod.sys);
    bool all = true;
    for (const ctl::Spec& spec : mod.specs) {
      all = all && checker.holds(spec);
    }
    benchmark::DoNotOptimize(all);
    nodes = ctx.mgr().stats().nodesAllocatedTotal;
  }
  state.counters["bdd_nodes_allocated"] = static_cast<double>(nodes);
}

void BM_Afs1ServerSpecs(benchmark::State& state) {
  checkAllSpecs(afs::afs1ServerSmv(), state);
}
BENCHMARK(BM_Afs1ServerSpecs);

void BM_Afs1ClientSpecs(benchmark::State& state) {
  checkAllSpecs(afs::afs1ClientSmv(), state);
}
BENCHMARK(BM_Afs1ClientSpecs);

void BM_Afs1SafetyDeduction(benchmark::State& state) {
  for (auto _ : state) {
    symbolic::Context ctx;
    afs::Afs1Components comps = afs::buildAfs1(ctx, true);
    comp::CompositionalVerifier verifier(ctx);
    verifier.addComponent(comps.server.sys);
    verifier.addComponent(comps.client.sys);
    comp::ProofTree proof;
    const bool ok = verifier.verifyInvariance(
        afs::afs1Init(), afs::afs1Invariant(), afs::afs1Target(), proof,
        "Afs1");
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Afs1SafetyDeduction);

void BM_Afs1FullDeduction(benchmark::State& state) {
  for (auto _ : state) {
    const afs::Afs1Report report = afs::verifyAfs1(/*crossCheck=*/false);
    benchmark::DoNotOptimize(report.safety);
  }
}
BENCHMARK(BM_Afs1FullDeduction);

void BM_Afs1GlobalSafetyCheck(benchmark::State& state) {
  // The non-compositional alternative: compose, then check (Afs1) directly.
  for (auto _ : state) {
    symbolic::Context ctx;
    afs::Afs1Components comps = afs::buildAfs1(ctx, true);
    const symbolic::SymbolicSystem whole =
        symbolic::compose(comps.server.sys, comps.client.sys);
    symbolic::Checker checker(whole);
    const ctl::Spec spec = afs::afs1SafetySpec();
    benchmark::DoNotOptimize(checker.holds(spec));
  }
}
BENCHMARK(BM_Afs1GlobalSafetyCheck);

}  // namespace

CMC_BENCH_MAIN("afs1", report)
