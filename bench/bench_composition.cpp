// Figure 1 reproduction and composition-operator costs: explicit vs
// symbolic composition, the expansion (Lemma 4) path vs direct
// composition, and scaling in the number of components.
#include "bench_common.hpp"
#include "kripke/composition.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/encode.hpp"

using namespace cmc;

namespace {

kripke::ExplicitSystem figure1System(const std::string& atom) {
  kripke::ExplicitSystem sys({atom});
  sys.addTransition(0, 1);
  sys.addTransition(1, 0);
  sys.addTransition(1, 1);
  sys.addTransition(0, 0);
  return sys;
}

void report() {
  std::printf("== Figure 1: M o M' ==\n");
  const kripke::ExplicitSystem m = figure1System("x");
  const kripke::ExplicitSystem mp = figure1System("y");
  const kripke::ExplicitSystem whole = kripke::compose(m, mp);
  std::printf("|R*| = %zu transitions (paper lists 12):\n",
              whole.transitionCount());
  whole.forEachTransition([&](kripke::State s, kripke::State t) {
    std::printf("  %s -> %s\n", whole.stateToString(s).c_str(),
                whole.stateToString(t).c_str());
  });
  // Lemma 4 sanity: expansions compose to the same system.
  const kripke::ExplicitSystem viaExpansion =
      kripke::compose(kripke::expand(m, mp.atoms()),
                      kripke::expand(mp, m.atoms()));
  std::printf("Lemma 4 (expansion path equals direct): %s\n\n",
              whole.sameBehavior(viaExpansion) ? "holds" : "VIOLATED");
}

/// A k-atom component that rotates its own atoms; used to scale
/// composition size.
kripke::ExplicitSystem rotator(const std::string& prefix, int atoms) {
  std::vector<std::string> names;
  for (int i = 0; i < atoms; ++i) {
    names.push_back(prefix + std::to_string(i));
  }
  kripke::ExplicitSystem sys(names);
  for (kripke::State s = 0; s < sys.stateCount(); ++s) {
    const kripke::State rotated = static_cast<kripke::State>(
        ((s << 1) | (s >> (atoms - 1))) & (sys.stateCount() - 1));
    sys.addTransition(s, rotated);
  }
  sys.makeReflexive();
  return sys;
}

void BM_ExplicitCompose(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  const kripke::ExplicitSystem a = rotator("a", atoms);
  const kripke::ExplicitSystem b = rotator("b", atoms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kripke::compose(a, b).transitionCount());
  }
  state.counters["union_atoms"] = 2 * atoms;
}
BENCHMARK(BM_ExplicitCompose)->Arg(2)->Arg(4)->Arg(6);

void BM_SymbolicCompose(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  symbolic::Context ctx(1 << 14);
  const symbolic::SymbolicSystem a =
      symbolic::symbolicFromExplicit(ctx, rotator("a", atoms), "A");
  const symbolic::SymbolicSystem b =
      symbolic::symbolicFromExplicit(ctx, rotator("b", atoms), "B");
  for (auto _ : state) {
    benchmark::DoNotOptimize(symbolic::compose(a, b).transNodeCount());
  }
  state.counters["union_atoms"] = 2 * atoms;
}
BENCHMARK(BM_SymbolicCompose)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_SymbolicComposeMany(benchmark::State& state) {
  // k components, one boolean each (latch): T* grows with k.
  const int k = static_cast<int>(state.range(0));
  symbolic::Context ctx(1 << 14);
  std::vector<symbolic::SymbolicSystem> components;
  for (int i = 0; i < k; ++i) {
    const symbolic::VarId v = ctx.addBoolVar("c" + std::to_string(i));
    const bdd::Bdd latch =
        ctx.varEq(v, "0") & ctx.varEq(v, "1", true);
    symbolic::SymbolicSystem sys = symbolic::makeSystem(
        ctx, "c" + std::to_string(i), {v}, latch);
    symbolic::addReflexive(sys);
    components.push_back(std::move(sys));
  }
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    const symbolic::SymbolicSystem whole = symbolic::composeAll(components);
    nodes = whole.transNodeCount();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["components"] = k;
  state.counters["trans_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SymbolicComposeMany)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ExpansionLemma4Path(benchmark::State& state) {
  // Cost of the Lemma 4 route (expand, expand, compose) vs direct compose.
  const int atoms = static_cast<int>(state.range(0));
  symbolic::Context ctx(1 << 14);
  const symbolic::SymbolicSystem a =
      symbolic::symbolicFromExplicit(ctx, rotator("a", atoms), "A");
  const symbolic::SymbolicSystem b =
      symbolic::symbolicFromExplicit(ctx, rotator("b", atoms), "B");
  for (auto _ : state) {
    const symbolic::SymbolicSystem ea = symbolic::expand(a, b.vars);
    const symbolic::SymbolicSystem eb = symbolic::expand(b, a.vars);
    benchmark::DoNotOptimize(symbolic::compose(ea, eb).transBdd().index());
  }
}
BENCHMARK(BM_ExpansionLemma4Path)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

CMC_BENCH_MAIN("composition", report)
