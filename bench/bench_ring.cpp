// Token-ring case study benchmarks: a second data point for the §5 scaling
// claim on a protocol with a liveness proof (3(n-1)+1 Rule-4 guarantees).
// Compositional obligations grow polynomially (Θ(n²) component checks of
// constant-size components) while the monolithic product grows as 12^n/2
// states.
#include "bench_common.hpp"
#include "comp/verifier.hpp"
#include "ring/token_ring.hpp"
#include "symbolic/composition.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

bool monolithicRingCheck(int n) {
  symbolic::Context ctx(1 << 16);
  ring::RingComponents comps = ring::buildRing(ctx, n);
  std::vector<symbolic::SymbolicSystem> systems;
  for (const smv::ElaboratedModule& mod : comps.stations) {
    systems.push_back(mod.sys);
  }
  const symbolic::SymbolicSystem whole = symbolic::composeAll(systems);
  symbolic::Checker checker(whole);
  ctl::Restriction r;
  r.init = ring::ringInit(n);
  r.fairness = {ctl::mkTrue()};
  return checker.holds(r, ctl::AG(ring::mutualExclusion(n)));
}

void report() {
  std::printf("== token ring: compositional vs monolithic ==\n");
  std::printf("%3s  %10s  %12s  %12s  %12s\n", "n", "checks",
              "safety (s)", "live (s)", "monol. (s)");
  for (int n = 2; n <= 5; ++n) {
    WallTimer safetyTimer;
    const ring::RingReport safety =
        ring::verifyTokenRing(n, /*liveness=*/false, false);
    const double safetySeconds = safetyTimer.seconds();

    WallTimer liveTimer;
    const ring::RingReport live =
        ring::verifyTokenRing(n, /*liveness=*/true, false);
    const double liveSeconds = liveTimer.seconds();

    double monoSeconds = -1.0;
    if (n <= 4) {
      WallTimer monoTimer;
      if (!monolithicRingCheck(n)) {
        std::printf("  !! monolithic check FAILED at n=%d\n", n);
      }
      monoSeconds = monoTimer.seconds();
    }
    if (!safety.safety || !live.allOk()) {
      std::printf("  !! compositional verification FAILED at n=%d\n", n);
    }
    std::printf("%3d  %10zu  %12.4f  %12.4f  %12.4f\n", n,
                live.componentChecks, safetySeconds, liveSeconds,
                monoSeconds);
  }
  std::printf("(monol. -1 = skipped)\n\n");
}

void BM_RingSafety(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring::verifyTokenRing(n, false, false).safety);
  }
  state.counters["stations"] = n;
}
BENCHMARK(BM_RingSafety)->Arg(2)->Arg(3)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_RingLiveness(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring::verifyTokenRing(n, true, false).liveness);
  }
  state.counters["stations"] = n;
}
BENCHMARK(BM_RingLiveness)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_RingMonolithic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(monolithicRingCheck(n));
  }
  state.counters["stations"] = n;
}
BENCHMARK(BM_RingMonolithic)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("ring", report)
