// Obligation-cache effectiveness: the same AFS batch checked through the
// verification service cold (every obligation hits the checker) and warm
// (every obligation served from the content-addressed cache, zero checker
// attempts).  Three warm variants are measured: a resubmission through the
// same service (in-memory hit), a fresh service instance over the same
// --cache-dir (disk-loaded hit), and the cache-disabled baseline for the
// bookkeeping overhead.  The ISSUE acceptance bar is warm >= 5x cold on
// the composed AFS-2 workload; BENCH_cache.json records the ratio.
#include <cstdlib>
#include <filesystem>

#include "afs/smv_sources.hpp"
#include "bench_common.hpp"
#include "service/scheduler.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

std::vector<service::VerificationJob> makeBatch(int copies) {
  std::vector<service::VerificationJob> jobs;
  for (int i = 0; i < copies; ++i) {
    service::VerificationJob server;
    server.name = "afs1server-" + std::to_string(i);
    server.smvText = afs::afs1ServerSmv();
    jobs.push_back(std::move(server));
    service::VerificationJob client;
    client.name = "afs1client-" + std::to_string(i);
    client.smvText = afs::afs1ClientSmv();
    jobs.push_back(std::move(client));
  }
  return jobs;
}

std::filesystem::path scratchDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("cmc-bench-cache-" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct RunStats {
  bool allHold = true;
  double seconds = 0.0;
  double hitRate = 0.0;
};

RunStats runOnce(service::VerificationService& svc,
                 const std::vector<service::VerificationJob>& jobs) {
  const service::ObligationCacheStats before =
      svc.cache() != nullptr ? svc.cache()->stats()
                             : service::ObligationCacheStats{};
  WallTimer timer;
  RunStats stats;
  for (const service::JobReport& r : svc.runBatch(jobs)) {
    stats.allHold = stats.allHold && r.allHold();
  }
  stats.seconds = timer.seconds();
  if (svc.cache() != nullptr) {
    const service::ObligationCacheStats after = svc.cache()->stats();
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t misses = after.misses - before.misses;
    if (hits + misses > 0) {
      stats.hitRate = static_cast<double>(hits) /
                      static_cast<double>(hits + misses);
    }
  }
  return stats;
}

void recordRun(const std::string& batch, const std::string& mode,
               const RunStats& s) {
  bench::JsonEntry e;
  e.model = batch;
  e.spec = "all component specs";
  e.holds = s.allHold;
  e.seconds = s.seconds;
  e.cacheHitRate = s.hitRate;
  e.mode = mode;
  e.clusterThreshold = service::JobOptions{}.clusterThreshold;
  bench::recordResult(std::move(e));
}

void report() {
  std::printf("== obligation cache: cold vs warm service runs ==\n");
  std::printf("%8s %10s %10s %10s %10s %8s\n", "jobs", "no-cache",
              "cold s", "warm-mem", "warm-disk", "speedup");
  for (const int copies : {2, 4, 8}) {
    const std::vector<service::VerificationJob> jobs = makeBatch(copies);
    const std::string batch = "afs1-batch-" + std::to_string(jobs.size());
    const std::filesystem::path dir = scratchDir(std::to_string(copies));

    service::ServiceOptions noCacheOpts;
    noCacheOpts.cacheEnabled = false;
    service::VerificationService noCacheSvc(noCacheOpts);
    const RunStats noCache = runOnce(noCacheSvc, jobs);

    service::ServiceOptions diskOpts;
    diskOpts.cacheDir = dir.string();
    service::VerificationService coldSvc(diskOpts);
    const RunStats cold = runOnce(coldSvc, jobs);
    const RunStats warmMem = runOnce(coldSvc, jobs);

    service::VerificationService diskSvc(diskOpts);
    const RunStats warmDisk = runOnce(diskSvc, jobs);

    const bool ok = noCache.allHold && cold.allHold && warmMem.allHold &&
                    warmDisk.allHold;
    std::printf("%8zu %10.4f %10.4f %10.4f %10.4f %7.1fx%s\n", jobs.size(),
                noCache.seconds, cold.seconds, warmMem.seconds,
                warmDisk.seconds,
                warmMem.seconds > 0.0 ? cold.seconds / warmMem.seconds : 0.0,
                ok ? "" : "  (VERDICT MISMATCH)");
    recordRun(batch, "no-cache", noCache);
    recordRun(batch, "cache-cold", cold);
    recordRun(batch, "cache-warm-memory", warmMem);
    recordRun(batch, "cache-warm-disk", warmDisk);
    std::filesystem::remove_all(dir);
  }
  std::printf("\n");
}

void BM_ColdBatch(benchmark::State& state) {
  // A fresh service per iteration: every obligation reaches the checker.
  const std::vector<service::VerificationJob> jobs =
      makeBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    service::VerificationService svc;
    benchmark::DoNotOptimize(runOnce(svc, jobs).allHold);
  }
}
BENCHMARK(BM_ColdBatch)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_WarmBatch(benchmark::State& state) {
  // One shared service, pre-warmed outside the timing loop: every
  // obligation is a memory-tier cache hit.
  const std::vector<service::VerificationJob> jobs =
      makeBatch(static_cast<int>(state.range(0)));
  service::VerificationService svc;
  (void)svc.runBatch(jobs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runOnce(svc, jobs).allHold);
  }
}
BENCHMARK(BM_WarmBatch)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("cache", report)
