// Substrate microbenchmarks: the BDD package that stands in for the
// paper's SMV/CUDD engine.  Measures the operations the symbolic checker
// leans on — ITE, quantification, the relational product (preimage), and
// current/next renaming — on parameterized transition relations, plus GC
// behavior under churn.
#include <random>

#include "bench_common.hpp"

using namespace cmc;
using bdd::Bdd;
using bdd::Manager;

namespace {

void report() {
  // Quick sanity sizes: a shifter relation over 2k interleaved variables.
  std::printf("== BDD substrate sizes (shift relation x'_i = x_(i+1)) ==\n");
  std::printf("%6s  %12s  %14s\n", "bits", "trans nodes", "nodes allocated");
  for (std::uint32_t bits : {4u, 8u, 16u, 32u}) {
    Manager mgr(1 << 14);
    Bdd trans = mgr.bddTrue();
    for (std::uint32_t i = 0; i < bits; ++i) {
      const Bdd cur = mgr.bddVar(2 * ((i + 1) % bits));
      const Bdd nxt = mgr.bddVar(2 * i + 1);
      trans &= cur.iff(nxt);
    }
    std::printf("%6u  %12llu  %14llu\n", bits,
                static_cast<unsigned long long>(mgr.dagSize(trans)),
                static_cast<unsigned long long>(
                    mgr.stats().nodesAllocatedTotal));
  }
  std::printf("\n");

  // Ordering ablation: the same function under the interleaved (good) and
  // split (bad) orders, and what sifting recovers from the bad one.
  std::printf("== variable-order ablation (x0&y0 | ... | xk&yk) ==\n");
  std::printf("%6s  %12s  %12s  %14s\n", "pairs", "interleaved", "split",
              "split+sift");
  for (std::uint32_t pairs : {4u, 8u, 12u}) {
    Manager good(1 << 16);
    good.ensureVars(2 * pairs);
    Bdd fGood = good.bddFalse();
    for (std::uint32_t i = 0; i < pairs; ++i) {
      fGood |= good.bddVar(2 * i) & good.bddVar(2 * i + 1);
    }
    Manager bad(1 << 16);
    bad.ensureVars(2 * pairs);
    Bdd fBad = bad.bddFalse();
    for (std::uint32_t i = 0; i < pairs; ++i) {
      fBad |= bad.bddVar(i) & bad.bddVar(pairs + i);
    }
    const std::uint64_t splitSize = bad.dagSize(fBad);
    bad.reorderSift();
    std::printf("%6u  %12llu  %12llu  %14llu\n", pairs,
                static_cast<unsigned long long>(good.dagSize(fGood)),
                static_cast<unsigned long long>(splitSize),
                static_cast<unsigned long long>(bad.dagSize(fBad)));
  }
  std::printf("\n");
}

/// Random k-term DNF over the even (current) variables.
Bdd randomFunction(Manager& mgr, std::mt19937& rng, std::uint32_t bits,
                   int terms) {
  std::uniform_int_distribution<int> coin(0, 2);
  Bdd f = mgr.bddFalse();
  for (int t = 0; t < terms; ++t) {
    Bdd term = mgr.bddTrue();
    for (std::uint32_t v = 0; v < bits; ++v) {
      switch (coin(rng)) {
        case 0: term &= mgr.bddVar(2 * v); break;
        case 1: term &= mgr.bddNVar(2 * v); break;
        default: break;
      }
    }
    f |= term;
  }
  return f;
}

void BM_Ite(benchmark::State& state) {
  const std::uint32_t bits = static_cast<std::uint32_t>(state.range(0));
  Manager mgr(1 << 16);
  std::mt19937 rng(1);
  const Bdd f = randomFunction(mgr, rng, bits, 8);
  const Bdd g = randomFunction(mgr, rng, bits, 8);
  const Bdd h = randomFunction(mgr, rng, bits, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.ite(f, g, h));
  }
  state.counters["live_nodes"] = static_cast<double>(mgr.liveNodeCount());
}
BENCHMARK(BM_Ite)->Arg(8)->Arg(16)->Arg(24);

void BM_Exists(benchmark::State& state) {
  const std::uint32_t bits = static_cast<std::uint32_t>(state.range(0));
  Manager mgr(1 << 16);
  std::mt19937 rng(2);
  const Bdd f = randomFunction(mgr, rng, bits, 10);
  std::vector<std::uint32_t> half;
  for (std::uint32_t v = 0; v < bits; v += 2) half.push_back(2 * v);
  const Bdd cube = mgr.cube(half);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.exists(f, cube));
  }
}
BENCHMARK(BM_Exists)->Arg(8)->Arg(16)->Arg(24);

void BM_RelationalProduct(benchmark::State& state) {
  // Preimage through a synchronous shift relation — the checker's hot loop.
  const std::uint32_t bits = static_cast<std::uint32_t>(state.range(0));
  Manager mgr(1 << 16);
  Bdd trans = mgr.bddTrue();
  for (std::uint32_t i = 0; i < bits; ++i) {
    trans &= mgr.bddVar(2 * ((i + 1) % bits)).iff(mgr.bddVar(2 * i + 1));
  }
  std::mt19937 rng(3);
  Bdd target = randomFunction(mgr, rng, bits, 6);
  // Rename to next: permutation swapping 2i <-> 2i+1.
  std::vector<std::uint32_t> perm(2 * bits);
  for (std::uint32_t b = 0; b < bits; ++b) {
    perm[2 * b] = 2 * b + 1;
    perm[2 * b + 1] = 2 * b;
  }
  const std::uint32_t swap = mgr.registerPermutation(perm);
  std::vector<std::uint32_t> nextVars;
  for (std::uint32_t b = 0; b < bits; ++b) nextVars.push_back(2 * b + 1);
  const Bdd cube = mgr.cube(nextVars);
  for (auto _ : state) {
    const Bdd primed = mgr.permute(target, swap);
    benchmark::DoNotOptimize(mgr.andExists(trans, primed, cube));
  }
}
BENCHMARK(BM_RelationalProduct)->Arg(8)->Arg(16)->Arg(32);

void BM_Permute(benchmark::State& state) {
  const std::uint32_t bits = static_cast<std::uint32_t>(state.range(0));
  Manager mgr(1 << 16);
  std::mt19937 rng(4);
  const Bdd f = randomFunction(mgr, rng, bits, 10);
  std::vector<std::uint32_t> perm(2 * bits);
  for (std::uint32_t b = 0; b < bits; ++b) {
    perm[2 * b] = 2 * b + 1;
    perm[2 * b + 1] = 2 * b;
  }
  const std::uint32_t swap = mgr.registerPermutation(perm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.permute(f, swap));
  }
}
BENCHMARK(BM_Permute)->Arg(8)->Arg(16)->Arg(24);

void BM_GcChurn(benchmark::State& state) {
  // Allocate-and-drop churn: measures allocation + GC amortized cost.
  Manager mgr(1 << 12);
  std::mt19937 rng(5);
  for (auto _ : state) {
    Bdd junk = randomFunction(mgr, rng, 12, 6);
    benchmark::DoNotOptimize(junk.index());
  }
  state.counters["gc_runs"] = static_cast<double>(mgr.stats().gcRuns);
  state.counters["reclaimed"] =
      static_cast<double>(mgr.stats().gcReclaimed);
}
BENCHMARK(BM_GcChurn);

void BM_SatCount(benchmark::State& state) {
  Manager mgr(1 << 14);
  std::mt19937 rng(6);
  const Bdd f = randomFunction(mgr, rng, 20, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.satCount(f, 40));
  }
}
BENCHMARK(BM_SatCount);

void BM_SiftReorder(benchmark::State& state) {
  // Ordering ablation: k conjoined variable pairs built under the split
  // (worst-case) order; sifting must recover the interleaved order.
  const std::uint32_t pairs = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Manager mgr(1 << 16);
    mgr.ensureVars(2 * pairs);
    Bdd f = mgr.bddFalse();
    for (std::uint32_t i = 0; i < pairs; ++i) {
      f |= mgr.bddVar(i) & mgr.bddVar(pairs + i);
    }
    before = mgr.dagSize(f);
    state.ResumeTiming();
    after = mgr.reorderSift();
    benchmark::DoNotOptimize(after);
  }
  state.counters["nodes_before"] = static_cast<double>(before);
  state.counters["nodes_after_gc"] = static_cast<double>(after);
}
BENCHMARK(BM_SiftReorder)->Arg(4)->Arg(8)->Arg(10);

}  // namespace

CMC_BENCH_MAIN("bdd_ops", report)
