// Figure 3 reproduction: the boolean encoding of finite-domain variables
// (§3.4), plus the symbolic-vs-explicit checking crossover it enables.
#include <random>
#include <sstream>

#include "bench_common.hpp"
#include "kripke/explicit_checker.hpp"
#include "smv/elaborate.hpp"
#include "symbolic/encode.hpp"

using namespace cmc;

namespace {

/// A counter modulo m: x' = x + 1 (mod m) — the Figure 3 system
/// generalized from m = 4 to arbitrary domains.
std::string counterSmv(int m) {
  std::ostringstream out;
  out << "MODULE counter\nVAR x : 0.." << (m - 1) << ";\n";
  out << "ASSIGN\n  next(x) :=\n    case\n";
  for (int v = 0; v < m; ++v) {
    out << "      x = " << v << " : " << (v + 1) % m << ";\n";
  }
  out << "    esac;\n";
  return out.str();
}

void report() {
  std::printf("== Figure 3: boolean encoding of finite domains ==\n");
  std::printf("%8s  %6s  %12s  %22s\n", "domain", "bits", "trans nodes",
              "x<dom/2 formula nodes");
  for (int m : {4, 5, 8, 16, 100}) {
    symbolic::Context ctx(1 << 14);
    const smv::ElaboratedModule mod = smv::elaborateText(ctx, counterSmv(m));
    // The paper's example: (x < 2) over 0..3 maps to !x1 — one node.
    // Generalized: x < m/2 as a disjunction of values.
    std::vector<ctl::FormulaPtr> low;
    for (int v = 0; v < m / 2; ++v) {
      low.push_back(ctl::eq("x", std::to_string(v)));
    }
    symbolic::Checker checker(mod.sys);
    const bdd::Bdd half = checker.sat(ctl::disj(low), {});
    std::printf("%8d  %6zu  %12llu  %22llu\n", m,
                ctx.variable(ctx.varId("x")).bits.size(),
                static_cast<unsigned long long>(mod.sys.transNodeCount()),
                static_cast<unsigned long long>(ctx.mgr().dagSize(half)));
  }
  // The paper's exact instance: x in {0..3}, (x < 2) == !x1 — one BDD node.
  symbolic::Context ctx;
  ctx.addEnumVar("x", {"0", "1", "2", "3"});
  const bdd::Bdd lessThan2 =
      ctx.varEq(ctx.varId("x"), "0") | ctx.varEq(ctx.varId("x"), "1");
  std::printf("\npaper instance: (x < 2) over 0..3 -> %llu BDD node(s) "
              "(paper: the single literal !x1)\n\n",
              static_cast<unsigned long long>(ctx.mgr().dagSize(lessThan2)));
}

void BM_SymbolicCheck(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  symbolic::Context ctx(1 << 14);
  const smv::ElaboratedModule mod =
      smv::elaborateText(ctx, counterSmv(m));
  symbolic::Checker checker(mod.sys);
  const ctl::FormulaPtr spec =
      ctl::mkImplies(ctl::eq("x", "0"), ctl::EF(ctl::eq("x", std::to_string(m - 1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.holds(ctl::Restriction::trivial(), spec));
  }
  state.counters["domain"] = m;
}
BENCHMARK(BM_SymbolicCheck)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_ExplicitCheck(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  symbolic::Context ctx(1 << 14);
  const smv::ElaboratedModule mod =
      smv::elaborateText(ctx, counterSmv(m));
  const symbolic::ExplicitImage image =
      symbolic::explicitFromSymbolic(mod.sys);
  kripke::ExplicitChecker checker(image.sys, image.semantics);
  const ctl::FormulaPtr spec =
      ctl::mkImplies(ctl::eq("x", "0"), ctl::EF(ctl::eq("x", std::to_string(m - 1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker.holds(ctl::Restriction::trivial(), spec));
  }
  state.counters["domain"] = m;
}
BENCHMARK(BM_ExplicitCheck)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EncodeExplicitToSymbolic(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  std::mt19937 rng(9);
  std::vector<std::string> names;
  for (int i = 0; i < atoms; ++i) names.push_back("a" + std::to_string(i));
  kripke::ExplicitSystem es(names);
  std::uniform_int_distribution<std::uint64_t> pick(0, es.stateCount() - 1);
  for (kripke::State s = 0; s < es.stateCount(); ++s) {
    es.addTransition(s, static_cast<kripke::State>(pick(rng)));
  }
  es.makeReflexive();
  for (auto _ : state) {
    symbolic::Context ctx(1 << 14);
    benchmark::DoNotOptimize(
        symbolic::symbolicFromExplicit(ctx, es, "r").transNodeCount());
  }
}
BENCHMARK(BM_EncodeExplicitToSymbolic)->Arg(4)->Arg(8)->Arg(10);

}  // namespace

CMC_BENCH_MAIN("encoding", report)
