// Throughput of the verification service layer: an N-job batch of AFS-1
// component models (5 server + 5 client specs each) checked through
// service::VerificationService (obligations fanned onto the thread pool,
// one fresh context per obligation) versus the serial baseline (one
// context per job, specs checked in a plain loop — the old cmc_check
// driver path).
//
// The service pays a per-obligation re-elaboration tax in exchange for
// obligation-level parallelism, budget enforcement, and tracing; this
// bench quantifies that trade on a machine-readable scale so the
// trajectory is diffable across PRs (BENCH_service.json).
#include "afs/smv_sources.hpp"
#include "bench_common.hpp"
#include "service/scheduler.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

std::vector<service::VerificationJob> makeBatch(int copies) {
  std::vector<service::VerificationJob> jobs;
  for (int i = 0; i < copies; ++i) {
    service::VerificationJob server;
    server.name = "afs1server-" + std::to_string(i);
    server.smvText = afs::afs1ServerSmv();
    jobs.push_back(std::move(server));
    service::VerificationJob client;
    client.name = "afs1client-" + std::to_string(i);
    client.smvText = afs::afs1ClientSmv();
    jobs.push_back(std::move(client));
  }
  return jobs;
}

/// The pre-service driver path: one context per job, straight spec loop.
bool runSerial(const std::vector<service::VerificationJob>& jobs) {
  bool all = true;
  for (const service::VerificationJob& job : jobs) {
    symbolic::Context ctx(1 << 14);
    const std::vector<smv::ElaboratedModule> modules =
        smv::elaborateProgram(ctx, job.smvText);
    for (const smv::ElaboratedModule& mod : modules) {
      symbolic::Checker checker(mod.sys);
      for (const ctl::Spec& spec : mod.specs) {
        all = all && checker.holds(spec);
      }
    }
  }
  return all;
}

bool runPooled(const std::vector<service::VerificationJob>& jobs,
               unsigned threads) {
  service::ServiceOptions opts;
  opts.threads = threads;
  service::VerificationService svc(opts);
  bool all = true;
  for (const service::JobReport& r : svc.runBatch(jobs)) {
    all = all && r.allHold();
  }
  return all;
}

void report() {
  std::printf("== service batch throughput (AFS-1 component specs) ==\n");
  std::printf("%8s %6s %12s %12s\n", "jobs", "specs", "serial s",
              "service s");
  for (const int copies : {2, 4, 8}) {
    const std::vector<service::VerificationJob> jobs = makeBatch(copies);
    // Best-of-3 each, so a scheduler hiccup in one run does not smear the
    // recorded trajectory.
    bool serialOk = true, poolOk = true;
    double serialSeconds = 1e30, poolSeconds = 1e30;
    for (int run = 0; run < 3; ++run) {
      WallTimer serialTimer;
      serialOk = serialOk && runSerial(jobs);
      serialSeconds = std::min(serialSeconds, serialTimer.seconds());
      WallTimer poolTimer;
      poolOk = poolOk && runPooled(jobs, 0);
      poolSeconds = std::min(poolSeconds, poolTimer.seconds());
    }
    std::printf("%8zu %6zu %12.4f %12.4f%s\n", jobs.size(),
                jobs.size() * 5, serialSeconds, poolSeconds,
                serialOk && poolOk ? "" : "  (VERDICT MISMATCH)");
    const std::string batch = "afs1-batch-" + std::to_string(jobs.size());
    bench::JsonEntry serialEntry;
    serialEntry.model = batch;
    serialEntry.spec = "all component specs";
    serialEntry.holds = serialOk;
    serialEntry.seconds = serialSeconds;
    serialEntry.mode = "serial";
    serialEntry.clusterThreshold = symbolic::CheckerOptions{}.clusterThreshold;
    bench::recordResult(std::move(serialEntry));
    bench::JsonEntry poolEntry;
    poolEntry.model = batch;
    poolEntry.spec = "all component specs";
    poolEntry.holds = poolOk;
    poolEntry.seconds = poolSeconds;
    poolEntry.mode = "service-pool";
    poolEntry.clusterThreshold = service::JobOptions{}.clusterThreshold;
    bench::recordResult(std::move(poolEntry));
  }
  std::printf("\n");
}

void BM_SerialBatch(benchmark::State& state) {
  const std::vector<service::VerificationJob> jobs =
      makeBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runSerial(jobs));
  }
}
BENCHMARK(BM_SerialBatch)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ServiceBatch(benchmark::State& state) {
  const std::vector<service::VerificationJob> jobs =
      makeBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runPooled(jobs, 0));
  }
}
BENCHMARK(BM_ServiceBatch)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ServiceBatchBudgeted(benchmark::State& state) {
  // Budget enforcement on: measures the polling overhead of the
  // cooperative cancellation hook with limits that never fire.
  std::vector<service::VerificationJob> jobs =
      makeBatch(static_cast<int>(state.range(0)));
  for (service::VerificationJob& job : jobs) {
    job.options.limits.deadlineSeconds = 3600.0;
    job.options.limits.nodeBudget = 1u << 30;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runPooled(jobs, 0));
  }
}
BENCHMARK(BM_ServiceBatchBudgeted)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("service", report)
