// Assume-guarantee learning versus the direct composed check, on the
// generated ring and AFS-2 families (src/gen/).  Three modes per model:
//
//   direct      `--compose`-style run: component specs plus the composed
//               obligations checked monolithically on the full product
//   learn-cold  the same job through agr::runLearnedJob with a cold
//               in-memory cache — pays the full query fan-out
//   learn-warm  an identical rerun against the same service: every
//               membership/premise query is an obligation-cache hit, so
//               this is the steady-state price of a learned re-check
//
// The point of the trajectory (BENCH_learn.json): learning trades a
// constant-factor query fan-out for never building the n-component
// product, so as n grows the learned modes hold steady while the direct
// composed check climbs; and the warm rerun shows the cache absorbing
// the fan-out entirely.  Verdict agreement between the modes is asserted
// on every row — a mismatch prints loudly and poisons `holds`.
#include <algorithm>
#include <map>

#include "agr/engine.hpp"
#include "bench_common.hpp"
#include "gen/modelgen.hpp"
#include "service/scheduler.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

service::VerificationJob makeJob(const std::string& name,
                                 const std::string& text) {
  service::VerificationJob job;
  job.name = name;
  job.smvText = text;
  job.options.compose = true;
  return job;
}

std::map<std::string, service::Verdict> composedVerdicts(
    const service::JobReport& report) {
  std::map<std::string, service::Verdict> out;
  for (const service::ObligationOutcome& o : report.obligations) {
    if (o.target == "composed") out[o.id] = o.verdict;
  }
  return out;
}

void benchModel(const std::string& name, const std::string& text) {
  const service::VerificationJob job = makeJob(name, text);

  service::VerificationService directSvc(service::ServiceOptions{});
  WallTimer directTimer;
  const service::JobReport direct = directSvc.run(job);
  const double directSeconds = directTimer.seconds();

  service::VerificationService learnSvc(service::ServiceOptions{});
  service::VerificationJob learnJob = job;
  learnJob.options.learn = true;
  WallTimer coldTimer;
  const service::JobReport cold =
      agr::runLearnedJob(learnSvc, learnJob, agr::LearnOptions{});
  const double coldSeconds = coldTimer.seconds();
  WallTimer warmTimer;
  const service::JobReport warm =
      agr::runLearnedJob(learnSvc, learnJob, agr::LearnOptions{});
  const double warmSeconds = warmTimer.seconds();

  const bool agree = composedVerdicts(direct) == composedVerdicts(cold) &&
                     composedVerdicts(cold) == composedVerdicts(warm);
  const bool holds = direct.verdict == service::Verdict::Holds;
  std::size_t learned = 0;
  for (const service::ObligationOutcome& o : cold.obligations) {
    if (o.verdictSource == "learned") ++learned;
  }
  std::printf("%14s %8.4f %10.4f %10.4f   %zu/%zu learned%s\n",
              name.c_str(), directSeconds, coldSeconds, warmSeconds,
              learned, composedVerdicts(cold).size(),
              agree ? "" : "  (VERDICT MISMATCH)");

  const auto record = [&](const char* mode, double seconds,
                          std::uint64_t cacheHits, double hitRate) {
    bench::JsonEntry e;
    e.model = name;
    e.spec = "all composed specs";
    e.holds = holds && agree;
    e.seconds = seconds;
    e.mode = mode;
    e.cacheHitRate = hitRate;
    e.nodesAllocated = cacheHits;  // query-cache hits for the learn rows
    e.clusterThreshold = service::JobOptions{}.clusterThreshold;
    bench::recordResult(std::move(e));
  };
  record("direct-composed", directSeconds, 0, 0.0);
  const double coldTotal =
      static_cast<double>(cold.cacheHits + cold.cacheMisses);
  record("learn-cold", coldSeconds, cold.cacheHits,
         coldTotal > 0 ? static_cast<double>(cold.cacheHits) / coldTotal
                       : 0.0);
  const double warmTotal =
      static_cast<double>(warm.cacheHits + warm.cacheMisses);
  record("learn-warm", warmSeconds, warm.cacheHits,
         warmTotal > 0 ? static_cast<double>(warm.cacheHits) / warmTotal
                       : 0.0);
}

void report() {
  std::printf("== assume-guarantee learning vs direct composed check ==\n");
  std::printf("%14s %8s %10s %10s\n", "model", "direct s", "learn cold",
              "learn warm");
  for (const std::size_t n : {3u, 8u, 16u}) {
    benchModel("ring-" + std::to_string(n), gen::ringModel(n));
  }
  for (const std::size_t n : {2u, 3u}) {
    benchModel("afs2-" + std::to_string(n), gen::afs2Model(n));
  }
  std::printf("\n");
}

void BM_DirectComposedRing(benchmark::State& state) {
  const service::VerificationJob job = makeJob(
      "ring", gen::ringModel(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    service::VerificationService svc(service::ServiceOptions{});
    benchmark::DoNotOptimize(svc.run(job).verdict);
  }
}
BENCHMARK(BM_DirectComposedRing)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_LearnColdRing(benchmark::State& state) {
  service::VerificationJob job = makeJob(
      "ring", gen::ringModel(static_cast<std::size_t>(state.range(0))));
  job.options.learn = true;
  for (auto _ : state) {
    service::VerificationService svc(service::ServiceOptions{});
    benchmark::DoNotOptimize(
        agr::runLearnedJob(svc, job, agr::LearnOptions{}).verdict);
  }
}
BENCHMARK(BM_LearnColdRing)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_LearnWarmRing(benchmark::State& state) {
  service::VerificationJob job = makeJob(
      "ring", gen::ringModel(static_cast<std::size_t>(state.range(0))));
  job.options.learn = true;
  service::VerificationService svc(service::ServiceOptions{});
  agr::runLearnedJob(svc, job, agr::LearnOptions{});  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agr::runLearnedJob(svc, job, agr::LearnOptions{}).verdict);
  }
}
BENCHMARK(BM_LearnWarmRing)->Arg(3)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("learn", report)
