// Figure 2 reproduction and fairness costs: the strong-fairness ring,
// Rule 4 vs Rule 5, and the Emerson-Lei fair-EG fixpoint as the ring and
// the number of fairness constraints grow.
#include <sstream>

#include "bench_common.hpp"
#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "ctl/parser.hpp"
#include "smv/elaborate.hpp"

using namespace cmc;

namespace {

/// Figure 2 generalized: a ring p1..pk with a single exit p1 -> q.
std::string ringSmv(int k) {
  std::ostringstream out;
  out << "MODULE ring\nVAR s : {";
  for (int i = 1; i <= k; ++i) out << "p" << i << ", ";
  out << "q};\nASSIGN\n  next(s) :=\n    case\n";
  out << "      s = p1 : {p2, q};\n";
  for (int i = 2; i <= k; ++i) {
    out << "      s = p" << i << " : p" << (i % k) + 1 << ";\n";
  }
  out << "      1 : s;\n    esac;\n";
  return out.str();
}

ctl::FormulaPtr ringRegion(int k) {
  std::vector<ctl::FormulaPtr> ps;
  for (int i = 1; i <= k; ++i) ps.push_back(ctl::eq("s", "p" + std::to_string(i)));
  return ctl::disj(ps);
}

void report() {
  std::printf("== Figure 2: strong fairness required ==\n");
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, ringSmv(6));
  symbolic::Checker checker(mod.sys);
  const ctl::FormulaPtr p = ringRegion(6);
  const ctl::FormulaPtr q = ctl::parse("s=q");

  comp::ProofTree proof;
  const auto rule4 = comp::deriveRule4(checker, p, q, proof);
  std::printf("Rule 4 premise p => EX q:          %s (paper: fails)\n",
              rule4.has_value() ? "holds" : "fails");

  std::vector<ctl::FormulaPtr> ps;
  for (int i = 1; i <= 6; ++i) ps.push_back(ctl::eq("s", "p" + std::to_string(i)));
  const auto rule5 = comp::deriveRule5(checker, ps, 0, q, proof);
  std::printf("Rule 5 with helpful disjunct p1:   %s (paper: succeeds)\n",
              rule5.has_value() ? "succeeds" : "FAILS");

  const ctl::FormulaPtr progress = ctl::mkImplies(p, ctl::AU(p, q));
  std::printf("p => A[p U q] without fairness:    %s (paper: false)\n",
              checker.holds(ctl::Restriction::trivial(), progress)
                  ? "true" : "false");
  std::printf("p => A[p U q] under (true,{!p|q}): %s (paper: true)\n\n",
              checker.holds(comp::progressRestriction(p, q), progress)
                  ? "true" : "false");
}

void BM_Rule5Derivation(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::string smv = ringSmv(k);
  for (auto _ : state) {
    symbolic::Context ctx;
    const smv::ElaboratedModule mod = smv::elaborateText(ctx, smv);
    symbolic::Checker checker(mod.sys);
    std::vector<ctl::FormulaPtr> ps;
    for (int i = 1; i <= k; ++i) {
      ps.push_back(ctl::eq("s", "p" + std::to_string(i)));
    }
    comp::ProofTree proof;
    const auto g =
        comp::deriveRule5(checker, ps, 0, ctl::parse("s=q"), proof);
    benchmark::DoNotOptimize(g.has_value());
  }
}
BENCHMARK(BM_Rule5Derivation)->Arg(4)->Arg(8)->Arg(16);

void BM_FairAUCheck(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  symbolic::Context ctx;
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, ringSmv(k));
  symbolic::Checker checker(mod.sys);
  const ctl::FormulaPtr p = ringRegion(k);
  const ctl::FormulaPtr q = ctl::parse("s=q");
  const ctl::FormulaPtr progress = ctl::mkImplies(p, ctl::AU(p, q));
  const ctl::Restriction r = comp::progressRestriction(p, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.holds(r, progress));
  }
  state.counters["ring"] = k;
}
BENCHMARK(BM_FairAUCheck)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_EmersonLeiManyConstraints(benchmark::State& state) {
  // Fair states with m independent fairness constraints over free booleans.
  const int m = static_cast<int>(state.range(0));
  symbolic::Context ctx;
  std::ostringstream smv;
  smv << "MODULE free\nVAR ";
  for (int i = 0; i < m; ++i) smv << "b" << i << " : boolean;\n    ";
  smv << "\n";
  const smv::ElaboratedModule mod = smv::elaborateText(ctx, smv.str());
  symbolic::Checker checker(mod.sys);
  std::vector<ctl::FormulaPtr> fairness;
  for (int i = 0; i < m; ++i) fairness.push_back(ctl::atom("b" + std::to_string(i)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.fairStates(fairness));
  }
  state.counters["constraints"] = m;
}
BENCHMARK(BM_EmersonLeiManyConstraints)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

CMC_BENCH_MAIN("fairness", report)
