// Reproduction of the paper's AFS-2 evaluation (Figures 12-17):
//  - Figures 15 and 17: model checking the server and client components.
//    Paper reference values:
//      server: all true, 0.067 s user, 2737 nodes allocated, trans 1145 + 6
//      client: all true, 0.067 s user,  592 nodes allocated, trans  120 + 6
//    Expected shape: everything true, AFS-2 BDDs markedly larger than
//    AFS-1's (callbacks/updates/failures add state), client smaller than
//    server.
//  - §4.3.4's compositional deduction of (Afs1') and timings per n.
#include "afs/afs2.hpp"
#include "afs/smv_sources.hpp"
#include "afs/verify_afs2.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

void report() {
  {
    WallTimer timer;
    symbolic::Context ctx(1 << 14);
    const smv::ElaboratedModule server =
        smv::elaborateText(ctx, afs::afs2ServerSmv(2));
    bench::printFigureReport(
        "Figure 15: model checking the AFS-2 server (Srv1, Srv2; 2 clients)",
        ctx, server.sys, server.specs, timer.seconds());
  }
  {
    WallTimer timer;
    symbolic::Context ctx;
    const smv::ElaboratedModule client =
        smv::elaborateText(ctx, afs::afs2ClientSmv(1));
    bench::printFigureReport(
        "Figure 17: model checking the AFS-2 client (Cli1)", ctx, client.sys,
        client.specs, timer.seconds());
  }
  for (int n : {1, 2, 3}) {
    WallTimer timer;
    const afs::Afs2Report rep = afs::verifyAfs2(n, /*crossCheck=*/n <= 2);
    std::printf(
        "== section 4.3.4: (Afs1') with %d client(s): %s, %zu component "
        "checks, %g s%s ==\n",
        n, rep.safety ? "proved" : "FAILED", rep.componentChecks,
        timer.seconds(),
        n <= 2 ? (rep.safetyCrossCheck ? ", cross-check confirmed"
                                       : ", CROSS-CHECK FAILED")
               : "");
  }
  std::printf("\n");
}

void BM_Afs2ServerSpecs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string smv = afs::afs2ServerSmv(n);
  std::uint64_t transNodes = 0;
  for (auto _ : state) {
    symbolic::Context ctx(1 << 14);
    const smv::ElaboratedModule mod = smv::elaborateText(ctx, smv);
    symbolic::Checker checker(mod.sys);
    bool all = true;
    for (const ctl::Spec& spec : mod.specs) {
      all = all && checker.holds(spec);
    }
    benchmark::DoNotOptimize(all);
    transNodes = mod.sys.transNodeCount();
  }
  state.counters["trans_nodes"] = static_cast<double>(transNodes);
}
BENCHMARK(BM_Afs2ServerSpecs)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_Afs2ClientSpecs(benchmark::State& state) {
  const std::string smv = afs::afs2ClientSmv(1);
  for (auto _ : state) {
    symbolic::Context ctx;
    const smv::ElaboratedModule mod = smv::elaborateText(ctx, smv);
    symbolic::Checker checker(mod.sys);
    benchmark::DoNotOptimize(checker.holds(mod.specs.at(0)));
  }
}
BENCHMARK(BM_Afs2ClientSpecs);

void BM_Afs2CompositionalSafety(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::size_t checks = 0;
  for (auto _ : state) {
    const afs::Afs2Report rep = afs::verifyAfs2(n, /*crossCheck=*/false);
    benchmark::DoNotOptimize(rep.safety);
    checks = rep.componentChecks;
  }
  state.counters["component_checks"] = static_cast<double>(checks);
}
BENCHMARK(BM_Afs2CompositionalSafety)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

CMC_BENCH_MAIN("afs2", report)
