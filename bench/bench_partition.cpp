// Monolithic vs partitioned transition relations (the tentpole comparison):
// the same composed models checked twice — once forcing the monolithic
// conjoined BDD (CheckerOptions{usePartitionedTrans=false}), once folding
// preimages over the disjunctive track partition with clustering and early
// quantification.  The verdicts are identical by construction (canonical
// BDDs; asserted by the PartitionCrossValidation tests); what changes is
// the resource profile: the partitioned path never materializes the full
// product, so peak live nodes and allocation totals drop on the larger
// models (AFS-2, the bigger rings).
#include <map>

#include "abp/abp.hpp"
#include "afs/afs1.hpp"
#include "afs/afs2.hpp"
#include "bench_common.hpp"
#include "ring/token_ring.hpp"
#include "symbolic/composition.hpp"
#include "symbolic/engine_choice.hpp"
#include "util/timer.hpp"

using namespace cmc;

namespace {

struct ModelCase {
  std::string name;
  /// Build the composed system into a fresh context and return its specs.
  std::vector<ctl::Spec> (*build)(symbolic::Context& ctx,
                                  symbolic::SymbolicSystem* out, int arg);
  int arg = 0;
};

std::vector<ctl::Spec> buildAbp(symbolic::Context& ctx,
                                symbolic::SymbolicSystem* out, int) {
  abp::AbpComponents comps = abp::buildAbp(ctx);
  *out = symbolic::composeAll({comps.sender.sys, comps.msgChannel.sys,
                               comps.receiver.sys, comps.ackChannel.sys});
  ctl::Spec safety;
  safety.name = "abp.safety";
  safety.r = ctl::Restriction{abp::abpInit(), {ctl::mkTrue()}};
  safety.f = ctl::AG(abp::abpTarget());
  return {safety};
}

std::vector<ctl::Spec> buildAfs1(symbolic::Context& ctx,
                                 symbolic::SymbolicSystem* out, int) {
  afs::Afs1Components comps = afs::buildAfs1(ctx);
  *out = symbolic::compose(comps.server.sys, comps.client.sys);
  return {afs::afs1SafetySpec()};
}

std::vector<ctl::Spec> buildAfs2(symbolic::Context& ctx,
                                 symbolic::SymbolicSystem* out, int n) {
  afs::Afs2Components comps = afs::buildAfs2(ctx, n, /*reflexive=*/true);
  std::vector<symbolic::SymbolicSystem> systems{comps.server.sys};
  for (const smv::ElaboratedModule& client : comps.clients) {
    systems.push_back(client.sys);
  }
  *out = symbolic::composeAll(systems);
  return {afs::afs2SafetySpec(n)};
}

std::vector<ctl::Spec> buildRing(symbolic::Context& ctx,
                                 symbolic::SymbolicSystem* out, int n) {
  ring::RingComponents comps = ring::buildRing(ctx, n);
  std::vector<symbolic::SymbolicSystem> systems;
  for (const smv::ElaboratedModule& mod : comps.stations) {
    systems.push_back(mod.sys);
  }
  *out = symbolic::composeAll(systems);
  ctl::Spec mutex;
  mutex.name = "ring" + std::to_string(n) + ".mutex";
  mutex.r = ctl::Restriction{ring::ringInit(n), {ctl::mkTrue()}};
  mutex.f = ctl::AG(ring::mutualExclusion(n));
  return {mutex};
}

enum class Mode { Monolithic, Partitioned, Auto };

const char* modeName(Mode m) {
  switch (m) {
    case Mode::Monolithic: return "monolithic";
    case Mode::Partitioned: return "partitioned";
    case Mode::Auto: return "auto";
  }
  return "?";
}

struct ModeStats {
  bool allHold = true;
  double seconds = 0.0;
  std::uint64_t peakLiveNodes = 0;
  std::uint64_t transNodes = 0;
  std::uint64_t nodesAllocated = 0;
};

ModeStats runMode(const ModelCase& mc, Mode mode, bool record = false) {
  symbolic::Context ctx(1 << 16);
  // Aggressive GC so peak-live measures *reachable* nodes, not cumulative
  // allocation: dead fixpoint intermediates are swept before they inflate
  // the high-water mark (the 25% rule still backs the threshold off on
  // unproductive sweeps).
  ctx.mgr().setGcThreshold(512);
  symbolic::SymbolicSystem sys;
  WallTimer timer;
  const std::vector<ctl::Spec> specs = mc.build(ctx, &sys, mc.arg);

  symbolic::CheckerOptions opts;
  switch (mode) {
    case Mode::Partitioned:
      opts.usePartitionedTrans = true;
      break;
    case Mode::Monolithic:
      opts.usePartitionedTrans = false;
      (void)sys.transBdd();  // the monolithic baseline pays for the product
      break;
    case Mode::Auto:
      // The probe's cost is part of auto's wall time — that overhead is
      // exactly what the 20%-of-best gate in bench_smoke.sh bounds.
      opts.usePartitionedTrans = symbolic::chooseEngine(sys).usePartitioned;
      break;
  }
  symbolic::Checker checker(sys, opts);
  // Build-phase peak (composition + trans/schedules), before check() takes
  // over the per-check accounting.
  ModeStats stats;
  stats.peakLiveNodes = ctx.mgr().stats().peakNodes;

  for (const ctl::Spec& spec : specs) {
    const symbolic::CheckResult r = checker.check(spec);
    stats.allHold = stats.allHold && r.holds;
    stats.peakLiveNodes = std::max(stats.peakLiveNodes, r.peakLiveNodes);
    if (record) bench::recordCheck(mc.name, r, modeName(mode));
  }
  stats.seconds = timer.seconds();
  stats.transNodes = sys.transNodeCount();
  stats.nodesAllocated = ctx.mgr().stats().nodesAllocatedTotal;
  return stats;
}

void report() {
  std::printf("== partitioned vs monolithic vs auto transition relations ==\n");
  std::printf("%-8s  %-12s  %5s  %10s  %12s  %12s  %12s\n", "model", "mode",
              "holds", "time (s)", "peak live", "trans nodes", "allocated");
  const std::vector<ModelCase> cases = {
      {"abp", buildAbp, 0},        {"afs1", buildAfs1, 0},
      {"afs2-1", buildAfs2, 1},    {"afs2-2", buildAfs2, 2},
      {"ring-3", buildRing, 3},    {"ring-4", buildRing, 4},
      {"ring-5", buildRing, 5},    {"ring-6", buildRing, 6},
      {"ring-7", buildRing, 7},    {"ring-8", buildRing, 8},
  };
  for (const ModelCase& mc : cases) {
    // Best-of-3 wall time, ROUND-ROBIN across modes: three back-to-back
    // runs of one mode all eat the same scheduler hiccup, which biases a
    // mode comparison on a loaded machine; interleaving decorrelates the
    // noise.  Per-check entries are recorded on the first run; node
    // counts are deterministic across runs.
    std::map<Mode, ModeStats> byMode;
    for (int round = 0; round < 3; ++round) {
      for (const Mode mode :
           {Mode::Monolithic, Mode::Partitioned, Mode::Auto}) {
        const ModeStats s = runMode(mc, mode, /*record=*/round == 0);
        auto [it, fresh] = byMode.try_emplace(mode, s);
        if (!fresh) it->second.seconds =
            std::min(it->second.seconds, s.seconds);
      }
    }
    for (const Mode mode : {Mode::Monolithic, Mode::Partitioned, Mode::Auto}) {
      const ModeStats& s = byMode.at(mode);
      std::printf("%-8s  %-12s  %5s  %10.4f  %12llu  %12llu  %12llu\n",
                  mc.name.c_str(), modeName(mode), s.allHold ? "yes" : "NO",
                  s.seconds,
                  static_cast<unsigned long long>(s.peakLiveNodes),
                  static_cast<unsigned long long>(s.transNodes),
                  static_cast<unsigned long long>(s.nodesAllocated));
      bench::JsonEntry summary;
      summary.model = mc.name;
      summary.spec = "ALL";
      summary.holds = s.allHold;
      summary.seconds = s.seconds;
      summary.nodesAllocated = s.nodesAllocated;
      summary.transNodes = s.transNodes;
      summary.peakLiveNodes = s.peakLiveNodes;
      summary.mode = modeName(mode);
      summary.clusterThreshold = symbolic::CheckerOptions{}.clusterThreshold;
      bench::recordResult(std::move(summary));
    }
  }
  std::printf("\n");
}

void BM_RingPreimages(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool partitioned = state.range(1) != 0;
  for (auto _ : state) {
    ModelCase mc{"ring", buildRing, n};
    benchmark::DoNotOptimize(
        runMode(mc, partitioned ? Mode::Partitioned : Mode::Monolithic)
            .allHold);
  }
  state.counters["stations"] = n;
  state.counters["partitioned"] = partitioned ? 1 : 0;
}
BENCHMARK(BM_RingPreimages)
    ->Args({3, 0})->Args({3, 1})->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

void BM_Afs2Preimages(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool partitioned = state.range(1) != 0;
  for (auto _ : state) {
    ModelCase mc{"afs2", buildAfs2, n};
    benchmark::DoNotOptimize(
        runMode(mc, partitioned ? Mode::Partitioned : Mode::Monolithic)
            .allHold);
  }
  state.counters["clients"] = n;
  state.counters["partitioned"] = partitioned ? 1 : 0;
}
BENCHMARK(BM_Afs2Preimages)
    ->Args({1, 0})->Args({1, 1})->Args({2, 0})->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ComposeOnly(benchmark::State& state) {
  // Composition itself is near-free now: it collects conjuncts instead of
  // conjoining BDDs.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    symbolic::Context ctx(1 << 16);
    ring::RingComponents comps = ring::buildRing(ctx, n);
    std::vector<symbolic::SymbolicSystem> systems;
    for (const smv::ElaboratedModule& mod : comps.stations) {
      systems.push_back(mod.sys);
    }
    benchmark::DoNotOptimize(
        symbolic::composeAll(systems).partition.conjunctCount());
  }
  state.counters["stations"] = n;
}
BENCHMARK(BM_ComposeOnly)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CMC_BENCH_MAIN("partition", report)
