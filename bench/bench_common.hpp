// Shared helpers for the benchmark harness: paper-style report printing.
// Every bench binary first prints its figure/table reproduction (verdicts
// and resource counters in the format of the paper's Figures 7/10/15/17),
// then runs the google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "symbolic/checker.hpp"

namespace cmc::bench {

/// Print one Fig.-7-style block: per-spec verdicts then the resource
/// summary of the context after all checks ran.
inline void printFigureReport(const std::string& title,
                              symbolic::Context& ctx,
                              const symbolic::SymbolicSystem& sys,
                              const std::vector<ctl::Spec>& specs,
                              double seconds) {
  std::printf("== %s ==\n", title.c_str());
  symbolic::Checker checker(sys);
  bool all = true;
  for (const ctl::Spec& spec : specs) {
    const bool holds = checker.holds(spec);
    all = all && holds;
    std::string text = ctl::toString(spec.f);
    if (text.size() > 56) text = text.substr(0, 53) + "...";
    std::printf("-- spec. %s is %s\n", text.c_str(),
                holds ? "true" : "false");
  }
  std::printf("\nresources used:\n");
  std::printf("user time: %g s\n", seconds);
  std::printf("BDD nodes allocated: %llu\n",
              static_cast<unsigned long long>(
                  ctx.mgr().stats().nodesAllocatedTotal));
  std::printf("BDD nodes representing transition relation: %llu + %zu\n",
              static_cast<unsigned long long>(sys.transNodeCount()),
              sys.vars.size());
  std::printf("%s\n\n", all ? "(all specifications hold)"
                            : "(SOME SPECIFICATIONS FAILED)");
}

}  // namespace cmc::bench

/// Standard main: print the reproduction report(s), then run benchmarks.
#define CMC_BENCH_MAIN(reportFn)                         \
  int main(int argc, char** argv) {                      \
    reportFn();                                          \
    benchmark::Initialize(&argc, argv);                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                 \
    benchmark::Shutdown();                               \
    return 0;                                            \
  }
