// Shared helpers for the benchmark harness: paper-style report printing
// and machine-readable result emission.  Every bench binary first prints
// its figure/table reproduction (verdicts and resource counters in the
// format of the paper's Figures 7/10/15/17), then runs the
// google-benchmark timings, and finally writes BENCH_<name>.json with the
// recorded verdicts and counters so the perf trajectory is diffable
// across PRs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "symbolic/checker.hpp"

namespace cmc::bench {

/// One machine-readable result row of a bench binary's reproduction
/// report; serialized into BENCH_<name>.json.
struct JsonEntry {
  std::string model;
  std::string spec;
  bool holds = false;
  double seconds = 0.0;
  std::uint64_t nodesAllocated = 0;
  std::uint64_t transNodes = 0;
  std::uint64_t peakLiveNodes = 0;
  double cacheHitRate = 0.0;
  std::string mode;  ///< e.g. "monolithic" / "partitioned"; may be empty
  /// Engine configuration the row ran under, so results are comparable
  /// across PRs without guessing the defaults of the day.
  std::uint64_t clusterThreshold = 0;
  bool reorder = false;  ///< variables were sifted before checking
};

inline std::vector<JsonEntry>& jsonEntries() {
  static std::vector<JsonEntry> entries;
  return entries;
}

inline void recordResult(JsonEntry entry) {
  jsonEntries().push_back(std::move(entry));
}

/// Record one CheckResult (the common case).
inline void recordCheck(const std::string& model,
                        const symbolic::CheckResult& r,
                        const std::string& mode = "",
                        bool reorder = false) {
  JsonEntry e;
  e.model = model;
  e.spec = r.specName.empty() ? r.specText : r.specName;
  e.holds = r.holds;
  e.seconds = r.seconds;
  e.nodesAllocated = r.bddNodesAllocated;
  e.transNodes = r.transNodes;
  e.peakLiveNodes = r.peakLiveNodes;
  e.cacheHitRate = r.cacheHitRate;
  e.mode = mode.empty() ? (r.usedPartition ? "partitioned" : "monolithic")
                        : mode;
  e.clusterThreshold = r.clusterThreshold;
  e.reorder = reorder;
  recordResult(std::move(e));
}

inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Write BENCH_<name>.json into the current directory.
inline void writeJsonReport(const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
               jsonEscape(name).c_str());
  const std::vector<JsonEntry>& entries = jsonEntries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JsonEntry& e = entries[i];
    std::fprintf(
        f,
        "    {\"model\": \"%s\", \"spec\": \"%s\", \"holds\": %s, "
        "\"seconds\": %.6f, \"nodes_allocated\": %llu, \"trans_nodes\": "
        "%llu, \"peak_live_nodes\": %llu, \"cache_hit_rate\": %.4f, "
        "\"mode\": \"%s\", \"cluster_threshold\": %llu, "
        "\"reorder\": %s}%s\n",
        jsonEscape(e.model).c_str(), jsonEscape(e.spec).c_str(),
        e.holds ? "true" : "false", e.seconds,
        static_cast<unsigned long long>(e.nodesAllocated),
        static_cast<unsigned long long>(e.transNodes),
        static_cast<unsigned long long>(e.peakLiveNodes), e.cacheHitRate,
        jsonEscape(e.mode).c_str(),
        static_cast<unsigned long long>(e.clusterThreshold),
        e.reorder ? "true" : "false", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu results)\n", path.c_str(), entries.size());
}

/// Print one Fig.-7-style block: per-spec verdicts then the resource
/// summary of the context after all checks ran.  Each spec's verdict and
/// counters are also recorded for the JSON report.
inline void printFigureReport(const std::string& title,
                              symbolic::Context& ctx,
                              const symbolic::SymbolicSystem& sys,
                              const std::vector<ctl::Spec>& specs,
                              double seconds) {
  std::printf("== %s ==\n", title.c_str());
  symbolic::Checker checker(sys);
  bool all = true;
  for (const ctl::Spec& spec : specs) {
    const symbolic::CheckResult result = checker.check(spec);
    all = all && result.holds;
    recordCheck(sys.name, result);
    std::string text = ctl::toString(spec.f);
    if (text.size() > 56) text = text.substr(0, 53) + "...";
    std::printf("-- spec. %s is %s\n", text.c_str(),
                result.holds ? "true" : "false");
  }
  std::printf("\nresources used:\n");
  std::printf("user time: %g s\n", seconds);
  std::printf("BDD nodes allocated: %llu\n",
              static_cast<unsigned long long>(
                  ctx.mgr().stats().nodesAllocatedTotal));
  std::printf("BDD nodes representing transition relation: %llu + %zu\n",
              static_cast<unsigned long long>(sys.transNodeCount()),
              sys.vars.size());
  std::printf("%s\n\n", all ? "(all specifications hold)"
                            : "(SOME SPECIFICATIONS FAILED)");
}

}  // namespace cmc::bench

/// Standard main: print the reproduction report(s), run benchmarks, then
/// write the machine-readable BENCH_<name>.json.
#define CMC_BENCH_MAIN(name, reportFn)                   \
  int main(int argc, char** argv) {                      \
    reportFn();                                          \
    benchmark::Initialize(&argc, argv);                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                 \
    benchmark::Shutdown();                               \
    cmc::bench::writeJsonReport(name);                   \
    return 0;                                            \
  }
