
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comp/classify.cpp" "src/CMakeFiles/cmc_comp.dir/comp/classify.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/classify.cpp.o.d"
  "/root/repo/src/comp/leadsto.cpp" "src/CMakeFiles/cmc_comp.dir/comp/leadsto.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/leadsto.cpp.o.d"
  "/root/repo/src/comp/lemmas.cpp" "src/CMakeFiles/cmc_comp.dir/comp/lemmas.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/lemmas.cpp.o.d"
  "/root/repo/src/comp/proof.cpp" "src/CMakeFiles/cmc_comp.dir/comp/proof.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/proof.cpp.o.d"
  "/root/repo/src/comp/property.cpp" "src/CMakeFiles/cmc_comp.dir/comp/property.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/property.cpp.o.d"
  "/root/repo/src/comp/rules.cpp" "src/CMakeFiles/cmc_comp.dir/comp/rules.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/rules.cpp.o.d"
  "/root/repo/src/comp/verifier.cpp" "src/CMakeFiles/cmc_comp.dir/comp/verifier.cpp.o" "gcc" "src/CMakeFiles/cmc_comp.dir/comp/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_kripke.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
