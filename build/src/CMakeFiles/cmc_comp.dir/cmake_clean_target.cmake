file(REMOVE_RECURSE
  "libcmc_comp.a"
)
