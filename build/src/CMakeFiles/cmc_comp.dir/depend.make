# Empty dependencies file for cmc_comp.
# This may be replaced when dependencies are built.
