file(REMOVE_RECURSE
  "CMakeFiles/cmc_comp.dir/comp/classify.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/classify.cpp.o.d"
  "CMakeFiles/cmc_comp.dir/comp/leadsto.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/leadsto.cpp.o.d"
  "CMakeFiles/cmc_comp.dir/comp/lemmas.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/lemmas.cpp.o.d"
  "CMakeFiles/cmc_comp.dir/comp/proof.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/proof.cpp.o.d"
  "CMakeFiles/cmc_comp.dir/comp/property.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/property.cpp.o.d"
  "CMakeFiles/cmc_comp.dir/comp/rules.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/rules.cpp.o.d"
  "CMakeFiles/cmc_comp.dir/comp/verifier.cpp.o"
  "CMakeFiles/cmc_comp.dir/comp/verifier.cpp.o.d"
  "libcmc_comp.a"
  "libcmc_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
