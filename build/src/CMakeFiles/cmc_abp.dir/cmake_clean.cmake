file(REMOVE_RECURSE
  "CMakeFiles/cmc_abp.dir/abp/abp.cpp.o"
  "CMakeFiles/cmc_abp.dir/abp/abp.cpp.o.d"
  "libcmc_abp.a"
  "libcmc_abp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_abp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
