file(REMOVE_RECURSE
  "libcmc_abp.a"
)
