# Empty compiler generated dependencies file for cmc_abp.
# This may be replaced when dependencies are built.
