file(REMOVE_RECURSE
  "CMakeFiles/cmc_util.dir/util/string_util.cpp.o"
  "CMakeFiles/cmc_util.dir/util/string_util.cpp.o.d"
  "CMakeFiles/cmc_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/cmc_util.dir/util/thread_pool.cpp.o.d"
  "libcmc_util.a"
  "libcmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
