file(REMOVE_RECURSE
  "CMakeFiles/cmc_kripke.dir/kripke/composition.cpp.o"
  "CMakeFiles/cmc_kripke.dir/kripke/composition.cpp.o.d"
  "CMakeFiles/cmc_kripke.dir/kripke/explicit_checker.cpp.o"
  "CMakeFiles/cmc_kripke.dir/kripke/explicit_checker.cpp.o.d"
  "CMakeFiles/cmc_kripke.dir/kripke/explicit_system.cpp.o"
  "CMakeFiles/cmc_kripke.dir/kripke/explicit_system.cpp.o.d"
  "libcmc_kripke.a"
  "libcmc_kripke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
