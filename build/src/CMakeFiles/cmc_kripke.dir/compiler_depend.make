# Empty compiler generated dependencies file for cmc_kripke.
# This may be replaced when dependencies are built.
