
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kripke/composition.cpp" "src/CMakeFiles/cmc_kripke.dir/kripke/composition.cpp.o" "gcc" "src/CMakeFiles/cmc_kripke.dir/kripke/composition.cpp.o.d"
  "/root/repo/src/kripke/explicit_checker.cpp" "src/CMakeFiles/cmc_kripke.dir/kripke/explicit_checker.cpp.o" "gcc" "src/CMakeFiles/cmc_kripke.dir/kripke/explicit_checker.cpp.o.d"
  "/root/repo/src/kripke/explicit_system.cpp" "src/CMakeFiles/cmc_kripke.dir/kripke/explicit_system.cpp.o" "gcc" "src/CMakeFiles/cmc_kripke.dir/kripke/explicit_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
