file(REMOVE_RECURSE
  "libcmc_kripke.a"
)
