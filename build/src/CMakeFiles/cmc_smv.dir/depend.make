# Empty dependencies file for cmc_smv.
# This may be replaced when dependencies are built.
