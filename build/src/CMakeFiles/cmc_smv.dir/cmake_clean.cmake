file(REMOVE_RECURSE
  "CMakeFiles/cmc_smv.dir/smv/ast.cpp.o"
  "CMakeFiles/cmc_smv.dir/smv/ast.cpp.o.d"
  "CMakeFiles/cmc_smv.dir/smv/elaborate.cpp.o"
  "CMakeFiles/cmc_smv.dir/smv/elaborate.cpp.o.d"
  "CMakeFiles/cmc_smv.dir/smv/lexer.cpp.o"
  "CMakeFiles/cmc_smv.dir/smv/lexer.cpp.o.d"
  "CMakeFiles/cmc_smv.dir/smv/parser.cpp.o"
  "CMakeFiles/cmc_smv.dir/smv/parser.cpp.o.d"
  "libcmc_smv.a"
  "libcmc_smv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_smv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
