
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smv/ast.cpp" "src/CMakeFiles/cmc_smv.dir/smv/ast.cpp.o" "gcc" "src/CMakeFiles/cmc_smv.dir/smv/ast.cpp.o.d"
  "/root/repo/src/smv/elaborate.cpp" "src/CMakeFiles/cmc_smv.dir/smv/elaborate.cpp.o" "gcc" "src/CMakeFiles/cmc_smv.dir/smv/elaborate.cpp.o.d"
  "/root/repo/src/smv/lexer.cpp" "src/CMakeFiles/cmc_smv.dir/smv/lexer.cpp.o" "gcc" "src/CMakeFiles/cmc_smv.dir/smv/lexer.cpp.o.d"
  "/root/repo/src/smv/parser.cpp" "src/CMakeFiles/cmc_smv.dir/smv/parser.cpp.o" "gcc" "src/CMakeFiles/cmc_smv.dir/smv/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_kripke.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
