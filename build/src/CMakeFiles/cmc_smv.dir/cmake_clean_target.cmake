file(REMOVE_RECURSE
  "libcmc_smv.a"
)
