file(REMOVE_RECURSE
  "libcmc_bdd.a"
)
