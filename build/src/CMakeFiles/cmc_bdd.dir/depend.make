# Empty dependencies file for cmc_bdd.
# This may be replaced when dependencies are built.
