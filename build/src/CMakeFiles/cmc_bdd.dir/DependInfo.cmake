
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/io.cpp" "src/CMakeFiles/cmc_bdd.dir/bdd/io.cpp.o" "gcc" "src/CMakeFiles/cmc_bdd.dir/bdd/io.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/cmc_bdd.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/cmc_bdd.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/ops.cpp" "src/CMakeFiles/cmc_bdd.dir/bdd/ops.cpp.o" "gcc" "src/CMakeFiles/cmc_bdd.dir/bdd/ops.cpp.o.d"
  "/root/repo/src/bdd/reorder.cpp" "src/CMakeFiles/cmc_bdd.dir/bdd/reorder.cpp.o" "gcc" "src/CMakeFiles/cmc_bdd.dir/bdd/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
