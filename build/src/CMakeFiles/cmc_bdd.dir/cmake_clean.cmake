file(REMOVE_RECURSE
  "CMakeFiles/cmc_bdd.dir/bdd/io.cpp.o"
  "CMakeFiles/cmc_bdd.dir/bdd/io.cpp.o.d"
  "CMakeFiles/cmc_bdd.dir/bdd/manager.cpp.o"
  "CMakeFiles/cmc_bdd.dir/bdd/manager.cpp.o.d"
  "CMakeFiles/cmc_bdd.dir/bdd/ops.cpp.o"
  "CMakeFiles/cmc_bdd.dir/bdd/ops.cpp.o.d"
  "CMakeFiles/cmc_bdd.dir/bdd/reorder.cpp.o"
  "CMakeFiles/cmc_bdd.dir/bdd/reorder.cpp.o.d"
  "libcmc_bdd.a"
  "libcmc_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
