file(REMOVE_RECURSE
  "libcmc_ring.a"
)
