# Empty compiler generated dependencies file for cmc_ring.
# This may be replaced when dependencies are built.
