file(REMOVE_RECURSE
  "CMakeFiles/cmc_ring.dir/ring/token_ring.cpp.o"
  "CMakeFiles/cmc_ring.dir/ring/token_ring.cpp.o.d"
  "libcmc_ring.a"
  "libcmc_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
