file(REMOVE_RECURSE
  "libcmc_ctl.a"
)
