# Empty dependencies file for cmc_ctl.
# This may be replaced when dependencies are built.
