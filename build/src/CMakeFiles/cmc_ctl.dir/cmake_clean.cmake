file(REMOVE_RECURSE
  "CMakeFiles/cmc_ctl.dir/ctl/formula.cpp.o"
  "CMakeFiles/cmc_ctl.dir/ctl/formula.cpp.o.d"
  "CMakeFiles/cmc_ctl.dir/ctl/parser.cpp.o"
  "CMakeFiles/cmc_ctl.dir/ctl/parser.cpp.o.d"
  "libcmc_ctl.a"
  "libcmc_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
