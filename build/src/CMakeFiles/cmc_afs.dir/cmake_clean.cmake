file(REMOVE_RECURSE
  "CMakeFiles/cmc_afs.dir/afs/afs1.cpp.o"
  "CMakeFiles/cmc_afs.dir/afs/afs1.cpp.o.d"
  "CMakeFiles/cmc_afs.dir/afs/afs2.cpp.o"
  "CMakeFiles/cmc_afs.dir/afs/afs2.cpp.o.d"
  "CMakeFiles/cmc_afs.dir/afs/smv_sources.cpp.o"
  "CMakeFiles/cmc_afs.dir/afs/smv_sources.cpp.o.d"
  "CMakeFiles/cmc_afs.dir/afs/verify_afs1.cpp.o"
  "CMakeFiles/cmc_afs.dir/afs/verify_afs1.cpp.o.d"
  "CMakeFiles/cmc_afs.dir/afs/verify_afs2.cpp.o"
  "CMakeFiles/cmc_afs.dir/afs/verify_afs2.cpp.o.d"
  "libcmc_afs.a"
  "libcmc_afs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_afs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
