file(REMOVE_RECURSE
  "libcmc_afs.a"
)
