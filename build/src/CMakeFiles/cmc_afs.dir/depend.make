# Empty dependencies file for cmc_afs.
# This may be replaced when dependencies are built.
