# Empty dependencies file for cmc_symbolic.
# This may be replaced when dependencies are built.
