
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/checker.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/checker.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/checker.cpp.o.d"
  "/root/repo/src/symbolic/composition.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/composition.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/composition.cpp.o.d"
  "/root/repo/src/symbolic/encode.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/encode.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/encode.cpp.o.d"
  "/root/repo/src/symbolic/prop.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/prop.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/prop.cpp.o.d"
  "/root/repo/src/symbolic/system.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/system.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/system.cpp.o.d"
  "/root/repo/src/symbolic/trace.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/trace.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/trace.cpp.o.d"
  "/root/repo/src/symbolic/var_table.cpp" "src/CMakeFiles/cmc_symbolic.dir/symbolic/var_table.cpp.o" "gcc" "src/CMakeFiles/cmc_symbolic.dir/symbolic/var_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_kripke.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
