file(REMOVE_RECURSE
  "CMakeFiles/cmc_symbolic.dir/symbolic/checker.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/checker.cpp.o.d"
  "CMakeFiles/cmc_symbolic.dir/symbolic/composition.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/composition.cpp.o.d"
  "CMakeFiles/cmc_symbolic.dir/symbolic/encode.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/encode.cpp.o.d"
  "CMakeFiles/cmc_symbolic.dir/symbolic/prop.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/prop.cpp.o.d"
  "CMakeFiles/cmc_symbolic.dir/symbolic/system.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/system.cpp.o.d"
  "CMakeFiles/cmc_symbolic.dir/symbolic/trace.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/trace.cpp.o.d"
  "CMakeFiles/cmc_symbolic.dir/symbolic/var_table.cpp.o"
  "CMakeFiles/cmc_symbolic.dir/symbolic/var_table.cpp.o.d"
  "libcmc_symbolic.a"
  "libcmc_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
