file(REMOVE_RECURSE
  "libcmc_symbolic.a"
)
