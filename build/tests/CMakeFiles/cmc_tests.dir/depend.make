# Empty dependencies file for cmc_tests.
# This may be replaced when dependencies are built.
