
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/abp_test.cpp" "tests/CMakeFiles/cmc_tests.dir/abp_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/abp_test.cpp.o.d"
  "/root/repo/tests/afs_test.cpp" "tests/CMakeFiles/cmc_tests.dir/afs_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/afs_test.cpp.o.d"
  "/root/repo/tests/bdd_test.cpp" "tests/CMakeFiles/cmc_tests.dir/bdd_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/bdd_test.cpp.o.d"
  "/root/repo/tests/comp_test.cpp" "tests/CMakeFiles/cmc_tests.dir/comp_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/comp_test.cpp.o.d"
  "/root/repo/tests/ctl_test.cpp" "tests/CMakeFiles/cmc_tests.dir/ctl_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/ctl_test.cpp.o.d"
  "/root/repo/tests/fairness_test.cpp" "tests/CMakeFiles/cmc_tests.dir/fairness_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/fairness_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/cmc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/kripke_test.cpp" "tests/CMakeFiles/cmc_tests.dir/kripke_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/kripke_test.cpp.o.d"
  "/root/repo/tests/lemmas_api_test.cpp" "tests/CMakeFiles/cmc_tests.dir/lemmas_api_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/lemmas_api_test.cpp.o.d"
  "/root/repo/tests/lemmas_test.cpp" "tests/CMakeFiles/cmc_tests.dir/lemmas_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/lemmas_test.cpp.o.d"
  "/root/repo/tests/reorder_test.cpp" "tests/CMakeFiles/cmc_tests.dir/reorder_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/reorder_test.cpp.o.d"
  "/root/repo/tests/ring_test.cpp" "tests/CMakeFiles/cmc_tests.dir/ring_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/ring_test.cpp.o.d"
  "/root/repo/tests/smv_test.cpp" "tests/CMakeFiles/cmc_tests.dir/smv_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/smv_test.cpp.o.d"
  "/root/repo/tests/symbolic_test.cpp" "tests/CMakeFiles/cmc_tests.dir/symbolic_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/symbolic_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/cmc_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/cmc_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/cmc_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_afs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_abp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_comp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_smv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_kripke.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
