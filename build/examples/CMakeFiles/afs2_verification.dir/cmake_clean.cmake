file(REMOVE_RECURSE
  "CMakeFiles/afs2_verification.dir/afs2_verification.cpp.o"
  "CMakeFiles/afs2_verification.dir/afs2_verification.cpp.o.d"
  "afs2_verification"
  "afs2_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs2_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
