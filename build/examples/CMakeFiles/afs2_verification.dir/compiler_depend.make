# Empty compiler generated dependencies file for afs2_verification.
# This may be replaced when dependencies are built.
