file(REMOVE_RECURSE
  "CMakeFiles/theory_tour.dir/theory_tour.cpp.o"
  "CMakeFiles/theory_tour.dir/theory_tour.cpp.o.d"
  "theory_tour"
  "theory_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
