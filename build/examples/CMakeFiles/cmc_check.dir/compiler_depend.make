# Empty compiler generated dependencies file for cmc_check.
# This may be replaced when dependencies are built.
