file(REMOVE_RECURSE
  "CMakeFiles/cmc_check.dir/cmc_check.cpp.o"
  "CMakeFiles/cmc_check.dir/cmc_check.cpp.o.d"
  "cmc_check"
  "cmc_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
