file(REMOVE_RECURSE
  "CMakeFiles/afs1_verification.dir/afs1_verification.cpp.o"
  "CMakeFiles/afs1_verification.dir/afs1_verification.cpp.o.d"
  "afs1_verification"
  "afs1_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs1_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
