# Empty dependencies file for afs1_verification.
# This may be replaced when dependencies are built.
