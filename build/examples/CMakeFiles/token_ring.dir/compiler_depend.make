# Empty compiler generated dependencies file for token_ring.
# This may be replaced when dependencies are built.
