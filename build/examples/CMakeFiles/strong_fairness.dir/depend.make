# Empty dependencies file for strong_fairness.
# This may be replaced when dependencies are built.
