file(REMOVE_RECURSE
  "CMakeFiles/strong_fairness.dir/strong_fairness.cpp.o"
  "CMakeFiles/strong_fairness.dir/strong_fairness.cpp.o.d"
  "strong_fairness"
  "strong_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strong_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
