# Empty dependencies file for bench_bdd_ops.
# This may be replaced when dependencies are built.
