# Empty dependencies file for bench_abp.
# This may be replaced when dependencies are built.
