file(REMOVE_RECURSE
  "CMakeFiles/bench_abp.dir/bench_abp.cpp.o"
  "CMakeFiles/bench_abp.dir/bench_abp.cpp.o.d"
  "bench_abp"
  "bench_abp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
