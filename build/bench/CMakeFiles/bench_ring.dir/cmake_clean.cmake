file(REMOVE_RECURSE
  "CMakeFiles/bench_ring.dir/bench_ring.cpp.o"
  "CMakeFiles/bench_ring.dir/bench_ring.cpp.o.d"
  "bench_ring"
  "bench_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
