# Empty dependencies file for bench_afs2.
# This may be replaced when dependencies are built.
