file(REMOVE_RECURSE
  "CMakeFiles/bench_afs2.dir/bench_afs2.cpp.o"
  "CMakeFiles/bench_afs2.dir/bench_afs2.cpp.o.d"
  "bench_afs2"
  "bench_afs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_afs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
