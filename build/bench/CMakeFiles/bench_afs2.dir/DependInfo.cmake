
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_afs2.cpp" "bench/CMakeFiles/bench_afs2.dir/bench_afs2.cpp.o" "gcc" "bench/CMakeFiles/bench_afs2.dir/bench_afs2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmc_afs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_abp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_comp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_smv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_kripke.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
