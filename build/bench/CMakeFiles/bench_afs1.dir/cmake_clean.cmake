file(REMOVE_RECURSE
  "CMakeFiles/bench_afs1.dir/bench_afs1.cpp.o"
  "CMakeFiles/bench_afs1.dir/bench_afs1.cpp.o.d"
  "bench_afs1"
  "bench_afs1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_afs1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
