# Empty compiler generated dependencies file for bench_afs1.
# This may be replaced when dependencies are built.
