// The compositional verifier: turns a spec for a composed system into
// per-component model-checking obligations using the property classes, and
// discharges guarantees properties (paper §3.3, applied in §4.2.3/§4.3.4).
//
// Verification strategy for a spec S on M₁ ∘ … ∘ Mₙ:
//  - classify(S) == Universal:    check S on the expansion of *every*
//    component over the union alphabet (Lemma 5 makes the expansion the
//    right object); conclude S for the composition (Rule 2).
//  - classify(S) == Existential:  check S on the expansion of *some*
//    component; conclude for the composition (Rules 1/3).
//  - Unknown: optionally fall back to a direct (non-compositional) check on
//    the composed system.  The proof tree labels this honestly so the
//    certificate shows which steps were compositional.
//
// ParallelVerifier runs independent obligations on a thread pool; each
// obligation builds its own BDD manager (managers are single-threaded), so
// obligations scale with cores — this is the engine behind the §5 claim of
// linear cost in the number of components.
#pragma once

#include <functional>

#include "comp/classify.hpp"
#include "comp/proof.hpp"
#include "comp/property.hpp"
#include "symbolic/checker.hpp"
#include "symbolic/composition.hpp"

namespace cmc::comp {

class CompositionalVerifier {
 public:
  explicit CompositionalVerifier(symbolic::Context& ctx,
                                 symbolic::CheckerOptions opts = {})
      : ctx_(ctx), checkerOpts_(opts) {}

  /// Preimage-engine options used for every obligation this verifier
  /// discharges (partitioned vs monolithic, clustering threshold).
  void setCheckerOptions(symbolic::CheckerOptions opts) {
    checkerOpts_ = opts;
  }
  const symbolic::CheckerOptions& checkerOptions() const noexcept {
    return checkerOpts_;
  }

  /// Register a component (copied; cheap — BDD handles).
  void addComponent(symbolic::SymbolicSystem sys);

  std::size_t componentCount() const noexcept { return components_.size(); }
  const symbolic::SymbolicSystem& component(std::size_t i) const {
    return components_.at(i);
  }

  /// The full composition M₁ ∘ … ∘ Mₙ (built lazily, cached).
  const symbolic::SymbolicSystem& composed();

  /// Verify `spec` on the composition compositionally where the classifier
  /// allows; returns the verdict and records every step in `proof`.
  bool verify(const ctl::Spec& spec, ProofTree& proof,
              bool allowGlobalFallback = true);

  /// Discharge guarantee `g`: verify every lhs spec (compositionally when
  /// possible), then record the rhs as conclusions.  Returns true iff the
  /// lhs was fully discharged; the concluded rhs specs are appended to
  /// `*conclusions` when non-null.
  bool discharge(const Guarantee& g, ProofTree& proof,
                 std::vector<ctl::Spec>* conclusions = nullptr,
                 bool allowGlobalFallback = true);

  /// The invariance argument the paper uses for (Afs1) and (Afs1')
  /// (§4.2.3, §4.3.4): given propositional init, inv, and target with
  ///   (a) init ⇒ inv            (propositional validity),
  ///   (b) inv ⇒ AX inv          (universal — checked per component),
  ///   (c) inv ⇒ target          (propositional validity),
  /// conclude  composition ⊨_(init,{true}) AG target.
  bool verifyInvariance(const ctl::FormulaPtr& init,
                        const ctl::FormulaPtr& inv,
                        const ctl::FormulaPtr& target, ProofTree& proof,
                        const std::string& name);

 private:
  /// Expansion of component i over the union alphabet (cached).
  const symbolic::SymbolicSystem& expansion(std::size_t i);
  std::vector<symbolic::VarId> unionVars() const;

  symbolic::Context& ctx_;
  symbolic::CheckerOptions checkerOpts_;
  std::vector<symbolic::SymbolicSystem> components_;
  std::vector<symbolic::SymbolicSystem> expansions_;  ///< lazy, parallel to components_
  std::vector<bool> expansionBuilt_;
  std::optional<symbolic::SymbolicSystem> composed_;
};

// ---- Parallel obligation runner --------------------------------------------

/// One independent proof obligation.  `run` must be self-contained: it
/// builds its own Context/Manager (BDD managers are not shared across
/// threads) and returns the verdict.  Exceptions are captured as failures.
struct Obligation {
  std::string name;
  std::function<bool()> run;
};

struct ObligationResult {
  std::string name;
  bool ok = false;
  double seconds = 0.0;
  std::string error;  ///< non-empty if run() threw
};

struct ParallelReport {
  bool allOk = false;
  double wallSeconds = 0.0;
  std::vector<ObligationResult> results;

  std::string summary() const;
};

/// Run all obligations on `threads` workers (0 = hardware concurrency).
ParallelReport runObligations(std::vector<Obligation> obligations,
                              unsigned threads = 0);

}  // namespace cmc::comp
