#include "comp/lemmas.hpp"

#include "ctl/formula.hpp"

namespace cmc::comp {

using kripke::ExplicitChecker;
using kripke::ExplicitSystem;
using kripke::State;

namespace {

LemmaResult pass(std::string lemma, std::string detail = "holds") {
  return LemmaResult{true, std::move(lemma), std::move(detail)};
}

LemmaResult fail(std::string lemma, std::string detail) {
  return LemmaResult{false, std::move(lemma), std::move(detail)};
}

/// Random propositional formula over the given atoms.
ctl::FormulaPtr randomProp(std::mt19937& rng,
                           const std::vector<std::string>& atoms,
                           int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 5);
  std::uniform_int_distribution<std::size_t> atomPick(0, atoms.size() - 1);
  switch (pick(rng)) {
    case 0:
    case 1:
      return ctl::atom(atoms[atomPick(rng)]);
    case 2:
      return ctl::mkNot(randomProp(rng, atoms, depth - 1));
    case 3:
      return ctl::mkAnd(randomProp(rng, atoms, depth - 1),
                        randomProp(rng, atoms, depth - 1));
    case 4:
      return ctl::mkOr(randomProp(rng, atoms, depth - 1),
                       randomProp(rng, atoms, depth - 1));
    default:
      return ctl::mkImplies(randomProp(rng, atoms, depth - 1),
                            randomProp(rng, atoms, depth - 1));
  }
}

/// Random CTL formula over the atoms (bounded depth).
ctl::FormulaPtr randomCtl(std::mt19937& rng,
                          const std::vector<std::string>& atoms, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 9);
  switch (pick(rng)) {
    case 0:
    case 1:
      return randomProp(rng, atoms, 1);
    case 2:
      return ctl::mkNot(randomCtl(rng, atoms, depth - 1));
    case 3:
      return ctl::mkAnd(randomCtl(rng, atoms, depth - 1),
                        randomCtl(rng, atoms, depth - 1));
    case 4:
      return ctl::EX(randomCtl(rng, atoms, depth - 1));
    case 5:
      return ctl::AX(randomCtl(rng, atoms, depth - 1));
    case 6:
      return ctl::EF(randomCtl(rng, atoms, depth - 1));
    case 7:
      return ctl::AG(randomCtl(rng, atoms, depth - 1));
    case 8:
      return ctl::EU(randomCtl(rng, atoms, depth - 1),
                     randomCtl(rng, atoms, depth - 1));
    default:
      return ctl::AU(randomCtl(rng, atoms, depth - 1),
                     randomCtl(rng, atoms, depth - 1));
  }
}

}  // namespace

LemmaResult checkLemma1(const ExplicitSystem& a, const ExplicitSystem& b,
                        const ExplicitSystem& c) {
  if (!kripke::compose(a, b).sameBehavior(kripke::compose(b, a))) {
    return fail("Lemma 1", "composition is not commutative on these systems");
  }
  const ExplicitSystem left = kripke::compose(kripke::compose(a, b), c);
  const ExplicitSystem right = kripke::compose(a, kripke::compose(b, c));
  if (!left.sameBehavior(right)) {
    return fail("Lemma 1", "composition is not associative on these systems");
  }
  return pass("Lemma 1", "o is commutative and associative");
}

LemmaResult checkLemma2(const ExplicitSystem& a, const ExplicitSystem& b) {
  if (a.atoms() != b.atoms()) {
    return fail("Lemma 2", "systems must share the same alphabet");
  }
  const ExplicitSystem composed = kripke::compose(a, b);
  ExplicitSystem expected(a.atoms());
  a.forEachTransition([&](State s, State t) { expected.addTransition(s, t); });
  b.forEachTransition([&](State s, State t) { expected.addTransition(s, t); });
  expected.makeReflexive();
  if (!composed.sameBehavior(expected)) {
    return fail("Lemma 2", "composition differs from the relation union");
  }
  return pass("Lemma 2", "(S,R) o (S,R') = (S, R u R')");
}

LemmaResult checkLemma3(const ExplicitSystem& a) {
  if (!a.isReflexive()) {
    return fail("Lemma 3",
                "the system is not reflexive (the paper's standing "
                "assumption); the identity law needs it");
  }
  const ExplicitSystem composed =
      kripke::compose(a, kripke::identitySystem(a.atoms()));
  if (!composed.sameBehavior(a)) {
    return fail("Lemma 3", "(S, I) is not an identity on this system");
  }
  return pass("Lemma 3", "(S, I) is the identity element");
}

LemmaResult checkLemma4(const ExplicitSystem& a, const ExplicitSystem& b) {
  const ExplicitSystem direct = kripke::compose(a, b);
  const ExplicitSystem viaExpansions = kripke::compose(
      kripke::expand(a, b.atoms()), kripke::expand(b, a.atoms()));
  if (!direct.sameBehavior(viaExpansions)) {
    return fail("Lemma 4", "expansion path differs from direct composition");
  }
  return pass("Lemma 4", "M o M' = (M o (S',I)) o (M' o (S,I))");
}

LemmaResult checkLemma5(const ExplicitSystem& a,
                        const std::vector<std::string>& extraAtoms,
                        std::mt19937& rng, int samples) {
  const ExplicitSystem expanded = kripke::expand(a, extraAtoms);
  ExplicitChecker ca(a);
  ExplicitChecker ce(expanded);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr f = randomCtl(rng, a.atoms(), 3);
    if (ca.holds(trivial, f) != ce.holds(trivial, f)) {
      return fail("Lemma 5",
                  "expansion changed the verdict of " + ctl::toString(f));
    }
  }
  return pass("Lemma 5", "expansion preserves C(S) properties");
}

LemmaResult checkLemma6(const ExplicitSystem& a, std::mt19937& rng,
                        int samples) {
  ExplicitChecker checker(a);
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr f = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr g = randomProp(rng, a.atoms(), 2);
    const bool lhs = checker.holds(ctl::Restriction::trivial(),
                                   ctl::mkImplies(f, ctl::AX(g)));
    const kripke::StateSet satF = checker.sat(f, {});
    const kripke::StateSet satG = checker.sat(g, {});
    bool rhs = true;
    a.forEachTransition([&](State s, State t) {
      if (satF[s] && !satG[t]) rhs = false;
    });
    if (lhs != rhs) {
      return fail("Lemma 6", "AX characterization broke for f = " +
                                 ctl::toString(f));
    }
  }
  return pass("Lemma 6", "f => AXg iff every f-transition lands in g");
}

LemmaResult checkLemma7(const ExplicitSystem& a, std::mt19937& rng,
                        int samples) {
  ExplicitChecker checker(a);
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr f = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr g = randomProp(rng, a.atoms(), 2);
    const bool lhs = checker.holds(ctl::Restriction::trivial(),
                                   ctl::mkImplies(f, ctl::EX(g)));
    const kripke::StateSet satF = checker.sat(f, {});
    const kripke::StateSet satG = checker.sat(g, {});
    bool rhs = true;
    for (State s = 0; s < a.stateCount(); ++s) {
      if (!satF[s]) continue;
      bool some = false;
      for (State t : a.successors(s)) some = some || satG[t];
      if (!some) rhs = false;
    }
    if (lhs != rhs) {
      return fail("Lemma 7", "EX characterization broke for f = " +
                                 ctl::toString(f));
    }
  }
  return pass("Lemma 7", "f => EXg iff every f-state has a g-successor");
}

LemmaResult checkLemma8(const ExplicitSystem& a,
                        const std::vector<std::string>& extraAtoms,
                        std::mt19937& rng, int samples) {
  const ExplicitSystem expanded = kripke::expand(a, extraAtoms);
  ExplicitChecker ca(a);
  ExplicitChecker ce(expanded);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr p = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr q = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr pp = randomProp(rng, extraAtoms, 2);
    if (ca.holds(trivial, ctl::mkImplies(p, ctl::AX(q))) &&
        !ce.holds(trivial, ctl::mkImplies(ctl::mkAnd(p, pp),
                                          ctl::AX(ctl::mkAnd(q, pp))))) {
      return fail("Lemma 8", "AX transfer failed for p = " +
                                 ctl::toString(p));
    }
    if (ca.holds(trivial, ctl::mkImplies(p, ctl::EX(q))) &&
        !ce.holds(trivial, ctl::mkImplies(ctl::mkAnd(p, pp),
                                          ctl::EX(ctl::mkAnd(q, pp))))) {
      return fail("Lemma 8", "EX transfer failed for p = " +
                                 ctl::toString(p));
    }
  }
  return pass("Lemma 8", "expansion transfers p&p' => AX(q&p') and EX");
}

LemmaResult checkLemma9(const ExplicitSystem& a,
                        const std::vector<std::string>& extraAtoms,
                        std::mt19937& rng, int samples) {
  const ExplicitSystem expanded = kripke::expand(a, extraAtoms);
  ExplicitChecker ca(a);
  ExplicitChecker ce(expanded);
  const ctl::Restriction trivial = ctl::Restriction::trivial();
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr p = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr q = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr pp = randomProp(rng, extraAtoms, 2);
    if (ca.holds(trivial, ctl::mkImplies(p, ctl::AX(q))) &&
        !ce.holds(trivial, ctl::mkImplies(ctl::mkOr(p, pp),
                                          ctl::AX(ctl::mkOr(q, pp))))) {
      return fail("Lemma 9", "disjunctive AX transfer failed for p = " +
                                 ctl::toString(p));
    }
  }
  return pass("Lemma 9", "expansion transfers (p|p') => AX(q|p')");
}

LemmaResult checkLemma10(const ExplicitSystem& a, const ExplicitSystem& b,
                         std::mt19937& rng, int samples) {
  // Require a's atoms to be a prefix of b's so the projection is a mask.
  if (b.atomCount() < a.atomCount()) {
    return fail("Lemma 10", "second system must extend the first's alphabet");
  }
  for (std::size_t i = 0; i < a.atomCount(); ++i) {
    if (a.atoms()[i] != b.atoms()[i]) {
      return fail("Lemma 10", "alphabets must agree on a prefix");
    }
  }
  const State mask =
      static_cast<State>((std::uint64_t{1} << a.atomCount()) - 1);
  ExplicitChecker ca(a);
  ExplicitChecker cb(b);
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr p = randomProp(rng, a.atoms(), 2);
    const kripke::StateSet satA = ca.sat(p, {});
    const kripke::StateSet satB = cb.sat(p, {});
    for (State sb = 0; sb < b.stateCount(); ++sb) {
      if (satA[sb & mask] != satB[sb]) {
        return fail("Lemma 10",
                    "projection broke for p = " + ctl::toString(p));
      }
    }
  }
  return pass("Lemma 10", "M,s |= p iff M',s' |= p when s = s' n S");
}

LemmaResult checkLemma11(const ExplicitSystem& a, std::mt19937& rng,
                         int samples) {
  ExplicitChecker checker(a);
  for (int i = 0; i < samples; ++i) {
    const ctl::FormulaPtr f = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr g = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr fc = randomProp(rng, a.atoms(), 2);
    const ctl::FormulaPtr spec = ctl::mkImplies(f, ctl::AX(g));
    if (checker.holds(ctl::Restriction::trivial(), spec)) {
      ctl::Restriction r;
      r.init = ctl::mkTrue();
      r.fairness = {fc};
      if (!checker.holds(r, spec)) {
        return fail("Lemma 11", "fairness strengthening broke " +
                                    ctl::toString(spec));
      }
    }
  }
  return pass("Lemma 11", "strengthening fairness preserves f => AXg");
}

std::vector<LemmaResult> checkAllLemmas(unsigned seed) {
  std::mt19937 rng(seed);
  auto randomSystem = [&rng](const std::vector<std::string>& atoms) {
    ExplicitSystem sys(atoms);
    std::uniform_int_distribution<std::uint64_t> state(0, sys.stateCount() - 1);
    std::uniform_int_distribution<int> fanout(1, 3);
    for (State s = 0; s < sys.stateCount(); ++s) {
      const int k = fanout(rng);
      for (int i = 0; i < k; ++i) {
        sys.addTransition(s, static_cast<State>(state(rng)));
      }
    }
    sys.makeReflexive();
    return sys;
  };
  const ExplicitSystem a = randomSystem({"a", "b"});
  const ExplicitSystem a2 = randomSystem({"a", "b"});
  const ExplicitSystem b = randomSystem({"b", "c"});
  const ExplicitSystem c = randomSystem({"c"});
  const ExplicitSystem abc = randomSystem({"a", "b", "c"});

  std::vector<LemmaResult> results;
  results.push_back(checkLemma1(a, b, c));
  results.push_back(checkLemma2(a, a2));
  results.push_back(checkLemma3(a));
  results.push_back(checkLemma4(a, b));
  results.push_back(checkLemma5(a, {"z"}, rng));
  results.push_back(checkLemma6(abc, rng));
  results.push_back(checkLemma7(abc, rng));
  results.push_back(checkLemma8(a, {"u", "v"}, rng));
  results.push_back(checkLemma9(a, {"u"}, rng));
  results.push_back(checkLemma10(a, abc, rng));
  results.push_back(checkLemma11(abc, rng));
  return results;
}

}  // namespace cmc::comp
