#include "comp/property.hpp"

#include <sstream>

namespace cmc::comp {

std::string toString(PropertyClass c) {
  switch (c) {
    case PropertyClass::Existential:
      return "existential";
    case PropertyClass::Universal:
      return "universal";
    case PropertyClass::Unknown:
      return "unknown";
  }
  return "?";
}

std::string Guarantee::toString() const {
  std::ostringstream out;
  out << name << " (" << derivedBy << ", component " << component << "):\n";
  for (const ctl::Spec& s : lhs) {
    out << "    " << s.r.toString() << " : " << ctl::toString(s.f) << "\n";
  }
  out << "  guarantees\n";
  for (const ctl::Spec& s : rhs) {
    out << "    " << s.r.toString() << " : " << ctl::toString(s.f) << "\n";
  }
  return out.str();
}

}  // namespace cmc::comp
