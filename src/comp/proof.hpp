// Proof trees: a machine-checked record of a compositional verification.
//
// Every deduction the paper performs by hand in §4.2.3 / §4.3.4 becomes a
// node here: either a ModelCheck (discharged by one of the checkers on one
// component), a RuleApplication (Rules 1-5, Lemma 11, invariance), or a
// Conclusion justified by its children.  A proof is valid iff every node is
// ok; render() prints an indented certificate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cmc::comp {

struct ProofNode {
  enum class Kind {
    ModelCheck,       ///< a ⊨ check on a concrete component/system
    RuleApplication,  ///< one of the paper's rules or lemmas
    Classification,   ///< universal/existential classification of a spec
    Conclusion,       ///< derived fact about the composed system
    Note,             ///< informational
  };

  Kind kind = Kind::Note;
  std::string description;
  bool ok = true;
  std::vector<std::size_t> children;
};

class ProofTree {
 public:
  /// Add a node; children must already exist.
  std::size_t add(ProofNode::Kind kind, std::string description, bool ok,
                  std::vector<std::size_t> children = {});

  const ProofNode& node(std::size_t id) const { return nodes_.at(id); }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// True iff every node checked out.
  bool valid() const;

  /// Number of ModelCheck nodes (the per-component obligations — the
  /// quantity the paper argues grows linearly with the number of
  /// components).
  std::size_t modelCheckCount() const;

  /// Indented textual certificate (roots are nodes nobody references).
  std::string render() const;

  /// Graphviz DOT rendering of the proof DAG (conclusions point at their
  /// justifications; failed nodes drawn red).
  std::string toDot() const;

  /// Machine-readable JSON (array of {id, kind, ok, description, children}).
  std::string toJson() const;

 private:
  std::vector<ProofNode> nodes_;
};

}  // namespace cmc::comp
