// Executable validators for the paper's Lemmas 1-11 (§3.2).
//
// Each function checks the lemma's statement on concrete explicit systems
// (and random formulas where the lemma quantifies over formulas), returning
// a LemmaResult with a human-readable explanation.  They serve three
// purposes: property-based regression tests of the theory, a "theory tour"
// example, and a debugging aid when building new composition operators —
// if a lemma fails on your systems, your model violates one of the paper's
// standing assumptions (reflexivity, alphabet discipline).
#pragma once

#include <random>
#include <string>

#include "kripke/composition.hpp"
#include "kripke/explicit_checker.hpp"

namespace cmc::comp {

struct LemmaResult {
  bool holds = false;
  std::string lemma;
  std::string detail;  ///< failure explanation or summary
};

/// Lemma 1: ∘ is commutative and associative (up to state renaming).
LemmaResult checkLemma1(const kripke::ExplicitSystem& a,
                        const kripke::ExplicitSystem& b,
                        const kripke::ExplicitSystem& c);

/// Lemma 2: same-alphabet composition is relation union.
LemmaResult checkLemma2(const kripke::ExplicitSystem& a,
                        const kripke::ExplicitSystem& b);

/// Lemma 3: (Σ, I) is the identity element (requires `a` reflexive).
LemmaResult checkLemma3(const kripke::ExplicitSystem& a);

/// Lemma 4: M ∘ M' equals the composition of the mutual expansions.
LemmaResult checkLemma4(const kripke::ExplicitSystem& a,
                        const kripke::ExplicitSystem& b);

/// Lemma 5: expansion preserves C(Σ) properties; sampled over `samples`
/// random formulas drawn with `rng`.
LemmaResult checkLemma5(const kripke::ExplicitSystem& a,
                        const std::vector<std::string>& extraAtoms,
                        std::mt19937& rng, int samples = 8);

/// Lemma 6/7: structural characterizations of f ⇒ AXg / f ⇒ EXg, sampled.
LemmaResult checkLemma6(const kripke::ExplicitSystem& a, std::mt19937& rng,
                        int samples = 8);
LemmaResult checkLemma7(const kripke::ExplicitSystem& a, std::mt19937& rng,
                        int samples = 8);

/// Lemma 8/9: expansion transfer of AX/EX implications with frame
/// formulas, sampled.
LemmaResult checkLemma8(const kripke::ExplicitSystem& a,
                        const std::vector<std::string>& extraAtoms,
                        std::mt19937& rng, int samples = 6);
LemmaResult checkLemma9(const kripke::ExplicitSystem& a,
                        const std::vector<std::string>& extraAtoms,
                        std::mt19937& rng, int samples = 6);

/// Lemma 10: propositional projection between Σ ⊆ Σ' systems, sampled.
/// `b` must have an alphabet that contains `a`'s as a prefix.
LemmaResult checkLemma10(const kripke::ExplicitSystem& a,
                         const kripke::ExplicitSystem& b, std::mt19937& rng,
                         int samples = 8);

/// Lemma 11: fairness strengthening preserves f ⇒ AXg, sampled.
LemmaResult checkLemma11(const kripke::ExplicitSystem& a, std::mt19937& rng,
                         int samples = 6);

/// Run every lemma on randomly generated systems with the given seed;
/// returns one result per lemma (in order 1..11, lemmas sharing a checker
/// merged).  Used by the theory-tour example.
std::vector<LemmaResult> checkAllLemmas(unsigned seed);

}  // namespace cmc::comp
