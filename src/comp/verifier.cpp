#include "comp/verifier.hpp"

#include <algorithm>
#include <future>
#include <sstream>

#include "symbolic/prop.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cmc::comp {

void CompositionalVerifier::addComponent(symbolic::SymbolicSystem sys) {
  CMC_ASSERT(sys.ctx == &ctx_);
  components_.push_back(std::move(sys));
  expansions_.emplace_back();
  expansionBuilt_.push_back(false);
  composed_.reset();
}

std::vector<symbolic::VarId> CompositionalVerifier::unionVars() const {
  std::vector<symbolic::VarId> all;
  for (const symbolic::SymbolicSystem& sys : components_) {
    all.insert(all.end(), sys.vars.begin(), sys.vars.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

const symbolic::SymbolicSystem& CompositionalVerifier::composed() {
  if (!composed_.has_value()) {
    if (components_.empty()) {
      throw ModelError("no components registered");
    }
    composed_ = symbolic::composeAll(components_);
  }
  return *composed_;
}

const symbolic::SymbolicSystem& CompositionalVerifier::expansion(
    std::size_t i) {
  CMC_ASSERT(i < components_.size());
  if (!expansionBuilt_[i]) {
    std::vector<symbolic::VarId> extra;
    const std::vector<symbolic::VarId> all = unionVars();
    std::set_difference(all.begin(), all.end(), components_[i].vars.begin(),
                        components_[i].vars.end(), std::back_inserter(extra));
    expansions_[i] = symbolic::expand(components_[i], extra);
    expansions_[i].name = components_[i].name + " (expanded)";
    expansionBuilt_[i] = true;
  }
  return expansions_[i];
}

bool CompositionalVerifier::verify(const ctl::Spec& spec, ProofTree& proof,
                                   bool allowGlobalFallback) {
  if (components_.empty()) {
    throw ModelError("no components registered");
  }
  const PropertyClass cls = classify(spec);
  const std::size_t clsNode = proof.add(
      ProofNode::Kind::Classification,
      spec.name + " : " + ctl::toString(spec.f) + " is " + toString(cls),
      true);

  switch (cls) {
    case PropertyClass::Universal: {
      std::vector<std::size_t> checks{clsNode};
      bool all = true;
      for (std::size_t i = 0; i < components_.size(); ++i) {
        symbolic::Checker checker(expansion(i), checkerOpts_);
        const bool ok = checker.holds(spec.r, spec.f);
        checks.push_back(proof.add(
            ProofNode::Kind::ModelCheck,
            expansion(i).name + " |= " + ctl::toString(spec.f), ok));
        all = all && ok;
      }
      proof.add(ProofNode::Kind::Conclusion,
                "composition |= " + spec.name + " (universal, Rule 2)", all,
                std::move(checks));
      return all;
    }
    case PropertyClass::Existential: {
      // Find one component whose expansion satisfies the spec.
      for (std::size_t i = 0; i < components_.size(); ++i) {
        symbolic::Checker checker(expansion(i), checkerOpts_);
        if (checker.holds(spec.r, spec.f)) {
          const std::size_t check = proof.add(
              ProofNode::Kind::ModelCheck,
              expansion(i).name + " |= " + ctl::toString(spec.f), true);
          proof.add(
              ProofNode::Kind::Conclusion,
              "composition |= " + spec.name + " (existential, Rules 1/3)",
              true, {clsNode, check});
          return true;
        }
      }
      proof.add(ProofNode::Kind::Conclusion,
                "no component satisfies existential spec " + spec.name,
                false, {clsNode});
      return false;
    }
    case PropertyClass::Unknown: {
      if (!allowGlobalFallback) {
        proof.add(ProofNode::Kind::Conclusion,
                  spec.name + " is not compositional by Rules 1-3 and the "
                              "global fallback is disabled",
                  false, {clsNode});
        return false;
      }
      symbolic::Checker checker(composed(), checkerOpts_);
      const bool ok = checker.holds(spec.r, spec.f);
      const std::size_t check =
          proof.add(ProofNode::Kind::ModelCheck,
                    "composed system |= " + ctl::toString(spec.f) +
                        "  (direct, non-compositional)",
                    ok);
      proof.add(ProofNode::Kind::Conclusion,
                "composition |= " + spec.name + " (global check)", ok,
                {clsNode, check});
      return ok;
    }
  }
  throw Error("verify: unreachable");
}

bool CompositionalVerifier::discharge(const Guarantee& g, ProofTree& proof,
                                      std::vector<ctl::Spec>* conclusions,
                                      bool allowGlobalFallback) {
  std::vector<std::size_t> lhsNodes;
  bool all = true;
  for (const ctl::Spec& spec : g.lhs) {
    const bool ok = verify(spec, proof, allowGlobalFallback);
    all = all && ok;
    lhsNodes.push_back(proof.size() - 1);  // the Conclusion verify() added
  }
  proof.add(ProofNode::Kind::RuleApplication,
            "discharge left side of " + g.name + " (" + g.derivedBy + ")",
            all, std::move(lhsNodes));
  if (!all) return false;
  for (const ctl::Spec& spec : g.rhs) {
    proof.add(ProofNode::Kind::Conclusion,
              "composition |= " + spec.name + " under " + spec.r.toString() +
                  " : " + ctl::toString(spec.f),
              true, {proof.size() - 1});
    if (conclusions != nullptr) conclusions->push_back(spec);
  }
  return true;
}

bool CompositionalVerifier::verifyInvariance(const ctl::FormulaPtr& init,
                                             const ctl::FormulaPtr& inv,
                                             const ctl::FormulaPtr& target,
                                             ProofTree& proof,
                                             const std::string& name) {
  if (!ctl::isPropositional(init) || !ctl::isPropositional(inv) ||
      !ctl::isPropositional(target)) {
    throw ModelError("verifyInvariance requires propositional formulas");
  }
  const std::vector<symbolic::VarId> all = unionVars();

  const bool baseOk = propositionallyValid(ctx_, all, ctl::mkImplies(init, inv));
  const std::size_t baseNode =
      proof.add(ProofNode::Kind::RuleApplication,
                name + ": init => inv is propositionally valid", baseOk);

  const ctl::Spec step{
      name + ".step",
      ctl::Restriction{ctl::mkTrue(), {ctl::mkTrue()}},
      ctl::mkImplies(inv, ctl::AX(inv))};
  const bool stepOk = verify(step, proof, /*allowGlobalFallback=*/false);
  const std::size_t stepNode = proof.size() - 1;

  const bool implOk =
      propositionallyValid(ctx_, all, ctl::mkImplies(inv, target));
  const std::size_t implNode =
      proof.add(ProofNode::Kind::RuleApplication,
                name + ": inv => target is propositionally valid", implOk);

  const bool ok = baseOk && stepOk && implOk;
  proof.add(ProofNode::Kind::Conclusion,
            "composition |=_(init,{true}) AG " + ctl::toString(target) +
                "  [" + name + ", invariance]",
            ok, {baseNode, stepNode, implNode});
  return ok;
}

// ---- Parallel obligation runner --------------------------------------------

std::string ParallelReport::summary() const {
  std::ostringstream out;
  out << (allOk ? "ALL OK" : "FAILURES") << " (" << results.size()
      << " obligations, " << wallSeconds << " s wall)\n";
  for (const ObligationResult& r : results) {
    out << "  " << (r.ok ? "ok  " : "FAIL") << ' ' << r.name << " ("
        << r.seconds << " s)";
    if (!r.error.empty()) out << "  error: " << r.error;
    out << '\n';
  }
  return out.str();
}

ParallelReport runObligations(std::vector<Obligation> obligations,
                              unsigned threads) {
  ThreadPool pool(threads);
  WallTimer wall;

  std::vector<std::future<ObligationResult>> futures;
  futures.reserve(obligations.size());
  for (Obligation& ob : obligations) {
    futures.push_back(pool.submit([ob = std::move(ob)]() {
      ObligationResult result;
      result.name = ob.name;
      WallTimer timer;
      try {
        result.ok = ob.run();
      } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
      }
      result.seconds = timer.seconds();
      return result;
    }));
  }

  ParallelReport report;
  report.allOk = true;
  for (std::future<ObligationResult>& f : futures) {
    report.results.push_back(f.get());
    report.allOk = report.allOk && report.results.back().ok;
  }
  report.wallSeconds = wall.seconds();
  return report;
}

}  // namespace cmc::comp
