#include "comp/rules.hpp"

namespace cmc::comp {

using ctl::FormulaPtr;

ctl::Restriction progressRestriction(const FormulaPtr& p,
                                     const FormulaPtr& q) {
  ctl::Restriction r;
  r.init = ctl::mkTrue();
  r.fairness = {ctl::mkOr(ctl::mkNot(p), q)};
  return r;
}

std::optional<Guarantee> deriveRule4(symbolic::Checker& m,
                                     const FormulaPtr& p, const FormulaPtr& q,
                                     ProofTree& proof, std::string name) {
  if (!ctl::isPropositional(p) || !ctl::isPropositional(q)) {
    throw ModelError("Rule 4 requires propositional p and q");
  }
  const FormulaPtr premise = ctl::mkImplies(p, ctl::EX(q));
  const bool premiseOk =
      m.holds(ctl::Restriction{ctl::mkTrue(), {ctl::mkTrue()}}, premise);
  const std::size_t premiseNode = proof.add(
      ProofNode::Kind::ModelCheck,
      m.system().name + " |= " + ctl::toString(premise), premiseOk);
  if (!premiseOk) return std::nullopt;

  const ctl::Restriction r = progressRestriction(p, q);
  Guarantee g;
  g.name = name.empty() ? "Rule4(" + ctl::toString(p) + ")" : std::move(name);
  g.component = m.system().name;
  g.derivedBy = "Rule 4";
  g.lhs.push_back(ctl::Spec{
      g.name + ".lhs",
      ctl::Restriction{ctl::mkTrue(), {ctl::mkTrue()}},
      ctl::mkImplies(p, ctl::AX(ctl::mkOr(p, q)))});
  g.rhs.push_back(
      ctl::Spec{g.name + ".AU", r, ctl::mkImplies(p, ctl::AU(p, q))});
  g.rhs.push_back(
      ctl::Spec{g.name + ".EU", r, ctl::mkImplies(p, ctl::EU(p, q))});

  proof.add(ProofNode::Kind::RuleApplication,
            "Rule 4 on " + m.system().name + ": " + g.toString(), true,
            {premiseNode});
  return g;
}

std::optional<Guarantee> deriveRule5(symbolic::Checker& m,
                                     const std::vector<FormulaPtr>& ps,
                                     std::size_t helpful, const FormulaPtr& q,
                                     ProofTree& proof, std::string name) {
  if (ps.empty() || helpful >= ps.size()) {
    throw ModelError("Rule 5 needs a non-empty disjunct list and a valid "
                     "helpful index");
  }
  for (const FormulaPtr& pi : ps) {
    if (!ctl::isPropositional(pi)) {
      throw ModelError("Rule 5 requires propositional disjuncts");
    }
  }
  if (!ctl::isPropositional(q)) {
    throw ModelError("Rule 5 requires a propositional q");
  }
  const FormulaPtr p = ctl::disj(ps);
  const FormulaPtr pi = ps[helpful];

  const FormulaPtr premise = ctl::mkImplies(pi, ctl::EX(q));
  const bool premiseOk =
      m.holds(ctl::Restriction{ctl::mkTrue(), {ctl::mkTrue()}}, premise);
  const std::size_t premiseNode = proof.add(
      ProofNode::Kind::ModelCheck,
      m.system().name + " |= " + ctl::toString(premise), premiseOk);
  if (!premiseOk) return std::nullopt;

  const ctl::Restriction r = progressRestriction(p, q);
  Guarantee g;
  g.name = name.empty() ? "Rule5(" + ctl::toString(p) + ")" : std::move(name);
  g.component = m.system().name;
  g.derivedBy = "Rule 5";
  const ctl::Restriction trivial{ctl::mkTrue(), {ctl::mkTrue()}};
  g.lhs.push_back(ctl::Spec{g.name + ".lhs.ax", trivial,
                            ctl::mkImplies(p, ctl::AX(ctl::mkOr(p, q)))});
  for (std::size_t j = 0; j < ps.size(); ++j) {
    g.lhs.push_back(ctl::Spec{
        g.name + ".lhs.ef" + std::to_string(j), trivial,
        ctl::mkImplies(ps[j], ctl::EF(pi))});
  }
  g.rhs.push_back(
      ctl::Spec{g.name + ".AU", r, ctl::mkImplies(p, ctl::AU(p, q))});
  g.rhs.push_back(
      ctl::Spec{g.name + ".EU", r, ctl::mkImplies(p, ctl::EU(p, q))});

  proof.add(ProofNode::Kind::RuleApplication,
            "Rule 5 on " + m.system().name + " (helpful disjunct " +
                ctl::toString(pi) + "): " + g.toString(),
            true, {premiseNode});
  return g;
}

}  // namespace cmc::comp
