// Syntactic classification of CTL specs as universal / existential
// compositional properties, per the paper's Rules 1-3:
//
//   Rule 1: a propositional f under r = (I, {true}) is existential.
//   Rule 2: p ⇒ AX q (p, q propositional) is universal (restriction-free;
//           Lemma 11 lets fairness be added after composition).
//   Rule 3: p ⇒ EX q is existential.
//
// Conjunctions classify as the strongest class all conjuncts admit
// (existential ∧ existential = existential; anything ∧ universal = universal
// provided each conjunct is at least universal).  The classifier is
// deliberately conservative: "Unknown" means no rule applies, not that the
// property is non-compositional.
#pragma once

#include "comp/property.hpp"
#include "ctl/formula.hpp"

namespace cmc::comp {

/// Classify `spec` (formula + restriction index).
PropertyClass classify(const ctl::Spec& spec);
PropertyClass classify(const ctl::Restriction& r, const ctl::FormulaPtr& f);

/// Shape matcher: f ≡ p ⇒ AX q with propositional p, q.
bool matchImpliesAX(const ctl::FormulaPtr& f, ctl::FormulaPtr* p,
                    ctl::FormulaPtr* q);
/// Shape matcher: f ≡ p ⇒ EX q with propositional p, q.
bool matchImpliesEX(const ctl::FormulaPtr& f, ctl::FormulaPtr* p,
                    ctl::FormulaPtr* q);

/// Split a conjunction into its top-level conjuncts.
std::vector<ctl::FormulaPtr> conjuncts(const ctl::FormulaPtr& f);

}  // namespace cmc::comp
