#include "comp/leadsto.hpp"

#include <algorithm>

#include "symbolic/prop.hpp"

namespace cmc::comp {

using ctl::FormulaPtr;

bool LeadsToLedger::checkValid(const FormulaPtr& f, const std::string& what) {
  const bool ok = symbolic::propositionallyValid(ctx_, vars_, f);
  proof_.add(ProofNode::Kind::RuleApplication,
             "side condition (" + what + "): " + ctl::toString(f), ok);
  valid_ = valid_ && ok;
  return ok;
}

LeadsToLedger::FactId LeadsToLedger::addFact(Fact fact) {
  facts_.push_back(std::move(fact));
  return facts_.size() - 1;
}

std::vector<FormulaPtr> LeadsToLedger::mergeFairness(
    const std::vector<FormulaPtr>& a, const std::vector<FormulaPtr>& b) {
  std::vector<FormulaPtr> out = a;
  for (const FormulaPtr& f : b) {
    const bool dup = std::any_of(out.begin(), out.end(), [&](const FormulaPtr& g) {
      return ctl::equal(f, g);
    });
    if (!dup) out.push_back(f);
  }
  return out;
}

LeadsToLedger::FactId LeadsToLedger::fromAU(const ctl::Spec& spec) {
  // Expect f = p -> A[p' U q] with p == p'.
  const FormulaPtr& f = spec.f;
  if (f->op() != ctl::Op::Implies || f->rhs()->op() != ctl::Op::AU ||
      !ctl::equal(f->lhs(), f->rhs()->lhs())) {
    throw ModelError("fromAU: spec is not of the shape p => A[p U q]: " +
                     ctl::toString(f));
  }
  Fact fact;
  fact.from = f->lhs();
  fact.to = f->rhs()->rhs();
  fact.fairness = spec.r.fairness;
  fact.node = proof_.add(
      ProofNode::Kind::RuleApplication,
      "leads-to from " + spec.name + ": " + ctl::toString(fact.from) +
          " ~> " + ctl::toString(fact.to),
      true);
  return addFact(std::move(fact));
}

LeadsToLedger::FactId LeadsToLedger::reflexivity(FormulaPtr p) {
  Fact fact;
  fact.from = p;
  fact.to = p;
  fact.node = proof_.add(ProofNode::Kind::RuleApplication,
                         "leads-to reflexivity: " + ctl::toString(p) +
                             " ~> " + ctl::toString(p),
                         true);
  return addFact(std::move(fact));
}

LeadsToLedger::FactId LeadsToLedger::strengthen(FactId id,
                                                FormulaPtr newFrom) {
  const Fact& base = facts_.at(id);
  const bool ok = checkValid(ctl::mkImplies(newFrom, base.from),
                             "strengthen lhs");
  Fact fact;
  fact.from = std::move(newFrom);
  fact.to = base.to;
  fact.fairness = base.fairness;
  fact.node = proof_.add(ProofNode::Kind::RuleApplication,
                         "leads-to strengthen: " + ctl::toString(fact.from) +
                             " ~> " + ctl::toString(fact.to),
                         ok, {base.node});
  return addFact(std::move(fact));
}

LeadsToLedger::FactId LeadsToLedger::weakenRhs(FactId id, FormulaPtr newTo) {
  const Fact& base = facts_.at(id);
  const bool ok =
      checkValid(ctl::mkImplies(base.to, newTo), "weaken rhs");
  Fact fact;
  fact.from = base.from;
  fact.to = std::move(newTo);
  fact.fairness = base.fairness;
  fact.node = proof_.add(ProofNode::Kind::RuleApplication,
                         "leads-to weaken: " + ctl::toString(fact.from) +
                             " ~> " + ctl::toString(fact.to),
                         ok, {base.node});
  return addFact(std::move(fact));
}

LeadsToLedger::FactId LeadsToLedger::chain(FactId a, FactId b) {
  const Fact& fa = facts_.at(a);
  const Fact& fb = facts_.at(b);
  const bool ok =
      checkValid(ctl::mkImplies(fa.to, fb.from), "chain link");
  Fact fact;
  fact.from = fa.from;
  fact.to = fb.to;
  fact.fairness = mergeFairness(fa.fairness, fb.fairness);
  fact.node = proof_.add(ProofNode::Kind::RuleApplication,
                         "leads-to chain: " + ctl::toString(fact.from) +
                             " ~> " + ctl::toString(fact.to),
                         ok, {fa.node, fb.node});
  return addFact(std::move(fact));
}

LeadsToLedger::FactId LeadsToLedger::caseSplit(
    FormulaPtr p, FormulaPtr target, const std::vector<FactId>& ids) {
  CMC_ASSERT(!ids.empty());
  std::vector<FormulaPtr> froms;
  std::vector<std::size_t> nodes;
  std::vector<FormulaPtr> fairnessUnion;
  bool ok = true;
  for (FactId id : ids) {
    const Fact& f = facts_.at(id);
    froms.push_back(f.from);
    nodes.push_back(f.node);
    fairnessUnion = mergeFairness(fairnessUnion, f.fairness);
    ok = checkValid(ctl::mkImplies(f.to, target), "case target") && ok;
  }
  ok = checkValid(ctl::mkImplies(p, ctl::disj(froms)), "case coverage") && ok;
  Fact fact;
  fact.from = std::move(p);
  fact.to = std::move(target);
  fact.fairness = std::move(fairnessUnion);
  fact.node = proof_.add(ProofNode::Kind::RuleApplication,
                         "leads-to case split: " + ctl::toString(fact.from) +
                             " ~> " + ctl::toString(fact.to),
                         ok, std::move(nodes));
  return addFact(std::move(fact));
}

ctl::Spec LeadsToLedger::concludeAF(FactId id, FormulaPtr init,
                                    std::string name) {
  const bool ok = checkValid(ctl::mkImplies(init, facts_.at(id).from),
                             "init covered by leads-to lhs");
  const Fact& fact = facts_.at(id);
  proof_.add(ProofNode::Kind::Conclusion,
             "composition |=_(" + ctl::toString(init) + ", F) AF " +
                 ctl::toString(fact.to) + "  [" + name + "]",
             ok, {fact.node});
  ctl::Restriction r;
  r.init = std::move(init);
  r.fairness = fact.fairness.empty()
                   ? std::vector<FormulaPtr>{ctl::mkTrue()}
                   : fact.fairness;
  return ctl::Spec{std::move(name), std::move(r), ctl::AF(fact.to)};
}

ctl::Spec LeadsToLedger::factSpec(FactId id, std::string name) const {
  const Fact& fact = facts_.at(id);
  ctl::Restriction r;
  r.init = ctl::mkTrue();
  r.fairness = fact.fairness.empty()
                   ? std::vector<FormulaPtr>{ctl::mkTrue()}
                   : fact.fairness;
  return ctl::Spec{std::move(name), std::move(r),
                   ctl::mkImplies(fact.from, ctl::AF(fact.to))};
}

}  // namespace cmc::comp
