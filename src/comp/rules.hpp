// Executable versions of the paper's proof rules.  Each rule checks its
// premise by model checking the component and, on success, returns the
// derived fact (recording everything in a ProofTree).
//
// Rule 4 (weak fairness): if M ⊨ p ⇒ EX q then M satisfies
//     (p ⇒ AX(p ∨ q))  guarantees_r  ((p ⇒ A(p U q)) ∧ (p ⇒ E(p U q)))
// with r = (true, {¬p ∨ q}).
//
// Rule 5 (strong fairness): with p = p₁ ∨ … ∨ pₙ and M ⊨ pᵢ ⇒ EX q for the
// helpful disjunct pᵢ, M satisfies
//     (p ⇒ AX(p ∨ q)) ∧ (⋀ⱼ pⱼ ⇒ EF pᵢ)  guarantees_r  (…same rhs…).
#pragma once

#include <optional>

#include "comp/proof.hpp"
#include "comp/property.hpp"
#include "symbolic/checker.hpp"

namespace cmc::comp {

/// Derive Rule 4 for component `m`.  Returns nullopt (and a failed proof
/// node) when the premise M ⊨ p ⇒ EX q does not hold.
std::optional<Guarantee> deriveRule4(symbolic::Checker& m,
                                     const ctl::FormulaPtr& p,
                                     const ctl::FormulaPtr& q,
                                     ProofTree& proof, std::string name = {});

/// Derive Rule 5 for component `m`.  `ps` are the disjuncts p₁..pₙ and
/// `helpful` the index i with M ⊨ pᵢ ⇒ EX q.
std::optional<Guarantee> deriveRule5(symbolic::Checker& m,
                                     const std::vector<ctl::FormulaPtr>& ps,
                                     std::size_t helpful,
                                     const ctl::FormulaPtr& q,
                                     ProofTree& proof, std::string name = {});

/// The restriction r = (true, {¬p ∨ q}) both rules conclude under.
ctl::Restriction progressRestriction(const ctl::FormulaPtr& p,
                                     const ctl::FormulaPtr& q);

}  // namespace cmc::comp
