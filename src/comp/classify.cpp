#include "comp/classify.hpp"

namespace cmc::comp {

using ctl::FormulaPtr;
using ctl::Op;

std::vector<FormulaPtr> conjuncts(const FormulaPtr& f) {
  std::vector<FormulaPtr> out;
  std::vector<FormulaPtr> stack{f};
  while (!stack.empty()) {
    FormulaPtr cur = stack.back();
    stack.pop_back();
    if (cur->op() == Op::And) {
      stack.push_back(cur->rhs());
      stack.push_back(cur->lhs());
    } else {
      out.push_back(cur);
    }
  }
  return out;
}

bool matchImpliesAX(const FormulaPtr& f, FormulaPtr* p, FormulaPtr* q) {
  if (f->op() != Op::Implies) return false;
  const FormulaPtr& rhs = f->rhs();
  if (rhs->op() != Op::AX) return false;
  if (!ctl::isPropositional(f->lhs()) || !ctl::isPropositional(rhs->lhs())) {
    return false;
  }
  if (p != nullptr) *p = f->lhs();
  if (q != nullptr) *q = rhs->lhs();
  return true;
}

bool matchImpliesEX(const FormulaPtr& f, FormulaPtr* p, FormulaPtr* q) {
  if (f->op() != Op::Implies) return false;
  const FormulaPtr& rhs = f->rhs();
  if (rhs->op() != Op::EX) return false;
  if (!ctl::isPropositional(f->lhs()) || !ctl::isPropositional(rhs->lhs())) {
    return false;
  }
  if (p != nullptr) *p = f->lhs();
  if (q != nullptr) *q = rhs->lhs();
  return true;
}

namespace {

/// Fairness is trivial when every constraint is TRUE.
bool trivialFairness(const ctl::Restriction& r) {
  for (const FormulaPtr& f : r.fairness) {
    if (f->op() != Op::True) return false;
  }
  return true;
}

bool trivialInit(const ctl::Restriction& r) {
  return r.init == nullptr || r.init->op() == Op::True;
}

PropertyClass classifyOne(const ctl::Restriction& r, const FormulaPtr& f) {
  // Rule 1: propositional under (I, {true}).
  if (ctl::isPropositional(f) && trivialFairness(r)) {
    return PropertyClass::Existential;
  }
  // Rules 2/3 are proven for the unrestricted ⊨; we additionally require a
  // trivial restriction on the spec itself (fairness is introduced on the
  // composed system afterwards via Lemma 11).
  if (!trivialInit(r) || !trivialFairness(r)) {
    return PropertyClass::Unknown;
  }
  if (matchImpliesAX(f, nullptr, nullptr)) {
    return PropertyClass::Universal;
  }
  if (matchImpliesEX(f, nullptr, nullptr)) {
    return PropertyClass::Existential;
  }
  return PropertyClass::Unknown;
}

}  // namespace

PropertyClass classify(const ctl::Restriction& r, const FormulaPtr& f) {
  PropertyClass result = PropertyClass::Existential;
  for (const FormulaPtr& part : conjuncts(f)) {
    switch (classifyOne(r, part)) {
      case PropertyClass::Existential:
        break;  // keeps the current class
      case PropertyClass::Universal:
        if (result == PropertyClass::Existential) {
          result = PropertyClass::Universal;
        }
        break;
      case PropertyClass::Unknown:
        return PropertyClass::Unknown;
    }
  }
  return result;
}

PropertyClass classify(const ctl::Spec& spec) {
  return classify(spec.r, spec.f);
}

}  // namespace cmc::comp
