#include "comp/proof.hpp"

#include <algorithm>
#include <sstream>

#include "util/common.hpp"

namespace cmc::comp {

std::size_t ProofTree::add(ProofNode::Kind kind, std::string description,
                           bool ok, std::vector<std::size_t> children) {
  for (std::size_t child : children) {
    CMC_ASSERT(child < nodes_.size());
  }
  nodes_.push_back(
      ProofNode{kind, std::move(description), ok, std::move(children)});
  return nodes_.size() - 1;
}

bool ProofTree::valid() const {
  return std::all_of(nodes_.begin(), nodes_.end(),
                     [](const ProofNode& n) { return n.ok; });
}

std::size_t ProofTree::modelCheckCount() const {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(), [](const ProofNode& n) {
        return n.kind == ProofNode::Kind::ModelCheck;
      }));
}

namespace {

const char* kindTag(ProofNode::Kind kind) {
  switch (kind) {
    case ProofNode::Kind::ModelCheck:
      return "[check]";
    case ProofNode::Kind::RuleApplication:
      return "[rule] ";
    case ProofNode::Kind::Classification:
      return "[class]";
    case ProofNode::Kind::Conclusion:
      return "[concl]";
    case ProofNode::Kind::Note:
      return "[note] ";
  }
  return "[?]    ";
}

}  // namespace

std::string ProofTree::render() const {
  // Roots: nodes that no other node references.
  std::vector<bool> referenced(nodes_.size(), false);
  for (const ProofNode& n : nodes_) {
    for (std::size_t child : n.children) referenced[child] = true;
  }
  std::ostringstream out;
  auto renderNode = [&](auto&& self, std::size_t id, int depth) -> void {
    const ProofNode& n = nodes_[id];
    for (int i = 0; i < depth; ++i) out << "  ";
    out << kindTag(n.kind) << ' ' << (n.ok ? "ok  " : "FAIL") << ' '
        << n.description << '\n';
    for (std::size_t child : n.children) self(self, child, depth + 1);
  };
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (!referenced[id]) renderNode(renderNode, id, 0);
  }
  return out.str();
}

namespace {

std::string escape(const std::string& text, bool forJson) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += forJson ? "\\n" : "\\l";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const char* kindName(ProofNode::Kind kind) {
  switch (kind) {
    case ProofNode::Kind::ModelCheck: return "model-check";
    case ProofNode::Kind::RuleApplication: return "rule";
    case ProofNode::Kind::Classification: return "classification";
    case ProofNode::Kind::Conclusion: return "conclusion";
    case ProofNode::Kind::Note: return "note";
  }
  return "?";
}

}  // namespace

std::string ProofTree::toDot() const {
  std::ostringstream out;
  out << "digraph proof {\n";
  out << "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const ProofNode& n = nodes_[id];
    std::string label = n.description;
    if (label.size() > 70) label = label.substr(0, 67) + "...";
    out << "  n" << id << " [label=\"" << kindName(n.kind) << ": "
        << escape(label, /*forJson=*/false) << "\""
        << (n.ok ? "" : ", color=red, fontcolor=red") << "];\n";
    for (std::size_t child : n.children) {
      out << "  n" << child << " -> n" << id << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string ProofTree::toJson() const {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const ProofNode& n = nodes_[id];
    out << "  {\"id\": " << id << ", \"kind\": \"" << kindName(n.kind)
        << "\", \"ok\": " << (n.ok ? "true" : "false")
        << ", \"description\": \"" << escape(n.description, true)
        << "\", \"children\": [";
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i != 0) out << ", ";
      out << n.children[i];
    }
    out << "]}" << (id + 1 < nodes_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.str();
}

}  // namespace cmc::comp
