// Leads-to ledger: the algebra the paper uses informally in §4.2.3 / §5 to
// assemble "leads to" liveness properties (p ⇒ AF q) from the A(p U q)
// conclusions of Rules 4/5:
//
//   "Our theory provides the tools for proving properties of this type by
//    identifying a series of predicates p₀, p₁, …, pₙ such that p = p₀ and
//    pₙ = q and then proving a series of basic liveness properties
//    pᵢ ⇒ A(pᵢ U pᵢ₊₁)."
//
// Each fact is  ⊨_(true,F) (from ⇒ AF to)  for the composed system.  The
// inference steps are the standard leads-to laws, each machine-validated:
//
//   fromAU        p ⇒ A(p U q) under F        ⊢ p ⤳_F q
//   reflexivity                                ⊢ p ⤳_∅ p
//   strengthen    p' ⇒ p valid, p ⤳_F q        ⊢ p' ⤳_F q
//   weakenRhs     q ⇒ q' valid, p ⤳_F q        ⊢ p ⤳_F q'
//   chain         p ⤳_F q, q ⤳_G t             ⊢ p ⤳_{F∪G} t
//   caseSplit     p ⇒ ∨ᵢ pᵢ valid, pᵢ ⤳_Fᵢ t   ⊢ p ⤳_{∪Fᵢ} t
//
// (Fairness weakening F ⊆ F' is sound for A-quantified properties: more
// constraints mean fewer fair paths.)  Propositional side conditions are
// discharged with BDD validity checks over the variable domains; every step
// is recorded in the proof tree.
#pragma once

#include "comp/proof.hpp"
#include "ctl/formula.hpp"
#include "symbolic/var_table.hpp"

namespace cmc::comp {

class LeadsToLedger {
 public:
  using FactId = std::size_t;

  LeadsToLedger(symbolic::Context& ctx, std::vector<symbolic::VarId> vars,
                ProofTree& proof)
      : ctx_(ctx), vars_(std::move(vars)), proof_(proof) {}

  /// Enter a fact from a discharged A-until spec: f must have the shape
  /// p ⇒ A[p U q]; the fairness of `spec.r` is attached to the fact.
  FactId fromAU(const ctl::Spec& spec);

  /// p ⤳ p with no fairness assumptions.
  FactId reflexivity(ctl::FormulaPtr p);

  /// Strengthen the left side: requires newFrom ⇒ from(fact).
  FactId strengthen(FactId fact, ctl::FormulaPtr newFrom);

  /// Weaken the right side: requires to(fact) ⇒ newTo.
  FactId weakenRhs(FactId fact, ctl::FormulaPtr newTo);

  /// Transitivity: requires to(a) ⇒ from(b); fairness unions.
  FactId chain(FactId a, FactId b);

  /// Case analysis: requires p ⇒ ∨ from(factᵢ) and every to(factᵢ) ⇒ target.
  FactId caseSplit(ctl::FormulaPtr p, ctl::FormulaPtr target,
                   const std::vector<FactId>& facts);

  /// The concluded spec  (init, fairness) : AF to(fact); checks the side
  /// condition init ⇒ from(fact).  This is the shape of the paper's (Afs2).
  ctl::Spec concludeAF(FactId fact, ctl::FormulaPtr init, std::string name);

  /// The fact as a spec  (true, fairness) : from ⇒ AF to.
  ctl::Spec factSpec(FactId fact, std::string name) const;

  const ctl::FormulaPtr& from(FactId fact) const {
    return facts_.at(fact).from;
  }
  const ctl::FormulaPtr& to(FactId fact) const { return facts_.at(fact).to; }
  const std::vector<ctl::FormulaPtr>& fairness(FactId fact) const {
    return facts_.at(fact).fairness;
  }

  /// True iff every side condition so far checked out.
  bool valid() const noexcept { return valid_; }

 private:
  struct Fact {
    ctl::FormulaPtr from;
    ctl::FormulaPtr to;
    std::vector<ctl::FormulaPtr> fairness;
    std::size_t node;  ///< proof node
  };

  bool checkValid(const ctl::FormulaPtr& f, const std::string& what);
  FactId addFact(Fact fact);
  static std::vector<ctl::FormulaPtr> mergeFairness(
      const std::vector<ctl::FormulaPtr>& a,
      const std::vector<ctl::FormulaPtr>& b);

  symbolic::Context& ctx_;
  std::vector<symbolic::VarId> vars_;
  ProofTree& proof_;
  std::vector<Fact> facts_;
  bool valid_ = true;
};

}  // namespace cmc::comp
