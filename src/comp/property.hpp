// Compositional property classes (paper §3.3).
//
//  - Existential: M ⊨_r f implies M∘M' ⊨_r f for every M'.
//  - Universal:   M ⊨_r f and M' ⊨_r f imply M∘M' ⊨_r f.
//    (Every existential property is trivially universal: one satisfying
//    component already suffices.)
//  - Guarantees:  "f guarantees_r' g" holds of component M iff for every M',
//    M∘M' ⊨_r f ⟹ M∘M' ⊨_r' g.  Note the f is a property of the *composed*
//    system, not of the environment — this is what distinguishes the
//    construction from classical rely/guarantee.  Guarantees properties are
//    themselves existential, so they are inherited by any containing system.
#pragma once

#include <string>
#include <vector>

#include "ctl/formula.hpp"

namespace cmc::comp {

enum class PropertyClass {
  Existential,
  Universal,
  Unknown,
};

std::string toString(PropertyClass c);

/// A guarantees property of a component: once derived (Rules 4/5), its left
/// side is discharged on the composed system — obligation by obligation,
/// using the classes above so every check stays per-component — and the
/// right side follows for the whole system.
struct Guarantee {
  std::string name;
  /// The component this guarantee belongs to (informational).
  std::string component;
  /// Left side: properties of the composed system to discharge.
  std::vector<ctl::Spec> lhs;
  /// Right side: what the composed system then satisfies.
  std::vector<ctl::Spec> rhs;
  /// Which rule produced it ("Rule 4", "Rule 5", manual).
  std::string derivedBy;

  std::string toString() const;
};

}  // namespace cmc::comp
