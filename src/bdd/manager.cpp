#include "bdd/manager.hpp"

#include <algorithm>

#include "util/failpoint.hpp"
#include "util/hash.hpp"

namespace cmc::bdd {

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* mgr, NodeIndex idx) noexcept : mgr_(mgr), idx_(idx) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
  other.mgr_ = nullptr;
  other.idx_ = kNilNode;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->incRef(other.idx_);
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = other.mgr_;
  idx_ = other.idx_;
  other.mgr_ = nullptr;
  other.idx_ = kNilNode;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->decRef(idx_);
}

// ---------------------------------------------------------------------------
// Manager construction
// ---------------------------------------------------------------------------

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Manager::Manager(std::size_t initialCapacity, std::size_t cacheSize) {
  nodes_.reserve(std::max<std::size_t>(initialCapacity, 64));
  // Terminals.  Their `refs` stay pinned at 1 so GC never reclaims them.
  nodes_.push_back(Node{kTerminalLevel, kFalseNode, kFalseNode, kNilNode, 1});
  nodes_.push_back(Node{kTerminalLevel, kTrueNode, kTrueNode, kNilNode, 1});
  stats_.liveNodes = 2;
  stats_.peakNodes = 2;

  uniqueBuckets_.assign(roundUpPow2(std::max<std::size_t>(initialCapacity, 64)),
                        kNilNode);
  cache_.assign(roundUpPow2(std::max<std::size_t>(cacheSize, 1024)),
                CacheEntry{});
  gcThreshold_ = std::max<std::uint64_t>(initialCapacity, 4096);
}

std::uint32_t Manager::newVar() {
  const std::uint32_t var = numVars_++;
  varToLevel_.push_back(var);  // new variables start at the bottom level
  levelToVar_.push_back(var);
  return var;
}

std::uint32_t Manager::ensureVars(std::uint32_t n) {
  while (numVars_ < n) newVar();
  return numVars_;
}

Bdd Manager::bddVar(std::uint32_t var) {
  ensureVars(var + 1);
  return Bdd(this, mk(var, kFalseNode, kTrueNode));
}

Bdd Manager::bddNVar(std::uint32_t var) {
  ensureVars(var + 1);
  return Bdd(this, mk(var, kTrueNode, kFalseNode));
}

Bdd Manager::cube(const std::vector<std::uint32_t>& vars) {
  std::vector<std::uint32_t> sorted = vars;
  for (std::uint32_t v : sorted) ensureVars(v + 1);
  // Build bottom-up (deepest level first) so every mk() call is canonical.
  std::sort(sorted.begin(), sorted.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return varToLevel_[a] > varToLevel_[b];
            });
  NodeIndex acc = kTrueNode;
  for (std::uint32_t v : sorted) {
    acc = mk(v, kFalseNode, acc);
  }
  return Bdd(this, acc);
}

// ---------------------------------------------------------------------------
// Reference counting
// ---------------------------------------------------------------------------

void Manager::incRef(NodeIndex i) noexcept { ++nodes_[i].refs; }

void Manager::decRef(NodeIndex i) noexcept {
  CMC_ASSERT(nodes_[i].refs > 0);
  --nodes_[i].refs;
}

// ---------------------------------------------------------------------------
// Unique table and node allocation
// ---------------------------------------------------------------------------

NodeIndex Manager::mk(std::uint32_t var, NodeIndex low, NodeIndex high) {
  if (low == high) return low;  // reduction rule
  ++stats_.uniqueLookups;
  const std::size_t mask = uniqueBuckets_.size() - 1;
  std::size_t bucket = hash3(var, low, high) & mask;
  for (NodeIndex i = uniqueBuckets_[bucket]; i != kNilNode;
       i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.var == var && n.low == low && n.high == high) return i;
  }
  NodeIndex i = allocateNode();
  // allocateNode may have grown/rehashed the table; recompute the bucket.
  bucket = hash3(var, low, high) & (uniqueBuckets_.size() - 1);
  Node& n = nodes_[i];
  n.var = var;
  n.low = low;
  n.high = high;
  n.refs = 0;
  n.next = uniqueBuckets_[bucket];
  uniqueBuckets_[bucket] = i;
  return i;
}

NodeIndex Manager::allocateNode() {
  // NOTE: no GC here.  A collection is only safe between operations (nodes
  // created mid-recursion carry no external references yet); maybeGc() is
  // called from the top-level entry points in ops.cpp.
  // The failpoint fires before any state changes, so an injected
  // allocation failure leaves the manager fully consistent (the exception
  // unwinds through the ops recursion like a real allocation error would).
  CMC_FAILPOINT("bdd.alloc_node");
  ++stats_.nodesAllocatedTotal;
  if (freeList_ != kNilNode) {
    NodeIndex i = freeList_;
    freeList_ = nodes_[i].next;
    --freeCount_;
    ++stats_.liveNodes;
    stats_.peakNodes = std::max(stats_.peakNodes, stats_.liveNodes);
    return i;
  }
  NodeIndex i = static_cast<NodeIndex>(nodes_.size());
  CMC_ASSERT(i != kNilNode);
  nodes_.push_back(Node{});
  ++stats_.liveNodes;
  stats_.peakNodes = std::max(stats_.peakNodes, stats_.liveNodes);
  if (nodes_.size() > uniqueBuckets_.size()) {
    rehashUniqueTable(uniqueBuckets_.size() * 2);
  }
  return i;
}

void Manager::rehashUniqueTable(std::size_t buckets) {
  uniqueBuckets_.assign(buckets, kNilNode);
  const std::size_t mask = buckets - 1;
  // Re-chain every live internal node.  Free-list nodes carry the poisoned
  // label var == kTerminalLevel (with index >= 2), so the label test alone
  // skips them — and because only live nodes are re-chained, the free-list
  // links (which share `next`) survive the rebuild untouched.
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kTerminalLevel) continue;
    const std::size_t bucket = hash3(n.var, n.low, n.high) & mask;
    n.next = uniqueBuckets_[bucket];
    uniqueBuckets_[bucket] = i;
  }
}

// ---------------------------------------------------------------------------
// Garbage collection: mark from externally referenced nodes, sweep the rest.
// ---------------------------------------------------------------------------

void Manager::maybeGc() {
  if (stats_.liveNodes < gcThreshold_) return;
  const std::uint64_t before = stats_.liveNodes;
  collectGarbage();
  // If the collection was unproductive, raise the threshold so we do not
  // thrash: the classic 25% rule.
  if (stats_.liveNodes > before - before / 4) {
    gcThreshold_ *= 2;
  }
}

void Manager::collectGarbage() {
  ++stats_.gcRuns;
  marks_.assign(nodes_.size(), false);
  marks_[kFalseNode] = true;
  marks_[kTrueNode] = true;

  std::vector<NodeIndex> stack;
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].refs > 0 && !marks_[i]) {
      stack.push_back(i);
      marks_[i] = true;
    }
  }
  while (!stack.empty()) {
    NodeIndex i = stack.back();
    stack.pop_back();
    const Node& n = nodes_[i];
    if (!marks_[n.low]) {
      marks_[n.low] = true;
      if (n.low >= 2) stack.push_back(n.low);
    }
    if (!marks_[n.high]) {
      marks_[n.high] = true;
      if (n.high >= 2) stack.push_back(n.high);
    }
  }

  // Sweep: everything unmarked (and not already free, i.e. not already
  // poisoned) joins the free list.
  std::uint64_t reclaimed = 0;
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    if (!marks_[i] && nodes_[i].var != kTerminalLevel) {
      nodes_[i].var = kTerminalLevel;  // poison
      nodes_[i].next = freeList_;
      freeList_ = i;
      ++freeCount_;
      ++reclaimed;
    }
  }
  stats_.gcReclaimed += reclaimed;
  stats_.liveNodes -= reclaimed;

  // Dead nodes may still sit in unique-table chains; rebuild the table.
  rehashUniqueTable(uniqueBuckets_.size());
  // Cached results may reference dead nodes; drop them all.
  clearCache();
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

bool Manager::cacheLookup(std::uint32_t op, NodeIndex f, NodeIndex g,
                          NodeIndex h, NodeIndex* out) {
  ++stats_.cacheLookups;
  const std::uint64_t tag =
      mix64((std::uint64_t{op} << 58) ^ (std::uint64_t{f} << 40) ^
            (std::uint64_t{g} << 20) ^ h) ^
      ((std::uint64_t{f} << 32) | g);
  const CacheEntry& e = cache_[tag & (cache_.size() - 1)];
  if (e.tag == tag) {
    ++stats_.cacheHits;
    *out = e.result;
    return true;
  }
  return false;
}

void Manager::cacheInsert(std::uint32_t op, NodeIndex f, NodeIndex g,
                          NodeIndex h, NodeIndex result) {
  const std::uint64_t tag =
      mix64((std::uint64_t{op} << 58) ^ (std::uint64_t{f} << 40) ^
            (std::uint64_t{g} << 20) ^ h) ^
      ((std::uint64_t{f} << 32) | g);
  CacheEntry& e = cache_[tag & (cache_.size() - 1)];
  e.tag = tag;
  e.result = result;
}

void Manager::clearCache() {
  for (CacheEntry& e : cache_) e = CacheEntry{};
}

}  // namespace cmc::bdd
