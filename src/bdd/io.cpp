#include "bdd/io.hpp"

#include <sstream>
#include <unordered_set>

namespace cmc::bdd {

namespace {

std::string varLabel(std::uint32_t var,
                     const std::vector<std::string>& varNames) {
  if (var < varNames.size() && !varNames[var].empty()) return varNames[var];
  return "x" + std::to_string(var);
}

}  // namespace

std::string toDot(const Manager& mgr, const Bdd& f,
                  const std::vector<std::string>& varNames) {
  std::ostringstream out;
  out << "digraph bdd {\n";
  out << "  node [shape=circle];\n";
  out << "  t0 [label=\"0\", shape=box];\n";
  out << "  t1 [label=\"1\", shape=box];\n";

  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack;
  if (!f.isNull() && f.index() >= 2) {
    stack.push_back(f.index());
    seen.insert(f.index());
  } else if (!f.isNull()) {
    out << "  root -> t" << (f.isTrue() ? 1 : 0) << ";\n";
  }
  auto nodeName = [](NodeIndex i) -> std::string {
    if (i == kFalseNode) return "t0";
    if (i == kTrueNode) return "t1";
    return "n" + std::to_string(i);
  };
  while (!stack.empty()) {
    const NodeIndex i = stack.back();
    stack.pop_back();
    const Manager::Node& n = mgr.node(i);
    out << "  n" << i << " [label=\"" << varLabel(n.var, varNames) << "\"];\n";
    out << "  n" << i << " -> " << nodeName(n.low) << " [style=dashed];\n";
    out << "  n" << i << " -> " << nodeName(n.high) << ";\n";
    if (n.low >= 2 && seen.insert(n.low).second) stack.push_back(n.low);
    if (n.high >= 2 && seen.insert(n.high).second) stack.push_back(n.high);
  }
  out << "}\n";
  return out.str();
}

std::string cubeToString(const std::vector<std::int8_t>& cube,
                         const std::vector<std::string>& varNames) {
  std::ostringstream out;
  bool first = true;
  for (std::size_t v = 0; v < cube.size(); ++v) {
    if (cube[v] < 0) continue;
    if (!first) out << ' ';
    first = false;
    out << varLabel(static_cast<std::uint32_t>(v), varNames) << '='
        << static_cast<int>(cube[v]);
  }
  return out.str();
}

std::string resourceReport(const Manager& mgr, std::uint64_t transNodes,
                           std::uint64_t extraParts, double userSeconds) {
  std::ostringstream out;
  out << "resources used:\n";
  out << "user time: " << userSeconds << " s\n";
  out << "BDD nodes allocated: " << mgr.stats().nodesAllocatedTotal << "\n";
  out << "BDD nodes representing transition relation: " << transNodes << " + "
      << extraParts << "\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Cross-manager import
// ---------------------------------------------------------------------------

Importer::Importer(Manager& dst, const Manager& src) : dst_(dst), src_(src) {
  dst_.ensureVars(src_.varCount());
  // The structural fast path needs every source variable to sit at the same
  // level in both managers: then a source node's children are below it in
  // the destination order too, and mk() recreates the identical shape.
  sameOrder_ = true;
  for (std::uint32_t v = 0; v < src_.varCount(); ++v) {
    if (src_.levelOfVar(v) != dst_.levelOfVar(v)) {
      sameOrder_ = false;
      break;
    }
  }
  map_.assign(src_.arenaSize(), kNilNode);
}

void Importer::pin(NodeIndex srcIdx, NodeIndex dstIdx) {
  map_[srcIdx] = dstIdx;
  ++translated_;
  // Hold an external reference so a destination-side GC between imports
  // (mk() never collects, but ite() on the reordered path and the caller's
  // own ops may) cannot sweep a node the map still points at.
  pins_.emplace_back(&dst_, dstIdx);
}

Bdd Importer::import(const Bdd& f) {
  CMC_ASSERT(!f.isNull());
  CMC_ASSERT(f.manager() == &src_);
  return importIndex(f.index());
}

Bdd Importer::importIndex(NodeIndex root) {
  if (&dst_ == &src_) return Bdd(&dst_, root);  // degenerate self-import
  // A single-threaded source may have grown since construction (or the
  // last import); concurrent consumers see a frozen source, so this
  // resize is a no-op for them.
  if (src_.arenaSize() > map_.size()) map_.resize(src_.arenaSize(), kNilNode);
  const NodeIndex out =
      sameOrder_ ? copySameOrder(root) : copyReordered(root);
  return Bdd(&dst_, out);
}

NodeIndex Importer::copySameOrder(NodeIndex root) {
  if (root < 2) return root;  // terminals coincide by construction
  if (map_[root] != kNilNode) return map_[root];
  // Iterative post-order DFS: a node is emitted once both children are
  // translated, so every emission is one canonical mk() with ready
  // operands and the subgraph lands in (reverse) DFS order in the arena.
  std::vector<NodeIndex> stack{root};
  while (!stack.empty()) {
    const NodeIndex i = stack.back();
    if (map_[i] != kNilNode) {
      stack.pop_back();
      continue;
    }
    const Manager::Node& n = src_.node(i);
    bool ready = true;
    if (n.low >= 2 && map_[n.low] == kNilNode) {
      stack.push_back(n.low);
      ready = false;
    }
    if (n.high >= 2 && map_[n.high] == kNilNode) {
      stack.push_back(n.high);
      ready = false;
    }
    if (!ready) continue;
    const NodeIndex low = n.low < 2 ? n.low : map_[n.low];
    const NodeIndex high = n.high < 2 ? n.high : map_[n.high];
    pin(i, dst_.mk(n.var, low, high));
    stack.pop_back();
  }
  return map_[root];
}

NodeIndex Importer::copyReordered(NodeIndex i) {
  if (i < 2) return i;
  if (map_[i] != kNilNode) return map_[i];
  const Manager::Node& n = src_.node(i);
  // Children first, then recombine under the destination's order.  The
  // intermediate handles keep the children referenced across the ite()
  // (which may GC).
  const Bdd low(&dst_, copyReordered(n.low));
  const Bdd high(&dst_, copyReordered(n.high));
  const Bdd out = dst_.ite(dst_.bddVar(n.var), high, low);
  pin(i, out.index());
  return out.index();
}

}  // namespace cmc::bdd
