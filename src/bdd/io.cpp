#include "bdd/io.hpp"

#include <sstream>
#include <unordered_set>

namespace cmc::bdd {

namespace {

std::string varLabel(std::uint32_t var,
                     const std::vector<std::string>& varNames) {
  if (var < varNames.size() && !varNames[var].empty()) return varNames[var];
  return "x" + std::to_string(var);
}

}  // namespace

std::string toDot(const Manager& mgr, const Bdd& f,
                  const std::vector<std::string>& varNames) {
  std::ostringstream out;
  out << "digraph bdd {\n";
  out << "  node [shape=circle];\n";
  out << "  t0 [label=\"0\", shape=box];\n";
  out << "  t1 [label=\"1\", shape=box];\n";

  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack;
  if (!f.isNull() && f.index() >= 2) {
    stack.push_back(f.index());
    seen.insert(f.index());
  } else if (!f.isNull()) {
    out << "  root -> t" << (f.isTrue() ? 1 : 0) << ";\n";
  }
  auto nodeName = [](NodeIndex i) -> std::string {
    if (i == kFalseNode) return "t0";
    if (i == kTrueNode) return "t1";
    return "n" + std::to_string(i);
  };
  while (!stack.empty()) {
    const NodeIndex i = stack.back();
    stack.pop_back();
    const Manager::Node& n = mgr.node(i);
    out << "  n" << i << " [label=\"" << varLabel(n.var, varNames) << "\"];\n";
    out << "  n" << i << " -> " << nodeName(n.low) << " [style=dashed];\n";
    out << "  n" << i << " -> " << nodeName(n.high) << ";\n";
    if (n.low >= 2 && seen.insert(n.low).second) stack.push_back(n.low);
    if (n.high >= 2 && seen.insert(n.high).second) stack.push_back(n.high);
  }
  out << "}\n";
  return out.str();
}

std::string cubeToString(const std::vector<std::int8_t>& cube,
                         const std::vector<std::string>& varNames) {
  std::ostringstream out;
  bool first = true;
  for (std::size_t v = 0; v < cube.size(); ++v) {
    if (cube[v] < 0) continue;
    if (!first) out << ' ';
    first = false;
    out << varLabel(static_cast<std::uint32_t>(v), varNames) << '='
        << static_cast<int>(cube[v]);
  }
  return out.str();
}

std::string resourceReport(const Manager& mgr, std::uint64_t transNodes,
                           std::uint64_t extraParts, double userSeconds) {
  std::ostringstream out;
  out << "resources used:\n";
  out << "user time: " << userSeconds << " s\n";
  out << "BDD nodes allocated: " << mgr.stats().nodesAllocatedTotal << "\n";
  out << "BDD nodes representing transition relation: " << transNodes << " + "
      << extraParts << "\n";
  return out.str();
}

}  // namespace cmc::bdd
