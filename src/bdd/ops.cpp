// Core BDD operations: ITE, quantification, relational product, renaming,
// model counting and inspection.  All recursion is structural over canonical
// nodes and memoized through the manager's computed table.
#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "bdd/manager.hpp"

namespace cmc::bdd {

namespace {

// Computed-table operation codes.  Permutations encode their id into the
// third key slot, so a single code suffices for all of them.
enum Op : std::uint32_t {
  kOpIte = 1,
  kOpExists = 2,
  kOpAndExists = 3,
  kOpPermute = 4,
};

}  // namespace

// ---------------------------------------------------------------------------
// Bdd operator sugar
// ---------------------------------------------------------------------------

Bdd Bdd::operator&(const Bdd& rhs) const {
  CMC_ASSERT(!isNull() && mgr_ == rhs.mgr_);
  return mgr_->andOp(*this, rhs);
}

Bdd Bdd::operator|(const Bdd& rhs) const {
  CMC_ASSERT(!isNull() && mgr_ == rhs.mgr_);
  return mgr_->orOp(*this, rhs);
}

Bdd Bdd::operator^(const Bdd& rhs) const {
  CMC_ASSERT(!isNull() && mgr_ == rhs.mgr_);
  return mgr_->xorOp(*this, rhs);
}

Bdd Bdd::operator!() const {
  CMC_ASSERT(!isNull());
  return mgr_->notOp(*this);
}

Bdd Bdd::implies(const Bdd& rhs) const {
  CMC_ASSERT(!isNull() && mgr_ == rhs.mgr_);
  return mgr_->ite(*this, rhs, mgr_->bddTrue());
}

Bdd Bdd::iff(const Bdd& rhs) const {
  CMC_ASSERT(!isNull() && mgr_ == rhs.mgr_);
  return mgr_->ite(*this, rhs, mgr_->notOp(rhs));
}

Bdd Bdd::diff(const Bdd& rhs) const {
  CMC_ASSERT(!isNull() && mgr_ == rhs.mgr_);
  return mgr_->ite(rhs, mgr_->bddFalse(), *this);
}

bool Bdd::subsetOf(const Bdd& rhs) const {
  return diff(rhs).isFalse();
}

// ---------------------------------------------------------------------------
// ITE and derived connectives
// ---------------------------------------------------------------------------

Bdd Manager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  CMC_ASSERT(!f.isNull() && !g.isNull() && !h.isNull());
  maybeGc();
  return Bdd(this, iteRec(f.index(), g.index(), h.index()));
}

Bdd Manager::andOp(const Bdd& f, const Bdd& g) {
  maybeGc();
  return Bdd(this, iteRec(f.index(), g.index(), kFalseNode));
}

Bdd Manager::orOp(const Bdd& f, const Bdd& g) {
  maybeGc();
  return Bdd(this, iteRec(f.index(), kTrueNode, g.index()));
}

Bdd Manager::xorOp(const Bdd& f, const Bdd& g) {
  maybeGc();
  NodeIndex ng = iteRec(g.index(), kFalseNode, kTrueNode);
  return Bdd(this, iteRec(f.index(), ng, g.index()));
}

Bdd Manager::notOp(const Bdd& f) {
  maybeGc();
  return Bdd(this, iteRec(f.index(), kFalseNode, kTrueNode));
}

NodeIndex Manager::iteRec(NodeIndex f, NodeIndex g, NodeIndex h) {
  // Terminal cases.
  if (f == kTrueNode) return g;
  if (f == kFalseNode) return h;
  if (g == h) return g;
  if (g == kTrueNode && h == kFalseNode) return f;

  NodeIndex cached;
  if (cacheLookup(kOpIte, f, g, h, &cached)) return cached;

  const std::uint32_t lf = levelOf(f);
  const std::uint32_t lg = levelOf(g);
  const std::uint32_t lh = levelOf(h);
  const std::uint32_t top = std::min({lf, lg, lh});

  const NodeIndex f0 = lf == top ? nodes_[f].low : f;
  const NodeIndex f1 = lf == top ? nodes_[f].high : f;
  const NodeIndex g0 = lg == top ? nodes_[g].low : g;
  const NodeIndex g1 = lg == top ? nodes_[g].high : g;
  const NodeIndex h0 = lh == top ? nodes_[h].low : h;
  const NodeIndex h1 = lh == top ? nodes_[h].high : h;

  const NodeIndex low = iteRec(f0, g0, h0);
  const NodeIndex high = iteRec(f1, g1, h1);
  const NodeIndex result = mk(levelToVar_[top], low, high);
  cacheInsert(kOpIte, f, g, h, result);
  return result;
}

// ---------------------------------------------------------------------------
// Quantification
// ---------------------------------------------------------------------------

Bdd Manager::exists(const Bdd& f, const Bdd& cube) {
  CMC_ASSERT(!f.isNull() && !cube.isNull());
  maybeGc();
  return Bdd(this, existsRec(f.index(), cube.index()));
}

Bdd Manager::forall(const Bdd& f, const Bdd& cube) {
  CMC_ASSERT(!f.isNull() && !cube.isNull());
  maybeGc();
  NodeIndex nf = iteRec(f.index(), kFalseNode, kTrueNode);
  NodeIndex ex = existsRec(nf, cube.index());
  return Bdd(this, iteRec(ex, kFalseNode, kTrueNode));
}

NodeIndex Manager::existsRec(NodeIndex f, NodeIndex cube) {
  if (f == kTrueNode || f == kFalseNode) return f;
  // Skip quantified variables above f's top variable.
  while (cube != kTrueNode && levelOf(cube) < levelOf(f)) {
    cube = nodes_[cube].high;
  }
  if (cube == kTrueNode) return f;

  NodeIndex cached;
  if (cacheLookup(kOpExists, f, cube, 0, &cached)) return cached;

  const Node& nf = nodes_[f];
  NodeIndex result;
  if (nf.var == nodes_[cube].var) {
    const NodeIndex low = existsRec(nf.low, nodes_[cube].high);
    if (low == kTrueNode) {
      result = kTrueNode;  // early cutoff: or(true, _) == true
    } else {
      const NodeIndex high = existsRec(nf.high, nodes_[cube].high);
      result = iteRec(low, kTrueNode, high);
    }
  } else {
    result = mk(nf.var, existsRec(nf.low, cube), existsRec(nf.high, cube));
  }
  cacheInsert(kOpExists, f, cube, 0, result);
  return result;
}

Bdd Manager::andExists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  CMC_ASSERT(!f.isNull() && !g.isNull() && !cube.isNull());
  maybeGc();
  return Bdd(this, andExistsRec(f.index(), g.index(), cube.index()));
}

NodeIndex Manager::andExistsRec(NodeIndex f, NodeIndex g, NodeIndex cube) {
  if (f == kFalseNode || g == kFalseNode) return kFalseNode;
  if (f == kTrueNode && g == kTrueNode) return kTrueNode;
  if (cube == kTrueNode) return iteRec(f, g, kFalseNode);
  if (f == kTrueNode) return existsRec(g, cube);
  if (g == kTrueNode) return existsRec(f, cube);

  const std::uint32_t top = std::min(levelOf(f), levelOf(g));
  while (cube != kTrueNode && levelOf(cube) < top) {
    cube = nodes_[cube].high;
  }
  if (cube == kTrueNode) return iteRec(f, g, kFalseNode);

  NodeIndex cached;
  if (cacheLookup(kOpAndExists, f, g, cube, &cached)) return cached;

  const NodeIndex f0 = levelOf(f) == top ? nodes_[f].low : f;
  const NodeIndex f1 = levelOf(f) == top ? nodes_[f].high : f;
  const NodeIndex g0 = levelOf(g) == top ? nodes_[g].low : g;
  const NodeIndex g1 = levelOf(g) == top ? nodes_[g].high : g;

  NodeIndex result;
  if (levelOf(cube) == top) {
    const NodeIndex rest = nodes_[cube].high;
    const NodeIndex low = andExistsRec(f0, g0, rest);
    if (low == kTrueNode) {
      result = kTrueNode;
    } else {
      const NodeIndex high = andExistsRec(f1, g1, rest);
      result = iteRec(low, kTrueNode, high);
    }
  } else {
    result = mk(levelToVar_[top], andExistsRec(f0, g0, cube),
                andExistsRec(f1, g1, cube));
  }
  cacheInsert(kOpAndExists, f, g, cube, result);
  return result;
}

// ---------------------------------------------------------------------------
// Variable renaming
// ---------------------------------------------------------------------------

std::uint32_t Manager::registerPermutation(std::vector<std::uint32_t> perm) {
  for (std::uint32_t v : perm) ensureVars(v + 1);
  permutations_.push_back(std::move(perm));
  return static_cast<std::uint32_t>(permutations_.size() - 1);
}

Bdd Manager::permute(const Bdd& f, std::uint32_t permId) {
  CMC_ASSERT(!f.isNull() && permId < permutations_.size());
  maybeGc();
  return Bdd(this, permuteRec(f.index(), permId));
}

NodeIndex Manager::permuteRec(NodeIndex f, std::uint32_t permId) {
  if (f == kTrueNode || f == kFalseNode) return f;
  NodeIndex cached;
  if (cacheLookup(kOpPermute, f, permId, 0, &cached)) return cached;

  const Node& n = nodes_[f];
  const std::vector<std::uint32_t>& perm = permutations_[permId];
  const std::uint32_t target =
      n.var < perm.size() ? perm[n.var] : n.var;

  const NodeIndex low = permuteRec(n.low, permId);
  const NodeIndex high = permuteRec(n.high, permId);
  // The permuted variable may land out of order relative to low/high, so
  // rebuild with ITE on the renamed variable rather than mk().
  const NodeIndex var = mk(target, kFalseNode, kTrueNode);
  const NodeIndex result = iteRec(var, high, low);
  cacheInsert(kOpPermute, f, permId, 0, result);
  return result;
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

std::uint64_t Manager::dagSize(const Bdd& f) const {
  return dagSize(std::vector<Bdd>{f});
}

std::uint64_t Manager::dagSize(const std::vector<Bdd>& fs) const {
  // Scratch-marks walk: the reset is one memset of arena/8 bytes and each
  // edge costs a bit test, an order of magnitude cheaper than hashing
  // every visited node — dagSize sits on the engine chooser's probe path,
  // where it runs against intermediate products thousands of nodes wide.
  // Uses the same mutable scratch as GC, so the usual manager rule holds:
  // not concurrently callable (see the snapshot-sharing contract).
  marks_.assign(nodes_.size(), false);
  std::vector<NodeIndex> stack;
  for (const Bdd& f : fs) {
    if (f.isNull() || f.index() < 2) continue;
    if (!marks_[f.index()]) {
      marks_[f.index()] = true;
      stack.push_back(f.index());
    }
  }
  std::uint64_t count = 0;
  while (!stack.empty()) {
    const NodeIndex i = stack.back();
    stack.pop_back();
    ++count;
    const Node& n = nodes_[i];
    if (n.low >= 2 && !marks_[n.low]) {
      marks_[n.low] = true;
      stack.push_back(n.low);
    }
    if (n.high >= 2 && !marks_[n.high]) {
      marks_[n.high] = true;
      stack.push_back(n.high);
    }
  }
  return count;
}

std::vector<std::uint32_t> Manager::support(const Bdd& f) const {
  std::unordered_set<NodeIndex> seen;
  std::vector<NodeIndex> stack;
  std::unordered_set<std::uint32_t> vars;
  if (!f.isNull() && f.index() >= 2) stack.push_back(f.index());
  while (!stack.empty()) {
    NodeIndex i = stack.back();
    stack.pop_back();
    if (!seen.insert(i).second) continue;
    const Node& n = nodes_[i];
    vars.insert(n.var);
    if (n.low >= 2) stack.push_back(n.low);
    if (n.high >= 2) stack.push_back(n.high);
  }
  std::vector<std::uint32_t> out(vars.begin(), vars.end());
  std::sort(out.begin(), out.end());
  return out;
}

double Manager::satCount(const Bdd& f, std::uint32_t nvars) const {
  CMC_ASSERT(!f.isNull());
  std::unordered_map<NodeIndex, double> memo;
  // count(i): satisfying assignments over variables strictly below level(i),
  // where level(terminal) = nvars.
  auto levelOfIdx = [&](NodeIndex i) -> std::uint32_t {
    return i < 2 ? nvars : levelOf(i);
  };
  auto rec = [&](auto&& self, NodeIndex i) -> double {
    if (i == kFalseNode) return 0.0;
    if (i == kTrueNode) return 1.0;
    auto it = memo.find(i);
    if (it != memo.end()) return it->second;
    const double cl = self(self, nodes_[i].low) *
                      std::exp2(levelOfIdx(nodes_[i].low) - levelOf(i) - 1);
    const double ch = self(self, nodes_[i].high) *
                      std::exp2(levelOfIdx(nodes_[i].high) - levelOf(i) - 1);
    const double c = cl + ch;
    memo.emplace(i, c);
    return c;
  };
  return rec(rec, f.index()) * std::exp2(levelOfIdx(f.index()));
}

std::vector<std::int8_t> Manager::pickCube(const Bdd& f) const {
  CMC_ASSERT(!f.isNull() && !f.isFalse());
  std::vector<std::int8_t> cube(numVars_, -1);
  NodeIndex i = f.index();
  while (i >= 2) {
    const Node& n = nodes_[i];
    if (n.low != kFalseNode) {
      cube[n.var] = 0;
      i = n.low;
    } else {
      cube[n.var] = 1;
      i = n.high;
    }
  }
  return cube;
}

bool Manager::eval(const Bdd& f, const std::vector<bool>& assignment) const {
  CMC_ASSERT(!f.isNull());
  NodeIndex i = f.index();
  while (i >= 2) {
    const Node& n = nodes_[i];
    CMC_ASSERT(n.var < assignment.size());
    i = assignment[n.var] ? n.high : n.low;
  }
  return i == kTrueNode;
}

}  // namespace cmc::bdd
