// Debug/report output for BDDs: Graphviz export and the resource summary
// mirroring the SMV reports reproduced in the paper's Figures 7/10/15/17.
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"

namespace cmc::bdd {

/// Graphviz DOT rendering of f's DAG.  `varNames[i]` labels variable i
/// (falls back to "x<i>" when absent).
std::string toDot(const Manager& mgr, const Bdd& f,
                  const std::vector<std::string>& varNames = {});

/// Render one cube from pickCube() as e.g. "x0=1 x2=0" (don't-cares skipped).
std::string cubeToString(const std::vector<std::int8_t>& cube,
                         const std::vector<std::string>& varNames = {});

/// SMV-style resource report:
///   resources used:
///   BDD nodes allocated: N
///   BDD nodes representing transition relation: T + k
std::string resourceReport(const Manager& mgr, std::uint64_t transNodes,
                           std::uint64_t extraParts, double userSeconds);

}  // namespace cmc::bdd
