// Debug/report output for BDDs: Graphviz export and the resource summary
// mirroring the SMV reports reproduced in the paper's Figures 7/10/15/17.
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"

namespace cmc::bdd {

/// Graphviz DOT rendering of f's DAG.  `varNames[i]` labels variable i
/// (falls back to "x<i>" when absent).
std::string toDot(const Manager& mgr, const Bdd& f,
                  const std::vector<std::string>& varNames = {});

/// Render one cube from pickCube() as e.g. "x0=1 x2=0" (don't-cares skipped).
std::string cubeToString(const std::vector<std::int8_t>& cube,
                         const std::vector<std::string>& varNames = {});

/// SMV-style resource report:
///   resources used:
///   BDD nodes allocated: N
///   BDD nodes representing transition relation: T + k
std::string resourceReport(const Manager& mgr, std::uint64_t transNodes,
                           std::uint64_t extraParts, double userSeconds);

/// In-memory cross-manager transfer: copies BDDs from a source manager into
/// a destination manager through a node-index translation map, so worker
/// setup is a linear walk of the reachable DAG instead of rebuilding the
/// functions from scratch.
///
/// The translation map is shared across import() calls, so functions with
/// shared subgraphs stay shared in the destination (one importer per
/// (src, dst) pair imports a whole snapshot with no duplicated nodes), and
/// importing the same function twice returns the same (canonical) node.
///
/// Two paths:
///  - When the source variable order is a prefix of the destination's, the
///    copy is a post-order DFS driving Manager::mk() directly: children are
///    hash-consed before parents, each source node costs one unique-table
///    probe, and the subgraph lands contiguously in the destination arena
///    (DFS layout, good locality for the top-down ops recursion).
///  - Under a different destination order the DFS instead combines each
///    node as ite(var, high', low'), which re-canonicalizes per the
///    destination order (correct for any permutation, more expensive).
///
/// Every imported node is pinned with an external reference for the
/// importer's lifetime, so a destination-side GC between import() calls
/// can never sweep half-translated subgraphs.
///
/// Thread safety: the importer only *reads* the source manager (node(),
/// levels) — several importers may copy from one immutable source
/// concurrently, which is exactly how service workers consume a shared
/// elaboration snapshot.  The destination manager is single-threaded as
/// usual, and the source must not mutate (no ops, no GC, no reordering)
/// while importers are attached.
class Importer {
 public:
  /// Ensures `dst` knows all of `src`'s variables and sizes the map from
  /// src.arenaSize().
  Importer(Manager& dst, const Manager& src);

  Importer(const Importer&) = delete;
  Importer& operator=(const Importer&) = delete;

  /// Import the function rooted at `f` (a handle of the source manager);
  /// returns the equivalent function in the destination manager.
  Bdd import(const Bdd& f);
  /// Import by source node index (avoids touching source reference counts —
  /// the handle-free form workers use on a shared snapshot).
  Bdd importIndex(NodeIndex root);

  /// Source nodes translated so far (shared subgraphs counted once).
  std::size_t translatedCount() const noexcept { return translated_; }
  /// True when the fast same-order structural copy applies.
  bool sameOrder() const noexcept { return sameOrder_; }

 private:
  NodeIndex copySameOrder(NodeIndex root);
  NodeIndex copyReordered(NodeIndex root);
  void pin(NodeIndex srcIdx, NodeIndex dstIdx);

  Manager& dst_;
  const Manager& src_;
  bool sameOrder_;
  std::size_t translated_ = 0;
  /// src index -> dst index; kNilNode = not yet translated.
  std::vector<NodeIndex> map_;
  /// External references keeping translated nodes alive in dst_.
  std::vector<Bdd> pins_;
};

}  // namespace cmc::bdd
