// A from-scratch ROBDD package (the paper used SMV's BDD engine; this is our
// substitute for it, with the same observable counters: total nodes
// allocated, live nodes, and per-function DAG sizes).
//
// Design notes
//  - Nodes live in one contiguous arena indexed by 32-bit handles; the
//    terminals FALSE and TRUE are indices 0 and 1.
//  - Reduction (no node with low==high) and sharing (hash-consed unique
//    table) are maintained by mk(); every operation goes through mk(), so
//    every Bdd is canonical: f == g  iff  index(f) == index(g).
//  - External references are counted per node (Bdd handles); garbage
//    collection is mark-and-sweep from externally referenced nodes and is
//    triggered by allocation pressure.
//  - One Manager is single-threaded by design.  Parallel verification gives
//    each worker its own Manager (see comp::ParallelVerifier); this is the
//    standard approach for BDD-based checkers since managers share nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace cmc::bdd {

class Manager;

using NodeIndex = std::uint32_t;

inline constexpr NodeIndex kFalseNode = 0;
inline constexpr NodeIndex kTrueNode = 1;
inline constexpr NodeIndex kNilNode = 0xffffffffu;
inline constexpr std::uint32_t kTerminalLevel = 0xffffffffu;

/// RAII handle to a BDD node.  Copying bumps the node's external reference
/// count; destruction releases it.  A default-constructed handle is "null"
/// and must not be passed to operations (isNull() distinguishes it).
class Bdd {
 public:
  Bdd() noexcept = default;
  Bdd(Manager* mgr, NodeIndex idx) noexcept;
  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  bool isNull() const noexcept { return mgr_ == nullptr; }
  bool isTrue() const noexcept { return idx_ == kTrueNode && mgr_ != nullptr; }
  bool isFalse() const noexcept {
    return idx_ == kFalseNode && mgr_ != nullptr;
  }
  bool isTerminal() const noexcept { return isTrue() || isFalse(); }

  NodeIndex index() const noexcept { return idx_; }
  Manager* manager() const noexcept { return mgr_; }

  /// Canonicity makes structural equality semantic equivalence.
  friend bool operator==(const Bdd& a, const Bdd& b) noexcept {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) noexcept {
    return !(a == b);
  }

  // Boolean connectives (defined in ops.cpp via the manager).
  Bdd operator&(const Bdd& rhs) const;
  Bdd operator|(const Bdd& rhs) const;
  Bdd operator^(const Bdd& rhs) const;
  Bdd operator!() const;
  /// Logical implication: (*this) -> rhs.
  Bdd implies(const Bdd& rhs) const;
  /// Logical equivalence: (*this) <-> rhs.
  Bdd iff(const Bdd& rhs) const;
  /// Set difference: (*this) & !rhs.
  Bdd diff(const Bdd& rhs) const;

  Bdd& operator&=(const Bdd& rhs) { return *this = *this & rhs; }
  Bdd& operator|=(const Bdd& rhs) { return *this = *this | rhs; }
  Bdd& operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }

  /// True iff this function is a subset of rhs (this -> rhs is valid).
  bool subsetOf(const Bdd& rhs) const;

 private:
  Manager* mgr_ = nullptr;
  NodeIndex idx_ = kNilNode;
};

/// Counters mirrored from the paper's SMV resource reports (Figs. 7/10/15/17
/// print "BDD nodes allocated" and "BDD nodes representing transition
/// relation"); we expose the same quantities.
struct ManagerStats {
  std::uint64_t nodesAllocatedTotal = 0;  ///< monotonic; never reset by GC
  std::uint64_t liveNodes = 0;            ///< currently reachable nodes
  std::uint64_t peakNodes = 0;            ///< high-water mark of live nodes
  std::uint64_t gcRuns = 0;
  std::uint64_t gcReclaimed = 0;
  std::uint64_t levelSwaps = 0;
  std::uint64_t reorderings = 0;
  std::uint64_t cacheLookups = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t uniqueLookups = 0;
};

class Manager {
 public:
  /// `initialCapacity` pre-sizes the node arena; the manager grows on demand.
  explicit Manager(std::size_t initialCapacity = 1 << 12,
                   std::size_t cacheSize = 1 << 14);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- Variables ---------------------------------------------------------

  /// Allocate the next variable (initially level == id; dynamic reordering
  /// may change the level, never the id).
  std::uint32_t newVar();
  /// Ensure at least `n` variables exist; returns the current count.
  std::uint32_t ensureVars(std::uint32_t n);
  std::uint32_t varCount() const noexcept { return numVars_; }

  /// Current level of a variable id / variable id at a level.
  std::uint32_t levelOfVar(std::uint32_t var) const {
    return varToLevel_[var];
  }
  std::uint32_t varAtLevel(std::uint32_t level) const {
    return levelToVar_[level];
  }
  /// The full order, outermost first (variable ids by level).
  std::vector<std::uint32_t> currentOrder() const { return levelToVar_; }

  // ---- Dynamic reordering (Rudell sifting; reorder.cpp) -------------------

  /// Swap the variables at `level` and `level + 1` in place.  External Bdd
  /// handles stay valid (node indices are preserved).  Returns the node
  /// delta (created - freed is not tracked; call collectGarbage() to drop
  /// orphans).
  void swapAdjacentLevels(std::uint32_t level);

  /// Sift one variable to its locally optimal level.  Returns the live
  /// node count after placement.
  std::uint64_t siftVariable(std::uint32_t var);

  /// Full sifting pass over all variables (largest support first).
  /// Returns the live node count after reordering.
  std::uint64_t reorderSift();

  // ---- Leaf/literal constructors -----------------------------------------

  Bdd bddTrue() { return Bdd(this, kTrueNode); }
  Bdd bddFalse() { return Bdd(this, kFalseNode); }
  Bdd bddVar(std::uint32_t var);   ///< the function "var"
  Bdd bddNVar(std::uint32_t var);  ///< the function "!var"
  /// Positive cube over `vars` (conjunction of the variables).
  Bdd cube(const std::vector<std::uint32_t>& vars);

  // ---- Core operations (ops.cpp) -----------------------------------------

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd andOp(const Bdd& f, const Bdd& g);
  Bdd orOp(const Bdd& f, const Bdd& g);
  Bdd xorOp(const Bdd& f, const Bdd& g);
  Bdd notOp(const Bdd& f);

  /// Existential quantification of the variables of `cube` out of `f`.
  Bdd exists(const Bdd& f, const Bdd& cube);
  /// Universal quantification (dual of exists).
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product: exists(cube, f & g) computed in one pass.  This is
  /// the workhorse of image/preimage computation in the symbolic checker.
  Bdd andExists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Register a variable permutation (perm[v] = image of v); returns an id
  /// usable with permute().  Permutations are cached per id.
  std::uint32_t registerPermutation(std::vector<std::uint32_t> perm);
  /// Rename variables of f according to the registered permutation.
  Bdd permute(const Bdd& f, std::uint32_t permId);

  // ---- Inspection ---------------------------------------------------------

  /// Number of distinct internal nodes in f's DAG (terminals excluded),
  /// matching SMV's per-function node counts.
  std::uint64_t dagSize(const Bdd& f) const;
  /// Combined DAG size of several functions (shared nodes counted once).
  std::uint64_t dagSize(const std::vector<Bdd>& fs) const;
  /// Variables f depends on, ascending.
  std::vector<std::uint32_t> support(const Bdd& f) const;
  /// Number of satisfying assignments over `nvars` variables.
  double satCount(const Bdd& f, std::uint32_t nvars) const;
  /// One satisfying assignment; entry v is 0, 1, or -1 (don't care).
  /// Requires f != false.
  std::vector<std::int8_t> pickCube(const Bdd& f) const;
  /// Evaluate under a full assignment (index = variable).
  bool eval(const Bdd& f, const std::vector<bool>& assignment) const;

  const ManagerStats& stats() const noexcept { return stats_; }
  std::uint64_t liveNodeCount() const noexcept { return stats_.liveNodes; }

  /// Restart the peak-live-nodes high-water mark from the current live
  /// count, making `stats().peakNodes` a per-phase measurement (used by
  /// Checker::check for its per-check accounting).
  void resetPeakNodes() noexcept { stats_.peakNodes = stats_.liveNodes; }

  /// Force a garbage collection now (normally automatic).
  void collectGarbage();

  /// Override the live-node count at which automatic GC triggers.  Low
  /// values make `stats().peakNodes` track genuinely *reachable* nodes —
  /// dead intermediates are swept before they inflate the high-water mark —
  /// at the cost of frequent collections (the 25% rule still raises the
  /// threshold when a sweep is unproductive).  Meant for measurement runs;
  /// the default is sized for speed.
  void setGcThreshold(std::uint64_t threshold) noexcept {
    gcThreshold_ = threshold < 64 ? 64 : threshold;
  }
  /// The current auto-GC trigger.  The 25% rule raises it silently after an
  /// unproductive sweep, so callers running allocation bursts they intend
  /// to clean up themselves (e.g. the engine-choice probe) save and restore
  /// it around the burst.
  std::uint64_t gcThreshold() const noexcept { return gcThreshold_; }

  // ---- Internal node access (io.cpp and ops.cpp) --------------------------

  struct Node {
    std::uint32_t var;  ///< level, or kTerminalLevel for terminals
    NodeIndex low;
    NodeIndex high;
    NodeIndex next;      ///< unique-table chain / free list link
    std::uint32_t refs;  ///< external reference count
  };

  const Node& node(NodeIndex i) const { return nodes_[i]; }
  /// Size of the node arena (terminals + live + free slots).  An importer
  /// sizes its translation map from this; a worker manager pre-sized with
  /// the source's arena never rehashes during the import.
  std::size_t arenaSize() const noexcept { return nodes_.size(); }
  /// Level of a node (kTerminalLevel for terminals and free nodes).
  std::uint32_t levelOf(NodeIndex i) const {
    const std::uint32_t var = nodes_[i].var;
    return var == kTerminalLevel ? kTerminalLevel : varToLevel_[var];
  }

  void incRef(NodeIndex i) noexcept;
  void decRef(NodeIndex i) noexcept;

 private:
  friend class Bdd;
  /// Cross-manager import (io.cpp) drives mk() directly so the copied DAG
  /// is hash-consed into this manager without going through ite().
  friend class Importer;

  /// Find-or-create the node (var, low, high), applying the reduction rule.
  NodeIndex mk(std::uint32_t var, NodeIndex low, NodeIndex high);
  NodeIndex allocateNode();
  void rehashUniqueTable(std::size_t buckets);
  void maybeGc();

  NodeIndex iteRec(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex existsRec(NodeIndex f, NodeIndex cube);
  NodeIndex andExistsRec(NodeIndex f, NodeIndex g, NodeIndex cube);
  NodeIndex permuteRec(NodeIndex f, std::uint32_t permId);

  // Computed-table plumbing (ops.cpp).
  struct CacheEntry {
    std::uint64_t tag = ~0ull;  ///< mix of (op,f,g,h); ~0 = empty
    NodeIndex result = kNilNode;
  };
  bool cacheLookup(std::uint32_t op, NodeIndex f, NodeIndex g, NodeIndex h,
                   NodeIndex* out);
  void cacheInsert(std::uint32_t op, NodeIndex f, NodeIndex g, NodeIndex h,
                   NodeIndex result);
  void clearCache();

  std::vector<Node> nodes_;
  std::vector<NodeIndex> uniqueBuckets_;  ///< size is a power of two
  NodeIndex freeList_ = kNilNode;
  std::uint64_t freeCount_ = 0;
  std::uint64_t gcThreshold_;

  std::vector<CacheEntry> cache_;  ///< direct-mapped, power-of-two size

  std::vector<std::vector<std::uint32_t>> permutations_;

  std::uint32_t numVars_ = 0;
  std::vector<std::uint32_t> varToLevel_;
  std::vector<std::uint32_t> levelToVar_;
  ManagerStats stats_;

  // Scratch marks for GC / dagSize (sized lazily to nodes_.size()).
  mutable std::vector<bool> marks_;
};

}  // namespace cmc::bdd
