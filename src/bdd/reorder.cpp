// Dynamic variable reordering: Rudell's sifting algorithm.
//
// The primitive is the in-place adjacent-level swap.  Swapping levels
// l (variable x) and l+1 (variable y) rewrites every x-node whose children
// test y from
//     f = x ? (y ? f11 : f10) : (y ? f01 : f00)
// to the equivalent
//     f = y ? (x ? f11 : f01) : (x ? f10 : f00)
// *in place* (same node index, new label/children), so external Bdd handles
// remain valid and keep denoting the same boolean function.  x-nodes whose
// children do not test y are untouched — their representation is already
// canonical under the new order.  Orphaned y-nodes become garbage.
//
// siftVariable() moves one variable through every level, measuring live
// nodes (after a collection) at each position, and parks it at the best
// one; reorderSift() sifts all variables, largest-support first.
#include <algorithm>
#include <numeric>

#include "bdd/manager.hpp"
#include "util/hash.hpp"

namespace cmc::bdd {

void Manager::swapAdjacentLevels(std::uint32_t level) {
  CMC_ASSERT(level + 1 < numVars_);
  ++stats_.levelSwaps;
  const std::uint32_t x = levelToVar_[level];
  const std::uint32_t y = levelToVar_[level + 1];

  // Collect the x-nodes that actually test y below.  Free-list nodes carry
  // the poisoned label kTerminalLevel (collectGarbage sets it on free, mk
  // overwrites it on reuse), which never equals a real variable — so the
  // label test alone excludes them and no per-swap free bitmap is needed.
  std::vector<NodeIndex> affected;
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var != x) continue;
    if (nodes_[n.low].var == y || nodes_[n.high].var == y) {
      affected.push_back(i);
    }
  }

  for (NodeIndex i : affected) {
    // Read the old structure first: mk() below may grow the node arena and
    // invalidate references (never indices).
    const NodeIndex oldLow = nodes_[i].low;
    const NodeIndex oldHigh = nodes_[i].high;
    const auto cofactors = [&](NodeIndex c) -> std::pair<NodeIndex, NodeIndex> {
      if (c >= 2 && nodes_[c].var == y) {
        return {nodes_[c].low, nodes_[c].high};
      }
      return {c, c};
    };
    const auto [f00, f01] = cofactors(oldLow);
    const auto [f10, f11] = cofactors(oldHigh);
    // New children test x (which moves one level down).
    const NodeIndex newLow = mk(x, f00, f10);
    const NodeIndex newHigh = mk(x, f01, f11);
    CMC_ASSERT(newLow != newHigh);
    Node& n = nodes_[i];
    n.var = y;
    n.low = newLow;
    n.high = newHigh;
  }

  std::swap(varToLevel_[x], varToLevel_[y]);
  std::swap(levelToVar_[level], levelToVar_[level + 1]);

  // Rewritten nodes sit in stale unique-table buckets; rebuild and drop the
  // (still sound, but order-specific) computed results.
  rehashUniqueTable(uniqueBuckets_.size());
  clearCache();
}

std::uint64_t Manager::siftVariable(std::uint32_t var) {
  CMC_ASSERT(var < numVars_);
  auto measure = [this]() {
    collectGarbage();
    return stats_.liveNodes;
  };

  std::uint64_t best = measure();
  std::uint32_t bestLevel = varToLevel_[var];

  // Walk to the top...
  while (varToLevel_[var] > 0) {
    swapAdjacentLevels(varToLevel_[var] - 1);
    const std::uint64_t count = measure();
    if (count < best) {
      best = count;
      bestLevel = varToLevel_[var];
    }
  }
  // ...then to the bottom...
  while (varToLevel_[var] + 1 < numVars_) {
    swapAdjacentLevels(varToLevel_[var]);
    const std::uint64_t count = measure();
    if (count < best) {
      best = count;
      bestLevel = varToLevel_[var];
    }
  }
  // ...and back to the best position seen.
  while (varToLevel_[var] > bestLevel) {
    swapAdjacentLevels(varToLevel_[var] - 1);
  }
  while (varToLevel_[var] < bestLevel) {
    swapAdjacentLevels(varToLevel_[var]);
  }
  return measure();
}

std::uint64_t Manager::reorderSift() {
  ++stats_.reorderings;
  // Sift variables in decreasing order of population (nodes labelled with
  // the variable), the classic heuristic.
  // Free-list nodes are excluded by their poisoned label alone.
  std::vector<std::uint64_t> population(numVars_, 0);
  for (NodeIndex i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kTerminalLevel) {
      ++population[nodes_[i].var];
    }
  }
  std::vector<std::uint32_t> order(numVars_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return population[a] > population[b];
            });
  std::uint64_t result = stats_.liveNodes;
  for (std::uint32_t var : order) {
    result = siftVariable(var);
  }
  return result;
}

}  // namespace cmc::bdd
