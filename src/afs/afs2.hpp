// AFS-2 case study (paper §4.3): one server and n clients with callbacks,
// updates, failures, and transmission delay modeled by time_i.
#pragma once

#include "comp/property.hpp"
#include "smv/elaborate.hpp"

namespace cmc::afs {

struct Afs2Components {
  smv::ElaboratedModule server;
  std::vector<smv::ElaboratedModule> clients;
  int numClients = 0;
};

/// Elaborate the AFS-2 server and n clients into `ctx`.
Afs2Components buildAfs2(symbolic::Context& ctx, int numClients,
                         bool reflexive = true);

/// I  =  ⋀ᵢ (Clientᵢ.belief ∈ {nofile, suspect} ∧ requestᵢ = null ∧
///           Server.beliefᵢ = nocall ∧ responseᵢ = null)      (§4.3.1).
ctl::FormulaPtr afs2Init(int numClients);

/// Invᵢ for one client (§4.3.1):
///   (Clientᵢ.belief = valid ⇒ (Server.beliefᵢ = valid ∨ ¬timeᵢ)) ∧
///   (responseᵢ = val ⇒ Server.beliefᵢ = valid).
ctl::FormulaPtr afs2InvariantFor(int clientIndex);

/// Inv = ⋀ᵢ Invᵢ.
ctl::FormulaPtr afs2Invariant(int numClients);

/// The body of (Afs1) for AFS-2, client i:
///   Clientᵢ.belief = valid ⇒ (Server.beliefᵢ = valid ∨ ¬timeᵢ).
ctl::FormulaPtr afs2TargetFor(int clientIndex);
ctl::FormulaPtr afs2Target(int numClients);

/// (Afs1) for AFS-2:  ⊨_(I,{true}) AG ⋀ᵢ targetᵢ.
ctl::Spec afs2SafetySpec(int numClients);

}  // namespace cmc::afs
