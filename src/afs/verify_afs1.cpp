#include "afs/verify_afs1.hpp"

#include "comp/leadsto.hpp"
#include "comp/rules.hpp"
#include "comp/verifier.hpp"
#include "symbolic/composition.hpp"

namespace cmc::afs {

namespace {

using ctl::FormulaPtr;

struct Regions {
  FormulaPtr nofile = ctl::eq("Client.belief", "nofile");
  FormulaPtr suspect = ctl::eq("Client.belief", "suspect");
  FormulaPtr cvalid = ctl::eq("Client.belief", "valid");
  FormulaPtr snone = ctl::eq("Server.belief", "none");
  FormulaPtr svalid = ctl::eq("Server.belief", "valid");
  FormulaPtr sinvalid = ctl::eq("Server.belief", "invalid");
  FormulaPtr rnull = ctl::eq("r", "null");
  FormulaPtr rfetch = ctl::eq("r", "fetch");
  FormulaPtr rvalidate = ctl::eq("r", "validate");
  FormulaPtr rval = ctl::eq("r", "val");
  FormulaPtr rinval = ctl::eq("r", "inval");
};

}  // namespace

Afs1Report verifyAfs1(bool crossCheck) {
  Afs1Report report;
  symbolic::Context ctx;
  Afs1Components comps = buildAfs1(ctx, /*reflexive=*/true);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(comps.server.sys);
  verifier.addComponent(comps.client.sys);

  // ---- Safety: (Afs1) via the invariance argument of §4.2.3 ----------------
  report.safety = verifier.verifyInvariance(afs1Init(), afs1Invariant(),
                                            afs1Target(), report.proof,
                                            "Afs1");

  // ---- Liveness: (Afs2) -----------------------------------------------------
  // Rule 4 is applied to the component *expansions* over the union alphabet
  // (Lemma 8 lifts the component premises over nonvisible variables).
  const Regions R;
  symbolic::SymbolicSystem serverExp =
      symbolic::expand(comps.server.sys, comps.client.sys.vars);
  serverExp.name = "server (expanded)";
  symbolic::SymbolicSystem clientExp =
      symbolic::expand(comps.client.sys, comps.server.sys.vars);
  clientExp.name = "client (expanded)";
  symbolic::Checker serverChecker(serverExp);
  symbolic::Checker clientChecker(clientExp);

  struct Step {
    const char* name;
    symbolic::Checker* component;  ///< who provides the EX premise
    FormulaPtr p;
    FormulaPtr q;
  };
  const FormulaPtr qValidate =
      ctl::mkAnd(R.suspect, ctl::mkOr(ctl::mkAnd(R.svalid, R.rval),
                                      ctl::mkAnd(R.sinvalid, R.rinval)));
  const std::vector<Step> steps = {
      // The fetch run: (nofile,null) -> (nofile,fetch) -> (nofile,val)
      // -> (valid,val)   [client, server, client — cf. Cli4 and Srv5].
      {"E.fetch.request", &clientChecker, ctl::mkAnd(R.nofile, R.rnull),
       ctl::mkAnd(R.nofile, R.rfetch)},
      {"E.fetch.serve", &serverChecker, ctl::mkAnd(R.nofile, R.rfetch),
       ctl::mkAnd(R.nofile, R.rval)},
      {"E.fetch.accept", &clientChecker, ctl::mkAnd(R.nofile, R.rval),
       ctl::mkAnd(R.cvalid, R.rval)},
      // The validate run: (suspect,null) -> (suspect,validate) ->
      // (suspect,val)|(suspect,inval) -> …   [Cli5 and Srv5].
      {"E.validate.request", &clientChecker,
       ctl::conj({R.suspect, R.rnull, R.snone}),
       ctl::conj({R.suspect, R.rvalidate, R.snone})},
      {"E.validate.serve", &serverChecker,
       ctl::conj({R.suspect, R.snone, R.rvalidate}), qValidate},
      {"E.validate.accept", &clientChecker, ctl::mkAnd(R.suspect, R.rval),
       ctl::mkAnd(R.cvalid, R.rval)},
      {"E.validate.discard", &clientChecker, ctl::mkAnd(R.suspect, R.rinval),
       ctl::mkAnd(R.nofile, R.rnull)},
  };

  comp::LeadsToLedger ledger(ctx, verifier.composed().vars, report.proof);
  std::vector<comp::LeadsToLedger::FactId> facts;
  bool liveness = true;
  for (const Step& step : steps) {
    std::optional<comp::Guarantee> g = comp::deriveRule4(
        *step.component, step.p, step.q, report.proof, step.name);
    if (!g.has_value()) {
      liveness = false;
      break;
    }
    std::vector<ctl::Spec> conclusions;
    if (!verifier.discharge(*g, report.proof, &conclusions)) {
      liveness = false;
      break;
    }
    // conclusions[0] is the A-until part: p => A[p U q].
    facts.push_back(ledger.fromAU(conclusions.at(0)));
  }

  ctl::Spec afs2Spec{"Afs2", ctl::Restriction::trivial(),
                     ctl::AF(afs1Goal())};
  if (liveness) {
    const FormulaPtr goal = afs1Goal();
    // nofile chain: request -> serve -> accept, then drop to the goal.
    const auto nofileChain =
        ledger.chain(ledger.chain(facts[0], facts[1]), facts[2]);
    const auto nofileToGoal = ledger.weakenRhs(nofileChain, goal);
    // suspect chain: request -> serve, then split on the server's answer.
    const auto suspectServe = ledger.chain(facts[3], facts[4]);
    const auto acceptToGoal = ledger.weakenRhs(facts[5], goal);
    const auto discardToGoal = ledger.chain(facts[6], nofileToGoal);
    const auto split = ledger.caseSplit(ledger.to(suspectServe), goal,
                                        {acceptToGoal, discardToGoal});
    const auto suspectToGoal = ledger.chain(suspectServe, split);
    // Initial states split into the two runs.
    const auto fromInit = ledger.caseSplit(afs1Init(), goal,
                                           {nofileToGoal, suspectToGoal});
    afs2Spec = ledger.concludeAF(fromInit, afs1Init(), "Afs2");
    liveness = ledger.valid();
  }
  report.liveness = liveness;
  report.componentChecks = report.proof.modelCheckCount();

  // ---- Cross-checks on the composed system ----------------------------------
  if (crossCheck) {
    symbolic::Checker composed(verifier.composed());
    const ctl::Spec afs1 = afs1SafetySpec();
    report.safetyCrossCheck = composed.holds(afs1.r, afs1.f);
    report.proof.add(comp::ProofNode::Kind::ModelCheck,
                     "cross-check: composed system |= (Afs1) directly",
                     report.safetyCrossCheck);
    if (liveness) {
      report.livenessCrossCheck = composed.holds(afs2Spec.r, afs2Spec.f);
      report.proof.add(comp::ProofNode::Kind::ModelCheck,
                       "cross-check: composed system |= (Afs2) directly "
                       "under the derived fairness",
                       report.livenessCrossCheck);
    }
  }
  return report;
}

}  // namespace cmc::afs
