#include "afs/afs1.hpp"

#include "afs/smv_sources.hpp"

namespace cmc::afs {

Afs1Components buildAfs1(symbolic::Context& ctx, bool reflexive) {
  Afs1Components out;
  out.server = smv::elaborateText(ctx, afs1ServerQualifiedSmv());
  out.client = smv::elaborateText(ctx, afs1ClientQualifiedSmv());
  if (reflexive) {
    symbolic::addReflexive(out.server.sys);
    symbolic::addReflexive(out.client.sys);
  }
  return out;
}

ctl::FormulaPtr afs1Init() {
  return ctl::conj({
      ctl::eq("Server.belief", "none"),
      ctl::mkOr(ctl::eq("Client.belief", "nofile"),
                ctl::eq("Client.belief", "suspect")),
      ctl::eq("r", "null"),
  });
}

ctl::FormulaPtr afs1Invariant() {
  return ctl::mkAnd(afs1Target(),
                    ctl::mkImplies(ctl::eq("r", "val"),
                                   ctl::eq("Server.belief", "valid")));
}

ctl::FormulaPtr afs1Target() {
  return ctl::mkImplies(ctl::eq("Client.belief", "valid"),
                        ctl::eq("Server.belief", "valid"));
}

ctl::Spec afs1SafetySpec() {
  ctl::Restriction r;
  r.init = afs1Init();
  r.fairness = {ctl::mkTrue()};
  return ctl::Spec{"Afs1", std::move(r), ctl::AG(afs1Target())};
}

ctl::FormulaPtr afs1Goal() { return ctl::eq("Client.belief", "valid"); }

}  // namespace cmc::afs
