#include "afs/smv_sources.hpp"

#include <sstream>

namespace cmc::afs {

// ---- AFS-1 server (Figures 5 and 6) -----------------------------------------

const std::string& afs1ServerSmv() {
  static const std::string text = R"(
-- SMV implementation of the server in the AFS-1 (Figure 5)
MODULE main
VAR
  belief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(belief) :=
    case
      (belief = none) & (r = fetch) : valid;
      (belief = invalid) & (r = fetch) : valid;
      (belief = none) & (r = validate) & validFile : valid;
      (belief = none) & (r = validate) & !validFile : invalid;
      1 : belief;
    esac;
  next(r) :=
    case
      (belief = none) & (r = fetch) : val;
      (belief = invalid) & (r = fetch) : val;
      (belief = none) & (r = validate) & validFile : val;
      (belief = none) & (r = validate) & !validFile : inval;
      (belief = valid) & (r = fetch) : val;
      1 : r;
    esac;

-- Specification of the server (Figure 6)
-- Srv1
SPEC (belief = valid) -> AX (belief = valid)
-- Srv2
SPEC (r = val -> belief = valid) -> AX (r = val -> belief = valid)
-- Srv3
SPEC (r = null -> AX r = null) & (r = val -> AX r = val) &
     (r = inval -> AX r = inval)
-- Srv4
SPEC (r = fetch -> AX (r = fetch | r = val)) &
     ((r = validate & belief = none) ->
        AX ((belief = none & r = validate) |
            (belief = valid & r = val) |
            (belief = invalid & r = inval)))
-- Srv5 (premise for Rule 4; the guarantees property itself cannot be
-- model checked, cf. section 4.2.4)
SPEC (r = fetch -> EX (r = val)) &
     ((r = validate & belief = none) ->
        EX ((belief = valid & r = val) | (belief = invalid & r = inval)))
)";
  return text;
}

// ---- AFS-1 client (Figures 8 and 9) -----------------------------------------

const std::string& afs1ClientSmv() {
  static const std::string text = R"(
-- SMV implementation of the client in the AFS-1 (Figure 8)
MODULE main
VAR
  r : {null, fetch, validate, val, inval};
  belief : {valid, suspect, nofile};
ASSIGN
  next(belief) :=
    case
      (belief = nofile) & (r = val) : valid;
      (belief = suspect) & (r = val) : valid;
      (belief = suspect) & (r = inval) : nofile;
      1 : belief;
    esac;
  next(r) :=
    case
      (belief = nofile) & (r = null) : fetch;
      (belief = suspect) & (r = null) : validate;
      (belief = suspect) & (r = inval) : null;
      1 : r;
    esac;

-- Specification of the client (Figure 9)
-- Cli1
SPEC (belief != valid & r != val) -> AX (belief != valid & r != val)
-- Cli2
SPEC r = fetch -> AX r = fetch
SPEC r = validate -> AX r = validate
-- Cli3
SPEC ((belief = nofile & r = null) ->
        AX ((belief = nofile & r = null) | (belief = nofile & r = fetch))) &
     ((belief = nofile & r = fetch) ->
        AX ((belief = nofile & r = fetch) | (belief = nofile & r = val))) &
     ((belief = nofile & r = val) ->
        AX ((belief = nofile & r = val) | (belief = valid & r = val))) &
     ((belief = suspect & r = null) ->
        AX ((belief = suspect & r = null) | (belief = suspect & r = validate))) &
     ((belief = suspect & r = val) ->
        AX ((belief = suspect & r = val) | (belief = valid & r = val))) &
     ((belief = suspect & r = inval) ->
        AX ((belief = suspect & r = inval) | (belief = nofile & r = null)))
-- Cli4 (premise)
SPEC ((belief = nofile & r = null) -> EX (belief = nofile & r = fetch)) &
     ((belief = nofile & r = val) -> EX (belief = valid & r = val))
-- Cli5 (premise)
SPEC ((belief = suspect & r = null) -> EX (belief = suspect & r = validate)) &
     ((belief = suspect & r = val) -> EX (belief = valid & r = val)) &
     ((belief = suspect & r = inval) -> EX (belief = nofile & r = null))
)";
  return text;
}

// ---- AFS-1 composition-ready variants ----------------------------------------

const std::string& afs1ServerQualifiedSmv() {
  static const std::string text = R"(
-- AFS-1 server with qualified names for composition (section 4.2.3)
MODULE afs1server
VAR
  Server.belief : {none, invalid, valid};
  r : {null, fetch, validate, val, inval};
  validFile : boolean;
ASSIGN
  next(validFile) := validFile;
  next(Server.belief) :=
    case
      (Server.belief = none) & (r = fetch) : valid;
      (Server.belief = invalid) & (r = fetch) : valid;
      (Server.belief = none) & (r = validate) & validFile : valid;
      (Server.belief = none) & (r = validate) & !validFile : invalid;
      1 : Server.belief;
    esac;
  next(r) :=
    case
      (Server.belief = none) & (r = fetch) : val;
      (Server.belief = invalid) & (r = fetch) : val;
      (Server.belief = none) & (r = validate) & validFile : val;
      (Server.belief = none) & (r = validate) & !validFile : inval;
      (Server.belief = valid) & (r = fetch) : val;
      1 : r;
    esac;
INIT Server.belief = none
)";
  return text;
}

const std::string& afs1ClientQualifiedSmv() {
  static const std::string text = R"(
-- AFS-1 client with qualified names for composition (section 4.2.3)
MODULE afs1client
VAR
  r : {null, fetch, validate, val, inval};
  Client.belief : {valid, suspect, nofile};
ASSIGN
  next(Client.belief) :=
    case
      (Client.belief = nofile) & (r = val) : valid;
      (Client.belief = suspect) & (r = val) : valid;
      (Client.belief = suspect) & (r = inval) : nofile;
      1 : Client.belief;
    esac;
  next(r) :=
    case
      (Client.belief = nofile) & (r = null) : fetch;
      (Client.belief = suspect) & (r = null) : validate;
      (Client.belief = suspect) & (r = inval) : null;
      1 : r;
    esac;
INIT (Client.belief = nofile | Client.belief = suspect) & r = null
)";
  return text;
}

// ---- AFS-2 (Figures 12-17), generalized to n clients -------------------------

namespace {

/// OR of `request<j> = update` over all clients j != i; empty for n = 1.
std::string updateFromOthers(int i, int n) {
  std::ostringstream out;
  bool first = true;
  for (int j = 1; j <= n; ++j) {
    if (j == i) continue;
    if (!first) out << " | ";
    first = false;
    out << "(request" << j << " = update)";
  }
  return out.str();
}

}  // namespace

std::string afs2ServerSmv(int numClients) {
  std::ostringstream out;
  out << "-- AFS-2 server (Figure 12 generalized to " << numClients
      << " clients)\n";
  out << "MODULE afs2server\n";
  out << "VAR\n";
  out << "  failure : boolean;\n";
  for (int i = 1; i <= numClients; ++i) {
    out << "  Server.belief" << i << " : {nocall, valid};\n";
    out << "  response" << i << " : {null, val, inval};\n";
    out << "  time" << i << " : boolean;\n";
    out << "  validFile" << i << " : boolean;\n";
    out << "  request" << i << " : {null, fetch, validate, update};\n";
  }
  out << "ASSIGN\n";
  for (int i = 1; i <= numClients; ++i) {
    const std::string update = updateFromOthers(i, numClients);
    out << "  next(validFile" << i << ") := validFile" << i << ";\n";
    // The server only reads requests; pin them (see header note).
    out << "  next(request" << i << ") := request" << i << ";\n";
    out << "  next(Server.belief" << i << ") :=\n    case\n";
    out << "      failure : nocall;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = fetch) : valid;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = validate) & validFile" << i << " : valid;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = validate) & !validFile" << i << " : nocall;\n";
    if (!update.empty()) {
      out << "      (Server.belief" << i << " = valid) & (" << update
          << ") : nocall;\n";
    }
    out << "      1 : Server.belief" << i << ";\n    esac;\n";
    out << "  next(response" << i << ") :=\n    case\n";
    out << "      failure : null;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = fetch) : val;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = validate) & validFile" << i << " : val;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = validate) & !validFile" << i << " : inval;\n";
    if (!update.empty()) {
      out << "      (Server.belief" << i << " = valid) & (" << update
          << ") : inval;\n";
    }
    out << "      1 : response" << i << ";\n    esac;\n";
    out << "  next(time" << i << ") :=\n    case\n";
    out << "      failure : 0;\n";
    out << "      (Server.belief" << i << " = nocall) & (request" << i
        << " = validate) & !validFile" << i << " : 0;\n";
    if (!update.empty()) {
      out << "      (Server.belief" << i << " = valid) & (" << update
          << ") : 0;\n";
    }
    out << "      1 : time" << i << ";\n    esac;\n";
  }
  out << "\n-- Specification of the server (Figure 14)\n";
  for (int i = 1; i <= numClients; ++i) {
    out << "-- Srv1 for client " << i << "\n";
    out << "SPEC ((Server.belief" << i << " = valid) | !time" << i
        << ") -> AX ((Server.belief" << i << " = valid) | !time" << i
        << ")\n";
    out << "-- Srv2 for client " << i << "\n";
    out << "SPEC (response" << i << " = val -> Server.belief" << i
        << " = valid) -> AX (response" << i << " = val -> Server.belief" << i
        << " = valid)\n";
  }
  return out.str();
}

std::string afs2ClientSmv(int clientIndex) {
  const std::string i = std::to_string(clientIndex);
  std::ostringstream out;
  out << "-- AFS-2 client " << i << " (Figure 13)\n";
  out << "MODULE afs2client" << i << "\n";
  out << "VAR\n";
  out << "  time" << i << " : boolean;\n";
  out << "  request" << i << " : {null, fetch, validate, update};\n";
  out << "  Client" << i << ".belief : {valid, suspect, nofile};\n";
  out << "  response" << i << " : {null, val, inval};\n";
  out << "  failure : boolean;\n";
  out << "ASSIGN\n";
  out << "  next(Client" << i << ".belief) :=\n    case\n";
  out << "      (Client" << i << ".belief = nofile) & (response" << i
      << " = val) : valid;\n";
  out << "      (Client" << i << ".belief = suspect) & (response" << i
      << " = val) : valid;\n";
  out << "      (Client" << i << ".belief = suspect) & (response" << i
      << " = inval) : nofile;\n";
  out << "      (Client" << i << ".belief = valid) & failure : suspect;\n";
  out << "      (Client" << i << ".belief = valid) & (response" << i
      << " = inval) : nofile;\n";
  out << "      1 : Client" << i << ".belief;\n    esac;\n";
  out << "  next(request" << i << ") :=\n    case\n";
  out << "      (Client" << i << ".belief = nofile) & (response" << i
      << " = null) : {fetch, null};\n";
  out << "      (Client" << i << ".belief = suspect) & (response" << i
      << " = null) : {validate, null};\n";
  out << "      (Client" << i << ".belief = valid) & failure : null;\n";
  out << "      (Client" << i << ".belief = valid) & (response" << i
      << " = inval) : null;\n";
  out << "      (Client" << i << ".belief = valid) & (response" << i
      << " != inval) : update;\n";
  out << "      1 : request" << i << ";\n    esac;\n";
  out << "  next(time" << i << ") :=\n    case\n";
  out << "      (Client" << i << ".belief = nofile) & (response" << i
      << " = val) : 1;\n";
  out << "      (Client" << i << ".belief = suspect) & (response" << i
      << " = val) : 1;\n";
  out << "      (Client" << i << ".belief = suspect) & (response" << i
      << " = inval) : 1;\n";
  out << "      (Client" << i << ".belief = valid) & failure : 1;\n";
  out << "      (Client" << i << ".belief = valid) & (response" << i
      << " = inval) : 1;\n";
  out << "      1 : time" << i << ";\n    esac;\n";
  // The client only reads the server's response; pin it (header note).
  out << "  next(response" << i << ") := response" << i << ";\n";
  out << "\n-- Specification of the client (Figure 16)\n";
  out << "-- Cli1 for client " << i << "\n";
  out << "SPEC ((Client" << i << ".belief = valid -> !time" << i
      << ") & response" << i << " != val) ->\n"
      << "     AX ((Client" << i << ".belief = valid -> !time" << i
      << ") & response" << i << " != val)\n";
  return out.str();
}

}  // namespace cmc::afs
