// The paper's SMV listings (Figures 5, 6, 8, 9, 12, 13, 14, 16), cleaned
// from the OCR'd technical report, plus composition-ready variants with
// qualified variable names (the §4.2 discussion uses Server.belief and
// Client.belief; the figures reuse `belief` because each component is
// checked in isolation).
//
// Deliberate corrections to the figures, each justified by the paper's
// prose (the formal development in §4 is the source of truth; the listings
// are OCR-damaged):
//  - conjunctions of implications are parenthesized (SMV's precedence would
//    otherwise parse `a -> AX a & b -> AX b` as a nested implication);
//  - AFS-2: the client's shared variable `response` is pinned with
//    `next(response) := response` — the client only reads it.  Cli1
//    ("the client does not change its belief to valid if the server's
//    response is not val", §4.2.2/§4.3.3) is false for a client that can
//    scramble the response.  The same holds for the server and `request_i`.
#pragma once

#include <string>
#include <vector>

namespace cmc::afs {

// ---- AFS-1 (Figures 5-10) ---------------------------------------------------

/// Figure 5 + Figure 6: the server model with specs Srv1-Srv5.
const std::string& afs1ServerSmv();
/// Figure 8 + Figure 9: the client model with specs Cli1-Cli5.
const std::string& afs1ClientSmv();

/// Composition-ready AFS-1 server: `belief` renamed Server.belief,
/// shared `r`, plus the initial condition of (Afs1).
const std::string& afs1ServerQualifiedSmv();
/// Composition-ready AFS-1 client: `belief` renamed Client.belief.
const std::string& afs1ClientQualifiedSmv();

// ---- AFS-2 (Figures 12-17) --------------------------------------------------

/// Figure 12 + Figure 14 generalized to n clients: per-client variables
/// Server.belief<i>, response<i>, time<i>, validFile<i>; shared request<i>;
/// free input `failure`.  n = 1 reproduces the figure (modulo the explicit
/// second client the figure references).
std::string afs2ServerSmv(int numClients);

/// Figure 13 + Figure 16 for client `i` of `n`: variables Client<i>.belief,
/// request<i>, time<i>; reads response<i> and failure.
std::string afs2ClientSmv(int clientIndex);

}  // namespace cmc::afs
