// Mechanized version of the paper's §4.2.3 composition argument for AFS-1:
//  - safety (Afs1) via the invariance rule over the invariant Inv;
//  - liveness (Afs2) via seven Rule-4 guarantees (one per protocol step,
//    applied to component *expansions* as licensed by Lemma 8), discharged
//    compositionally, then chained with the leads-to ledger.
// Every step lands in the returned proof tree; optional cross-checks verify
// the conclusions directly on the composed system.
#pragma once

#include "afs/afs1.hpp"
#include "comp/proof.hpp"

namespace cmc::afs {

struct Afs1Report {
  comp::ProofTree proof;
  bool safety = false;    ///< (Afs1) derived compositionally
  bool liveness = false;  ///< (Afs2) derived compositionally
  bool safetyCrossCheck = false;    ///< (Afs1) re-checked globally
  bool livenessCrossCheck = false;  ///< (Afs2) re-checked globally
  std::size_t componentChecks = 0;  ///< per-component obligations discharged

  bool allOk() const {
    return safety && liveness && proof.valid();
  }
};

/// Run the full AFS-1 verification.  `crossCheck` additionally model checks
/// the two conclusions on the composed system (non-compositional; used to
/// validate the deduction machinery itself).
Afs1Report verifyAfs1(bool crossCheck = true);

}  // namespace cmc::afs
