#include "afs/verify_afs2.hpp"

#include "comp/verifier.hpp"
#include "symbolic/checker.hpp"

namespace cmc::afs {

Afs2Report verifyAfs2(int numClients, bool crossCheck) {
  Afs2Report report;
  report.numClients = numClients;

  symbolic::Context ctx(1 << 14);
  Afs2Components comps = buildAfs2(ctx, numClients, /*reflexive=*/true);

  comp::CompositionalVerifier verifier(ctx);
  verifier.addComponent(comps.server.sys);
  for (const smv::ElaboratedModule& client : comps.clients) {
    verifier.addComponent(client.sys);
  }

  report.safety = verifier.verifyInvariance(
      afs2Init(numClients), afs2Invariant(numClients),
      afs2Target(numClients), report.proof, "Afs1'");
  report.componentChecks = report.proof.modelCheckCount();

  if (crossCheck) {
    symbolic::Checker composed(verifier.composed());
    const ctl::Spec spec = afs2SafetySpec(numClients);
    report.safetyCrossCheck = composed.holds(spec.r, spec.f);
    report.proof.add(comp::ProofNode::Kind::ModelCheck,
                     "cross-check: composed AFS-2 |= (Afs1') directly",
                     report.safetyCrossCheck);
  }
  return report;
}

}  // namespace cmc::afs
