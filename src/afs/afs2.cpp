#include "afs/afs2.hpp"

#include "afs/smv_sources.hpp"

namespace cmc::afs {

namespace {

std::string idx(const char* base, int i) {
  return std::string(base) + std::to_string(i);
}

}  // namespace

Afs2Components buildAfs2(symbolic::Context& ctx, int numClients,
                         bool reflexive) {
  if (numClients < 1) {
    throw ModelError("AFS-2 needs at least one client");
  }
  Afs2Components out;
  out.numClients = numClients;
  out.server = smv::elaborateText(ctx, afs2ServerSmv(numClients));
  if (reflexive) symbolic::addReflexive(out.server.sys);
  for (int i = 1; i <= numClients; ++i) {
    out.clients.push_back(smv::elaborateText(ctx, afs2ClientSmv(i)));
    if (reflexive) symbolic::addReflexive(out.clients.back().sys);
  }
  return out;
}

ctl::FormulaPtr afs2Init(int numClients) {
  std::vector<ctl::FormulaPtr> parts;
  for (int i = 1; i <= numClients; ++i) {
    parts.push_back(ctl::mkOr(ctl::eq(idx("Client", i) + ".belief", "nofile"),
                              ctl::eq(idx("Client", i) + ".belief",
                                      "suspect")));
    parts.push_back(ctl::eq(idx("request", i), "null"));
    parts.push_back(ctl::eq(idx("Server.belief", i), "nocall"));
    parts.push_back(ctl::eq(idx("response", i), "null"));
  }
  return ctl::conj(parts);
}

ctl::FormulaPtr afs2InvariantFor(int clientIndex) {
  return ctl::mkAnd(
      afs2TargetFor(clientIndex),
      ctl::mkImplies(ctl::eq(idx("response", clientIndex), "val"),
                     ctl::eq(idx("Server.belief", clientIndex), "valid")));
}

ctl::FormulaPtr afs2Invariant(int numClients) {
  std::vector<ctl::FormulaPtr> parts;
  for (int i = 1; i <= numClients; ++i) {
    parts.push_back(afs2InvariantFor(i));
  }
  return ctl::conj(parts);
}

ctl::FormulaPtr afs2TargetFor(int clientIndex) {
  return ctl::mkImplies(
      ctl::eq(idx("Client", clientIndex) + ".belief", "valid"),
      ctl::mkOr(ctl::eq(idx("Server.belief", clientIndex), "valid"),
                ctl::mkNot(ctl::atom(idx("time", clientIndex)))));
}

ctl::FormulaPtr afs2Target(int numClients) {
  std::vector<ctl::FormulaPtr> parts;
  for (int i = 1; i <= numClients; ++i) {
    parts.push_back(afs2TargetFor(i));
  }
  return ctl::conj(parts);
}

ctl::Spec afs2SafetySpec(int numClients) {
  ctl::Restriction r;
  r.init = afs2Init(numClients);
  r.fairness = {ctl::mkTrue()};
  return ctl::Spec{"Afs2.Afs1", std::move(r),
                   ctl::AG(afs2Target(numClients))};
}

}  // namespace cmc::afs
