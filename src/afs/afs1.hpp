// AFS-1 case study (paper §4.1-4.2): builders for the server/client
// components and the system-level specifications (Afs1) and (Afs2).
#pragma once

#include "comp/property.hpp"
#include "smv/elaborate.hpp"

namespace cmc::afs {

struct Afs1Components {
  smv::ElaboratedModule server;  ///< qualified names, shared `r`
  smv::ElaboratedModule client;
};

/// Elaborate the composition-ready AFS-1 components into `ctx`.  When
/// `reflexive`, the components are closed under stuttering (the theory's
/// standing assumption, §2.1); the figure-faithful component checks in the
/// bench use the raw models instead.
Afs1Components buildAfs1(symbolic::Context& ctx, bool reflexive = true);

/// I  =  Server.belief = none ∧ (Client.belief = nofile ∨ suspect) ∧ r = null.
ctl::FormulaPtr afs1Init();

/// Inv  =  (Client.belief = valid ⇒ Server.belief = valid)
///       ∧ (r = val ⇒ Server.belief = valid)        (§4.2.3).
ctl::FormulaPtr afs1Invariant();

/// Client.belief = valid ⇒ Server.belief = valid  (the body of (Afs1)).
ctl::FormulaPtr afs1Target();

/// (Afs1):  ⊨_(I,{true}) AG(Client.belief = valid ⇒ Server.belief = valid).
ctl::Spec afs1SafetySpec();

/// Client.belief = valid (the goal region of (Afs2)).
ctl::FormulaPtr afs1Goal();

}  // namespace cmc::afs
