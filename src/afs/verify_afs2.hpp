// Mechanized version of §4.3.4: the AFS-2 safety property (Afs1') for one
// server and n clients, derived with the invariance rule — every obligation
// is a per-component check, so the obligation count grows linearly in n
// (the §5 claim; bench_scaling quantifies it against the monolithic check).
#pragma once

#include "afs/afs2.hpp"
#include "comp/proof.hpp"

namespace cmc::afs {

struct Afs2Report {
  comp::ProofTree proof;
  int numClients = 0;
  bool safety = false;              ///< (Afs1') derived compositionally
  bool safetyCrossCheck = false;    ///< re-checked globally (small n only)
  std::size_t componentChecks = 0;  ///< per-component obligations

  bool allOk() const { return safety && proof.valid(); }
};

/// Verify AFS-2 with `numClients` clients.  `crossCheck` re-checks the
/// conclusion on the composed system (exponential; keep n small).
Afs2Report verifyAfs2(int numClients, bool crossCheck = false);

}  // namespace cmc::afs
