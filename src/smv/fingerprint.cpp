#include "smv/fingerprint.hpp"

#include <sstream>
#include <unordered_map>

#include "ctl/formula.hpp"

namespace cmc::smv {

namespace {

/// Serialize f's DAG into `out`.  Nodes are numbered in first-visit order
/// (shared across all conjuncts of one module serialization, so shared
/// subgraphs are emitted once); a first visit appends the definition
/// "(<label> <low> <high>)", a revisit appends "#<id>".  Terminals are "0"
/// and "1".  The numbering is deterministic because the conjunct order and
/// each node's child order are.
class BddSerializer {
 public:
  BddSerializer(const bdd::Manager& mgr, std::vector<std::string> names)
      : mgr_(mgr), names_(std::move(names)) {}

  void serialize(const bdd::Bdd& f, std::ostream& out) {
    if (f.isNull()) {
      out << "null";
      return;
    }
    rec(f.index(), out);
  }

 private:
  void rec(bdd::NodeIndex i, std::ostream& out) {
    if (i == bdd::kFalseNode || i == bdd::kTrueNode) {
      out << (i == bdd::kTrueNode ? '1' : '0');
      return;
    }
    const auto it = ids_.find(i);
    if (it != ids_.end()) {
      out << '#' << it->second;
      return;
    }
    const int id = static_cast<int>(ids_.size());
    ids_.emplace(i, id);
    const bdd::Manager::Node& n = mgr_.node(i);
    out << '(';
    if (n.var < names_.size() && !names_[n.var].empty()) {
      out << names_[n.var];
    } else {
      out << 'x' << n.var;
    }
    out << ' ';
    rec(n.low, out);
    out << ' ';
    rec(n.high, out);
    out << ')';
  }

  const bdd::Manager& mgr_;
  std::vector<std::string> names_;
  std::unordered_map<bdd::NodeIndex, int> ids_;
};

}  // namespace

std::string canonicalModule(const symbolic::Context& ctx,
                            const ElaboratedModule& m) {
  std::ostringstream out;

  out << "vars{";
  for (symbolic::VarId id : m.sys.vars) {
    const symbolic::Variable& v = ctx.variable(id);
    out << v.name << ':';
    for (std::size_t k = 0; k < v.values.size(); ++k) {
      out << (k == 0 ? '{' : ',') << v.values[k];
    }
    out << "};";
  }
  out << "}\n";

  out << "init{"
      << (m.initFormula != nullptr ? ctl::toString(m.initFormula) : "TRUE")
      << "}\n";

  out << "fair{";
  for (const ctl::FormulaPtr& f : m.fairness) {
    out << ctl::toString(f) << ';';
  }
  out << "}\n";

  // Transition relation: every track, every conjunct, in order, with the
  // frame tagging that decides the checker's substitution-based preimage.
  BddSerializer ser(ctx.mgr(), ctx.bddVarNames());
  out << "trans{";
  for (const symbolic::PartitionedRelation& track : m.sys.partition.tracks) {
    out << "track" << (track.frameOnly() ? "[stutter]" : "") << '{';
    for (const symbolic::Conjunct& c : track.conjuncts()) {
      out << (c.isFrame ? "frame:" : "rel:");
      ser.serialize(c.rel, out);
      out << ';';
    }
    out << '}';
  }
  out << "}\n";
  return out.str();
}

}  // namespace cmc::smv
