#include "smv/elaborate.hpp"

#include <map>
#include <set>

#include "smv/parser.hpp"
#include "util/failpoint.hpp"

namespace cmc::smv {

using symbolic::Context;
using symbolic::VarId;

namespace {

class Elaborator {
 public:
  Elaborator(Context& ctx, const Module& mod) : ctx_(ctx), mod_(mod) {
    for (const Define& d : mod.defines) {
      if (mod.findVar(d.name) != nullptr) {
        throw ModelError("'" + d.name + "' is both a VAR and a DEFINE");
      }
      if (!defines_.emplace(d.name, d.expr).second) {
        throw ModelError("duplicate DEFINE: " + d.name);
      }
    }
  }

  ElaboratedModule run() {
    declareVariables();

    // One relation conjunct per variable (its next() assignment) plus one
    // per TRANS constraint, kept as a list: makeSystem stores them as a
    // conjunctively partitioned track, so the checker's early-quantification
    // schedule sees per-variable structure instead of one conjoined BDD.
    std::vector<bdd::Bdd> conjuncts;
    std::set<std::string> nextAssigned;
    std::set<std::string> initAssigned;
    for (const Assign& a : mod_.assigns) {
      if (mod_.findVar(a.var) == nullptr) {
        throw ModelError("assignment to undeclared variable: " + a.var);
      }
      auto& seen =
          a.kind == Assign::Kind::Next ? nextAssigned : initAssigned;
      if (!seen.insert(a.var).second) {
        throw ModelError("duplicate assignment to " + a.var);
      }
      if (a.kind == Assign::Kind::Next) {
        conjuncts.push_back(
            assignRelation(ctx_.varId(a.var), /*targetNext=*/true, a.expr));
      }
    }
    // TRANS constraints (may mention next()).
    for (const ExprPtr& t : mod_.transConstraints) {
      conjuncts.push_back(boolBdd(t, /*allowNext=*/true));
    }

    ElaboratedModule out;
    out.sys = symbolic::makeSystem(ctx_, mod_.name, varIds_,
                                   std::move(conjuncts));

    // Initial condition as a formula (restriction index, paper §2.2).
    std::vector<ctl::FormulaPtr> initParts;
    for (const Assign& a : mod_.assigns) {
      if (a.kind == Assign::Kind::Init) {
        initParts.push_back(initFormulaFor(a.var, a.expr));
      }
    }
    for (const ExprPtr& c : mod_.initConstraints) {
      initParts.push_back(exprToCtlRec(c));
    }
    out.initFormula = initParts.empty() ? ctl::mkTrue() : ctl::conj(initParts);

    out.fairness = mod_.fairness;

    ctl::Restriction r;
    r.init = out.initFormula;
    r.fairness = out.fairness.empty()
                     ? std::vector<ctl::FormulaPtr>{ctl::mkTrue()}
                     : out.fairness;
    for (std::size_t i = 0; i < mod_.specs.size(); ++i) {
      out.specs.push_back(ctl::Spec{
          mod_.name + ".SPEC" + std::to_string(i + 1), r, mod_.specs[i]});
    }
    return out;
  }

  ctl::FormulaPtr exprToCtlPublic(const ExprPtr& e) { return exprToCtlRec(e); }

 private:
  // ---- Declarations -------------------------------------------------------

  void declareVariables() {
    for (const VarDecl& v : mod_.vars) {
      const std::vector<std::string> values = v.type.expandedValues();
      if (ctx_.hasVar(v.name)) {
        // Shared variable: domains must agree exactly.
        const symbolic::Variable& existing =
            ctx_.variable(ctx_.varId(v.name));
        if (existing.values != values) {
          throw ModelError("shared variable '" + v.name +
                           "' redeclared with a different domain");
        }
        varIds_.push_back(ctx_.varId(v.name));
      } else if (v.type.kind == TypeDecl::Kind::Bool) {
        varIds_.push_back(ctx_.addBoolVar(v.name));
      } else {
        varIds_.push_back(ctx_.addEnumVar(v.name, values));
      }
    }
  }

  // ---- Define expansion ---------------------------------------------------

  const ExprPtr* lookupDefine(const std::string& name) {
    auto it = defines_.find(name);
    return it == defines_.end() ? nullptr : &it->second;
  }

  /// Guard against recursive DEFINEs while expanding `name`.
  class ExpandGuard {
   public:
    ExpandGuard(std::set<std::string>& active, const std::string& name)
        : active_(active), name_(name) {
      if (!active_.insert(name).second) {
        throw ModelError("recursive DEFINE: " + name);
      }
    }
    ~ExpandGuard() { active_.erase(name_); }

   private:
    std::set<std::string>& active_;
    std::string name_;
  };

  // ---- Terms --------------------------------------------------------------

  struct Term {
    bool isVar = false;
    VarId var = -1;
    bool next = false;
    std::string literal;  ///< when !isVar
  };

  /// Classify an equality operand.  Defines are expanded first; an
  /// identifier that is not a variable or define is an enum literal.
  Term termOf(const ExprPtr& e, bool allowNext) {
    switch (e->kind) {
      case ExprKind::Value:
        return Term{false, -1, false, e->text};
      case ExprKind::VarRef: {
        if (const ExprPtr* def = lookupDefine(e->text)) {
          ExpandGuard guard(expanding_, e->text);
          return termOf(*def, allowNext);
        }
        if (mod_.findVar(e->text) != nullptr) {
          return Term{true, ctx_.varId(e->text), false, {}};
        }
        return Term{false, -1, false, e->text};
      }
      case ExprKind::NextRef: {
        if (!allowNext) {
          throw ModelError("next(" + e->text +
                           ") is only allowed in TRANS constraints");
        }
        if (mod_.findVar(e->text) == nullptr) {
          throw ModelError("next() of undeclared variable: " + e->text);
        }
        return Term{true, ctx_.varId(e->text), true, {}};
      }
      default:
        throw ModelError(
            "expected a variable or value in comparison, got: " +
            toString(e));
    }
  }

  bdd::Bdd eqBdd(const Term& a, const Term& b) {
    bdd::Manager& mgr = ctx_.mgr();
    if (a.isVar && b.isVar) {
      const symbolic::Variable& va = ctx_.variable(a.var);
      const symbolic::Variable& vb = ctx_.variable(b.var);
      bdd::Bdd acc = mgr.bddFalse();
      for (const std::string& val : va.values) {
        if (!vb.hasValue(val)) continue;
        acc |= ctx_.varEq(a.var, val, a.next) & ctx_.varEq(b.var, val, b.next);
      }
      return acc;
    }
    if (a.isVar || b.isVar) {
      const Term& var = a.isVar ? a : b;
      const Term& lit = a.isVar ? b : a;
      const symbolic::Variable& v = ctx_.variable(var.var);
      if (!v.hasValue(lit.literal)) {
        throw ModelError("variable '" + v.name + "' has no value '" +
                         lit.literal + "'");
      }
      return ctx_.varEq(var.var, lit.literal, var.next);
    }
    return a.literal == b.literal ? mgr.bddTrue() : mgr.bddFalse();
  }

  // ---- Boolean expressions ------------------------------------------------

  bdd::Bdd boolBdd(const ExprPtr& e, bool allowNext) {
    bdd::Manager& mgr = ctx_.mgr();
    switch (e->kind) {
      case ExprKind::Value:
        if (e->text == "1" || e->text == "TRUE") return mgr.bddTrue();
        if (e->text == "0" || e->text == "FALSE") return mgr.bddFalse();
        throw ModelError("'" + e->text + "' is not a boolean value");
      case ExprKind::VarRef: {
        if (const ExprPtr* def = lookupDefine(e->text)) {
          ExpandGuard guard(expanding_, e->text);
          return boolBdd(*def, allowNext);
        }
        if (mod_.findVar(e->text) == nullptr) {
          throw ModelError("unknown identifier in boolean context: " +
                           e->text);
        }
        const VarId id = ctx_.varId(e->text);
        if (!ctx_.variable(id).isBool) {
          throw ModelError("variable '" + e->text +
                           "' is not boolean; compare it with '='");
        }
        return ctx_.varEqIndex(id, 1, false);
      }
      case ExprKind::NextRef: {
        if (!allowNext) {
          throw ModelError("next(" + e->text +
                           ") is only allowed in TRANS constraints");
        }
        const VarId id = ctx_.varId(e->text);
        if (!ctx_.variable(id).isBool) {
          throw ModelError("next(" + e->text +
                           ") of non-boolean variable in boolean context");
        }
        return ctx_.varEqIndex(id, 1, true);
      }
      case ExprKind::Not:
        return !boolBdd(e->args[0], allowNext);
      case ExprKind::And:
        return boolBdd(e->args[0], allowNext) & boolBdd(e->args[1], allowNext);
      case ExprKind::Or:
        return boolBdd(e->args[0], allowNext) | boolBdd(e->args[1], allowNext);
      case ExprKind::Implies:
        return boolBdd(e->args[0], allowNext)
            .implies(boolBdd(e->args[1], allowNext));
      case ExprKind::Iff:
        return boolBdd(e->args[0], allowNext)
            .iff(boolBdd(e->args[1], allowNext));
      case ExprKind::Eq:
        return eqBdd(termOf(e->args[0], allowNext),
                     termOf(e->args[1], allowNext));
      case ExprKind::Neq:
        return !eqBdd(termOf(e->args[0], allowNext),
                      termOf(e->args[1], allowNext));
      case ExprKind::Case: {
        // Boolean-valued case; must be exhaustive (use a `1 :` default).
        bdd::Bdd pending = mgr.bddTrue();
        bdd::Bdd acc = mgr.bddFalse();
        for (const CaseBranch& b : e->branches) {
          const bdd::Bdd guard = boolBdd(b.cond, allowNext) & pending;
          acc |= guard & boolBdd(b.value, allowNext);
          pending = pending.diff(guard);
        }
        if (!pending.isFalse()) {
          throw ModelError(
              "boolean case expression is not exhaustive; add a '1 :' "
              "default branch");
        }
        return acc;
      }
      case ExprKind::SetLiteral:
        throw ModelError("set literal in boolean context: " + toString(e));
    }
    throw Error("boolBdd: unreachable");
  }

  // ---- Assignment relations -----------------------------------------------

  /// Relation over (current state, target column of `target`) stating
  /// "target takes one of the values of `e` evaluated now".
  bdd::Bdd assignRelation(VarId target, bool targetNext, const ExprPtr& e) {
    bdd::Manager& mgr = ctx_.mgr();
    const symbolic::Variable& tv = ctx_.variable(target);
    switch (e->kind) {
      case ExprKind::Value: {
        if (!tv.hasValue(e->text)) {
          throw ModelError("variable '" + tv.name + "' has no value '" +
                           e->text + "'");
        }
        return ctx_.varEq(target, e->text, targetNext);
      }
      case ExprKind::VarRef: {
        if (const ExprPtr* def = lookupDefine(e->text)) {
          ExpandGuard guard(expanding_, e->text);
          return assignRelation(target, targetNext, *def);
        }
        if (mod_.findVar(e->text) != nullptr) {
          // Copy: target' = source (over the source's domain).
          const VarId source = ctx_.varId(e->text);
          const symbolic::Variable& sv = ctx_.variable(source);
          bdd::Bdd acc = mgr.bddFalse();
          for (const std::string& val : sv.values) {
            if (!tv.hasValue(val)) {
              throw ModelError("assigning '" + sv.name + "' to '" + tv.name +
                               "': value '" + val +
                               "' is outside the target's domain");
            }
            acc |= ctx_.varEq(source, val, false) &
                   ctx_.varEq(target, val, targetNext);
          }
          return acc;
        }
        // Enum literal.
        if (!tv.hasValue(e->text)) {
          throw ModelError("variable '" + tv.name + "' has no value '" +
                           e->text + "'");
        }
        return ctx_.varEq(target, e->text, targetNext);
      }
      case ExprKind::SetLiteral: {
        bdd::Bdd acc = mgr.bddFalse();
        for (const ExprPtr& elem : e->args) {
          acc |= assignRelation(target, targetNext, elem);
        }
        return acc;
      }
      case ExprKind::Case: {
        bdd::Bdd pending = mgr.bddTrue();
        bdd::Bdd acc = mgr.bddFalse();
        for (const CaseBranch& b : e->branches) {
          const bdd::Bdd guard = boolBdd(b.cond, /*allowNext=*/false) & pending;
          acc |= guard & assignRelation(target, targetNext, b.value);
          pending = pending.diff(guard);
        }
        // Falling through every branch leaves the target unconstrained.
        acc |= pending & ctx_.domain(target, targetNext);
        return acc;
      }
      default: {
        // Boolean-valued expression assigned to a boolean variable.
        if (!tv.isBool) {
          throw ModelError("boolean expression assigned to non-boolean '" +
                           tv.name + "'");
        }
        const bdd::Bdd b = boolBdd(e, /*allowNext=*/false);
        return (ctx_.varEqIndex(target, 1, targetNext) & b) |
               (ctx_.varEqIndex(target, 0, targetNext) & !b);
      }
    }
  }

  // ---- Initial-condition formulas -----------------------------------------

  ctl::FormulaPtr initFormulaFor(const std::string& varName,
                                 const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::Value:
        return ctl::eq(varName, e->text);
      case ExprKind::VarRef: {
        if (const ExprPtr* def = lookupDefine(e->text)) {
          ExpandGuard guard(expanding_, e->text);
          return initFormulaFor(varName, *def);
        }
        if (mod_.findVar(e->text) != nullptr) {
          // var = var as a disjunction over the source's values.
          const symbolic::Variable& sv = ctx_.variable(ctx_.varId(e->text));
          std::vector<ctl::FormulaPtr> parts;
          for (const std::string& val : sv.values) {
            parts.push_back(ctl::mkAnd(ctl::eq(e->text, val),
                                       ctl::eq(varName, val)));
          }
          return ctl::disj(parts);
        }
        return ctl::eq(varName, e->text);
      }
      case ExprKind::SetLiteral: {
        std::vector<ctl::FormulaPtr> parts;
        for (const ExprPtr& elem : e->args) {
          parts.push_back(initFormulaFor(varName, elem));
        }
        return ctl::disj(parts);
      }
      default:
        // Boolean expression: var <-> expr.
        return ctl::mkIff(ctl::atom(varName), exprToCtlRec(e));
    }
  }

  ctl::FormulaPtr exprToCtlRec(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::Value:
        if (e->text == "1" || e->text == "TRUE") return ctl::mkTrue();
        if (e->text == "0" || e->text == "FALSE") return ctl::mkFalse();
        throw ModelError("'" + e->text + "' is not propositional");
      case ExprKind::VarRef: {
        if (const ExprPtr* def = lookupDefine(e->text)) {
          ExpandGuard guard(expanding_, e->text);
          return exprToCtlRec(*def);
        }
        return ctl::atom(e->text);
      }
      case ExprKind::Not:
        return ctl::mkNot(exprToCtlRec(e->args[0]));
      case ExprKind::And:
        return ctl::mkAnd(exprToCtlRec(e->args[0]), exprToCtlRec(e->args[1]));
      case ExprKind::Or:
        return ctl::mkOr(exprToCtlRec(e->args[0]), exprToCtlRec(e->args[1]));
      case ExprKind::Implies:
        return ctl::mkImplies(exprToCtlRec(e->args[0]),
                              exprToCtlRec(e->args[1]));
      case ExprKind::Iff:
        return ctl::mkIff(exprToCtlRec(e->args[0]), exprToCtlRec(e->args[1]));
      case ExprKind::Eq:
      case ExprKind::Neq: {
        const ExprPtr& a = e->args[0];
        const ExprPtr& b = e->args[1];
        auto leafText = [&](const ExprPtr& x) -> std::string {
          if (x->kind == ExprKind::Value || x->kind == ExprKind::VarRef) {
            return x->text;
          }
          throw ModelError("comparison operand is not a variable or value: " +
                           toString(x));
        };
        ctl::FormulaPtr cmp;
        const bool aIsVar =
            a->kind == ExprKind::VarRef && mod_.findVar(a->text) != nullptr;
        const bool bIsVar =
            b->kind == ExprKind::VarRef && mod_.findVar(b->text) != nullptr;
        if (aIsVar && bIsVar) {
          const symbolic::Variable& sv = ctx_.variable(ctx_.varId(a->text));
          std::vector<ctl::FormulaPtr> parts;
          for (const std::string& val : sv.values) {
            parts.push_back(ctl::mkAnd(ctl::eq(a->text, val),
                                       ctl::eq(b->text, val)));
          }
          cmp = ctl::disj(parts);
        } else if (aIsVar) {
          cmp = ctl::eq(a->text, leafText(b));
        } else if (bIsVar) {
          cmp = ctl::eq(b->text, leafText(a));
        } else {
          cmp = leafText(a) == leafText(b) ? ctl::mkTrue() : ctl::mkFalse();
        }
        return e->kind == ExprKind::Eq ? cmp : ctl::mkNot(cmp);
      }
      case ExprKind::NextRef:
        throw ModelError("next() is not allowed in propositional formulas");
      case ExprKind::SetLiteral:
        throw ModelError("set literal is not propositional: " + toString(e));
      case ExprKind::Case: {
        std::vector<ctl::FormulaPtr> parts;
        ctl::FormulaPtr pending = ctl::mkTrue();
        for (const CaseBranch& b : e->branches) {
          const ctl::FormulaPtr guard =
              ctl::mkAnd(pending, exprToCtlRec(b.cond));
          parts.push_back(ctl::mkAnd(guard, exprToCtlRec(b.value)));
          pending = ctl::mkAnd(pending, ctl::mkNot(exprToCtlRec(b.cond)));
        }
        return ctl::disj(parts);
      }
    }
    throw Error("exprToCtlRec: unreachable");
  }

  Context& ctx_;
  const Module& mod_;
  std::map<std::string, ExprPtr> defines_;
  std::set<std::string> expanding_;
  std::vector<VarId> varIds_;
};

}  // namespace

ElaboratedModule elaborate(Context& ctx, const Module& mod) {
  return Elaborator(ctx, mod).run();
}

ElaboratedModule elaborateText(Context& ctx, std::string_view text) {
  const Module mod = parseModule(text);
  return elaborate(ctx, mod);
}

std::vector<ElaboratedModule> elaborateProgram(Context& ctx,
                                               std::string_view text) {
  CMC_FAILPOINT("smv.elaborate");
  std::vector<ElaboratedModule> out;
  for (const Module& mod : parseProgram(text)) {
    out.push_back(elaborate(ctx, mod));
  }
  return out;
}

ctl::FormulaPtr exprToCtl(const Module& mod, const ExprPtr& expr) {
  // A throwaway context supplies variable domains for var=var comparisons;
  // the translation itself is syntactic.
  symbolic::Context ctx;
  for (const VarDecl& v : mod.vars) {
    if (v.type.kind == TypeDecl::Kind::Bool) {
      ctx.addBoolVar(v.name);
    } else {
      ctx.addEnumVar(v.name, v.type.expandedValues());
    }
  }
  Elaborator el(ctx, mod);
  return el.exprToCtlPublic(expr);
}

}  // namespace cmc::smv
