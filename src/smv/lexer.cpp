#include "smv/lexer.hpp"

#include <cctype>

#include "util/common.hpp"

namespace cmc::smv {

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < text.size() && text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  std::size_t tokOffset = 0;
  auto push = [&](TokenKind kind, std::string tokText, int tokLine,
                  int tokCol) {
    out.push_back(Token{kind, std::move(tokText), tokLine, tokCol, tokOffset});
  };

  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comment: -- to end of line.
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    const int tokLine = line;
    const int tokCol = column;
    tokOffset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t begin = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_' || text[i] == '.')) {
        // ".." belongs to range syntax, not identifiers.
        if (text[i] == '.' && i + 1 < text.size() && text[i + 1] == '.') {
          break;
        }
        advance(1);
      }
      push(TokenKind::Ident, std::string(text.substr(begin, i - begin)),
           tokLine, tokCol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t begin = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        advance(1);
      }
      push(TokenKind::Number, std::string(text.substr(begin, i - begin)),
           tokLine, tokCol);
      continue;
    }
    auto two = text.substr(i, 2);
    auto three = text.substr(i, 3);
    if (three == "<->") {
      advance(3);
      push(TokenKind::Iff, "<->", tokLine, tokCol);
    } else if (two == ":=") {
      advance(2);
      push(TokenKind::Assign, ":=", tokLine, tokCol);
    } else if (two == "!=") {
      advance(2);
      push(TokenKind::Neq, "!=", tokLine, tokCol);
    } else if (two == "->") {
      advance(2);
      push(TokenKind::Implies, "->", tokLine, tokCol);
    } else if (two == "..") {
      advance(2);
      push(TokenKind::DotDot, "..", tokLine, tokCol);
    } else {
      switch (c) {
        case ':': push(TokenKind::Colon, ":", tokLine, tokCol); break;
        case ';': push(TokenKind::Semicolon, ";", tokLine, tokCol); break;
        case ',': push(TokenKind::Comma, ",", tokLine, tokCol); break;
        case '{': push(TokenKind::LBrace, "{", tokLine, tokCol); break;
        case '}': push(TokenKind::RBrace, "}", tokLine, tokCol); break;
        case '(': push(TokenKind::LParen, "(", tokLine, tokCol); break;
        case ')': push(TokenKind::RParen, ")", tokLine, tokCol); break;
        case '[': push(TokenKind::LBracket, "[", tokLine, tokCol); break;
        case ']': push(TokenKind::RBracket, "]", tokLine, tokCol); break;
        case '=': push(TokenKind::Eq, "=", tokLine, tokCol); break;
        case '&': push(TokenKind::And, "&", tokLine, tokCol); break;
        case '|': push(TokenKind::Or, "|", tokLine, tokCol); break;
        case '!': push(TokenKind::Not, "!", tokLine, tokCol); break;
        default:
          throw ParseError(std::string("illegal character '") + c + "'",
                           tokLine, tokCol);
      }
      advance(1);
    }
  }
  out.push_back(Token{TokenKind::End, "", line, column, text.size()});
  return out;
}

std::string tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::Ident: return "identifier";
    case TokenKind::Number: return "number";
    case TokenKind::Assign: return "':='";
    case TokenKind::Colon: return "':'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Eq: return "'='";
    case TokenKind::Neq: return "'!='";
    case TokenKind::And: return "'&'";
    case TokenKind::Or: return "'|'";
    case TokenKind::Not: return "'!'";
    case TokenKind::Implies: return "'->'";
    case TokenKind::Iff: return "'<->'";
    case TokenKind::DotDot: return "'..'";
    case TokenKind::End: return "end of input";
  }
  return "?";
}

}  // namespace cmc::smv
