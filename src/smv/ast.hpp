// AST for the SMV subset the paper uses (Figs. 5, 6, 8, 9, 12, 13, 14, 16):
//   MODULE main
//   VAR      x : boolean;  y : {a, b, c};  z : 0..3;
//   DEFINE   d := expr;
//   ASSIGN   init(x) := expr;  next(x) := expr | case c1 : e1; ... esac;
//   INIT     expr
//   TRANS    expr            (may mention next(v))
//   FAIRNESS expr
//   SPEC     ctl-formula
//
// Value expressions may be variable references, literal symbols/numbers,
// nondeterministic sets {e1, ..., en}, case/esac chains, and the boolean
// connectives !, &, |, ->, <->, =, !=.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ctl/formula.hpp"

namespace cmc::smv {

enum class ExprKind {
  Value,    ///< literal symbol or number (text)
  VarRef,   ///< current-state variable (text = name)
  NextRef,  ///< next(var) — TRANS constraints only (text = name)
  Not,
  And,
  Or,
  Implies,
  Iff,
  Eq,
  Neq,
  SetLiteral,  ///< {e1, ..., en}
  Case,        ///< case c1 : v1; ...; esac (first match wins)
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct CaseBranch {
  ExprPtr cond;
  ExprPtr value;
};

struct Expr {
  ExprKind kind;
  std::string text;                 ///< Value / VarRef / NextRef payload
  std::vector<ExprPtr> args;        ///< operands or set elements
  std::vector<CaseBranch> branches; ///< Case only
};

ExprPtr mkValue(std::string text);
ExprPtr mkVarRef(std::string name);
ExprPtr mkNextRef(std::string name);
ExprPtr mkUnary(ExprKind kind, ExprPtr a);
ExprPtr mkBinary(ExprKind kind, ExprPtr a, ExprPtr b);
ExprPtr mkSet(std::vector<ExprPtr> elems);
ExprPtr mkCase(std::vector<CaseBranch> branches);

/// Render an expression in SMV syntax (round-trips the grammar above).
std::string toString(const ExprPtr& e);

struct TypeDecl {
  enum class Kind { Bool, Enum, Range };
  Kind kind = Kind::Bool;
  std::vector<std::string> values;  ///< Enum members
  long lo = 0, hi = 0;              ///< Range bounds (inclusive)

  /// The value list after range expansion; booleans give {"0","1"}.
  std::vector<std::string> expandedValues() const;
  bool operator==(const TypeDecl& other) const;
};

struct VarDecl {
  std::string name;
  TypeDecl type;
};

struct Assign {
  enum class Kind { Init, Next };
  Kind kind = Kind::Next;
  std::string var;
  ExprPtr expr;
};

struct Define {
  std::string name;
  ExprPtr expr;
};

struct Module {
  std::string name = "main";
  std::vector<VarDecl> vars;
  std::vector<Define> defines;
  std::vector<Assign> assigns;
  std::vector<ExprPtr> initConstraints;   ///< INIT sections
  std::vector<ExprPtr> transConstraints;  ///< TRANS sections
  std::vector<ctl::FormulaPtr> specs;     ///< SPEC sections
  std::vector<ctl::FormulaPtr> fairness;  ///< FAIRNESS sections

  const VarDecl* findVar(const std::string& name) const;
  const Define* findDefine(const std::string& name) const;
};

}  // namespace cmc::smv
