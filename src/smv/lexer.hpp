// Tokenizer for the SMV subset.  Comments run from "--" to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmc::smv {

enum class TokenKind {
  Ident,     ///< identifiers and keywords (keyword discrimination in parser)
  Number,    ///< decimal integer
  Assign,    ///< :=
  Colon,
  Semicolon,
  Comma,
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Eq,        ///< =
  Neq,       ///< !=
  And,       ///< &
  Or,        ///< |
  Not,       ///< !
  Implies,   ///< ->
  Iff,       ///< <->
  DotDot,    ///< ..
  End,       ///< end of input
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;
  int column = 1;
  std::size_t offset = 0;  ///< byte offset of the token's first character
};

/// Tokenize the whole input; throws cmc::ParseError on illegal characters.
/// A synthetic End token terminates the stream.
std::vector<Token> tokenize(std::string_view text);

/// Human-readable token-kind name (for error messages).
std::string tokenKindName(TokenKind kind);

}  // namespace cmc::smv
