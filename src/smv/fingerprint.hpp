// Canonical fingerprinting of elaborated modules, the addressing scheme of
// the service's content-addressed obligation cache (service/
// obligation_cache.hpp).
//
// canonicalModule() serializes everything verdict-relevant about a module —
// variable declarations (names and value lists), the initial-condition
// formula, the fairness constraints, and the transition relation's
// partitioned conjuncts — into one deterministic string.  Conjunct BDDs are
// rendered as labeled DAGs: nodes are numbered in first-visit order and
// emitted as (<bit-name> low high), with bit names taken from the context
// ("var.bit" / "var.bit'").
//
// The guarantee is deliberately one-sided (docs/THEORY.md, "Obligation
// cache soundness"):
//  - Equal strings ⟹ equal semantics.  Every node spells out its named
//    label and both children, so the serialization determines the boolean
//    function regardless of which context produced it — a fingerprint can
//    never alias two semantically different obligations (no false hits).
//  - Unequal strings do NOT imply different semantics.  A ROBDD's *shape*
//    depends on the context's bit order, so the same module elaborated
//    after unrelated variables, or serialized after sifting, may produce a
//    different string.  That only costs a spurious cache miss, never a
//    wrong verdict.  Cache hits rely on elaboration being deterministic:
//    resubmitting the same program text into a fresh scout context
//    reproduces the same DAGs and hence the same fingerprint.
//
// The string is meant to be hashed (util/hash.hpp StableHash128), not
// stored; it is linear in the DAG sizes of the transition conjuncts.
#pragma once

#include <string>

#include "smv/elaborate.hpp"

namespace cmc::smv {

/// Deterministic serialization of the module's vars / init / fairness /
/// transition conjuncts (equal strings imply equal semantics; see above).
std::string canonicalModule(const symbolic::Context& ctx,
                            const ElaboratedModule& m);

}  // namespace cmc::smv
