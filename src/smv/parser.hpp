// Parser for the SMV subset: builds an smv::Module from source text.
// SPEC and FAIRNESS bodies are delegated to the CTL parser (ctl::parse)
// over the raw source span up to the next top-level section keyword.
#pragma once

#include <string_view>

#include "smv/ast.hpp"

namespace cmc::smv {

/// Parse a single "MODULE main" program.  Throws cmc::ParseError on
/// malformed input.  If the text contains several modules, only the first
/// is returned — use parseProgram for component files.
Module parseModule(std::string_view text);

/// Parse a file with one or more MODULEs (the components of a composed
/// system, communicating through shared variables).
std::vector<Module> parseProgram(std::string_view text);

/// Parse a bare SMV value/boolean expression (mainly for tests).
ExprPtr parseExpr(std::string_view text);

}  // namespace cmc::smv
