#include "smv/ast.hpp"

#include <sstream>

#include "util/common.hpp"

namespace cmc::smv {

namespace {

ExprPtr make(ExprKind kind, std::string text = {},
             std::vector<ExprPtr> args = {},
             std::vector<CaseBranch> branches = {}) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->text = std::move(text);
  e->args = std::move(args);
  e->branches = std::move(branches);
  return e;
}

}  // namespace

ExprPtr mkValue(std::string text) { return make(ExprKind::Value, std::move(text)); }
ExprPtr mkVarRef(std::string name) {
  return make(ExprKind::VarRef, std::move(name));
}
ExprPtr mkNextRef(std::string name) {
  return make(ExprKind::NextRef, std::move(name));
}

ExprPtr mkUnary(ExprKind kind, ExprPtr a) {
  CMC_ASSERT(kind == ExprKind::Not);
  return make(kind, {}, {std::move(a)});
}

ExprPtr mkBinary(ExprKind kind, ExprPtr a, ExprPtr b) {
  return make(kind, {}, {std::move(a), std::move(b)});
}

ExprPtr mkSet(std::vector<ExprPtr> elems) {
  return make(ExprKind::SetLiteral, {}, std::move(elems));
}

ExprPtr mkCase(std::vector<CaseBranch> branches) {
  return make(ExprKind::Case, {}, {}, std::move(branches));
}

std::string toString(const ExprPtr& e) {
  CMC_ASSERT(e != nullptr);
  std::ostringstream out;
  switch (e->kind) {
    case ExprKind::Value:
    case ExprKind::VarRef:
      out << e->text;
      break;
    case ExprKind::NextRef:
      out << "next(" << e->text << ")";
      break;
    case ExprKind::Not:
      out << "!(" << toString(e->args[0]) << ")";
      break;
    case ExprKind::And:
      out << "(" << toString(e->args[0]) << " & " << toString(e->args[1])
          << ")";
      break;
    case ExprKind::Or:
      out << "(" << toString(e->args[0]) << " | " << toString(e->args[1])
          << ")";
      break;
    case ExprKind::Implies:
      out << "(" << toString(e->args[0]) << " -> " << toString(e->args[1])
          << ")";
      break;
    case ExprKind::Iff:
      out << "(" << toString(e->args[0]) << " <-> " << toString(e->args[1])
          << ")";
      break;
    case ExprKind::Eq:
      out << "(" << toString(e->args[0]) << " = " << toString(e->args[1])
          << ")";
      break;
    case ExprKind::Neq:
      out << "(" << toString(e->args[0]) << " != " << toString(e->args[1])
          << ")";
      break;
    case ExprKind::SetLiteral: {
      out << "{";
      for (std::size_t i = 0; i < e->args.size(); ++i) {
        if (i != 0) out << ", ";
        out << toString(e->args[i]);
      }
      out << "}";
      break;
    }
    case ExprKind::Case: {
      out << "case ";
      for (const CaseBranch& b : e->branches) {
        out << toString(b.cond) << " : " << toString(b.value) << "; ";
      }
      out << "esac";
      break;
    }
  }
  return out.str();
}

std::vector<std::string> TypeDecl::expandedValues() const {
  switch (kind) {
    case Kind::Bool:
      return {"0", "1"};
    case Kind::Enum:
      return values;
    case Kind::Range: {
      std::vector<std::string> out;
      for (long v = lo; v <= hi; ++v) out.push_back(std::to_string(v));
      return out;
    }
  }
  throw Error("expandedValues: unreachable");
}

bool TypeDecl::operator==(const TypeDecl& other) const {
  return expandedValues() == other.expandedValues() &&
         (kind == Kind::Bool) == (other.kind == Kind::Bool);
}

const VarDecl* Module::findVar(const std::string& name) const {
  for (const VarDecl& v : vars) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

const Define* Module::findDefine(const std::string& name) const {
  for (const Define& d : defines) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace cmc::smv
