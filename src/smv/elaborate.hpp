// Elaboration: smv::Module → symbolic::SymbolicSystem (+ init formula,
// fairness, specs).  This performs the paper's §3.4 reduction automatically:
// every finite-domain variable becomes ⌈log₂ m⌉ boolean atoms, and every
// ASSIGN/INIT/TRANS clause becomes a BDD over those atoms.
//
// Semantics of the subset:
//  - `next(v) := e`  constrains v' to the value(s) of e in the current
//    state; sets {a,b} and case branches are nondeterministic choice.
//    A case that falls through all branches leaves v' unconstrained (the
//    models in the paper always end with a `1 : v;` default).
//  - Variables with no next() assignment are free inputs (any next value) —
//    e.g. `failure` and `validFile` in the AFS models.
//  - `init(v) := e` and INIT sections build the initial-condition *formula*
//    returned in `initFormula`; per the paper (§2.2) initial conditions are
//    part of the restriction index, not of the system.
//  - Variables already declared in the context are shared (this is how the
//    paper models client/server communication through the variable `r`);
//    re-declaration with a different domain is an error.
#pragma once

#include <string_view>

#include "smv/ast.hpp"
#include "symbolic/system.hpp"

namespace cmc::smv {

struct ElaboratedModule {
  symbolic::SymbolicSystem sys;
  /// Conjunction of all init()/INIT conditions (TRUE if none).
  ctl::FormulaPtr initFormula;
  /// FAIRNESS constraints in declaration order.
  std::vector<ctl::FormulaPtr> fairness;
  /// SPEC sections, each wrapped with the module's restriction index
  /// r = (initFormula, fairness) — matching SMV's check-at-initial-states
  /// semantics under the declared fairness.
  std::vector<ctl::Spec> specs;
};

/// Elaborate a parsed module into `ctx`.
ElaboratedModule elaborate(symbolic::Context& ctx, const Module& mod);

/// Parse + elaborate in one step (first module of the text).
ElaboratedModule elaborateText(symbolic::Context& ctx, std::string_view text);

/// Parse + elaborate every module of a multi-module file into the shared
/// context (components communicate through identically named variables).
std::vector<ElaboratedModule> elaborateProgram(symbolic::Context& ctx,
                                               std::string_view text);

/// Convert a propositional SMV expression to a CTL formula ("var=value"
/// atoms).  Throws ModelError on non-propositional input.
ctl::FormulaPtr exprToCtl(const Module& mod, const ExprPtr& expr);

}  // namespace cmc::smv
