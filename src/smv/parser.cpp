#include "smv/parser.hpp"

#include <unordered_set>

#include "ctl/parser.hpp"
#include "smv/lexer.hpp"
#include "util/common.hpp"

namespace cmc::smv {

namespace {

const std::unordered_set<std::string> kSectionKeywords = {
    "MODULE", "VAR", "DEFINE", "ASSIGN", "INIT",
    "TRANS",  "SPEC", "FAIRNESS",
};

class Parser {
 public:
  Parser(std::string_view text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  std::vector<Module> parseProgram() {
    std::vector<Module> modules;
    while (!atEnd()) {
      modules.push_back(parseModule());
    }
    if (modules.empty()) {
      fail(peek(), "expected at least one MODULE");
    }
    return modules;
  }

  Module parseModule() {
    Module mod;
    expectIdent("MODULE");
    mod.name = expectKind(TokenKind::Ident).text;
    while (!atEnd()) {
      if (peek().kind == TokenKind::Ident && peek().text == "MODULE") {
        break;  // next module begins
      }
      const Token& section = expectKind(TokenKind::Ident);
      if (section.text == "VAR") {
        parseVarSection(mod);
      } else if (section.text == "DEFINE") {
        parseDefineSection(mod);
      } else if (section.text == "ASSIGN") {
        parseAssignSection(mod);
      } else if (section.text == "INIT") {
        mod.initConstraints.push_back(parseExpression());
        eatOptionalSemicolon();
      } else if (section.text == "TRANS") {
        mod.transConstraints.push_back(parseExpression());
        eatOptionalSemicolon();
      } else if (section.text == "SPEC") {
        mod.specs.push_back(ctl::parse(rawSectionBody()));
      } else if (section.text == "FAIRNESS") {
        mod.fairness.push_back(ctl::parse(rawSectionBody()));
      } else {
        fail(section, "expected a section keyword (VAR, ASSIGN, DEFINE, "
                      "INIT, TRANS, SPEC, FAIRNESS), got '" +
                          section.text + "'");
      }
    }
    return mod;
  }

  ExprPtr parseBareExpression() {
    ExprPtr e = parseExpression();
    if (!atEnd()) fail(peek(), "unexpected trailing input");
    return e;
  }

 private:
  [[noreturn]] void fail(const Token& tok, const std::string& what) const {
    throw ParseError(what, tok.line, tok.column);
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  bool atEnd() const { return peek().kind == TokenKind::End; }

  const Token& advance() {
    const Token& tok = tokens_[pos_];
    if (tok.kind != TokenKind::End) ++pos_;
    return tok;
  }

  bool eat(TokenKind kind) {
    if (peek().kind == kind) {
      advance();
      return true;
    }
    return false;
  }

  bool eatIdent(const std::string& text) {
    if (peek().kind == TokenKind::Ident && peek().text == text) {
      advance();
      return true;
    }
    return false;
  }

  const Token& expectKind(TokenKind kind) {
    if (peek().kind != kind) {
      fail(peek(), "expected " + tokenKindName(kind) + ", got '" +
                       peek().text + "'");
    }
    return advance();
  }

  void expectIdent(const std::string& text) {
    const Token& tok = expectKind(TokenKind::Ident);
    if (tok.text != text) {
      fail(tok, "expected '" + text + "', got '" + tok.text + "'");
    }
  }

  void eatOptionalSemicolon() { eat(TokenKind::Semicolon); }

  bool atSectionKeyword() const {
    return peek().kind == TokenKind::Ident &&
           kSectionKeywords.count(peek().text) != 0;
  }

  /// Raw source span from the current token up to (excluding) the next
  /// top-level section keyword; advances past it.  Used for SPEC/FAIRNESS,
  /// whose bodies use CTL syntax rather than SMV expressions.
  std::string rawSectionBody() {
    const std::size_t begin = peek().offset;
    while (!atEnd() && !atSectionKeyword()) advance();
    const std::size_t end = peek().offset;
    std::string body(text_.substr(begin, end - begin));
    // Strip SMV comments so the CTL parser does not see them.
    std::string clean;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i] == '-' && i + 1 < body.size() && body[i + 1] == '-') {
        while (i < body.size() && body[i] != '\n') ++i;
        if (i < body.size()) clean.push_back('\n');
        continue;
      }
      clean.push_back(body[i]);
    }
    return clean;
  }

  // ---- Sections -----------------------------------------------------------

  void parseVarSection(Module& mod) {
    // VAR entries: ident ':' type ';'  — repeated until a section keyword.
    while (!atEnd() && !atSectionKeyword()) {
      VarDecl decl;
      decl.name = expectKind(TokenKind::Ident).text;
      expectKind(TokenKind::Colon);
      decl.type = parseType();
      expectKind(TokenKind::Semicolon);
      mod.vars.push_back(std::move(decl));
    }
  }

  TypeDecl parseType() {
    TypeDecl type;
    if (eatIdent("boolean")) {
      type.kind = TypeDecl::Kind::Bool;
      return type;
    }
    if (eat(TokenKind::LBrace)) {
      type.kind = TypeDecl::Kind::Enum;
      for (;;) {
        const Token& tok = advance();
        if (tok.kind != TokenKind::Ident && tok.kind != TokenKind::Number) {
          fail(tok, "expected enum value");
        }
        type.values.push_back(tok.text);
        if (eat(TokenKind::RBrace)) break;
        expectKind(TokenKind::Comma);
      }
      return type;
    }
    if (peek().kind == TokenKind::Number) {
      type.kind = TypeDecl::Kind::Range;
      type.lo = std::stol(advance().text);
      expectKind(TokenKind::DotDot);
      type.hi = std::stol(expectKind(TokenKind::Number).text);
      if (type.hi < type.lo) {
        fail(peek(), "empty range type");
      }
      return type;
    }
    fail(peek(), "expected a type (boolean, {..}, or lo..hi)");
  }

  void parseDefineSection(Module& mod) {
    while (!atEnd() && !atSectionKeyword()) {
      Define def;
      def.name = expectKind(TokenKind::Ident).text;
      expectKind(TokenKind::Assign);
      def.expr = parseExpression();
      expectKind(TokenKind::Semicolon);
      mod.defines.push_back(std::move(def));
    }
  }

  void parseAssignSection(Module& mod) {
    while (!atEnd() && !atSectionKeyword()) {
      Assign assign;
      if (eatIdent("init")) {
        assign.kind = Assign::Kind::Init;
      } else if (eatIdent("next")) {
        assign.kind = Assign::Kind::Next;
      } else {
        fail(peek(), "expected init(..) or next(..) assignment");
      }
      expectKind(TokenKind::LParen);
      assign.var = expectKind(TokenKind::Ident).text;
      expectKind(TokenKind::RParen);
      expectKind(TokenKind::Assign);
      assign.expr = parseExpression();
      expectKind(TokenKind::Semicolon);
      mod.assigns.push_back(std::move(assign));
    }
  }

  // ---- Expressions --------------------------------------------------------

  ExprPtr parseExpression() { return parseIff(); }

  ExprPtr parseIff() {
    ExprPtr lhs = parseImplies();
    while (eat(TokenKind::Iff)) {
      lhs = mkBinary(ExprKind::Iff, lhs, parseImplies());
    }
    return lhs;
  }

  ExprPtr parseImplies() {
    ExprPtr lhs = parseOr();
    if (eat(TokenKind::Implies)) {
      return mkBinary(ExprKind::Implies, lhs, parseImplies());
    }
    return lhs;
  }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (eat(TokenKind::Or)) {
      lhs = mkBinary(ExprKind::Or, lhs, parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseEquality();
    while (eat(TokenKind::And)) {
      lhs = mkBinary(ExprKind::And, lhs, parseEquality());
    }
    return lhs;
  }

  ExprPtr parseEquality() {
    ExprPtr lhs = parseUnary();
    if (eat(TokenKind::Eq)) {
      return mkBinary(ExprKind::Eq, lhs, parseUnary());
    }
    if (eat(TokenKind::Neq)) {
      return mkBinary(ExprKind::Neq, lhs, parseUnary());
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    if (eat(TokenKind::Not)) {
      return mkUnary(ExprKind::Not, parseUnary());
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token& tok = peek();
    if (eat(TokenKind::LParen)) {
      ExprPtr e = parseExpression();
      expectKind(TokenKind::RParen);
      return e;
    }
    if (eat(TokenKind::LBrace)) {
      std::vector<ExprPtr> elems;
      for (;;) {
        elems.push_back(parseExpression());
        if (eat(TokenKind::RBrace)) break;
        expectKind(TokenKind::Comma);
      }
      return mkSet(std::move(elems));
    }
    if (tok.kind == TokenKind::Number) {
      advance();
      return mkValue(tok.text);
    }
    if (tok.kind == TokenKind::Ident) {
      if (tok.text == "case") {
        return parseCase();
      }
      if (tok.text == "next" && peek(1).kind == TokenKind::LParen) {
        advance();  // next
        advance();  // (
        const std::string name = expectKind(TokenKind::Ident).text;
        expectKind(TokenKind::RParen);
        return mkNextRef(name);
      }
      advance();
      // Variable, define, or enum literal; resolved during elaboration.
      return mkVarRef(tok.text);
    }
    fail(tok, "expected an expression, got '" + tok.text + "'");
  }

  ExprPtr parseCase() {
    expectIdent("case");
    std::vector<CaseBranch> branches;
    while (!eatIdent("esac")) {
      CaseBranch branch;
      branch.cond = parseExpression();
      expectKind(TokenKind::Colon);
      branch.value = parseExpression();
      expectKind(TokenKind::Semicolon);
      branches.push_back(std::move(branch));
    }
    if (branches.empty()) {
      fail(peek(), "empty case expression");
    }
    return mkCase(std::move(branches));
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Module parseModule(std::string_view text) {
  return Parser(text, tokenize(text)).parseModule();
}

std::vector<Module> parseProgram(std::string_view text) {
  return Parser(text, tokenize(text)).parseProgram();
}

ExprPtr parseExpr(std::string_view text) {
  return Parser(text, tokenize(text)).parseBareExpression();
}

}  // namespace cmc::smv
