// The cmc cluster coordinator (cluster layer): a daemon that fronts N
// `cmc serve` shards and presents them as one verification service over
// the same wire protocol.
//
// How a CHECK flows through it:
//   1. Scout: the coordinator elaborates the job ONCE into an elaboration
//      snapshot (service::buildSnapshot — the same scout the scheduler
//      runs) and enumerates its obligations with ids + content
//      fingerprints.
//   2. Route: each obligation's fingerprint is rendezvous-hashed over the
//      up shards (cluster/topology.hpp); the top-ranked shard owns it.
//   3. Forward: the obligation goes to its shard daemon-to-daemon as an
//      ordinary single-obligation CHECK ({"only": "<id>", "smv": ...})
//      with every verdict-relevant option made explicit, so the shard
//      re-derives the identical fingerprint and serves it from its own
//      cache/journal when warm.
//   4. Gather: the flat single-obligation response fields are merged into
//      one JobReport (worst-of verdict, per-shard attribution via
//      ObligationOutcome::shard) that is indistinguishable from a local
//      run's.
//
// Routing by *fingerprint* — not round-robin — is what makes the fleet's
// caches compound: a resubmitted obligation always lands on the shard
// that decided it first, so a warm resubmission through the coordinator
// is served all-cache no matter how the batch was originally spread.
//
// Failure handling: a probe thread sends periodic STATUS to every shard;
// `failThreshold` consecutive failures mark a shard down (new obligations
// skip it) and a later successful, version-compatible probe marks it back
// up.  A transport failure while forwarding marks the shard down
// immediately and re-dispatches the obligation to the next shard in its
// rendezvous order — safe because obligations are pure functions of
// fingerprinted content, so checking one twice (or on a different shard)
// cannot change its verdict.  Mixed-version shards are refused at
// startup, and probes keep a version-mismatched shard out of the ring.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "cluster/topology.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "service/metrics.hpp"
#include "service/snapshot.hpp"
#include "service/trace_log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cmc::cluster {

/// Compatibility gate over a shard's STATUS response: its cmc_version and
/// protocol_rev must match this build exactly.  False with a "shard runs
/// ..." explanation; a shard that does not stamp protocol_rev at all is a
/// pre-cluster build and is refused too.
bool shardCompatible(const std::string& statusResponse, std::string* why);

struct CoordinatorOptions {
  /// Unix-domain listener (required unless tcpPort >= 0).
  std::string socketPath;
  /// Loopback TCP listener: -1 disabled, 0 ephemeral.
  int tcpPort = -1;
  Topology topology;
  /// Defaults for per-request job options; requests overlay their own.
  service::JobOptions defaults;
  /// Directory request "model" paths resolve under.
  std::string modelRoot;
  /// Concurrent CHECK jobs; one more and the coordinator answers BUSY.
  unsigned maxInFlight = 16;
  /// Obligation-forwarding pool width (0 = 2 per shard, min 4).
  unsigned forwardThreads = 0;
  /// Health-probe period; 0 disables the probe thread (tests drive
  /// probeNow() instead).
  double probeIntervalSeconds = 1.0;
  /// Consecutive probe failures before a shard is marked down.
  int failThreshold = 2;
  /// Full passes over a key's rendezvous order before the obligation is
  /// reported Error "no shard available" (later passes wait briefly, for
  /// all-BUSY rings).
  int dispatchSweeps = 3;
  /// recv timeout for probes and STATS scatter, seconds.  CHECK forwards
  /// run without one: a killed shard closes the connection, which is the
  /// signal to re-dispatch.
  double controlTimeoutSeconds = 5.0;
};

class Coordinator {
 public:
  /// Metrics and trace are owned by the embedder and must outlive the
  /// coordinator.
  Coordinator(CoordinatorOptions opts, service::MetricsRegistry& metrics,
              service::RunTrace& trace);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Probe every shard, refuse mixed versions, bind + listen, start the
  /// accept and probe threads.  False with a message when no listener can
  /// be set up, when a responding shard is version-incompatible, or when
  /// no shard responds at all.
  bool start(std::string* error);

  /// Refuse new CHECKs (DRAINING); in-flight jobs finish.  Idempotent.
  void requestDrain();
  bool drainRequested() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Drain, wait for in-flight jobs, close listeners/connections, join
  /// threads.  Idempotent.  Never touches the shards — they keep serving.
  void shutdown();

  int boundTcpPort() const noexcept { return boundTcpPort_; }

  std::size_t shardsUp() const;
  std::size_t shardsTotal() const { return shards_.size(); }

  /// Run one synchronous probe round (the probe thread's body); the test
  /// seam for deterministic mark-down/mark-up.
  void probeNow();

 private:
  /// Live per-shard state.  `up` is read lock-free on the dispatch path;
  /// the observed STATUS fields are guarded by stateMutex_.
  struct Shard {
    ShardSpec spec;
    std::atomic<bool> up{true};
    std::atomic<std::uint64_t> dispatched{0};
    std::atomic<std::uint64_t> redispatched{0};
    int consecutiveFailures = 0;  ///< probe rounds; stateMutex_
    std::string downReason;       ///< stateMutex_
    std::string version;          ///< last observed; stateMutex_
    std::uint64_t inFlight = 0;   ///< last observed; stateMutex_
    std::uint64_t queued = 0;     ///< last observed; stateMutex_
  };

  /// One shard's roster state, captured under a single stateMutex_ hold so
  /// a STATUS/STATS aggregate is internally consistent: a shard marked
  /// down mid-aggregation cannot make the per-shard array and the derived
  /// counts disagree, and a down shard is never scattered to (no wedge on
  /// its control timeout).
  struct RosterEntry {
    const ShardSpec* spec = nullptr;
    bool up = true;
    std::string reason;  ///< down reason; empty when up
    std::string version;
    std::uint64_t inFlight = 0;
    std::uint64_t queued = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t redispatched = 0;
  };
  std::vector<RosterEntry> snapshotRoster() const;

  void acceptLoop(int listenFd);
  void probeLoop();
  void handleConnection(int fd);
  void handleCheck(net::LineSocket& sock, const net::Request& req);
  std::string statusResponse();
  std::string statsResponse();

  bool probeShard(Shard& shard, std::string* statusLine, std::string* error);
  void markDown(Shard& shard, const std::string& reason);
  void markUp(Shard& shard);
  bool connectShard(const ShardSpec& spec, net::Client* client,
                    std::string* error) const;

  /// Forward one obligation along its rendezvous order until a shard
  /// decides it; Error "no shard available" when the ring is exhausted.
  service::ObligationOutcome forwardObligation(
      const std::string& jobId, const std::string& jobName,
      const std::string& smvText, const service::JobOptions& options,
      const service::ObligationRef& ref);

  CoordinatorOptions opts_;
  service::MetricsRegistry& metrics_;
  service::RunTrace& trace_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::string> shardNames_;  ///< parallel to shards_
  mutable std::mutex stateMutex_;

  ThreadPool pool_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool shutdownDone_ = false;
  std::mutex shutdownMutex_;

  int unixFd_ = -1;
  int tcpFd_ = -1;
  int boundTcpPort_ = -1;
  WallTimer uptime_;
  std::atomic<std::uint64_t> serial_{0};

  // In-flight CHECK jobs (admission + drain wait).
  mutable std::mutex jobsMutex_;
  std::condition_variable jobsCv_;
  unsigned activeJobs_ = 0;

  std::mutex connMutex_;
  std::vector<int> connFds_;
  std::vector<std::thread> connThreads_;
  std::vector<std::thread> acceptThreads_;
  std::thread probeThread_;
  std::condition_variable stopCv_;
  std::mutex stopMutex_;
};

}  // namespace cmc::cluster
