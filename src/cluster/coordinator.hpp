// The cmc cluster coordinator (cluster layer): a daemon that fronts N
// `cmc serve` shards and presents them as one verification service over
// the same wire protocol.
//
// How a CHECK flows through it:
//   1. Scout: the coordinator elaborates the job ONCE into an elaboration
//      snapshot (service::buildSnapshot — the same scout the scheduler
//      runs) and enumerates its obligations with ids + content
//      fingerprints.
//   2. Route: each obligation's fingerprint is rendezvous-hashed over the
//      dispatchable shards (cluster/topology.hpp); the top-ranked shard
//      owns it.
//   3. Forward: the obligation goes to its shard daemon-to-daemon as an
//      ordinary single-obligation CHECK ({"only": "<id>", "smv": ...})
//      with every verdict-relevant option made explicit, so the shard
//      re-derives the identical fingerprint and serves it from its own
//      cache/journal when warm.
//   4. Gather: the flat single-obligation response fields are merged into
//      one JobReport (worst-of verdict, per-shard attribution via
//      ObligationOutcome::shard) that is indistinguishable from a local
//      run's.
//
// Routing by *fingerprint* — not round-robin — is what makes the fleet's
// caches compound: a resubmitted obligation always lands on the shard
// that decided it first, so a warm resubmission through the coordinator
// is served all-cache no matter how the batch was originally spread.
//
// Self-healing (protocol rev 3)
//   Membership is dynamic: JOIN adds a shard after a version/protocol
//   handshake, LEAVE decommissions one, TOPOLOGY lists the live roster,
//   and SIGHUP (cmc coordinator) re-reads the topology file and diffs it
//   against the roster.  Rendezvous hashing makes every change minimal:
//   a join/leave moves exactly the keys the affected shard owns.
//
//   Shard health is a state machine, not a flag:
//       up → suspect → down → probation → up
//   A probe failure on an up shard makes it suspect (still dispatchable);
//   failThreshold consecutive failures mark it down.  A down shard that
//   answers a probe enters probation: it must serve `probationRequired`
//   consecutive successful probes before re-entering the dispatch ring,
//   and that requirement doubles with each mark-down (capped), so a
//   flapping shard is held out longer each time it flaps.
//
//   Each decided obligation is also written through to the next
//   `replicationFactor - 1` shards in its rendezvous order (CACHE_PUT),
//   so when a shard dies its successor already holds the verdicts and
//   serves them `verdict_source:"cache"` instead of re-checking.  The
//   tier is last-write-wins, which is safe: cache keys are content
//   fingerprints, and fingerprint ⇒ verdict, so two writers can only
//   ever write the same verdict.
//
//   Hedged dispatch (off by default): when a forwarded CHECK has been in
//   flight longer than hedgeDelaySeconds, the coordinator launches the
//   same CHECK on the next dispatchable shard in the key's rendezvous
//   order; the first sound verdict wins and the loser's connection is
//   closed, which cancels its check server-side (the shard watches for
//   client hangup).  Safe for the same reason re-dispatch is: obligations
//   are pure functions of fingerprinted content.
//
// Failure handling: a probe thread sends periodic (jittered) STATUS to
// every shard.  A transport failure while forwarding marks the shard down
// immediately and re-dispatches the obligation to the next shard in its
// rendezvous order.  Mixed-version shards are refused at startup and at
// JOIN, and probes keep a version-mismatched shard out of the ring.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "cluster/topology.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "service/metrics.hpp"
#include "service/snapshot.hpp"
#include "service/trace_log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cmc::cluster {

/// Compatibility gate over a shard's STATUS response: its cmc_version and
/// protocol_rev must match this build exactly.  False with a "shard runs
/// ..." explanation; a shard that does not stamp protocol_rev at all is a
/// pre-cluster build and is refused too.
bool shardCompatible(const std::string& statusResponse, std::string* why);

/// Shard lifecycle.  Up and Suspect are dispatchable; Down and Probation
/// are not.  Probation is the re-entry gate: a recovered shard serves
/// probes only, until enough consecutive successes prove it stable.
enum class ShardState { Up, Suspect, Down, Probation };

const char* toString(ShardState s) noexcept;

struct CoordinatorOptions {
  /// Unix-domain listener (required unless tcpPort >= 0).
  std::string socketPath;
  /// Loopback TCP listener: -1 disabled, 0 ephemeral.
  int tcpPort = -1;
  Topology topology;
  /// Path the topology was loaded from; SIGHUP reload re-reads it (empty
  /// disables reload — embedded coordinators drive JOIN/LEAVE instead).
  std::string topologyPath;
  /// Defaults for per-request job options; requests overlay their own.
  service::JobOptions defaults;
  /// Directory request "model" paths resolve under.
  std::string modelRoot;
  /// Concurrent CHECK jobs; one more and the coordinator answers BUSY.
  unsigned maxInFlight = 16;
  /// Obligation-forwarding pool width (0 = 2 per shard, min 4).
  unsigned forwardThreads = 0;
  /// Health-probe period; 0 disables the probe thread (tests drive
  /// probeNow() instead).  The actual sleep is jittered uniformly in
  /// [0.5, 1.5)·period so multiple coordinators sharing a fleet never
  /// probe in lockstep.
  double probeIntervalSeconds = 1.0;
  /// Consecutive probe failures before a shard is marked down.
  int failThreshold = 2;
  /// Consecutive successful probes a recovered shard must serve in
  /// probation before re-entering the ring; doubles per mark-down
  /// (capped at 64) so flapping shards are held out progressively longer.
  int probationProbes = 1;
  /// Copies of every decided obligation across the fleet: 1 = owner only
  /// (replication off), 2 = owner + its rendezvous successor, ...
  int replicationFactor = 2;
  /// Hedge a forwarded CHECK to the next rendezvous candidate after this
  /// many seconds in flight; 0 disables hedging.
  double hedgeDelaySeconds = 0.0;
  /// Full passes over a key's rendezvous order before the obligation is
  /// reported Error "no shard available" (later passes wait briefly, for
  /// all-BUSY rings).
  int dispatchSweeps = 3;
  /// recv timeout for probes, STATS scatter, and replica CACHE_PUTs,
  /// seconds.  CHECK forwards run without one: a killed shard closes the
  /// connection, which is the signal to re-dispatch.
  double controlTimeoutSeconds = 5.0;
};

class Coordinator {
 public:
  /// Metrics and trace are owned by the embedder and must outlive the
  /// coordinator.
  Coordinator(CoordinatorOptions opts, service::MetricsRegistry& metrics,
              service::RunTrace& trace);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Probe every shard, refuse mixed versions, bind + listen, start the
  /// accept and probe threads.  False with a message when no listener can
  /// be set up, when a responding shard is version-incompatible, or when
  /// no shard responds at all.
  bool start(std::string* error);

  /// Refuse new CHECKs (DRAINING); in-flight jobs finish.  Idempotent.
  void requestDrain();
  bool drainRequested() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Drain, wait for in-flight jobs, close listeners/connections, join
  /// threads.  Idempotent.  Never touches the shards — they keep serving.
  void shutdown();

  int boundTcpPort() const noexcept { return boundTcpPort_; }

  std::size_t shardsUp() const;
  std::size_t shardsTotal() const;

  /// Run one synchronous probe round (the probe thread's body); the test
  /// seam for deterministic state-machine transitions.
  void probeNow();

  /// Re-read the topology file (opts.topologyPath) and diff it against
  /// the roster: new names are handshaken and added, missing names are
  /// decommissioned, changed endpoints are adopted.  The SIGHUP handler
  /// of `cmc coordinator` calls this from the main loop.  False with a
  /// message when the file is missing/malformed (the roster is untouched)
  /// or no topologyPath is configured.
  bool reloadTopology(std::string* summary, std::string* error);

 private:
  /// Live per-shard state.  `state` is read lock-free on the dispatch
  /// path; transitions and the observed STATUS fields are guarded by
  /// stateMutex_.
  struct Shard {
    ShardSpec spec;
    std::atomic<ShardState> state{ShardState::Up};
    std::atomic<std::uint64_t> dispatched{0};
    std::atomic<std::uint64_t> redispatched{0};
    std::atomic<std::uint64_t> replicaPuts{0};  ///< CACHE_PUTs sent to it
    int consecutiveFailures = 0;  ///< probe rounds; stateMutex_
    int downs = 0;                ///< lifetime mark-downs; stateMutex_
    int probationPasses = 0;      ///< consecutive probe successes; stateMutex_
    int probationRequired = 0;    ///< passes needed to re-enter; stateMutex_
    std::string downReason;       ///< stateMutex_
    std::string version;          ///< last observed; stateMutex_
    std::uint64_t inFlight = 0;   ///< last observed; stateMutex_
    std::uint64_t queued = 0;     ///< last observed; stateMutex_
  };

  static bool dispatchable(ShardState s) noexcept {
    return s == ShardState::Up || s == ShardState::Suspect;
  }

  /// An immutable roster snapshot: the shard set (kept alive by the
  /// shared_ptrs across a concurrent LEAVE) plus the parallel name list
  /// rendezvous hashing ranks.  One snapshot is taken per CHECK job at
  /// scatter time, so a JOIN mid-batch only affects later jobs — every
  /// obligation of one job routes over one consistent ring.
  struct Roster {
    std::vector<std::shared_ptr<Shard>> shards;
    std::vector<std::string> names;  ///< parallel to shards
  };
  Roster rosterSnapshot() const;

  /// One shard's observable state, captured under a single stateMutex_
  /// hold so a STATUS/STATS/TOPOLOGY aggregate is internally consistent.
  struct RosterEntry {
    std::shared_ptr<Shard> shard;  ///< keeps spec alive across LEAVE
    ShardState state = ShardState::Up;
    std::string reason;  ///< down/probation reason; empty when up
    std::string version;
    int downs = 0;
    int probationPasses = 0;
    int probationRequired = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t queued = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t redispatched = 0;
    std::uint64_t replicaPuts = 0;
  };
  std::vector<RosterEntry> snapshotRoster() const;

  void acceptLoop(int listenFd);
  void probeLoop();
  void handleConnection(int fd);
  void handleCheck(net::LineSocket& sock, const net::Request& req);
  std::string statusResponse();
  std::string statsResponse();
  std::string topologyResponse();
  std::string joinResponse(const net::Request& req);
  std::string leaveResponse(const net::Request& req);

  bool probeShard(Shard& shard, std::string* statusLine, std::string* error);
  /// Run one probe against one shard and apply the lifecycle transition.
  void probeOne(Shard& shard);
  void markDown(Shard& shard, const std::string& reason);
  void markUp(Shard& shard);
  void enterProbation(Shard& shard, const std::string& reason);
  bool connectShard(const ShardSpec& spec, net::Client* client,
                    std::string* error) const;
  /// Connect + STATUS + shardCompatible, the JOIN/reload admission gate.
  bool handshakeShard(const ShardSpec& spec, std::string* version,
                      std::string* error) const;

  /// Forward one obligation along its rendezvous order until a shard
  /// decides it; Error "no shard available" when the ring is exhausted.
  /// Hedges to the next candidate after hedgeDelaySeconds (when enabled),
  /// and write-replicates the decided verdict to the key's next
  /// replicationFactor-1 rendezvous shards.
  service::ObligationOutcome forwardObligation(
      const Roster& roster, const std::string& jobId,
      const std::string& jobName, const std::string& smvText,
      const service::JobOptions& options, const service::ObligationRef& ref);

  /// Write `out`'s decided verdict through to the key's replica shards
  /// (everyone in the first replicationFactor ranks of `order` except the
  /// shard that served it).  Failures are soft: the replica tier is an
  /// availability optimization, never a correctness dependency.
  void maybeReplicate(const Roster& roster,
                      const std::vector<std::size_t>& order,
                      const service::ObligationOutcome& out);

  CoordinatorOptions opts_;
  service::MetricsRegistry& metrics_;
  service::RunTrace& trace_;

  /// The live roster; mutable via JOIN/LEAVE/reload, guarded by
  /// stateMutex_.  Dispatch never touches it directly — it works on a
  /// Roster snapshot whose shared_ptrs outlive any concurrent removal.
  std::vector<std::shared_ptr<Shard>> shards_;
  mutable std::mutex stateMutex_;

  ThreadPool pool_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool shutdownDone_ = false;
  std::mutex shutdownMutex_;

  int unixFd_ = -1;
  int tcpFd_ = -1;
  int boundTcpPort_ = -1;
  WallTimer uptime_;
  std::atomic<std::uint64_t> serial_{0};

  // In-flight CHECK jobs (admission + drain wait).
  mutable std::mutex jobsMutex_;
  std::condition_variable jobsCv_;
  unsigned activeJobs_ = 0;

  std::mutex connMutex_;
  std::vector<int> connFds_;
  std::vector<std::thread> connThreads_;
  std::vector<std::thread> acceptThreads_;
  std::thread probeThread_;
  std::condition_variable stopCv_;
  std::mutex stopMutex_;
};

}  // namespace cmc::cluster
