#include "cluster/topology.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "service/journal.hpp"
#include "util/hash.hpp"

namespace cmc::cluster {

bool parseTopology(const std::string& text, Topology* out,
                   std::string* error) {
  Topology topo;
  std::unordered_set<std::string> names;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto fail = [&](const std::string& why) {
      *error = "topology line " + std::to_string(lineNo) + ": " + why;
      return false;
    };
    if (line[first] != '{') return fail("not a JSON object");
    ShardSpec shard;
    if (!service::jsonExtractString(line, "name", &shard.name) ||
        shard.name.empty()) {
      return fail("missing shard 'name'");
    }
    if (!names.insert(shard.name).second) {
      return fail("duplicate shard name '" + shard.name + "'");
    }
    const bool hasSocket =
        service::jsonExtractString(line, "socket", &shard.socketPath) &&
        !shard.socketPath.empty();
    std::uint64_t port = 0;
    const bool hasTcp = service::jsonExtractUint(line, "tcp", &port);
    if (hasSocket == hasTcp) {
      return fail("shard '" + shard.name +
                  "' needs exactly one of 'socket' or 'tcp'");
    }
    if (hasTcp) {
      if (port == 0 || port > 65535) return fail("'tcp' must be in 1..65535");
      shard.tcpPort = static_cast<int>(port);
    }
    topo.shards.push_back(std::move(shard));
  }
  if (topo.shards.empty()) {
    *error = "topology has no shards";
    return false;
  }
  *out = std::move(topo);
  return true;
}

bool loadTopology(const std::string& path, Topology* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open topology file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parseTopology(buf.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

std::uint64_t rendezvousScore(const std::string& shardName,
                              const std::string& key) {
  return StableHash128().update(shardName).sep().update(key).value64();
}

std::vector<std::size_t> rendezvousOrder(
    const std::vector<std::string>& shardNames, const std::string& key) {
  std::vector<std::size_t> order(shardNames.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::uint64_t> score(shardNames.size());
  for (std::size_t i = 0; i < shardNames.size(); ++i) {
    score[i] = rendezvousScore(shardNames[i], key);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score[a] != score[b] ? score[a] > score[b] : a < b;
  });
  return order;
}

}  // namespace cmc::cluster
