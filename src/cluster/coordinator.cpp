#include "cluster/coordinator.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <random>
#include <sstream>

#include "service/journal.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

namespace cmc::cluster {

namespace {

std::string errnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string jobNameFromPath(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base.empty() ? "job" : base;
}

unsigned forwardPoolWidth(const CoordinatorOptions& opts) {
  if (opts.forwardThreads > 0) return opts.forwardThreads;
  const std::size_t shards = opts.topology.shards.size();
  return static_cast<unsigned>(std::max<std::size_t>(4, 2 * shards));
}

/// recv timeout on a connected client, for control-plane round-trips that
/// must not hang on a wedged shard.
void setRecvTimeout(net::Client& client, double seconds) {
  if (client.socket() == nullptr || seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(client.socket()->fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// The single-obligation CHECK line forwarded to a shard.  Every
/// verdict-relevant option is explicit so the shard's enumeration hashes
/// the exact fingerprint the coordinator routed by, regardless of the
/// shard's own defaults; smv goes last per the flat-line convention.
std::string forwardRequestLine(const std::string& requestId,
                               const std::string& jobName,
                               const std::string& smvText,
                               const service::JobOptions& options,
                               const service::ObligationRef& ref) {
  service::JsonObject req;
  req.put("cmd", "CHECK")
      .put("id", requestId)
      .put("name", jobName)
      .put("only", ref.id)
      .putBool("compose", options.compose)
      .putBool("reorder", options.reorderBeforeCheck)
      .putBool("no_retry", !options.retryOtherEngine)
      .put("engine", symbolic::toString(options.engine))
      .putUint("deadline_ms",
               static_cast<std::uint64_t>(
                   std::llround(options.limits.deadlineSeconds * 1e3)))
      .putUint("node_budget", options.limits.nodeBudget)
      .putUint("cluster", options.clusterThreshold)
      .put("smv", smvText);
  return req.str();
}

/// Rebuild an ObligationOutcome from a shard's flat single-obligation
/// response fields (never from the nested report).  Missing fields keep
/// the ref-derived defaults, so a malformed response degrades to an Error
/// outcome instead of a parse failure.
service::ObligationOutcome outcomeFromResponse(
    const std::string& response, const service::ObligationRef& ref) {
  service::ObligationOutcome out;
  out.id = ref.id;
  out.target = ref.target;
  out.spec = ref.specName;
  out.specText = ref.specText;
  out.fingerprint = ref.fingerprint;
  std::string verdictText;
  if (service::jsonExtractString(response, "verdict", &verdictText)) {
    service::verdictFromString(verdictText, &out.verdict);
  } else {
    out.error = "shard response carried no verdict";
  }
  service::jsonExtractString(response, "verdict_source", &out.verdictSource);
  service::jsonExtractString(response, "rule", &out.rule);
  service::jsonExtractDouble(response, "obligation_seconds", &out.seconds);
  service::jsonExtractString(response, "obligation_error", &out.error);
  service::jsonExtractString(response, "counterexample", &out.counterexample);
  service::jsonExtractString(response, "engine_choice", &out.engineChoiceJson);
  service::jsonExtractString(response, "proof", &out.proofJson);
  // A freshly checked verdict ran real attempts on the shard; reflect the
  // deciding engine so the merged report explains itself like a local one.
  std::string engine;
  if (out.verdictSource == "checked" &&
      service::jsonExtractString(response, "engine", &engine)) {
    service::AttemptRecord attempt;
    attempt.engine = engine;
    attempt.verdict = out.verdict;
    attempt.seconds = out.seconds;
    out.attempts.push_back(std::move(attempt));
  }
  return out;
}

/// An error outcome attributed to nothing in particular (ring exhausted)
/// or to a refusing shard; shared by the dispatch failure paths.
service::ObligationOutcome errorOutcome(const service::ObligationRef& ref,
                                        const std::string& message) {
  service::ObligationOutcome out;
  out.id = ref.id;
  out.target = ref.target;
  out.spec = ref.specName;
  out.specText = ref.specText;
  out.fingerprint = ref.fingerprint;
  out.verdict = service::Verdict::Error;
  out.error = message;
  return out;
}

}  // namespace

const char* toString(ShardState s) noexcept {
  switch (s) {
    case ShardState::Up: return "up";
    case ShardState::Suspect: return "suspect";
    case ShardState::Down: return "down";
    case ShardState::Probation: return "probation";
  }
  return "?";
}

bool shardCompatible(const std::string& statusResponse, std::string* why) {
  std::string version;
  service::jsonExtractString(statusResponse, "cmc_version", &version);
  std::uint64_t rev = 0;
  if (!service::jsonExtractUint(statusResponse, "protocol_rev", &rev)) {
    *why = "shard runs cmc " + (version.empty() ? "<unknown>" : version) +
           " which does not stamp protocol_rev (pre-cluster build); this "
           "coordinator is cmc " +
           util::versionString() + " (protocol rev " +
           std::to_string(net::kProtocolRevision) + ")";
    return false;
  }
  if (rev != net::kProtocolRevision || version != util::versionString()) {
    *why = "shard runs cmc " + version + " (protocol rev " +
           std::to_string(rev) + "); this coordinator is cmc " +
           util::versionString() + " (protocol rev " +
           std::to_string(net::kProtocolRevision) +
           ") — mixed-version clusters are refused";
    return false;
  }
  return true;
}

Coordinator::Coordinator(CoordinatorOptions opts,
                         service::MetricsRegistry& metrics,
                         service::RunTrace& trace)
    : opts_(std::move(opts)),
      metrics_(metrics),
      trace_(trace),
      pool_(forwardPoolWidth(opts_)) {
  shards_.reserve(opts_.topology.shards.size());
  for (const ShardSpec& spec : opts_.topology.shards) {
    auto shard = std::make_shared<Shard>();
    shard->spec = spec;
    shard->probationRequired = opts_.probationProbes;
    shards_.push_back(std::move(shard));
  }
}

Coordinator::~Coordinator() { shutdown(); }

bool Coordinator::connectShard(const ShardSpec& spec, net::Client* client,
                               std::string* error) const {
  return spec.tcpPort >= 0 ? client->connectTcp(spec.tcpPort, error)
                           : client->connectUnix(spec.socketPath, error);
}

bool Coordinator::probeShard(Shard& shard, std::string* statusLine,
                             std::string* error) {
  ShardSpec spec;
  {
    // Copy under the lock: a rejoin/reload may move a (non-dispatchable)
    // shard's endpoint while the probe thread is walking the roster.
    std::lock_guard<std::mutex> lock(stateMutex_);
    spec = shard.spec;
  }
  net::Client client;
  if (!connectShard(spec, &client, error)) return false;
  setRecvTimeout(client, opts_.controlTimeoutSeconds);
  static const std::string kStatusLine =
      service::JsonObject().put("cmd", "STATUS").str();
  return client.request(kStatusLine, statusLine, error);
}

bool Coordinator::handshakeShard(const ShardSpec& spec, std::string* version,
                                 std::string* error) const {
  net::Client client;
  if (!connectShard(spec, &client, error)) return false;
  setRecvTimeout(client, opts_.controlTimeoutSeconds);
  static const std::string kStatusLine =
      service::JsonObject().put("cmd", "STATUS").str();
  std::string statusLine;
  if (!client.request(kStatusLine, &statusLine, error)) return false;
  std::string why;
  if (!shardCompatible(statusLine, &why)) {
    *error = why;
    return false;
  }
  service::jsonExtractString(statusLine, "cmc_version", version);
  return true;
}

void Coordinator::markDown(Shard& shard, const std::string& reason) {
  bool transitioned = false;
  ShardState prev = ShardState::Down;
  {
    // Reason before the state flip: a roster snapshot that observes a
    // non-up state always finds the reason already in place.
    std::lock_guard<std::mutex> lock(stateMutex_);
    shard.downReason = reason;
    prev = shard.state.exchange(ShardState::Down, std::memory_order_relaxed);
    if (prev != ShardState::Down) {
      transitioned = true;
      shard.probationPasses = 0;
      if (prev != ShardState::Probation) {
        // A fresh failure (not a failed recovery): the flap guard grows —
        // each mark-down doubles the probation the shard must serve.
        shard.downs += 1;
      }
      const int shift = std::min(shard.downs > 0 ? shard.downs - 1 : 0, 6);
      shard.probationRequired =
          std::min(opts_.probationProbes << shift, 64);
    }
  }
  if (transitioned) {
    metrics_.counter("cluster_shard_markdowns").inc();
    trace_.emit(service::JsonObject()
                    .put("event", "shard_down")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("shard", shard.spec.name)
                    .put("from", toString(prev))
                    .put("reason", reason));
  }
}

void Coordinator::markUp(Shard& shard) {
  const ShardState prev =
      shard.state.exchange(ShardState::Up, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    shard.downReason.clear();
    shard.probationPasses = 0;
  }
  if (prev != ShardState::Up) {
    metrics_.counter("cluster_shard_markups").inc();
    trace_.emit(service::JsonObject()
                    .put("event", "shard_up")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("shard", shard.spec.name)
                    .put("from", toString(prev)));
  }
}

void Coordinator::enterProbation(Shard& shard, const std::string& reason) {
  int required = 0;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    shard.state.store(ShardState::Probation, std::memory_order_relaxed);
    shard.probationPasses = 0;
    if (shard.probationRequired <= 0)
      shard.probationRequired = opts_.probationProbes;
    required = shard.probationRequired;
    shard.downReason = reason;
  }
  metrics_.counter("cluster_shard_probations").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "shard_probation")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("shard", shard.spec.name)
                  .put("reason", reason)
                  .putUint("required", static_cast<std::uint64_t>(required)));
}

void Coordinator::probeOne(Shard& shard) {
  std::string statusLine, error;
  if (!probeShard(shard, &statusLine, &error)) {
    const ShardState cur = shard.state.load(std::memory_order_relaxed);
    if (cur == ShardState::Down) return;  // already out; reason stands
    if (cur == ShardState::Probation) {
      // A probation shard must serve *consecutive* successes; one failure
      // sends it straight back down (the flap guard is already sized).
      markDown(shard, "probation probe: " + error);
      return;
    }
    int failures = 0;
    bool becameSuspect = false;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      failures = ++shard.consecutiveFailures;
      if (failures < opts_.failThreshold &&
          shard.state.load(std::memory_order_relaxed) == ShardState::Up) {
        shard.state.store(ShardState::Suspect, std::memory_order_relaxed);
        shard.downReason = "suspect: " + error;
        becameSuspect = true;
      }
    }
    if (becameSuspect) {
      metrics_.counter("cluster_shard_suspects").inc();
      trace_.emit(service::JsonObject()
                      .put("event", "shard_suspect")
                      .putDouble("t", trace_.elapsedSeconds())
                      .put("shard", shard.spec.name)
                      .put("reason", error));
    }
    if (failures >= opts_.failThreshold) markDown(shard, "probe: " + error);
    return;
  }

  std::string why;
  const bool compatible = shardCompatible(statusLine, &why);
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    shard.consecutiveFailures = 0;
    service::jsonExtractString(statusLine, "cmc_version", &shard.version);
    service::jsonExtractUint(statusLine, "in_flight", &shard.inFlight);
    service::jsonExtractUint(statusLine, "queued", &shard.queued);
  }
  if (!compatible) {
    // A responding-but-incompatible shard stays out of the ring: an old
    // build would ignore "only" and check whole jobs.
    markDown(shard, why);
    return;
  }
  switch (shard.state.load(std::memory_order_relaxed)) {
    case ShardState::Up:
      break;
    case ShardState::Suspect:
      // A suspect never left the ring; one good probe clears it.
      markUp(shard);
      break;
    case ShardState::Down:
      enterProbation(shard, "recovered; serving probes in probation");
      break;
    case ShardState::Probation: {
      int passes = 0, required = 0;
      {
        std::lock_guard<std::mutex> lock(stateMutex_);
        passes = ++shard.probationPasses;
        required = shard.probationRequired;
      }
      if (passes >= required) markUp(shard);
      break;
    }
  }
}

void Coordinator::probeNow() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    shards = shards_;
  }
  for (const std::shared_ptr<Shard>& shard : shards) probeOne(*shard);
}

void Coordinator::probeLoop() {
  // Jitter every sleep so N coordinators sharing a fleet spread their
  // probe load instead of stampeding the shards in lockstep.
  std::mt19937_64 rng{std::random_device{}()};
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(stopMutex_);
      stopCv_.wait_for(
          lock,
          std::chrono::duration<double>(opts_.probeIntervalSeconds *
                                        jitter(rng)),
          [&] { return stopping_.load(std::memory_order_relaxed); });
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    probeNow();
  }
}

std::size_t Coordinator::shardsUp() const {
  std::lock_guard<std::mutex> lock(stateMutex_);
  std::size_t up = 0;
  for (const std::shared_ptr<Shard>& s : shards_) {
    if (dispatchable(s->state.load(std::memory_order_relaxed))) ++up;
  }
  return up;
}

std::size_t Coordinator::shardsTotal() const {
  std::lock_guard<std::mutex> lock(stateMutex_);
  return shards_.size();
}

Coordinator::Roster Coordinator::rosterSnapshot() const {
  Roster roster;
  std::lock_guard<std::mutex> lock(stateMutex_);
  roster.shards = shards_;
  roster.names.reserve(shards_.size());
  for (const std::shared_ptr<Shard>& s : shards_)
    roster.names.push_back(s->spec.name);
  return roster;
}

bool Coordinator::start(std::string* error) {
  if (opts_.socketPath.empty() && opts_.tcpPort < 0) {
    *error = "no listener configured (need a socket path or a TCP port)";
    return false;
  }
  const Roster roster = rosterSnapshot();
  if (roster.shards.empty()) {
    *error = "topology has no shards";
    return false;
  }

  // Synchronous startup probe: refuse a ring we cannot correctly use.
  // A responding shard with the wrong version/revision is a configuration
  // error the operator must fix; an unreachable shard just starts down.
  std::size_t responding = 0;
  for (const std::shared_ptr<Shard>& shardPtr : roster.shards) {
    Shard& shard = *shardPtr;
    std::string statusLine, probeError;
    if (!probeShard(shard, &statusLine, &probeError)) {
      markDown(shard, "startup probe: " + probeError);
      continue;
    }
    ++responding;
    std::string why;
    if (!shardCompatible(statusLine, &why)) {
      *error = "shard '" + shard.spec.name + "': " + why;
      return false;
    }
    std::lock_guard<std::mutex> lock(stateMutex_);
    service::jsonExtractString(statusLine, "cmc_version", &shard.version);
  }
  if (responding == 0) {
    *error = "none of the " + std::to_string(roster.shards.size()) +
             " shards answered STATUS; start the shard daemons first";
    return false;
  }

  if (!opts_.socketPath.empty()) {
    sockaddr_un addr{};
    if (opts_.socketPath.size() >= sizeof addr.sun_path) {
      *error = "socket path too long: " + opts_.socketPath;
      return false;
    }
    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) {
      *error = errnoMessage("socket(AF_UNIX)");
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);
    // Same stale-socket discipline as the shard server: probe before
    // unlinking so we never steal a live listener.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        ::close(probe);
        ::close(unixFd_);
        unixFd_ = -1;
        *error =
            "another daemon is already listening on " + opts_.socketPath;
        return false;
      }
      ::close(probe);
    }
    ::unlink(opts_.socketPath.c_str());
    if (::bind(unixFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(unixFd_, 64) != 0) {
      *error = errnoMessage(("bind/listen " + opts_.socketPath).c_str());
      ::close(unixFd_);
      unixFd_ = -1;
      return false;
    }
  }

  if (opts_.tcpPort >= 0) {
    tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcpFd_ < 0) {
      *error = errnoMessage("socket(AF_INET)");
      return false;
    }
    const int one = 1;
    ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcpPort));
    if (::bind(tcpFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(tcpFd_, 64) != 0) {
      *error = errnoMessage("bind/listen TCP");
      ::close(tcpFd_);
      tcpFd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcpFd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      boundTcpPort_ = ntohs(bound.sin_port);
  }

  uptime_.reset();
  if (unixFd_ >= 0)
    acceptThreads_.emplace_back(&Coordinator::acceptLoop, this, unixFd_);
  if (tcpFd_ >= 0)
    acceptThreads_.emplace_back(&Coordinator::acceptLoop, this, tcpFd_);
  if (opts_.probeIntervalSeconds > 0.0)
    probeThread_ = std::thread(&Coordinator::probeLoop, this);

  trace_.emit(service::JsonObject()
                  .put("event", "coordinator_start")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("cmc_version", util::versionString())
                  .put("socket", opts_.socketPath)
                  .putUint("shards", roster.shards.size())
                  .putUint("shards_up", shardsUp())
                  .putUint("replication", static_cast<std::uint64_t>(
                                              opts_.replicationFactor))
                  .putUint("forward_threads", pool_.size()));
  return true;
}

void Coordinator::requestDrain() {
  if (draining_.exchange(true)) return;
  metrics_.counter("cluster_drains").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "drain")
                  .putDouble("t", trace_.elapsedSeconds()));
}

void Coordinator::shutdown() {
  std::lock_guard<std::mutex> shutdownLock(shutdownMutex_);
  if (shutdownDone_) return;
  requestDrain();

  {
    std::unique_lock<std::mutex> lock(jobsMutex_);
    jobsCv_.wait(lock, [&] { return activeJobs_ == 0; });
  }

  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(stopMutex_);
  }
  stopCv_.notify_all();
  for (std::thread& t : acceptThreads_) t.join();
  acceptThreads_.clear();
  if (unixFd_ >= 0) {
    ::close(unixFd_);
    unixFd_ = -1;
    ::unlink(opts_.socketPath.c_str());
  }
  if (tcpFd_ >= 0) {
    ::close(tcpFd_);
    tcpFd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connThreads_) t.join();
  connThreads_.clear();
  if (probeThread_.joinable()) probeThread_.join();

  trace_.emit(service::JsonObject()
                  .put("event", "coordinator_stop")
                  .putDouble("t", trace_.elapsedSeconds())
                  .putDouble("uptime_seconds", uptime_.seconds()));
  shutdownDone_ = true;
}

void Coordinator::acceptLoop(int listenFd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = listenFd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) continue;
    metrics_.counter("connections_accepted").inc();
    std::lock_guard<std::mutex> lock(connMutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    connThreads_.emplace_back(&Coordinator::handleConnection, this, fd);
  }
}

void Coordinator::handleConnection(int fd) {
  metrics_.gauge("connections_open").inc();
  net::LineSocket sock(fd);
  std::string line;
  bool closeAfter = false;
  while (!closeAfter) {
    const net::LineSocket::ReadResult r = sock.readLine(&line);
    if (r == net::LineSocket::ReadResult::Eof ||
        r == net::LineSocket::ReadResult::Error)
      break;
    if (r == net::LineSocket::ReadResult::TooLong) {
      metrics_.counter("protocol_errors").inc();
      sock.writeLine(net::errorResponse(
          "?", net::kBadRequest,
          "request line exceeds " + std::to_string(net::kMaxLineBytes) +
              " bytes; closing connection"));
      break;
    }
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    net::Request req;
    std::string perror;
    if (!net::parseRequest(line, opts_.defaults, &req, &perror)) {
      metrics_.counter("protocol_errors").inc();
      if (!sock.writeLine(net::errorResponse("?", net::kBadRequest, perror)))
        break;
      continue;
    }
    metrics_.counter("requests_received").inc();
    switch (req.cmd) {
      case net::Command::Check:
        handleCheck(sock, req);
        closeAfter = !sock.valid();
        break;
      case net::Command::Status:
        closeAfter = !sock.writeLine(statusResponse());
        break;
      case net::Command::Stats:
        closeAfter = !sock.writeLine(statsResponse());
        break;
      case net::Command::Topology:
        closeAfter = !sock.writeLine(topologyResponse());
        break;
      case net::Command::Join:
        closeAfter = !sock.writeLine(joinResponse(req));
        break;
      case net::Command::Leave:
        closeAfter = !sock.writeLine(leaveResponse(req));
        break;
      case net::Command::CachePut:
        closeAfter = !sock.writeLine(net::errorResponse(
            "CACHE_PUT", net::kBadRequest,
            "CACHE_PUT is a shard command; the coordinator writes "
            "replicas, it does not hold a cache"));
        break;
      case net::Command::Cancel:
        closeAfter = !sock.writeLine(net::errorResponse(
            "CANCEL", net::kBadRequest,
            "the coordinator does not support CANCEL; cancel at the "
            "owning shard"));
        break;
      case net::Command::Drain:
        requestDrain();
        closeAfter = !sock.writeLine(service::JsonObject()
                                         .putBool("ok", true)
                                         .put("cmd", "DRAIN")
                                         .put("state", "draining")
                                         .str());
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
      if (*it == fd) {
        connFds_.erase(it);
        break;
      }
    }
    sock.close();
  }
  metrics_.gauge("connections_open").dec();
}

service::ObligationOutcome Coordinator::forwardObligation(
    const Roster& roster, const std::string& jobId,
    const std::string& jobName, const std::string& smvText,
    const service::JobOptions& options, const service::ObligationRef& ref) {
  metrics_.counter("cluster_obligations_forwarded").inc();
  WallTimer forwardTimer;
  // Route by fingerprint so a warm resubmission revisits the shard whose
  // cache holds the verdict; obligations the scout could not fingerprint
  // route by id (stable, just not content-addressed).
  const std::string& key = ref.fingerprint.empty() ? ref.id : ref.fingerprint;
  const std::vector<std::size_t> order = rendezvousOrder(roster.names, key);
  const std::string requestLine =
      forwardRequestLine(jobId + "/" + ref.id, jobName, smvText, options, ref);
  const int hedgeMs =
      opts_.hedgeDelaySeconds > 0.0
          ? std::max(1, static_cast<int>(
                            std::llround(opts_.hedgeDelaySeconds * 1e3)))
          : -1;
  std::string lastError = "all shards down";
  for (int sweep = 0; sweep < opts_.dispatchSweeps; ++sweep) {
    bool sawBusy = false;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      Shard& shard = *roster.shards[order[rank]];
      if (!dispatchable(shard.state.load(std::memory_order_relaxed)))
        continue;
      const bool isRedispatch = rank > 0 || sweep > 0;
      net::Client client;
      std::string error;
      if (!connectShard(shard.spec, &client, &error)) {
        markDown(shard, "connect: " + error);
        lastError = shard.spec.name + ": " + error;
        continue;
      }
      shard.dispatched.fetch_add(1, std::memory_order_relaxed);
      if (isRedispatch) {
        shard.redispatched.fetch_add(1, std::memory_order_relaxed);
        metrics_.counter("cluster_redispatches").inc();
        trace_.emit(service::JsonObject()
                        .put("event", "redispatch")
                        .putDouble("t", trace_.elapsedSeconds())
                        .put("obligation", ref.id)
                        .put("shard", shard.spec.name));
      }
      // No recv timeout on CHECK lanes: a long check is legitimate, and a
      // SIGKILLed shard closes the connection, which lands as a transport
      // error below.
      if (!client.send(requestLine)) {
        markDown(shard, "forward: send failed (shard gone?)");
        lastError = shard.spec.name + ": send failed";
        continue;
      }

      // Lane 0 is the primary; lane 1, when the primary straggles past
      // the hedge threshold, races it on the next rendezvous candidate.
      struct Lane {
        net::Client* client = nullptr;
        Shard* shard = nullptr;
        bool alive = false;
      };
      net::Client hedgeClient;
      Lane lanes[2];
      lanes[0] = {&client, &shard, true};
      bool hedged = false;

      if (hedgeMs > 0) {
        pollfd p{};
        p.fd = client.socket()->fd();
        p.events = POLLIN;
        int ready;
        do {
          ready = ::poll(&p, 1, hedgeMs);
        } while (ready < 0 && errno == EINTR);
        if (ready == 0) {
          // Straggler.  The failpoint lets tests postpone (delay) or
          // suppress (error) the hedge deterministically; either way the
          // primary lane keeps running.
          bool skipHedge = false;
          try {
            CMC_FAILPOINT("cluster.hedge_delay");
          } catch (const std::exception&) {
            skipHedge = true;
          }
          for (std::size_t r2 = rank + 1; !skipHedge && r2 < order.size();
               ++r2) {
            Shard& cand = *roster.shards[order[r2]];
            if (!dispatchable(cand.state.load(std::memory_order_relaxed)))
              continue;
            std::string herror;
            if (!connectShard(cand.spec, &hedgeClient, &herror)) continue;
            if (!hedgeClient.send(requestLine)) {
              hedgeClient.close();
              continue;
            }
            cand.dispatched.fetch_add(1, std::memory_order_relaxed);
            lanes[1] = {&hedgeClient, &cand, true};
            hedged = true;
            metrics_.counter("cluster_hedges").inc();
            trace_.emit(service::JsonObject()
                            .put("event", "hedge")
                            .putDouble("t", trace_.elapsedSeconds())
                            .put("obligation", ref.id)
                            .put("straggler", shard.spec.name)
                            .put("hedge_to", cand.spec.name));
            break;
          }
        }
      }

      // Gather: the first sound response wins.  A transport death on one
      // lane falls back to the other; BUSY/DRAINING retires a lane
      // politely (no health event).  The losing lane's connection is
      // closed, which cancels its check server-side — the shard watches
      // running requests for client hangup.
      std::string response;
      Shard* winner = nullptr;
      bool refused = false;
      std::string refusal;
      while (lanes[0].alive || lanes[1].alive) {
        int laneIdx = -1;
        if (lanes[0].alive && lanes[1].alive) {
          pollfd fds[2] = {};
          fds[0].fd = lanes[0].client->socket()->fd();
          fds[0].events = POLLIN;
          fds[1].fd = lanes[1].client->socket()->fd();
          fds[1].events = POLLIN;
          int ready;
          do {
            ready = ::poll(fds, 2, -1);
          } while (ready < 0 && errno == EINTR);
          if (ready <= 0) break;
          laneIdx = fds[0].revents != 0 ? 0 : 1;
        } else {
          laneIdx = lanes[0].alive ? 0 : 1;
        }
        Lane& lane = lanes[laneIdx];
        std::string resp, lerr;
        if (!lane.client->readResponse(&resp, &lerr)) {
          // The lane's shard died (or vanished) with our obligation in
          // flight.  Obligations are pure and cache-keyed by fingerprint,
          // so falling back to the other lane — or re-dispatching down
          // the ring — is always safe: at worst the same verdict is
          // computed twice.
          markDown(*lane.shard, "forward: " + lerr);
          lastError = lane.shard->spec.name + ": " + lerr;
          lane.alive = false;
          continue;
        }
        bool ok = false;
        service::jsonExtractBool(resp, "ok", &ok);
        if (!ok) {
          std::string code;
          service::jsonExtractString(resp, "code", &code);
          if (code == net::kBusy || code == net::kDraining) {
            sawBusy = true;
            lastError = lane.shard->spec.name + ": " + code;
            lane.alive = false;
            continue;
          }
          std::string message;
          service::jsonExtractString(resp, "error", &message);
          winner = lane.shard;
          refused = true;
          refusal = code + ": " + message;
        } else {
          winner = lane.shard;
          response = resp;
        }
        lane.alive = false;
        Lane& other = lanes[1 - laneIdx];
        if (other.alive) {
          other.client->close();
          other.alive = false;
          metrics_.counter("cluster_hedge_cancels").inc();
        }
        break;
      }
      if (winner == nullptr) continue;  // every lane died or was refused
      if (hedged) {
        if (winner != &shard) metrics_.counter("cluster_hedge_wins").inc();
        trace_.emit(service::JsonObject()
                        .put("event", "hedge_winner")
                        .putDouble("t", trace_.elapsedSeconds())
                        .put("obligation", ref.id)
                        .put("winner", winner->spec.name));
      }
      if (refused) {
        service::ObligationOutcome out =
            errorOutcome(ref, winner->spec.name + ": " + refusal);
        out.shard = winner->spec.name;
        out.hedged = hedged;
        return out;
      }
      service::ObligationOutcome out = outcomeFromResponse(response, ref);
      out.shard = winner->spec.name;
      out.hedged = hedged;
      metrics_.histogram("cluster_forward_seconds")
          .observe(forwardTimer.seconds());
      maybeReplicate(roster, order, out);
      return out;
    }
    if (!sawBusy) break;  // nothing is busy, nothing is up: sweeps can't help
    if (sweep + 1 < opts_.dispatchSweeps) {
      metrics_.counter("cluster_busy_retries").inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(100 * (sweep + 1)));
    }
  }
  service::ObligationOutcome out = errorOutcome(
      ref, "no shard could take obligation '" + ref.id +
               "' (last: " + lastError + ")");
  metrics_.counter("cluster_dispatch_failures").inc();
  return out;
}

void Coordinator::maybeReplicate(const Roster& roster,
                                 const std::vector<std::size_t>& order,
                                 const service::ObligationOutcome& out) {
  if (opts_.replicationFactor < 2) return;
  if (out.fingerprint.empty()) return;
  if (out.verdict != service::Verdict::Holds &&
      out.verdict != service::Verdict::Fails)
    return;
  // "checked" verdicts are the fresh decisions; replicating "cache" hits
  // too lets a rebuilt replica heal from warm traffic.  Journal replays
  // and errors stay local.
  if (out.verdictSource != "checked" && out.verdictSource != "cache") return;
  service::JsonObject put;
  put.put("cmd", "CACHE_PUT")
      .put("fingerprint", out.fingerprint)
      .put("verdict", service::toString(out.verdict))
      .put("rule", out.rule)
      .put("engine", out.attempts.empty() ? "" : out.attempts.back().engine)
      .putDouble("seconds", out.seconds);
  if (!out.counterexample.empty())
    put.put("counterexample", out.counterexample);
  if (!out.proofJson.empty()) put.put("proof", out.proofJson);
  const std::string line = put.str();
  // Targets: the first replicationFactor-1 dispatchable shards in the
  // key's rendezvous order that are not the shard that served it — the
  // same shards a re-dispatch would fall to, which is the whole point.
  int replicas = opts_.replicationFactor - 1;
  for (std::size_t rank = 0; rank < order.size() && replicas > 0; ++rank) {
    Shard& target = *roster.shards[order[rank]];
    if (target.spec.name == out.shard) continue;
    if (!dispatchable(target.state.load(std::memory_order_relaxed))) continue;
    --replicas;
    net::Client client;
    std::string response, error;
    bool ok = false;
    if (connectShard(target.spec, &client, &error)) {
      setRecvTimeout(client, opts_.controlTimeoutSeconds);
      if (client.request(line, &response, &error))
        service::jsonExtractBool(response, "ok", &ok);
    }
    if (ok) {
      target.replicaPuts.fetch_add(1, std::memory_order_relaxed);
      metrics_.counter("cluster_replica_puts").inc();
    } else {
      // Soft failure: the replica tier is an availability optimization,
      // never a correctness dependency — the verdict is already safe on
      // its owner (and in the coordinator's report).
      metrics_.counter("cluster_replica_put_failures").inc();
      trace_.emit(service::JsonObject()
                      .put("event", "replica_put_failed")
                      .putDouble("t", trace_.elapsedSeconds())
                      .put("shard", target.spec.name)
                      .put("reason", error));
    }
  }
}

void Coordinator::handleCheck(net::LineSocket& sock, const net::Request& req) {
  const std::uint64_t serial = ++serial_;
  const std::string requestId =
      req.id.empty() ? "#" + std::to_string(serial) : req.id;

  if (drainRequested()) {
    metrics_.counter("checks_rejected_draining").inc();
    sock.writeLine(net::errorResponse(
        "CHECK", net::kDraining, "coordinator is draining; not accepting"));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(jobsMutex_);
    if (activeJobs_ >= opts_.maxInFlight) {
      metrics_.counter("checks_rejected_busy").inc();
      sock.writeLine(net::errorResponse(
          "CHECK", net::kBusy,
          "coordinator at capacity; retry with backoff"));
      return;
    }
    ++activeJobs_;
  }
  struct JobSlot {
    Coordinator* self;
    ~JobSlot() {
      std::lock_guard<std::mutex> lock(self->jobsMutex_);
      --self->activeJobs_;
      self->jobsCv_.notify_all();
    }
  } slot{this};

  service::VerificationJob job;
  job.options = req.options;
  // Assume-guarantee learning is a whole-job, single-node derivation; a
  // clustered check shards per obligation instead.  Verdicts are identical
  // by construction (the learner always falls back to the direct check),
  // so the coordinator serves learn requests as plain checks.
  if (job.options.learn) {
    job.options.learn = false;
    trace_.emit(service::JsonObject()
                    .put("event", "cluster_learn_downgraded")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("id", requestId));
  }
  job.only = req.only;
  if (!req.smv.empty()) {
    job.smvText = req.smv;
    job.sourcePath = "<inline>";
    job.name =
        !req.name.empty() ? req.name : "inline-" + std::to_string(serial);
  } else {
    std::string path = req.model;
    if (!opts_.modelRoot.empty() && !path.empty() && path.front() != '/')
      path = opts_.modelRoot + "/" + path;
    std::ifstream in(path);
    if (!in) {
      metrics_.counter("checks_rejected_bad_model").inc();
      sock.writeLine(net::errorResponse("CHECK", net::kBadRequest,
                                        "cannot open model: " + path));
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    job.smvText = buf.str();
    job.sourcePath = path;
    job.name = !req.name.empty() ? req.name : jobNameFromPath(path);
  }

  metrics_.counter("checks_admitted").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "cluster_job_start")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("id", requestId)
                  .put("job", job.name)
                  .putUint("shards_up", shardsUp()));

  WallTimer runTimer;
  service::JobReport report;
  report.job = job.name;
  report.source = job.sourcePath;
  report.options = job.options;

  // Scout: elaborate once, locally, exactly like the scheduler's scout
  // phase — the enumeration (ids, fingerprints) must match what every
  // shard derives from the same text and options.
  const service::SnapshotResult scout =
      service::buildSnapshot(job, /*wantCanon=*/true);
  if (scout.snapshot == nullptr) {
    service::ObligationOutcome bad;
    bad.id = job.name + "/<elaboration>";
    bad.target = job.name;
    bad.verdict = service::Verdict::Error;
    bad.error = scout.error;
    report.obligations.push_back(std::move(bad));
    report.verdict = service::Verdict::Error;
  } else {
    std::vector<service::ObligationRef> refs =
        service::enumerateObligations(*scout.snapshot, job.options);
    if (!job.only.empty()) {
      std::erase_if(refs, [&job](const service::ObligationRef& r) {
        return r.id != job.only;
      });
      if (refs.empty()) {
        service::ObligationOutcome bad;
        bad.id = job.name + "/<elaboration>";
        bad.target = job.name;
        bad.verdict = service::Verdict::Error;
        bad.error =
            "job '" + job.name + "' has no obligation '" + job.only + "'";
        report.obligations.push_back(std::move(bad));
        report.verdict = service::Verdict::Error;
      }
    }
    // One roster snapshot for the whole job: every obligation routes over
    // the same consistent ring, so a JOIN/LEAVE mid-batch only affects
    // later jobs (the shared_ptrs keep a concurrently-removed shard alive
    // for in-flight forwards).
    const auto roster = std::make_shared<const Roster>(rosterSnapshot());
    // Scatter: every obligation is an independent pool task; gather in
    // enumeration order so the merged report reads like a local run.
    std::vector<std::future<service::ObligationOutcome>> futures;
    futures.reserve(refs.size());
    for (const service::ObligationRef& ref : refs) {
      futures.push_back(pool_.submit(
          [this, requestId, &job, ref, roster] {
            return forwardObligation(*roster, requestId, job.name,
                                     job.smvText, job.options, ref);
          }));
    }
    for (std::future<service::ObligationOutcome>& f : futures) {
      report.obligations.push_back(f.get());
      const service::ObligationOutcome& o = report.obligations.back();
      report.verdict = worseVerdict(report.verdict, o.verdict);
      if (o.verdictSource == "journal") ++report.journalHits;
      if (!o.fingerprint.empty() && o.verdictSource != "journal") {
        if (o.verdictSource == "cache") ++report.cacheHits;
        else ++report.cacheMisses;
      }
    }
  }
  report.wallSeconds = runTimer.seconds();

  std::uint64_t holds = 0, fails = 0, undecided = 0;
  for (const service::ObligationOutcome& o : report.obligations) {
    if (o.verdict == service::Verdict::Holds) ++holds;
    else if (o.verdict == service::Verdict::Fails) ++fails;
    else ++undecided;
  }
  metrics_.counter("checks_completed").inc();
  metrics_.histogram("request_seconds").observe(report.wallSeconds);
  trace_.emit(service::JsonObject()
                  .put("event", "cluster_job_end")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("id", requestId)
                  .put("job", job.name)
                  .put("verdict", service::toString(report.verdict))
                  .putDouble("wall_seconds", report.wallSeconds)
                  .putUint("obligations", report.obligations.size())
                  .putUint("cache_hits", report.cacheHits)
                  .putUint("journal_hits", report.journalHits));

  service::JsonObject resp;
  resp.putBool("ok", true)
      .put("cmd", "CHECK")
      .put("id", requestId)
      .put("job", report.job)
      .put("verdict", service::toString(report.verdict))
      .putUint("obligations", report.obligations.size())
      .putUint("holds", holds)
      .putUint("fails", fails)
      .putUint("undecided", undecided)
      .putUint("cache_hits", report.cacheHits)
      .putUint("journal_hits", report.journalHits)
      .putUint("shards_up", shardsUp())
      .putDouble("wall_seconds", report.wallSeconds)
      .put("report", report.toJson());
  if (!sock.writeLine(resp.str()))
    metrics_.counter("responses_dropped").inc();
}

std::vector<Coordinator::RosterEntry> Coordinator::snapshotRoster() const {
  std::vector<RosterEntry> roster;
  std::lock_guard<std::mutex> lock(stateMutex_);
  roster.reserve(shards_.size());
  for (const std::shared_ptr<Shard>& shardPtr : shards_) {
    const Shard& s = *shardPtr;
    RosterEntry e;
    e.shard = shardPtr;
    e.state = s.state.load(std::memory_order_relaxed);
    if (e.state != ShardState::Up) e.reason = s.downReason;
    e.version = s.version;
    e.downs = s.downs;
    e.probationPasses = s.probationPasses;
    e.probationRequired = s.probationRequired;
    e.inFlight = s.inFlight;
    e.queued = s.queued;
    e.dispatched = s.dispatched.load(std::memory_order_relaxed);
    e.redispatched = s.redispatched.load(std::memory_order_relaxed);
    e.replicaPuts = s.replicaPuts.load(std::memory_order_relaxed);
    roster.push_back(std::move(e));
  }
  return roster;
}

std::string Coordinator::statusResponse() {
  // One roster snapshot per request: the per-shard array and the derived
  // shards_up count come from the same instant, so a shard marked down
  // mid-aggregation never makes them disagree.
  const std::vector<RosterEntry> roster = snapshotRoster();
  std::size_t up = 0;
  std::string shardArray = "[";
  for (std::size_t i = 0; i < roster.size(); ++i) {
    const RosterEntry& e = roster[i];
    if (dispatchable(e.state)) ++up;
    if (i > 0) shardArray += ", ";
    service::JsonObject one;
    one.put("name", e.shard->spec.name);
    if (e.shard->spec.tcpPort >= 0)
      one.putUint("tcp", static_cast<std::uint64_t>(e.shard->spec.tcpPort));
    else
      one.put("socket", e.shard->spec.socketPath);
    one.put("state", toString(e.state));
    if (!e.reason.empty()) one.put("reason", e.reason);
    if (!e.version.empty()) one.put("cmc_version", e.version);
    one.putUint("in_flight", e.inFlight)
        .putUint("queued", e.queued)
        .putUint("dispatched", e.dispatched)
        .putUint("redispatched", e.redispatched);
    shardArray += one.str();
  }
  shardArray += "]";
  unsigned active;
  {
    std::lock_guard<std::mutex> lock(jobsMutex_);
    active = activeJobs_;
  }
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "STATUS")
      .put("role", "coordinator")
      .put("state", drainRequested() ? "draining" : "serving")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", net::kProtocolRevision)
      .putDouble("uptime_seconds", uptime_.seconds())
      .putUint("shards_total", roster.size())
      .putUint("shards_up", up)
      .putUint("in_flight", active)
      .putUint("max_inflight", opts_.maxInFlight)
      .putRaw("shards", shardArray)
      .str();
}

std::string Coordinator::statsResponse() {
  // Live scatter over one roster snapshot: a shard already marked down is
  // tagged "down" and skipped (its control timeout is never paid — a
  // mid-aggregation mark-down cannot wedge the aggregate); a suspect or
  // probation shard is still reachable and is scattered to; a reachable
  // shard that fails the scatter is tagged "unreachable" with the error.
  // The flat per-shard fields are summed into one fleet view and echoed
  // per shard for drill-down.
  struct ShardStats {
    const RosterEntry* roster = nullptr;
    bool responded = false;
    std::string scatterError;  ///< reachable-but-failed: what went wrong
    std::uint64_t admitted = 0, completed = 0, rejectedBusy = 0;
    std::uint64_t cacheEntries = 0, cacheHits = 0, cacheMisses = 0;
    std::uint64_t inFlight = 0, queued = 0, poolQueue = 0;
    double p50 = 0.0, p99 = 0.0;
  };
  const std::vector<RosterEntry> roster = snapshotRoster();
  std::size_t up = 0;
  std::vector<ShardStats> all;
  all.reserve(roster.size());
  static const std::string kStatsLine =
      service::JsonObject().put("cmd", "STATS").str();
  for (const RosterEntry& entry : roster) {
    ShardStats stats;
    stats.roster = &entry;
    if (dispatchable(entry.state)) ++up;
    if (entry.state != ShardState::Down) {
      net::Client client;
      std::string response, error;
      if (!connectShard(entry.shard->spec, &client, &error)) {
        stats.scatterError = "connect: " + error;
      } else {
        setRecvTimeout(client, opts_.controlTimeoutSeconds);
        if (!client.request(kStatsLine, &response, &error)) {
          stats.scatterError = "stats: " + error;
        } else {
          stats.responded = true;
          service::jsonExtractUint(response, "checks_admitted",
                                   &stats.admitted);
          service::jsonExtractUint(response, "checks_completed",
                                   &stats.completed);
          service::jsonExtractUint(response, "checks_rejected_busy",
                                   &stats.rejectedBusy);
          service::jsonExtractUint(response, "cache_entries",
                                   &stats.cacheEntries);
          service::jsonExtractUint(response, "cache_hits", &stats.cacheHits);
          service::jsonExtractUint(response, "cache_misses",
                                   &stats.cacheMisses);
          service::jsonExtractUint(response, "in_flight", &stats.inFlight);
          service::jsonExtractUint(response, "queued", &stats.queued);
          service::jsonExtractUint(response, "pool_queue", &stats.poolQueue);
          service::jsonExtractDouble(response, "request_p50_seconds",
                                     &stats.p50);
          service::jsonExtractDouble(response, "request_p99_seconds",
                                     &stats.p99);
        }
      }
    }
    all.push_back(std::move(stats));
  }

  ShardStats total;
  double worstP50 = 0.0, worstP99 = 0.0;
  std::size_t responded = 0;
  std::string shardArray = "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const ShardStats& s = all[i];
    if (i > 0) shardArray += ", ";
    service::JsonObject one;
    one.put("name", s.roster->shard->spec.name)
        .putBool("responded", s.responded);
    if (s.roster->state == ShardState::Down) {
      one.put("state", "down");
      if (!s.roster->reason.empty()) one.put("reason", s.roster->reason);
    } else if (!s.responded) {
      one.put("state", "unreachable");
      if (!s.scatterError.empty()) one.put("reason", s.scatterError);
    } else {
      one.put("state", toString(s.roster->state));
    }
    if (s.responded) {
      ++responded;
      total.admitted += s.admitted;
      total.completed += s.completed;
      total.rejectedBusy += s.rejectedBusy;
      total.cacheEntries += s.cacheEntries;
      total.cacheHits += s.cacheHits;
      total.cacheMisses += s.cacheMisses;
      total.inFlight += s.inFlight;
      total.queued += s.queued;
      total.poolQueue += s.poolQueue;
      worstP50 = std::max(worstP50, s.p50);
      worstP99 = std::max(worstP99, s.p99);
      one.putUint("checks_admitted", s.admitted)
          .putUint("checks_completed", s.completed)
          .putUint("checks_rejected_busy", s.rejectedBusy)
          .putUint("cache_entries", s.cacheEntries)
          .putUint("cache_hits", s.cacheHits)
          .putUint("cache_misses", s.cacheMisses)
          .putUint("in_flight", s.inFlight)
          .putUint("queued", s.queued)
          .putUint("pool_queue", s.poolQueue)
          .putDouble("request_p50_seconds", s.p50)
          .putDouble("request_p99_seconds", s.p99);
    }
    shardArray += one.str();
  }
  shardArray += "]";

  const std::uint64_t consults = total.cacheHits + total.cacheMisses;
  service::JsonObject resp;
  resp.putBool("ok", true)
      .put("cmd", "STATS")
      .put("role", "coordinator")
      .put("state", drainRequested() ? "draining" : "serving")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", net::kProtocolRevision)
      .putDouble("uptime_seconds", uptime_.seconds())
      .putUint("shards_total", roster.size())
      .putUint("shards_up", up)
      .putUint("shards_responding", responded)
      .putUint("checks_admitted", total.admitted)
      .putUint("checks_completed", total.completed)
      .putUint("checks_rejected_busy", total.rejectedBusy)
      .putUint("cache_entries", total.cacheEntries)
      .putUint("cache_hits", total.cacheHits)
      .putUint("cache_misses", total.cacheMisses)
      .putDouble("cache_hit_rate",
                 consults == 0 ? 0.0
                               : static_cast<double>(total.cacheHits) /
                                     static_cast<double>(consults))
      .putUint("in_flight", total.inFlight)
      .putUint("queued", total.queued)
      .putUint("pool_queue", total.poolQueue)
      .putDouble("request_p50_seconds", worstP50)
      .putDouble("request_p99_seconds", worstP99)
      .putRaw("shards_stats", shardArray)
      // The coordinator's own instruments, escaped like a shard's.
      .put("metrics", metrics_.toJson())
      .put("metrics_text", metrics_.toText());
  return resp.str();
}

std::string Coordinator::topologyResponse() {
  // The admin view of the roster: full lifecycle detail per shard — the
  // state machine's position, the flap history, the probation progress,
  // and the replica-put count — everything a join/leave/replace runbook
  // needs to verify its effect.
  const std::vector<RosterEntry> roster = snapshotRoster();
  std::size_t up = 0;
  std::string shardArray = "[";
  for (std::size_t i = 0; i < roster.size(); ++i) {
    const RosterEntry& e = roster[i];
    if (dispatchable(e.state)) ++up;
    if (i > 0) shardArray += ", ";
    service::JsonObject one;
    one.put("name", e.shard->spec.name);
    if (e.shard->spec.tcpPort >= 0)
      one.putUint("tcp", static_cast<std::uint64_t>(e.shard->spec.tcpPort));
    else
      one.put("socket", e.shard->spec.socketPath);
    one.put("state", toString(e.state));
    if (!e.reason.empty()) one.put("reason", e.reason);
    if (!e.version.empty()) one.put("cmc_version", e.version);
    one.putUint("downs", static_cast<std::uint64_t>(e.downs))
        .putUint("probation_passes",
                 static_cast<std::uint64_t>(e.probationPasses))
        .putUint("probation_required",
                 static_cast<std::uint64_t>(e.probationRequired))
        .putUint("dispatched", e.dispatched)
        .putUint("redispatched", e.redispatched)
        .putUint("replica_puts", e.replicaPuts);
    shardArray += one.str();
  }
  shardArray += "]";
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "TOPOLOGY")
      .put("role", "coordinator")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", net::kProtocolRevision)
      .putUint("shards_total", roster.size())
      .putUint("shards_up", up)
      .putUint("replication",
               static_cast<std::uint64_t>(opts_.replicationFactor))
      .putRaw("shards", shardArray)
      .str();
}

std::string Coordinator::joinResponse(const net::Request& req) {
  ShardSpec spec;
  spec.name = req.shard;
  spec.socketPath = req.shardSocket;
  spec.tcpPort = req.shardTcp;
  std::shared_ptr<Shard> existing;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    for (const std::shared_ptr<Shard>& s : shards_) {
      if (s->spec.name == spec.name) {
        existing = s;
        break;
      }
    }
    if (existing != nullptr &&
        dispatchable(existing->state.load(std::memory_order_relaxed))) {
      return net::errorResponse(
          "JOIN", net::kBadRequest,
          "shard '" + spec.name + "' is already in the roster and serving");
    }
    // A rejoin may move the endpoint (replaced hardware, new socket); the
    // shard is not dispatchable here, so nothing races the update.
    if (existing != nullptr) existing->spec = spec;
  }
  std::string version, error;
  if (!handshakeShard(spec, &version, &error)) {
    metrics_.counter("cluster_join_failures").inc();
    return net::errorResponse(
        "JOIN", net::kBadRequest,
        "shard '" + spec.name + "' failed the join handshake: " + error);
  }
  std::string state;
  if (existing != nullptr) {
    // A shard this coordinator has marked down re-enters through
    // probation — a flapper cannot JOIN its way straight back into the
    // ring; the probe thread promotes it once it proves stable.
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      existing->version = version;
    }
    enterProbation(*existing, "rejoined; serving probes in probation");
    state = "probation";
  } else {
    // A genuinely new shard passed the handshake this instant — that IS
    // its first successful probe, so it enters the ring immediately.
    auto shard = std::make_shared<Shard>();
    shard->spec = spec;
    shard->version = version;
    shard->probationRequired = opts_.probationProbes;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      for (const std::shared_ptr<Shard>& s : shards_) {
        if (s->spec.name == spec.name) {
          return net::errorResponse(
              "JOIN", net::kBadRequest,
              "shard '" + spec.name + "' was joined concurrently");
        }
      }
      shards_.push_back(shard);
    }
    state = "up";
  }
  metrics_.counter("cluster_joins").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "shard_join")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("shard", spec.name)
                  .put("state", state));
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "JOIN")
      .put("shard", spec.name)
      .put("state", state)
      .put("cmc_version", version)
      .putUint("shards_total", shardsTotal())
      .str();
}

std::string Coordinator::leaveResponse(const net::Request& req) {
  std::shared_ptr<Shard> removed;
  std::size_t remaining = 0;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    auto it = std::find_if(shards_.begin(), shards_.end(),
                           [&req](const std::shared_ptr<Shard>& s) {
                             return s->spec.name == req.shard;
                           });
    if (it == shards_.end()) {
      return net::errorResponse(
          "LEAVE", net::kNotFound,
          "no shard named '" + req.shard + "' in the roster");
    }
    if (shards_.size() == 1) {
      return net::errorResponse(
          "LEAVE", net::kBadRequest,
          "refusing to remove the last shard; the ring would be empty");
    }
    removed = *it;
    shards_.erase(it);
    remaining = shards_.size();
  }
  // In-flight forwards hold the old roster snapshot (and its shared_ptr),
  // so they finish cleanly; every later job routes without this shard —
  // rendezvous hashing moves exactly the keys it owned.
  metrics_.counter("cluster_leaves").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "shard_leave")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("shard", removed->spec.name)
                  .putUint("shards_total", remaining));
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "LEAVE")
      .put("shard", removed->spec.name)
      .putUint("shards_total", remaining)
      .str();
}

bool Coordinator::reloadTopology(std::string* summary, std::string* error) {
  if (opts_.topologyPath.empty()) {
    *error =
        "no topology file configured; use JOIN/LEAVE for an inline "
        "topology";
    return false;
  }
  Topology fresh;
  if (!loadTopology(opts_.topologyPath, &fresh, error)) return false;

  std::vector<std::string> added, removed, failed, deferred;
  // Adds + endpoint adoption.
  for (const ShardSpec& spec : fresh.shards) {
    std::shared_ptr<Shard> existing;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      for (const std::shared_ptr<Shard>& s : shards_) {
        if (s->spec.name == spec.name) {
          existing = s;
          break;
        }
      }
    }
    if (existing != nullptr) {
      std::lock_guard<std::mutex> lock(stateMutex_);
      const bool moved = existing->spec.socketPath != spec.socketPath ||
                         existing->spec.tcpPort != spec.tcpPort;
      if (moved) {
        if (dispatchable(existing->state.load(std::memory_order_relaxed))) {
          // Never mutate the endpoint of a shard mid-dispatch; the next
          // reload after it drops out (or a LEAVE+JOIN) applies the move.
          deferred.push_back(spec.name);
        } else {
          existing->spec = spec;
        }
      }
      continue;
    }
    std::string version, herror;
    if (!handshakeShard(spec, &version, &herror)) {
      failed.push_back(spec.name + " (" + herror + ")");
      continue;
    }
    auto shard = std::make_shared<Shard>();
    shard->spec = spec;
    shard->version = version;
    shard->probationRequired = opts_.probationProbes;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      shards_.push_back(shard);
    }
    metrics_.counter("cluster_joins").inc();
    trace_.emit(service::JsonObject()
                    .put("event", "shard_join")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("shard", spec.name)
                    .put("state", "up")
                    .put("via", "reload"));
    added.push_back(spec.name);
  }
  // Removes: roster names the file no longer lists.
  std::vector<std::shared_ptr<Shard>> dropped;
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    for (auto it = shards_.begin(); it != shards_.end();) {
      const bool listed = std::any_of(
          fresh.shards.begin(), fresh.shards.end(),
          [&](const ShardSpec& s) { return s.name == (*it)->spec.name; });
      if (!listed && shards_.size() > 1) {
        dropped.push_back(*it);
        it = shards_.erase(it);
      } else {
        if (!listed) failed.push_back((*it)->spec.name + " (last shard)");
        ++it;
      }
    }
  }
  for (const std::shared_ptr<Shard>& shard : dropped) {
    metrics_.counter("cluster_leaves").inc();
    trace_.emit(service::JsonObject()
                    .put("event", "shard_leave")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("shard", shard->spec.name)
                    .put("via", "reload"));
    removed.push_back(shard->spec.name);
  }

  const auto join = [](const std::vector<std::string>& names) {
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ", ";
      out += names[i];
    }
    return out.empty() ? std::string("none") : out;
  };
  *summary = "topology reload: " + std::to_string(shardsTotal()) +
             " shards (added: " + join(added) + "; removed: " +
             join(removed) + "; unreachable: " + join(failed) +
             (deferred.empty()
                  ? std::string(")")
                  : "; endpoint change deferred: " + join(deferred) + ")");
  trace_.emit(service::JsonObject()
                  .put("event", "topology_reload")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("summary", *summary));
  return true;
}

}  // namespace cmc::cluster
