#include "cluster/coordinator.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>

#include "service/journal.hpp"
#include "util/version.hpp"

namespace cmc::cluster {

namespace {

std::string errnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

std::string jobNameFromPath(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base.empty() ? "job" : base;
}

unsigned forwardPoolWidth(const CoordinatorOptions& opts) {
  if (opts.forwardThreads > 0) return opts.forwardThreads;
  const std::size_t shards = opts.topology.shards.size();
  return static_cast<unsigned>(std::max<std::size_t>(4, 2 * shards));
}

/// recv timeout on a connected client, for control-plane round-trips that
/// must not hang on a wedged shard.
void setRecvTimeout(net::Client& client, double seconds) {
  if (client.socket() == nullptr || seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(client.socket()->fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// The single-obligation CHECK line forwarded to a shard.  Every
/// verdict-relevant option is explicit so the shard's enumeration hashes
/// the exact fingerprint the coordinator routed by, regardless of the
/// shard's own defaults; smv goes last per the flat-line convention.
std::string forwardRequestLine(const std::string& requestId,
                               const std::string& jobName,
                               const std::string& smvText,
                               const service::JobOptions& options,
                               const service::ObligationRef& ref) {
  service::JsonObject req;
  req.put("cmd", "CHECK")
      .put("id", requestId)
      .put("name", jobName)
      .put("only", ref.id)
      .putBool("compose", options.compose)
      .putBool("reorder", options.reorderBeforeCheck)
      .putBool("no_retry", !options.retryOtherEngine)
      .put("engine", symbolic::toString(options.engine))
      .putUint("deadline_ms",
               static_cast<std::uint64_t>(
                   std::llround(options.limits.deadlineSeconds * 1e3)))
      .putUint("node_budget", options.limits.nodeBudget)
      .putUint("cluster", options.clusterThreshold)
      .put("smv", smvText);
  return req.str();
}

/// Rebuild an ObligationOutcome from a shard's flat single-obligation
/// response fields (never from the nested report).  Missing fields keep
/// the ref-derived defaults, so a malformed response degrades to an Error
/// outcome instead of a parse failure.
service::ObligationOutcome outcomeFromResponse(
    const std::string& response, const service::ObligationRef& ref) {
  service::ObligationOutcome out;
  out.id = ref.id;
  out.target = ref.target;
  out.spec = ref.specName;
  out.specText = ref.specText;
  out.fingerprint = ref.fingerprint;
  std::string verdictText;
  if (service::jsonExtractString(response, "verdict", &verdictText)) {
    service::verdictFromString(verdictText, &out.verdict);
  } else {
    out.error = "shard response carried no verdict";
  }
  service::jsonExtractString(response, "verdict_source", &out.verdictSource);
  service::jsonExtractString(response, "rule", &out.rule);
  service::jsonExtractDouble(response, "obligation_seconds", &out.seconds);
  service::jsonExtractString(response, "obligation_error", &out.error);
  service::jsonExtractString(response, "counterexample", &out.counterexample);
  service::jsonExtractString(response, "engine_choice", &out.engineChoiceJson);
  service::jsonExtractString(response, "proof", &out.proofJson);
  // A freshly checked verdict ran real attempts on the shard; reflect the
  // deciding engine so the merged report explains itself like a local one.
  std::string engine;
  if (out.verdictSource == "checked" &&
      service::jsonExtractString(response, "engine", &engine)) {
    service::AttemptRecord attempt;
    attempt.engine = engine;
    attempt.verdict = out.verdict;
    attempt.seconds = out.seconds;
    out.attempts.push_back(std::move(attempt));
  }
  return out;
}

}  // namespace

bool shardCompatible(const std::string& statusResponse, std::string* why) {
  std::string version;
  service::jsonExtractString(statusResponse, "cmc_version", &version);
  std::uint64_t rev = 0;
  if (!service::jsonExtractUint(statusResponse, "protocol_rev", &rev)) {
    *why = "shard runs cmc " + (version.empty() ? "<unknown>" : version) +
           " which does not stamp protocol_rev (pre-cluster build); this "
           "coordinator is cmc " +
           util::versionString() + " (protocol rev " +
           std::to_string(net::kProtocolRevision) + ")";
    return false;
  }
  if (rev != net::kProtocolRevision || version != util::versionString()) {
    *why = "shard runs cmc " + version + " (protocol rev " +
           std::to_string(rev) + "); this coordinator is cmc " +
           util::versionString() + " (protocol rev " +
           std::to_string(net::kProtocolRevision) +
           ") — mixed-version clusters are refused";
    return false;
  }
  return true;
}

Coordinator::Coordinator(CoordinatorOptions opts,
                         service::MetricsRegistry& metrics,
                         service::RunTrace& trace)
    : opts_(std::move(opts)),
      metrics_(metrics),
      trace_(trace),
      pool_(forwardPoolWidth(opts_)) {
  shards_.reserve(opts_.topology.shards.size());
  for (const ShardSpec& spec : opts_.topology.shards) {
    auto shard = std::make_unique<Shard>();
    shard->spec = spec;
    shardNames_.push_back(spec.name);
    shards_.push_back(std::move(shard));
  }
}

Coordinator::~Coordinator() { shutdown(); }

bool Coordinator::connectShard(const ShardSpec& spec, net::Client* client,
                               std::string* error) const {
  return spec.tcpPort >= 0 ? client->connectTcp(spec.tcpPort, error)
                           : client->connectUnix(spec.socketPath, error);
}

bool Coordinator::probeShard(Shard& shard, std::string* statusLine,
                             std::string* error) {
  net::Client client;
  if (!connectShard(shard.spec, &client, error)) return false;
  setRecvTimeout(client, opts_.controlTimeoutSeconds);
  static const std::string kStatusLine =
      service::JsonObject().put("cmd", "STATUS").str();
  return client.request(kStatusLine, statusLine, error);
}

void Coordinator::markDown(Shard& shard, const std::string& reason) {
  {
    // Reason before the atomic flip: a roster snapshot that observes
    // up=false always finds the reason already in place (the old order
    // had a window where STATUS showed a down shard with no reason).
    std::lock_guard<std::mutex> lock(stateMutex_);
    shard.downReason = reason;
  }
  if (shard.up.exchange(false, std::memory_order_relaxed)) {
    metrics_.counter("cluster_shard_markdowns").inc();
    trace_.emit(service::JsonObject()
                    .put("event", "shard_down")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("shard", shard.spec.name)
                    .put("reason", reason));
  }
}

void Coordinator::markUp(Shard& shard) {
  if (!shard.up.exchange(true, std::memory_order_relaxed)) {
    metrics_.counter("cluster_shard_markups").inc();
    trace_.emit(service::JsonObject()
                    .put("event", "shard_up")
                    .putDouble("t", trace_.elapsedSeconds())
                    .put("shard", shard.spec.name));
  }
  std::lock_guard<std::mutex> lock(stateMutex_);
  shard.downReason.clear();
}

void Coordinator::probeNow() {
  for (const std::unique_ptr<Shard>& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::string statusLine, error;
    if (!probeShard(shard, &statusLine, &error)) {
      int failures;
      {
        std::lock_guard<std::mutex> lock(stateMutex_);
        failures = ++shard.consecutiveFailures;
      }
      if (failures >= opts_.failThreshold) {
        markDown(shard, "probe: " + error);
      }
      continue;
    }
    std::string why;
    const bool compatible = shardCompatible(statusLine, &why);
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      shard.consecutiveFailures = 0;
      service::jsonExtractString(statusLine, "cmc_version", &shard.version);
      service::jsonExtractUint(statusLine, "in_flight", &shard.inFlight);
      service::jsonExtractUint(statusLine, "queued", &shard.queued);
    }
    if (!compatible) {
      // A responding-but-incompatible shard stays out of the ring: an old
      // build would ignore "only" and check whole jobs.
      markDown(shard, why);
      continue;
    }
    markUp(shard);
  }
}

void Coordinator::probeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(stopMutex_);
      stopCv_.wait_for(
          lock,
          std::chrono::duration<double>(opts_.probeIntervalSeconds),
          [&] { return stopping_.load(std::memory_order_relaxed); });
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    probeNow();
  }
}

std::size_t Coordinator::shardsUp() const {
  std::size_t up = 0;
  for (const std::unique_ptr<Shard>& s : shards_) {
    if (s->up.load(std::memory_order_relaxed)) ++up;
  }
  return up;
}

bool Coordinator::start(std::string* error) {
  if (opts_.socketPath.empty() && opts_.tcpPort < 0) {
    *error = "no listener configured (need a socket path or a TCP port)";
    return false;
  }
  if (shards_.empty()) {
    *error = "topology has no shards";
    return false;
  }

  // Synchronous startup probe: refuse a ring we cannot correctly use.
  // A responding shard with the wrong version/revision is a configuration
  // error the operator must fix; an unreachable shard just starts down.
  std::size_t responding = 0;
  for (const std::unique_ptr<Shard>& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::string statusLine, probeError;
    if (!probeShard(shard, &statusLine, &probeError)) {
      markDown(shard, "startup probe: " + probeError);
      continue;
    }
    ++responding;
    std::string why;
    if (!shardCompatible(statusLine, &why)) {
      *error = "shard '" + shard.spec.name + "': " + why;
      return false;
    }
    std::lock_guard<std::mutex> lock(stateMutex_);
    service::jsonExtractString(statusLine, "cmc_version", &shard.version);
  }
  if (responding == 0) {
    *error = "none of the " + std::to_string(shards_.size()) +
             " shards answered STATUS; start the shard daemons first";
    return false;
  }

  if (!opts_.socketPath.empty()) {
    sockaddr_un addr{};
    if (opts_.socketPath.size() >= sizeof addr.sun_path) {
      *error = "socket path too long: " + opts_.socketPath;
      return false;
    }
    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) {
      *error = errnoMessage("socket(AF_UNIX)");
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);
    // Same stale-socket discipline as the shard server: probe before
    // unlinking so we never steal a live listener.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      if (::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) == 0) {
        ::close(probe);
        ::close(unixFd_);
        unixFd_ = -1;
        *error =
            "another daemon is already listening on " + opts_.socketPath;
        return false;
      }
      ::close(probe);
    }
    ::unlink(opts_.socketPath.c_str());
    if (::bind(unixFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(unixFd_, 64) != 0) {
      *error = errnoMessage(("bind/listen " + opts_.socketPath).c_str());
      ::close(unixFd_);
      unixFd_ = -1;
      return false;
    }
  }

  if (opts_.tcpPort >= 0) {
    tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcpFd_ < 0) {
      *error = errnoMessage("socket(AF_INET)");
      return false;
    }
    const int one = 1;
    ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcpPort));
    if (::bind(tcpFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(tcpFd_, 64) != 0) {
      *error = errnoMessage("bind/listen TCP");
      ::close(tcpFd_);
      tcpFd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcpFd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      boundTcpPort_ = ntohs(bound.sin_port);
  }

  uptime_.reset();
  if (unixFd_ >= 0)
    acceptThreads_.emplace_back(&Coordinator::acceptLoop, this, unixFd_);
  if (tcpFd_ >= 0)
    acceptThreads_.emplace_back(&Coordinator::acceptLoop, this, tcpFd_);
  if (opts_.probeIntervalSeconds > 0.0)
    probeThread_ = std::thread(&Coordinator::probeLoop, this);

  trace_.emit(service::JsonObject()
                  .put("event", "coordinator_start")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("cmc_version", util::versionString())
                  .put("socket", opts_.socketPath)
                  .putUint("shards", shards_.size())
                  .putUint("shards_up", shardsUp())
                  .putUint("forward_threads", pool_.size()));
  return true;
}

void Coordinator::requestDrain() {
  if (draining_.exchange(true)) return;
  metrics_.counter("cluster_drains").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "drain")
                  .putDouble("t", trace_.elapsedSeconds()));
}

void Coordinator::shutdown() {
  std::lock_guard<std::mutex> shutdownLock(shutdownMutex_);
  if (shutdownDone_) return;
  requestDrain();

  {
    std::unique_lock<std::mutex> lock(jobsMutex_);
    jobsCv_.wait(lock, [&] { return activeJobs_ == 0; });
  }

  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(stopMutex_);
  }
  stopCv_.notify_all();
  for (std::thread& t : acceptThreads_) t.join();
  acceptThreads_.clear();
  if (unixFd_ >= 0) {
    ::close(unixFd_);
    unixFd_ = -1;
    ::unlink(opts_.socketPath.c_str());
  }
  if (tcpFd_ >= 0) {
    ::close(tcpFd_);
    tcpFd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connThreads_) t.join();
  connThreads_.clear();
  if (probeThread_.joinable()) probeThread_.join();

  trace_.emit(service::JsonObject()
                  .put("event", "coordinator_stop")
                  .putDouble("t", trace_.elapsedSeconds())
                  .putDouble("uptime_seconds", uptime_.seconds()));
  shutdownDone_ = true;
}

void Coordinator::acceptLoop(int listenFd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = listenFd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 200);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) continue;
    metrics_.counter("connections_accepted").inc();
    std::lock_guard<std::mutex> lock(connMutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    connThreads_.emplace_back(&Coordinator::handleConnection, this, fd);
  }
}

void Coordinator::handleConnection(int fd) {
  metrics_.gauge("connections_open").inc();
  net::LineSocket sock(fd);
  std::string line;
  bool closeAfter = false;
  while (!closeAfter) {
    const net::LineSocket::ReadResult r = sock.readLine(&line);
    if (r == net::LineSocket::ReadResult::Eof ||
        r == net::LineSocket::ReadResult::Error)
      break;
    if (r == net::LineSocket::ReadResult::TooLong) {
      metrics_.counter("protocol_errors").inc();
      sock.writeLine(net::errorResponse(
          "?", net::kBadRequest,
          "request line exceeds " + std::to_string(net::kMaxLineBytes) +
              " bytes; closing connection"));
      break;
    }
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    net::Request req;
    std::string perror;
    if (!net::parseRequest(line, opts_.defaults, &req, &perror)) {
      metrics_.counter("protocol_errors").inc();
      if (!sock.writeLine(net::errorResponse("?", net::kBadRequest, perror)))
        break;
      continue;
    }
    metrics_.counter("requests_received").inc();
    switch (req.cmd) {
      case net::Command::Check:
        handleCheck(sock, req);
        closeAfter = !sock.valid();
        break;
      case net::Command::Status:
        closeAfter = !sock.writeLine(statusResponse());
        break;
      case net::Command::Stats:
        closeAfter = !sock.writeLine(statsResponse());
        break;
      case net::Command::Cancel:
        closeAfter = !sock.writeLine(net::errorResponse(
            "CANCEL", net::kBadRequest,
            "the coordinator does not support CANCEL; cancel at the "
            "owning shard"));
        break;
      case net::Command::Drain:
        requestDrain();
        closeAfter = !sock.writeLine(service::JsonObject()
                                         .putBool("ok", true)
                                         .put("cmd", "DRAIN")
                                         .put("state", "draining")
                                         .str());
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
      if (*it == fd) {
        connFds_.erase(it);
        break;
      }
    }
    sock.close();
  }
  metrics_.gauge("connections_open").dec();
}

service::ObligationOutcome Coordinator::forwardObligation(
    const std::string& jobId, const std::string& jobName,
    const std::string& smvText, const service::JobOptions& options,
    const service::ObligationRef& ref) {
  metrics_.counter("cluster_obligations_forwarded").inc();
  WallTimer forwardTimer;
  // Route by fingerprint so a warm resubmission revisits the shard whose
  // cache holds the verdict; obligations the scout could not fingerprint
  // route by id (stable, just not content-addressed).
  const std::string& key = ref.fingerprint.empty() ? ref.id : ref.fingerprint;
  const std::vector<std::size_t> order = rendezvousOrder(shardNames_, key);
  const std::string requestLine =
      forwardRequestLine(jobId + "/" + ref.id, jobName, smvText, options, ref);
  std::string lastError = "all shards down";
  for (int sweep = 0; sweep < opts_.dispatchSweeps; ++sweep) {
    bool sawBusy = false;
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      Shard& shard = *shards_[order[rank]];
      if (!shard.up.load(std::memory_order_relaxed)) continue;
      const bool isRedispatch = rank > 0 || sweep > 0;
      net::Client client;
      std::string error;
      if (!connectShard(shard.spec, &client, &error)) {
        markDown(shard, "connect: " + error);
        lastError = shard.spec.name + ": " + error;
        continue;
      }
      shard.dispatched.fetch_add(1, std::memory_order_relaxed);
      if (isRedispatch) {
        shard.redispatched.fetch_add(1, std::memory_order_relaxed);
        metrics_.counter("cluster_redispatches").inc();
        trace_.emit(service::JsonObject()
                        .put("event", "redispatch")
                        .putDouble("t", trace_.elapsedSeconds())
                        .put("obligation", ref.id)
                        .put("shard", shard.spec.name));
      }
      std::string response;
      // No recv timeout here: a long check is legitimate, and a SIGKILLed
      // shard closes the connection, which lands as a transport error.
      if (!client.request(requestLine, &response, &error)) {
        // The shard died (or vanished) with our obligation in flight.
        // Obligations are pure and cache-keyed by fingerprint, so
        // re-dispatching to the next shard in the rendezvous order is
        // always safe — at worst the same verdict is computed twice.
        markDown(shard, "forward: " + error);
        lastError = shard.spec.name + ": " + error;
        continue;
      }
      bool ok = false;
      service::jsonExtractBool(response, "ok", &ok);
      if (!ok) {
        std::string code;
        service::jsonExtractString(response, "code", &code);
        if (code == net::kBusy || code == net::kDraining) {
          // Healthy but saturated/draining: not a health event.  Try the
          // rest of the ring; later sweeps back off briefly.
          sawBusy = true;
          lastError = shard.spec.name + ": " + code;
          continue;
        }
        std::string message;
        service::jsonExtractString(response, "error", &message);
        service::ObligationOutcome out;
        out.id = ref.id;
        out.target = ref.target;
        out.spec = ref.specName;
        out.specText = ref.specText;
        out.fingerprint = ref.fingerprint;
        out.verdict = service::Verdict::Error;
        out.error = shard.spec.name + ": " + code + ": " + message;
        out.shard = shard.spec.name;
        return out;
      }
      service::ObligationOutcome out = outcomeFromResponse(response, ref);
      out.shard = shard.spec.name;
      metrics_.histogram("cluster_forward_seconds")
          .observe(forwardTimer.seconds());
      return out;
    }
    if (!sawBusy) break;  // nothing is busy, nothing is up: sweeps can't help
    if (sweep + 1 < opts_.dispatchSweeps) {
      metrics_.counter("cluster_busy_retries").inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(100 * (sweep + 1)));
    }
  }
  service::ObligationOutcome out;
  out.id = ref.id;
  out.target = ref.target;
  out.spec = ref.specName;
  out.specText = ref.specText;
  out.fingerprint = ref.fingerprint;
  out.verdict = service::Verdict::Error;
  out.error = "no shard could take obligation '" + ref.id +
              "' (last: " + lastError + ")";
  metrics_.counter("cluster_dispatch_failures").inc();
  return out;
}

void Coordinator::handleCheck(net::LineSocket& sock, const net::Request& req) {
  const std::uint64_t serial = ++serial_;
  const std::string requestId =
      req.id.empty() ? "#" + std::to_string(serial) : req.id;

  if (drainRequested()) {
    metrics_.counter("checks_rejected_draining").inc();
    sock.writeLine(net::errorResponse(
        "CHECK", net::kDraining, "coordinator is draining; not accepting"));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(jobsMutex_);
    if (activeJobs_ >= opts_.maxInFlight) {
      metrics_.counter("checks_rejected_busy").inc();
      sock.writeLine(net::errorResponse(
          "CHECK", net::kBusy,
          "coordinator at capacity; retry with backoff"));
      return;
    }
    ++activeJobs_;
  }
  struct JobSlot {
    Coordinator* self;
    ~JobSlot() {
      std::lock_guard<std::mutex> lock(self->jobsMutex_);
      --self->activeJobs_;
      self->jobsCv_.notify_all();
    }
  } slot{this};

  service::VerificationJob job;
  job.options = req.options;
  job.only = req.only;
  if (!req.smv.empty()) {
    job.smvText = req.smv;
    job.sourcePath = "<inline>";
    job.name =
        !req.name.empty() ? req.name : "inline-" + std::to_string(serial);
  } else {
    std::string path = req.model;
    if (!opts_.modelRoot.empty() && !path.empty() && path.front() != '/')
      path = opts_.modelRoot + "/" + path;
    std::ifstream in(path);
    if (!in) {
      metrics_.counter("checks_rejected_bad_model").inc();
      sock.writeLine(net::errorResponse("CHECK", net::kBadRequest,
                                        "cannot open model: " + path));
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    job.smvText = buf.str();
    job.sourcePath = path;
    job.name = !req.name.empty() ? req.name : jobNameFromPath(path);
  }

  metrics_.counter("checks_admitted").inc();
  trace_.emit(service::JsonObject()
                  .put("event", "cluster_job_start")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("id", requestId)
                  .put("job", job.name)
                  .putUint("shards_up", shardsUp()));

  WallTimer runTimer;
  service::JobReport report;
  report.job = job.name;
  report.source = job.sourcePath;
  report.options = job.options;

  // Scout: elaborate once, locally, exactly like the scheduler's scout
  // phase — the enumeration (ids, fingerprints) must match what every
  // shard derives from the same text and options.
  const service::SnapshotResult scout =
      service::buildSnapshot(job, /*wantCanon=*/true);
  if (scout.snapshot == nullptr) {
    service::ObligationOutcome bad;
    bad.id = job.name + "/<elaboration>";
    bad.target = job.name;
    bad.verdict = service::Verdict::Error;
    bad.error = scout.error;
    report.obligations.push_back(std::move(bad));
    report.verdict = service::Verdict::Error;
  } else {
    std::vector<service::ObligationRef> refs =
        service::enumerateObligations(*scout.snapshot, job.options);
    if (!job.only.empty()) {
      std::erase_if(refs, [&job](const service::ObligationRef& r) {
        return r.id != job.only;
      });
      if (refs.empty()) {
        service::ObligationOutcome bad;
        bad.id = job.name + "/<elaboration>";
        bad.target = job.name;
        bad.verdict = service::Verdict::Error;
        bad.error =
            "job '" + job.name + "' has no obligation '" + job.only + "'";
        report.obligations.push_back(std::move(bad));
        report.verdict = service::Verdict::Error;
      }
    }
    // Scatter: every obligation is an independent pool task; gather in
    // enumeration order so the merged report reads like a local run.
    std::vector<std::future<service::ObligationOutcome>> futures;
    futures.reserve(refs.size());
    for (const service::ObligationRef& ref : refs) {
      futures.push_back(pool_.submit(
          [this, requestId, &job, ref] {
            return forwardObligation(requestId, job.name, job.smvText,
                                     job.options, ref);
          }));
    }
    for (std::future<service::ObligationOutcome>& f : futures) {
      report.obligations.push_back(f.get());
      const service::ObligationOutcome& o = report.obligations.back();
      report.verdict = worseVerdict(report.verdict, o.verdict);
      if (o.verdictSource == "journal") ++report.journalHits;
      if (!o.fingerprint.empty() && o.verdictSource != "journal") {
        if (o.verdictSource == "cache") ++report.cacheHits;
        else ++report.cacheMisses;
      }
    }
  }
  report.wallSeconds = runTimer.seconds();

  std::uint64_t holds = 0, fails = 0, undecided = 0;
  for (const service::ObligationOutcome& o : report.obligations) {
    if (o.verdict == service::Verdict::Holds) ++holds;
    else if (o.verdict == service::Verdict::Fails) ++fails;
    else ++undecided;
  }
  metrics_.counter("checks_completed").inc();
  metrics_.histogram("request_seconds").observe(report.wallSeconds);
  trace_.emit(service::JsonObject()
                  .put("event", "cluster_job_end")
                  .putDouble("t", trace_.elapsedSeconds())
                  .put("id", requestId)
                  .put("job", job.name)
                  .put("verdict", service::toString(report.verdict))
                  .putDouble("wall_seconds", report.wallSeconds)
                  .putUint("obligations", report.obligations.size())
                  .putUint("cache_hits", report.cacheHits)
                  .putUint("journal_hits", report.journalHits));

  service::JsonObject resp;
  resp.putBool("ok", true)
      .put("cmd", "CHECK")
      .put("id", requestId)
      .put("job", report.job)
      .put("verdict", service::toString(report.verdict))
      .putUint("obligations", report.obligations.size())
      .putUint("holds", holds)
      .putUint("fails", fails)
      .putUint("undecided", undecided)
      .putUint("cache_hits", report.cacheHits)
      .putUint("journal_hits", report.journalHits)
      .putUint("shards_up", shardsUp())
      .putDouble("wall_seconds", report.wallSeconds)
      .put("report", report.toJson());
  if (!sock.writeLine(resp.str()))
    metrics_.counter("responses_dropped").inc();
}

std::vector<Coordinator::RosterEntry> Coordinator::snapshotRoster() const {
  std::vector<RosterEntry> roster;
  roster.reserve(shards_.size());
  std::lock_guard<std::mutex> lock(stateMutex_);
  for (const std::unique_ptr<Shard>& shardPtr : shards_) {
    const Shard& s = *shardPtr;
    RosterEntry e;
    e.spec = &s.spec;
    e.up = s.up.load(std::memory_order_relaxed);
    if (!e.up) e.reason = s.downReason;
    e.version = s.version;
    e.inFlight = s.inFlight;
    e.queued = s.queued;
    e.dispatched = s.dispatched.load(std::memory_order_relaxed);
    e.redispatched = s.redispatched.load(std::memory_order_relaxed);
    roster.push_back(std::move(e));
  }
  return roster;
}

std::string Coordinator::statusResponse() {
  // One roster snapshot per request: the per-shard array and the derived
  // shards_up count come from the same instant, so a shard marked down
  // mid-aggregation never makes them disagree.
  const std::vector<RosterEntry> roster = snapshotRoster();
  std::size_t up = 0;
  std::string shardArray = "[";
  for (std::size_t i = 0; i < roster.size(); ++i) {
    const RosterEntry& e = roster[i];
    if (e.up) ++up;
    if (i > 0) shardArray += ", ";
    service::JsonObject one;
    one.put("name", e.spec->name);
    if (e.spec->tcpPort >= 0)
      one.putUint("tcp", static_cast<std::uint64_t>(e.spec->tcpPort));
    else
      one.put("socket", e.spec->socketPath);
    one.put("state", e.up ? "up" : "down");
    if (!e.reason.empty()) one.put("reason", e.reason);
    if (!e.version.empty()) one.put("cmc_version", e.version);
    one.putUint("in_flight", e.inFlight)
        .putUint("queued", e.queued)
        .putUint("dispatched", e.dispatched)
        .putUint("redispatched", e.redispatched);
    shardArray += one.str();
  }
  shardArray += "]";
  unsigned active;
  {
    std::lock_guard<std::mutex> lock(jobsMutex_);
    active = activeJobs_;
  }
  return service::JsonObject()
      .putBool("ok", true)
      .put("cmd", "STATUS")
      .put("role", "coordinator")
      .put("state", drainRequested() ? "draining" : "serving")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", net::kProtocolRevision)
      .putDouble("uptime_seconds", uptime_.seconds())
      .putUint("shards_total", roster.size())
      .putUint("shards_up", up)
      .putUint("in_flight", active)
      .putUint("max_inflight", opts_.maxInFlight)
      .putRaw("shards", shardArray)
      .str();
}

std::string Coordinator::statsResponse() {
  // Live scatter over one roster snapshot: a shard already marked down is
  // tagged "down" and skipped (its control timeout is never paid — a
  // mid-aggregation mark-down cannot wedge the aggregate), an up shard
  // that fails the scatter is tagged "unreachable" with the error, and
  // every count is derived from the same snapshot.  The flat per-shard
  // fields are summed into one fleet view and echoed per shard for
  // drill-down.
  struct ShardStats {
    const RosterEntry* roster = nullptr;
    bool responded = false;
    std::string scatterError;  ///< up-but-unreachable: what went wrong
    std::uint64_t admitted = 0, completed = 0, rejectedBusy = 0;
    std::uint64_t cacheEntries = 0, cacheHits = 0, cacheMisses = 0;
    std::uint64_t inFlight = 0, queued = 0, poolQueue = 0;
    double p50 = 0.0, p99 = 0.0;
  };
  const std::vector<RosterEntry> roster = snapshotRoster();
  std::size_t up = 0;
  std::vector<ShardStats> all;
  all.reserve(roster.size());
  static const std::string kStatsLine =
      service::JsonObject().put("cmd", "STATS").str();
  for (const RosterEntry& entry : roster) {
    ShardStats stats;
    stats.roster = &entry;
    if (entry.up) {
      ++up;
      net::Client client;
      std::string response, error;
      if (!connectShard(*entry.spec, &client, &error)) {
        stats.scatterError = "connect: " + error;
      } else {
        setRecvTimeout(client, opts_.controlTimeoutSeconds);
        if (!client.request(kStatsLine, &response, &error)) {
          stats.scatterError = "stats: " + error;
        } else {
          stats.responded = true;
          service::jsonExtractUint(response, "checks_admitted",
                                   &stats.admitted);
          service::jsonExtractUint(response, "checks_completed",
                                   &stats.completed);
          service::jsonExtractUint(response, "checks_rejected_busy",
                                   &stats.rejectedBusy);
          service::jsonExtractUint(response, "cache_entries",
                                   &stats.cacheEntries);
          service::jsonExtractUint(response, "cache_hits", &stats.cacheHits);
          service::jsonExtractUint(response, "cache_misses",
                                   &stats.cacheMisses);
          service::jsonExtractUint(response, "in_flight", &stats.inFlight);
          service::jsonExtractUint(response, "queued", &stats.queued);
          service::jsonExtractUint(response, "pool_queue", &stats.poolQueue);
          service::jsonExtractDouble(response, "request_p50_seconds",
                                     &stats.p50);
          service::jsonExtractDouble(response, "request_p99_seconds",
                                     &stats.p99);
        }
      }
    }
    all.push_back(std::move(stats));
  }

  ShardStats total;
  double worstP50 = 0.0, worstP99 = 0.0;
  std::size_t responded = 0;
  std::string shardArray = "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const ShardStats& s = all[i];
    if (i > 0) shardArray += ", ";
    service::JsonObject one;
    one.put("name", s.roster->spec->name).putBool("responded", s.responded);
    if (!s.roster->up) {
      one.put("state", "down");
      if (!s.roster->reason.empty()) one.put("reason", s.roster->reason);
    } else if (!s.responded) {
      one.put("state", "unreachable");
      if (!s.scatterError.empty()) one.put("reason", s.scatterError);
    } else {
      one.put("state", "up");
    }
    if (s.responded) {
      ++responded;
      total.admitted += s.admitted;
      total.completed += s.completed;
      total.rejectedBusy += s.rejectedBusy;
      total.cacheEntries += s.cacheEntries;
      total.cacheHits += s.cacheHits;
      total.cacheMisses += s.cacheMisses;
      total.inFlight += s.inFlight;
      total.queued += s.queued;
      total.poolQueue += s.poolQueue;
      worstP50 = std::max(worstP50, s.p50);
      worstP99 = std::max(worstP99, s.p99);
      one.putUint("checks_admitted", s.admitted)
          .putUint("checks_completed", s.completed)
          .putUint("checks_rejected_busy", s.rejectedBusy)
          .putUint("cache_entries", s.cacheEntries)
          .putUint("cache_hits", s.cacheHits)
          .putUint("cache_misses", s.cacheMisses)
          .putUint("in_flight", s.inFlight)
          .putUint("queued", s.queued)
          .putUint("pool_queue", s.poolQueue)
          .putDouble("request_p50_seconds", s.p50)
          .putDouble("request_p99_seconds", s.p99);
    }
    shardArray += one.str();
  }
  shardArray += "]";

  const std::uint64_t consults = total.cacheHits + total.cacheMisses;
  service::JsonObject resp;
  resp.putBool("ok", true)
      .put("cmd", "STATS")
      .put("role", "coordinator")
      .put("state", drainRequested() ? "draining" : "serving")
      .put("cmc_version", util::versionString())
      .putUint("protocol_rev", net::kProtocolRevision)
      .putDouble("uptime_seconds", uptime_.seconds())
      .putUint("shards_total", roster.size())
      .putUint("shards_up", up)
      .putUint("shards_responding", responded)
      .putUint("checks_admitted", total.admitted)
      .putUint("checks_completed", total.completed)
      .putUint("checks_rejected_busy", total.rejectedBusy)
      .putUint("cache_entries", total.cacheEntries)
      .putUint("cache_hits", total.cacheHits)
      .putUint("cache_misses", total.cacheMisses)
      .putDouble("cache_hit_rate",
                 consults == 0 ? 0.0
                               : static_cast<double>(total.cacheHits) /
                                     static_cast<double>(consults))
      .putUint("in_flight", total.inFlight)
      .putUint("queued", total.queued)
      .putUint("pool_queue", total.poolQueue)
      .putDouble("request_p50_seconds", worstP50)
      .putDouble("request_p99_seconds", worstP99)
      .putRaw("shards_stats", shardArray)
      // The coordinator's own instruments, escaped like a shard's.
      .put("metrics", metrics_.toJson())
      .put("metrics_text", metrics_.toText());
  return resp.str();
}

}  // namespace cmc::cluster
