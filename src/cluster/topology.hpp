// Cluster topology (cluster layer): the static ring of `cmc serve` shards
// a coordinator fronts, plus the rendezvous routing that assigns every
// obligation fingerprint an owner shard.
//
// Topology file format: JSONL, one shard per line, '#' comment lines and
// blank lines skipped.  Each shard names exactly one transport:
//   {"name": "s1", "socket": "/var/run/cmc-s1.sock"}
//   {"name": "s2", "tcp": 7401}
// Names must be unique — they are the rendezvous identity, so renaming a
// shard re-keys the obligations it owns even when the endpoint is
// unchanged.
//
// Why rendezvous (highest-random-weight) hashing instead of a token ring:
// each key independently ranks ALL shards by a stable per-(shard, key)
// score; the owner is the top of the ranking and the failover order is
// simply the rest of it.  Removing a shard therefore re-keys exactly the
// keys it owned (they fall to their second choice; every other key's top
// choice is untouched) — the minimal re-keying property the cluster tests
// pin down — with no virtual-node bookkeeping.  Scores come from
// StableHash128, so every coordinator, test, and future process computes
// the same ring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cmc::cluster {

struct ShardSpec {
  std::string name;
  std::string socketPath;  ///< Unix transport; empty when TCP
  int tcpPort = -1;        ///< loopback TCP transport; -1 when Unix
};

struct Topology {
  std::vector<ShardSpec> shards;
};

/// Parse topology text (see the file format above).  False with a
/// line-numbered message on a malformed line, a duplicate name, a shard
/// with neither/both transports, or an empty topology.
bool parseTopology(const std::string& text, Topology* out,
                   std::string* error);

/// Read and parse a topology file.
bool loadTopology(const std::string& path, Topology* out, std::string* error);

/// Stable rendezvous score of `shardName` for `key` (an obligation
/// fingerprint).  Pure function of the two strings — identical across
/// processes and runs.
std::uint64_t rendezvousScore(const std::string& shardName,
                              const std::string& key);

/// Indices of `shardNames` ranked by descending rendezvous score for
/// `key`: element 0 is the owner, the tail is the re-dispatch order when
/// shards are down.  Ties (vanishingly rare) break by index for
/// determinism.
std::vector<std::size_t> rendezvousOrder(
    const std::vector<std::string>& shardNames, const std::string& key);

}  // namespace cmc::cluster
