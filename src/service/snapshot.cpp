#include "service/snapshot.hpp"

#include <utility>

#include "service/obligation_cache.hpp"
#include "smv/fingerprint.hpp"
#include "symbolic/composition.hpp"
#include "util/timer.hpp"

namespace cmc::service {

std::vector<ObligationRef> enumerateObligations(const ElaborationSnapshot& snap,
                                                const JobOptions& options) {
  const auto fingerprintFor = [&](std::size_t i, std::size_t j,
                                  bool composed) -> std::string {
    if (snap.canon.empty()) return "";
    return obligationFingerprint(snap.canon, i, composed,
                                 snap.modules[i].specs[j], options);
  };
  std::vector<ObligationRef> refs;
  for (std::size_t i = 0; i < snap.modules.size(); ++i) {
    for (std::size_t j = 0; j < snap.modules[i].specs.size(); ++j) {
      ObligationRef r;
      r.moduleIndex = i;
      r.specIndex = j;
      r.target = snap.modules[i].sys.name;
      r.specName = snap.modules[i].specs[j].name;
      r.specText = ctl::toString(snap.modules[i].specs[j].f);
      r.id = r.target + "/" + r.specName;
      r.fingerprint = fingerprintFor(i, j, /*composed=*/false);
      refs.push_back(std::move(r));
    }
  }
  if (options.compose && snap.modules.size() > 1) {
    for (std::size_t i = 0; i < snap.modules.size(); ++i) {
      for (std::size_t j = 0; j < snap.modules[i].specs.size(); ++j) {
        ObligationRef r;
        r.composed = true;
        r.moduleIndex = i;
        r.specIndex = j;
        r.target = "composed";
        r.specName = snap.modules[i].specs[j].name;
        r.specText = ctl::toString(snap.modules[i].specs[j].f);
        r.id = r.target + "/" + r.specName;
        r.fingerprint = fingerprintFor(i, j, /*composed=*/true);
        refs.push_back(std::move(r));
      }
    }
  }
  return refs;
}

SnapshotResult buildSnapshot(const VerificationJob& job, bool wantCanon) {
  SnapshotResult result;
  try {
    auto snap = std::make_shared<ElaborationSnapshot>();
    snap->ctx = std::make_unique<symbolic::Context>(1 << 14);
    symbolic::Context& ctx = *snap->ctx;

    WallTimer elaborateTimer;
    snap->modules = job.factory ? job.factory(ctx)
                                : smv::elaborateProgram(ctx, job.smvText);
    if (snap->modules.empty()) {
      throw ModelError("job '" + job.name + "' has no modules");
    }
    snap->elaborateSeconds = elaborateTimer.seconds();

    // Canonical serializations are best-effort: a failure leaves the job
    // uncached (replay then falls back to the identity key).
    if (wantCanon) {
      try {
        snap->canon.reserve(snap->modules.size());
        for (const smv::ElaboratedModule& mod : snap->modules) {
          snap->canon.push_back(smv::canonicalModule(ctx, mod));
        }
      } catch (const std::exception&) {
        snap->canon.clear();
      }
    }

    snap->moduleChoice.resize(snap->modules.size());
    // Race needs the same probed choices as Auto: its symbolic lane is
    // whatever Auto would have picked for the obligation.
    if (job.options.engine == symbolic::EngineMode::Auto ||
        job.options.engine == symbolic::EngineMode::Race) {
      for (std::size_t i = 0; i < snap->modules.size(); ++i) {
        snap->moduleChoice[i] = symbolic::chooseEngine(snap->modules[i].sys);
      }
      if (job.options.compose && snap->modules.size() > 1) {
        // Probe the composition the way composed obligations build it:
        // reflexive-closed components folded with ∘.  The temporary's
        // nodes die in the collection below; only the decision survives.
        std::vector<symbolic::SymbolicSystem> parts;
        parts.reserve(snap->modules.size());
        for (const smv::ElaboratedModule& mod : snap->modules) {
          symbolic::SymbolicSystem sys = mod.sys;
          symbolic::addReflexive(sys);
          parts.push_back(std::move(sys));
        }
        const symbolic::SymbolicSystem composed =
            symbolic::composeAll(parts);
        snap->composedChoice = symbolic::chooseEngine(composed);
        snap->hasComposedChoice = true;
      }
    }

    // Final sweep: drop probe intermediates, then freeze.  From here on the
    // manager is immutable — importers rely on stable node indices.
    ctx.mgr().collectGarbage();
    snap->liveNodes = ctx.mgr().liveNodeCount();

    result.snapshot = std::move(snap);
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception during elaboration";
  }
  return result;
}

smv::ElaboratedModule importModule(symbolic::Context& dst, bdd::Importer& imp,
                                   const smv::ElaboratedModule& src,
                                   bool wantMonolithic) {
  smv::ElaboratedModule out;
  out.sys = symbolic::importSystem(dst, imp, src.sys, wantMonolithic);
  // Formula trees are context-free and shared_ptr-held with atomic
  // refcounts: share, don't copy.
  out.initFormula = src.initFormula;
  out.fairness = src.fairness;
  out.specs = src.specs;
  return out;
}

}  // namespace cmc::service
