// The resource governor (service layer): a cooperative cancellation token
// that turns an ObligationLimits into a CheckerOptions::cancelCheck hook.
//
// The checker polls the token before every preimage and on every fixpoint
// iteration; the token throws symbolic::CancelledError with the exhausted
// dimension (Deadline or NodeBudget), which the scheduler maps to the
// Timeout / MemoryOut verdicts.  This is the only mechanism by which a
// blown-up BDD stops an obligation — there is no thread killing, so a
// manager is never left in a broken state.
#pragma once

#include "bdd/manager.hpp"
#include "service/job.hpp"
#include "symbolic/checker.hpp"
#include "util/timer.hpp"

namespace cmc::service {

class BudgetToken {
 public:
  /// The token reads (and, over budget, garbage-collects) `mgr`, so it must
  /// be used on the thread that owns the manager — which is automatic, as
  /// the checker invokes the hook on the checking thread.
  BudgetToken(bdd::Manager& mgr, ObligationLimits limits)
      : mgr_(&mgr), limits_(limits) {}

  /// Throws symbolic::CancelledError when a limit is exhausted.  The node
  /// budget is checked against *live* nodes after a forced collection, so
  /// dead intermediates never cause a spurious MemoryOut.
  void check();

  /// The CheckerOptions::cancelCheck adapter.
  void operator()() { check(); }

  double elapsedSeconds() const { return timer_.seconds(); }
  const ObligationLimits& limits() const noexcept { return limits_; }

 private:
  bdd::Manager* mgr_;
  ObligationLimits limits_;
  WallTimer timer_;
};

}  // namespace cmc::service
