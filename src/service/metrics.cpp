#include "service/metrics.hpp"

#include <cmath>
#include <sstream>

#include "service/trace_log.hpp"

namespace cmc::service {

const std::vector<double>& LatencyHistogram::bucketBounds() {
  // 1 ms .. 60 s: sub-5 ms covers cache/journal hits, the middle of the
  // ladder covers healthy checker attempts, the top covers budget-bound
  // runs.  Keep in sync with kFiniteBuckets.
  static const std::vector<double> kBounds = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
      0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0};
  return kBounds;
}

void LatencyHistogram::observe(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN and negatives clamp to 0
  const std::vector<double>& bounds = bucketBounds();
  std::size_t bucket = bounds.size();  // +Inf overflow bucket
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (seconds <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sumMicros_.fetch_add(static_cast<std::uint64_t>(std::llround(seconds * 1e6)),
                       std::memory_order_relaxed);
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::vector<double>& bounds = bucketBounds();
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (counts[i] > 0 && static_cast<double>(next) >= target) {
      if (i >= bounds.size()) return bounds.back();  // +Inf: clamp
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + (bounds[i] - lo) * (within < 0.0 ? 0.0 : within);
    }
    cumulative = next;
  }
  return bounds.back();
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.counts.reserve(kFiniteBuckets + 1);
  for (const std::atomic<std::uint64_t>& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sumSeconds =
      static_cast<double>(sumMicros_.load(std::memory_order_relaxed)) / 1e6;
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

std::uint64_t MetricsRegistry::counterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t MetricsRegistry::gaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

double MetricsRegistry::histogramQuantile(const std::string& name,
                                          double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0.0 : it->second.snapshot().quantile(q);
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonObject counters;
  for (const auto& [name, c] : counters_) counters.putUint(name, c.value());
  JsonObject gauges;
  for (const auto& [name, g] : gauges_) {
    // Gauges can be negative; JsonObject has no signed put, so render raw.
    gauges.putRaw(name, std::to_string(g.value()));
  }
  JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    const LatencyHistogram::Snapshot s = h.snapshot();
    std::ostringstream bounds, counts;
    bounds << '[';
    const std::vector<double>& bb = LatencyHistogram::bucketBounds();
    for (std::size_t i = 0; i < bb.size(); ++i) {
      if (i > 0) bounds << ", ";
      bounds << jsonNumber(bb[i]);
    }
    bounds << ']';
    counts << '[';
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (i > 0) counts << ", ";
      counts << s.counts[i];
    }
    counts << ']';
    JsonObject hist;
    hist.putUint("count", s.count)
        .putDouble("sum_seconds", s.sumSeconds)
        .putRaw("bounds", bounds.str())
        .putRaw("counts", counts.str());
    histograms.putRaw(name, hist.str());
  }
  JsonObject root;
  root.putRaw("counters", counters.str())
      .putRaw("gauges", gauges.str())
      .putRaw("histograms", histograms.str());
  return root.str();
}

std::string MetricsRegistry::toText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ' ' << g.value() << '\n';
  }
  const std::vector<double>& bounds = LatencyHistogram::bucketBounds();
  for (const auto& [name, h] : histograms_) {
    const LatencyHistogram::Snapshot s = h.snapshot();
    out << name << "_count " << s.count << '\n';
    out << name << "_sum " << jsonNumber(s.sumSeconds) << '\n';
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      cumulative += s.counts[i];
      out << name << "_bucket{le=\"";
      if (i < bounds.size()) out << jsonNumber(bounds[i]);
      else out << "+Inf";
      out << "\"} " << cumulative << '\n';
    }
  }
  return out.str();
}

}  // namespace cmc::service
