#include "service/trace_log.hpp"

#include <cmath>
#include <cstdio>

#include "util/failpoint.hpp"

namespace cmc::service {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

JsonObject& JsonObject::putSerialized(const std::string& key,
                                      std::string value) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"';
  body_ += jsonEscape(key);
  body_ += "\": ";
  body_ += value;
  return *this;
}

JsonObject& JsonObject::put(const std::string& key, std::string_view value) {
  return putSerialized(key, '"' + jsonEscape(value) + '"');
}

JsonObject& JsonObject::putBool(const std::string& key, bool value) {
  return putSerialized(key, value ? "true" : "false");
}

JsonObject& JsonObject::putUint(const std::string& key, std::uint64_t value) {
  return putSerialized(key, std::to_string(value));
}

JsonObject& JsonObject::putDouble(const std::string& key, double value) {
  return putSerialized(key, jsonNumber(value));
}

JsonObject& JsonObject::putRaw(const std::string& key,
                               std::string_view json) {
  return putSerialized(key, std::string(json));
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

void RunTrace::emit(const JsonObject& event) {
  if (!enabled_) return;
  const std::string line = event.str();
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(line);
  if (sink_ != nullptr) {
    // A failing sink degrades the trace to in-memory only (warn once):
    // telemetry loss must never take down the batch it narrates.
    try {
      CMC_FAILPOINT("trace.write");
      *sink_ << line << '\n';
      sink_->flush();
      if (!*sink_) throw Error("trace: sink write failed");
    } catch (const std::exception& e) {
      sink_ = nullptr;
      std::fprintf(stderr, "%s; continuing with in-memory trace only\n",
                   e.what());
    }
  }
}

std::vector<std::string> RunTrace::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

std::size_t RunTrace::countContaining(std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace cmc::service
