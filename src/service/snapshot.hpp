// Shared elaboration snapshots (service layer).
//
// The old scheduler elaborated every job twice per obligation attempt: once
// in the scout (to enumerate obligations) and again on the worker, from
// scratch, into a fresh Context.  For the AFS batch benchmarks that re-parse
// plus re-elaboration dominated the per-obligation cost and made the pool
// *lose* to the serial loop.  A snapshot kills both copies of that work:
//
//  - buildSnapshot elaborates a job ONCE into a dedicated Context and
//    freezes the result (modules, canonical serializations for the cache,
//    and — under EngineMode::Auto — the per-module and composed engine
//    choices, probed here where mutation is still allowed).
//  - Workers adopt the snapshot's variable layout into their own pre-sized
//    Context and copy the BDDs they need through bdd::Importer — a linear
//    walk of the reachable DAG instead of a parse + elaboration.
//
// Ownership and immutability: the snapshot is held by shared_ptr<const>;
// the last obligation (or the service's snapshot cache) drops it.  After
// buildSnapshot returns, NOTHING may run BDD operations, GC, or reordering
// on the snapshot's manager — workers only read the node arena through
// Importer (concurrently safe, see bdd/io.hpp).  In particular workers must
// not call dagSize()/support() on snapshot BDDs: those touch the manager's
// mutable mark bits.  All sizes a worker needs are precomputed below.
//
// GC interaction: the snapshot context is garbage-collected once, at the
// end of buildSnapshot, sweeping probe intermediates; the surviving nodes
// are exactly the obligations' reachable DAGs (every handle in `modules`
// keeps its nodes referenced).  The snapshot manager never collects again,
// so node indices stay stable for every importer's lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bdd/io.hpp"
#include "service/job.hpp"
#include "symbolic/engine_choice.hpp"

namespace cmc::service {

struct ElaborationSnapshot {
  /// The context every module below lives in.  unique_ptr so the snapshot
  /// is movable; never null after a successful build.
  std::unique_ptr<symbolic::Context> ctx;
  std::vector<smv::ElaboratedModule> modules;
  /// Canonical serializations for the obligation cache / journal replay
  /// key, one per module; empty when fingerprinting failed or was not
  /// requested.
  std::vector<std::string> canon;
  /// Per-module engine decision (EngineMode::Auto only; defaulted
  /// otherwise).
  std::vector<symbolic::EngineChoice> moduleChoice;
  /// Engine decision for the composed system (compose jobs under Auto).
  symbolic::EngineChoice composedChoice;
  bool hasComposedChoice = false;
  /// Live nodes after the final collection — what workers size their
  /// arenas from.
  std::uint64_t liveNodes = 0;
  /// Wall time of parse + elaboration (the cost the snapshot amortizes).
  double elaborateSeconds = 0.0;
};

struct SnapshotResult {
  std::shared_ptr<const ElaborationSnapshot> snapshot;  ///< null on error
  std::string error;                                    ///< why, when null
};

/// One enumerated obligation of a snapshot: the stable identity
/// ("<target>/<spec name>") plus the content fingerprint that addresses
/// the obligation cache — and, in cluster mode, routes the obligation to
/// its shard.  The scheduler extends a ref into a dispatchable
/// descriptor; the coordinator forwards it as-is.
struct ObligationRef {
  bool composed = false;
  std::size_t moduleIndex = 0;  ///< target module; spec owner when composed
  std::size_t specIndex = 0;
  std::string id;
  std::string target;    ///< module name, or "composed"
  std::string specName;
  std::string specText;
  /// Obligation-cache address; empty when the snapshot carries no
  /// canonical serializations.
  std::string fingerprint;
};

/// Enumerate a snapshot's obligations in dispatch order: one per
/// (module, spec), then — when `options.compose` and the snapshot has >1
/// module — one per spec against the composition.  Deterministic for a
/// given (snapshot, options) and stable across processes: a coordinator's
/// scout and a shard's own enumeration of the same SMV text agree on
/// every id and fingerprint, which is what makes single-obligation
/// forwarding ("only") and fleet-wide cache hits line up.
std::vector<ObligationRef> enumerateObligations(const ElaborationSnapshot& snap,
                                                const JobOptions& options);

/// Elaborate `job` once into a fresh context (never throws — errors land in
/// SnapshotResult::error).  `wantCanon` additionally computes the canonical
/// module serializations (best-effort).  Engine probes run only when the
/// job's engine mode is Auto.  Thread-safe for concurrent jobs: each call
/// owns its context, so runBatch fans snapshot builds onto the pool.
SnapshotResult buildSnapshot(const VerificationJob& job, bool wantCanon);

/// Copy one elaborated module out of a snapshot into a worker context
/// through `imp` (destination must be the worker's manager).  Formula trees
/// (init/fairness/specs) are shared, not copied — FormulaPtr refcounts are
/// atomic.  `wantMonolithic` also copies the materialized monolithic
/// relation when the source has one.
smv::ElaboratedModule importModule(symbolic::Context& dst, bdd::Importer& imp,
                                   const smv::ElaboratedModule& src,
                                   bool wantMonolithic);

/// Arena capacity for a worker importing `snapshotLiveNodes` nodes: room
/// for the full import plus fixpoint headroom, so neither the import nor a
/// typical check ever rehashes the unique table or grows the arena.
inline std::size_t workerArenaCapacity(std::uint64_t snapshotLiveNodes) {
  // The floor matches the default Context: over-sizing costs real time on
  // small models (every worker zeroes the arena + tables up front), and a
  // small import that later grows just rehashes once like any context.
  const std::uint64_t want = 2 * snapshotLiveNodes;
  return static_cast<std::size_t>(
      want < (std::uint64_t{1} << 12) ? (std::uint64_t{1} << 12) : want);
}

/// Computed-table capacity to match: ~4 slots per imported node, clamped to
/// [2^12, 2^20] (the manager rounds up to a power of two).
inline std::size_t workerCacheCapacity(std::uint64_t snapshotLiveNodes) {
  std::uint64_t want = 4 * snapshotLiveNodes;
  if (want < (std::uint64_t{1} << 12)) want = std::uint64_t{1} << 12;
  if (want > (std::uint64_t{1} << 20)) want = std::uint64_t{1} << 20;
  return static_cast<std::size_t>(want);
}

}  // namespace cmc::service
